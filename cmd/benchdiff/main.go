// Command benchdiff is the CI perf-regression gate: it compares freshly
// measured BENCH_*.json perf records (written by `advm-bench -benchjson`)
// against the checked-in baseline and fails when any query's serial or
// parallel ns/op regressed beyond the threshold.
//
//	benchdiff -baseline bench/baseline -current . -max-regress 0.25
//
// The diff is printed as a Markdown table on stdout and, when the
// GITHUB_STEP_SUMMARY environment variable points at a file (as it does
// inside GitHub Actions), appended there so the job summary shows the
// trajectory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// benchRecord mirrors the BENCH_*.json schema written by advm-bench. Five
// record flavors share it: query records carry serial vs parallel ns/op,
// device records (BENCH_device.json) carry CPU-only vs adaptive-placement
// ns/op for the same parallel query, colstore records (BENCH_colstore.json)
// carry serial in-RAM vs disk-backed legs of Q1/Q6, fused records
// (BENCH_fused.json) carry serial interpreted vs forced-hot fused legs of
// Q1/Q6 under tiered execution, and multicore records
// (BENCH_multicore.json) carry Q1/Q3/Q6 serial vs parallel legs with their
// speedups, gated against a floor when the recording host had enough cores.
type benchRecord struct {
	Benchmark     string  `json:"benchmark"`
	ScaleFactor   float64 `json:"scale_factor"`
	Rows          int     `json:"rows"`
	Workers       int     `json:"workers"`
	SerialNsOp    int64   `json:"serial_ns_op"`
	Parallel4NsOp int64   `json:"parallel4_ns_op"`
	Speedup       float64 `json:"speedup"`
	Identical     bool    `json:"identical"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	CalibNs       int64   `json:"calib_ns"`

	// Device-record fields (non-zero CPUNsOp marks the flavor).
	CPUNsOp      int64 `json:"cpu_ns_op,omitempty"`
	AdaptiveNsOp int64 `json:"adaptive_ns_op,omitempty"`
	GPUMorsels   int64 `json:"gpu_morsels,omitempty"`
	CPUMorsels   int64 `json:"cpu_morsels,omitempty"`

	// Colstore-record fields (non-zero Q6SkipNsOp marks the flavor). All
	// legs are serial measurements, so every one is gated.
	Q1RAMNsOp  int64 `json:"q1_ram_ns_op,omitempty"`
	Q1ColdNsOp int64 `json:"q1_cold_ns_op,omitempty"`
	Q1SkipNsOp int64 `json:"q1_skip_ns_op,omitempty"`
	Q6RAMNsOp  int64 `json:"q6_ram_ns_op,omitempty"`
	Q6ColdNsOp int64 `json:"q6_cold_ns_op,omitempty"`
	Q6SkipNsOp int64 `json:"q6_skip_ns_op,omitempty"`

	// Fused-record fields (non-zero Q6FusedNsOp marks the flavor). All legs
	// are serial measurements, so every one is gated.
	Q1InterpNsOp int64 `json:"q1_interp_ns_op,omitempty"`
	Q1FusedNsOp  int64 `json:"q1_fused_ns_op,omitempty"`
	Q6InterpNsOp int64 `json:"q6_interp_ns_op,omitempty"`
	Q6FusedNsOp  int64 `json:"q6_fused_ns_op,omitempty"`

	// Multicore-record fields (non-zero Q1SerialNsOp marks the flavor). The
	// serial legs are calibration-gated like any serial measurement; the
	// speedups are gated against a floor — but only when the *current* host
	// actually had NumCPU ≥ Workers, because an undersubscribed host cannot
	// exhibit parallel speedup no matter how healthy the scheduler is.
	Q1SerialNsOp int64   `json:"q1_serial_ns_op,omitempty"`
	Q1ParNsOp    int64   `json:"q1_par_ns_op,omitempty"`
	Q1Speedup    float64 `json:"q1_speedup,omitempty"`
	Q3SerialNsOp int64   `json:"q3_serial_ns_op,omitempty"`
	Q3ParNsOp    int64   `json:"q3_par_ns_op,omitempty"`
	Q3Speedup    float64 `json:"q3_speedup,omitempty"`
	Q6SerialNsOp int64   `json:"q6_serial_ns_op,omitempty"`
	Q6ParNsOp    int64   `json:"q6_par_ns_op,omitempty"`
	Q6Speedup    float64 `json:"q6_speedup,omitempty"`
	// The high-cardinality grouped-aggregation leg (Q1-shaped plan,
	// ~100k groups): present in records from advm-bench ≥ the leg's
	// introduction, gated like the other multicore legs when present on
	// either side.
	HCSerialNsOp int64   `json:"hc_serial_ns_op,omitempty"`
	HCParNsOp    int64   `json:"hc_par_ns_op,omitempty"`
	HCSpeedup    float64 `json:"hc_speedup,omitempty"`
	NumCPU       int     `json:"num_cpu,omitempty"`

	// Trace-record fields (non-zero Q6TraceOffNsOp marks the flavor). The
	// off leg is the one that matters: it is serial Q6 with the tracing
	// hooks compiled in but disabled, gated against the pre-tracing baseline
	// with the tighter TraceMaxRegress threshold from the baseline record
	// (observability must be free when off). The traced leg is reported but
	// not gated — its cost is the price of asking for a trace.
	Q6TraceOffNsOp  int64   `json:"q6_trace_off_ns_op,omitempty"`
	Q6TraceOnNsOp   int64   `json:"q6_trace_on_ns_op,omitempty"`
	TraceMaxRegress float64 `json:"trace_max_regress,omitempty"`

	// Per-query speedup floors, read from the *baseline* record: when the
	// checked-in baseline carries e.g. "q3_speedup_floor": 1.0, the current
	// record's q3_speedup is gated against that floor instead of the default
	// 1 − max-regress. Raising a floor is therefore a reviewed, checked-in
	// act, exactly like re-baselining an ns/op.
	Q1SpeedupFloor float64 `json:"q1_speedup_floor,omitempty"`
	Q3SpeedupFloor float64 `json:"q3_speedup_floor,omitempty"`
	Q6SpeedupFloor float64 `json:"q6_speedup_floor,omitempty"`
	HCSpeedupFloor float64 `json:"hc_speedup_floor,omitempty"`
}

// diffRow is one benchmark × metric comparison. Ratio is
// calibration-normalized when both records carry a calib_ns measurement —
// (cur/curCalib)/(base/baseCalib) — so records taken on hosts of different
// speed (or under different load) compare meaningfully; raw otherwise.
type diffRow struct {
	Bench, Metric  string
	BaseNs, CurNs  int64
	Ratio          float64
	Normalized     bool
	Regressed      bool
	Skipped        string // non-empty = not gated, with the reason
	NotReproducing bool   // current record reports non-identical results

	// Speedup rows (multicore records) compare dimensionless speedup factors
	// against an absolute floor instead of ns/op against the baseline.
	IsSpeedup    bool
	BaseX, CurX  float64 // baseline / current speedup factors
	SpeedupFloor float64 // gate floor the current speedup must clear

	// Undersubscribed-host skips carry the numbers for the explicit
	// "SKIPPED (num_cpu=N < required M)" line in the step summary.
	SkipCPUs, SkipWorkers int
}

// gateCounts summarizes a run for machines: CI history can distinguish
// "passed" from "didn't measure" by the skipped counter instead of parsing
// the Markdown.
type gateCounts struct {
	Gated     int `json:"gated"`
	Skipped   int `json:"skipped"`
	Regressed int `json:"regressed"`
}

func main() {
	baseline := flag.String("baseline", "bench/baseline", "directory of checked-in BENCH_*.json baselines")
	current := flag.String("current", ".", "directory of freshly measured BENCH_*.json records")
	maxRegress := flag.Float64("max-regress", 0.25, "fail when ns/op exceeds baseline by more than this fraction")
	summaryJSON := flag.String("summary-json", "", "write {gated,skipped,regressed} counters to this JSON file (\"\" = don't)")
	flag.Parse()

	rows, err := diffDirs(*baseline, *current, *maxRegress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	counts, skipLines := summarize(rows)
	table := renderTable(rows, *maxRegress)
	report := table
	for _, l := range skipLines {
		report += "\n" + l
	}
	report += fmt.Sprintf("\n\nbenchdiff: %d metrics gated, %d skipped, %d regressed\n",
		counts.Gated, counts.Skipped, counts.Regressed)
	fmt.Print(report)
	if summary := os.Getenv("GITHUB_STEP_SUMMARY"); summary != "" {
		f, err := os.OpenFile(summary, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err == nil {
			fmt.Fprintln(f, "## Bench perf gate")
			fmt.Fprintln(f)
			fmt.Fprint(f, report)
			f.Close()
		}
	}
	if *summaryJSON != "" {
		data, _ := json.Marshal(counts)
		if err := os.WriteFile(*summaryJSON, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
	}

	failed := false
	for _, r := range rows {
		if r.Regressed && r.IsSpeedup {
			failed = true
			fmt.Fprintf(os.Stderr, "benchdiff: %s %s is %.2fx, below the %.2fx floor — parallel execution is not paying off\n",
				r.Bench, r.Metric, r.CurX, r.SpeedupFloor)
		} else if r.Regressed {
			failed = true
			fmt.Fprintf(os.Stderr, "benchdiff: %s %s regressed %.1f%% (%d → %d ns/op, threshold %.0f%%)\n",
				r.Bench, r.Metric, (r.Ratio-1)*100, r.BaseNs, r.CurNs, *maxRegress*100)
		}
		if r.NotReproducing {
			failed = true
			fmt.Fprintf(os.Stderr, "benchdiff: %s reports non-identical parallel results\n", r.Bench)
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("\nbenchdiff: all gated records within %.0f%% of baseline\n", *maxRegress*100)
}

// summarize counts the gate outcome per metric row and renders one explicit
// line per skipped metric — a skipped gate must read as "didn't measure",
// never as a pass, in both the step summary and the counters JSON.
func summarize(rows []diffRow) (gateCounts, []string) {
	var c gateCounts
	var lines []string
	for _, r := range rows {
		switch {
		case r.Skipped != "":
			c.Skipped++
			if r.SkipCPUs > 0 || r.SkipWorkers > 0 {
				lines = append(lines, fmt.Sprintf("SKIPPED (num_cpu=%d < required %d): %s %s not gated — %s",
					r.SkipCPUs, r.SkipWorkers, r.Bench, r.Metric, r.Skipped))
			} else {
				lines = append(lines, fmt.Sprintf("SKIPPED: %s %s not gated — %s", r.Bench, r.Metric, r.Skipped))
			}
		default:
			c.Gated++
		}
		if r.Regressed || r.NotReproducing {
			c.Regressed++
		}
	}
	return c, lines
}

// diffDirs loads every BENCH_*.json under baseline and compares it with the
// same-named record under current. A baseline record without a current
// counterpart is an error: the gate must not silently narrow.
func diffDirs(baseline, current string, maxRegress float64) ([]diffRow, error) {
	paths, err := filepath.Glob(filepath.Join(baseline, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no BENCH_*.json baselines under %s", baseline)
	}
	sort.Strings(paths)
	var rows []diffRow
	for _, basePath := range paths {
		base, err := loadRecord(basePath)
		if err != nil {
			return nil, err
		}
		curPath := filepath.Join(current, filepath.Base(basePath))
		cur, err := loadRecord(curPath)
		if err != nil {
			return nil, fmt.Errorf("baseline %s has no current record: %w", filepath.Base(basePath), err)
		}
		rows = append(rows, diffRecords(base, cur, maxRegress)...)
	}
	// The reverse direction must not narrow silently either: a freshly
	// emitted record without a checked-in baseline is an ungated benchmark.
	curPaths, err := filepath.Glob(filepath.Join(current, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	for _, curPath := range curPaths {
		basePath := filepath.Join(baseline, filepath.Base(curPath))
		if _, err := os.Stat(basePath); os.IsNotExist(err) {
			return nil, fmt.Errorf("current record %s has no baseline under %s — check one in so the gate covers it",
				filepath.Base(curPath), baseline)
		}
	}
	return rows, nil
}

// diffRecords compares one baseline/current record pair.
func diffRecords(base, cur benchRecord, maxRegress float64) []diffRow {
	normalize := base.CalibNs > 0 && cur.CalibNs > 0
	mk := func(metric string, baseNs, curNs int64) diffRow {
		r := diffRow{Bench: base.Benchmark, Metric: metric, BaseNs: baseNs, CurNs: curNs}
		if baseNs > 0 {
			r.Ratio = float64(curNs) / float64(baseNs)
			if normalize {
				r.Ratio *= float64(base.CalibNs) / float64(cur.CalibNs)
				r.Normalized = true
			}
			r.Regressed = r.Ratio > 1+maxRegress
		}
		return r
	}
	// Calibration normalizes single-thread speed, not core count: a parallel
	// measurement from a host with a different GOMAXPROCS says nothing about
	// a regression, so such legs are reported but not gated.
	skipParallel := func(r diffRow) diffRow {
		if base.GOMAXPROCS != cur.GOMAXPROCS {
			r.Regressed = false
			r.Skipped = fmt.Sprintf("cores differ (%d vs %d)", base.GOMAXPROCS, cur.GOMAXPROCS)
		}
		return r
	}

	var rows []diffRow
	if base.CPUNsOp > 0 || cur.CPUNsOp > 0 {
		// Device record: both legs run the parallel query (CPU-only policy
		// vs adaptive placement), so both are parallel measurements.
		rows = []diffRow{
			skipParallel(mk("cpu-only", base.CPUNsOp, cur.CPUNsOp)),
			skipParallel(mk("adaptive", base.AdaptiveNsOp, cur.AdaptiveNsOp)),
		}
	} else if base.Q6SkipNsOp > 0 || cur.Q6SkipNsOp > 0 {
		// Colstore record: serial Q1/Q6 over the in-RAM table, the colstore
		// directory decoding every segment, and with zone-map skipping on.
		rows = []diffRow{
			mk("q1-ram", base.Q1RAMNsOp, cur.Q1RAMNsOp),
			mk("q1-colstore", base.Q1ColdNsOp, cur.Q1ColdNsOp),
			mk("q1-skipping", base.Q1SkipNsOp, cur.Q1SkipNsOp),
			mk("q6-ram", base.Q6RAMNsOp, cur.Q6RAMNsOp),
			mk("q6-colstore", base.Q6ColdNsOp, cur.Q6ColdNsOp),
			mk("q6-skipping", base.Q6SkipNsOp, cur.Q6SkipNsOp),
		}
	} else if base.Q6FusedNsOp > 0 || cur.Q6FusedNsOp > 0 {
		// Fused record: serial Q1/Q6 through the vectorized interpreter vs
		// forced-hot tiered execution running specialized fused loops.
		rows = []diffRow{
			mk("q1-interpreted", base.Q1InterpNsOp, cur.Q1InterpNsOp),
			mk("q1-fused", base.Q1FusedNsOp, cur.Q1FusedNsOp),
			mk("q6-interpreted", base.Q6InterpNsOp, cur.Q6InterpNsOp),
			mk("q6-fused", base.Q6FusedNsOp, cur.Q6FusedNsOp),
		}
	} else if base.Q6TraceOffNsOp > 0 || cur.Q6TraceOffNsOp > 0 {
		// Trace record: serial Q6 with tracing compiled in but off. Gated
		// with the baseline's trace_max_regress when present (tighter than
		// the general threshold: disabled tracing must cost nothing), else
		// the default. The traced leg is informational — it reports what a
		// client asking for a trace pays, but tracing-on cost is a feature
		// knob, not a regression.
		thr := maxRegress
		if base.TraceMaxRegress > 0 {
			thr = base.TraceMaxRegress
		}
		off := mk("q6-trace-off", base.Q6TraceOffNsOp, cur.Q6TraceOffNsOp)
		if base.Q6TraceOffNsOp > 0 {
			off.Regressed = off.Ratio > 1+thr
		}
		on := mk("q6-trace-morsels", base.Q6TraceOnNsOp, cur.Q6TraceOnNsOp)
		on.Regressed = false
		if base.Q6TraceOnNsOp == 0 {
			on.Skipped = "no traced-leg baseline"
		} else {
			on.Skipped = "informational (price of tracing on)"
		}
		rows = []diffRow{off, on}
	} else if base.Q1SerialNsOp > 0 || cur.Q1SerialNsOp > 0 {
		// Multicore record: Q1/Q3/Q6 serial legs are calibration-gated like
		// any serial measurement; the parallel legs are reported (skipped on
		// a core-count mismatch like every parallel leg); the speedups are
		// gated against an absolute floor. The floor uses only the *current*
		// record: a baseline taken on a small host must not exempt a real
		// multi-core regression, and a current record from an undersubscribed
		// host (NumCPU < Workers) skips the floor instead of failing it —
		// such a host cannot exhibit parallel speedup regardless of scheduler
		// health.
		// Each query's floor defaults to 1 − max-regress; a baseline record
		// carrying a per-query floor (e.g. "q3_speedup_floor": 1.0) overrides
		// it, so a proven speedup cannot silently erode back below 1x.
		defFloor := 1 - maxRegress
		mkSpeedup := func(metric string, baseX, curX, baseFloor float64) diffRow {
			floor := defFloor
			if baseFloor > 0 {
				floor = baseFloor
			}
			r := diffRow{
				Bench: base.Benchmark, Metric: metric,
				IsSpeedup: true, BaseX: baseX, CurX: curX, SpeedupFloor: floor,
			}
			if baseX > 0 {
				r.Ratio = curX / baseX
			}
			if cur.NumCPU < cur.Workers {
				r.Skipped = fmt.Sprintf("host undersubscribed (%d CPUs for %d workers)", cur.NumCPU, cur.Workers)
				r.SkipCPUs, r.SkipWorkers = cur.NumCPU, cur.Workers
				return r
			}
			r.Regressed = curX < floor
			return r
		}
		rows = []diffRow{
			mk("q1-serial", base.Q1SerialNsOp, cur.Q1SerialNsOp),
			skipParallel(mk("q1-parallel", base.Q1ParNsOp, cur.Q1ParNsOp)),
			mkSpeedup("q1-speedup", base.Q1Speedup, cur.Q1Speedup, base.Q1SpeedupFloor),
			mk("q3-serial", base.Q3SerialNsOp, cur.Q3SerialNsOp),
			skipParallel(mk("q3-parallel", base.Q3ParNsOp, cur.Q3ParNsOp)),
			mkSpeedup("q3-speedup", base.Q3Speedup, cur.Q3Speedup, base.Q3SpeedupFloor),
			mk("q6-serial", base.Q6SerialNsOp, cur.Q6SerialNsOp),
			skipParallel(mk("q6-parallel", base.Q6ParNsOp, cur.Q6ParNsOp)),
			mkSpeedup("q6-speedup", base.Q6Speedup, cur.Q6Speedup, base.Q6SpeedupFloor),
		}
		if base.HCSerialNsOp > 0 || cur.HCSerialNsOp > 0 {
			rows = append(rows,
				mk("hc-serial", base.HCSerialNsOp, cur.HCSerialNsOp),
				skipParallel(mk("hc-parallel", base.HCParNsOp, cur.HCParNsOp)),
				mkSpeedup("hc-speedup", base.HCSpeedup, cur.HCSpeedup, base.HCSpeedupFloor))
		}
	} else {
		rows = []diffRow{
			mk("serial", base.SerialNsOp, cur.SerialNsOp),
			skipParallel(mk(fmt.Sprintf("parallel%d", base.Workers), base.Parallel4NsOp, cur.Parallel4NsOp)),
		}
	}
	if !cur.Identical {
		rows[0].NotReproducing = true
	}
	return rows
}

func loadRecord(path string) (benchRecord, error) {
	var rec benchRecord
	data, err := os.ReadFile(path)
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		return rec, fmt.Errorf("%s: %w", path, err)
	}
	return rec, nil
}

// renderTable formats the diff as a Markdown table.
func renderTable(rows []diffRow, maxRegress float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "| bench | metric | baseline ns/op | current ns/op | Δ | gate (>%.0f%%) |\n", maxRegress*100)
	sb.WriteString("|---|---|---:|---:|---:|---|\n")
	for _, r := range rows {
		status := "ok"
		if r.Skipped != "" {
			status = "skipped: " + r.Skipped
		}
		if r.Regressed {
			status = "REGRESSED"
		}
		if r.NotReproducing {
			status = "NOT IDENTICAL"
		}
		delta := fmt.Sprintf("%+.1f%%", (r.Ratio-1)*100)
		if r.Normalized {
			delta += " (calib-normalized)"
		}
		if r.IsSpeedup {
			if status == "ok" {
				status = fmt.Sprintf("ok (floor %.2fx)", r.SpeedupFloor)
			}
			fmt.Fprintf(&sb, "| %s | %s | %.2fx | %.2fx | %s | %s |\n",
				r.Bench, r.Metric, r.BaseX, r.CurX, delta, status)
			continue
		}
		fmt.Fprintf(&sb, "| %s | %s | %d | %d | %s | %s |\n",
			r.Bench, r.Metric, r.BaseNs, r.CurNs, delta, status)
	}
	return sb.String()
}
