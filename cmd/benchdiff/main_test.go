package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeRecord(t *testing.T, dir, name string, rec benchRecord) {
	t.Helper()
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestDiffDirsGate(t *testing.T) {
	base := t.TempDir()
	cur := t.TempDir()
	writeRecord(t, base, "BENCH_q1.json", benchRecord{
		Benchmark: "q1", Workers: 4, SerialNsOp: 1000, Parallel4NsOp: 400, Identical: true,
	})
	writeRecord(t, base, "BENCH_q3.json", benchRecord{
		Benchmark: "q3", Workers: 4, SerialNsOp: 2000, Parallel4NsOp: 800, Identical: true,
	})
	// q1 within threshold, q3 serial regressed 50%.
	writeRecord(t, cur, "BENCH_q1.json", benchRecord{
		Benchmark: "q1", Workers: 4, SerialNsOp: 1200, Parallel4NsOp: 380, Identical: true,
	})
	writeRecord(t, cur, "BENCH_q3.json", benchRecord{
		Benchmark: "q3", Workers: 4, SerialNsOp: 3000, Parallel4NsOp: 900, Identical: true,
	})

	rows, err := diffDirs(base, cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	regressed := map[string]bool{}
	for _, r := range rows {
		if r.Regressed {
			regressed[r.Bench+"/"+r.Metric] = true
		}
	}
	if len(regressed) != 1 || !regressed["q3/serial"] {
		t.Fatalf("regressions = %v, want only q3/serial", regressed)
	}
	table := renderTable(rows, 0.25)
	if !strings.Contains(table, "REGRESSED") || !strings.Contains(table, "| q1 | serial |") {
		t.Fatalf("table missing expected content:\n%s", table)
	}
}

func TestDiffDirsMissingCurrent(t *testing.T) {
	base := t.TempDir()
	writeRecord(t, base, "BENCH_q6.json", benchRecord{Benchmark: "q6", Workers: 4, SerialNsOp: 10, Parallel4NsOp: 10, Identical: true})
	if _, err := diffDirs(base, t.TempDir(), 0.25); err == nil {
		t.Fatal("missing current record accepted")
	}
}

// TestDiffRecordsCalibrationNormalized: a 2× slower host (calib_ns doubled)
// with 2× slower queries is no regression; the same slowdown without the
// calibration excuse is.
func TestDiffRecordsCalibrationNormalized(t *testing.T) {
	base := benchRecord{Benchmark: "q1", Workers: 4, SerialNsOp: 1000, Parallel4NsOp: 500, Identical: true, CalibNs: 100}
	slowHost := benchRecord{Benchmark: "q1", Workers: 4, SerialNsOp: 2000, Parallel4NsOp: 1000, Identical: true, CalibNs: 200}
	for _, r := range diffRecords(base, slowHost, 0.25) {
		if !r.Normalized || r.Regressed {
			t.Fatalf("slow-host row regressed despite calibration: %+v", r)
		}
	}
	realRegression := benchRecord{Benchmark: "q1", Workers: 4, SerialNsOp: 2000, Parallel4NsOp: 1000, Identical: true, CalibNs: 100}
	rows := diffRecords(base, realRegression, 0.25)
	if !rows[0].Regressed || !rows[1].Regressed {
		t.Fatalf("same-speed host 2x slowdown not flagged: %+v", rows)
	}
}

// TestDiffRecordsSkipsParallelOnCoreMismatch: a parallel measurement from a
// host with a different core count is not comparable — gate serial only.
func TestDiffRecordsSkipsParallelOnCoreMismatch(t *testing.T) {
	base := benchRecord{Benchmark: "q1", Workers: 4, SerialNsOp: 1000, Parallel4NsOp: 1500, Identical: true, GOMAXPROCS: 1}
	cur := benchRecord{Benchmark: "q1", Workers: 4, SerialNsOp: 1000, Parallel4NsOp: 5000, Identical: true, GOMAXPROCS: 4}
	rows := diffRecords(base, cur, 0.25)
	if rows[0].Skipped != "" || rows[1].Skipped == "" {
		t.Fatalf("want only the parallel leg skipped: %+v", rows)
	}
	if rows[1].Regressed {
		t.Fatalf("cross-core parallel leg must not gate: %+v", rows[1])
	}
}

// TestDiffDirsExtraCurrentFails: a fresh record without a checked-in
// baseline must fail the gate instead of silently going ungated.
func TestDiffDirsExtraCurrentFails(t *testing.T) {
	base := t.TempDir()
	cur := t.TempDir()
	rec := benchRecord{Benchmark: "q1", Workers: 4, SerialNsOp: 100, Parallel4NsOp: 50, Identical: true}
	writeRecord(t, base, "BENCH_q1.json", rec)
	writeRecord(t, cur, "BENCH_q1.json", rec)
	writeRecord(t, cur, "BENCH_q4.json", benchRecord{Benchmark: "q4", Workers: 4, SerialNsOp: 9, Parallel4NsOp: 9, Identical: true})
	if _, err := diffDirs(base, cur, 0.25); err == nil {
		t.Fatal("current record without baseline accepted")
	}
}

func TestDiffDirsNonIdenticalFails(t *testing.T) {
	base := t.TempDir()
	cur := t.TempDir()
	writeRecord(t, base, "BENCH_q1.json", benchRecord{Benchmark: "q1", Workers: 4, SerialNsOp: 100, Parallel4NsOp: 50, Identical: true})
	writeRecord(t, cur, "BENCH_q1.json", benchRecord{Benchmark: "q1", Workers: 4, SerialNsOp: 100, Parallel4NsOp: 50, Identical: false})
	rows, err := diffDirs(base, cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rows {
		if r.NotReproducing {
			found = true
		}
	}
	if !found {
		t.Fatal("non-identical current record not flagged")
	}
}

// TestDiffRecordsDeviceFlavor: BENCH_device.json records gate the CPU-only
// and adaptive legs instead of serial/parallel, and both legs skip on a
// core-count mismatch (they are parallel measurements).
func TestDiffRecordsDeviceFlavor(t *testing.T) {
	base := benchRecord{
		Benchmark: "device_q6", Workers: 4, GOMAXPROCS: 8, Identical: true,
		CPUNsOp: 1000, AdaptiveNsOp: 1100, CalibNs: 100,
	}
	cur := base
	cur.AdaptiveNsOp = 1500 // adaptive leg regressed ~36%
	rows := diffRecords(base, cur, 0.25)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	byMetric := map[string]diffRow{}
	for _, r := range rows {
		byMetric[r.Metric] = r
	}
	if r := byMetric["cpu-only"]; r.Regressed {
		t.Fatalf("cpu-only leg wrongly regressed: %+v", r)
	}
	if r := byMetric["adaptive"]; !r.Regressed {
		t.Fatalf("adaptive leg not flagged: %+v", r)
	}

	cur.GOMAXPROCS = 2
	for _, r := range diffRecords(base, cur, 0.25) {
		if r.Regressed || r.Skipped == "" {
			t.Fatalf("device leg should skip on core mismatch: %+v", r)
		}
	}
}

// TestDiffRecordsDeviceNotReproducing: a device record reporting
// non-identical results fails the gate.
func TestDiffRecordsDeviceNotReproducing(t *testing.T) {
	base := benchRecord{Benchmark: "device_q6", Workers: 4, Identical: true, CPUNsOp: 1000, AdaptiveNsOp: 1000}
	cur := base
	cur.Identical = false
	rows := diffRecords(base, cur, 0.25)
	if !rows[0].NotReproducing {
		t.Fatal("non-identical device record not flagged")
	}
}
