package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeRecord(t *testing.T, dir, name string, rec benchRecord) {
	t.Helper()
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestDiffDirsGate(t *testing.T) {
	base := t.TempDir()
	cur := t.TempDir()
	writeRecord(t, base, "BENCH_q1.json", benchRecord{
		Benchmark: "q1", Workers: 4, SerialNsOp: 1000, Parallel4NsOp: 400, Identical: true,
	})
	writeRecord(t, base, "BENCH_q3.json", benchRecord{
		Benchmark: "q3", Workers: 4, SerialNsOp: 2000, Parallel4NsOp: 800, Identical: true,
	})
	// q1 within threshold, q3 serial regressed 50%.
	writeRecord(t, cur, "BENCH_q1.json", benchRecord{
		Benchmark: "q1", Workers: 4, SerialNsOp: 1200, Parallel4NsOp: 380, Identical: true,
	})
	writeRecord(t, cur, "BENCH_q3.json", benchRecord{
		Benchmark: "q3", Workers: 4, SerialNsOp: 3000, Parallel4NsOp: 900, Identical: true,
	})

	rows, err := diffDirs(base, cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	regressed := map[string]bool{}
	for _, r := range rows {
		if r.Regressed {
			regressed[r.Bench+"/"+r.Metric] = true
		}
	}
	if len(regressed) != 1 || !regressed["q3/serial"] {
		t.Fatalf("regressions = %v, want only q3/serial", regressed)
	}
	table := renderTable(rows, 0.25)
	if !strings.Contains(table, "REGRESSED") || !strings.Contains(table, "| q1 | serial |") {
		t.Fatalf("table missing expected content:\n%s", table)
	}
}

func TestDiffDirsMissingCurrent(t *testing.T) {
	base := t.TempDir()
	writeRecord(t, base, "BENCH_q6.json", benchRecord{Benchmark: "q6", Workers: 4, SerialNsOp: 10, Parallel4NsOp: 10, Identical: true})
	if _, err := diffDirs(base, t.TempDir(), 0.25); err == nil {
		t.Fatal("missing current record accepted")
	}
}

// TestDiffRecordsCalibrationNormalized: a 2× slower host (calib_ns doubled)
// with 2× slower queries is no regression; the same slowdown without the
// calibration excuse is.
func TestDiffRecordsCalibrationNormalized(t *testing.T) {
	base := benchRecord{Benchmark: "q1", Workers: 4, SerialNsOp: 1000, Parallel4NsOp: 500, Identical: true, CalibNs: 100}
	slowHost := benchRecord{Benchmark: "q1", Workers: 4, SerialNsOp: 2000, Parallel4NsOp: 1000, Identical: true, CalibNs: 200}
	for _, r := range diffRecords(base, slowHost, 0.25) {
		if !r.Normalized || r.Regressed {
			t.Fatalf("slow-host row regressed despite calibration: %+v", r)
		}
	}
	realRegression := benchRecord{Benchmark: "q1", Workers: 4, SerialNsOp: 2000, Parallel4NsOp: 1000, Identical: true, CalibNs: 100}
	rows := diffRecords(base, realRegression, 0.25)
	if !rows[0].Regressed || !rows[1].Regressed {
		t.Fatalf("same-speed host 2x slowdown not flagged: %+v", rows)
	}
}

// TestDiffRecordsSkipsParallelOnCoreMismatch: a parallel measurement from a
// host with a different core count is not comparable — gate serial only.
func TestDiffRecordsSkipsParallelOnCoreMismatch(t *testing.T) {
	base := benchRecord{Benchmark: "q1", Workers: 4, SerialNsOp: 1000, Parallel4NsOp: 1500, Identical: true, GOMAXPROCS: 1}
	cur := benchRecord{Benchmark: "q1", Workers: 4, SerialNsOp: 1000, Parallel4NsOp: 5000, Identical: true, GOMAXPROCS: 4}
	rows := diffRecords(base, cur, 0.25)
	if rows[0].Skipped != "" || rows[1].Skipped == "" {
		t.Fatalf("want only the parallel leg skipped: %+v", rows)
	}
	if rows[1].Regressed {
		t.Fatalf("cross-core parallel leg must not gate: %+v", rows[1])
	}
}

// TestDiffDirsExtraCurrentFails: a fresh record without a checked-in
// baseline must fail the gate instead of silently going ungated.
func TestDiffDirsExtraCurrentFails(t *testing.T) {
	base := t.TempDir()
	cur := t.TempDir()
	rec := benchRecord{Benchmark: "q1", Workers: 4, SerialNsOp: 100, Parallel4NsOp: 50, Identical: true}
	writeRecord(t, base, "BENCH_q1.json", rec)
	writeRecord(t, cur, "BENCH_q1.json", rec)
	writeRecord(t, cur, "BENCH_q4.json", benchRecord{Benchmark: "q4", Workers: 4, SerialNsOp: 9, Parallel4NsOp: 9, Identical: true})
	if _, err := diffDirs(base, cur, 0.25); err == nil {
		t.Fatal("current record without baseline accepted")
	}
}

func TestDiffDirsNonIdenticalFails(t *testing.T) {
	base := t.TempDir()
	cur := t.TempDir()
	writeRecord(t, base, "BENCH_q1.json", benchRecord{Benchmark: "q1", Workers: 4, SerialNsOp: 100, Parallel4NsOp: 50, Identical: true})
	writeRecord(t, cur, "BENCH_q1.json", benchRecord{Benchmark: "q1", Workers: 4, SerialNsOp: 100, Parallel4NsOp: 50, Identical: false})
	rows, err := diffDirs(base, cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rows {
		if r.NotReproducing {
			found = true
		}
	}
	if !found {
		t.Fatal("non-identical current record not flagged")
	}
}

// TestDiffRecordsDeviceFlavor: BENCH_device.json records gate the CPU-only
// and adaptive legs instead of serial/parallel, and both legs skip on a
// core-count mismatch (they are parallel measurements).
func TestDiffRecordsDeviceFlavor(t *testing.T) {
	base := benchRecord{
		Benchmark: "device_q6", Workers: 4, GOMAXPROCS: 8, Identical: true,
		CPUNsOp: 1000, AdaptiveNsOp: 1100, CalibNs: 100,
	}
	cur := base
	cur.AdaptiveNsOp = 1500 // adaptive leg regressed ~36%
	rows := diffRecords(base, cur, 0.25)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	byMetric := map[string]diffRow{}
	for _, r := range rows {
		byMetric[r.Metric] = r
	}
	if r := byMetric["cpu-only"]; r.Regressed {
		t.Fatalf("cpu-only leg wrongly regressed: %+v", r)
	}
	if r := byMetric["adaptive"]; !r.Regressed {
		t.Fatalf("adaptive leg not flagged: %+v", r)
	}

	cur.GOMAXPROCS = 2
	for _, r := range diffRecords(base, cur, 0.25) {
		if r.Regressed || r.Skipped == "" {
			t.Fatalf("device leg should skip on core mismatch: %+v", r)
		}
	}
}

// multicoreBase is a healthy BENCH_multicore.json record from a 4-core host.
func multicoreBase() benchRecord {
	return benchRecord{
		Benchmark: "multicore", Workers: 4, GOMAXPROCS: 4, NumCPU: 4,
		Identical: true, CalibNs: 100,
		Q1SerialNsOp: 4000, Q1ParNsOp: 2000, Q1Speedup: 2.0,
		Q3SerialNsOp: 3000, Q3ParNsOp: 1500, Q3Speedup: 2.0,
		Q6SerialNsOp: 1000, Q6ParNsOp: 500, Q6Speedup: 2.0,
	}
}

// TestDiffRecordsMulticoreFlavor: multicore records gate the serial legs
// (calibration-normalized) and the speedups against an absolute floor.
func TestDiffRecordsMulticoreFlavor(t *testing.T) {
	base := multicoreBase()
	cur := multicoreBase()
	cur.Q3Speedup = 0.6 // parallel Q3 barely above half of serial — below 0.75 floor
	rows := diffRecords(base, cur, 0.25)
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	byMetric := map[string]diffRow{}
	for _, r := range rows {
		byMetric[r.Metric] = r
	}
	for _, m := range []string{"q1-speedup", "q6-speedup"} {
		if r := byMetric[m]; r.Regressed || r.Skipped != "" || !r.IsSpeedup {
			t.Fatalf("%s wrongly gated: %+v", m, r)
		}
	}
	if r := byMetric["q3-speedup"]; !r.Regressed {
		t.Fatalf("q3 speedup below floor not flagged: %+v", r)
	}
	for _, m := range []string{"q1-serial", "q3-serial", "q6-serial"} {
		if r := byMetric[m]; r.Regressed || !r.Normalized {
			t.Fatalf("%s: want calibration-normalized pass: %+v", m, r)
		}
	}
	table := renderTable(rows, 0.25)
	if !strings.Contains(table, "2.00x") || !strings.Contains(table, "floor 0.75x") {
		t.Fatalf("table missing speedup rendering:\n%s", table)
	}
}

// TestDiffRecordsMulticoreSerialGated: a serial-leg regression in the
// multicore record fails like any serial measurement, host size regardless.
func TestDiffRecordsMulticoreSerialGated(t *testing.T) {
	base := multicoreBase()
	cur := multicoreBase()
	cur.Q1SerialNsOp = 8000 // 2× slower, same calib
	rows := diffRecords(base, cur, 0.25)
	found := false
	for _, r := range rows {
		if r.Metric == "q1-serial" && r.Regressed {
			found = true
		}
	}
	if !found {
		t.Fatalf("q1 serial regression not flagged: %+v", rows)
	}
}

// TestDiffRecordsMulticoreUndersubscribedSkips: a current record taken on a
// host with fewer CPUs than workers cannot exhibit speedup — the floor
// skips instead of failing, and the parallel ns/op legs skip on the
// GOMAXPROCS mismatch as usual.
func TestDiffRecordsMulticoreUndersubscribedSkips(t *testing.T) {
	base := multicoreBase()
	cur := multicoreBase()
	cur.GOMAXPROCS, cur.NumCPU = 1, 1
	cur.Q1Speedup, cur.Q3Speedup, cur.Q6Speedup = 0.7, 0.5, 0.8
	for _, r := range diffRecords(base, cur, 0.25) {
		if strings.HasSuffix(r.Metric, "-speedup") {
			if r.Regressed || r.Skipped == "" {
				t.Fatalf("undersubscribed speedup leg should skip: %+v", r)
			}
		}
		if strings.HasSuffix(r.Metric, "-parallel") && (r.Regressed || r.Skipped == "") {
			t.Fatalf("cross-core parallel leg should skip: %+v", r)
		}
	}
	// The floor keys on the current host only: a 1-CPU *baseline* must not
	// exempt a regression measured on a genuinely multi-core current host.
	base.GOMAXPROCS, base.NumCPU = 1, 1
	base.Q1Speedup = 0.7
	cur = multicoreBase()
	cur.Q1Speedup = 0.5
	rows := diffRecords(base, cur, 0.25)
	found := false
	for _, r := range rows {
		if r.Metric == "q1-speedup" && r.Regressed {
			found = true
		}
	}
	if !found {
		t.Fatalf("multi-core current speedup below floor not flagged despite 1-CPU baseline: %+v", rows)
	}
}

// TestDiffRecordsMulticoreNotReproducing: a multicore record reporting
// non-identical parallel results fails the gate.
func TestDiffRecordsMulticoreNotReproducing(t *testing.T) {
	base := multicoreBase()
	cur := multicoreBase()
	cur.Identical = false
	rows := diffRecords(base, cur, 0.25)
	if !rows[0].NotReproducing {
		t.Fatal("non-identical multicore record not flagged")
	}
}

// TestDiffRecordsMulticorePerQueryFloor: a baseline record carrying a
// per-query speedup floor overrides the default 1 − max-regress floor for
// that query only.
func TestDiffRecordsMulticorePerQueryFloor(t *testing.T) {
	base := multicoreBase()
	base.Q3SpeedupFloor = 1.0
	cur := multicoreBase()
	cur.Q3Speedup = 0.9 // clears the default 0.75 floor, not the raised 1.0
	cur.Q1Speedup = 0.9 // q1 keeps the default floor: must pass
	rows := diffRecords(base, cur, 0.25)
	byMetric := map[string]diffRow{}
	for _, r := range rows {
		byMetric[r.Metric] = r
	}
	if r := byMetric["q3-speedup"]; !r.Regressed || r.SpeedupFloor != 1.0 {
		t.Fatalf("q3 speedup below raised floor not flagged: %+v", r)
	}
	if r := byMetric["q1-speedup"]; r.Regressed || r.SpeedupFloor != 0.75 {
		t.Fatalf("q1 speedup wrongly gated against raised floor: %+v", r)
	}
}

// TestDiffRecordsMulticoreHCLeg: the high-cardinality grouped-agg leg is
// gated like the other multicore legs when present, and absent legs do not
// add rows (old baselines keep working).
func TestDiffRecordsMulticoreHCLeg(t *testing.T) {
	base := multicoreBase()
	cur := multicoreBase()
	if n := len(diffRecords(base, cur, 0.25)); n != 9 {
		t.Fatalf("rows without hc leg = %d, want 9", n)
	}
	base.HCSerialNsOp, base.HCParNsOp, base.HCSpeedup = 5000, 2500, 2.0
	cur.HCSerialNsOp, cur.HCParNsOp, cur.HCSpeedup = 5000, 10000, 0.5
	rows := diffRecords(base, cur, 0.25)
	if len(rows) != 12 {
		t.Fatalf("rows with hc leg = %d, want 12", len(rows))
	}
	found := false
	for _, r := range rows {
		if r.Metric == "hc-speedup" && r.Regressed && r.IsSpeedup {
			found = true
		}
	}
	if !found {
		t.Fatalf("hc speedup below floor not flagged: %+v", rows)
	}
}

// TestSummarizeSkipLines: skipped metrics produce an explicit SKIPPED line
// (with the num_cpu detail for undersubscribed hosts) and a nonzero skip
// counter, so CI history can tell "passed" from "didn't measure".
func TestSummarizeSkipLines(t *testing.T) {
	base := multicoreBase()
	cur := multicoreBase()
	cur.GOMAXPROCS, cur.NumCPU = 1, 1
	rows := diffRecords(base, cur, 0.25)
	counts, lines := summarize(rows)
	if counts.Skipped == 0 || counts.Regressed != 0 {
		t.Fatalf("counts = %+v, want skipped > 0 and no regressions", counts)
	}
	if counts.Gated+counts.Skipped != len(rows) {
		t.Fatalf("counts %+v don't partition %d rows", counts, len(rows))
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "SKIPPED (num_cpu=1 < required 4)") {
		t.Fatalf("missing explicit undersubscribed skip line:\n%s", joined)
	}
	if len(lines) != counts.Skipped {
		t.Fatalf("%d skip lines for %d skipped metrics", len(lines), counts.Skipped)
	}

	// A healthy same-host run skips nothing.
	counts, lines = summarize(diffRecords(multicoreBase(), multicoreBase(), 0.25))
	if counts.Skipped != 0 || len(lines) != 0 {
		t.Fatalf("healthy run reports skips: %+v %v", counts, lines)
	}
}

// TestDiffRecordsDeviceNotReproducing: a device record reporting
// non-identical results fails the gate.
func TestDiffRecordsDeviceNotReproducing(t *testing.T) {
	base := benchRecord{Benchmark: "device_q6", Workers: 4, Identical: true, CPUNsOp: 1000, AdaptiveNsOp: 1000}
	cur := base
	cur.Identical = false
	rows := diffRecords(base, cur, 0.25)
	if !rows[0].NotReproducing {
		t.Fatal("non-identical device record not flagged")
	}
}

// TestDiffRecordsTraceFlavor: trace records gate the tracing-off leg with
// the baseline's tighter trace_max_regress and leave the traced leg
// informational.
func TestDiffRecordsTraceFlavor(t *testing.T) {
	base := benchRecord{
		Benchmark: "trace", GOMAXPROCS: 1, Identical: true, CalibNs: 100,
		Q6TraceOffNsOp: 1000, TraceMaxRegress: 0.02,
	}
	cur := base
	cur.Q6TraceOffNsOp = 1010 // +1%: inside the 2% trace gate
	cur.Q6TraceOnNsOp = 1200
	rows := diffRecords(base, cur, 0.25)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	byMetric := map[string]diffRow{}
	for _, r := range rows {
		byMetric[r.Metric] = r
	}
	if r := byMetric["q6-trace-off"]; r.Regressed || r.Skipped != "" || !r.Normalized {
		t.Fatalf("in-threshold off leg wrongly gated: %+v", r)
	}
	if r := byMetric["q6-trace-morsels"]; r.Regressed || r.Skipped == "" {
		t.Fatalf("traced leg must stay informational: %+v", r)
	}

	// +5% on the off leg breaks the 2% trace gate even though the global
	// threshold is 25%.
	cur.Q6TraceOffNsOp = 1050
	rows = diffRecords(base, cur, 0.25)
	for _, r := range rows {
		if r.Metric == "q6-trace-off" && !r.Regressed {
			t.Fatalf("off leg beyond trace_max_regress not flagged: %+v", r)
		}
	}

	// Without a baseline trace_max_regress the global threshold applies.
	base.TraceMaxRegress = 0
	rows = diffRecords(base, cur, 0.25)
	for _, r := range rows {
		if r.Metric == "q6-trace-off" && r.Regressed {
			t.Fatalf("off leg within global threshold wrongly flagged: %+v", r)
		}
	}
}
