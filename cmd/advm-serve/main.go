// Command advm-serve puts the adaptive VM behind a socket: one process-wide
// advm.Engine — worker pool, device placer, fingerprint-keyed prepared
// cache — served over HTTP to many concurrent clients, with admission
// control, streaming NDJSON results and adaptive-telemetry endpoints.
//
//	advm-serve -addr :8080 -sf 0.01 -parallelism 8
//
//	curl -s localhost:8080/v1/query -d '{"query":"q6"}'
//	curl -s localhost:8080/v1/query -d '{"query":"q3","opts":{"parallelism":4,"device":"auto"}}'
//	curl -s localhost:8080/v1/query -d '{"query":"q3","trace":true}'
//	curl -s localhost:8080/v1/prepare -d '{"src":"...","externals":{"data":"i64"}}'
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/v1/slow
//	curl -s localhost:8080/metrics
//
// With -pprof localhost:6060 the standard net/http/pprof endpoints serve on
// a separate loopback listener (kept off the query port: profiles expose
// process internals). See docs/OBSERVABILITY.md for the trace and
// histogram surfaces.
//
// The TPC-H tables (lineitem, orders, customer) are registered at startup —
// loaded from -data / $TPCH_DATA_DIR when pre-generated, generated at the
// given scale factor otherwise. With -colstore the tables are served from
// compressed on-disk colstore directories instead of RAM: scans decode
// per-segment and range predicates skip segments via zone maps (watch
// segments_skipped in /v1/stats). SIGTERM/SIGINT drains gracefully: new
// queries get 503 while in-flight streams finish.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/advm"
	"repro/internal/server"
	"repro/internal/tpch"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor for the registered tables")
	data := flag.String("data", os.Getenv("TPCH_DATA_DIR"),
		"directory of pre-generated TPC-H tables (tpch-gen -binary); generated on the fly when empty or missing")
	useColstore := flag.Bool("colstore", false,
		"serve the tables from compressed colstore directories under -data (created there when missing) instead of RAM")
	parallelism := flag.Int("parallelism", 4, "default per-query worker fan-out (engine pool sizes to max(this, GOMAXPROCS))")
	maxConcurrent := flag.Int("max-concurrent", 0, "queries executing simultaneously (0 = GOMAXPROCS)")
	maxQueue := flag.Int("max-queue", 0, "admission queue bound (0 = 4× max-concurrent)")
	queueWait := flag.Duration("queue-wait", 2*time.Second, "max admission wait before 429")
	defaultTimeout := flag.Duration("default-timeout", 30*time.Second, "deadline for requests that carry none")
	drainTimeout := flag.Duration("drain-timeout", 20*time.Second, "graceful shutdown budget")
	slowThreshold := flag.Duration("slow-threshold", time.Second,
		"queries at or above this duration land in the slow-query log with their trace (negative disables)")
	slowLogSize := flag.Int("slow-log", 32, "slow queries retained for GET /v1/slow")
	pprofAddr := flag.String("pprof", "",
		"serve net/http/pprof profiling endpoints on this separate address (e.g. localhost:6060); off when empty")
	flag.Parse()

	eng, err := advm.NewEngine(advm.WithParallelism(*parallelism))
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	srv := server.New(eng, server.Config{
		MaxConcurrent:      *maxConcurrent,
		MaxQueue:           *maxQueue,
		QueueWait:          *queueWait,
		DefaultTimeout:     *defaultTimeout,
		SlowQueryThreshold: *slowThreshold,
		SlowLogSize:        *slowLogSize,
	})
	if *useColstore && *data == "" {
		log.Fatal("-colstore needs -data (or $TPCH_DATA_DIR) to hold the table directories")
	}
	for _, table := range []string{"lineitem", "orders", "customer"} {
		if *useColstore {
			dir, err := tpch.LoadOrGenColstore(*data, table, *sf, 42)
			if err != nil {
				log.Fatalf("loading %s: %v", table, err)
			}
			st, err := eng.OpenTable(dir) // engine-owned; released by eng.Close
			if err != nil {
				log.Fatalf("opening %s: %v", dir, err)
			}
			srv.RegisterTable(table, st)
			log.Printf("registered stored table %s (%d rows, %s)", table, st.Rows(), dir)
			continue
		}
		st, err := tpch.LoadOrGen(*data, table, *sf, 42)
		if err != nil {
			log.Fatalf("loading %s: %v", table, err)
		}
		srv.RegisterTable(table, st)
		log.Printf("registered table %s (%d rows)", table, st.Rows())
	}

	// Profiling stays off the query port: pprof exposes goroutine stacks and
	// heap contents, so it binds its own (typically loopback-only) address
	// and an explicit mux — never the query mux or http.DefaultServeMux.
	if *pprofAddr != "" {
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			psrv := &http.Server{Addr: *pprofAddr, Handler: pmux, ReadHeaderTimeout: 10 * time.Second}
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := psrv.ListenAndServe(); err != nil {
				log.Printf("pprof: %v", err)
			}
		}()
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("advm-serve listening on %s (parallelism %d, sf %.3f)", *addr, *parallelism, *sf)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		log.Fatal(err)
	case got := <-sig:
		log.Printf("%v: draining (budget %v)", got, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("drain: %v (in-flight queries abandoned)", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	st := eng.Stats()
	fmt.Printf("served: sessions=%d prepares=%d cache_hits=%d parallel_queries=%d\n",
		st.Sessions, st.Prepares, st.CacheHits, st.ParallelQueries)
}
