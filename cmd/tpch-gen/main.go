// Command tpch-gen generates the synthetic TPC-H-style tables as CSV for
// inspection or external use.
//
//	tpch-gen -sf 0.01 -table lineitem > lineitem.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/tpch"
	"repro/internal/vector"
)

func main() {
	sf := flag.Float64("sf", 0.01, "scale factor (1.0 = 6M lineitem rows)")
	table := flag.String("table", "lineitem", "table to generate: lineitem or orders")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()

	var st *vector.DSMStore
	switch *table {
	case "lineitem":
		st = tpch.GenLineitem(*sf, *seed)
	case "orders":
		st = tpch.GenOrders(*sf, *seed)
	default:
		fmt.Fprintf(os.Stderr, "tpch-gen: unknown table %q\n", *table)
		os.Exit(2)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	sch := st.Schema()
	for i, name := range sch.Names {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		fmt.Fprint(w, name)
	}
	fmt.Fprintln(w)
	for r := 0; r < st.Rows(); r++ {
		for c := range sch.Names {
			if c > 0 {
				fmt.Fprint(w, ",")
			}
			v := st.Col(c).Get(r)
			switch v.Kind {
			case vector.Str:
				fmt.Fprint(w, v.S)
			case vector.F64:
				fmt.Fprintf(w, "%.2f", v.F)
			default:
				fmt.Fprint(w, v.I)
			}
		}
		fmt.Fprintln(w)
	}
}
