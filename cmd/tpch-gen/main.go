// Command tpch-gen generates the synthetic TPC-H-style tables — as CSV on
// stdout for inspection, as binary table files for reuse across the
// benchmark binaries (CI generates each scale factor once per job instead of
// re-deriving it in every invocation), or as compressed colstore directories
// that queries open with advm.WithTableDir and scan with zone-map pruning.
//
//	tpch-gen -sf 0.01 -table lineitem > lineitem.csv
//	tpch-gen -sf 0.02 -binary -out /tmp/tpch        # lineitem+orders+customer
//	tpch-gen -sf 1 -colstore -out /tmp/tpch         # disk-backed columnar
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/tpch"
	"repro/internal/vector"
)

func main() {
	sf := flag.Float64("sf", 0.01, "scale factor (1.0 = 6M lineitem rows)")
	table := flag.String("table", "lineitem", "table to generate: lineitem, orders, customer or all")
	seed := flag.Int64("seed", 42, "generator seed")
	binary := flag.Bool("binary", false, "write binary table files instead of CSV on stdout")
	colstoreOut := flag.Bool("colstore", false, "write compressed colstore directories instead of CSV on stdout")
	out := flag.String("out", ".", "output directory for -binary/-colstore")
	flag.Parse()

	tables := []string{*table}
	if *table == "all" {
		tables = []string{"lineitem", "orders", "customer"}
	}

	if *colstoreOut {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		for _, tb := range tables {
			// LoadOrGenColstore reuses the cached binary table (writing it on
			// first run) and skips re-encoding when the directory exists.
			dir, err := tpch.LoadOrGenColstore(*out, tb, *sf, *seed)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "tpch-gen: colstore %s ready\n", dir)
		}
		return
	}

	if *binary {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		for _, tb := range tables {
			st, err := tpch.Gen(tb, *sf, *seed)
			if err != nil {
				fatal(err)
			}
			path := filepath.Join(*out, tpch.TableFile(tb, *sf, *seed))
			if err := tpch.SaveTable(path, st); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "tpch-gen: wrote %s (%d rows)\n", path, st.Rows())
		}
		return
	}

	if len(tables) != 1 {
		fatal(fmt.Errorf("CSV output supports one table at a time"))
	}
	st, err := tpch.Gen(tables[0], *sf, *seed)
	if err != nil {
		fatal(err)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	sch := st.Schema()
	for i, name := range sch.Names {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		fmt.Fprint(w, name)
	}
	fmt.Fprintln(w)
	for r := 0; r < st.Rows(); r++ {
		for c := range sch.Names {
			if c > 0 {
				fmt.Fprint(w, ",")
			}
			v := st.Col(c).Get(r)
			switch v.Kind {
			case vector.Str:
				fmt.Fprint(w, v.S)
			case vector.F64:
				fmt.Fprintf(w, "%.2f", v.F)
			default:
				fmt.Fprint(w, v.I)
			}
		}
		fmt.Fprintln(w)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tpch-gen:", err)
	os.Exit(2)
}
