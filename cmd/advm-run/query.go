// Named relational query mode: -query runs one of the built-in TPC-H plans
// through the advm relational API with full execution tracing, rendering
// the EXPLAIN ANALYZE tree and/or exporting a Chrome trace-event JSON for
// chrome://tracing or Perfetto.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/advm"
	"repro/internal/tpch"
)

// runNamedQuery executes the named TPC-H query runs times (the earlier runs
// warm the plan's tier entry) and traces the last execution at the morsels
// level. One traced run feeds both outputs, so the EXPLAIN ANALYZE tree and
// the Chrome trace describe the same execution.
func runNamedQuery(ctx context.Context, name string, sf float64, dataDir string,
	parallelism, runs int, explainAnalyze bool, traceJSON string) error {
	load := func(table string) advm.TableSource {
		st, err := tpch.LoadOrGen(dataDir, table, sf, 42)
		if err != nil {
			fatal(err)
		}
		return st
	}
	var mkPlan func() *advm.Plan
	switch name {
	case "q1":
		li := load("lineitem")
		mkPlan = func() *advm.Plan { return tpch.PlanQ1(li) }
	case "q3":
		li, ord, cust := load("lineitem"), load("orders"), load("customer")
		mkPlan = func() *advm.Plan { return tpch.PlanQ3(li, ord, cust, tpch.DefaultQ3Params()) }
	case "q6":
		li := load("lineitem")
		mkPlan = func() *advm.Plan { return tpch.PlanQ6(li, tpch.DefaultQ6Params()) }
	default:
		return fmt.Errorf("unknown query %q (want q1, q3 or q6)", name)
	}

	eng, err := advm.NewEngine(advm.WithParallelism(parallelism))
	if err != nil {
		return err
	}
	defer eng.Close()
	sess, err := eng.Session(advm.WithParallelism(parallelism))
	if err != nil {
		return err
	}
	defer sess.Close()

	for r := 0; r < runs-1; r++ {
		rows, err := sess.Query(ctx, mkPlan())
		if err != nil {
			return err
		}
		if _, err := rows.Count(); err != nil {
			return err
		}
	}

	start := time.Now()
	rows, err := sess.QueryTraced(ctx, mkPlan(), advm.TraceMorsels)
	if err != nil {
		return err
	}
	n, err := rows.Count()
	if err != nil {
		return err
	}
	wall := time.Since(start)

	if explainAnalyze {
		fmt.Print(rows.Trace().ExplainAnalyze())
	} else {
		fmt.Printf("%s: %d rows in %v (parallelism %d)\n", name, n, wall, parallelism)
	}
	if traceJSON != "" {
		f, err := os.Create(traceJSON)
		if err != nil {
			return err
		}
		if err := rows.Trace().WriteChromeJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "advm-run: wrote Chrome trace to %s (open in chrome://tracing or Perfetto)\n", traceJSON)
	}
	return nil
}
