package main

import (
	"testing"

	"repro/advm"
)

func TestParseInBindingValues(t *testing.T) {
	name, v, err := ParseInBinding("xs=i64:1,2,3")
	if err != nil {
		t.Fatal(err)
	}
	if name != "xs" || v.Kind() != advm.I64 {
		t.Fatalf("name=%q kind=%v", name, v.Kind())
	}
	got := v.I64()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("values = %v", got)
	}

	_, f, err := ParseInBinding("fs=f64: 1.5 ,2.25")
	if err != nil {
		t.Fatal(err)
	}
	if fv := f.F64(); fv[0] != 1.5 || fv[1] != 2.25 {
		t.Fatalf("f64 values = %v", fv)
	}

	_, b, err := ParseInBinding("bs=bool:true,false")
	if err != nil {
		t.Fatal(err)
	}
	if bv := b.Bool(); !bv[0] || bv[1] {
		t.Fatalf("bool values = %v", bv)
	}

	_, s, err := ParseInBinding("ss=str:a,b")
	if err != nil {
		t.Fatal(err)
	}
	if sv := s.Str(); sv[0] != "a" || sv[1] != "b" {
		t.Fatalf("str values = %v", sv)
	}

	_, e, err := ParseInBinding("empty=i64:")
	if err != nil {
		t.Fatal(err)
	}
	if e.Len() != 0 {
		t.Fatalf("empty binding has %d values", e.Len())
	}
}

func TestParseInBindingZerosIota(t *testing.T) {
	_, v, err := ParseInBinding("xs=i64:zeros(5)")
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 5 {
		t.Fatalf("zeros len = %d", v.Len())
	}
	for _, x := range v.I64() {
		if x != 0 {
			t.Fatalf("zeros produced %v", v.I64())
		}
	}

	_, v, err = ParseInBinding("xs=i32:iota(4)")
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind() != advm.I32 || v.Len() != 4 {
		t.Fatalf("iota kind=%v len=%d", v.Kind(), v.Len())
	}
	for i, x := range v.I32() {
		if int(x) != i {
			t.Fatalf("iota produced %v", v.I32())
		}
	}
}

func TestParseInBindingMalformed(t *testing.T) {
	for _, spec := range []string{
		"",                 // nothing
		"xs",               // no =
		"xs=i64",           // no :
		"=i64:1",           // empty name
		"xs:i64=1",         // colon before =
		"xs=nope:1",        // unknown kind
		"xs=i64:1,x,3",     // non-integer value
		"xs=f64:1.5,oops",  // non-float value
		"xs=bool:yes",      // ParseBool rejects "yes"
		"xs=i64:zeros(-3)", // negative length
		"xs=i64:iota(-1)",  // negative length
		"xs=i64:zeros(x)",  // non-numeric length falls through and fails
		"xs=i8:300",        // out of range for i8 (must not truncate to 44)
		"xs=i16:70000",     // out of range for i16
		"xs=i8:iota(129)",  // iota values would overflow i8
	} {
		if _, _, err := ParseInBinding(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestParseInBindingWidthLimits(t *testing.T) {
	// Boundary values of narrow kinds parse exactly.
	_, v, err := ParseInBinding("xs=i8:-128,127")
	if err != nil {
		t.Fatal(err)
	}
	if got := v.I8(); got[0] != -128 || got[1] != 127 {
		t.Fatalf("i8 bounds = %v", got)
	}
	// iota up to the kind's full range is fine.
	if _, _, err := ParseInBinding("xs=i8:iota(128)"); err != nil {
		t.Fatal(err)
	}
	// 64-bit kinds must not false-positive on the overflow check
	// (regression: max+1 wrapped negative and rejected every i64 iota).
	if _, _, err := ParseInBinding("xs=i64:iota(4096)"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ParseInBinding("xs=i64:iota(0)"); err != nil {
		t.Fatal(err)
	}
	// f64 iota produces real values (regression: IntValue left them zero).
	_, f, err := ParseInBinding("xs=f64:iota(4)")
	if err != nil {
		t.Fatal(err)
	}
	if got := f.F64(); got[1] != 1 || got[3] != 3 {
		t.Fatalf("f64 iota = %v", got)
	}
	// iota has no meaning for non-numeric kinds.
	for _, spec := range []string{"xs=str:iota(3)", "xs=bool:iota(3)"} {
		if _, _, err := ParseInBinding(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestParseOutBinding(t *testing.T) {
	name, v, err := ParseOutBinding("w=i64")
	if err != nil {
		t.Fatal(err)
	}
	if name != "w" || v.Kind() != advm.I64 || v.Len() != 0 {
		t.Fatalf("name=%q kind=%v len=%d", name, v.Kind(), v.Len())
	}
	for _, spec := range []string{"", "w", "=i64", "w=nope"} {
		if _, _, err := ParseOutBinding(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}
