package main

import (
	"fmt"
	"strconv"
	"strings"

	"repro/advm"
)

// ParseInBinding parses an input binding spec of the form
//
//	name=kind:v1,v2,v3    explicit values
//	name=kind:zeros(N)    N zeroed elements
//	name=kind:iota(N)     0,1,…,N-1
//
// and returns the array name and the bound vector.
func ParseInBinding(spec string) (string, *advm.Vector, error) {
	eq := strings.IndexByte(spec, '=')
	colon := strings.IndexByte(spec, ':')
	if eq < 0 || colon < eq {
		return "", nil, fmt.Errorf("bad -in %q (want name=kind:values)", spec)
	}
	name := spec[:eq]
	if name == "" {
		return "", nil, fmt.Errorf("bad -in %q (empty name)", spec)
	}
	kind, err := advm.ParseKind(spec[eq+1 : colon])
	if err != nil {
		return "", nil, err
	}
	v, err := parseValues(kind, spec[colon+1:])
	if err != nil {
		return "", nil, fmt.Errorf("bad -in %q: %w", spec, err)
	}
	return name, v, nil
}

// ParseOutBinding parses an output binding spec "name=kind" and returns the
// name and an empty growable vector of that kind.
func ParseOutBinding(spec string) (string, *advm.Vector, error) {
	parts := strings.SplitN(spec, "=", 2)
	if len(parts) != 2 || parts[0] == "" {
		return "", nil, fmt.Errorf("bad -out %q (want name=kind)", spec)
	}
	kind, err := advm.ParseKind(parts[1])
	if err != nil {
		return "", nil, err
	}
	return parts[0], advm.NewVector(kind, 0, 0), nil
}

func parseValues(kind advm.Kind, valSpec string) (*advm.Vector, error) {
	if n, ok := parseCount(valSpec, "zeros"); ok {
		if n < 0 {
			return nil, fmt.Errorf("negative length %d", n)
		}
		return advm.NewVectorLen(kind, n), nil
	}
	if n, ok := parseCount(valSpec, "iota"); ok {
		if n < 0 {
			return nil, fmt.Errorf("negative length %d", n)
		}
		v := advm.NewVectorLen(kind, n)
		switch {
		case kind.IsInteger():
			// Largest generated value is n-1; compare without computing
			// max+1, which would overflow for 64-bit kinds.
			if max := intMax(kind); int64(n)-1 > max {
				return nil, fmt.Errorf("iota(%d) overflows %v (max %d)", n, kind, max)
			}
			for i := 0; i < n; i++ {
				v.Set(i, advm.IntValue(kind, int64(i)))
			}
		case kind == advm.F64:
			for i := 0; i < n; i++ {
				v.Set(i, advm.F64Value(float64(i)))
			}
		default:
			return nil, fmt.Errorf("iota is not defined for kind %v", kind)
		}
		return v, nil
	}
	var vals []string
	if valSpec != "" {
		vals = strings.Split(valSpec, ",")
	}
	v := advm.NewVector(kind, 0, len(vals))
	for _, s := range vals {
		s = strings.TrimSpace(s)
		switch kind {
		case advm.F64:
			f, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, err
			}
			v.AppendValue(advm.F64Value(f))
		case advm.Bool:
			b, err := strconv.ParseBool(s)
			if err != nil {
				return nil, err
			}
			v.AppendValue(advm.BoolValue(b))
		case advm.Str:
			v.AppendValue(advm.StrValue(s))
		default:
			// Parse at the kind's width so out-of-range values error
			// instead of silently truncating (i8:300 must not become 44).
			i, err := strconv.ParseInt(s, 10, 8*kind.Width())
			if err != nil {
				return nil, err
			}
			v.AppendValue(advm.IntValue(kind, i))
		}
	}
	return v, nil
}

// intMax returns the largest value representable by an integer kind.
func intMax(kind advm.Kind) int64 {
	if !kind.IsInteger() {
		return 0
	}
	return 1<<(8*kind.Width()-1) - 1
}

// parseCount matches "fn(N)" and returns N.
func parseCount(spec, fn string) (int, bool) {
	if !strings.HasPrefix(spec, fn+"(") || !strings.HasSuffix(spec, ")") {
		return 0, false
	}
	n, err := strconv.Atoi(spec[len(fn)+1 : len(spec)-1])
	if err != nil {
		return 0, false
	}
	return n, true
}
