// Command advm-run executes a DSL program file on the adaptive VM.
//
// External arrays are declared on the command line:
//
//	-in  name=kind:v1,v2,v3   bind an input array with values
//	-in  name=kind:zeros(N)   bind N zeroed values
//	-out name=kind            bind an (initially empty) output array,
//	                          printed after the run
//
// Example — the paper's Figure 2 program:
//
//	advm-run -in 'some_data=i64:zeros(4096)' -out v=i64 -out w=i64 \
//	         -runs 4 -transitions testdata/figure2.advm
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/vector"
)

type bindFlag struct {
	specs *[]string
}

func (b bindFlag) String() string { return "" }
func (b bindFlag) Set(s string) error {
	*b.specs = append(*b.specs, s)
	return nil
}

func main() {
	var ins, outs []string
	flag.Var(bindFlag{&ins}, "in", "input binding name=kind:values")
	flag.Var(bindFlag{&outs}, "out", "output binding name=kind")
	runs := flag.Int("runs", 1, "number of executions (later runs exercise compiled traces)")
	showTransitions := flag.Bool("transitions", false, "print the VM state-machine log")
	showPlan := flag.Bool("plan", false, "print the final execution plan")
	showProfile := flag.Bool("profile", false, "print per-instruction profile")
	showIR := flag.Bool("ir", false, "print the normalized IR and exit")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: advm-run [flags] program.advm")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	ext := map[string]*vector.Vector{}
	kinds := map[string]vector.Kind{}
	for _, spec := range ins {
		name, v, err := parseBinding(spec)
		if err != nil {
			fatal(err)
		}
		ext[name] = v
		kinds[name] = v.Kind()
	}
	var outNames []string
	for _, spec := range outs {
		parts := strings.SplitN(spec, "=", 2)
		if len(parts) != 2 {
			fatal(fmt.Errorf("bad -out %q (want name=kind)", spec))
		}
		kind, err := vector.ParseKind(parts[1])
		if err != nil {
			fatal(err)
		}
		ext[parts[0]] = vector.New(kind, 0, 0)
		kinds[parts[0]] = kind
		outNames = append(outNames, parts[0])
	}

	cfg := core.DefaultConfig()
	cfg.Sync = true
	cfg.HotCalls = 2
	prog, err := core.Compile(string(src), kinds, cfg)
	if err != nil {
		fatal(err)
	}
	if *showIR {
		fmt.Print(prog.IR.String())
		return
	}
	for r := 0; r < *runs; r++ {
		for _, name := range outNames {
			ext[name].SetLen(0)
		}
		if err := prog.Run(ext); err != nil {
			fatal(err)
		}
	}
	for _, name := range outNames {
		fmt.Printf("%s = %s\n", name, ext[name])
	}
	if *showTransitions {
		fmt.Println("\nstate machine transitions:")
		for _, tr := range prog.Transitions() {
			fmt.Printf("  %v\n", tr)
		}
	}
	if *showPlan {
		fmt.Println("\nexecution plan:")
		fmt.Print(prog.PlanReport())
	}
	if *showProfile {
		fmt.Println()
		fmt.Print(prog.Profile().String())
	}
}

func parseBinding(spec string) (string, *vector.Vector, error) {
	eq := strings.IndexByte(spec, '=')
	colon := strings.IndexByte(spec, ':')
	if eq < 0 || colon < eq {
		return "", nil, fmt.Errorf("bad -in %q (want name=kind:values)", spec)
	}
	name := spec[:eq]
	kind, err := vector.ParseKind(spec[eq+1 : colon])
	if err != nil {
		return "", nil, err
	}
	valSpec := spec[colon+1:]
	if strings.HasPrefix(valSpec, "zeros(") && strings.HasSuffix(valSpec, ")") {
		n, err := strconv.Atoi(valSpec[6 : len(valSpec)-1])
		if err != nil {
			return "", nil, err
		}
		return name, vector.NewLen(kind, n), nil
	}
	if strings.HasPrefix(valSpec, "iota(") && strings.HasSuffix(valSpec, ")") {
		n, err := strconv.Atoi(valSpec[5 : len(valSpec)-1])
		if err != nil {
			return "", nil, err
		}
		v := vector.NewLen(kind, n)
		for i := 0; i < n; i++ {
			v.Set(i, vector.IntValue(kind, int64(i)))
		}
		return name, v, nil
	}
	var vals []string
	if valSpec != "" {
		vals = strings.Split(valSpec, ",")
	}
	v := vector.New(kind, 0, len(vals))
	for _, s := range vals {
		s = strings.TrimSpace(s)
		switch kind {
		case vector.F64:
			f, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return "", nil, err
			}
			v.AppendValue(vector.F64Value(f))
		case vector.Bool:
			v.AppendValue(vector.BoolValue(s == "true"))
		case vector.Str:
			v.AppendValue(vector.StrValue(s))
		default:
			i, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return "", nil, err
			}
			v.AppendValue(vector.IntValue(kind, i))
		}
	}
	return name, v, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "advm-run:", err)
	os.Exit(1)
}
