// Command advm-run executes a DSL program file on the adaptive VM through
// the public advm API.
//
// External arrays are declared on the command line:
//
//	-in  name=kind:v1,v2,v3   bind an input array with values
//	-in  name=kind:zeros(N)   bind N zeroed values
//	-in  name=kind:iota(N)    bind 0,1,…,N-1
//	-out name=kind            bind an (initially empty) output array,
//	                          printed after the run
//
// Runs honor -timeout and Ctrl-C: cancellation stops the VM at the next
// chunk boundary.
//
// Example — the paper's Figure 2 program:
//
//	advm-run -in 'some_data=i64:zeros(4096)' -out v=i64 -out w=i64 \
//	         -runs 4 -transitions testdata/figure2.advm
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/advm"
)

type bindFlag struct {
	specs *[]string
}

func (b bindFlag) String() string { return "" }
func (b bindFlag) Set(s string) error {
	*b.specs = append(*b.specs, s)
	return nil
}

func main() {
	var ins, outs []string
	flag.Var(bindFlag{&ins}, "in", "input binding name=kind:values")
	flag.Var(bindFlag{&outs}, "out", "output binding name=kind")
	runs := flag.Int("runs", 1, "number of executions (later runs exercise compiled traces)")
	timeout := flag.Duration("timeout", 0, "abort the whole invocation after this duration (0 = none)")
	sync := flag.Bool("sync", true, "optimize synchronously between runs (deterministic)")
	hotCalls := flag.Int64("hot-calls", 2, "executions after which a segment counts as hot (0 disables compilation)")
	showTransitions := flag.Bool("transitions", false, "print the VM state-machine log")
	showPlan := flag.Bool("plan", false, "print the final execution plan")
	showProfile := flag.Bool("profile", false, "print per-instruction profile")
	showIR := flag.Bool("ir", false, "print the normalized IR and exit")
	showFingerprint := flag.Bool("fingerprint", false, "print the program's canonical fingerprint (the engine cache key)")
	queryName := flag.String("query", "", "run a named TPC-H query (q1, q3, q6) instead of a DSL program")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor for -query")
	dataDir := flag.String("data", "", "TPC-H data directory for -query (empty = generate in memory)")
	parallelism := flag.Int("parallelism", 1, "workers for -query")
	explainAnalyze := flag.Bool("explain-analyze", false, "print the EXPLAIN ANALYZE tree of the traced -query run")
	traceJSON := flag.String("trace-json", "", "write the traced -query run as Chrome trace-event JSON to this file")
	flag.Parse()

	if *queryName != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		if err := runNamedQuery(ctx, *queryName, *sf, *dataDir, *parallelism, *runs,
			*explainAnalyze, *traceJSON); err != nil {
			fatal(err)
		}
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: advm-run [flags] program.advm")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	ext := map[string]*advm.Vector{}
	kinds := map[string]advm.Kind{}
	for _, spec := range ins {
		name, v, err := ParseInBinding(spec)
		if err != nil {
			fatal(err)
		}
		ext[name] = v
		kinds[name] = v.Kind()
	}
	var outNames []string
	for _, spec := range outs {
		name, v, err := ParseOutBinding(spec)
		if err != nil {
			fatal(err)
		}
		ext[name] = v
		kinds[name] = v.Kind()
		outNames = append(outNames, name)
	}

	opts := []advm.Option{advm.WithSyncOptimizer(*sync)}
	if *hotCalls > 0 {
		// Only the call-count trigger: the flag alone decides hotness.
		opts = append(opts, advm.WithHotThresholds(*hotCalls, 0))
	} else {
		opts = append(opts, advm.WithJIT(false))
	}
	// Run through the engine's prepared-statement path: advm-run is the CLI
	// face of the embedding API, and this is the API embedders should reach
	// for first (shared VM, fingerprint-keyed cache).
	eng, err := advm.NewEngine(opts...)
	if err != nil {
		fatal(err)
	}
	defer eng.Close()
	prep, err := eng.Prepare(string(src), kinds)
	if err != nil {
		fatal(err)
	}
	if *showIR {
		fmt.Print(prep.IR())
		return
	}
	if *showFingerprint {
		fmt.Println(prep.Fingerprint())
		return
	}
	sess, err := eng.Session()
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	for r := 0; r < *runs; r++ {
		for _, name := range outNames {
			ext[name].SetLen(0)
		}
		if err := sess.RunPrepared(ctx, prep, ext); err != nil {
			if errors.Is(err, advm.ErrCancelled) {
				fmt.Fprintf(os.Stderr, "advm-run: cancelled during run %d: %v\n", r+1, err)
				os.Exit(130)
			}
			fatal(err)
		}
	}
	for _, name := range outNames {
		fmt.Printf("%s = %s\n", name, ext[name])
	}
	st := prep.Stats()
	if *showTransitions {
		fmt.Println("\nstate machine transitions:")
		for _, tr := range st.Transitions {
			fmt.Printf("  %v\n", tr)
		}
	}
	if *showPlan {
		fmt.Println("\nexecution plan:")
		fmt.Print(prep.PlanReport())
	}
	if *showProfile {
		fmt.Println("\nper-instruction profile:")
		for _, in := range st.Instructions {
			fmt.Printf("  %3d  calls=%-8d tuples=%-10d nanos=%-10d  %s\n",
				in.ID, in.Calls, in.Tuples, in.Nanos, in.Instr)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "advm-run:", err)
	os.Exit(1)
}
