// Command advm-bench regenerates the experiment tables and series from
// DESIGN.md's per-experiment index in human-readable form. Each experiment
// id maps to a reproduction target (Table I, Figures 1–3, or an imported
// quantitative claim E1–E14); `go test -bench` provides the statistically
// rigorous numbers, while this tool prints the qualitative artifacts
// (catalogues, transition logs, partitions, decision series).
//
//	advm-bench -exp T1    # skeleton catalogue
//	advm-bench -exp F1    # Figure-1 state machine transition log
//	advm-bench -exp F2    # Figure-2 program: source, IR, outputs
//	advm-bench -exp F3    # Figure-3 dependency-graph partition (Graphviz)
//	advm-bench -exp E1    # TPC-H Q1 strategy table
//	advm-bench -exp E3    # selectivity specialization series
//	advm-bench -exp E5    # compressed execution with scheme drift
//	advm-bench -exp E6    # CPU/GPU placement series (modeled costs)
//	advm-bench -exp E17   # advm-serve throughput, 1 vs 8 concurrent clients
//	advm-bench -exp E18   # disk-backed colstore scans vs in-RAM, zone-map skipping
//	advm-bench -exp all   # everything
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/advm"
	"repro/internal/compress"
	"repro/internal/depgraph"
	"repro/internal/device"
	"repro/internal/dsl"
	"repro/internal/engine"
	"repro/internal/gpu"
	"repro/internal/interp"
	"repro/internal/jit"
	"repro/internal/nir"
	"repro/internal/server"
	"repro/internal/tpch"
	"repro/internal/vector"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (T1,F1,F2,F3,E1,E3,E5,E6,E15,E16,E17,E18,E19,E20,E21) or all")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor for E1/E15/E20")
	benchjson := flag.String("benchjson", "", "directory to write BENCH_q1/q6/q3/device/server/colstore/fused/multicore/trace.json perf records into (runs E15–E21 only)")
	data := flag.String("data", os.Getenv("TPCH_DATA_DIR"),
		"directory of pre-generated TPC-H tables (tpch-gen -binary); generated on the fly when empty or missing")
	traceOut := flag.String("trace-out", "",
		"write a Chrome trace-event JSON of one traced -trace-query run to this file and exit (chrome://tracing, Perfetto)")
	traceQuery := flag.String("trace-query", "q3", "named query for -trace-out (q1, q6, q3)")
	flag.Parse()

	if *traceOut != "" {
		if err := writeTraceOut(*traceQuery, *sf, *data, *traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "advm-bench: -trace-out:", err)
			os.Exit(1)
		}
		return
	}

	if *benchjson != "" {
		expE15(*sf, *data, *benchjson)
		expE16(*sf, *data, *benchjson)
		expE17(*sf, *data, *benchjson)
		expE18(*data, *benchjson)
		expE19(*data, *benchjson)
		expE20(*sf, *data, *benchjson)
		expE21(*data, *benchjson)
		return
	}

	all := *exp == "all"
	ran := false
	if all || *exp == "T1" {
		expT1()
		ran = true
	}
	if all || *exp == "F1" || *exp == "F2" {
		expF1F2()
		ran = true
	}
	if all || *exp == "F3" {
		expF3()
		ran = true
	}
	if all || *exp == "E1" {
		expE1(*sf)
		ran = true
	}
	if all || *exp == "E3" {
		expE3()
		ran = true
	}
	if all || *exp == "E5" {
		expE5()
		ran = true
	}
	if all || *exp == "E6" {
		expE6()
		ran = true
	}
	if all || *exp == "E15" {
		expE15(*sf, *data, "")
		ran = true
	}
	if all || *exp == "E16" {
		expE16(*sf, *data, "")
		ran = true
	}
	if all || *exp == "E17" {
		expE17(*sf, *data, "")
		ran = true
	}
	if all || *exp == "E18" {
		expE18(*data, "")
		ran = true
	}
	if all || *exp == "E19" {
		expE19(*data, "")
		ran = true
	}
	if all || *exp == "E20" {
		expE20(*sf, *data, "")
		ran = true
	}
	if all || *exp == "E21" {
		expE21(*data, "")
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "advm-bench: unknown experiment %q (run `go test -bench ExpXX .` for the others)\n", *exp)
		os.Exit(2)
	}
}

func header(s string) {
	fmt.Printf("\n=== %s ===\n\n", s)
}

// expT1 prints the implemented skeleton catalogue (Table I).
func expT1() {
	header("T1 — Table I: data-parallel skeletons")
	rows := [][2]string{
		{"map", "element-wise application of f on ~v (map keyword; lambdas or named fns)"},
		{"filter", "element-wise selection with predicate p; computes a selection vector"},
		{"fold", "reduce ~v with initial value i and reduction function r"},
		{"read", "consecutive read from position i in ~d (dynamic count)"},
		{"write", "consecutive write of ~v to location i of ~d"},
		{"gather", "read from locations ~i in ~d"},
		{"scatter", "write ~v to locations ~i of ~d with conflict fn (last/first/sum/min/max)"},
		{"gen", "fill array with f(0..n-1)"},
		{"condense", "eliminate the selection vector from ~v"},
		{"merge", "abstract merge: join / union / diff / intersect over sorted flows"},
	}
	for _, r := range rows {
		fmt.Printf("  %-10s %s\n", r[0], r[1])
	}
	fmt.Printf("\npre-compiled vectorized kernels backing them: %d\n", advm.KernelCount())
}

// expF1F2 runs Figure 2 and prints the Figure-1 transition log.
func expF1F2() {
	header("F2 — Figure 2 program")
	fmt.Print(dsl.Figure2Source)

	sess := advm.MustCompile(dsl.Figure2Source, map[string]advm.Kind{
		"some_data": advm.I64, "v": advm.I64, "w": advm.I64,
	},
		advm.WithSyncOptimizer(true),
		advm.WithHotThresholds(2, 200*time.Microsecond),
	)

	data := make([]int64, 4096)
	for i := range data {
		data[i] = int64(i%7 - 3)
	}
	for r := 0; r < 3; r++ {
		v := advm.NewVector(advm.I64, 0, 4096)
		w := advm.NewVector(advm.I64, 0, 4096)
		if err := sess.Run(context.Background(), map[string]*advm.Vector{
			"some_data": advm.FromI64(data), "v": v, "w": w,
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if r == 2 {
			fmt.Printf("\noutputs after run %d: v=%s w=%s\n", r+1, v, w)
		}
	}

	header("F1 — Figure 1 state machine transitions")
	for _, tr := range sess.Stats().Transitions {
		fmt.Printf("  %v\n", tr)
	}
	fmt.Println("\nfinal plan:")
	fmt.Print(sess.PlanReport())
}

// expF3 prints the Figure-3 dependency graph and greedy partition.
func expF3() {
	header("F3 — Figure 3: dependency graph, greedily partitioned")
	ast := dsl.MustParse(dsl.Figure2Source)
	np, err := nir.Normalize(ast, map[string]vector.Kind{
		"some_data": vector.I64, "v": vector.I64, "w": vector.I64,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	it := interp.New(np)
	var seg *interp.Segment
	for _, s := range it.Segments {
		if seg == nil || len(s.Instrs) > len(seg.Instrs) {
			seg = s
		}
	}
	g := depgraph.Build(seg.Instrs, nil)
	frags := depgraph.Partition(g, depgraph.DefaultConstraints())
	for i, f := range frags {
		fmt.Printf("function %d: %s\n", i+1, f)
		for _, n := range f.Nodes {
			fmt.Printf("    %s\n", g.Nodes[n].Instr)
		}
	}
	fmt.Println("\nexcluded from functions (interpreted): filters and scalar glue")
	fmt.Println("\nGraphviz:")
	fmt.Print(depgraph.Dot(g, frags))
}

// expE1 prints the Q1 strategy table.
func expE1(sf float64) {
	header(fmt.Sprintf("E1 — TPC-H Q1 strategies (SF %.3f)", sf))
	st := tpch.GenLineitem(sf, 42)
	cl := tpch.Compact(st)
	fmt.Printf("%d lineitem rows\n\n", st.Rows())

	measure := func(label string, f func() error) {
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintln(os.Stderr, label, err)
			os.Exit(1)
		}
		fmt.Printf("  %-44s %12v\n", label, time.Since(start).Round(time.Microsecond))
	}
	measure("tuple-at-a-time compiled (HyPer-style)", func() error {
		tpch.Q1HyPer(st, tpch.Q1Cutoff)
		return nil
	})
	measure("vectorized interpreted (X100-style)", func() error {
		_, err := tpch.Q1Engine(context.Background(), st, tpch.Q1Cutoff, tpch.Q1Options{PreAgg: engine.PreAggOff})
		return err
	})
	measure("vectorized + compact types + pre-agg [12]", func() error {
		tpch.Q1Compact(cl, tpch.Q1Cutoff)
		return nil
	})
	measure("adaptive VM (JIT traces, modeled latency)", func() error {
		_, err := tpch.Q1Engine(context.Background(), st, tpch.Q1Cutoff, tpch.Q1Options{
			JIT: true, JITOpt: jit.Options{CompileLatency: jit.DefaultCompileLatency},
		})
		return err
	})
	fmt.Println("\nexpected shape: compact+preagg ≪ compiled < adaptive < plain vectorized")
}

// expE3 prints the selectivity specialization series.
func expE3() {
	header("E3 — selectivity specialization (full vs selective vs adaptive)")
	n := 1 << 19
	rng := rand.New(rand.NewSource(3))
	st := advm.NewTable(advm.NewSchema("key", advm.I64, "val", advm.I64))
	for i := 0; i < n; i++ {
		st.AppendRow(advm.I64Value(rng.Int63n(1000)), advm.I64Value(rng.Int63n(1000)))
	}
	sess, err := advm.NewSession()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("  %-12s %12s %12s %12s\n", "selectivity", "full", "selective", "adaptive")
	for _, sel := range []int64{10, 100, 300, 500, 700, 900, 990} {
		var times [3]time.Duration
		for i, mode := range []advm.EvalMode{advm.EvalFull, advm.EvalSelective, advm.EvalAdaptive} {
			plan := advm.Scan(st, "key", "val").
				FilterMode(advm.EvalFull, fmt.Sprintf(`(\k -> k < %d)`, sel), "key").
				ComputeMode(mode, "out", `(\v -> (v * 3 + 7) * (v - 1))`, advm.I64, "val")
			start := time.Now()
			rows, err := sess.Query(context.Background(), plan)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if _, err := rows.Count(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			times[i] = time.Since(start)
		}
		fmt.Printf("  %-12.3f %12v %12v %12v\n", float64(sel)/1000,
			times[0].Round(time.Microsecond), times[1].Round(time.Microsecond), times[2].Round(time.Microsecond))
	}
}

// expE5 prints the compressed-execution comparison.
func expE5() {
	header("E5 — compressed execution with per-block scheme drift")
	rng := rand.New(rand.NewSource(5))
	var data []int64
	for blk := 0; blk < 64; blk++ {
		switch blk % 3 {
		case 0:
			v := rng.Int63n(100)
			for i := 0; i < compress.DefaultBlockLen; i++ {
				if i%500 == 0 {
					v = rng.Int63n(100)
				}
				data = append(data, v)
			}
		case 1:
			for i := 0; i < compress.DefaultBlockLen; i++ {
				data = append(data, int64(rng.Intn(5))*1000)
			}
		default:
			for i := 0; i < compress.DefaultBlockLen; i++ {
				data = append(data, 1<<20+rng.Int63n(512))
			}
		}
	}
	col, err := compress.BuildColumn(data, compress.DefaultBlockLen, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("  %d blocks, %d scheme changes, %.1f%% of raw size\n\n",
		len(col.Blocks()), col.SchemeChanges(),
		100*float64(col.CompressedBytes())/float64(8*len(data)))
	buf := make([]int64, compress.DefaultBlockLen)
	start := time.Now()
	var t1 int64
	for _, blk := range col.Blocks() {
		blk.Decompress(buf[:blk.Len()])
		for _, v := range buf[:blk.Len()] {
			if v > 100 {
				t1 += v
			}
		}
	}
	d1 := time.Since(start)
	start = time.Now()
	var t2 int64
	for _, blk := range col.Blocks() {
		t2 += blk.SumGreater(100)
	}
	d2 := time.Since(start)
	sc := compress.NewAdaptiveScanner(nil)
	start = time.Now()
	t3 := sc.SumGreater(col, 100)
	d3 := time.Since(start)
	fmt.Printf("  decompress+interpret   %12v\n", d1)
	fmt.Printf("  compressed execution   %12v\n", d2)
	fmt.Printf("  adaptive (VM-style)    %12v   fallbacks=%d specialized=%d\n", d3, sc.Fallbacks, sc.Specialized)
	if t1 != t2 || t2 != t3 {
		fmt.Fprintln(os.Stderr, "results disagree!")
		os.Exit(1)
	}
}

// benchRecord is one BENCH_*.json perf record: serial vs parallel ns/op for
// a query, so future changes have a trajectory to compare against. CalibNs
// measures a fixed scalar workload on the same host in the same process —
// the denominator benchdiff uses to compare records taken on machines of
// different speeds (or under different load) without drowning in noise.
type benchRecord struct {
	Benchmark     string  `json:"benchmark"`
	ScaleFactor   float64 `json:"scale_factor"`
	Rows          int     `json:"rows"`
	Workers       int     `json:"workers"`
	Iters         int     `json:"iters"`
	SerialNsOp    int64   `json:"serial_ns_op"`
	Parallel4NsOp int64   `json:"parallel4_ns_op"`
	Speedup       float64 `json:"speedup"`
	Identical     bool    `json:"identical"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	CalibNs       int64   `json:"calib_ns"`
}

// calibSink defeats dead-code elimination in calibrate.
var calibSink int64

// calibrate times a fixed single-threaded integer workload (best of 3).
func calibrate() int64 {
	var best time.Duration
	for r := 0; r < 3; r++ {
		start := time.Now()
		var acc int64
		for i := int64(0); i < 1<<26; i++ {
			acc += (i * i) >> 7
		}
		calibSink = acc
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	return best.Nanoseconds()
}

// benchCollect runs the plan to completion and returns every result value.
func benchCollect(sess *advm.Session, plan *advm.Plan) ([][]advm.Value, error) {
	rows, err := sess.Query(context.Background(), plan)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var out [][]advm.Value
	n := len(rows.Columns())
	for rows.Next() {
		row := make([]advm.Value, n)
		dests := make([]any, n)
		for i := range row {
			dests[i] = &row[i]
		}
		if err := rows.Scan(dests...); err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, rows.Err()
}

// expE15 measures morsel-parallel query execution: Q1, Q6 and the
// three-table Q3 serial vs WithParallelism(4), verifying byte-identical
// results. With outDir != "" it writes BENCH_q1/q6/q3.json there (the CI
// perf trajectory); a result mismatch is fatal either way. dataDir reuses
// pre-generated tables (tpch-gen -binary) instead of regenerating them.
func expE15(sf float64, dataDir, outDir string) {
	const workers = 4
	// Best-of-7: the records feed a ±25% CI gate, and the smallest query
	// (Q6, single-digit ms) needs the extra repetitions to keep scheduler
	// and GC noise out of the minimum.
	const iters = 7
	header(fmt.Sprintf("E15 — morsel-parallel query execution (SF %.3f, %d workers)", sf, workers))
	st, err := tpch.LoadOrGen(dataDir, "lineitem", sf, 42)
	if err != nil {
		fatalE15(err)
	}
	ord, err := tpch.LoadOrGen(dataDir, "orders", sf, 42)
	if err != nil {
		fatalE15(err)
	}
	cust, err := tpch.LoadOrGen(dataDir, "customer", sf, 42)
	if err != nil {
		fatalE15(err)
	}
	calibNs := calibrate()
	fmt.Printf("%d lineitem rows, GOMAXPROCS=%d, calib=%v\n\n",
		st.Rows(), runtime.GOMAXPROCS(0), time.Duration(calibNs).Round(time.Microsecond))

	eng, err := advm.NewEngine(
		advm.WithParallelism(workers),
		advm.WithJITOptions(advm.JITOptions{CompileLatency: advm.NoCompileLatency}))
	if err != nil {
		fatalE15(err)
	}
	defer eng.Close()
	serial, err := eng.Session(advm.WithParallelism(1))
	if err != nil {
		fatalE15(err)
	}
	parallel, err := eng.Session()
	if err != nil {
		fatalE15(err)
	}

	measure := func(sess *advm.Session, plan func(advm.TableSource) *advm.Plan) (time.Duration, [][]advm.Value) {
		var best time.Duration
		var rows [][]advm.Value
		for i := 0; i < iters; i++ {
			start := time.Now()
			r, err := benchCollect(sess, plan(st))
			d := time.Since(start)
			if err != nil {
				fatalE15(err)
			}
			if best == 0 || d < best {
				best, rows = d, r
			}
		}
		return best, rows
	}

	q6p := tpch.DefaultQ6Params()
	q3p := tpch.DefaultQ3Params()
	for _, q := range []struct {
		name string
		plan func(advm.TableSource) *advm.Plan
	}{
		{"q1", tpch.PlanQ1},
		{"q6", func(st advm.TableSource) *advm.Plan { return tpch.PlanQ6(st, q6p) }},
		{"q3", func(st advm.TableSource) *advm.Plan { return tpch.PlanQ3(st, ord, cust, q3p) }},
	} {
		serialNs, want := measure(serial, q.plan)
		parallelNs, got := measure(parallel, q.plan)
		if !sameResults(want, got) {
			fatalE15(fmt.Errorf("%s: parallel result differs from serial", q.name))
		}
		rec := benchRecord{
			Benchmark: q.name, ScaleFactor: sf, Rows: st.Rows(),
			Workers: workers, Iters: iters,
			SerialNsOp: serialNs.Nanoseconds(), Parallel4NsOp: parallelNs.Nanoseconds(),
			Speedup:    float64(serialNs) / float64(parallelNs),
			Identical:  true,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			CalibNs:    calibNs,
		}
		fmt.Printf("  %-4s serial %12v   parallel(%d) %12v   speedup %.2fx   identical=%v\n",
			q.name, serialNs.Round(time.Microsecond), workers,
			parallelNs.Round(time.Microsecond), rec.Speedup, rec.Identical)
		if outDir != "" {
			data, err := json.MarshalIndent(rec, "", "  ")
			if err != nil {
				fatalE15(err)
			}
			path := filepath.Join(outDir, "BENCH_"+q.name+".json")
			if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
				fatalE15(err)
			}
			fmt.Printf("       wrote %s\n", path)
		}
	}
	if runtime.GOMAXPROCS(0) == 1 {
		fmt.Println("\n  note: single-core host — expect no parallel speedup here")
	}
}

func fatalE15(err error) {
	fmt.Fprintln(os.Stderr, "advm-bench: E15:", err)
	os.Exit(1)
}

// deviceRecord is the BENCH_device.json perf record: the same parallel Q6
// measured under the CPU-only policy and under adaptive device placement.
// Wall times should be close (the modeled GPU executes on the host; the
// adaptive leg adds only placement bookkeeping), and the morsel counts
// document where the placer actually sent the work.
type deviceRecord struct {
	Benchmark    string  `json:"benchmark"`
	ScaleFactor  float64 `json:"scale_factor"`
	Rows         int     `json:"rows"`
	Workers      int     `json:"workers"`
	Iters        int     `json:"iters"`
	CPUNsOp      int64   `json:"cpu_ns_op"`
	AdaptiveNsOp int64   `json:"adaptive_ns_op"`
	GPUMorsels   int64   `json:"gpu_morsels"`
	CPUMorsels   int64   `json:"cpu_morsels"`
	Identical    bool    `json:"identical"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	CalibNs      int64   `json:"calib_ns"`
}

// expE16 measures heterogeneous morsel placement on TPC-H Q6: parallel
// CPU-only vs the adaptive DeviceAuto policy, verifying byte-identical
// results against serial execution and reporting where the morsels ran.
// With outDir != "" it writes BENCH_device.json there for the CI gate.
func expE16(sf float64, dataDir, outDir string) {
	const workers = 4
	const iters = 7
	header(fmt.Sprintf("E16 — adaptive morsel placement on Q6 (SF %.3f, %d workers)", sf, workers))
	st, err := tpch.LoadOrGen(dataDir, "lineitem", sf, 42)
	if err != nil {
		fatalE16(err)
	}
	calibNs := calibrate()
	q6p := tpch.DefaultQ6Params()
	plan := func(st *advm.Table) *advm.Plan { return tpch.PlanQ6(st, q6p) }

	eng, err := advm.NewEngine(
		advm.WithParallelism(workers),
		advm.WithJITOptions(advm.JITOptions{CompileLatency: advm.NoCompileLatency}))
	if err != nil {
		fatalE16(err)
	}
	defer eng.Close()
	serial, err := eng.Session(advm.WithParallelism(1))
	if err != nil {
		fatalE16(err)
	}
	cpuOnly, err := eng.Session(advm.WithDevicePolicy(advm.DeviceCPU))
	if err != nil {
		fatalE16(err)
	}
	adaptive, err := eng.Session(advm.WithDevicePolicy(advm.DeviceAuto))
	if err != nil {
		fatalE16(err)
	}

	measure := func(sess *advm.Session) (time.Duration, [][]advm.Value) {
		var best time.Duration
		var rows [][]advm.Value
		for i := 0; i < iters; i++ {
			start := time.Now()
			r, err := benchCollect(sess, plan(st))
			d := time.Since(start)
			if err != nil {
				fatalE16(err)
			}
			if best == 0 || d < best {
				best, rows = d, r
			}
		}
		return best, rows
	}

	// One serial run suffices for the reference rows (no timing needed).
	want, err := benchCollect(serial, plan(st))
	if err != nil {
		fatalE16(err)
	}
	cpuNs, gotCPU := measure(cpuOnly)
	// Warm the residency cache and the placer bias before measuring the
	// adaptive leg: the paper's offload story is about repeated queries
	// over the same (resident) table.
	if _, err := benchCollect(adaptive, plan(st)); err != nil {
		fatalE16(err)
	}
	adaptiveNs, gotAdaptive := measure(adaptive)

	identical := sameResults(want, gotCPU) && sameResults(want, gotAdaptive)
	if !identical {
		fatalE16(fmt.Errorf("device-policy results differ from serial"))
	}
	place := adaptive.Stats().MorselPlacements
	rec := deviceRecord{
		Benchmark: "device_q6", ScaleFactor: sf, Rows: st.Rows(),
		Workers: workers, Iters: iters,
		CPUNsOp: cpuNs.Nanoseconds(), AdaptiveNsOp: adaptiveNs.Nanoseconds(),
		GPUMorsels: place["gpu"], CPUMorsels: place["cpu"],
		Identical:  true,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CalibNs:    calibNs,
	}
	fmt.Printf("  q6   cpu-only %12v   adaptive %12v   morsels cpu=%d gpu=%d   identical=%v\n",
		cpuNs.Round(time.Microsecond), adaptiveNs.Round(time.Microsecond),
		rec.CPUMorsels, rec.GPUMorsels, rec.Identical)
	fmt.Printf("       modeled transfer %v\n", adaptive.Stats().MorselTransfer.Round(time.Microsecond))
	if outDir != "" {
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			fatalE16(err)
		}
		path := filepath.Join(outDir, "BENCH_device.json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fatalE16(err)
		}
		fmt.Printf("       wrote %s\n", path)
	}
}

// sameResults compares two collected result sets exactly.
func sameResults(a, b [][]advm.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for c := range a[i] {
			if !a[i][c].Equal(b[i][c]) {
				return false
			}
		}
	}
	return true
}

func fatalE16(err error) {
	fmt.Fprintln(os.Stderr, "advm-bench: E16:", err)
	os.Exit(1)
}

// expE17 measures advm-serve end to end over loopback HTTP: TPC-H Q6
// through POST /v1/query with 1 client and with 8 concurrent clients
// against one engine, checking that every streamed response is
// byte-identical to the single-client reference. With outDir != "" it
// writes BENCH_server.json (query-record flavor: serial = 1-client ns per
// query, parallel = per-query ns at 8 clients) for the CI gate.
func expE17(sf float64, dataDir, outDir string) {
	const clients = 8
	const itersPerClient = 12
	header(fmt.Sprintf("E17 — advm-serve throughput (SF %.3f, 1 vs %d clients)", sf, clients))
	li, err := tpch.LoadOrGen(dataDir, "lineitem", sf, 42)
	if err != nil {
		fatalE17(err)
	}
	calibNs := calibrate()

	eng, err := advm.NewEngine(
		advm.WithParallelism(4),
		advm.WithJITOptions(advm.JITOptions{CompileLatency: advm.NoCompileLatency}))
	if err != nil {
		fatalE17(err)
	}
	defer eng.Close()
	srv := server.New(eng, server.Config{MaxConcurrent: clients, MaxQueue: 4 * clients})
	srv.RegisterTable("lineitem", li)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const reqBody = `{"query":"q6","opts":{"parallelism":4}}`
	query := func() (string, error) {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(reqBody))
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return "", err
		}
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("status %d: %s", resp.StatusCode, b)
		}
		return string(b), nil
	}

	// Warm up (JIT, residency, connection pool), and fix the reference body.
	want, err := query()
	if err != nil {
		fatalE17(err)
	}

	run := func(clients int) (nsPerQuery int64, identical bool) {
		identical = true
		bodies := make([][]string, clients)
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < itersPerClient; i++ {
					b, err := query()
					if err != nil {
						fatalE17(err)
					}
					bodies[c] = append(bodies[c], b)
				}
			}(c)
		}
		wg.Wait()
		wall := time.Since(start)
		for _, bs := range bodies {
			for _, b := range bs {
				if b != want {
					identical = false
				}
			}
		}
		return wall.Nanoseconds() / int64(clients*itersPerClient), identical
	}

	oneNs, oneSame := run(1)
	eightNs, eightSame := run(clients)
	identical := oneSame && eightSame
	if !identical {
		fatalE17(fmt.Errorf("concurrent responses differ from the single-client reference"))
	}
	rec := benchRecord{
		Benchmark: "server_q6", ScaleFactor: sf, Rows: li.Rows(),
		Workers: clients, Iters: itersPerClient,
		SerialNsOp: oneNs, Parallel4NsOp: eightNs,
		Speedup:    float64(oneNs) / float64(eightNs),
		Identical:  identical,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CalibNs:    calibNs,
	}
	fmt.Printf("  q6   1 client %12v/query   %d clients %12v/query   throughput ×%.2f   identical=%v\n",
		time.Duration(oneNs).Round(time.Microsecond), clients,
		time.Duration(eightNs).Round(time.Microsecond), rec.Speedup, identical)
	fmt.Printf("       engine: %+v\n", eng.Stats())
	if outDir != "" {
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			fatalE17(err)
		}
		path := filepath.Join(outDir, "BENCH_server.json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fatalE17(err)
		}
		fmt.Printf("       wrote %s\n", path)
	}
}

func fatalE17(err error) {
	fmt.Fprintln(os.Stderr, "advm-bench: E17:", err)
	os.Exit(1)
}

// colstoreRecord is the BENCH_colstore.json perf record: TPC-H Q1 and Q6
// measured serially over the in-RAM generated table, over the compressed
// colstore directory with zone-map pruning disabled (every segment decoded
// from disk), and with pruning on — documenting what disk-backed execution
// costs and what the zone maps claw back. All six legs are serial, so
// benchdiff gates them all (calibration-normalized).
type colstoreRecord struct {
	Benchmark       string  `json:"benchmark"`
	ScaleFactor     float64 `json:"scale_factor"`
	Rows            int     `json:"rows"`
	Iters           int     `json:"iters"`
	Q1RAMNsOp       int64   `json:"q1_ram_ns_op"`
	Q1ColdNsOp      int64   `json:"q1_cold_ns_op"`
	Q1SkipNsOp      int64   `json:"q1_skip_ns_op"`
	Q6RAMNsOp       int64   `json:"q6_ram_ns_op"`
	Q6ColdNsOp      int64   `json:"q6_cold_ns_op"`
	Q6SkipNsOp      int64   `json:"q6_skip_ns_op"`
	SegmentsScanned int64   `json:"segments_scanned"`
	SegmentsSkipped int64   `json:"segments_skipped"`
	Identical       bool    `json:"identical"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	CalibNs         int64   `json:"calib_ns"`
}

// expE18 measures disk-backed columnar execution: Q1 and Q6 over the in-RAM
// lineitem table vs the same queries streaming from a compressed colstore
// directory, with zone-map segment skipping off ("cold": every segment is
// decoded) and on. The scale factor is pinned at 0.1 so the record tracks a
// fixed workload regardless of -sf. Results must be byte-identical across
// all legs, and the skipping legs must actually prune segments. With
// outDir != "" it writes BENCH_colstore.json there for the CI gate.
func expE18(dataDir, outDir string) {
	const sf = 0.1
	// Best-of-7, matching E15: the records feed the ±25% CI gate and the
	// serial legs need the repetitions to keep scheduler noise out of the
	// minimum.
	const iters = 7
	header(fmt.Sprintf("E18 — disk-backed colstore scans (SF %.3f, serial)", sf))
	root := dataDir
	if root == "" {
		tmp, err := os.MkdirTemp("", "advm-colstore")
		if err != nil {
			fatalE18(err)
		}
		defer os.RemoveAll(tmp)
		root = tmp
	}
	st, err := tpch.LoadOrGen(root, "lineitem", sf, 42)
	if err != nil {
		fatalE18(err)
	}
	dir, err := tpch.LoadOrGenColstore(root, "lineitem", sf, 42)
	if err != nil {
		fatalE18(err)
	}
	calibNs := calibrate()

	eng, err := advm.NewEngine(
		advm.WithJITOptions(advm.JITOptions{CompileLatency: advm.NoCompileLatency}))
	if err != nil {
		fatalE18(err)
	}
	defer eng.Close()
	ram, err := eng.Session(advm.WithParallelism(1))
	if err != nil {
		fatalE18(err)
	}
	cold, err := eng.Session(advm.WithParallelism(1), advm.WithScanPruning(false))
	if err != nil {
		fatalE18(err)
	}
	skip, err := eng.Session(advm.WithParallelism(1))
	if err != nil {
		fatalE18(err)
	}
	stored, err := eng.OpenTable(dir)
	if err != nil {
		fatalE18(err)
	}
	fmt.Printf("%d lineitem rows, colstore %s\n\n", st.Rows(), dir)

	measure := func(sess *advm.Session, plan *advm.Plan) (time.Duration, [][]advm.Value) {
		var best time.Duration
		var rows [][]advm.Value
		for i := 0; i < iters; i++ {
			start := time.Now()
			r, err := benchCollect(sess, plan)
			d := time.Since(start)
			if err != nil {
				fatalE18(err)
			}
			if best == 0 || d < best {
				best, rows = d, r
			}
		}
		return best, rows
	}

	q6p := tpch.DefaultQ6Params()
	rec := colstoreRecord{
		Benchmark: "colstore", ScaleFactor: sf, Rows: st.Rows(), Iters: iters,
		Identical:  true,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CalibNs:    calibNs,
	}
	for _, q := range []struct {
		name            string
		plan            func(advm.TableSource) *advm.Plan
		ramNs, coldNs   *int64
		skipNs          *int64
		wantSkipSkipped bool
	}{
		{"q1", tpch.PlanQ1, &rec.Q1RAMNsOp, &rec.Q1ColdNsOp, &rec.Q1SkipNsOp, false},
		{"q6", func(src advm.TableSource) *advm.Plan { return tpch.PlanQ6(src, q6p) },
			&rec.Q6RAMNsOp, &rec.Q6ColdNsOp, &rec.Q6SkipNsOp, true},
	} {
		ramD, want := measure(ram, q.plan(st))
		coldD, gotCold := measure(cold, q.plan(stored))
		before := sessSkipped(skip)
		skipD, gotSkip := measure(skip, q.plan(stored))
		if !sameResults(want, gotCold) || !sameResults(want, gotSkip) {
			fatalE18(fmt.Errorf("%s: colstore result differs from in-RAM", q.name))
		}
		if q.wantSkipSkipped && sessSkipped(skip) == before {
			fatalE18(fmt.Errorf("%s: zone maps skipped no segments", q.name))
		}
		*q.ramNs, *q.coldNs, *q.skipNs = ramD.Nanoseconds(), coldD.Nanoseconds(), skipD.Nanoseconds()
		fmt.Printf("  %-4s ram %12v   colstore %12v   +skipping %12v\n",
			q.name, ramD.Round(time.Microsecond), coldD.Round(time.Microsecond),
			skipD.Round(time.Microsecond))
	}
	sst := skip.Stats()
	rec.SegmentsScanned, rec.SegmentsSkipped = sst.SegmentsScanned, sst.SegmentsSkipped
	fmt.Printf("       skipping legs: %d segments decoded, %d pruned by zone maps\n",
		rec.SegmentsScanned, rec.SegmentsSkipped)
	if outDir != "" {
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			fatalE18(err)
		}
		path := filepath.Join(outDir, "BENCH_colstore.json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fatalE18(err)
		}
		fmt.Printf("       wrote %s\n", path)
	}
}

// sessSkipped reads a session's lifetime zone-map skip counter.
func sessSkipped(sess *advm.Session) int64 {
	return sess.Stats().SegmentsSkipped
}

func fatalE18(err error) {
	fmt.Fprintln(os.Stderr, "advm-bench: E18:", err)
	os.Exit(1)
}

// fusedRecord is the BENCH_fused.json perf record: serial Q1 and Q6 run by
// the vectorized interpreter (tiered execution off) vs the same plans with
// tiering forced hot, so every execution runs its scan→filter→compute
// segment as one specialized fused loop. Q6FusedNsOp doubles as the flavor
// marker benchdiff dispatches on. All legs are serial, so benchdiff gates
// them all (calibration-normalized).
type fusedRecord struct {
	Benchmark    string  `json:"benchmark"`
	ScaleFactor  float64 `json:"scale_factor"`
	Rows         int     `json:"rows"`
	Iters        int     `json:"iters"`
	Q1InterpNsOp int64   `json:"q1_interp_ns_op"`
	Q1FusedNsOp  int64   `json:"q1_fused_ns_op"`
	Q6InterpNsOp int64   `json:"q6_interp_ns_op"`
	Q6FusedNsOp  int64   `json:"q6_fused_ns_op"`
	FusedQueries int64   `json:"fused_queries"`
	FusedDeopts  int64   `json:"fused_deopts"`
	Identical    bool    `json:"identical"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	CalibNs      int64   `json:"calib_ns"`
}

// expE19 measures tiered execution: serial Q1 and Q6 interpreted (tiering
// off) vs forced hot (WithTierThresholds(1, 1) — fused loops from the first
// execution). The scale factor is pinned at 0.1 so the record tracks a fixed
// workload regardless of -sf. Results must be byte-identical across the
// tiers, and the hot legs must actually mount fused loops. With outDir != ""
// it writes BENCH_fused.json there for the CI gate.
func expE19(dataDir, outDir string) {
	const sf = 0.1
	// Best-of-7, matching E15/E18: the records feed the ±25% CI gate.
	const iters = 7
	header(fmt.Sprintf("E19 — tiered execution: fused loops vs interpreter (SF %.3f, serial)", sf))
	st, err := tpch.LoadOrGen(dataDir, "lineitem", sf, 42)
	if err != nil {
		fatalE19(err)
	}
	calibNs := calibrate()

	eng, err := advm.NewEngine(
		advm.WithJITOptions(advm.JITOptions{CompileLatency: advm.NoCompileLatency}))
	if err != nil {
		fatalE19(err)
	}
	defer eng.Close()
	interp, err := eng.Session(advm.WithParallelism(1), advm.WithTieredExecution(false))
	if err != nil {
		fatalE19(err)
	}
	hot, err := eng.Session(advm.WithParallelism(1), advm.WithTierThresholds(1, 1))
	if err != nil {
		fatalE19(err)
	}
	fmt.Printf("%d lineitem rows, GOMAXPROCS=%d, calib=%v\n\n",
		st.Rows(), runtime.GOMAXPROCS(0), time.Duration(calibNs).Round(time.Microsecond))

	measure := func(sess *advm.Session, plan func() *advm.Plan) (time.Duration, [][]advm.Value) {
		var best time.Duration
		var rows [][]advm.Value
		for i := 0; i < iters; i++ {
			start := time.Now()
			r, err := benchCollect(sess, plan())
			d := time.Since(start)
			if err != nil {
				fatalE19(err)
			}
			if best == 0 || d < best {
				best, rows = d, r
			}
		}
		return best, rows
	}

	q6p := tpch.DefaultQ6Params()
	rec := fusedRecord{
		Benchmark: "fused", ScaleFactor: sf, Rows: st.Rows(), Iters: iters,
		Identical:  true,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CalibNs:    calibNs,
	}
	for _, q := range []struct {
		name              string
		plan              func() *advm.Plan
		interpNs, fusedNs *int64
	}{
		{"q1", func() *advm.Plan { return tpch.PlanQ1(st) }, &rec.Q1InterpNsOp, &rec.Q1FusedNsOp},
		{"q6", func() *advm.Plan { return tpch.PlanQ6(st, q6p) }, &rec.Q6InterpNsOp, &rec.Q6FusedNsOp},
	} {
		before := hot.Stats().FusedQueries
		interpD, want := measure(interp, q.plan)
		fusedD, got := measure(hot, q.plan)
		if !sameResults(want, got) {
			fatalE19(fmt.Errorf("%s: fused result differs from interpreted", q.name))
		}
		if hot.Stats().FusedQueries == before {
			fatalE19(fmt.Errorf("%s: forced-hot leg mounted no fused loops", q.name))
		}
		*q.interpNs, *q.fusedNs = interpD.Nanoseconds(), fusedD.Nanoseconds()
		fmt.Printf("  %-4s interpreted %12v   fused %12v   ratio %.2f   identical=%v\n",
			q.name, interpD.Round(time.Microsecond), fusedD.Round(time.Microsecond),
			float64(fusedD)/float64(interpD), rec.Identical)
	}
	hst := hot.Stats()
	rec.FusedQueries, rec.FusedDeopts = hst.FusedQueries, hst.FusedDeopts
	fmt.Printf("       hot legs: %d fused queries, %d deopts\n", rec.FusedQueries, rec.FusedDeopts)
	if outDir != "" {
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			fatalE19(err)
		}
		path := filepath.Join(outDir, "BENCH_fused.json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fatalE19(err)
		}
		fmt.Printf("       wrote %s\n", path)
	}
}

func fatalE19(err error) {
	fmt.Fprintln(os.Stderr, "advm-bench: E19:", err)
	os.Exit(1)
}

// multicoreRecord is the BENCH_multicore.json perf record: Q1, Q3 and Q6
// serial vs WithParallelism(4) in one record, taken with the intended
// GOMAXPROCS for the parallel legs. Q1SerialNsOp doubles as the flavor
// marker benchdiff dispatches on. Unlike the per-query records (whose
// parallel legs are informational), this record's speedups are *gated*:
// benchdiff fails when a speedup drops below its floor while the recording
// host actually had NumCPU ≥ Workers cores — an undersubscribed host (such
// as a single-core container) skips the speedup gate instead of failing it.
type multicoreRecord struct {
	Benchmark    string  `json:"benchmark"`
	ScaleFactor  float64 `json:"scale_factor"`
	Rows         int     `json:"rows"`
	Workers      int     `json:"workers"`
	Iters        int     `json:"iters"`
	Q1SerialNsOp int64   `json:"q1_serial_ns_op"`
	Q1ParNsOp    int64   `json:"q1_par_ns_op"`
	Q1Speedup    float64 `json:"q1_speedup"`
	Q3SerialNsOp int64   `json:"q3_serial_ns_op"`
	Q3ParNsOp    int64   `json:"q3_par_ns_op"`
	Q3Speedup    float64 `json:"q3_speedup"`
	Q6SerialNsOp int64   `json:"q6_serial_ns_op"`
	Q6ParNsOp    int64   `json:"q6_par_ns_op"`
	Q6Speedup    float64 `json:"q6_speedup"`
	HCSerialNsOp int64   `json:"hc_serial_ns_op,omitempty"`
	HCParNsOp    int64   `json:"hc_par_ns_op,omitempty"`
	HCSpeedup    float64 `json:"hc_speedup,omitempty"`
	MorselSteals int64   `json:"morsel_steals"`
	Identical    bool    `json:"identical"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	NumCPU       int     `json:"num_cpu"`
	CalibNs      int64   `json:"calib_ns"`
	// Per-query speedup floors, read by benchdiff from the BASELINE record
	// only: raising one is a checked-in, reviewed act, not something a
	// current run can weaken. Zero means benchdiff's default floor applies.
	Q1SpeedupFloor float64 `json:"q1_speedup_floor,omitempty"`
	Q3SpeedupFloor float64 `json:"q3_speedup_floor,omitempty"`
	Q6SpeedupFloor float64 `json:"q6_speedup_floor,omitempty"`
	HCSpeedupFloor float64 `json:"hc_speedup_floor,omitempty"`
}

// expE20 measures multi-core scaling of the work-stealing morsel scheduler:
// Q1, Q3 and Q6 serial vs WithParallelism(4), byte-identity enforced, all
// three speedups in one record together with the host's GOMAXPROCS and CPU
// count — the context benchdiff needs to decide whether the speedup floor
// applies. With outDir != "" it writes BENCH_multicore.json there.
func expE20(sf float64, dataDir, outDir string) {
	const workers = 4
	const iters = 7
	header(fmt.Sprintf("E20 — multi-core scaling, work-stealing dispatch (SF %.3f, %d workers)", sf, workers))
	st, err := tpch.LoadOrGen(dataDir, "lineitem", sf, 42)
	if err != nil {
		fatalE20(err)
	}
	ord, err := tpch.LoadOrGen(dataDir, "orders", sf, 42)
	if err != nil {
		fatalE20(err)
	}
	cust, err := tpch.LoadOrGen(dataDir, "customer", sf, 42)
	if err != nil {
		fatalE20(err)
	}
	calibNs := calibrate()
	fmt.Printf("%d lineitem rows, GOMAXPROCS=%d, NumCPU=%d, calib=%v\n\n",
		st.Rows(), runtime.GOMAXPROCS(0), runtime.NumCPU(),
		time.Duration(calibNs).Round(time.Microsecond))

	eng, err := advm.NewEngine(
		advm.WithParallelism(workers),
		advm.WithJITOptions(advm.JITOptions{CompileLatency: advm.NoCompileLatency}))
	if err != nil {
		fatalE20(err)
	}
	defer eng.Close()
	serial, err := eng.Session(advm.WithParallelism(1))
	if err != nil {
		fatalE20(err)
	}
	parallel, err := eng.Session()
	if err != nil {
		fatalE20(err)
	}

	measure := func(sess *advm.Session, plan func(advm.TableSource) *advm.Plan) (time.Duration, [][]advm.Value) {
		var best time.Duration
		var rows [][]advm.Value
		for i := 0; i < iters; i++ {
			start := time.Now()
			r, err := benchCollect(sess, plan(st))
			d := time.Since(start)
			if err != nil {
				fatalE20(err)
			}
			if best == 0 || d < best {
				best, rows = d, r
			}
		}
		return best, rows
	}

	q6p := tpch.DefaultQ6Params()
	q3p := tpch.DefaultQ3Params()
	// hc is a Q1-shaped grouped aggregation whose key pair (l_orderkey,
	// l_quantity) is near-unique per row — ~100k groups at SF 0.02 — so it
	// stresses per-morsel aggregation-table footprint rather than arithmetic.
	// Both key columns live in the store, which also exercises the zone-map
	// distinct-estimate table sizing.
	hcPlan := func(st advm.TableSource) *advm.Plan {
		return advm.Scan(st, "l_orderkey", "l_quantity", "l_extendedprice", "l_discount").
			Compute("disc_price", `(\p d -> p * (1.0 - d))`, advm.F64, "l_extendedprice", "l_discount").
			Aggregate([]string{"l_orderkey", "l_quantity"},
				advm.Agg{Func: advm.AggSum, Col: "disc_price", As: "revenue"},
				advm.Agg{Func: advm.AggAvg, Col: "l_quantity", As: "avg_qty"},
				advm.Agg{Func: advm.AggCount, As: "cnt"})
	}
	rec := multicoreRecord{
		Benchmark: "multicore", ScaleFactor: sf, Rows: st.Rows(),
		Workers: workers, Iters: iters,
		Identical:  true,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		CalibNs:    calibNs,
		// Q3's parallel plan must beat serial outright: the floor was raised
		// to 1.0 when the overlapped build + parallel top-k work landed.
		Q3SpeedupFloor: 1.0,
	}
	for _, q := range []struct {
		name            string
		plan            func(advm.TableSource) *advm.Plan
		serialNs, parNs *int64
		speedup         *float64
	}{
		{"q1", tpch.PlanQ1, &rec.Q1SerialNsOp, &rec.Q1ParNsOp, &rec.Q1Speedup},
		{"q3", func(st advm.TableSource) *advm.Plan { return tpch.PlanQ3(st, ord, cust, q3p) },
			&rec.Q3SerialNsOp, &rec.Q3ParNsOp, &rec.Q3Speedup},
		{"q6", func(st advm.TableSource) *advm.Plan { return tpch.PlanQ6(st, q6p) },
			&rec.Q6SerialNsOp, &rec.Q6ParNsOp, &rec.Q6Speedup},
		{"hc", hcPlan, &rec.HCSerialNsOp, &rec.HCParNsOp, &rec.HCSpeedup},
	} {
		serialD, want := measure(serial, q.plan)
		parD, got := measure(parallel, q.plan)
		if !sameResults(want, got) {
			fatalE20(fmt.Errorf("%s: parallel result differs from serial", q.name))
		}
		*q.serialNs, *q.parNs = serialD.Nanoseconds(), parD.Nanoseconds()
		*q.speedup = float64(serialD) / float64(parD)
		fmt.Printf("  %-4s serial %12v   parallel(%d) %12v   speedup %.2fx   identical=%v\n",
			q.name, serialD.Round(time.Microsecond), workers,
			parD.Round(time.Microsecond), *q.speedup, rec.Identical)
	}
	rec.MorselSteals = parallel.Stats().MorselSteals
	fmt.Printf("       parallel legs: %d morsels stolen across all runs\n", rec.MorselSteals)
	if runtime.NumCPU() < workers {
		fmt.Printf("       note: host has %d CPUs for %d workers — speedups here are not gateable\n",
			runtime.NumCPU(), workers)
	}
	if outDir != "" {
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			fatalE20(err)
		}
		path := filepath.Join(outDir, "BENCH_multicore.json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fatalE20(err)
		}
		fmt.Printf("       wrote %s\n", path)
	}
}

func fatalE20(err error) {
	fmt.Fprintln(os.Stderr, "advm-bench: E20:", err)
	os.Exit(1)
}

// expE6 prints the device placement series.
func expE6() {
	header("E6 — adaptive CPU/GPU placement (modeled costs)")
	g := gpu.New(gpu.DefaultConfig())
	cpu := device.NewCPU()
	placer := device.NewPlacer(cpu, g)
	fmt.Printf("  %-10s %-9s %14s %14s   %s\n", "elems", "resident", "cpu model", "gpu model", "placement")
	for _, resident := range []bool{false, true} {
		for _, elems := range []int{1 << 8, 1 << 12, 1 << 16, 1 << 20, 1 << 24} {
			name := fmt.Sprintf("c%d%v", elems, resident)
			k := device.Kernel{
				Name: name, Elems: elems, BytesIn: elems * 8, BytesOut: elems * 8,
				OpsPerElem: 4, Inputs: []string{name},
			}
			if resident {
				g.MakeResident(name, k.BytesIn)
			}
			d := placer.Choose(k)
			fmt.Printf("  %-10d %-9v %14v %14v   → %s\n",
				elems, resident, cpu.Estimate(k).Modeled, g.Estimate(k).Modeled, d.Name())
		}
	}
	fmt.Printf("\n  decisions: %v\n", placer.Decisions)
}

// traceRecord is the BENCH_trace.json perf record: serial Q6 with tracing
// off — the production default every query pays — plus the fully traced leg
// for context. Benchdiff gates only the off leg: the tracing hooks must
// stay free when disabled (a nil-check per call site), within
// TraceMaxRegress of the baseline.
type traceRecord struct {
	Benchmark      string  `json:"benchmark"`
	ScaleFactor    float64 `json:"scale_factor"`
	Rows           int     `json:"rows"`
	Iters          int     `json:"iters"`
	Q6TraceOffNsOp int64   `json:"q6_trace_off_ns_op"`
	Q6TraceOnNsOp  int64   `json:"q6_trace_on_ns_op,omitempty"`
	Identical      bool    `json:"identical"`
	GOMAXPROCS     int     `json:"gomaxprocs"`
	CalibNs        int64   `json:"calib_ns"`
	// TraceMaxRegress is the off-leg regression gate, read by benchdiff from
	// the BASELINE record only (a current run cannot weaken it). Zero means
	// benchdiff's default regression threshold applies.
	TraceMaxRegress float64 `json:"trace_max_regress,omitempty"`
}

// expE21 measures the tracing tax on serial Q6: tracing off (gated — must
// stay within a few percent of the pre-tracing baseline) vs morsel-level
// tracing (informational). The scale factor is pinned at 0.02 to track a
// fixed workload regardless of -sf. With outDir != "" it writes
// BENCH_trace.json there for the CI gate.
func expE21(dataDir, outDir string) {
	const sf = 0.02
	const iters = 15
	header(fmt.Sprintf("E21 — tracing overhead: Q6 off vs morsel-traced (SF %.3f, serial)", sf))
	st, err := tpch.LoadOrGen(dataDir, "lineitem", sf, 42)
	if err != nil {
		fatalE21(err)
	}
	calibNs := calibrate()

	eng, err := advm.NewEngine(
		advm.WithJITOptions(advm.JITOptions{CompileLatency: advm.NoCompileLatency}))
	if err != nil {
		fatalE21(err)
	}
	defer eng.Close()
	sess, err := eng.Session(advm.WithParallelism(1))
	if err != nil {
		fatalE21(err)
	}
	fmt.Printf("%d lineitem rows, GOMAXPROCS=%d, calib=%v\n\n",
		st.Rows(), runtime.GOMAXPROCS(0), time.Duration(calibNs).Round(time.Microsecond))

	q6 := func() *advm.Plan { return tpch.PlanQ6(st, tpch.DefaultQ6Params()) }
	measure := func(level advm.TraceLevel) time.Duration {
		var best time.Duration
		for i := 0; i < iters; i++ {
			start := time.Now()
			rows, err := sess.QueryTraced(context.Background(), q6(), level)
			if err != nil {
				fatalE21(err)
			}
			if _, err := rows.Count(); err != nil {
				fatalE21(err)
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		return best
	}
	offD := measure(advm.TraceOff)
	onD := measure(advm.TraceMorsels)

	// Tracing must be observation only: the traced leg returns the same rows.
	want, err := benchCollect(sess, q6())
	if err != nil {
		fatalE21(err)
	}
	traced, err := eng.Session(advm.WithParallelism(1), advm.WithTracing(advm.TraceMorsels))
	if err != nil {
		fatalE21(err)
	}
	got, err := benchCollect(traced, q6())
	if err != nil {
		fatalE21(err)
	}

	rec := traceRecord{
		Benchmark: "trace", ScaleFactor: sf, Rows: st.Rows(), Iters: iters,
		Q6TraceOffNsOp:  offD.Nanoseconds(),
		Q6TraceOnNsOp:   onD.Nanoseconds(),
		Identical:       sameResults(want, got),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		CalibNs:         calibNs,
		TraceMaxRegress: 0.02,
	}
	if !rec.Identical {
		fatalE21(fmt.Errorf("traced Q6 result differs from untraced"))
	}
	fmt.Printf("  q6   trace-off %12v   trace-morsels %12v   tax %+.1f%%   identical=%v\n",
		offD.Round(time.Microsecond), onD.Round(time.Microsecond),
		100*(float64(onD)/float64(offD)-1), rec.Identical)
	if outDir != "" {
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			fatalE21(err)
		}
		path := filepath.Join(outDir, "BENCH_trace.json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fatalE21(err)
		}
		fmt.Printf("       wrote %s\n", path)
	}
}

func fatalE21(err error) {
	fmt.Fprintln(os.Stderr, "advm-bench: E21:", err)
	os.Exit(1)
}

// writeTraceOut runs one named TPC-H query traced at the morsels level on
// four workers and writes its Chrome trace-event JSON (load it in
// chrome://tracing or Perfetto to see per-worker morsel timelines).
func writeTraceOut(name string, sf float64, dataDir, path string) error {
	li, err := tpch.LoadOrGen(dataDir, "lineitem", sf, 42)
	if err != nil {
		return err
	}
	var mkPlan func() *advm.Plan
	switch name {
	case "q1":
		mkPlan = func() *advm.Plan { return tpch.PlanQ1(li) }
	case "q6":
		mkPlan = func() *advm.Plan { return tpch.PlanQ6(li, tpch.DefaultQ6Params()) }
	case "q3":
		ord, err := tpch.LoadOrGen(dataDir, "orders", sf, 42)
		if err != nil {
			return err
		}
		cust, err := tpch.LoadOrGen(dataDir, "customer", sf, 42)
		if err != nil {
			return err
		}
		mkPlan = func() *advm.Plan { return tpch.PlanQ3(li, ord, cust, tpch.DefaultQ3Params()) }
	default:
		return fmt.Errorf("unknown -trace-query %q (have q1, q6, q3)", name)
	}
	eng, err := advm.NewEngine(
		advm.WithParallelism(4),
		advm.WithJITOptions(advm.JITOptions{CompileLatency: advm.NoCompileLatency}))
	if err != nil {
		return err
	}
	defer eng.Close()
	sess, err := eng.Session()
	if err != nil {
		return err
	}
	rows, err := sess.QueryTraced(context.Background(), mkPlan(), advm.TraceMorsels)
	if err != nil {
		return err
	}
	n, err := rows.Count()
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rows.Trace().WriteChromeJSON(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%s, %d result rows, parallelism 4)\n", path, name, n)
	return nil
}
