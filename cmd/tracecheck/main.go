// Command tracecheck validates a Chrome trace-event JSON file against the
// subset of the trace-event format the exporter emits, so CI can prove the
// export stays loadable by chrome://tracing and Perfetto: a traceEvents
// array of named events with numeric pid/tid, non-negative microsecond
// timestamps, complete ("X") events carrying durations, and instant ("i")
// events carrying a scope.
//
// Usage: tracecheck trace.json [trace2.json ...]
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type event struct {
	Name  string          `json:"name"`
	Phase string          `json:"ph"`
	Ts    *float64        `json:"ts"`
	Dur   *float64        `json:"dur"`
	Pid   *int            `json:"pid"`
	Tid   *int            `json:"tid"`
	Scope string          `json:"s"`
	Args  json.RawMessage `json:"args"`
}

type doc struct {
	TraceEvents []event `json:"traceEvents"`
}

func check(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var d doc
	if err := json.Unmarshal(raw, &d); err != nil {
		return fmt.Errorf("%s: not valid JSON: %w", path, err)
	}
	if len(d.TraceEvents) == 0 {
		return fmt.Errorf("%s: traceEvents is empty", path)
	}
	var complete, meta, workers int
	for i, ev := range d.TraceEvents {
		if ev.Name == "" {
			return fmt.Errorf("%s: event %d has no name", path, i)
		}
		if ev.Pid == nil || ev.Tid == nil {
			return fmt.Errorf("%s: event %d (%s) missing pid/tid", path, i, ev.Name)
		}
		switch ev.Phase {
		case "X":
			complete++
			if ev.Ts == nil || *ev.Ts < 0 {
				return fmt.Errorf("%s: complete event %d (%s) has bad ts", path, i, ev.Name)
			}
			if ev.Dur == nil || *ev.Dur < 0 {
				return fmt.Errorf("%s: complete event %d (%s) has bad dur", path, i, ev.Name)
			}
			if *ev.Tid > 0 {
				workers++
			}
		case "i":
			if ev.Scope == "" {
				return fmt.Errorf("%s: instant event %d (%s) has no scope", path, i, ev.Name)
			}
		case "M":
			meta++
		default:
			return fmt.Errorf("%s: event %d (%s) has unexpected phase %q", path, i, ev.Name, ev.Phase)
		}
	}
	if complete == 0 {
		return fmt.Errorf("%s: no complete (ph=X) spans", path)
	}
	if meta == 0 {
		return fmt.Errorf("%s: no metadata (process/thread name) events", path)
	}
	fmt.Printf("%s: ok (%d events, %d spans, %d on worker timelines)\n",
		path, len(d.TraceEvents), complete, workers)
	return nil
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck trace.json [trace2.json ...]")
		os.Exit(2)
	}
	for _, path := range os.Args[1:] {
		if err := check(path); err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck:", err)
			os.Exit(1)
		}
	}
}
