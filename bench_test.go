// Package repro holds the experiment benchmark harness: one Benchmark per
// table/figure/claim in DESIGN.md's experiment index (T1, F1–F3, E1–E14).
// EXPERIMENTS.md records the paper-vs-measured comparison for each.
package repro

import (
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"repro/advm"
	"repro/internal/compress"
	"repro/internal/depgraph"
	"repro/internal/device"
	"repro/internal/dsl"
	"repro/internal/engine"
	"repro/internal/gpu"
	"repro/internal/interp"
	"repro/internal/jit"
	"repro/internal/morsel"
	"repro/internal/nir"
	"repro/internal/tpch"
	"repro/internal/vector"
)

// ---------------------------------------------------------------------------
// helpers

func mustNormalize(b *testing.B, src string, kinds map[string]vector.Kind) *nir.Program {
	b.Helper()
	prog, err := dsl.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	np, err := nir.Normalize(prog, kinds)
	if err != nil {
		b.Fatal(err)
	}
	return np
}

func i64Data(n int, f func(int) int64) *vector.Vector {
	d := make([]int64, n)
	for i := range d {
		d[i] = f(i)
	}
	return vector.FromI64(d)
}

// ---------------------------------------------------------------------------
// T1 — Table I: the skeleton catalogue, one bench per skeleton.

func BenchmarkExpT1_Skeletons(b *testing.B) {
	n := 1 << 16
	cases := []struct {
		name string
		src  string
		ext  func() map[string]*vector.Vector
	}{
		{"map", `
mut i
i := 0
loop {
  let xs = read i d
  if len(xs) == 0 then break
  write o i (map (\x -> 2*x + 1) xs)
  i := i + len(xs)
}`, nil},
		{"filter_condense", `
mut i
mut k
i := 0
k := 0
loop {
  let xs = read i d
  if len(xs) == 0 then break
  let f = condense (filter (\x -> x % 3 == 0) xs)
  write o k f
  i := i + len(xs)
  k := k + len(f)
}`, nil},
		{"fold", `
mut i
mut t
i := 0
t := 0
loop {
  let xs = read i d
  if len(xs) == 0 then break
  t := t + fold (\acc x -> acc + x) 0 xs
  i := i + len(xs)
}
write o 0 (gen (\j -> t) 1)`, nil},
		{"gather", `
let ix = read 0 idx 4096
write o 0 (gather d ix)`, nil},
		{"scatter", `
let ix = read 0 idx 4096
let xs = read 0 d 4096
scatter o ix xs sum`, nil},
		{"gen", `write o 0 (gen (\j -> j * j % 997) 4096)`, nil},
		{"merge", `
let a = read 0 sa 4096
let c = read 0 sb 4096
write o 0 (merge union a c)`, nil},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			ext := map[string]*vector.Vector{
				"d":   i64Data(n, func(i int) int64 { return int64(i%1000 - 500) }),
				"o":   vector.New(vector.I64, 0, n),
				"idx": i64Data(4096, func(i int) int64 { return int64((i * 7) % 4096) }),
				"sa":  i64Data(4096, func(i int) int64 { return int64(2 * i) }),
				"sb":  i64Data(4096, func(i int) int64 { return int64(3 * i) }),
			}
			kinds := map[string]vector.Kind{}
			for k, v := range ext {
				kinds[k] = v.Kind()
			}
			np := mustNormalize(b, c.src, kinds)
			it := interp.New(np)
			env, err := interp.NewEnv(np, ext)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				env.Reset()
				ext["o"].SetLen(0)
				if err := it.Run(env); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// F1/F2 — the Figure-2 program through the Figure-1 state machine: full
// interpret→optimize→codegen→inject cycle cost, then steady state.

func BenchmarkExpF1_F2_Figure2(b *testing.B) {
	ext := func() map[string]*vector.Vector {
		return map[string]*vector.Vector{
			"some_data": i64Data(4096, func(i int) int64 { return int64(i%9 - 4) }),
			"v":         vector.New(vector.I64, 0, 4096),
			"w":         vector.New(vector.I64, 0, 4096),
		}
	}
	kinds := map[string]vector.Kind{"some_data": vector.I64, "v": vector.I64, "w": vector.I64}

	b.Run("interpret", func(b *testing.B) {
		p := advm.MustCompile(dsl.Figure2Source, kinds,
			advm.WithSyncOptimizer(true), advm.WithJIT(false))
		e := ext()
		for i := 0; i < b.N; i++ {
			if err := p.Run(b.Context(), e); err != nil {
				b.Fatal(err)
			}
			e["v"].SetLen(0)
			e["w"].SetLen(0)
		}
	})
	b.Run("adaptive_steady", func(b *testing.B) {
		// Micro-adaptive revert off: this bench measures the steady state
		// *with* injected traces, and on a slow or loaded host the revert
		// heuristic can deoptimize them mid-warmup and fail the setup check.
		p := advm.MustCompile(dsl.Figure2Source, kinds,
			advm.WithSyncOptimizer(true),
			advm.WithMicroAdaptive(false),
			advm.WithHotThresholds(2, 200*time.Microsecond),
			advm.WithJITOptions(advm.JITOptions{CompileLatency: advm.NoCompileLatency}))
		e := ext()
		// Warm to steady state (traces injected).
		for i := 0; i < 4; i++ {
			if err := p.Run(b.Context(), e); err != nil {
				b.Fatal(err)
			}
			e["v"].SetLen(0)
			e["w"].SetLen(0)
		}
		if len(p.Stats().CompiledSegments) == 0 {
			b.Fatal("not compiled")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := p.Run(b.Context(), e); err != nil {
				b.Fatal(err)
			}
			e["v"].SetLen(0)
			e["w"].SetLen(0)
		}
	})
	b.Run("full_cycle", func(b *testing.B) {
		// Cost of one complete Figure-1 cycle including (modeled) codegen.
		for i := 0; i < b.N; i++ {
			p := advm.MustCompile(dsl.Figure2Source, kinds,
				advm.WithSyncOptimizer(true),
				advm.WithHotThresholds(1, 200*time.Microsecond))
			e := ext()
			if err := p.Run(b.Context(), e); err != nil { // interpret + optimize epilogue
				b.Fatal(err)
			}
			if len(p.Stats().CompiledSegments) == 0 {
				b.Fatal("cycle did not compile")
			}
		}
	})
}

// ---------------------------------------------------------------------------
// F3 — greedy dependency-graph partitioning of the Figure-2 loop body.

func BenchmarkExpF3_Partition(b *testing.B) {
	np := mustNormalize(b, dsl.Figure2Source, map[string]vector.Kind{
		"some_data": vector.I64, "v": vector.I64, "w": vector.I64,
	})
	it := interp.New(np)
	var seg *interp.Segment
	for _, s := range it.Segments {
		if seg == nil || len(s.Instrs) > len(seg.Instrs) {
			seg = s
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := depgraph.Build(seg.Instrs, nil)
		frags := depgraph.Partition(g, depgraph.DefaultConstraints())
		if len(frags) != 2 {
			b.Fatalf("fragments = %d, want 2 (Figure 3)", len(frags))
		}
		if _, err := depgraph.Schedule(g, frags); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E1 — TPC-H Q1 strategy comparison ([12] vs [17]).

func BenchmarkExpE1_Q1(b *testing.B) {
	st := benchTable(b, "lineitem", 0.01)
	cl := tpch.Compact(st)
	b.Run("tuple_at_a_time_compiled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tpch.Q1HyPer(st, tpch.Q1Cutoff)
		}
	})
	b.Run("vectorized_interpreted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tpch.Q1Engine(b.Context(), st, tpch.Q1Cutoff, tpch.Q1Options{JIT: false, PreAgg: engine.PreAggOff}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("vectorized_compact_preagg", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tpch.Q1Compact(cl, tpch.Q1Cutoff)
		}
	})
	b.Run("adaptive_vm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tpch.Q1Engine(b.Context(), st, tpch.Q1Cutoff, tpch.Q1Options{
				JIT: true, JITOpt: jit.Options{CompileLatency: jit.NoCompileLatency},
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// E2 — interpretation vs compilation for short vs long programs (total time
// including modeled compile latency).

func BenchmarkExpE2_ShortVsLong(b *testing.B) {
	src := `
mut i
i := 0
loop {
  let xs = read i d
  if len(xs) == 0 then break
  write o i (map (\x -> (x * 3 + 7) * (x - 1) + x / 3) xs)
  i := i + len(xs)
}`
	for _, rows := range []int{1 << 12, 1 << 20} {
		for _, mode := range []string{"interpret", "jit_with_compile_cost"} {
			b.Run(fmt.Sprintf("%s/rows=%d", mode, rows), func(b *testing.B) {
				kinds := map[string]vector.Kind{"d": vector.I64, "o": vector.I64}
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					opts := []advm.Option{advm.WithSyncOptimizer(true)}
					if mode == "interpret" {
						opts = append(opts, advm.WithJIT(false))
					} else {
						opts = append(opts,
							advm.WithHotThresholds(4, 200*time.Microsecond),
							advm.WithJITOptions(advm.JITOptions{CompileLatency: advm.DefaultCompileLatency}))
					}
					p := advm.MustCompile(src, kinds, opts...)
					ext := map[string]*vector.Vector{
						"d": i64Data(rows, func(i int) int64 { return int64(i) }),
						"o": vector.New(vector.I64, 0, rows),
					}
					b.StartTimer()
					// Fresh VM each iteration: total time includes any
					// compilation the VM decides to do.
					for r := 0; r < 4; r++ {
						if err := p.Run(b.Context(), ext); err != nil {
							b.Fatal(err)
						}
						ext["o"].SetLen(0)
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------------------
// E3 — selectivity specialization: full vs selective evaluation sweep.

func BenchmarkExpE3_Selectivity(b *testing.B) {
	n := 1 << 19
	rng := rand.New(rand.NewSource(3))
	st := vector.NewDSMStore(vector.NewSchema("key", vector.I64, "val", vector.I64))
	for i := 0; i < n; i++ {
		st.AppendRow(vector.I64Value(rng.Int63n(1000)), vector.I64Value(rng.Int63n(1000)))
	}
	for _, sel := range []int64{10, 500, 990} {
		for _, mode := range []engine.EvalMode{engine.EvalFull, engine.EvalSelective, engine.EvalAdaptive} {
			b.Run(fmt.Sprintf("sel=%.2f/%v", float64(sel)/1000, mode), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					scan, _ := engine.NewScan(st, "key", "val")
					f := engine.NewFilter(scan, fmt.Sprintf(`(\k -> k < %d)`, sel), "key").SetMode(engine.EvalFull)
					c := engine.NewCompute(f, "out", `(\v -> (v * 3 + 7) * (v - 1))`, vector.I64, "val").SetMode(mode)
					if _, err := engine.CountRows(b.Context(), c); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------------------
// E4 — on-the-fly reordering of selective operators.

func BenchmarkExpE4_Reorder(b *testing.B) {
	n := 1 << 19
	rng := rand.New(rand.NewSource(4))
	st := vector.NewDSMStore(vector.NewSchema("a", vector.I64, "b", vector.I64))
	for i := 0; i < n; i++ {
		st.AppendRow(vector.I64Value(rng.Int63n(100)), vector.I64Value(rng.Int63n(100)))
	}
	stages := func() []engine.Selector {
		return []engine.Selector{
			&engine.CmpSelector{Label: "A", Col: "a", Threshold: 90, Greater: false}, // ~90%
			&engine.CmpSelector{Label: "B", Col: "b", Threshold: 5, Greater: false},  // ~5%
		}
	}
	b.Run("static_bad_order", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			scan, _ := engine.NewScan(st, "a", "b")
			ch := engine.NewAdaptiveChain(scan, false, stages()...)
			if _, err := engine.CountRows(b.Context(), ch); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("adaptive_order", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			scan, _ := engine.NewScan(st, "a", "b")
			ch := engine.NewAdaptiveChain(scan, true, stages()...)
			if _, err := engine.CountRows(b.Context(), ch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// E5 — compressed execution with per-block scheme drift.

func BenchmarkExpE5_Compressed(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	var data []int64
	for blk := 0; blk < 64; blk++ {
		switch blk % 3 {
		case 0:
			v := rng.Int63n(100)
			for i := 0; i < compress.DefaultBlockLen; i++ {
				if i%500 == 0 {
					v = rng.Int63n(100)
				}
				data = append(data, v)
			}
		case 1:
			for i := 0; i < compress.DefaultBlockLen; i++ {
				data = append(data, int64(rng.Intn(5))*1000)
			}
		default:
			for i := 0; i < compress.DefaultBlockLen; i++ {
				data = append(data, 1<<20+rng.Int63n(512))
			}
		}
	}
	col, err := compress.BuildColumn(data, compress.DefaultBlockLen, nil)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]int64, compress.DefaultBlockLen)
	b.Run("decompress_then_process", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var total int64
			for _, blk := range col.Blocks() {
				blk.Decompress(buf[:blk.Len()])
				for _, v := range buf[:blk.Len()] {
					if v > 100 {
						total += v
					}
				}
			}
		}
	})
	b.Run("compressed_execution", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var total int64
			for _, blk := range col.Blocks() {
				total += blk.SumGreater(100)
			}
		}
	})
	b.Run("adaptive_scanner", func(b *testing.B) {
		sc := compress.NewAdaptiveScanner(nil)
		for i := 0; i < b.N; i++ {
			sc.SumGreater(col, 100)
		}
	})
}

// ---------------------------------------------------------------------------
// E6 — adaptive device placement (modeled costs reported as metrics).

func BenchmarkExpE6_Placement(b *testing.B) {
	for _, resident := range []bool{false, true} {
		for _, elems := range []int{1 << 10, 1 << 16, 1 << 22} {
			name := fmt.Sprintf("resident=%v/elems=%d", resident, elems)
			b.Run(name, func(b *testing.B) {
				g := gpu.New(gpu.DefaultConfig())
				cpu := device.NewCPU()
				placer := device.NewPlacer(cpu, g)
				k := device.Kernel{
					Name: name, Elems: elems,
					BytesIn: elems * 8, BytesOut: elems * 8,
					OpsPerElem: 4, Inputs: []string{name},
				}
				if resident {
					g.MakeResident(name, k.BytesIn)
				}
				chosen := placer.Choose(k)
				b.ReportMetric(float64(cpu.Estimate(k).Modeled.Nanoseconds()), "cpu-model-ns")
				b.ReportMetric(float64(g.Estimate(k).Modeled.Nanoseconds()), "gpu-model-ns")
				if chosen.Name() == "gpu" {
					b.ReportMetric(1, "placed-on-gpu")
				} else {
					b.ReportMetric(0, "placed-on-gpu")
				}
				for i := 0; i < b.N; i++ {
					placer.Choose(k)
				}
			})
		}
	}
}

// ---------------------------------------------------------------------------
// E7 — execution strategies inside one framework: tuple-, chunk-,
// column-at-a-time, via the DSL's dynamic read granularity.

func BenchmarkExpE7_Strategies(b *testing.B) {
	n := 1 << 16
	for _, c := range []struct {
		name  string
		count int
	}{
		{"tuple_at_a_time", 1},
		{"chunk_at_a_time", vector.DefaultChunkLen},
		{"column_at_a_time", n},
	} {
		b.Run(c.name, func(b *testing.B) {
			src := fmt.Sprintf(`
mut i
i := 0
loop {
  let xs = read i d %d
  if len(xs) == 0 then break
  write o i (map (\x -> 2*x + 1) xs)
  i := i + len(xs)
}`, c.count)
			kinds := map[string]vector.Kind{"d": vector.I64, "o": vector.I64}
			np := mustNormalize(b, src, kinds)
			it := interp.New(np)
			ext := map[string]*vector.Vector{
				"d": i64Data(n, func(i int) int64 { return int64(i) }),
				"o": vector.New(vector.I64, 0, n),
			}
			env, err := interp.NewEnv(np, ext)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(8 * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				env.Reset()
				ext["o"].SetLen(0)
				if err := it.Run(env); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E8 — deforestation/fusion ablation: interpreted map chain vs fused trace.

func BenchmarkExpE8_Fusion(b *testing.B) {
	src := `
mut i
i := 0
loop {
  let xs = read i d
  if len(xs) == 0 then break
  write o i (map (\x -> ((x * 3 + 7) * 2 - 5) / 3 + x) xs)
  i := i + len(xs)
}`
	kinds := map[string]vector.Kind{"d": vector.I64, "o": vector.I64}
	n := 1 << 20
	mk := func() map[string]*vector.Vector {
		return map[string]*vector.Vector{
			"d": i64Data(n, func(i int) int64 { return int64(i) }),
			"o": vector.New(vector.I64, 0, n),
		}
	}
	run := func(b *testing.B, compiled bool) {
		opts := []advm.Option{
			advm.WithSyncOptimizer(true),
			advm.WithJITOptions(advm.JITOptions{CompileLatency: advm.NoCompileLatency}),
		}
		if compiled {
			opts = append(opts, advm.WithHotThresholds(2, 200*time.Microsecond))
		} else {
			opts = append(opts, advm.WithJIT(false))
		}
		p := advm.MustCompile(src, kinds, opts...)
		ext := mk()
		for r := 0; r < 4; r++ { // warm + (maybe) compile
			if err := p.Run(b.Context(), ext); err != nil {
				b.Fatal(err)
			}
			ext["o"].SetLen(0)
		}
		if compiled && len(p.Stats().CompiledSegments) == 0 {
			b.Fatal("not compiled")
		}
		b.SetBytes(int64(8 * n))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := p.Run(b.Context(), ext); err != nil {
				b.Fatal(err)
			}
			ext["o"].SetLen(0)
		}
	}
	b.Run("interpreted_unfused", func(b *testing.B) { run(b, false) })
	b.Run("fused_trace", func(b *testing.B) { run(b, true) })
}

// ---------------------------------------------------------------------------
// E9 — compact data types: identical fold at i64/i32/i16 widths
// (bandwidth-bound, so narrower types win proportionally).

func BenchmarkExpE9_CompactTypes(b *testing.B) {
	n := 1 << 23 // 8M values: out of cache at i64
	for _, kind := range []vector.Kind{vector.I64, vector.I32, vector.I16} {
		b.Run(kind.String(), func(b *testing.B) {
			data := vector.NewLen(kind, n)
			for i := 0; i < n; i++ {
				// Values ≤ 3 so a 4096-chunk partial sum fits even i16.
				data.Set(i, vector.IntValue(kind, int64(i%4)))
			}
			src := `
mut i
mut t
i := 0
t := 0
loop {
  let xs = read i d 4096
  if len(xs) == 0 then break
  t := t + cast<i64>(fold (\acc x -> acc + x) 0 xs)
  i := i + len(xs)
}
write o 0 (gen (\j -> t) 1)`
			// The fold runs natively in the column's (narrow) kind; only
			// the per-chunk scalar widens to i64 — so memory traffic is
			// the narrow column, the [12] effect.
			kinds := map[string]vector.Kind{"d": kind, "o": vector.I64}
			np := mustNormalize(b, src, kinds)
			it := interp.New(np)
			ext := map[string]*vector.Vector{"d": data, "o": vector.New(vector.I64, 0, 1)}
			env, err := interp.NewEnv(np, ext)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(n * kind.Width()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				env.Reset()
				ext["o"].SetLen(0)
				if err := it.Run(env); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E10 — DSM vs NSM storage layouts ([33]).

func BenchmarkExpE10_Layout(b *testing.B) {
	schema := vector.NewSchema(
		"c0", vector.I64, "c1", vector.I64, "c2", vector.I64, "c3", vector.I64,
		"c4", vector.I64, "c5", vector.I64, "c6", vector.I64, "c7", vector.I64,
	)
	n := 1 << 18
	dsm := vector.NewDSMStore(schema)
	nsm := vector.NewNSMStore(schema)
	row := make([]vector.Value, 8)
	for i := 0; i < n; i++ {
		for c := range row {
			row[c] = vector.I64Value(int64(i * (c + 1)))
		}
		dsm.AppendRow(row...)
		nsm.AppendRow(row...)
	}
	scan := func(b *testing.B, st vector.Store, cols []int) {
		dst := make([]*vector.Vector, len(cols))
		for i := range dst {
			dst[i] = vector.NewLen(vector.I64, vector.DefaultChunkLen)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var total int64
			for pos := 0; pos < n; pos += vector.DefaultChunkLen {
				got := st.Scan(pos, vector.DefaultChunkLen, cols, dst)
				for _, v := range dst[0].I64()[:got] {
					total += v
				}
			}
		}
	}
	b.Run("dsm/narrow_1of8", func(b *testing.B) { scan(b, dsm, []int{3}) })
	b.Run("nsm/narrow_1of8", func(b *testing.B) { scan(b, nsm, []int{3}) })
	b.Run("dsm/wide_8of8", func(b *testing.B) { scan(b, dsm, []int{0, 1, 2, 3, 4, 5, 6, 7}) })
	b.Run("nsm/wide_8of8", func(b *testing.B) { scan(b, nsm, []int{0, 1, 2, 3, 4, 5, 6, 7}) })
}

// ---------------------------------------------------------------------------
// E11 — morsel-driven parallelism.

func BenchmarkExpE11_Morsel(b *testing.B) {
	n := 1 << 22
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(i % 1000)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(8 * n))
			for i := 0; i < b.N; i++ {
				morsel.Fold(n, morsel.Options{Workers: workers},
					func() int64 { return 0 },
					func(acc int64, lo, hi int) int64 {
						for j := lo; j < hi; j++ {
							acc += data[j] * 3
						}
						return acc
					},
					func(a, c int64) int64 { return a + c },
				)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E15 — morsel-parallel query execution through the public engine API:
// Q1/Q6/Q3 serial vs WithParallelism(4). The CI bench smoke job additionally
// persists these numbers as BENCH_*.json via `advm-bench -benchjson`.

// benchTable loads a pre-generated table from $TPCH_DATA_DIR when the CI job
// (or a developer) has run `tpch-gen -binary` there, and generates it
// otherwise — so the bench smoke does not re-derive the tables per binary.
func benchTable(b *testing.B, table string, sf float64) *vector.DSMStore {
	b.Helper()
	st, err := tpch.LoadOrGen(os.Getenv("TPCH_DATA_DIR"), table, sf, 42)
	if err != nil {
		b.Fatal(err)
	}
	return st
}

func BenchmarkExpE15_ParallelQuery(b *testing.B) {
	st := benchTable(b, "lineitem", 0.02)
	ord := benchTable(b, "orders", 0.02)
	cust := benchTable(b, "customer", 0.02)
	eng, err := advm.NewEngine(
		advm.WithParallelism(4),
		advm.WithJITOptions(advm.JITOptions{CompileLatency: advm.NoCompileLatency}))
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	plans := map[string]func() *advm.Plan{
		"q1": func() *advm.Plan { return tpch.PlanQ1(st) },
		"q6": func() *advm.Plan { return tpch.PlanQ6(st, tpch.DefaultQ6Params()) },
		"q3": func() *advm.Plan { return tpch.PlanQ3(st, ord, cust, tpch.DefaultQ3Params()) },
	}
	for _, q := range []string{"q1", "q6", "q3"} {
		for _, workers := range []int{1, 4} {
			sess, err := eng.Session(advm.WithParallelism(workers))
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/workers=%d", q, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rows, err := sess.Query(b.Context(), plans[q]())
					if err != nil {
						b.Fatal(err)
					}
					if _, err := rows.Count(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------------------
// E12 — Bloom filters in selective hash joins.

func BenchmarkExpE12_Bloom(b *testing.B) {
	dim := vector.NewDSMStore(vector.NewSchema("k", vector.I64))
	for i := 0; i < 1000; i++ {
		dim.AppendRow(vector.I64Value(int64(i)))
	}
	mkFact := func(domain int64) *vector.DSMStore {
		fact := vector.NewDSMStore(vector.NewSchema("fk", vector.I64))
		rng := rand.New(rand.NewSource(12))
		for i := 0; i < 1<<18; i++ {
			fact.AppendRow(vector.I64Value(rng.Int63n(domain)))
		}
		return fact
	}
	selective := mkFact(100_000) // ~1% hit rate
	dense := mkFact(1_000)       // ~100% hit rate
	for _, c := range []struct {
		name string
		fact *vector.DSMStore
		mode engine.BloomMode
	}{
		{"selective/bloom_on", selective, engine.BloomOn},
		{"selective/bloom_off", selective, engine.BloomOff},
		{"selective/adaptive", selective, engine.BloomAdaptive},
		{"dense/bloom_on", dense, engine.BloomOn},
		{"dense/bloom_off", dense, engine.BloomOff},
		{"dense/adaptive", dense, engine.BloomAdaptive},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				probe, _ := engine.NewScan(c.fact, "fk")
				build, _ := engine.NewScan(dim, "k")
				j := engine.NewHashJoin(probe, build, "fk", "k").SetBloom(c.mode)
				if _, err := engine.CountRows(b.Context(), j); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E13 — adaptively triggered pre-aggregation ([12]).

func BenchmarkExpE13_PreAgg(b *testing.B) {
	mk := func(groups int64) *vector.DSMStore {
		st := vector.NewDSMStore(vector.NewSchema("k", vector.I64, "v", vector.I64))
		rng := rand.New(rand.NewSource(13))
		for i := 0; i < 1<<18; i++ {
			st.AppendRow(vector.I64Value(rng.Int63n(groups)), vector.I64Value(rng.Int63n(100)))
		}
		return st
	}
	local := mk(8)        // few hot groups: pre-agg absorbs everything
	uniform := mk(200000) // high-cardinality: pre-agg is pure overhead
	for _, c := range []struct {
		name string
		st   *vector.DSMStore
		mode engine.PreAggMode
	}{
		{"local/preagg_on", local, engine.PreAggOn},
		{"local/preagg_off", local, engine.PreAggOff},
		{"local/adaptive", local, engine.PreAggAdaptive},
		{"uniform/preagg_on", uniform, engine.PreAggOn},
		{"uniform/preagg_off", uniform, engine.PreAggOff},
		{"uniform/adaptive", uniform, engine.PreAggAdaptive},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				scan, _ := engine.NewScan(c.st, "k", "v")
				agg := engine.NewHashAgg(scan, []string{"k"}, []engine.Aggregate{
					{Func: engine.AggSum, Col: "v", As: "s"},
				}).SetPreAgg(c.mode)
				if _, err := engine.Collect(b.Context(), agg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E14 — partitioner input-budget (TLB heuristic) ablation: constrained
// fragments vs one monolithic fragment on a wide-input program.

func BenchmarkExpE14_InputBudget(b *testing.B) {
	src := `
mut i
i := 0
loop {
  let a = read i d1
  if len(a) == 0 then break
  let c = read i d2
  let e = read i d3
  let f = read i d4
  let g = read i d5
  let h = read i d6
  let s = map (\x y -> x + y) a c
  let t = map (\x y -> x * y) e f
  let u = map (\x y -> x - y) g h
  let p = map (\x y -> x + y) s t
  let q = map (\x y -> x ^ y) p u
  write o i q
  i := i + len(a)
}`
	kinds := map[string]vector.Kind{"o": vector.I64}
	ext := map[string]*vector.Vector{"o": vector.New(vector.I64, 0, 1<<18)}
	for _, d := range []string{"d1", "d2", "d3", "d4", "d5", "d6"} {
		kinds[d] = vector.I64
		ext[d] = i64Data(1<<18, func(i int) int64 { return int64(i % 7919) })
	}
	for _, c := range []struct {
		name      string
		maxInputs int
	}{
		{"budget=3", 3},
		{"budget=8_default", 8},
		{"budget=32_unconstrained", 32},
	} {
		b.Run(c.name, func(b *testing.B) {
			p := advm.MustCompile(src, kinds,
				advm.WithSyncOptimizer(true),
				advm.WithHotThresholds(2, 200*time.Microsecond),
				advm.WithJITOptions(advm.JITOptions{CompileLatency: advm.NoCompileLatency}),
				advm.WithPartitionBudget(c.maxInputs, 32))
			for r := 0; r < 4; r++ {
				if err := p.Run(b.Context(), ext); err != nil {
					b.Fatal(err)
				}
				ext["o"].SetLen(0)
			}
			b.SetBytes(int64(6 * 8 * (1 << 18)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := p.Run(b.Context(), ext); err != nil {
					b.Fatal(err)
				}
				ext["o"].SetLen(0)
			}
		})
	}
}
