package repro

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/advm"
	"repro/internal/dsl"
	"repro/internal/engine"
	"repro/internal/jit"
	"repro/internal/tpch"
)

// TestEndToEndFigure2AllExecutionModes is the repo-level integration test:
// the paper's example program must produce identical results interpreted,
// compiled synchronously, and compiled by the background optimizer mid-run —
// all driven through the public advm API.
func TestEndToEndFigure2AllExecutionModes(t *testing.T) {
	kinds := map[string]advm.Kind{"some_data": advm.I64, "v": advm.I64, "w": advm.I64}
	data := make([]int64, 4096)
	for i := range data {
		data[i] = int64(i%13 - 6)
	}
	run := func(runs int, opts ...advm.Option) (*advm.Vector, *advm.Vector) {
		sess := advm.MustCompile(dsl.Figure2Source, kinds, opts...)
		var v, w *advm.Vector
		for r := 0; r < runs; r++ {
			v = advm.NewVector(advm.I64, 0, 4096)
			w = advm.NewVector(advm.I64, 0, 4096)
			if err := sess.Run(t.Context(), map[string]*advm.Vector{
				"some_data": advm.FromI64(data), "v": v, "w": w,
			}); err != nil {
				t.Fatal(err)
			}
		}
		return v, w
	}

	vI, wI := run(1, advm.WithSyncOptimizer(true), advm.WithJIT(false))

	vS, wS := run(3,
		advm.WithSyncOptimizer(true),
		advm.WithHotThresholds(2, 200*time.Microsecond),
		advm.WithJITOptions(advm.JITOptions{CompileLatency: advm.NoCompileLatency}))

	vA, wA := run(5,
		advm.WithHotThresholds(2, 200*time.Microsecond),
		advm.WithJITOptions(advm.JITOptions{CompileLatency: advm.NoCompileLatency}))

	if !vI.Equal(vS) || !wI.Equal(wS) {
		t.Fatal("sync-compiled output differs from interpreted")
	}
	if !vI.Equal(vA) || !wI.Equal(wA) {
		t.Fatal("async-compiled output differs from interpreted")
	}
	// Spot-check semantics against the figure's specification.
	if vI.Len() != 4096 {
		t.Fatalf("v length %d", vI.Len())
	}
	wantW := 0
	for i := 0; i < 4096; i++ {
		d := 2 * data[i]
		if vI.I64()[i] != d {
			t.Fatalf("v[%d] = %d, want %d", i, vI.I64()[i], d)
		}
		if d > 0 {
			wantW++
		}
	}
	if wI.Len() != wantW {
		t.Fatalf("w length %d, want %d", wI.Len(), wantW)
	}
}

// TestEndToEndQ6AllStrategies ties the relational layer to the VM: Q6 must
// agree between the hand-compiled loop and the engine with and without JIT,
// across evaluation flavors.
func TestEndToEndQ6AllStrategies(t *testing.T) {
	st := tpch.GenLineitem(0.002, 99)
	p := tpch.DefaultQ6Params()
	want := tpch.Q6HyPer(st, p.ShipLo, p.ShipHi, p.DiscLo, p.DiscHi, p.QtyMax)
	for _, mode := range []engine.EvalMode{engine.EvalFull, engine.EvalSelective, engine.EvalAdaptive} {
		for _, useJIT := range []bool{false, true} {
			got, err := tpch.Q6Engine(t.Context(), st, p, tpch.Q1Options{
				JIT: useJIT, JITOpt: jit.Options{CompileLatency: jit.NoCompileLatency}, Mode: mode,
			})
			if err != nil {
				t.Fatalf("mode=%v jit=%v: %v", mode, useJIT, err)
			}
			rel := (got - want) / want
			if rel < -1e-9 || rel > 1e-9 {
				t.Fatalf("mode=%v jit=%v: %v vs %v", mode, useJIT, got, want)
			}
		}
	}
}

// TestEndToEndQueryStreaming exercises the public streaming path over a
// generated TPC-H table: the cursor-consumed Q1 aggregate must agree with
// the hand-compiled reference — serially and fanned out across the
// engine's morsel-parallel workers.
func TestEndToEndQueryStreaming(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			testEndToEndQueryStreaming(t, workers)
		})
	}
}

// TestEndToEndQ3ParallelByteIdentical is the PR's acceptance criterion: the
// three-table Q3 — joins, grouped aggregation with float sums, top-k — must
// produce byte-identical results at every WithParallelism level 1..8. Run
// under -race in CI, it also exercises the parallel build/probe/fold paths
// for data races.
func TestEndToEndQ3ParallelByteIdentical(t *testing.T) {
	li := tpch.GenLineitem(0.01, 42)
	ord := tpch.GenOrders(0.01, 42)
	cust := tpch.GenCustomer(0.01, 42)
	p := tpch.DefaultQ3Params()

	eng, err := advm.NewEngine(
		advm.WithParallelism(8),
		advm.WithJITOptions(advm.JITOptions{CompileLatency: advm.NoCompileLatency}))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	collect := func(workers int) [][]advm.Value {
		sess, err := eng.Session(advm.WithParallelism(workers))
		if err != nil {
			t.Fatal(err)
		}
		rows, err := sess.Query(t.Context(), tpch.PlanQ3(li, ord, cust, p))
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		var out [][]advm.Value
		n := len(rows.Columns())
		for rows.Next() {
			row := make([]advm.Value, n)
			dests := make([]any, n)
			for i := range row {
				dests[i] = &row[i]
			}
			if err := rows.Scan(dests...); err != nil {
				t.Fatal(err)
			}
			out = append(out, row)
		}
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		return out
	}

	want := collect(1)
	if len(want) != p.TopK {
		t.Fatalf("serial Q3 rows = %d, want %d", len(want), p.TopK)
	}
	for workers := 2; workers <= 8; workers++ {
		got := collect(workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: rows = %d, want %d", workers, len(got), len(want))
		}
		for i := range want {
			for c := range want[i] {
				w, g := want[i][c], got[i][c]
				if w.Kind == advm.F64 {
					if math.Float64bits(w.F) != math.Float64bits(g.F) {
						t.Fatalf("workers=%d row %d col %d: %v vs %v (must be bit-identical)", workers, i, c, g.F, w.F)
					}
				} else if !g.Equal(w) {
					t.Fatalf("workers=%d row %d col %d: %v vs %v", workers, i, c, g, w)
				}
			}
		}
	}
	if use := eng.Stats().PoolInUse; use != 0 {
		t.Fatalf("workers leaked: PoolInUse = %d", use)
	}
}

func testEndToEndQueryStreaming(t *testing.T, workers int) {
	st := tpch.GenLineitem(0.002, 7)
	want := tpch.Q1HyPer(st, tpch.Q1Cutoff)

	sess, err := advm.NewSession(
		advm.WithJITOptions(advm.JITOptions{CompileLatency: advm.NoCompileLatency}),
		advm.WithParallelism(workers))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	rows, err := sess.Query(t.Context(), tpch.PlanQ1(st))
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var got tpch.Q1Result
	for rows.Next() {
		var g tpch.Q1Group
		if err := rows.Scan(&g.Returnflag, &g.Linestatus, &g.SumQty, &g.SumBasePrice,
			&g.SumDiscPrice, &g.SumCharge, &g.AvgQty, &g.AvgPrice, &g.AvgDisc, &g.CountOrder); err != nil {
			t.Fatal(err)
		}
		got = append(got, g)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if err := want.Equal(tpch.SortQ1(got), 1e-9); err != nil {
		t.Fatal(err)
	}
}
