package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dsl"
	"repro/internal/engine"
	"repro/internal/jit"
	"repro/internal/tpch"
	"repro/internal/vector"
)

// TestEndToEndFigure2AllExecutionModes is the repo-level integration test:
// the paper's example program must produce identical results interpreted,
// compiled synchronously, and compiled by the background optimizer mid-run.
func TestEndToEndFigure2AllExecutionModes(t *testing.T) {
	kinds := map[string]vector.Kind{"some_data": vector.I64, "v": vector.I64, "w": vector.I64}
	data := make([]int64, 4096)
	for i := range data {
		data[i] = int64(i%13 - 6)
	}
	run := func(cfg core.Config, runs int) (*vector.Vector, *vector.Vector) {
		p := core.MustCompile(dsl.Figure2Source, kinds, cfg)
		var v, w *vector.Vector
		for r := 0; r < runs; r++ {
			v = vector.New(vector.I64, 0, 4096)
			w = vector.New(vector.I64, 0, 4096)
			if err := p.Run(map[string]*vector.Vector{
				"some_data": vector.FromI64(data), "v": v, "w": w,
			}); err != nil {
				t.Fatal(err)
			}
		}
		return v, w
	}

	interpCfg := core.DefaultConfig()
	interpCfg.Sync = true
	interpCfg.HotCalls = 1 << 62
	interpCfg.HotNanos = 1 << 62
	vI, wI := run(interpCfg, 1)

	syncCfg := core.DefaultConfig()
	syncCfg.Sync = true
	syncCfg.HotCalls = 2
	syncCfg.JIT.CompileLatency = jit.NoCompileLatency
	vS, wS := run(syncCfg, 3)

	asyncCfg := core.DefaultConfig()
	asyncCfg.HotCalls = 2
	asyncCfg.JIT.CompileLatency = jit.NoCompileLatency
	vA, wA := run(asyncCfg, 5)

	if !vI.Equal(vS) || !wI.Equal(wS) {
		t.Fatal("sync-compiled output differs from interpreted")
	}
	if !vI.Equal(vA) || !wI.Equal(wA) {
		t.Fatal("async-compiled output differs from interpreted")
	}
	// Spot-check semantics against the figure's specification.
	if vI.Len() != 4096 {
		t.Fatalf("v length %d", vI.Len())
	}
	wantW := 0
	for i := 0; i < 4096; i++ {
		d := 2 * data[i]
		if vI.I64()[i] != d {
			t.Fatalf("v[%d] = %d, want %d", i, vI.I64()[i], d)
		}
		if d > 0 {
			wantW++
		}
	}
	if wI.Len() != wantW {
		t.Fatalf("w length %d, want %d", wI.Len(), wantW)
	}
}

// TestEndToEndQ6AllStrategies ties the relational layer to the VM: Q6 must
// agree between the hand-compiled loop and the engine with and without JIT,
// across evaluation flavors.
func TestEndToEndQ6AllStrategies(t *testing.T) {
	st := tpch.GenLineitem(0.002, 99)
	p := tpch.DefaultQ6Params()
	want := tpch.Q6HyPer(st, p.ShipLo, p.ShipHi, p.DiscLo, p.DiscHi, p.QtyMax)
	for _, mode := range []engine.EvalMode{engine.EvalFull, engine.EvalSelective, engine.EvalAdaptive} {
		for _, useJIT := range []bool{false, true} {
			got, err := tpch.Q6Engine(st, p, tpch.Q1Options{
				JIT: useJIT, JITOpt: jit.Options{CompileLatency: jit.NoCompileLatency}, Mode: mode,
			})
			if err != nil {
				t.Fatalf("mode=%v jit=%v: %v", mode, useJIT, err)
			}
			rel := (got - want) / want
			if rel < -1e-9 || rel > 1e-9 {
				t.Fatalf("mode=%v jit=%v: %v vs %v", mode, useJIT, got, want)
			}
		}
	}
}
