package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/advm"
	"repro/internal/dsl"
	"repro/internal/engine"
	"repro/internal/jit"
	"repro/internal/tpch"
)

// TestEndToEndFigure2AllExecutionModes is the repo-level integration test:
// the paper's example program must produce identical results interpreted,
// compiled synchronously, and compiled by the background optimizer mid-run —
// all driven through the public advm API.
func TestEndToEndFigure2AllExecutionModes(t *testing.T) {
	kinds := map[string]advm.Kind{"some_data": advm.I64, "v": advm.I64, "w": advm.I64}
	data := make([]int64, 4096)
	for i := range data {
		data[i] = int64(i%13 - 6)
	}
	run := func(runs int, opts ...advm.Option) (*advm.Vector, *advm.Vector) {
		sess := advm.MustCompile(dsl.Figure2Source, kinds, opts...)
		var v, w *advm.Vector
		for r := 0; r < runs; r++ {
			v = advm.NewVector(advm.I64, 0, 4096)
			w = advm.NewVector(advm.I64, 0, 4096)
			if err := sess.Run(t.Context(), map[string]*advm.Vector{
				"some_data": advm.FromI64(data), "v": v, "w": w,
			}); err != nil {
				t.Fatal(err)
			}
		}
		return v, w
	}

	vI, wI := run(1, advm.WithSyncOptimizer(true), advm.WithJIT(false))

	vS, wS := run(3,
		advm.WithSyncOptimizer(true),
		advm.WithHotThresholds(2, 200*time.Microsecond),
		advm.WithJITOptions(advm.JITOptions{CompileLatency: advm.NoCompileLatency}))

	vA, wA := run(5,
		advm.WithHotThresholds(2, 200*time.Microsecond),
		advm.WithJITOptions(advm.JITOptions{CompileLatency: advm.NoCompileLatency}))

	if !vI.Equal(vS) || !wI.Equal(wS) {
		t.Fatal("sync-compiled output differs from interpreted")
	}
	if !vI.Equal(vA) || !wI.Equal(wA) {
		t.Fatal("async-compiled output differs from interpreted")
	}
	// Spot-check semantics against the figure's specification.
	if vI.Len() != 4096 {
		t.Fatalf("v length %d", vI.Len())
	}
	wantW := 0
	for i := 0; i < 4096; i++ {
		d := 2 * data[i]
		if vI.I64()[i] != d {
			t.Fatalf("v[%d] = %d, want %d", i, vI.I64()[i], d)
		}
		if d > 0 {
			wantW++
		}
	}
	if wI.Len() != wantW {
		t.Fatalf("w length %d, want %d", wI.Len(), wantW)
	}
}

// TestEndToEndQ6AllStrategies ties the relational layer to the VM: Q6 must
// agree between the hand-compiled loop and the engine with and without JIT,
// across evaluation flavors.
func TestEndToEndQ6AllStrategies(t *testing.T) {
	st := tpch.GenLineitem(0.002, 99)
	p := tpch.DefaultQ6Params()
	want := tpch.Q6HyPer(st, p.ShipLo, p.ShipHi, p.DiscLo, p.DiscHi, p.QtyMax)
	for _, mode := range []engine.EvalMode{engine.EvalFull, engine.EvalSelective, engine.EvalAdaptive} {
		for _, useJIT := range []bool{false, true} {
			got, err := tpch.Q6Engine(t.Context(), st, p, tpch.Q1Options{
				JIT: useJIT, JITOpt: jit.Options{CompileLatency: jit.NoCompileLatency}, Mode: mode,
			})
			if err != nil {
				t.Fatalf("mode=%v jit=%v: %v", mode, useJIT, err)
			}
			rel := (got - want) / want
			if rel < -1e-9 || rel > 1e-9 {
				t.Fatalf("mode=%v jit=%v: %v vs %v", mode, useJIT, got, want)
			}
		}
	}
}

// TestEndToEndQueryStreaming exercises the public streaming path over a
// generated TPC-H table: the cursor-consumed Q1 aggregate must agree with
// the hand-compiled reference — serially and fanned out across the
// engine's morsel-parallel workers.
func TestEndToEndQueryStreaming(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			testEndToEndQueryStreaming(t, workers)
		})
	}
}

func testEndToEndQueryStreaming(t *testing.T, workers int) {
	st := tpch.GenLineitem(0.002, 7)
	want := tpch.Q1HyPer(st, tpch.Q1Cutoff)

	sess, err := advm.NewSession(
		advm.WithJITOptions(advm.JITOptions{CompileLatency: advm.NoCompileLatency}),
		advm.WithParallelism(workers))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	rows, err := sess.Query(t.Context(), tpch.PlanQ1(st))
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var got tpch.Q1Result
	for rows.Next() {
		var g tpch.Q1Group
		if err := rows.Scan(&g.Returnflag, &g.Linestatus, &g.SumQty, &g.SumBasePrice,
			&g.SumDiscPrice, &g.SumCharge, &g.AvgQty, &g.AvgPrice, &g.AvgDisc, &g.CountOrder); err != nil {
			t.Fatal(err)
		}
		got = append(got, g)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if err := want.Equal(tpch.SortQ1(got), 1e-9); err != nil {
		t.Fatal(err)
	}
}
