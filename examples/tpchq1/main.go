// TPC-H Q1 under four execution strategies inside the same framework —
// the paper's plan-step-1 goal ("the same system to be able to either use
// vectorized execution, or tuple-at-a-time JIT compilation, as such
// mimicking the MonetDB/X100 and HyPer approaches inside the same
// framework") plus the [12] optimization mix and the adaptive VM.
//
// Run: go run ./examples/tpchq1 [-sf 0.01]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/engine"
	"repro/internal/jit"
	"repro/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.01, "scale factor (1.0 = 6M rows)")
	flag.Parse()

	fmt.Printf("generating lineitem at SF %.3f …\n", *sf)
	st := tpch.GenLineitem(*sf, 42)
	cl := tpch.Compact(st)
	fmt.Printf("%d rows\n\n", st.Rows())

	timeIt := func(label string, f func() (tpch.Q1Result, error)) tpch.Q1Result {
		start := time.Now()
		res, err := f()
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("%-42s %10v\n", label, time.Since(start).Round(time.Microsecond))
		return res
	}

	ref := timeIt("tuple-at-a-time compiled (HyPer-style)", func() (tpch.Q1Result, error) {
		return tpch.Q1HyPer(st, tpch.Q1Cutoff), nil
	})
	vect := timeIt("vectorized interpreted (X100-style)", func() (tpch.Q1Result, error) {
		return tpch.Q1Engine(st, tpch.Q1Cutoff, tpch.Q1Options{JIT: false, PreAgg: engine.PreAggOff})
	})
	opt := timeIt("vectorized + compact types + pre-agg [12]", func() (tpch.Q1Result, error) {
		return tpch.Q1Compact(cl, tpch.Q1Cutoff), nil
	})
	adaptive := timeIt("adaptive VM (vectorized + JIT traces)", func() (tpch.Q1Result, error) {
		return tpch.Q1Engine(st, tpch.Q1Cutoff, tpch.Q1Options{
			JIT: true, JITOpt: jit.Options{CompileLatency: jit.DefaultCompileLatency},
		})
	})

	for _, pair := range []struct {
		name string
		res  tpch.Q1Result
	}{{"vectorized", vect}, {"compact", opt}, {"adaptive", adaptive}} {
		if err := ref.Equal(pair.res, 1e-9); err != nil {
			log.Fatalf("%s strategy disagrees: %v", pair.name, err)
		}
	}

	fmt.Println("\nall strategies agree; result:")
	for _, g := range ref {
		fmt.Printf("  %s|%s  sum_qty=%-9d count=%-8d sum_charge=%.2f\n",
			g.Returnflag, g.Linestatus, g.SumQty, g.CountOrder, g.SumCharge)
	}
}
