// TPC-H Q1 under four execution strategies inside the same framework —
// the paper's plan-step-1 goal ("the same system to be able to either use
// vectorized execution, or tuple-at-a-time JIT compilation, as such
// mimicking the MonetDB/X100 and HyPer approaches inside the same
// framework") plus the [12] optimization mix and the adaptive VM.
//
// The adaptive strategy is expressed entirely through the public advm API:
// a session-scoped plan (scan → filter → two computes → grouped aggregate)
// whose result streams back through the database/sql-style cursor, with
// every scalar expression lowered into the VM and JIT-compiled when hot.
//
// Run: go run ./examples/tpchq1 [-sf 0.01]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/advm"
	"repro/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.01, "scale factor (1.0 = 6M rows)")
	flag.Parse()

	fmt.Printf("generating lineitem at SF %.3f …\n", *sf)
	st := tpch.GenLineitem(*sf, 42)
	cl := tpch.Compact(st)
	fmt.Printf("%d rows\n\n", st.Rows())

	timeIt := func(label string, f func() (tpch.Q1Result, error)) tpch.Q1Result {
		start := time.Now()
		res, err := f()
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("%-42s %10v\n", label, time.Since(start).Round(time.Microsecond))
		return res
	}

	ctx := context.Background()
	ref := timeIt("tuple-at-a-time compiled (HyPer-style)", func() (tpch.Q1Result, error) {
		return tpch.Q1HyPer(st, tpch.Q1Cutoff), nil
	})
	vect := timeIt("vectorized interpreted (X100-style)", func() (tpch.Q1Result, error) {
		sess, err := advm.NewSession(advm.WithJIT(false))
		if err != nil {
			return nil, err
		}
		return q1Advm(ctx, sess, st)
	})
	opt := timeIt("vectorized + compact types + pre-agg [12]", func() (tpch.Q1Result, error) {
		return tpch.Q1Compact(cl, tpch.Q1Cutoff), nil
	})
	adaptive := timeIt("adaptive VM (vectorized + JIT traces)", func() (tpch.Q1Result, error) {
		sess, err := advm.NewSession() // JIT on, modeled compile latency
		if err != nil {
			return nil, err
		}
		return q1Advm(ctx, sess, st)
	})

	for _, pair := range []struct {
		name string
		res  tpch.Q1Result
	}{{"vectorized", vect}, {"compact", opt}, {"adaptive", adaptive}} {
		if err := ref.Equal(pair.res, 1e-9); err != nil {
			log.Fatalf("%s strategy disagrees: %v", pair.name, err)
		}
	}

	fmt.Println("\nall strategies agree; result:")
	for _, g := range ref {
		fmt.Printf("  %s|%s  sum_qty=%-9d count=%-8d sum_charge=%.2f\n",
			g.Returnflag, g.Linestatus, g.SumQty, g.CountOrder, g.SumCharge)
	}
}

// q1Advm runs Q1 through the public plan builder and streams the grouped
// result back through the cursor.
func q1Advm(ctx context.Context, sess *advm.Session, st *advm.Table) (tpch.Q1Result, error) {
	plan := advm.Scan(st,
		"l_returnflag", "l_linestatus", "l_quantity",
		"l_extendedprice", "l_discount", "l_tax", "l_shipdate").
		Filter(fmt.Sprintf(`(\d -> d <= %d)`, tpch.Q1Cutoff), "l_shipdate").
		Compute("disc_price", `(\p d -> p * (1.0 - d))`, advm.F64, "l_extendedprice", "l_discount").
		Compute("charge", `(\dp t -> dp * (1.0 + t))`, advm.F64, "disc_price", "l_tax").
		Aggregate([]string{"l_returnflag", "l_linestatus"},
			advm.Agg{Func: advm.AggSum, Col: "l_quantity", As: "sum_qty"},
			advm.Agg{Func: advm.AggSum, Col: "l_extendedprice", As: "sum_base_price"},
			advm.Agg{Func: advm.AggSum, Col: "disc_price", As: "sum_disc_price"},
			advm.Agg{Func: advm.AggSum, Col: "charge", As: "sum_charge"},
			advm.Agg{Func: advm.AggAvg, Col: "l_quantity", As: "avg_qty"},
			advm.Agg{Func: advm.AggAvg, Col: "l_extendedprice", As: "avg_price"},
			advm.Agg{Func: advm.AggAvg, Col: "l_discount", As: "avg_disc"},
			advm.Agg{Func: advm.AggCount, As: "count_order"})
	rows, err := sess.Query(ctx, plan)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var res tpch.Q1Result
	for rows.Next() {
		var g tpch.Q1Group
		if err := rows.Scan(&g.Returnflag, &g.Linestatus, &g.SumQty, &g.SumBasePrice,
			&g.SumDiscPrice, &g.SumCharge, &g.AvgQty, &g.AvgPrice, &g.AvgDisc,
			&g.CountOrder); err != nil {
			return nil, err
		}
		res = append(res, g)
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	return tpch.SortQ1(res), nil
}
