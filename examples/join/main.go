// Example: morsel-parallel hash joins and grouped aggregation — TPC-H Q3
// (customer ⨝ orders ⨝ lineitem → group by order → top-10 by revenue)
// executed serially and under advm.WithParallelism, with byte-identical
// results.
//
//	go run ./examples/join
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"runtime"
	"time"

	"repro/advm"
	"repro/internal/tpch"
)

func main() {
	const sf = 0.02
	li := tpch.GenLineitem(sf, 42)
	ord := tpch.GenOrders(sf, 42)
	cust := tpch.GenCustomer(sf, 42)
	fmt.Printf("tables: lineitem=%d orders=%d customer=%d rows (SF %.2f), GOMAXPROCS=%d\n\n",
		li.Rows(), ord.Rows(), cust.Rows(), sf, runtime.GOMAXPROCS(0))

	eng, err := advm.NewEngine(
		advm.WithParallelism(4),
		advm.WithJITOptions(advm.JITOptions{CompileLatency: advm.NoCompileLatency}),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	p := tpch.DefaultQ3Params()
	fmt.Printf("Q3: segment=%s, date=%d, top %d orders by revenue\n\n",
		tpch.MktSegments[p.Segment], p.Date, p.TopK)

	// The plan is declarative: under WithParallelism(n) the lineitem probe
	// fans out across morsel workers, both build sides are hashed in
	// parallel into shared read-only tables, and the grouped aggregation
	// folds worker-locally — all merged back deterministically.
	run := func(workers int) (tpch.Q3Result, time.Duration) {
		sess, err := eng.Session(advm.WithParallelism(workers))
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		rows, err := sess.Query(context.Background(), tpch.PlanQ3(li, ord, cust, p))
		if err != nil {
			log.Fatal(err)
		}
		defer rows.Close()
		var out tpch.Q3Result
		for rows.Next() {
			var r tpch.Q3Row
			if err := rows.Scan(&r.Orderkey, &r.Revenue, &r.Orderdate, &r.Shippriority); err != nil {
				log.Fatal(err)
			}
			out = append(out, r)
		}
		if err := rows.Err(); err != nil {
			log.Fatal(err)
		}
		return out, time.Since(start)
	}

	serial, dSerial := run(1)
	parallel, dParallel := run(4)

	fmt.Printf("%-10s %16s %10s %6s\n", "l_orderkey", "revenue", "orderdate", "prio")
	for _, r := range serial {
		fmt.Printf("%-10d %16.4f %10d %6d\n", r.Orderkey, r.Revenue, r.Orderdate, r.Shippriority)
	}

	identical := len(serial) == len(parallel)
	for i := 0; identical && i < len(serial); i++ {
		identical = serial[i] == parallel[i] &&
			math.Float64bits(serial[i].Revenue) == math.Float64bits(parallel[i].Revenue)
	}
	fmt.Printf("\nserial %v, parallel(4) %v — byte-identical: %v\n",
		dSerial.Round(time.Millisecond), dParallel.Round(time.Millisecond), identical)
	if !identical {
		log.Fatal("parallel Q3 differs from serial")
	}
}
