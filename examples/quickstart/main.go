// Quickstart: run the paper's Figure 2 program on the adaptive VM.
//
// The program reads some_data, doubles every value into v, and writes the
// positive doubles consecutively into w. The VM starts interpreting,
// profiles the loop body, greedily partitions its dependency graph
// (Figure 3), JIT-compiles the two fragments and injects them — all visible
// in the printed transition log and plan report.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dsl"
	"repro/internal/vector"
)

func main() {
	fmt.Printf("pre-compiled vectorized kernels available at startup: %d\n\n", core.KernelCount())
	fmt.Println("Figure 2 program:")
	fmt.Print(dsl.Figure2Source)

	cfg := core.DefaultConfig()
	cfg.Sync = true // optimize between runs for a deterministic demo
	cfg.HotCalls = 2
	prog, err := core.Compile(dsl.Figure2Source, map[string]vector.Kind{
		"some_data": vector.I64, "v": vector.I64, "w": vector.I64,
	}, cfg)
	if err != nil {
		log.Fatal(err)
	}

	data := make([]int64, 4096)
	for i := range data {
		data[i] = int64(i%7 - 3)
	}

	run := func(label string) {
		v := vector.New(vector.I64, 0, 4096)
		w := vector.New(vector.I64, 0, 4096)
		if err := prog.Run(map[string]*vector.Vector{
			"some_data": vector.FromI64(data), "v": v, "w": w,
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: v=%s  w=%s (|w|=%d)\n", label, v, w, w.Len())
	}

	run("run 1 (interpreted)")
	run("run 2 (hot: compiled traces injected)")

	fmt.Println("\nVM state machine (Figure 1) transitions:")
	for _, tr := range prog.Transitions() {
		fmt.Printf("  %v\n", tr)
	}
	fmt.Println("\ncurrent plan:")
	fmt.Print(prog.PlanReport())
}
