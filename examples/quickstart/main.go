// Quickstart: run the paper's Figure 2 program on the adaptive VM through
// the public advm API.
//
// The program reads some_data, doubles every value into v, and writes the
// positive doubles consecutively into w. The VM starts interpreting,
// profiles the loop body, greedily partitions its dependency graph
// (Figure 3), JIT-compiles the two fragments and injects them — all visible
// in the session's Stats and plan report.
//
// Run: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/advm"
	"repro/internal/dsl"
)

func main() {
	fmt.Printf("pre-compiled vectorized kernels available at startup: %d\n\n", advm.KernelCount())
	fmt.Println("Figure 2 program:")
	fmt.Print(dsl.Figure2Source)

	sess, err := advm.Compile(dsl.Figure2Source, map[string]advm.Kind{
		"some_data": advm.I64, "v": advm.I64, "w": advm.I64,
	},
		advm.WithSyncOptimizer(true), // optimize between runs for a deterministic demo
		advm.WithHotThresholds(2, 200*time.Microsecond),
	)
	if err != nil {
		log.Fatal(err)
	}

	data := make([]int64, 4096)
	for i := range data {
		data[i] = int64(i%7 - 3)
	}

	ctx := context.Background()
	run := func(label string) {
		v := advm.NewVector(advm.I64, 0, 4096)
		w := advm.NewVector(advm.I64, 0, 4096)
		if err := sess.Run(ctx, map[string]*advm.Vector{
			"some_data": advm.FromI64(data), "v": v, "w": w,
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: v=%s  w=%s (|w|=%d)\n", label, v, w, w.Len())
	}

	run("run 1 (interpreted)")
	run("run 2 (hot: compiled traces injected)")

	st := sess.Stats()
	fmt.Println("\nVM state machine (Figure 1) transitions:")
	for _, tr := range st.Transitions {
		fmt.Printf("  %v\n", tr)
	}
	fmt.Println("\ncurrent plan:")
	fmt.Print(sess.PlanReport())
	fmt.Printf("\nruns=%d injected traces=%d reverted=%d compiled segments=%v\n",
		st.Runs, st.InjectedTraces, st.RevertedTraces, st.CompiledSegments)
}
