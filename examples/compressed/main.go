// Compressed execution with per-block scheme drift (§III-C): a column whose
// compression scheme changes block to block is scanned three ways —
// decompress-then-process, always-specialized compressed execution, and the
// adaptive scanner that (like the VM) falls back to decompression on a new
// scheme and re-specializes. This example exercises the compression layer
// directly; programs and queries embed through the public repro/advm
// package (see examples/quickstart and examples/tpchq1).
//
// Run: go run ./examples/compressed
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/compress"
)

func buildDriftingColumn(blocks int) []int64 {
	rng := rand.New(rand.NewSource(23))
	var data []int64
	for b := 0; b < blocks; b++ {
		switch b % 3 {
		case 0: // long runs → RLE
			v := rng.Int63n(100)
			for i := 0; i < compress.DefaultBlockLen; i++ {
				if i%1000 == 0 {
					v = rng.Int63n(100)
				}
				data = append(data, v)
			}
		case 1: // tiny domain → Dict
			for i := 0; i < compress.DefaultBlockLen; i++ {
				data = append(data, int64(rng.Intn(4))*1_000_000)
			}
		default: // narrow span → FOR
			for i := 0; i < compress.DefaultBlockLen; i++ {
				data = append(data, 5_000_000+rng.Int63n(256))
			}
		}
	}
	return data
}

func main() {
	data := buildDriftingColumn(96)
	col, err := compress.BuildColumn(data, compress.DefaultBlockLen, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("column: %d values, %d blocks, %d scheme changes, %.1f%% of raw size\n\n",
		col.Len(), len(col.Blocks()), col.SchemeChanges(),
		100*float64(col.CompressedBytes())/float64(8*len(data)))

	const threshold = 1000

	// Reference: decompress every block and interpret.
	start := time.Now()
	var want int64
	buf := make([]int64, compress.DefaultBlockLen)
	for _, b := range col.Blocks() {
		b.Decompress(buf[:b.Len()])
		for _, v := range buf[:b.Len()] {
			if v > threshold {
				want += v
			}
		}
	}
	decompressTime := time.Since(start)

	// Compressed execution on every block.
	start = time.Now()
	var direct int64
	for _, b := range col.Blocks() {
		direct += b.SumGreater(threshold)
	}
	compressedTime := time.Since(start)

	// Adaptive scanner: falls back on first sight of each scheme, then runs
	// specialized.
	sc := compress.NewAdaptiveScanner(nil)
	start = time.Now()
	adaptive := sc.SumGreater(col, threshold)
	adaptiveTime := time.Since(start)

	if want != direct || want != adaptive {
		log.Fatalf("results disagree: %d %d %d", want, direct, adaptive)
	}
	fmt.Printf("decompress+interpret: %12v\n", decompressTime)
	fmt.Printf("compressed execution: %12v\n", compressedTime)
	fmt.Printf("adaptive scanner:     %12v  (fallback blocks=%d, specialized blocks=%d, compiles=%d)\n",
		adaptiveTime, sc.Fallbacks, sc.Specialized, sc.Compiles)
	fmt.Printf("\nsum(v > %d) = %d — identical across all paths\n", threshold, want)
}
