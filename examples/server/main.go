// Example: serving the adaptive VM — one advm.Engine behind the HTTP
// service, hammered by concurrent clients with mixed device policies. The
// point of serving is amortization: every client that prepares the same
// program drives the same VM (one profile, one set of JIT traces), and
// every query over the same table warms the same placer residency, so the
// /v1/stats dump at the end shows cache hits ≈ clients-1 and morsel
// placement counts accumulated across tenants.
//
//	go run ./examples/server
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"

	"repro/advm"
	"repro/internal/server"
	"repro/internal/tpch"
)

func main() {
	eng, err := advm.NewEngine(advm.WithParallelism(4))
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// The server is just an http.Handler over the engine: here it runs
	// in-process on a loopback listener; cmd/advm-serve is the same thing
	// behind a real socket.
	srv := server.New(eng, server.Config{MaxConcurrent: 8})
	srv.RegisterTable("lineitem", tpch.GenLineitem(0.01, 42))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Every client prepares the same program — the engine's fingerprint
	// cache unifies them onto one VM — then runs TPC-H Q6 under its own
	// device policy and parallelism.
	src := "let xs = read 0 data\nwrite out 0 (map (\\x -> (x * 3 + 7) * (x - 1)) xs)"
	policies := []string{"cpu", "auto", "auto", "cpu", "auto", "cpu"}
	var wg sync.WaitGroup
	for c, policy := range policies {
		wg.Add(1)
		go func(c int, policy string) {
			defer wg.Done()
			post := func(path, body string) string {
				resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
				if err != nil {
					log.Fatal(err)
				}
				defer resp.Body.Close()
				b, _ := io.ReadAll(resp.Body)
				if resp.StatusCode != http.StatusOK {
					log.Fatalf("client %d: %s → %d %s", c, path, resp.StatusCode, b)
				}
				return string(b)
			}
			post("/v1/prepare", fmt.Sprintf(`{"src":%q,"externals":{"data":"i64","out":"i64"}}`, src))
			post("/v1/exec", fmt.Sprintf(
				`{"src":%q,"externals":{"data":"i64","out":"i64"},
				  "bindings":{"data":{"kind":"i64","values":[1,2,3,4,5,6,7,8]},"out":{"kind":"i64","cap":64}}}`, src))
			for r := 0; r < 3; r++ {
				body := post("/v1/query", fmt.Sprintf(
					`{"query":"q6","opts":{"parallelism":4,"device":%q}}`, policy))
				lines := strings.Split(strings.TrimSpace(body), "\n")
				if r == 2 {
					fmt.Printf("client %d (%-4s): q6 → %s\n", c, policy, lines[1])
				}
			}
		}(c, policy)
	}
	wg.Wait()

	// Under full contention the pool degrades queries toward serial (no
	// fan-out → no placement machinery), so run a few uncontended adaptive
	// queries too: these are granted their workers, and repeated scans over
	// the now-resident table shift morsels to the modeled GPU.
	for r := 0; r < 3; r++ {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json",
			strings.NewReader(`{"query":"q6","opts":{"parallelism":4,"device":"auto"}}`))
		if err != nil {
			log.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	// The adaptive telemetry, as any monitoring system would scrape it.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Engine struct {
			Prepares        int64 `json:"prepares"`
			CacheHits       int64 `json:"cache_hits"`
			Programs        int   `json:"prepared_programs"`
			ParallelQueries int64 `json:"parallel_queries"`
		} `json:"engine"`
		Admission struct {
			Admitted int64 `json:"admitted"`
			Rejected int64 `json:"rejected"`
		} `json:"admission"`
		Prepared []struct {
			Fingerprint string `json:"fingerprint"`
			Runs        int64  `json:"runs"`
		} `json:"prepared"`
		Placements map[string]int64 `json:"placements"`
		TransferMS float64          `json:"transfer_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nprepared-cache sharing: %d prepares, %d cache hits, %d distinct program(s)\n",
		stats.Engine.Prepares, stats.Engine.CacheHits, stats.Engine.Programs)
	for _, p := range stats.Prepared {
		fmt.Printf("  program %s…: %d runs across all clients (one shared VM)\n",
			p.Fingerprint[:12], p.Runs)
	}
	fmt.Printf("admission: %d admitted, %d rejected; parallel queries: %d\n",
		stats.Admission.Admitted, stats.Admission.Rejected, stats.Engine.ParallelQueries)
	fmt.Printf("morsel placements across tenants: %v (modeled transfer %.2fms)\n",
		stats.Placements, stats.TransferMS)
}
