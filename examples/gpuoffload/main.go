// Adaptive CPU/GPU placement (§IV target 3): sweep kernel sizes and show
// the placer routing small/cold kernels to the CPU and large/resident ones
// to the simulated GPU, with modeled costs for both. The second half drives
// the same policy through the public advm API: a session opened with
// advm.WithDevice(advm.DeviceAuto) records a placement decision per run,
// observable via Stats.
//
// Run: go run ./examples/gpuoffload
package main

import (
	"context"
	"fmt"
	"log"

	"repro/advm"
	"repro/internal/device"
	"repro/internal/gpu"
)

func main() {
	g := gpu.New(gpu.DefaultConfig())
	cpu := device.NewCPU()
	placer := device.NewPlacer(cpu, g)

	fmt.Printf("%-12s %-10s %14s %14s %14s   %s\n",
		"elems", "resident", "cpu est", "gpu est", "gpu transfer", "placement")
	for _, resident := range []bool{false, true} {
		for _, elems := range []int{1 << 8, 1 << 12, 1 << 16, 1 << 20, 1 << 24} {
			name := fmt.Sprintf("col-%d-%v", elems, resident)
			k := device.Kernel{
				Name: name, Elems: elems,
				BytesIn: elems * 8, BytesOut: elems * 8,
				OpsPerElem: 4, Inputs: []string{name},
			}
			if resident {
				g.MakeResident(name, k.BytesIn)
			}
			chosen := placer.Choose(k)
			fmt.Printf("%-12d %-10v %14v %14v %14v   → %s\n",
				elems, resident,
				cpu.Estimate(k).Modeled, g.Estimate(k).Modeled, g.Estimate(k).Transfer,
				chosen.Name())
		}
	}
	fmt.Printf("\ndecisions: %v\n", placer.Decisions)
	fmt.Println("expected shape: cpu wins small/cold kernels; gpu wins large resident ones;")
	fmt.Println("the crossover moves later when data must cross PCIe.")

	sessionDemo()
	queryDemo()
}

// queryDemo shows per-morsel placement in the relational engine: a
// parallel query under WithDevicePolicy(DeviceAuto) dispatches each morsel
// of its scan→filter/compute segment to the CPU workers or the simulated
// GPU, and repeated queries shift large scans to the (now resident)
// accelerator. Results stay byte-identical to CPU execution either way.
func queryDemo() {
	fmt.Println("\n=== parallel query with WithDevicePolicy(DeviceAuto) ===")
	st := advm.NewTable(advm.NewSchema("k", advm.I64, "v", advm.F64))
	for i := 0; i < 300_000; i++ {
		st.AppendRow(advm.I64Value(int64(i%1000)), advm.F64Value(float64(i%97)*1.25))
	}
	sess, err := advm.NewSession(
		advm.WithParallelism(4),
		advm.WithDevicePolicy(advm.DeviceAuto))
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	plan := advm.Scan(st, "k", "v").
		Filter(`(\k -> k < 900)`, "k").
		Compute("w", `(\v -> v * 1.5 + 2.0)`, advm.F64, "v").
		Aggregate(nil, advm.Agg{Func: advm.AggSum, Col: "w", As: "sum_w"})
	for run := 1; run <= 3; run++ {
		rows, err := sess.Query(context.Background(), plan)
		if err != nil {
			log.Fatal(err)
		}
		var sum float64
		for rows.Next() {
			if err := rows.Scan(&sum); err != nil {
				log.Fatal(err)
			}
		}
		place := rows.Placements()
		rows.Close()
		fmt.Printf("run %d: sum_w=%.2f  morsels cpu=%d gpu=%d\n",
			run, sum, place["cpu"], place["gpu"])
	}
	stats := sess.Stats()
	fmt.Printf("session totals: %v, modeled transfer %v\n",
		stats.MorselPlacements, stats.MorselTransfer)
}

// sessionDemo drives the same placement policy through the public API: the
// session runs a small program over growing inputs and records where the
// modeled-cost policy would place each run.
func sessionDemo() {
	fmt.Println("\n=== advm session with WithDevice(DeviceAuto) ===")
	src := `
mut i
i := 0
loop {
  let xs = read i data
  if len(xs) == 0 then break
  let r = map (\x -> (x * 3 + 7) * (x - 1)) xs
  write out i r
  i := i + len(xs)
}
`
	sess, err := advm.Compile(src, map[string]advm.Kind{"data": advm.I64, "out": advm.I64},
		advm.WithDevice(advm.DeviceAuto))
	if err != nil {
		log.Fatal(err)
	}
	for _, elems := range []int{1 << 8, 1 << 14, 1 << 20} {
		data := make([]int64, elems)
		if err := sess.Run(context.Background(), map[string]*advm.Vector{
			"data": advm.FromI64(data), "out": advm.NewVector(advm.I64, 0, elems),
		}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%-12s %-12s %s\n", "elems", "bytes", "placed on")
	for _, p := range sess.Stats().Placements {
		fmt.Printf("%-12d %-12d %s\n", p.Elems, p.Bytes, p.Device)
	}
}
