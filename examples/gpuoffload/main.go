// Adaptive CPU/GPU placement (§IV target 3): sweep kernel sizes and show
// the placer routing small/cold kernels to the CPU and large/resident ones
// to the simulated GPU, with modeled costs for both.
//
// Run: go run ./examples/gpuoffload
package main

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/gpu"
)

func main() {
	g := gpu.New(gpu.DefaultConfig())
	cpu := device.NewCPU()
	placer := device.NewPlacer(cpu, g)

	fmt.Printf("%-12s %-10s %14s %14s %14s   %s\n",
		"elems", "resident", "cpu est", "gpu est", "gpu transfer", "placement")
	for _, resident := range []bool{false, true} {
		for _, elems := range []int{1 << 8, 1 << 12, 1 << 16, 1 << 20, 1 << 24} {
			name := fmt.Sprintf("col-%d-%v", elems, resident)
			k := device.Kernel{
				Name: name, Elems: elems,
				BytesIn: elems * 8, BytesOut: elems * 8,
				OpsPerElem: 4, Inputs: []string{name},
			}
			if resident {
				g.MakeResident(name, k.BytesIn)
			}
			chosen := placer.Choose(k)
			fmt.Printf("%-12d %-10v %14v %14v %14v   → %s\n",
				elems, resident,
				cpu.Estimate(k).Modeled, g.Estimate(k).Modeled, g.Estimate(k).Transfer,
				chosen.Name())
		}
	}
	fmt.Printf("\ndecisions: %v\n", placer.Decisions)
	fmt.Println("expected shape: cpu wins small/cold kernels; gpu wins large resident ones;")
	fmt.Println("the crossover moves later when data must cross PCIe.")
}
