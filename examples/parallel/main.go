// Example: embedding at scale — one process-wide Engine serving many
// sessions, prepared programs shared through the fingerprint-keyed cache,
// and morsel-parallel query execution via advm.WithParallelism.
//
//	go run ./examples/parallel
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/advm"
)

func main() {
	// One engine per process: it owns the worker pool, the device placer and
	// the prepared-statement cache.
	eng, err := advm.NewEngine(
		advm.WithParallelism(4),
		advm.WithSyncOptimizer(true),
		advm.WithHotThresholds(2, 200*time.Microsecond),
		advm.WithJITOptions(advm.JITOptions{CompileLatency: advm.NoCompileLatency}),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// --- Prepared programs: concurrent "connections" share one VM. -------
	src := `
mut i
i := 0
loop {
  let xs = read i data
  if len(xs) == 0 then break
  write out i (map (\x -> (x * 3 + 7) * (x - 1)) xs)
  i := i + len(xs)
}
`
	kinds := map[string]advm.Kind{"data": advm.I64, "out": advm.I64}
	prep, err := eng.Prepare(src, kinds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("prepared", prep.Fingerprint()[:12], "…")

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess, err := eng.Session()
			if err != nil {
				log.Fatal(err)
			}
			// Every "connection" re-prepares; the cache hands back the same
			// VM, so traces compiled for one client speed up all of them.
			p, err := sess.Prepare(src, kinds)
			if err != nil {
				log.Fatal(err)
			}
			data := make([]int64, 1<<14)
			for i := range data {
				data[i] = int64(i % 1000)
			}
			for r := 0; r < 8; r++ {
				out := advm.NewVector(advm.I64, 0, len(data))
				if err := sess.RunPrepared(context.Background(), p, map[string]*advm.Vector{
					"data": advm.FromI64(data), "out": out,
				}); err != nil {
					log.Fatal(err)
				}
			}
		}()
	}
	wg.Wait()
	pst := prep.Stats()
	est := eng.Stats()
	fmt.Printf("shared VM: runs=%d injected_traces=%d (one set for all sessions)\n",
		pst.Runs, pst.InjectedTraces)
	fmt.Printf("engine: sessions=%d prepares=%d cache_hits=%d distinct_programs=%d\n",
		est.Sessions, est.Prepares, est.CacheHits, est.PreparedPrograms)

	// --- Morsel-parallel queries: serial vs WithParallelism(4). ----------
	rng := rand.New(rand.NewSource(1))
	table := advm.NewTable(advm.NewSchema("k", advm.I64, "v", advm.F64))
	for i := 0; i < 1<<20; i++ {
		table.AppendRow(advm.I64Value(rng.Int63n(1000)), advm.F64Value(rng.Float64()*100))
	}
	plan := func() *advm.Plan {
		return advm.Scan(table, "k", "v").
			Filter(`(\k -> k < 800)`, "k").
			Compute("w", `(\v -> v * 1.5 + 1.0)`, advm.F64, "v").
			Aggregate(nil,
				advm.Agg{Func: advm.AggSum, Col: "w", As: "sum_w"},
				advm.Agg{Func: advm.AggCount, As: "n"})
	}
	query := func(workers int) (float64, int64, time.Duration) {
		sess, err := eng.Session(advm.WithParallelism(workers))
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		rows, err := sess.Query(context.Background(), plan())
		if err != nil {
			log.Fatal(err)
		}
		defer rows.Close()
		var sum float64
		var n int64
		for rows.Next() {
			if err := rows.Scan(&sum, &n); err != nil {
				log.Fatal(err)
			}
		}
		if err := rows.Err(); err != nil {
			log.Fatal(err)
		}
		return sum, n, time.Since(start)
	}
	sum1, n1, d1 := query(1)
	sum4, n4, d4 := query(4)
	fmt.Printf("serial:      sum=%.6f n=%d in %v\n", sum1, n1, d1.Round(time.Millisecond))
	fmt.Printf("parallel(4): sum=%.6f n=%d in %v\n", sum4, n4, d4.Round(time.Millisecond))
	fmt.Printf("byte-identical: %v (ordered merge ⇒ same float addition order), GOMAXPROCS=%d\n",
		sum1 == sum4 && n1 == n4, runtime.GOMAXPROCS(0))
}
