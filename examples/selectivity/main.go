// Selectivity specialization (§III-C): sweep a filter's selectivity and
// watch the engine's adaptive flavor choice (full/bitmap evaluation vs
// selection-vector evaluation) hug the better static strategy at every
// point — micro-adaptivity in action.
//
// Run: go run ./examples/selectivity
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/engine"
	"repro/internal/vector"
)

func buildTable(n int) *vector.DSMStore {
	rng := rand.New(rand.NewSource(17))
	st := vector.NewDSMStore(vector.NewSchema("key", vector.I64, "val", vector.I64))
	for i := 0; i < n; i++ {
		st.AppendRow(vector.I64Value(rng.Int63n(1000)), vector.I64Value(rng.Int63n(1000)))
	}
	return st
}

func runPipeline(st *vector.DSMStore, threshold int64, mode engine.EvalMode) (time.Duration, int64, error) {
	scan, err := engine.NewScan(st, "key", "val")
	if err != nil {
		return 0, 0, err
	}
	// First filter sets the selectivity; the downstream compute feels it.
	f := engine.NewFilter(scan, fmt.Sprintf(`(\k -> k < %d)`, threshold), "key").SetMode(engine.EvalFull)
	c := engine.NewCompute(f, "out", `(\v -> (v * 3 + 7) * (v - 1))`, vector.I64, "val").SetMode(mode)
	start := time.Now()
	rows, err := engine.CountRows(c)
	return time.Since(start), rows, err
}

func main() {
	st := buildTable(1 << 20)
	fmt.Printf("%-12s %12s %12s %12s   winner vs adaptive\n", "selectivity", "full", "selective", "adaptive")
	for _, threshold := range []int64{1, 10, 50, 100, 300, 500, 700, 900, 990, 999} {
		var ts [3]time.Duration
		var rows [3]int64
		for i, mode := range []engine.EvalMode{engine.EvalFull, engine.EvalSelective, engine.EvalAdaptive} {
			t, r, err := runPipeline(st, threshold, mode)
			if err != nil {
				log.Fatal(err)
			}
			ts[i], rows[i] = t, r
		}
		if rows[0] != rows[1] || rows[1] != rows[2] {
			log.Fatalf("row counts disagree: %v", rows)
		}
		winner := "full"
		if ts[1] < ts[0] {
			winner = "selective"
		}
		fmt.Printf("%-12.3f %12v %12v %12v   %s\n",
			float64(threshold)/1000,
			ts[0].Round(time.Microsecond), ts[1].Round(time.Microsecond), ts[2].Round(time.Microsecond),
			winner)
	}
	fmt.Println("\nadaptive should track the per-row winner across the sweep")
}
