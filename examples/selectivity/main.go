// Selectivity specialization (§III-C): sweep a filter's selectivity and
// watch the engine's adaptive flavor choice (full/bitmap evaluation vs
// selection-vector evaluation) hug the better static strategy at every
// point — micro-adaptivity in action, driven through the public advm
// streaming query API.
//
// Run: go run ./examples/selectivity
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/advm"
)

func buildTable(n int) *advm.Table {
	rng := rand.New(rand.NewSource(17))
	st := advm.NewTable(advm.NewSchema("key", advm.I64, "val", advm.I64))
	for i := 0; i < n; i++ {
		st.AppendRow(advm.I64Value(rng.Int63n(1000)), advm.I64Value(rng.Int63n(1000)))
	}
	return st
}

func runPipeline(sess *advm.Session, st *advm.Table, threshold int64, mode advm.EvalMode) (time.Duration, int64, error) {
	// First filter sets the selectivity; the downstream compute feels it.
	plan := advm.Scan(st, "key", "val").
		FilterMode(advm.EvalFull, fmt.Sprintf(`(\k -> k < %d)`, threshold), "key").
		ComputeMode(mode, "out", `(\v -> (v * 3 + 7) * (v - 1))`, advm.I64, "val")
	start := time.Now()
	rows, err := sess.Query(context.Background(), plan)
	if err != nil {
		return 0, 0, err
	}
	defer rows.Close()
	n, err := rows.Count()
	return time.Since(start), n, err
}

func main() {
	st := buildTable(1 << 20)
	sess, err := advm.NewSession()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %12s %12s %12s   winner vs adaptive\n", "selectivity", "full", "selective", "adaptive")
	for _, threshold := range []int64{1, 10, 50, 100, 300, 500, 700, 900, 990, 999} {
		var ts [3]time.Duration
		var rows [3]int64
		for i, mode := range []advm.EvalMode{advm.EvalFull, advm.EvalSelective, advm.EvalAdaptive} {
			t, r, err := runPipeline(sess, st, threshold, mode)
			if err != nil {
				log.Fatal(err)
			}
			ts[i], rows[i] = t, r
		}
		if rows[0] != rows[1] || rows[1] != rows[2] {
			log.Fatalf("row counts disagree: %v", rows)
		}
		winner := "full"
		if ts[1] < ts[0] {
			winner = "selective"
		}
		fmt.Printf("%-12.3f %12v %12v %12v   %s\n",
			float64(threshold)/1000,
			ts[0].Round(time.Microsecond), ts[1].Round(time.Microsecond), ts[2].Round(time.Microsecond),
			winner)
	}
	fmt.Println("\nadaptive should track the per-row winner across the sweep")
}
