package advm

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/colstore"
	"repro/internal/device"
	"repro/internal/dsl"
	"repro/internal/fused"
	"repro/internal/gpu"
	"repro/internal/nir"
	"repro/internal/vm"
)

// Engine is the process-wide execution backend of the adaptive VM: it owns
// the worker pool that morsel-parallel queries draw from, the device placer,
// and the prepared-statement cache that lets concurrent sessions share one
// adaptive VM per distinct program. Create one Engine per process (or per
// tenant) and hand out lightweight sessions from it:
//
//	eng, _ := advm.NewEngine(advm.WithParallelism(8))
//	defer eng.Close()
//	prep, _ := eng.Prepare(src, map[string]advm.Kind{"data": advm.I64})
//	sess, _ := eng.Session()
//	err := sess.RunPrepared(ctx, prep, bindings)
//
// Sharing matters because adaptivity amortizes: the paper's profiling →
// fragment JIT → trace injection cycle only pays off when the compiled
// artifacts are reused. Prepared programs are cached by the canonical
// fingerprint of their normalized IR, so every session executing the same
// program — however it spells its variables — drives the same VM, whose
// profile, injected traces and micro-adaptive decisions keep improving with
// the combined traffic.
//
// All Engine methods are safe for concurrent use.
type Engine struct {
	opt options

	mu       sync.Mutex // guards gpu/placer (lazy), cache and useClock
	cpu      *device.CPU
	gpu      *gpu.Device
	placer   *device.Placer
	cache    map[nir.Fingerprint]*prepEntry
	useClock int64

	pool *workerPool

	tablesMu sync.Mutex
	tables   map[string]*colstore.Table // open stored tables by directory

	// Tiered relational execution: per-fingerprint hotness state and the
	// engine-wide fused-code cache (see WithTieredExecution).
	tiersMu   sync.Mutex
	tiers     map[string]*tierEntry
	tierClock int64
	fcache    *fused.Cache

	sessions        atomic.Int64
	prepares        atomic.Int64
	cacheHits       atomic.Int64
	cacheEvictions  atomic.Int64
	parallelQueries atomic.Int64
	tierUps         atomic.Int64
	fusedCompiles   atomic.Int64
	fusedCacheHits  atomic.Int64
	fusedQueries    atomic.Int64
	fusedDeopts     atomic.Int64
	closed          atomic.Bool
}

// tierEntry is the hotness state of one canonical plan fingerprint.
type tierEntry struct {
	fp        string
	execs     atomic.Int64 // completed+started Query calls for this plan
	deopts    atomic.Int64 // guard failures across its fused runs
	fusedRuns atomic.Int64 // queries that executed fused loops
	use       int64        // last-use stamp for LRU eviction (under tiersMu)
}

// maxTierEntries bounds the per-fingerprint hotness map the same way the
// prepared-statement cache is bounded: endlessly distinct plans recycle
// slots (losing only their execution counts) instead of growing the engine.
const maxTierEntries = 256

// tierEntryFor returns the hotness state for a plan fingerprint, creating
// it on first use and evicting the least-recently-queried entry on
// overflow.
func (e *Engine) tierEntryFor(fp string) *tierEntry {
	e.tiersMu.Lock()
	defer e.tiersMu.Unlock()
	if e.tiers == nil {
		e.tiers = make(map[string]*tierEntry)
	}
	t, ok := e.tiers[fp]
	if !ok {
		if len(e.tiers) >= maxTierEntries {
			var victim *tierEntry
			for _, cand := range e.tiers {
				if victim == nil || cand.use < victim.use {
					victim = cand
				}
			}
			if victim != nil {
				delete(e.tiers, victim.fp)
			}
		}
		t = &tierEntry{fp: fp}
		e.tiers[fp] = t
	}
	e.tierClock++
	t.use = e.tierClock
	return t
}

// tierName classifies an execution count against the cold/warm/hot
// thresholds.
func tierName(n, warm, hot int64) string {
	switch {
	case n >= hot:
		return "hot"
	case n >= warm:
		return "warm"
	default:
		return "cold"
	}
}

// prepEntry is one cached prepared program: the shared VM and its identity.
type prepEntry struct {
	fp   nir.Fingerprint
	src  string
	prog *nir.Program
	vm   *vm.VM
	runs atomic.Int64
	use  int64 // last-use stamp for LRU eviction (under Engine.mu)
}

// maxPreparedPrograms bounds the prepared-statement cache: each entry pins a
// whole VM (profile, traces), so a workload of endlessly distinct programs
// — e.g. queries with inlined varying constants — must recycle slots
// instead of growing until OOM. Evicted entries stay fully usable through
// the Prepared handles already holding them; only future Prepare calls
// re-learn.
const maxPreparedPrograms = 256

// NewEngine creates an engine. Options set the engine-wide defaults that
// Engine.Session hands down (and that Prepare bakes into shared VMs).
func NewEngine(opts ...Option) (*Engine, error) {
	o := defaultOptions()
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, tagged(ErrBind, err)
		}
	}
	o.finalize()
	return newEngine(o), nil
}

func newEngine(o options) *Engine {
	e := &Engine{
		opt:    o,
		cpu:    device.NewCPU(),
		cache:  make(map[nir.Fingerprint]*prepEntry),
		fcache: fused.NewCache(0),
	}
	if o.device != DeviceCPU {
		e.ensureGPU()
	}
	capacity := runtime.GOMAXPROCS(0)
	if o.parallelism > capacity {
		capacity = o.parallelism
	}
	e.pool = &workerPool{capacity: capacity}
	return e
}

// ensureGPU lazily instantiates the modeled GPU and the placer (sessions may
// opt into device policies the engine was not created with).
func (e *Engine) ensureGPU() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.gpu == nil {
		e.gpu = gpu.New(gpu.DefaultConfig())
		e.placer = device.NewPlacer(e.cpu, e.gpu)
	}
}

// Session creates a lightweight session backed by the engine: it shares the
// engine's worker pool, prepared-statement cache and device placer. opts
// override the engine's defaults for this session only (they do not affect
// VMs already shared through Prepare). Closing the session does not close
// the engine.
func (e *Engine) Session(opts ...Option) (*Session, error) {
	if e.closed.Load() {
		return nil, errClosed("engine")
	}
	o := e.opt
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, tagged(ErrBind, err)
		}
	}
	o.finalize()
	if o.device != DeviceCPU {
		e.ensureGPU()
	}
	e.sessions.Add(1)
	return &Session{eng: e, opt: o}, nil
}

// Prepare parses, checks and normalizes a DSL program and returns a
// reusable, concurrency-safe handle onto the shared adaptive VM for it.
// Programs are cached engine-wide by the canonical fingerprint of their
// normalized IR: preparing the same program again — from any session, in any
// spelling that normalizes identically — returns a handle onto the same VM,
// so its profile and injected JIT traces are shared instead of re-learned.
// The VM is configured with the engine's options; failures are classified
// under ErrCompile.
func (e *Engine) Prepare(src string, externals map[string]Kind) (*Prepared, error) {
	if e.closed.Load() {
		return nil, errClosed("engine")
	}
	ast, err := dsl.Parse(src)
	if err != nil {
		return nil, tagged(ErrCompile, err)
	}
	ir, err := nir.Normalize(ast, externals)
	if err != nil {
		return nil, tagged(ErrCompile, err)
	}
	fp := ir.Fingerprint()
	e.prepares.Add(1)
	e.mu.Lock()
	entry, ok := e.cache[fp]
	if ok {
		e.cacheHits.Add(1)
	} else {
		if len(e.cache) >= maxPreparedPrograms {
			e.evictLRU()
		}
		entry = &prepEntry{fp: fp, src: src, prog: ir, vm: vm.New(ir, e.opt.cfg)}
		e.cache[fp] = entry
	}
	e.useClock++
	entry.use = e.useClock
	e.mu.Unlock()
	return &Prepared{eng: e, entry: entry}, nil
}

// evictLRU drops the least-recently-prepared cache entry (caller holds mu).
// Outstanding Prepared handles keep the evicted VM alive and functional;
// the engine merely stops unifying future Prepare calls onto it.
func (e *Engine) evictLRU() {
	var victim *prepEntry
	for _, entry := range e.cache {
		if victim == nil || entry.use < victim.use {
			victim = entry
		}
	}
	if victim != nil {
		delete(e.cache, victim.fp)
		e.cacheEvictions.Add(1)
	}
}

// OpenTable opens the disk-backed compressed columnar table stored in the
// colstore directory dir. Tables are cached by directory and shared
// engine-wide — concurrent sessions querying the same table share one set of
// mapped segment files — and are released by Engine.Close. Corrupt or
// truncated table files are classified under ErrBind.
func (e *Engine) OpenTable(dir string) (*StoredTable, error) {
	if e.closed.Load() {
		return nil, errClosed("engine")
	}
	e.tablesMu.Lock()
	defer e.tablesMu.Unlock()
	if t, ok := e.tables[dir]; ok {
		return t, nil
	}
	t, err := colstore.Open(dir)
	if err != nil {
		return nil, tagged(ErrBind, err)
	}
	if e.tables == nil {
		e.tables = make(map[string]*colstore.Table)
	}
	e.tables[dir] = t
	return t, nil
}

// Close marks the engine closed: subsequent Prepare, Session, Run and Query
// calls — including on sessions and prepared statements already handed out —
// return an error matching ErrClosed, and the worker pool stops granting
// parallel workers. Executions already in flight finish normally, with one
// exception: stored tables opened through OpenTable have their file mappings
// released by Close, so queries streaming from them must be drained first.
// Close is idempotent.
func (e *Engine) Close() error {
	e.closed.Store(true)
	e.pool.close()
	e.tablesMu.Lock()
	tables := e.tables
	e.tables = nil
	e.tablesMu.Unlock()
	var err error
	for _, t := range tables {
		if cerr := t.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// EngineStats is a point-in-time snapshot of the engine's shared state.
type EngineStats struct {
	// Sessions counts sessions handed out by Engine.Session (plus the one
	// implicit session of a standalone NewSession/Compile engine).
	Sessions int64
	// Prepares counts Prepare calls; CacheHits counts how many of them were
	// answered from the prepared-statement cache. PreparedPrograms is the
	// number of currently cached programs (bounded; CacheEvictions counts
	// LRU evictions of cold entries).
	Prepares, CacheHits, CacheEvictions int64
	PreparedPrograms                    int
	// PoolCapacity and PoolInUse describe the worker pool: how many parallel
	// workers the engine may grant in total, and how many are currently
	// granted to running queries.
	PoolCapacity, PoolInUse int
	// ParallelQueries counts queries that executed with more than one
	// worker.
	ParallelQueries int64
	// TierUps counts plan fingerprints crossing the warm or hot thresholds
	// of tiered relational execution.
	TierUps int64
	// FusedCompiles and FusedCacheHits count fused-segment compilations and
	// code-cache hits; FusedPrograms is the current cache population
	// (negative entries included).
	FusedCompiles, FusedCacheHits int64
	FusedPrograms                 int
	// FusedQueries counts queries that executed fused loops; FusedDeopts
	// counts guard failures that reverted a fused loop to the interpreter
	// mid-query.
	FusedQueries, FusedDeopts int64
	// Tiers is the per-fingerprint hotness state of tiered execution,
	// sorted by fingerprint.
	Tiers []TierInfo
}

// TierInfo is the hotness state of one plan fingerprint under tiered
// relational execution.
type TierInfo struct {
	// Fingerprint is the canonical plan fingerprint (a short hash of the
	// plan's structure, lambdas and scanned schemas).
	Fingerprint string
	// Tier is the fingerprint's current tier under the engine's thresholds:
	// "cold", "warm" or "hot".
	Tier string
	// Execs counts queries of this plan; FusedRuns how many executed fused
	// loops; Deopts how many guard failures reverted fused loops.
	Execs, FusedRuns, Deopts int64
}

// Stats snapshots the engine's counters. Safe to call concurrently with
// everything else.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	cached := len(e.cache)
	e.mu.Unlock()
	capacity, inUse := e.pool.usage()
	e.tiersMu.Lock()
	tiers := make([]TierInfo, 0, len(e.tiers))
	for fp, t := range e.tiers {
		tiers = append(tiers, TierInfo{
			Fingerprint: fp,
			Tier:        tierName(t.execs.Load(), e.opt.tierWarm, e.opt.tierHot),
			Execs:       t.execs.Load(),
			FusedRuns:   t.fusedRuns.Load(),
			Deopts:      t.deopts.Load(),
		})
	}
	e.tiersMu.Unlock()
	sort.Slice(tiers, func(i, j int) bool { return tiers[i].Fingerprint < tiers[j].Fingerprint })
	fusedProgs, _, _ := e.fcache.Stats()
	return EngineStats{
		Sessions:         e.sessions.Load(),
		Prepares:         e.prepares.Load(),
		CacheHits:        e.cacheHits.Load(),
		CacheEvictions:   e.cacheEvictions.Load(),
		PreparedPrograms: cached,
		PoolCapacity:     capacity,
		PoolInUse:        inUse,
		ParallelQueries:  e.parallelQueries.Load(),
		TierUps:          e.tierUps.Load(),
		FusedCompiles:    e.fusedCompiles.Load(),
		FusedCacheHits:   e.fusedCacheHits.Load(),
		FusedPrograms:    fusedProgs,
		FusedQueries:     e.fusedQueries.Load(),
		FusedDeopts:      e.fusedDeopts.Load(),
		Tiers:            tiers,
	}
}

// placementBackend returns the engine-global placer and modeled GPU for
// morsel-level query placement, instantiating them lazily. The returned
// pointers are immutable once set, so callers use them without holding the
// engine's lock.
func (e *Engine) placementBackend() (*device.Placer, device.Device) {
	e.ensureGPU()
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.placer, e.gpu
}

// choosePlacement runs the engine's placement policy for one execution
// (guarded: the placer learns from every decision).
func (e *Engine) choosePlacement(policy DeviceKind, k device.Kernel) string {
	switch policy {
	case DeviceGPU:
		e.ensureGPU()
		return e.gpu.Name()
	case DeviceAuto:
		e.ensureGPU()
		e.mu.Lock()
		defer e.mu.Unlock()
		return e.placer.Choose(k).Name()
	}
	return "cpu"
}

// Prepared is a prepared program: a concurrency-safe handle onto a shared
// adaptive VM. Any number of goroutines and sessions may Run it at once;
// every run gets a private environment while profiling data and injected
// traces accumulate in the shared VM. (The VM's plans swap atomically, its
// profile and trace counters are atomic, and its optimizer coalesces
// concurrent passes — see internal/vm.)
type Prepared struct {
	eng   *Engine
	entry *prepEntry
}

// Run executes the prepared program once against the given external arrays.
// Semantics match Session.Run: ctx is honored at chunk boundaries
// (ErrCancelled), binding problems are classified under ErrBind, and a
// closed engine yields ErrClosed.
func (p *Prepared) Run(ctx context.Context, bindings map[string]*Vector) error {
	if p.eng.closed.Load() {
		return errClosed("engine")
	}
	env, err := p.entry.vm.NewEnv(bindings)
	if err != nil {
		return tagged(ErrBind, err)
	}
	if err := p.entry.vm.RunContext(ctx, env); err != nil {
		return classifyCtx(ctx, err)
	}
	p.entry.runs.Add(1)
	return nil
}

// Fingerprint returns the canonical fingerprint of the normalized program —
// the prepared-statement cache key.
func (p *Prepared) Fingerprint() string { return p.entry.fp.String() }

// Tier classifies this prepared program's cumulative run count against the
// engine's tier thresholds: "cold", "warm" or "hot". Repeated executions of
// the same program tier it up exactly like a repeated relational plan.
func (p *Prepared) Tier() string {
	return tierName(p.entry.runs.Load(), p.eng.opt.tierWarm, p.eng.opt.tierHot)
}

// Source returns the DSL source the program was first prepared from.
func (p *Prepared) Source() string { return p.entry.src }

// IR renders the normalized intermediate representation.
func (p *Prepared) IR() string { return p.entry.prog.String() }

// PlanReport renders the current execution plan of every program segment,
// showing which steps are interpreted and which run injected traces.
func (p *Prepared) PlanReport() string { return planReport(p.entry.vm) }

// Stats snapshots the shared VM's observability surface. Runs counts
// completed executions across every handle onto this program; trace and
// profile counters likewise aggregate all users — one prepared program, one
// set of traces.
func (p *Prepared) Stats() Stats {
	st := Stats{Runs: p.entry.runs.Load(), Kernels: KernelCount()}
	vmStats(p.entry.vm, &st)
	return st
}

// workerPool is the engine's admission control for intra-query parallelism:
// a query asks for n workers and is granted between 1 and n depending on
// availability, so concurrent parallel queries degrade toward serial
// execution instead of oversubscribing the host.
type workerPool struct {
	mu       sync.Mutex
	capacity int
	inUse    int
	closed   bool
}

// acquire grants up to n workers (serial execution — one worker — needs no
// permit and is always granted).
func (p *workerPool) acquire(n int) int {
	if n <= 1 {
		return 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 1
	}
	free := p.capacity - p.inUse
	if n > free {
		n = free
	}
	if n < 2 {
		return 1
	}
	p.inUse += n
	return n
}

// release returns granted workers to the pool.
func (p *workerPool) release(n int) {
	if n <= 1 {
		return
	}
	p.mu.Lock()
	p.inUse -= n
	p.mu.Unlock()
}

func (p *workerPool) close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
}

func (p *workerPool) usage() (capacity, inUse int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.capacity, p.inUse
}

// errClosed builds the typed closed error for a subject ("engine",
// "session").
func errClosed(what string) error {
	return tagged(ErrClosed, errors.New(what+" is closed"))
}
