package advm

import (
	"repro/internal/colstore"
	"repro/internal/vector"
)

// The data-plane types are shared with the internal execution layers by
// alias, so embedding applications hand vectors to the VM without copies and
// without importing internal packages. Only the configuration surface
// (vm.Config, jit.Options, depgraph.Constraints) is hidden behind Session
// options; the columnar containers are the public currency of the API.
type (
	// Vector is a typed columnar array, the unit of data exchanged with the
	// VM through Session.Run bindings.
	Vector = vector.Vector
	// Kind is the element type of a Vector.
	Kind = vector.Kind
	// Value is one boxed element (used by Vector.Get/Set and Table rows).
	Value = vector.Value
	// Chunk is a set of equal-length column vectors plus an optional
	// selection vector — the unit of streaming in Query pipelines.
	Chunk = vector.Chunk
	// Table is a decomposed (column-wise) store queryable with Scan.
	Table = vector.DSMStore
	// TableSource is any columnar row source a Scan plan can read: an
	// in-RAM Table, a disk-backed StoredTable opened from a colstore
	// directory, or any other implementation of the columnar Store
	// contract.
	TableSource = vector.Store
	// StoredTable is a disk-backed compressed columnar table, opened from a
	// colstore directory via Engine.OpenTable or Session.OpenTable (see
	// WithTableDir). Scans over stored tables decode per chunk from the
	// memory-mapped segment files, and filters whose predicates imply an
	// interval on a scanned column skip whole segments via the per-segment
	// zone maps (see WithScanPruning).
	StoredTable = colstore.Table
	// Schema describes a Table's column names and kinds.
	Schema = vector.Schema
)

// Element kinds.
const (
	Bool = vector.Bool
	I8   = vector.I8
	I16  = vector.I16
	I32  = vector.I32
	I64  = vector.I64
	F64  = vector.F64
	Str  = vector.Str
)

// DefaultChunkLen is the default number of rows processed per chunk.
const DefaultChunkLen = vector.DefaultChunkLen

// NewVector creates a vector of n elements of kind k with the given capacity.
func NewVector(k Kind, n, capacity int) *Vector { return vector.New(k, n, capacity) }

// NewVectorLen creates a zeroed vector of n elements of kind k.
func NewVectorLen(k Kind, n int) *Vector { return vector.NewLen(k, n) }

// FromBool wraps a bool slice without copying.
func FromBool(data []bool) *Vector { return vector.FromBool(data) }

// FromI8 wraps an int8 slice without copying.
func FromI8(data []int8) *Vector { return vector.FromI8(data) }

// FromI16 wraps an int16 slice without copying.
func FromI16(data []int16) *Vector { return vector.FromI16(data) }

// FromI32 wraps an int32 slice without copying.
func FromI32(data []int32) *Vector { return vector.FromI32(data) }

// FromI64 wraps an int64 slice without copying.
func FromI64(data []int64) *Vector { return vector.FromI64(data) }

// FromF64 wraps a float64 slice without copying.
func FromF64(data []float64) *Vector { return vector.FromF64(data) }

// FromStr wraps a string slice without copying.
func FromStr(data []string) *Vector { return vector.FromStr(data) }

// ParseKind parses a kind name ("bool", "i8" … "i64", "f64", "str").
func ParseKind(s string) (Kind, error) { return vector.ParseKind(s) }

// BoolValue boxes a bool.
func BoolValue(b bool) Value { return vector.BoolValue(b) }

// IntValue boxes an integer of kind k.
func IntValue(k Kind, i int64) Value { return vector.IntValue(k, i) }

// I64Value boxes an int64.
func I64Value(i int64) Value { return vector.I64Value(i) }

// F64Value boxes a float64.
func F64Value(f float64) Value { return vector.F64Value(f) }

// StrValue boxes a string.
func StrValue(s string) Value { return vector.StrValue(s) }

// NewSchema builds a schema from ("name", Kind, "name", Kind, …) pairs.
func NewSchema(pairs ...any) Schema { return vector.NewSchema(pairs...) }

// NewTable creates an empty column-wise table with the given schema.
func NewTable(sch Schema) *Table { return vector.NewDSMStore(sch) }
