package advm_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/advm"
	"repro/internal/qtrace"
	"repro/internal/tpch"
)

// queryTraced runs a plan at the given trace level, drains it, and returns
// the row count and finished trace.
func queryTraced(t *testing.T, sess *advm.Session, plan *advm.Plan, level advm.TraceLevel) (int64, *qtrace.Trace) {
	t.Helper()
	rows, err := sess.QueryTraced(context.Background(), plan, level)
	if err != nil {
		t.Fatal(err)
	}
	n, err := rows.Count()
	if err != nil {
		t.Fatal(err)
	}
	return n, rows.Trace()
}

// signature flattens a span tree into its structural skeleton: pre-order
// (depth, kind, name) over query and operator spans. Morsel leaves and
// events are execution artifacts and excluded; the skeleton is a function
// of the plan alone.
func signature(root *qtrace.SpanJSON) []string {
	var out []string
	var walk func(n *qtrace.SpanJSON, depth int)
	walk = func(n *qtrace.SpanJSON, depth int) {
		if n.Kind != "query" && n.Kind != "op" {
			return
		}
		out = append(out, fmt.Sprintf("%d/%s/%s", depth, n.Kind, n.Name))
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	return out
}

func countKind(root *qtrace.SpanJSON, kind string) int {
	n := 0
	var walk func(*qtrace.SpanJSON)
	walk = func(s *qtrace.SpanJSON) {
		if s.Kind == kind {
			n++
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(root)
	return n
}

// attrInt reads an integer attribute off a span, whatever Go integer type
// the recorder stored.
func attrInt(s *qtrace.SpanJSON, key string) (int64, bool) {
	v, ok := s.Attrs[key]
	if !ok {
		return 0, false
	}
	switch n := v.(type) {
	case int64:
		return n, true
	case int:
		return int64(n), true
	case float64:
		return int64(n), true
	}
	return 0, false
}

// TestTraceStructuralDeterminism runs the same join→aggregate→topk plan at
// parallelism 1, 4 and 8 (fresh engine each, so tiering state can't leak
// between runs) and checks the observability invariants:
//
//   - the operator span skeleton is identical at every parallelism — the
//     node set is a function of the plan, not of the execution schedule;
//   - every operator that reports a "morsels" count has exactly that many
//     morsel leaf children;
//   - at parallelism 1 the operator self-times sum to no more than the
//     query's wall time (one accounting stream, nothing double-counted).
//
// Run under -race this also exercises the concurrent span mutation paths
// (workers recording morsel leaves while the consumer drains).
func TestTraceStructuralDeterminism(t *testing.T) {
	fx := newJoinFixture(50_000, 800, 23)
	var baseline []string
	for _, workers := range []int{1, 4, 8} {
		eng, err := advm.NewEngine(advm.WithParallelism(workers))
		if err != nil {
			t.Fatal(err)
		}
		sess, err := eng.Session()
		if err != nil {
			t.Fatal(err)
		}
		n, tr := queryTraced(t, sess, fx.plan(), advm.TraceMorsels)
		if n == 0 {
			t.Fatalf("workers=%d: no result rows", workers)
		}
		root := tr.Tree()
		if root == nil || root.Kind != "query" {
			t.Fatalf("workers=%d: trace root = %+v", workers, root)
		}
		if w, ok := attrInt(root, "workers"); !ok || w != int64(workers) {
			t.Fatalf("workers=%d: root workers attr = %v", workers, root.Attrs["workers"])
		}

		sig := signature(root)
		if baseline == nil {
			baseline = sig
			// Sanity: the skeleton must cover the whole plan — scan,
			// filter, join-probe (with its build subtree), compute,
			// aggregate, topk.
			joined := strings.Join(sig, "\n")
			for _, op := range []string{"scan", "filter", "join-probe", "join-build", "compute", "aggregate", "topk"} {
				if !strings.Contains(joined, "/"+op) {
					t.Fatalf("span skeleton missing %q:\n%s", op, joined)
				}
			}
		} else if got, want := strings.Join(sig, "\n"), strings.Join(baseline, "\n"); got != want {
			t.Fatalf("workers=%d: span skeleton differs from parallelism-1 baseline:\n--- got\n%s\n--- want\n%s", workers, got, want)
		}

		var checkMorsels func(s *qtrace.SpanJSON)
		checkMorsels = func(s *qtrace.SpanJSON) {
			if want, ok := attrInt(s, "morsels"); ok {
				leaves := 0
				for _, c := range s.Children {
					if c.Kind == "morsel" {
						leaves++
					}
				}
				if int64(leaves) != want {
					t.Fatalf("workers=%d: op %s reports %d morsels but has %d morsel leaves", workers, s.Name, want, leaves)
				}
			}
			for _, c := range s.Children {
				checkMorsels(c)
			}
		}
		checkMorsels(root)

		if workers == 1 {
			var selfSum int64
			for _, ns := range tr.OpSelfTimes() {
				selfSum += ns
			}
			if selfSum > root.DurNs {
				t.Fatalf("parallelism 1: operator self-times sum %d ns > query wall %d ns", selfSum, root.DurNs)
			}
		}
		eng.Close()
	}
}

// TestExplainAnalyzeQ3 renders Q3 at parallelism 4 and spot-checks the
// surfaces the rendering promises: per-operator actual times, per-worker
// morsel counts, steal attribution and the tier annotation.
func TestExplainAnalyzeQ3(t *testing.T) {
	const sf = 0.005
	li := tpch.GenLineitem(sf, 42)
	ord := tpch.GenOrders(sf, 42)
	cust := tpch.GenCustomer(sf, 42)

	eng := hotEngine(t, advm.WithParallelism(4))
	defer eng.Close()
	sess, err := eng.Session()
	if err != nil {
		t.Fatal(err)
	}
	plan := func() *advm.Plan { return tpch.PlanQ3(li, ord, cust, tpch.DefaultQ3Params()) }
	out, err := sess.ExplainAnalyze(context.Background(), plan())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"query", "topk", "aggregate", "join-probe", "join-build", "scan",
		"workers=4", "actual=", "morsels:", "w0=", "stolen=", "tier=",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("EXPLAIN ANALYZE output missing %q:\n%s", want, out)
		}
	}

	// The same query traced off must yield a nil trace and a "disabled"
	// explanation, not an empty tree.
	n, tr := queryTraced(t, sess, plan(), advm.TraceOff)
	if n == 0 {
		t.Fatal("no rows")
	}
	if tr != nil {
		t.Fatalf("TraceOff query returned a trace")
	}
	if s := tr.ExplainAnalyze(); !strings.Contains(s, "disabled") {
		t.Fatalf("nil trace ExplainAnalyze = %q", s)
	}
}

// TestTraceResultsUnchanged: tracing must be observation only — the traced
// run returns bit-identical rows to the untraced one.
func TestTraceResultsUnchanged(t *testing.T) {
	fx := newJoinFixture(30_000, 400, 29)
	eng := hotEngine(t, advm.WithParallelism(4))
	defer eng.Close()
	sess, err := eng.Session()
	if err != nil {
		t.Fatal(err)
	}
	want := collectRows(t, sess, fx.plan())

	rows, err := sess.QueryTraced(context.Background(), fx.plan(), advm.TraceMorsels)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var got [][]advm.Value
	n := len(rows.Columns())
	for rows.Next() {
		row := make([]advm.Value, n)
		dests := make([]any, n)
		for i := range row {
			dests[i] = &row[i]
		}
		if err := rows.Scan(dests...); err != nil {
			t.Fatal(err)
		}
		got = append(got, row)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	mustRowsEqualBitwise(t, got, want, "traced")
}

// BenchmarkQ6Trace measures the tracing tax on the hot Q6 path at each
// level. The off level must stay within noise of a build predating the
// tracing hooks (CI guards the regression via bench/baseline
// BENCH_trace.json); ops pays two clock reads per operator call; morsels
// adds per-morsel leaf spans.
func BenchmarkQ6Trace(b *testing.B) {
	li := tpch.GenLineitem(0.01, 42)
	for _, bc := range []struct {
		name  string
		level advm.TraceLevel
	}{
		{"off", advm.TraceOff},
		{"ops", advm.TraceOps},
		{"morsels", advm.TraceMorsels},
	} {
		b.Run(bc.name, func(b *testing.B) {
			eng, err := advm.NewEngine(
				advm.WithParallelism(1),
				advm.WithJITOptions(advm.JITOptions{CompileLatency: advm.NoCompileLatency}),
			)
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			sess, err := eng.Session()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, err := sess.QueryTraced(context.Background(), tpch.PlanQ6(li, tpch.DefaultQ6Params()), bc.level)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := rows.Count(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
