package advm_test

import (
	"context"
	"errors"
	"fmt"

	"repro/advm"
)

// ExampleSession_Run compiles a small data-parallel program and runs it to
// a deterministic result. Synchronous optimization keeps the demo
// reproducible: the loop goes hot on the first run and later runs execute
// injected traces.
func ExampleSession_Run() {
	src := `
mut i
i := 0
loop {
  let xs = read i data
  if len(xs) == 0 then break
  let r = map (\x -> x * 2) xs
  write out i r
  i := i + len(xs)
}
`
	sess := advm.MustCompile(src,
		map[string]advm.Kind{"data": advm.I64, "out": advm.I64},
		advm.WithSyncOptimizer(true),
		advm.WithHotThresholds(1, 0),
		advm.WithJITOptions(advm.JITOptions{CompileLatency: advm.NoCompileLatency}),
	)

	data := []int64{1, 2, 3, 4}
	for run := 1; run <= 2; run++ {
		out := advm.NewVector(advm.I64, 0, len(data))
		if err := sess.Run(context.Background(), map[string]*advm.Vector{
			"data": advm.FromI64(data), "out": out,
		}); err != nil {
			fmt.Println("run failed:", err)
			return
		}
		fmt.Printf("run %d: %v\n", run, out.I64())
	}
	fmt.Println("segments compiled:", len(sess.Stats().CompiledSegments) > 0)
	// Output:
	// run 1: [2 4 6 8]
	// run 2: [2 4 6 8]
	// segments compiled: true
}

// ExampleSession_Query streams a relational pipeline's result through the
// database/sql-style cursor.
func ExampleSession_Query() {
	table := advm.NewTable(advm.NewSchema("k", advm.I64, "v", advm.I64))
	for i := int64(0); i < 8; i++ {
		table.AppendRow(advm.I64Value(i), advm.I64Value(10*i))
	}

	sess, _ := advm.NewSession()
	rows, err := sess.Query(context.Background(),
		advm.Scan(table, "k", "v").
			Filter(`(\k -> k % 2 == 0)`, "k").
			Compute("vv", `(\v -> v + 1)`, advm.I64, "v"))
	if err != nil {
		fmt.Println("query failed:", err)
		return
	}
	defer rows.Close()
	for rows.Next() {
		var k, vv int64
		if err := rows.Scan(&k, nil, &vv); err != nil {
			fmt.Println("scan failed:", err)
			return
		}
		fmt.Println(k, vv)
	}
	if err := rows.Err(); err != nil {
		fmt.Println("stream failed:", err)
	}
	// Output:
	// 0 1
	// 2 21
	// 4 41
	// 6 61
}

// ExampleEngine_Prepare shows the scale surface: one process-wide Engine,
// prepared programs cached by the fingerprint of their normalized IR, and
// lightweight sessions sharing the prepared VM — so its profile and
// injected traces improve with everyone's traffic instead of being
// re-learned per connection.
func ExampleEngine_Prepare() {
	eng, _ := advm.NewEngine(
		advm.WithSyncOptimizer(true),
		advm.WithHotThresholds(1, 0),
		advm.WithJITOptions(advm.JITOptions{CompileLatency: advm.NoCompileLatency}),
	)
	defer eng.Close()

	prep, _ := eng.Prepare(`
mut i
i := 0
loop {
  let xs = read i data
  if len(xs) == 0 then break
  write out i (map (\x -> x * x) xs)
  i := i + len(xs)
}
`, map[string]advm.Kind{"data": advm.I64, "out": advm.I64})

	// A respelled but equivalent program normalizes to the same IR and hits
	// the cache: both handles drive one shared VM.
	again, _ := eng.Prepare(`
mut cursor
cursor := 0
loop {
  let batch = read cursor data
  if len(batch) == 0 then break
  write out cursor (map (\y -> y * y) batch)
  cursor := cursor + len(batch)
}
`, map[string]advm.Kind{"data": advm.I64, "out": advm.I64})
	fmt.Println("same program:", prep.Fingerprint() == again.Fingerprint())

	sess, _ := eng.Session()
	out := advm.NewVector(advm.I64, 0, 4)
	if err := sess.RunPrepared(context.Background(), prep, map[string]*advm.Vector{
		"data": advm.FromI64([]int64{1, 2, 3, 4}), "out": out,
	}); err != nil {
		fmt.Println("run failed:", err)
		return
	}
	fmt.Println("out:", out.I64())

	st := eng.Stats()
	fmt.Printf("prepares=%d cache_hits=%d distinct_programs=%d\n",
		st.Prepares, st.CacheHits, st.PreparedPrograms)
	fmt.Println("shared runs:", again.Stats().Runs)
	// Output:
	// same program: true
	// out: [1 4 9 16]
	// prepares=2 cache_hits=1 distinct_programs=1
	// shared runs: 1
}

// ExampleWithParallelism fans a query out across the engine's worker pool
// under work-stealing morsel dispatch: the row space is split contiguously
// across the workers and rebalanced on the fly when one drains early (see
// Stats.MorselSteals). Chunks are handed back in batches and emitted in
// table order, and aggregation folds per-morsel tables in morsel sequence
// order, so at a fixed WithMorselLen the output — floating-point aggregates
// included — is byte-identical at every worker count.
func ExampleWithParallelism() {
	table := advm.NewTable(advm.NewSchema("k", advm.I64, "v", advm.I64))
	for i := int64(0); i < 100_000; i++ {
		table.AppendRow(advm.I64Value(i), advm.I64Value(i%7))
	}

	sess, _ := advm.NewSession(advm.WithParallelism(4))
	defer sess.Close()
	rows, err := sess.Query(context.Background(),
		advm.Scan(table, "k", "v").
			Filter(`(\k -> k % 3 == 0)`, "k").
			Compute("v2", `(\v -> v * v)`, advm.I64, "v").
			Aggregate(nil,
				advm.Agg{Func: advm.AggSum, Col: "v2", As: "sum_v2"},
				advm.Agg{Func: advm.AggCount, As: "n"}))
	if err != nil {
		fmt.Println("query failed:", err)
		return
	}
	defer rows.Close()
	for rows.Next() {
		var sum, n int64
		if err := rows.Scan(&sum, &n); err != nil {
			fmt.Println("scan failed:", err)
			return
		}
		fmt.Println(sum, n)
	}
	// Output: 433342 33334
}

// ExampleWithDevicePolicy runs a parallel query under adaptive device
// placement: each morsel of the scan→filter/compute segment is costed and
// dispatched to CPU workers or the simulated GPU. Placement never changes
// results — the modeled device executes on the host — so the sum below is
// byte-identical to CPU-only execution; only the placement counts differ.
func ExampleWithDevicePolicy() {
	table := advm.NewTable(advm.NewSchema("k", advm.I64, "v", advm.F64))
	for i := int64(0); i < 200_000; i++ {
		table.AppendRow(advm.I64Value(i%1000), advm.F64Value(float64(i%13)))
	}

	sess, _ := advm.NewSession(
		advm.WithParallelism(4),
		advm.WithDevicePolicy(advm.DeviceAuto))
	defer sess.Close()
	rows, err := sess.Query(context.Background(),
		advm.Scan(table, "k", "v").
			Filter(`(\k -> k < 500)`, "k").
			Aggregate(nil, advm.Agg{Func: advm.AggSum, Col: "v", As: "sum_v"}))
	if err != nil {
		fmt.Println("query failed:", err)
		return
	}
	defer rows.Close()
	for rows.Next() {
		var sum float64
		if err := rows.Scan(&sum); err != nil {
			fmt.Println("scan failed:", err)
			return
		}
		fmt.Println(sum)
	}
	// The morsels ran somewhere (cpu and/or gpu), chosen by modeled cost +
	// EWMA feedback; rows.Placements() and Stats().MorselPlacements say
	// where.
	var placed int64
	for _, n := range rows.Placements() {
		placed += n
	}
	fmt.Println(placed > 0)
	// Output:
	// 599965
	// true
}

// ExamplePlan_Join builds a join → grouped aggregation → top-k plan. Under
// WithParallelism the probe side fans out across morsel workers, the build
// side is hashed in parallel into a shared read-only table, and the
// aggregation folds worker-locally — with results byte-identical to serial
// execution at every worker count.
func ExamplePlan_Join() {
	fact := advm.NewTable(advm.NewSchema("fk", advm.I64, "amount", advm.I64))
	for i := int64(0); i < 10_000; i++ {
		fact.AppendRow(advm.I64Value(i%100), advm.I64Value(i%13))
	}
	dim := advm.NewTable(advm.NewSchema("dk", advm.I64, "region", advm.I64))
	for i := int64(0); i < 100; i++ {
		dim.AppendRow(advm.I64Value(i), advm.I64Value(i%3))
	}

	sess, _ := advm.NewSession(advm.WithParallelism(4))
	defer sess.Close()
	plan := advm.Scan(fact, "fk", "amount").
		Join(advm.Scan(dim, "dk", "region"), "fk", "dk", "region").
		Aggregate([]string{"region"},
			advm.Agg{Func: advm.AggSum, Col: "amount", As: "total"},
			advm.Agg{Func: advm.AggCount, As: "n"}).
		TopK(2, advm.Order{Col: "total", Desc: true})
	rows, err := sess.Query(context.Background(), plan)
	if err != nil {
		fmt.Println("query failed:", err)
		return
	}
	defer rows.Close()
	for rows.Next() {
		var region, total, n int64
		if err := rows.Scan(&region, &total, &n); err != nil {
			fmt.Println("scan failed:", err)
			return
		}
		fmt.Println(region, total, n)
	}
	// Output:
	// 0 20391 3400
	// 1 19798 3300
}

// ExampleWithTieredExecution shows a plan climbing the execution tiers.
// Repetition drives the plan's fingerprint from cold (interpreted) through
// warm (its streaming segment is compiled into a specialized fused loop and
// cached; the query still runs interpreted) to hot (executions run the
// fused loop) — with identical results at every tier. The engine's stats
// expose the ladder.
func ExampleWithTieredExecution() {
	table := advm.NewTable(advm.NewSchema("k", advm.I64, "v", advm.I64))
	for i := int64(0); i < 10_000; i++ {
		table.AppendRow(advm.I64Value(i), advm.I64Value(i%50))
	}

	eng, _ := advm.NewEngine(advm.WithTierThresholds(2, 3))
	defer eng.Close()
	sess, _ := eng.Session()

	plan := func() *advm.Plan {
		return advm.Scan(table, "k", "v").
			Filter(`(\k -> k < 5000)`, "k").
			Compute("w", `(\v -> v * 2 + 1)`, advm.I64, "v").
			Aggregate(nil, advm.Agg{Func: advm.AggSum, Col: "w", As: "sum_w"})
	}
	for run := 1; run <= 3; run++ {
		rows, err := sess.Query(context.Background(), plan())
		if err != nil {
			fmt.Println("query failed:", err)
			return
		}
		var sum int64
		for rows.Next() {
			if err := rows.Scan(&sum); err != nil {
				fmt.Println("scan failed:", err)
				return
			}
		}
		rows.Close()
		fmt.Printf("run %d: tier=%s fused=%v sum=%d\n", run, rows.Tier(), rows.Fused(), sum)
	}

	st := eng.Stats()
	fmt.Printf("tier_ups=%d fused_queries=%d\n", st.TierUps, st.FusedQueries)
	fmt.Println("final tier:", st.Tiers[0].Tier)
	// Output:
	// run 1: tier=cold fused=false sum=250000
	// run 2: tier=warm fused=false sum=250000
	// run 3: tier=hot fused=true sum=250000
	// tier_ups=2 fused_queries=1
	// final tier: hot
}

// ExampleErrCancelled shows the typed-error taxonomy: context failures
// surface as ErrCancelled while keeping the context cause in the chain.
func ExampleErrCancelled() {
	sess := advm.MustCompile(`let xs = read 0 data
let r = map (\x -> x + 1) xs
write out 0 r`,
		map[string]advm.Kind{"data": advm.I64, "out": advm.I64})

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already dead
	err := sess.Run(ctx, map[string]*advm.Vector{
		"data": advm.FromI64([]int64{1}), "out": advm.NewVector(advm.I64, 0, 1),
	})
	fmt.Println(errors.Is(err, advm.ErrCancelled), errors.Is(err, context.Canceled))
	// Output: true true
}
