package advm_test

import (
	"context"
	"errors"
	"fmt"

	"repro/advm"
)

// ExampleSession_Run compiles a small data-parallel program and runs it to
// a deterministic result. Synchronous optimization keeps the demo
// reproducible: the loop goes hot on the first run and later runs execute
// injected traces.
func ExampleSession_Run() {
	src := `
mut i
i := 0
loop {
  let xs = read i data
  if len(xs) == 0 then break
  let r = map (\x -> x * 2) xs
  write out i r
  i := i + len(xs)
}
`
	sess := advm.MustCompile(src,
		map[string]advm.Kind{"data": advm.I64, "out": advm.I64},
		advm.WithSyncOptimizer(true),
		advm.WithHotThresholds(1, 0),
		advm.WithJITOptions(advm.JITOptions{CompileLatency: advm.NoCompileLatency}),
	)

	data := []int64{1, 2, 3, 4}
	for run := 1; run <= 2; run++ {
		out := advm.NewVector(advm.I64, 0, len(data))
		if err := sess.Run(context.Background(), map[string]*advm.Vector{
			"data": advm.FromI64(data), "out": out,
		}); err != nil {
			fmt.Println("run failed:", err)
			return
		}
		fmt.Printf("run %d: %v\n", run, out.I64())
	}
	fmt.Println("segments compiled:", len(sess.Stats().CompiledSegments) > 0)
	// Output:
	// run 1: [2 4 6 8]
	// run 2: [2 4 6 8]
	// segments compiled: true
}

// ExampleSession_Query streams a relational pipeline's result through the
// database/sql-style cursor.
func ExampleSession_Query() {
	table := advm.NewTable(advm.NewSchema("k", advm.I64, "v", advm.I64))
	for i := int64(0); i < 8; i++ {
		table.AppendRow(advm.I64Value(i), advm.I64Value(10*i))
	}

	sess, _ := advm.NewSession()
	rows, err := sess.Query(context.Background(),
		advm.Scan(table, "k", "v").
			Filter(`(\k -> k % 2 == 0)`, "k").
			Compute("vv", `(\v -> v + 1)`, advm.I64, "v"))
	if err != nil {
		fmt.Println("query failed:", err)
		return
	}
	defer rows.Close()
	for rows.Next() {
		var k, vv int64
		if err := rows.Scan(&k, nil, &vv); err != nil {
			fmt.Println("scan failed:", err)
			return
		}
		fmt.Println(k, vv)
	}
	if err := rows.Err(); err != nil {
		fmt.Println("stream failed:", err)
	}
	// Output:
	// 0 1
	// 2 21
	// 4 41
	// 6 61
}

// ExampleErrCancelled shows the typed-error taxonomy: context failures
// surface as ErrCancelled while keeping the context cause in the chain.
func ExampleErrCancelled() {
	sess := advm.MustCompile(`let xs = read 0 data
let r = map (\x -> x + 1) xs
write out 0 r`,
		map[string]advm.Kind{"data": advm.I64, "out": advm.I64})

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already dead
	err := sess.Run(ctx, map[string]*advm.Vector{
		"data": advm.FromI64([]int64{1}), "out": advm.NewVector(advm.I64, 0, 1),
	})
	fmt.Println(errors.Is(err, advm.ErrCancelled), errors.Is(err, context.Canceled))
	// Output: true true
}
