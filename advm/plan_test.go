package advm_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/advm"
)

// joinFixture builds a fact table (fk ∈ [0, dimDomain·2): half the probes
// miss), a dimension table keyed 0..dimDomain-1 with an i64 and a str
// payload, and the join→aggregate→topk plan over them.
type joinFixture struct {
	fact, dim *advm.Table
}

func newJoinFixture(rows, dimDomain int, seed int64) *joinFixture {
	rng := rand.New(rand.NewSource(seed))
	fact := advm.NewTable(advm.NewSchema("fk", advm.I64, "val", advm.I64, "f", advm.F64))
	for i := 0; i < rows; i++ {
		fact.AppendRow(
			advm.I64Value(rng.Int63n(int64(dimDomain*2))),
			advm.I64Value(rng.Int63n(1000)),
			advm.F64Value(rng.Float64()*100),
		)
	}
	dim := advm.NewTable(advm.NewSchema("dk", advm.I64, "weight", advm.I64, "name", advm.Str))
	for i := 0; i < dimDomain; i++ {
		dim.AppendRow(
			advm.I64Value(int64(i)),
			advm.I64Value(int64(i%7)),
			advm.StrValue(fmt.Sprintf("d%03d", i)),
		)
	}
	return &joinFixture{fact: fact, dim: dim}
}

// plan: filter fact → probe dim (carrying payloads) → compute → group by a
// dim payload with float sums → top-k. Exercises every new plan node.
func (fx *joinFixture) plan() *advm.Plan {
	build := advm.Scan(fx.dim, "dk", "weight", "name").
		Filter(`(\k -> k % 3 != 1)`, "dk")
	return advm.Scan(fx.fact, "fk", "val", "f").
		Filter(`(\v -> v < 900)`, "val").
		Join(build, "fk", "dk", "weight", "name").
		Compute("wf", `(\x w -> x * (1.0 + w))`, advm.F64, "f", "weight").
		Aggregate([]string{"weight"},
			advm.Agg{Func: advm.AggSum, Col: "wf", As: "sum_wf"},
			advm.Agg{Func: advm.AggFirst, Col: "name", As: "first_name"},
			advm.Agg{Func: advm.AggCount, As: "n"}).
		TopK(4, advm.Order{Col: "sum_wf", Desc: true}, advm.Order{Col: "weight"})
}

func mustRowsEqualBitwise(t *testing.T, got, want [][]advm.Value, label string) {
	t.Helper()
	if len(got) != len(want) || len(want) == 0 {
		t.Fatalf("%s: %d rows vs %d baseline (baseline must be non-empty)", label, len(got), len(want))
	}
	for i := range want {
		for c := range want[i] {
			w, g := want[i][c], got[i][c]
			if w.Kind == advm.F64 {
				if math.Float64bits(w.F) != math.Float64bits(g.F) {
					t.Fatalf("%s: row %d col %d = %v, want %v (must be bit-identical)", label, i, c, g.F, w.F)
				}
			} else if !g.Equal(w) {
				t.Fatalf("%s: row %d col %d = %v, want %v", label, i, c, g, w)
			}
		}
	}
}

// TestJoinAggTopKParallelByteIdentical: the full join→aggregate→topk plan
// must produce byte-identical results at WithParallelism(1..8).
func TestJoinAggTopKParallelByteIdentical(t *testing.T) {
	fx := newJoinFixture(60_000, 1000, 17)
	eng := hotEngine(t, advm.WithParallelism(8))
	defer eng.Close()
	serial, err := eng.Session(advm.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	want := collectRows(t, serial, fx.plan())
	for workers := 2; workers <= 8; workers++ {
		sess, err := eng.Session(advm.WithParallelism(workers))
		if err != nil {
			t.Fatal(err)
		}
		got := collectRows(t, sess, fx.plan())
		mustRowsEqualBitwise(t, got, want, fmt.Sprintf("workers=%d", workers))
	}
	if use := eng.Stats().PoolInUse; use != 0 {
		t.Fatalf("workers leaked: PoolInUse = %d", use)
	}
}

// TestJoinStreamParallelByteIdentical: a plan that RETURNS join rows (no
// aggregation above) fans the probe out through the exchange and must stream
// the serial row order.
func TestJoinStreamParallelByteIdentical(t *testing.T) {
	fx := newJoinFixture(40_000, 500, 19)
	plan := func() *advm.Plan {
		return advm.Scan(fx.fact, "fk", "f").
			Join(advm.Scan(fx.dim, "dk", "weight"), "fk", "dk", "weight")
	}
	eng := hotEngine(t, advm.WithParallelism(4))
	defer eng.Close()
	serial, err := eng.Session(advm.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := eng.Session(advm.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	want := collectRows(t, serial, plan())
	got := collectRows(t, parallel, plan())
	mustRowsEqualBitwise(t, got, want, "streamed join")
}

// TestJoinEmptyBuildSide: a build side whose filter selects nothing yields
// zero rows on both serial and parallel paths.
func TestJoinEmptyBuildSide(t *testing.T) {
	fx := newJoinFixture(20_000, 200, 23)
	plan := func() *advm.Plan {
		build := advm.Scan(fx.dim, "dk", "weight").Filter(`(\k -> k < 0)`, "dk")
		return advm.Scan(fx.fact, "fk", "f").
			Join(build, "fk", "dk", "weight").
			Aggregate(nil, advm.Agg{Func: advm.AggCount, As: "n"})
	}
	for _, workers := range []int{1, 4} {
		sess, err := advm.NewSession(advm.WithParallelism(workers))
		if err != nil {
			t.Fatal(err)
		}
		rows, err := sess.Query(context.Background(), plan())
		if err != nil {
			t.Fatal(err)
		}
		n, err := rows.Count()
		if err != nil {
			t.Fatal(err)
		}
		if n != 0 {
			t.Fatalf("workers=%d: %d result groups over an empty join, want 0", workers, n)
		}
		sess.Close()
	}
}

// TestJoinAllProbeRowsFiltered: a probe side filtered to nothing must yield
// an empty join on both paths.
func TestJoinAllProbeRowsFiltered(t *testing.T) {
	fx := newJoinFixture(20_000, 200, 29)
	plan := func() *advm.Plan {
		return advm.Scan(fx.fact, "fk", "val").
			Filter(`(\v -> v < 0)`, "val").
			Join(advm.Scan(fx.dim, "dk", "weight"), "fk", "dk", "weight")
	}
	for _, workers := range []int{1, 4} {
		sess, err := advm.NewSession(advm.WithParallelism(workers))
		if err != nil {
			t.Fatal(err)
		}
		rows, err := sess.Query(context.Background(), plan())
		if err != nil {
			t.Fatal(err)
		}
		n, err := rows.Count()
		if err != nil {
			t.Fatal(err)
		}
		if n != 0 {
			t.Fatalf("workers=%d: %d join rows from an empty probe, want 0", workers, n)
		}
		sess.Close()
	}
}

// TestWorkStealingUnderSkew: a plan whose per-morsel cost is wildly skewed —
// every row that survives the filter (and therefore feeds the compute chain)
// lives in the first eighth of the table, inside worker 0's initial range —
// must (a) trigger the work-stealing scheduler, observable through
// Rows.Steals and Stats.MorselSteals, and (b) still produce results
// byte-identical to serial execution at the same morsel length: stealing
// moves whole morsels between workers, and per-morsel aggregation tables are
// merged in morsel sequence order regardless of who ran them.
func TestWorkStealingUnderSkew(t *testing.T) {
	const rows = 1 << 18
	hot := make([]int64, rows)
	vs := make([]float64, rows)
	for i := range hot {
		if i < rows/8 {
			hot[i] = 1
		}
		vs[i] = float64(i%1000) * 0.125
	}
	table := advm.NewTable(advm.NewSchema("hot", advm.I64, "v", advm.F64))
	c := &advm.Chunk{}
	c.Add("hot", advm.FromI64(hot))
	c.Add("v", advm.FromF64(vs))
	table.AppendChunk(c)

	// Stack several computes on top of the filter: with adaptive evaluation
	// the selected rows are condensed first, so morsels outside the hot
	// region cost almost nothing while hot morsels pay the full chain.
	plan := advm.Scan(table, "hot", "v").
		Filter(`(\h -> h == 1)`, "hot").
		Compute("a", `(\v -> v * 1.0001 + 0.5)`, advm.F64, "v").
		Compute("b", `(\a v -> a * v + a)`, advm.F64, "a", "v").
		Compute("d", `(\b a -> b * 0.5 + a * a)`, advm.F64, "b", "a").
		Aggregate(nil,
			advm.Agg{Func: advm.AggSum, Col: "d", As: "sum_d"},
			advm.Agg{Func: advm.AggCount, As: "n"})

	serial, err := advm.NewSession(advm.WithParallelism(1), advm.WithMorselLen(1024))
	if err != nil {
		t.Fatal(err)
	}
	defer serial.Close()
	want := collectRows(t, serial, plan)
	if serial.Stats().MorselSteals != 0 {
		t.Fatalf("serial session recorded %d steals", serial.Stats().MorselSteals)
	}

	sess, err := advm.NewSession(advm.WithParallelism(4), advm.WithMorselLen(1024))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	rs, err := sess.Query(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	var got [][]advm.Value
	for rs.Next() {
		row := make([]advm.Value, len(rs.Columns()))
		dests := make([]any, len(row))
		for i := range row {
			dests[i] = &row[i]
		}
		if err := rs.Scan(dests...); err != nil {
			t.Fatal(err)
		}
		got = append(got, row)
	}
	if err := rs.Err(); err != nil {
		t.Fatal(err)
	}
	rs.Close()
	mustRowsEqualBitwise(t, got, want, "skewed aggregation")
	if rs.Steals() == 0 {
		t.Fatal("skewed load triggered no morsel steals")
	}
	if st := sess.Stats().MorselSteals; st != rs.Steals() {
		t.Fatalf("Stats.MorselSteals = %d, Rows.Steals = %d", st, rs.Steals())
	}
}

// TestPlanValidationErrors: wiring mistakes in the new nodes classify under
// ErrBind at Query time.
func TestPlanValidationErrors(t *testing.T) {
	fx := newJoinFixture(100, 10, 31)
	sess, err := advm.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	cases := map[string]*advm.Plan{
		"topk unknown column": advm.Scan(fx.fact).TopK(3, advm.Order{Col: "nope"}),
		"topk k=0":            advm.Scan(fx.fact).TopK(0, advm.Order{Col: "val"}),
		"join bad probe key": advm.Scan(fx.fact, "f").
			Join(advm.Scan(fx.dim, "dk"), "f", "dk"),
		"join missing payload": advm.Scan(fx.fact, "fk").
			Join(advm.Scan(fx.dim, "dk"), "fk", "dk", "nope"),
		"agg 3 keys": advm.Scan(fx.fact).
			Aggregate([]string{"fk", "val", "f"}, advm.Agg{Func: advm.AggCount, As: "n"}),
	}
	for name, plan := range cases {
		if _, err := sess.Query(context.Background(), plan); !errors.Is(err, advm.ErrBind) {
			t.Fatalf("%s: err = %v, want ErrBind", name, err)
		}
	}
}

// TestParallelGlobalCountOnly is the regression test for a pure COUNT(*)
// under morsel-parallel aggregation: with no key columns and no aggregate
// inputs, the parallel fold's bucket projection carried zero columns, so
// every bucket chunk had length zero and the count silently came out empty
// (serial execution returned the row). Parallel and serial must agree.
func TestParallelGlobalCountOnly(t *testing.T) {
	table := advm.NewTable(advm.NewSchema("k", advm.I64))
	const rows = 1 << 18
	ks := make([]int64, rows)
	for i := range ks {
		ks[i] = int64(i % 97)
	}
	c := &advm.Chunk{}
	c.Add("k", advm.FromI64(ks))
	table.AppendChunk(c)

	plan := advm.Scan(table).
		Filter(`(\k -> k < 90)`, "k").
		Aggregate(nil, advm.Agg{Func: advm.AggCount, As: "n"})
	var want int64
	for _, workers := range []int{1, 4} {
		sess, err := advm.NewSession(advm.WithParallelism(workers))
		if err != nil {
			t.Fatal(err)
		}
		rs, err := sess.Query(context.Background(), plan)
		if err != nil {
			t.Fatal(err)
		}
		var got int64
		emitted := 0
		for rs.Next() {
			if err := rs.Scan(&got); err != nil {
				t.Fatal(err)
			}
			emitted++
		}
		if err := rs.Err(); err != nil {
			t.Fatal(err)
		}
		sess.Close()
		if emitted != 1 {
			t.Fatalf("workers=%d emitted %d rows, want 1", workers, emitted)
		}
		if workers == 1 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("workers=%d count=%d, serial=%d", workers, got, want)
		}
	}
}
