package advm

import (
	"fmt"
	"math"
	"time"

	"repro/internal/jit"
	"repro/internal/vm"
)

// Option configures a Session at creation time. Options replace the internal
// configuration structs (vm.Config, jit.Options, depgraph.Constraints) that
// the old internal/core facade leaked: the adaptive machinery can evolve
// underneath without breaking embedders.
type Option func(*options) error

// options is the resolved configuration of one Engine or Session.
type options struct {
	cfg         vm.Config
	jitEnabled  bool // trace compilation in query expression VMs
	chunkLen    int  // scan chunk length for queries (0 = DefaultChunkLen)
	parallelism int  // workers per query (≤1 = serial)
	morselLen   int  // dispatch granularity for parallel queries (0 = default)
	device      DeviceKind
	tableDir    string     // root directory Session.OpenTable resolves names under
	pruning     bool       // zone-map segment skipping on stored-table scans
	tiered      bool       // tiered relational execution (fused hot segments)
	tierWarm    int64      // executions before a plan's segments compile
	tierHot     int64      // executions before compiled segments run fused
	tracing     TraceLevel // default query trace level (TraceOff)
}

func defaultOptions() options {
	return options{
		cfg: vm.DefaultConfig(), jitEnabled: true, parallelism: 1, device: DeviceCPU,
		pruning: true, tiered: true, tierWarm: defaultTierWarm, tierHot: defaultTierHot,
	}
}

// Default tier thresholds: a plan fingerprint compiles its streaming
// segments on its 4th execution and runs them fused from the 8th.
const (
	defaultTierWarm = 4
	defaultTierHot  = 8
)

// finalize resolves interactions after every option has applied, so the
// result does not depend on option order.
func (o *options) finalize() {
	if !o.jitEnabled {
		o.cfg.HotCalls = neverHot
		o.cfg.HotNanos = neverHot
	}
}

// neverHot disables a hotness trigger.
const neverHot = math.MaxInt64

// WithHotThresholds sets when a program segment counts as hot and becomes a
// compilation candidate: after calls observed executions, or once its
// cumulative interpreted time reaches cumulative — whichever comes first. A
// non-positive value disables that trigger.
func WithHotThresholds(calls int64, cumulative time.Duration) Option {
	return func(o *options) error {
		o.cfg.HotCalls = calls
		o.cfg.HotNanos = int64(cumulative)
		if calls <= 0 {
			o.cfg.HotCalls = neverHot
		}
		if cumulative <= 0 {
			o.cfg.HotNanos = neverHot
		}
		return nil
	}
}

// WithSyncOptimizer selects synchronous optimization: the VM examines the
// profile between runs (and chunk batches) instead of using the concurrent
// background optimizer. Deterministic — useful for tests, and for
// benchmarks that must charge compile time to the measured total.
func WithSyncOptimizer(sync bool) Option {
	return func(o *options) error { o.cfg.Sync = sync; return nil }
}

// WithMicroAdaptive toggles micro-adaptive revert: the VM keeps comparing
// injected traces against the interpreter's historical cost and deoptimizes
// traces that turn out to be a loss. On by default.
func WithMicroAdaptive(on bool) Option {
	return func(o *options) error { o.cfg.MicroAdaptive = on; return nil }
}

// WithOptimizeInterval sets how often the asynchronous optimizer re-examines
// the profile.
func WithOptimizeInterval(d time.Duration) Option {
	return func(o *options) error {
		if d <= 0 {
			return fmt.Errorf("optimize interval must be positive, got %v", d)
		}
		o.cfg.OptimizeInterval = d
		return nil
	}
}

// JITOptions tunes trace compilation without exposing the internal compiler
// configuration.
type JITOptions struct {
	// TileSize is the register-blocking window of fused element-wise runs
	// (0 = default).
	TileSize int
	// CompileLatency models code-generation cost for a fragment of n
	// operations; compilation stalls that long before a trace is injected.
	// Nil selects the calibrated default model; NoCompileLatency disables
	// the model entirely.
	CompileLatency func(n int) time.Duration
}

// NoCompileLatency disables the modeled code-generation cost.
func NoCompileLatency(int) time.Duration { return 0 }

// DefaultCompileLatency is the calibrated code-generation cost model for a
// fragment of n operations.
func DefaultCompileLatency(n int) time.Duration { return jit.DefaultCompileLatency(n) }

// WithJITOptions tunes trace compilation.
func WithJITOptions(jo JITOptions) Option {
	return func(o *options) error {
		if jo.TileSize < 0 {
			return fmt.Errorf("JIT tile size must be non-negative, got %d", jo.TileSize)
		}
		o.cfg.JIT.TileSize = jo.TileSize
		o.cfg.JIT.CompileLatency = jo.CompileLatency
		return nil
	}
}

// WithJIT enables or disables trace compilation altogether. With false the
// session is a purely vectorized interpreter (the MonetDB/X100-style
// baseline): hotness triggers are disabled — regardless of option order,
// including a WithHotThresholds in the same list — and query expressions
// never compile.
func WithJIT(on bool) Option {
	return func(o *options) error {
		o.jitEnabled = on
		return nil
	}
}

// WithPartitionBudget bounds the greedy dependency-graph partitioner's
// fragments: maxInputs distinct arrays and inflowing registers per compiled
// fragment (the paper's TLB-derived budget) and maxNodes operations per
// fragment. A non-positive value keeps the default for that bound.
func WithPartitionBudget(maxInputs, maxNodes int) Option {
	return func(o *options) error {
		if maxInputs > 0 {
			o.cfg.Constraints.MaxInputs = maxInputs
		}
		if maxNodes > 0 {
			o.cfg.Constraints.MaxNodes = maxNodes
		}
		return nil
	}
}

// WithParallelism sets how many workers a query may fan out across
// (default 1 = serial). Streaming plan segments — scans with their filters,
// computes and hash-join probes — then execute morsel-parallel: the table's
// row space is split into morsels, divided contiguously across n worker
// copies of the pipeline, and rebalanced by work stealing — a worker that
// drains its own range takes morsels from the busiest remaining one, so
// skewed per-morsel costs cannot strand the fan-out behind one straggler
// (steal activity is observable via Stats.MorselSteals and Rows.Steals).
// Pipeline breakers parallelize too: join build sides are materialized and
// hashed over morsels into shared read-only tables, and grouped
// aggregations pre-aggregate into per-morsel tables merged in morsel
// sequence order. Results stay byte-identical to serial execution at every
// worker count — floating-point aggregates included — because chunks merge
// in table order and aggregation folds per-morsel results in a fixed order
// that no scheduling decision can perturb; see WithMorselLen for the one
// knob that does pin result bytes.
//
// On an Engine, the option both sets the default for its sessions and sizes
// the shared worker pool (capacity = max(n, GOMAXPROCS)); on a session it
// sets how many workers that session requests per query. A contended pool
// grants fewer workers, degrading toward serial execution rather than
// oversubscribing the host.
func WithParallelism(n int) Option {
	return func(o *options) error {
		if n < 1 {
			return fmt.Errorf("parallelism must be ≥ 1, got %d", n)
		}
		o.parallelism = n
		return nil
	}
}

// WithMorselLen sets the dispatch granularity of parallel queries: the
// number of rows per morsel handed to a worker (default
// morsel.DefaultMorselLen). It is also the unit of device placement under
// WithDevicePolicy — each morsel is costed and placed as one kernel — so
// smaller morsels give the placer more, finer decisions at higher dispatch
// overhead.
//
// Morsel length is part of a query's result identity: grouped aggregations
// pre-aggregate each morsel privately and merge the per-morsel tables in
// morsel sequence order, so floating-point accumulation is blocked at
// morsel boundaries. At a fixed morsel length results are byte-identical
// across every worker count, device policy, execution tier and chunk
// length; two different morsel lengths may differ in the low-order bits of
// float aggregates (both are correct rounded sums, accumulated in a
// different association). Integer and count results are identical at any
// granularity.
func WithMorselLen(n int) Option {
	return func(o *options) error {
		if n <= 0 {
			return fmt.Errorf("morsel length must be positive, got %d", n)
		}
		o.morselLen = n
		return nil
	}
}

// WithChunkLen sets the number of rows per chunk pulled by query table
// scans (default DefaultChunkLen). Smaller chunks tighten cancellation
// latency and cache footprint; larger chunks amortize interpretation
// overhead.
func WithChunkLen(n int) Option {
	return func(o *options) error {
		if n <= 0 {
			return fmt.Errorf("chunk length must be positive, got %d", n)
		}
		o.chunkLen = n
		return nil
	}
}

// WithTableDir sets the root directory under which Session.OpenTable
// resolves table names: OpenTable("lineitem") opens the colstore directory
// <dir>/lineitem. Without it, OpenTable treats the name as a path. Opened
// tables are cached and shared engine-wide, and released by Engine.Close.
func WithTableDir(dir string) Option {
	return func(o *options) error {
		if dir == "" {
			return fmt.Errorf("table directory must be non-empty")
		}
		o.tableDir = dir
		return nil
	}
}

// WithScanPruning toggles zone-map segment skipping on scans over
// disk-backed stored tables (default on). When on, a query's filters are
// analyzed for interval predicates on scanned columns, and segments whose
// stored zone maps (or dictionary/run-length value domains) prove that no
// row can satisfy them are skipped without being read. The filters still
// run over every surviving row, so results are byte-identical either way;
// the outcome is observable via Rows.ScanStats and Stats.SegmentsSkipped.
func WithScanPruning(on bool) Option {
	return func(o *options) error {
		o.pruning = on
		return nil
	}
}

// WithTieredExecution toggles tiered relational execution (default on).
// When on, every Query counts executions per canonical plan fingerprint:
// cold plans run the vectorized operator interpreter; at the warm threshold
// a plan's streaming segments — scan→filter→compute→probe chains — are
// compiled into specialized fused loops and cached engine-wide (keyed by
// fingerprint + type/shape signature); at the hot threshold queries execute
// the fused loops, with selectivity and probe-capacity guards that deopt
// back to the interpreter at a chunk boundary when the data shifts. Results
// are byte-identical at every tier; transitions are observable via
// Rows.Tier, Session.Stats and Engine.Stats.
func WithTieredExecution(on bool) Option {
	return func(o *options) error {
		o.tiered = on
		return nil
	}
}

// WithTierThresholds sets the execution counts at which a plan fingerprint
// tiers up: its segments compile at the warm-th execution and run fused
// from the hot-th on (defaults 4 and 8). warm must be ≥ 1 and hot ≥ warm;
// WithTierThresholds(1, 1) fuses from the very first execution, which is
// how the differential tests force every tier.
func WithTierThresholds(warm, hot int64) Option {
	return func(o *options) error {
		if warm < 1 {
			return fmt.Errorf("warm threshold must be ≥ 1, got %d", warm)
		}
		if hot < warm {
			return fmt.Errorf("hot threshold %d must be ≥ warm threshold %d", hot, warm)
		}
		o.tierWarm, o.tierHot = warm, hot
		return nil
	}
}

// DeviceKind selects the execution-device placement policy of a session.
type DeviceKind int

// Device policies.
const (
	// DeviceCPU places all work on the host CPU (default).
	DeviceCPU DeviceKind = iota
	// DeviceGPU places eligible work on the modeled GPU coprocessor.
	DeviceGPU
	// DeviceAuto chooses per run between CPU and GPU by modeled cost
	// (compute rate vs. transfer over the interconnect), the paper's §IV
	// heterogeneous-hardware target.
	DeviceAuto
)

var deviceNames = [...]string{DeviceCPU: "cpu", DeviceGPU: "gpu", DeviceAuto: "auto"}

func (d DeviceKind) String() string {
	if d >= 0 && int(d) < len(deviceNames) {
		return deviceNames[d]
	}
	return fmt.Sprintf("DeviceKind(%d)", int(d))
}

// WithDevice selects the placement policy. The GPU backend is the modeled
// coprocessor of the reproduction: placement decisions (and their modeled
// costs) are real and observable through Stats, execution itself runs on the
// host.
func WithDevice(d DeviceKind) Option {
	return func(o *options) error {
		switch d {
		case DeviceCPU, DeviceGPU, DeviceAuto:
			o.device = d
			return nil
		}
		return fmt.Errorf("unknown device policy %v", d)
	}
}

// WithDevicePolicy selects the device-placement policy for both program
// runs and relational queries (it is WithDevice under the name the
// heterogeneous-execution documentation uses).
//
// For queries executing with WithParallelism(n) > 1, the policy governs
// where each dispatched morsel of a streaming segment — a scan with its
// filters, computes and join probes — runs:
//
//   - DeviceCPU (default): every morsel on the host workers; no placement
//     machinery is instantiated at all.
//   - DeviceGPU: every morsel is executed under the modeled GPU, which
//     charges launch overhead, PCIe transfers for non-resident columns and
//     HBM-bandwidth/throughput-limited compute.
//   - DeviceAuto: the engine-global placer costs each morsel on both
//     devices (bias-corrected by EWMA feedback from observed CPU wall time
//     and modeled GPU time) and picks the cheaper one. Scanned columns that
//     were transferred become resident on the device, so repeated queries
//     over the same table shift large scans toward the accelerator while
//     small or cold morsels stay on the CPU.
//
// Results are byte-identical under every policy and every worker count: the
// modeled GPU executes on the host, so placement only re-schedules work.
// Decisions are observable per query via Rows.Placements and per session
// via Stats.MorselPlacements.
func WithDevicePolicy(d DeviceKind) Option { return WithDevice(d) }
