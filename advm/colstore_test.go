package advm_test

import (
	"context"
	"fmt"
	"os"
	"testing"

	"repro/advm"
	"repro/internal/colstore"
)

// ExampleWithTableDir shows the disk-backed workflow: persist a table as a
// compressed colstore directory, open it by name through a session rooted at
// the directory, and query it with segment-skipping scans.
func ExampleWithTableDir() {
	root, _ := os.MkdirTemp("", "advm-tables")
	defer os.RemoveAll(root)

	items := advm.NewTable(advm.NewSchema("id", advm.I64, "price", advm.F64))
	for i := 0; i < 10000; i++ {
		items.AppendRow(advm.I64Value(int64(i)), advm.F64Value(float64(i)/100))
	}
	if err := colstore.Write(root+"/items", items, colstore.WriteOptions{SegmentRows: 1024}); err != nil {
		panic(err)
	}

	sess, _ := advm.NewSession(advm.WithTableDir(root))
	defer sess.Close()
	stored, _ := sess.OpenTable("items")
	rows, _ := sess.Query(context.Background(),
		advm.Scan(stored, "id", "price").
			Filter(`(\id -> (id >= 2000) && (id < 2003))`, "id"))
	for rows.Next() {
		var id int64
		var price float64
		rows.Scan(&id, &price)
		fmt.Println(id, price)
	}
	scanned, skipped := rows.ScanStats()
	fmt.Println("segments scanned:", scanned, "skipped:", skipped)
	// Output:
	// 2000 20
	// 2001 20.01
	// 2002 20.02
	// segments scanned: 1 skipped: 9
}

// buildClusteredTable makes a lineitem-shaped table whose d column ascends
// (so zone maps are tight) with f64 and str payload columns.
func buildClusteredTable(rows int) *advm.Table {
	tb := advm.NewTable(advm.NewSchema("d", advm.I64, "x", advm.F64, "tag", advm.Str))
	tags := []string{"A", "B", "C"}
	for i := 0; i < rows; i++ {
		tb.AppendRow(
			advm.I64Value(int64(i/4)), // ascending, duplicated: RLE/dict friendly
			advm.F64Value(float64(i%97)/7),
			advm.StrValue(tags[i%len(tags)]),
		)
	}
	return tb
}

// drainAll renders every result row; string form is enough to prove
// byte-identity because floats render with full precision via %v.
func drainAll(t *testing.T, sess *advm.Session, plan *advm.Plan) ([]string, *advm.Rows) {
	t.Helper()
	rows, err := sess.Query(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	n := len(rows.Columns())
	var out []string
	for rows.Next() {
		vals := make([]any, n)
		dests := make([]any, n)
		for i := range vals {
			dests[i] = &vals[i]
		}
		if err := rows.Scan(dests...); err != nil {
			t.Fatal(err)
		}
		out = append(out, fmt.Sprintf("%v", vals))
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	return out, rows
}

// TestStoredTableByteIdentical: the same plan over the colstore-backed table
// must produce exactly the rows of the in-RAM table, at every parallelism
// and device policy, with and without pruning — and the pruned runs must
// actually skip segments on the range filter.
func TestStoredTableByteIdentical(t *testing.T) {
	const rows = 24 * 1024
	tb := buildClusteredTable(rows)
	dir := t.TempDir()
	if err := colstore.Write(dir, tb, colstore.WriteOptions{SegmentRows: 1024}); err != nil {
		t.Fatal(err)
	}

	mkPlan := func(src advm.TableSource) *advm.Plan {
		// Q6-style: range filter on the clustered column plus a float band,
		// then an arithmetic compute.
		return advm.Scan(src, "d", "x", "tag").
			Filter(`(\d -> (d >= 1000) && (d < 1500))`, "d").
			Filter(`(\x -> x <= 9.0)`, "x").
			Compute("x2", `(\x -> x * 2.0)`, advm.F64, "x")
	}

	ref, err := advm.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want, _ := drainAll(t, ref, mkPlan(tb))
	if len(want) == 0 {
		t.Fatal("reference query returned no rows")
	}

	for _, par := range []int{1, 2, 4, 8} {
		for _, dev := range []advm.DeviceKind{advm.DeviceCPU, advm.DeviceGPU, advm.DeviceAuto} {
			for _, pruning := range []bool{true, false} {
				name := fmt.Sprintf("par=%d/dev=%v/pruning=%v", par, dev, pruning)
				t.Run(name, func(t *testing.T) {
					sess, err := advm.NewSession(
						advm.WithParallelism(par),
						advm.WithDevicePolicy(dev),
						advm.WithScanPruning(pruning),
					)
					if err != nil {
						t.Fatal(err)
					}
					defer sess.Close()
					st, err := sess.OpenTable(dir)
					if err != nil {
						t.Fatal(err)
					}
					got, rws := drainAll(t, sess, mkPlan(st))
					if len(got) != len(want) {
						t.Fatalf("rows = %d, want %d", len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("row %d = %s, want %s", i, got[i], want[i])
						}
					}
					scanned, skipped := rws.ScanStats()
					if pruning {
						// Rows 4000..5999 of 24576 survive; with 1024-row
						// segments most of the table is provably out of range.
						if skipped == 0 {
							t.Fatalf("pruning on but no segments skipped (scanned %d)", scanned)
						}
					} else if skipped != 0 || scanned != 0 {
						t.Fatalf("pruning off but counters = %d scanned, %d skipped", scanned, skipped)
					}
					if pruning {
						if st := sess.Stats(); st.SegmentsSkipped == 0 {
							t.Fatal("session stats did not absorb skipped segments")
						}
					}
				})
			}
		}
	}
}

// TestStoredTableAggregatePruned covers the morsel-parallel aggregation path
// (NewParallelAgg over the pruned store) and the serial fallback.
func TestStoredTableAggregatePruned(t *testing.T) {
	const rows = 16 * 1024
	tb := buildClusteredTable(rows)
	dir := t.TempDir()
	if err := colstore.Write(dir, tb, colstore.WriteOptions{SegmentRows: 512}); err != nil {
		t.Fatal(err)
	}
	plan := func(src advm.TableSource) *advm.Plan {
		return advm.Scan(src, "d", "x", "tag").
			Filter(`(\d -> d < 800)`, "d").
			Aggregate([]string{"tag"},
				advm.Agg{Func: advm.AggSum, Col: "x", As: "sum_x"},
				advm.Agg{Func: advm.AggCount, Col: "d", As: "n"},
			)
	}
	ref, err := advm.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want, _ := drainAll(t, ref, plan(tb))

	for _, par := range []int{1, 6} {
		sess, err := advm.NewSession(advm.WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		st, err := sess.OpenTable(dir)
		if err != nil {
			t.Fatal(err)
		}
		got, rws := drainAll(t, sess, plan(st))
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("par %d: %v, want %v", par, got, want)
		}
		if _, skipped := rws.ScanStats(); skipped == 0 {
			t.Fatalf("par %d: aggregation scan skipped nothing", par)
		}
		sess.Close()
	}
}

// TestOpenTableResolution: WithTableDir roots the name, the engine caches by
// directory, and Engine.Close releases the tables.
func TestOpenTableResolution(t *testing.T) {
	root := t.TempDir()
	tb := buildClusteredTable(256)
	if err := colstore.Write(root+"/items", tb, colstore.WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	eng, err := advm.NewEngine(advm.WithTableDir(root))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := eng.Session()
	if err != nil {
		t.Fatal(err)
	}
	st1, err := sess.OpenTable("items")
	if err != nil {
		t.Fatal(err)
	}
	st2, err := eng.OpenTable(root + "/items")
	if err != nil {
		t.Fatal(err)
	}
	if st1 != st2 {
		t.Fatal("catalog did not share the open table")
	}
	if st1.Rows() != 256 {
		t.Fatalf("rows = %d", st1.Rows())
	}
	if _, err := sess.OpenTable("missing"); err == nil {
		t.Fatal("opening a missing table succeeded")
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.OpenTable(root + "/items"); err == nil {
		t.Fatal("OpenTable on closed engine succeeded")
	}
}
