package advm_test

import (
	"context"
	"fmt"
	"testing"

	"repro/advm"
	"repro/internal/tpch"
)

// TestTieredQueryTiersUp: repeated executions of one plan must climb the
// cold → warm → hot ladder, observable through Rows.Tier and the engine's
// tier counters, and the hot executions must mount fused loops.
func TestTieredQueryTiersUp(t *testing.T) {
	eng := hotEngine(t, advm.WithTierThresholds(2, 3))
	defer eng.Close()
	sess, err := eng.Session()
	if err != nil {
		t.Fatal(err)
	}
	st := tpch.GenLineitem(0.01, 42)
	plan := q6Plan(st)

	wantTiers := []string{"cold", "warm", "hot", "hot"}
	for i, want := range wantTiers {
		rows, err := sess.Query(context.Background(), plan)
		if err != nil {
			t.Fatal(err)
		}
		if got := rows.Tier(); got != want {
			t.Fatalf("execution %d ran at tier %q, want %q", i+1, got, want)
		}
		if wantFused := want == "hot"; rows.Fused() != wantFused {
			t.Fatalf("execution %d (tier %s): Fused() = %v, want %v", i+1, want, rows.Fused(), wantFused)
		}
		if _, err := rows.Count(); err != nil {
			t.Fatal(err)
		}
	}

	es := eng.Stats()
	if es.TierUps != 2 {
		t.Fatalf("TierUps = %d, want 2 (cold→warm and warm→hot)", es.TierUps)
	}
	if es.FusedCompiles != 1 {
		t.Fatalf("FusedCompiles = %d, want 1 (one segment, compiled once at warm)", es.FusedCompiles)
	}
	if es.FusedCacheHits < 2 {
		t.Fatalf("FusedCacheHits = %d, want ≥ 2 (hot executions reuse the cached program)", es.FusedCacheHits)
	}
	if es.FusedQueries != 2 {
		t.Fatalf("FusedQueries = %d, want 2", es.FusedQueries)
	}
	if len(es.Tiers) != 1 {
		t.Fatalf("Tiers = %+v, want exactly one fingerprint", es.Tiers)
	}
	ti := es.Tiers[0]
	if ti.Tier != "hot" || ti.Execs != 4 || ti.FusedRuns != 2 || ti.Deopts != 0 {
		t.Fatalf("tier info = %+v, want hot/4 execs/2 fused runs/0 deopts", ti)
	}

	ss := sess.Stats()
	if ss.FusedQueries != 2 || ss.FusedDeopts != 0 {
		t.Fatalf("session fused stats = %d queries / %d deopts, want 2/0", ss.FusedQueries, ss.FusedDeopts)
	}
}

// TestTieredOffNeverFuses: WithTieredExecution(false) must keep every
// execution untiered — Rows.Tier empty, no fused telemetry.
func TestTieredOffNeverFuses(t *testing.T) {
	eng := hotEngine(t, advm.WithTieredExecution(false))
	defer eng.Close()
	sess, err := eng.Session()
	if err != nil {
		t.Fatal(err)
	}
	st := tpch.GenLineitem(0.01, 42)
	for i := 0; i < 10; i++ {
		rows, err := sess.Query(context.Background(), q6Plan(st))
		if err != nil {
			t.Fatal(err)
		}
		if rows.Tier() != "" || rows.Fused() {
			t.Fatalf("tiering off, got tier %q fused=%v", rows.Tier(), rows.Fused())
		}
		if _, err := rows.Count(); err != nil {
			t.Fatal(err)
		}
	}
	if es := eng.Stats(); es.TierUps != 0 || es.FusedQueries != 0 || len(es.Tiers) != 0 {
		t.Fatalf("tiering off leaked engine tier state: %+v", es)
	}
}

// TestForcedHotByteIdentical: with thresholds forced to 1, the very first
// execution runs fused — and its result must match interpreted execution
// value-for-value on Q1, Q6 and a join plan, serial and parallel.
func TestForcedHotByteIdentical(t *testing.T) {
	st := tpch.GenLineitem(0.01, 7)
	ord := tpch.GenOrders(0.01, 7)
	joinPlan := func() *advm.Plan {
		build := advm.Scan(ord, "o_orderkey", "o_orderdate").
			Filter(`(\d -> d < 2400)`, "o_orderdate")
		return advm.Scan(st, "l_orderkey", "l_extendedprice", "l_shipdate").
			Filter(`(\d -> d > 300)`, "l_shipdate").
			Join(build, "l_orderkey", "o_orderkey", "o_orderdate")
	}
	plans := map[string]func() *advm.Plan{
		"q1":   func() *advm.Plan { return q1Plan(st) },
		"q6":   func() *advm.Plan { return q6Plan(st) },
		"join": joinPlan,
	}

	ref, err := advm.NewSession(advm.WithTieredExecution(false))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	for _, par := range []int{1, 4} {
		hot, err := advm.NewSession(advm.WithTierThresholds(1, 1), advm.WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		for name, mk := range plans {
			want := collectRows(t, ref, mk())
			rows, err := hot.Query(context.Background(), mk())
			if err != nil {
				t.Fatal(err)
			}
			if rows.Tier() != "hot" {
				t.Fatalf("%s par=%d: tier %q, want hot", name, par, rows.Tier())
			}
			rows.Close()
			got := collectRows(t, hot, mk())
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("%s par=%d: fused result differs from interpreted", name, par)
			}
		}
		hot.Close()
	}
}

// deoptTable builds a table whose selectivity shifts mid-stream: a long
// near-empty region (the guard warms up on ~0 pass rate) followed by a dense
// region where almost every row passes — past any learned bound, so a fused
// filter loop must deopt back to the interpreter.
func deoptTable() *advm.Table {
	const low, high = 40960, 8192
	st := advm.NewTable(advm.NewSchema("v", advm.I64, "w", advm.I64))
	for i := 0; i < low; i++ {
		st.AppendRow(advm.I64Value(1_000_000+int64(i)), advm.I64Value(int64(i)))
	}
	for i := 0; i < high; i++ {
		st.AppendRow(advm.I64Value(int64(i%90)), advm.I64Value(int64(i)))
	}
	return st
}

func deoptPlan(st *advm.Table) *advm.Plan {
	return advm.Scan(st, "v", "w").
		Filter(`(\v -> v < 100)`, "v").
		Compute("y", `(\v w -> v + w * 3)`, advm.I64, "v", "w")
}

// TestFusedDeoptRegression: data whose selectivity shifts mid-stream must
// trip the fused loop's guard, revert to the interpreter, and still produce
// byte-identical results at every parallelism.
func TestFusedDeoptRegression(t *testing.T) {
	st := deoptTable()

	ref, err := advm.NewSession(advm.WithTieredExecution(false))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want := collectRows(t, ref, deoptPlan(st))
	if len(want) == 0 {
		t.Fatal("deopt table produced no matching rows")
	}

	for par := 1; par <= 8; par++ {
		sess, err := advm.NewSession(advm.WithTierThresholds(1, 1), advm.WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		rows, err := sess.Query(context.Background(), deoptPlan(st))
		if err != nil {
			t.Fatal(err)
		}
		if !rows.Fused() {
			t.Fatalf("par=%d: query did not mount fused loops", par)
		}
		got := collectAllRows(t, rows)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("par=%d: deopted result differs from interpreted", par)
		}
		if par == 1 && rows.Deopts() < 1 {
			// Serial execution streams the regions in order, so the shift
			// deterministically trips the guard.
			t.Fatalf("par=1: Deopts = %d, want ≥ 1", rows.Deopts())
		}
		st := sess.Stats()
		if par == 1 && st.FusedDeopts < 1 {
			t.Fatalf("par=1: session FusedDeopts = %d, want ≥ 1", st.FusedDeopts)
		}
		if es := sess.Engine().Stats(); par == 1 && es.FusedDeopts < 1 {
			t.Fatalf("par=1: engine FusedDeopts = %d, want ≥ 1", es.FusedDeopts)
		}
		sess.Close()
	}
}

// collectAllRows drains an already-open cursor into scanned values.
func collectAllRows(t *testing.T, rows *advm.Rows) [][]advm.Value {
	t.Helper()
	defer rows.Close()
	var out [][]advm.Value
	n := len(rows.Columns())
	for rows.Next() {
		row := make([]advm.Value, n)
		dests := make([]any, n)
		for i := range row {
			dests[i] = &row[i]
		}
		if err := rows.Scan(dests...); err != nil {
			t.Fatal(err)
		}
		out = append(out, row)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}
