package advm

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/vm"
)

// Transition is one recorded step of the VM's Figure-1 state machine
// (Interpret → Optimize → GenerateCode → InjectFunctions → Interpret).
type Transition struct {
	From, To string
	// At is the offset since session creation.
	At time.Duration
	// Segment is the affected program segment, -1 when not applicable.
	Segment int
	// Note is a human-readable annotation ("hot: calls=…", "revert: …").
	Note string
}

func (t Transition) String() string {
	return fmt.Sprintf("%-12s → %-16s seg=%-3d %s", t.From, t.To, t.Segment, t.Note)
}

// InstrStat is the live profile of one program instruction.
type InstrStat struct {
	ID     int
	Instr  string
	Calls  int64
	Tuples int64
	Nanos  int64
}

// Placement is one device-placement decision of the session's policy.
type Placement struct {
	Elems  int
	Bytes  int
	Device string
}

// Stats is a point-in-time snapshot of the session's observability surface.
type Stats struct {
	// Runs and Queries count completed Session.Run calls and started
	// Session.Query streams.
	Runs, Queries int64
	// Kernels is the number of pre-compiled vectorized kernels available.
	Kernels int
	// State is the VM's current Figure-1 state ("" without a program).
	State string
	// Transitions is the state machine log.
	Transitions []Transition
	// CompiledSegments lists segments currently running injected traces.
	CompiledSegments []int
	// InjectedTraces and RevertedTraces count optimizer injections and
	// micro-adaptive deoptimizations over the session's lifetime.
	InjectedTraces, RevertedTraces int
	// GuardFailures counts trace guard misses (situation changes executed
	// through the interpreted fallback) across currently installed traces.
	GuardFailures int64
	// Instructions is the per-instruction interpreter profile.
	Instructions []InstrStat
	// Placements records device decisions of program runs, newest last.
	Placements []Placement
	// MorselPlacements counts the morsels this session's parallel queries
	// dispatched to each device ("cpu", "gpu") under WithDevicePolicy,
	// accumulated as queries complete. Nil when no placed query has
	// finished.
	MorselPlacements map[string]int64
	// MorselTransfer is the modeled PCIe transfer time accumulated by
	// GPU-placed morsels (zero when everything stayed on the CPU).
	MorselTransfer time.Duration
	// SegmentsScanned and SegmentsSkipped count the distinct stored-table
	// segments this session's completed queries read versus skipped via
	// zone-map pruning (see WithScanPruning and Rows.ScanStats).
	SegmentsScanned, SegmentsSkipped int64
	// MorselSteals counts the morsels of this session's completed parallel
	// queries that were executed by a worker other than their initial owner
	// — the work-stealing scheduler rebalancing skewed loads. Stealing never
	// affects result bytes; see Rows.Steals for per-query counts.
	MorselSteals int64
	// FusedQueries counts this session's completed queries that executed
	// fused loops under tiered execution; FusedDeopts counts their guard
	// failures (reverts to the interpreter). See WithTieredExecution.
	FusedQueries, FusedDeopts int64
}

// Stats snapshots the session's counters, state machine log,
// per-instruction profile and placement decisions. It is safe to call
// concurrently with Run and Query.
func (s *Session) Stats() Stats {
	st := Stats{
		Runs:            s.runs.Load(),
		Queries:         s.queries.Load(),
		Kernels:         KernelCount(),
		SegmentsScanned: s.segmentsScanned.Load(),
		SegmentsSkipped: s.segmentsSkipped.Load(),
		MorselSteals:    s.morselSteals.Load(),
		FusedQueries:    s.fusedQueries.Load(),
		FusedDeopts:     s.fusedDeopts.Load(),
	}
	s.mu.Lock()
	st.Placements = append([]Placement(nil), s.placements...)
	if s.morselPlacements != nil {
		st.MorselPlacements = make(map[string]int64, len(s.morselPlacements))
		for dev, n := range s.morselPlacements {
			st.MorselPlacements[dev] = n
		}
	}
	st.MorselTransfer = s.morselTransfer
	s.mu.Unlock()
	vmStats(s.vm, &st)
	return st
}

// vmStats fills the VM-derived portion of a Stats snapshot (state machine
// log, trace counters, per-instruction profile). Shared between sessions
// (private VMs) and prepared programs (engine-shared VMs); a nil VM leaves
// the snapshot untouched.
func vmStats(v *vm.VM, st *Stats) {
	if v == nil {
		return
	}
	st.State = v.State().String()
	for _, tr := range v.Transitions() {
		st.Transitions = append(st.Transitions, Transition{
			From: tr.From.String(), To: tr.To.String(),
			At: tr.At, Segment: tr.Segment, Note: tr.Note,
		})
		if tr.To == vm.StateInjectFunctions {
			if strings.HasPrefix(tr.Note, "revert:") {
				st.RevertedTraces++
			} else {
				st.InjectedTraces++
			}
		}
	}
	st.CompiledSegments = v.CompiledSegments()
	prof := v.Interp.Prof
	for _, seg := range v.Interp.Segments {
		for _, tr := range v.Traces(seg.ID) {
			st.GuardFailures += tr.Deopts()
		}
		for _, in := range seg.Instrs {
			st.Instructions = append(st.Instructions, InstrStat{
				ID: in.ID, Instr: in.String(),
				Calls:  prof.Calls(in.ID),
				Tuples: prof.Tuples(in.ID),
				Nanos:  prof.Nanos(in.ID),
			})
		}
	}
}
