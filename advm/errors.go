package advm

import "errors"

// The package classifies every failure into one of four sentinel
// categories, testable with errors.Is. The underlying cause stays in the
// chain, so errors.As and errors.Is against context errors keep working:
//
//	err := sess.Run(ctx, bindings)
//	switch {
//	case errors.Is(err, advm.ErrCancelled): // ctx cancelled or deadline hit
//	case errors.Is(err, advm.ErrBind):      // bad external bindings
//	case errors.Is(err, advm.ErrCompile):   // bad program or expression
//	case errors.Is(err, advm.ErrClosed):    // session or engine closed
//	}
var (
	// ErrCompile marks failures to parse, check or normalize a DSL program
	// or a query expression lambda.
	ErrCompile = errors.New("advm: compile failed")
	// ErrBind marks invalid external bindings or plan wiring: missing or
	// wrongly-typed arrays, unknown columns, schema mismatches.
	ErrBind = errors.New("advm: bind failed")
	// ErrCancelled marks an execution cut short by its context. The chain
	// also wraps the context's own error, so errors.Is(err,
	// context.Canceled) and errors.Is(err, context.DeadlineExceeded) keep
	// distinguishing the two causes.
	ErrCancelled = errors.New("advm: execution cancelled")
	// ErrClosed marks calls on a Session or Engine after Close: closed
	// handles reject new work (Run, RunPrepared, Query, Prepare, Session)
	// while executions already in flight finish normally.
	ErrClosed = errors.New("advm: closed")
)

// taggedError attaches a sentinel category to an underlying cause; both stay
// visible to errors.Is/As through multi-error unwrapping.
type taggedError struct {
	tag, cause error
}

func (e *taggedError) Error() string { return e.tag.Error() + ": " + e.cause.Error() }

func (e *taggedError) Unwrap() []error { return []error{e.tag, e.cause} }

// tagged wraps cause with the sentinel tag; nil stays nil.
func tagged(tag, cause error) error {
	if cause == nil {
		return nil
	}
	return &taggedError{tag: tag, cause: cause}
}
