package advm

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"

	"repro/internal/colstore"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/fused"
	"repro/internal/morsel"
	"repro/internal/qtrace"
)

// morselStatsSource is implemented by the morsel-dispatching operators
// (engine.Exchange, engine.ParallelAgg); the builder collects them so the
// cursor can fold scheduler counters — in particular steal counts — into the
// session when the query completes.
type morselStatsSource interface {
	MorselStats() morsel.Stats
}

// EvalMode fixes how filters and computes treat incoming selection vectors
// (§III-C selectivity specialization).
type EvalMode = engine.EvalMode

// Evaluation flavors.
const (
	// EvalAdaptive chooses per chunk from observed selectivity (default).
	EvalAdaptive = engine.EvalAdaptive
	// EvalFull computes over all rows, keeping the selection vector.
	EvalFull = engine.EvalFull
	// EvalSelective condenses the selected rows first.
	EvalSelective = engine.EvalSelective
)

// Agg describes one aggregate of an Aggregate plan node.
type Agg = engine.Aggregate

// AggFunc is an aggregation function.
type AggFunc = engine.AggFunc

// Aggregation functions.
const (
	AggSum   = engine.AggSum
	AggCount = engine.AggCount
	AggMin   = engine.AggMin
	AggMax   = engine.AggMax
	AggAvg   = engine.AggAvg
	// AggFirst carries the first value of the column seen for each group in
	// table order — the way to keep columns that are functionally dependent
	// on the group keys (any kind, strings included).
	AggFirst = engine.AggFirst
)

// Order names one sort column of a TopK plan node (descending when Desc).
type Order = engine.OrderSpec

// planKind tags the operator a Plan node describes.
type planKind int

const (
	planScan planKind = iota
	planFilter
	planCompute
	planAggregate
	planJoin
	planTopK
)

// Plan is a deferred description of a relational operator pipeline. Plans
// are cheap immutable builders: each method returns a new node, and nothing
// executes until Session.Query instantiates the pipeline — so one Plan can
// back many concurrent queries, each with its own operator state. Because a
// Plan is a declarative tree rather than a baked pipeline, the session can
// instantiate it differently per query: serially, or fanned out across
// workers when parallelism is enabled.
//
// Scalar expressions and predicates are DSL lambdas; they are lowered
// through the normalizer and run on per-operator adaptive VMs, so hot
// expressions JIT-compile into fused traces exactly as compiled programs
// do (subject to the session's WithJIT/WithJITOptions settings).
type Plan struct {
	kind  planKind
	child *Plan

	// Scan.
	table   TableSource
	columns []string

	// Filter / Compute.
	mode    EvalMode
	lambda  string
	col     string // filter input
	out     string // compute output
	outKind Kind
	cols    []string // compute inputs

	// Aggregate.
	keys []string
	aggs []Agg

	// Join.
	buildSide          *Plan
	probeKey, buildKey string
	payload            []string

	// TopK.
	k  int
	by []Order
}

// Scan starts a plan reading the named columns of a table source (all
// columns when none are given). The source may be an in-RAM Table or a
// disk-backed StoredTable; scans over stored tables decode lazily, chunk by
// chunk, and — when the session's scan pruning is on — skip whole segments
// that the plan's own filters prove irrelevant via the stored zone maps.
func Scan(t TableSource, columns ...string) *Plan {
	return &Plan{kind: planScan, table: t, columns: columns}
}

// Filter keeps the rows for which the DSL predicate lambda over col holds.
func (p *Plan) Filter(lambda, col string) *Plan {
	return p.FilterMode(EvalAdaptive, lambda, col)
}

// FilterMode is Filter with a fixed evaluation flavor.
func (p *Plan) FilterMode(mode EvalMode, lambda, col string) *Plan {
	return &Plan{kind: planFilter, child: p, mode: mode, lambda: lambda, col: col}
}

// Compute appends column out derived by the DSL lambda over the input
// columns; kind must be the lambda's result kind.
func (p *Plan) Compute(out, lambda string, kind Kind, cols ...string) *Plan {
	return p.ComputeMode(EvalAdaptive, out, lambda, kind, cols...)
}

// ComputeMode is Compute with a fixed evaluation flavor.
func (p *Plan) ComputeMode(mode EvalMode, out, lambda string, kind Kind, cols ...string) *Plan {
	return &Plan{kind: planCompute, child: p, mode: mode, out: out, lambda: lambda, outKind: kind, cols: cols}
}

// Aggregate groups by the key columns (nil for a single global group) and
// computes the given aggregates.
func (p *Plan) Aggregate(keys []string, aggs ...Agg) *Plan {
	return &Plan{kind: planAggregate, child: p, keys: keys, aggs: aggs}
}

// Join hash-joins the plan (probe side) against build on probeKey =
// buildKey, carrying the named build-side payload columns. The build side
// is materialized and hashed once when the query opens; selective probes
// adaptively keep a Bloom filter in front of the hash table.
//
// Under WithParallelism(n) > 1 the join parallelizes on both sides: the
// build side is materialized and hashed over morsels into a partitioned
// table (worker-local partitions, no contention), and the probe side's
// worker pipelines each probe the shared read-only table. Build rows are
// stitched back in table order, so match lists — and therefore the join's
// output rows — are byte-identical to serial execution.
func (p *Plan) Join(build *Plan, probeKey, buildKey string, payload ...string) *Plan {
	return &Plan{kind: planJoin, child: p, buildSide: build, probeKey: probeKey, buildKey: buildKey, payload: payload}
}

// TopK keeps the first k rows of the plan's result ordered by the given
// columns. The sort is stable over the input order, which keeps the result
// deterministic under ties — parallel and serial executions emit identical
// bytes.
func (p *Plan) TopK(k int, by ...Order) *Plan {
	return &Plan{kind: planTopK, child: p, k: k, by: by}
}

// builder carries per-query instantiation state: the session's options, the
// granted worker count, the shared join tables of this query, and — when the
// session's device policy is not CPU-only — the placement machinery that
// wraps worker pipelines in DeviceExec.
type builder struct {
	s         *Session
	workers   int
	exchanges int // parallel structures instantiated (0 → the grant can be returned)
	shared    map[*Plan]*engine.SharedJoinTable

	// sharedList holds the query's shared join tables in creation order.
	// Parallel queries kick all of them off concurrently at Open (see
	// prebuildOp) so independent build sides overlap instead of each waiting
	// for the first probe that needs it.
	sharedList []*engine.SharedJoinTable

	placer *device.Placer            // adaptive policy: choose per morsel
	forced device.Device             // pinned policy: every morsel on this device
	rec    *engine.PlacementRecorder // non-nil → device placement is on

	pruned map[*Plan]TableSource   // scan leaf → store it should read
	views  []*colstore.PrunedTable // pruned views created for this query

	morselOps []morselStatsSource // dispatching operators built for this query

	// Tiered execution state for this query (zero values = tiering off).
	tierFP       string          // canonical plan fingerprint
	tierN        int64           // this query's 1-based execution count
	tierEnt      *tierEntry      // engine-wide hotness entry
	fuseCtrs     *fused.Counters // non-nil → plan is at least warm
	fusedWrapped bool            // a fused loop was mounted somewhere
	noFuse       map[*Plan]bool  // stages of segments that declined fusion

	// Execution tracing state (nil = tracing off; see trace.go).
	trace      *qtrace.Trace
	troot      *qtrace.Span           // query root span
	spans      map[*Plan]*qtrace.Span // plan node → its operator span
	buildSpans map[*Plan]*qtrace.Span // join node → synthetic join-build span
}

// segment walks from p down through streaming stages — filters, computes and
// join probe sides — to a scan leaf. ok reports whether the walk reached a
// scan without crossing a pipeline breaker; stages is ordered top-down and
// may be empty when p itself is the scan.
func (p *Plan) segment() (stages []*Plan, scan *Plan, ok bool) {
	q := p
	for {
		switch q.kind {
		case planScan:
			return stages, q, true
		case planFilter, planCompute, planJoin:
			stages = append(stages, q)
			q = q.child
		default:
			return nil, nil, false
		}
	}
}

// build instantiates the subtree rooted at p. With more than one granted
// worker, the topmost streaming segment — a scan→filter/compute/probe chain
// — fans out across work-stealing morsel workers: under an aggregation it
// becomes a morsel-parallel aggregation, otherwise a morsel-parallel
// exchange merging chunks back in table order. Join build sides are
// materialized once per query into shared read-only tables, hashed in
// parallel when workers are granted; build phases run during Open, before
// the probe streams, so the fan-out never exceeds the pool grant.
//
// Results are byte-identical at every worker count, float aggregates
// included: exchanges merge in table order, and an aggregation over a
// streaming segment always runs as ParallelAgg — with a single worker when
// none are granted — so every session folds the same per-morsel
// pre-aggregation tables in the same morsel sequence order regardless of
// parallelism. The accumulation blocking (and thus the low-order float
// bits) is pinned by the morsel length alone; see WithMorselLen.
func (p *Plan) build(b *builder) (engine.Operator, error) {
	switch p.kind {
	case planScan:
		sc, err := engine.NewScan(b.storeFor(p), p.columns...)
		if err != nil {
			return nil, err
		}
		if b.s.opt.chunkLen > 0 {
			sc.SetChunkLen(b.s.opt.chunkLen)
		}
		return b.traced(p, sc), nil
	case planFilter, planCompute, planJoin:
		if op, ok, err := p.buildExchange(b); ok || err != nil {
			return op, err
		}
		if op, ok, err := p.buildFusedSerial(b); ok || err != nil {
			return op, err
		}
		child, err := p.child.build(b)
		if err != nil {
			return nil, err
		}
		if p.kind == planJoin {
			shared, err := b.sharedJoin(p)
			if err != nil {
				return nil, err
			}
			tp, err := engine.NewTableProbe(child, shared, p.probeKey, p.payload...)
			if err != nil {
				return nil, err
			}
			return b.traced(p, tp), nil
		}
		return b.traced(p, p.stageOn(b.s, child)), nil
	case planAggregate:
		if stages, scan, ok := p.child.segment(); ok {
			// An aggregation over a streaming segment always runs as the
			// morsel-parallel aggregation — with one worker when none are
			// granted (or a fan-out already claimed the grant) — so every
			// session folds identical per-morsel tables in identical sequence
			// order: parallelism can never reach the result bytes, and f64
			// pre-aggregation stays enabled instead of being forced off on
			// the serial path.
			workers := 1
			if b.workers > 1 && b.exchanges == 0 {
				workers = b.workers
			}
			mk, _, err := b.pipeMaker(stages, scan)
			if err != nil {
				return nil, err
			}
			if workers > 1 {
				mk = b.placedMaker(mk, scan, stages)
			}
			pa, err := engine.NewParallelAgg(b.storeFor(scan), scan.columns, workers,
				mk, p.keys, p.aggs)
			if err != nil {
				return nil, err
			}
			if b.s.opt.chunkLen > 0 {
				pa.SetChunkLen(b.s.opt.chunkLen)
			}
			if b.s.opt.morselLen > 0 {
				pa.SetMorselLen(b.s.opt.morselLen)
			}
			if workers > 1 {
				b.exchanges++
				b.morselOps = append(b.morselOps, pa)
			}
			// SetTrace even with one worker: the serial instantiation is
			// still morsel-dispatched, so its leaf spans keep the trace's
			// morsel accounting identical at every parallelism.
			pa.SetTrace(b.spans[p], b.traceMorsels())
			return b.traced(p, pa), nil
		}
		child, err := p.child.build(b)
		if err != nil {
			return nil, err
		}
		// Non-segment children (an aggregation over an aggregation, over a
		// TopK, …) aggregate serially; their input order is plan-determined,
		// so adaptive pre-aggregation is deterministic here too.
		return b.traced(p, engine.NewHashAgg(child, p.keys, p.aggs)), nil
	case planTopK:
		if op, ok, err := p.buildParallelTopK(b); ok || err != nil {
			return op, err
		}
		child, err := p.child.build(b)
		if err != nil {
			return nil, err
		}
		tk, err := engine.NewTopK(child, p.k, p.by...)
		if err != nil {
			return nil, err
		}
		return b.traced(p, tk), nil
	}
	panic("advm: unknown plan node")
}

// buildParallelTopK instantiates a top-k over a streaming segment as a
// morsel-parallel fold when workers are granted (and no fan-out claimed them
// yet): each morsel reduces to at most k candidate rows and the candidates
// merge in morsel sequence order. Unlike an exchange, a bare scan underneath
// is worth fanning out too — the fold is a real reduction, not a row copy —
// so only the worker/exchange gates apply. There is no arithmetic in a
// top-k, so parallel and serial instantiations emit identical bytes and
// mounting only under granted workers cannot shift results; ok=false falls
// through to the serial TopK.
func (p *Plan) buildParallelTopK(b *builder) (engine.Operator, bool, error) {
	if b.workers <= 1 || b.exchanges > 0 {
		return nil, false, nil
	}
	stages, scan, ok := p.child.segment()
	if !ok {
		return nil, false, nil
	}
	b.exchanges++ // claim before nested sharedJoin builds count theirs
	mk := func(_ int, leaf engine.Operator) (engine.Operator, error) { return leaf, nil }
	if len(stages) > 0 {
		var err error
		mk, _, err = b.pipeMaker(stages, scan)
		if err != nil {
			return nil, false, err
		}
		mk = b.placedMaker(mk, scan, stages)
	}
	tk, err := engine.NewParallelTopK(b.storeFor(scan), scan.columns, b.workers, mk, p.k, p.by...)
	if err != nil {
		return nil, false, err
	}
	if b.s.opt.chunkLen > 0 {
		tk.SetChunkLen(b.s.opt.chunkLen)
	}
	if b.s.opt.morselLen > 0 {
		tk.SetMorselLen(b.s.opt.morselLen)
	}
	b.morselOps = append(b.morselOps, tk)
	tk.SetTrace(b.spans[p], b.traceMorsels())
	return b.traced(p, tk), true, nil
}

// stageOn instantiates a filter/compute node on top of child with the
// session's JIT settings.
func (p *Plan) stageOn(s *Session, child engine.Operator) engine.Operator {
	switch p.kind {
	case planFilter:
		return engine.NewFilter(child, p.lambda, p.col).
			SetMode(p.mode).SetJIT(s.opt.jitEnabled, s.opt.cfg.JIT)
	case planCompute:
		return engine.NewCompute(child, p.out, p.lambda, p.outKind, p.cols...).
			SetMode(p.mode).SetJIT(s.opt.jitEnabled, s.opt.cfg.JIT)
	}
	panic("advm: not a pipeline stage")
}

// pipeMaker returns a function instantiating a worker-private copy of the
// given top-down stage list over a scan leaf. Shared join tables are created
// once, up front, so every worker probes the same build.
//
// When the plan is hot under tiered execution and the segment compiles (or is
// already cached), the returned maker mounts the fused loop instead of the
// interpreted stage chain — with the interpreted maker retained as the deopt
// fallback — and fusedOK reports so. Otherwise the maker is the plain
// interpreted chain and fusedOK is false.
func (b *builder) pipeMaker(stages []*Plan, scan *Plan) (mk func(int, engine.Operator) (engine.Operator, error), fusedOK bool, err error) {
	shared := make([]*engine.SharedJoinTable, len(stages))
	for i, st := range stages {
		if st.kind == planJoin {
			s, err := b.sharedJoin(st)
			if err != nil {
				return nil, false, err
			}
			shared[i] = s
		}
	}
	interp := func(_ int, leaf engine.Operator) (engine.Operator, error) {
		op := leaf
		for i := len(stages) - 1; i >= 0; i-- {
			st := stages[i]
			if st.kind == planJoin {
				tp, err := engine.NewTableProbe(op, shared[i], st.probeKey, st.payload...)
				if err != nil {
					return nil, err
				}
				op = b.traced(st, tp)
				continue
			}
			op = b.traced(st, st.stageOn(b.s, op))
		}
		return op, nil
	}
	prog, tables := b.fusePlan(stages, scan, shared)
	if prog == nil {
		return interp, false, nil
	}
	b.fusedWrapped = true
	ctrs := b.fuseCtrs
	top := scan // bare-scan segment: the fused loop's time lands on the scan span
	if len(stages) > 0 {
		top = stages[0]
	}
	return func(_ int, leaf engine.Operator) (engine.Operator, error) {
		// The fused loop replaces the whole stage chain, so its time lands
		// on the top stage's span; the inner stage spans keep the plan
		// structure but stay at zero busy while the segment runs fused.
		return b.traced(top, fused.NewExec(prog, leaf, tables, ctrs, func(l engine.Operator) (engine.Operator, error) {
			return interp(0, l)
		})), nil
	}, true, nil
}

// fusePlan compiles — or fetches from the engine's code cache — the fused
// program for a streaming segment. It returns nil when the plan is not warm
// yet, when the segment declines fusion (a negative outcome, cached so hot
// unfusable plans pay the pattern-match once), or when the plan is warm but
// not yet hot (warm plans compile and prime the cache but keep running
// interpreted). The returned table list is the query's shared join tables in
// program order.
func (b *builder) fusePlan(stages []*Plan, scan *Plan, shared []*engine.SharedJoinTable) (*fused.Program, []*engine.SharedJoinTable) {
	if b.fuseCtrs == nil {
		return nil, nil
	}
	scanI, ok := scanInfos(b.storeFor(scan), scan.columns)
	if !ok {
		return nil, nil
	}
	var fstages []fused.Stage
	var tables []*engine.SharedJoinTable
	for i := len(stages) - 1; i >= 0; i-- {
		st := stages[i]
		switch st.kind {
		case planFilter:
			fstages = append(fstages, fused.Stage{Kind: fused.StageFilter, Lambda: st.lambda, Col: st.col})
		case planCompute:
			fstages = append(fstages, fused.Stage{
				Kind: fused.StageCompute, Lambda: st.lambda,
				Out: st.out, OutKind: st.outKind, Cols: st.cols,
			})
		case planJoin:
			fs := fused.Stage{
				Kind: fused.StageProbe, ProbeKey: st.probeKey,
				Payload: st.payload, Table: len(tables),
			}
			for _, ci := range shared[i].Schema() {
				fs.BuildNames = append(fs.BuildNames, ci.Name)
				fs.BuildKinds = append(fs.BuildKinds, ci.Kind)
			}
			tables = append(tables, shared[i])
			fstages = append(fstages, fs)
		}
	}
	eng := b.s.eng
	key := b.tierFP + "\x00" + fused.Signature(scanI, fstages)
	prog, present := eng.fcache.Lookup(key)
	if present {
		if prog != nil {
			eng.fusedCacheHits.Add(1)
			b.traceEvent("fused-cache-hit")
		}
	} else {
		var compiled bool
		if prog, compiled = fused.Compile(scanI, fstages); compiled {
			eng.fusedCompiles.Add(1)
			b.traceEvent("fused-compile")
		} else {
			prog = nil
		}
		eng.fcache.Store(key, prog)
	}
	if prog == nil || b.tierN < b.s.opt.tierHot {
		return nil, nil
	}
	return prog, tables
}

// buildFusedSerial mounts a fused loop over the serial streaming segment
// rooted at p when the plan is hot and the segment compiles. ok=false falls
// through to the ordinary serial operator chain; declined segments mark all
// their stages so the recursion does not retry fusion on sub-segments.
func (p *Plan) buildFusedSerial(b *builder) (engine.Operator, bool, error) {
	if b.fuseCtrs == nil || b.noFuse[p] {
		return nil, false, nil
	}
	stages, scan, ok := p.segment()
	if !ok || len(stages) == 0 {
		return nil, false, nil
	}
	mk, fusedOK, err := b.pipeMaker(stages, scan)
	if err != nil {
		return nil, false, err
	}
	if !fusedOK {
		if b.noFuse == nil {
			b.noFuse = map[*Plan]bool{}
		}
		for _, st := range stages {
			b.noFuse[st] = true
		}
		return nil, false, nil
	}
	leaf, err := scan.build(b)
	if err != nil {
		return nil, false, err
	}
	op, err := mk(0, leaf)
	if err != nil {
		return nil, false, err
	}
	return op, true, nil
}

// scanInfos resolves a scan's output slot layout (names and kinds) from the
// table schema — the fused compiler's view of the leaf.
func scanInfos(store TableSource, cols []string) ([]engine.ColInfo, bool) {
	sch := store.Schema()
	if len(cols) == 0 {
		cols = sch.Names
	}
	out := make([]engine.ColInfo, 0, len(cols))
	for _, c := range cols {
		i := sch.ColumnIndex(c)
		if i < 0 {
			return nil, false
		}
		out = append(out, engine.ColInfo{Name: c, Kind: sch.Kinds[i]})
	}
	return out, true
}

// sharedJoin returns the query's shared build-side table for a join node,
// creating it on first use. With granted workers and a streaming build side
// the table is materialized and hashed morsel-parallel at Open; otherwise it
// is collected serially. Either way the table is built exactly once per
// query and probed read-only by every worker.
func (b *builder) sharedJoin(p *Plan) (*engine.SharedJoinTable, error) {
	if s, ok := b.shared[p]; ok {
		return s, nil
	}
	var s *engine.SharedJoinTable
	if b.workers > 1 {
		if stages, scan, ok := p.buildSide.segment(); ok {
			mk, _, err := b.pipeMaker(stages, scan)
			if err != nil {
				return nil, err
			}
			// One scratch pipeline resolves the build side's static schema.
			scratch, err := engine.NewPartScan(b.storeFor(scan), scan.columns...)
			if err != nil {
				return nil, err
			}
			probe, err := mk(0, scratch)
			if err != nil {
				return nil, err
			}
			store, columns := b.storeFor(scan), scan.columns
			workers, chunkLen, morselLen, key := b.workers, b.s.opt.chunkLen, b.s.opt.morselLen, p.buildKey
			bsp, tm := b.buildSpans[p], b.traceMorsels()
			s = engine.NewSharedJoinTable(probe.Schema(), timedJoinBuild(bsp, func(ctx context.Context) (*engine.JoinTable, error) {
				return engine.BuildJoinTableParallelTraced(ctx, store, columns, workers, chunkLen, morselLen, key, mk, bsp, tm)
			}))
			b.exchanges++
		}
	}
	if s == nil {
		op, err := p.buildSide.build(b)
		if err != nil {
			return nil, err
		}
		key := p.buildKey
		s = engine.NewSharedJoinTable(op.Schema(), timedJoinBuild(b.buildSpans[p], func(ctx context.Context) (*engine.JoinTable, error) {
			rows, err := engine.Collect(ctx, op)
			if err != nil {
				return nil, err
			}
			return engine.NewJoinTable(rows, key)
		}))
	}
	if b.shared == nil {
		b.shared = map[*Plan]*engine.SharedJoinTable{}
	}
	b.shared[p] = s
	b.sharedList = append(b.sharedList, s)
	return s, nil
}

// buildExchange instantiates the streaming segment rooted at p — filters,
// computes and join probes over a table scan — as a morsel-parallel
// exchange: every worker gets a private copy of the segment over a windowed
// scan, and the exchange merges the workers' chunks back in table order. A
// bare scan is not fanned out (copying rows across workers gains nothing);
// such subtrees report ok=false and build serially.
func (p *Plan) buildExchange(b *builder) (engine.Operator, bool, error) {
	if b.workers <= 1 || b.exchanges > 0 {
		return nil, false, nil
	}
	stages, scan, ok := p.segment()
	if !ok || len(stages) == 0 {
		return nil, false, nil
	}
	b.exchanges++ // claim before nested sharedJoin builds count theirs
	mk, _, err := b.pipeMaker(stages, scan)
	if err != nil {
		return nil, false, err
	}
	ex, err := engine.NewExchange(b.storeFor(scan), scan.columns, b.workers, b.placedMaker(mk, scan, stages))
	if err != nil {
		return nil, false, err
	}
	if b.s.opt.chunkLen > 0 {
		ex.SetChunkLen(b.s.opt.chunkLen)
	}
	if b.s.opt.morselLen > 0 {
		ex.SetMorselLen(b.s.opt.morselLen)
	}
	b.morselOps = append(b.morselOps, ex)
	// The exchange itself is not wrapped — the worker pipelines already
	// time every stage span, including the segment top — but it carries the
	// top span for morsel leaves and dispatch statistics.
	ex.SetTrace(b.spans[p], b.traceMorsels())
	return ex, true, nil
}

// placedMaker wraps a worker-pipeline maker so every worker's pipeline top
// is a DeviceExec carrying the segment's kernel spec — the hook through
// which the exchange dispatch loops place each morsel on a device. With the
// CPU-only policy (no recorder) the maker passes through untouched and the
// query runs exactly as before.
func (b *builder) placedMaker(mk func(int, engine.Operator) (engine.Operator, error),
	scan *Plan, stages []*Plan) func(int, engine.Operator) (engine.Operator, error) {
	if b.rec == nil {
		return mk
	}
	spec := kernelSpec(b.storeFor(scan), scan, stages)
	return func(w int, leaf engine.Operator) (engine.Operator, error) {
		op, err := mk(w, leaf)
		if err != nil {
			return nil, err
		}
		return engine.NewDeviceExec(op, b.placer, b.forced, spec, b.rec), nil
	}
}

// kernelSpec derives the per-morsel cost template of a streaming segment
// from the plan: input volume from the scanned columns' widths, residency
// keys from the table's identity (so repeated queries over the same table
// hit the device's residency cache), and arithmetic intensity from the
// stages stacked on the scan. The identity includes the row count, so a
// table that grew since its columns became resident re-transfers instead
// of reading stale residency (and a recycled allocation only aliases an
// old key if it also matches the old size).
//
// Stored tables refine both halves: the residency key unwraps pruned views
// to the underlying table (pruning never changes which bytes are resident),
// and the per-row transfer cost uses the real compressed segment bytes on
// disk instead of the decoded element width.
func kernelSpec(store TableSource, scan *Plan, stages []*Plan) engine.KernelSpec {
	sch := store.Schema()
	cols := scan.columns
	if len(cols) == 0 {
		cols = sch.Names
	}
	ident := any(store)
	if base, ok := store.(interface{ Base() *colstore.Table }); ok {
		ident = base.Base()
	}
	rows := store.Rows()
	key := fmt.Sprintf("tbl%p/r%d", ident, rows)
	spec := engine.KernelSpec{Name: "segment@" + key}
	sized, _ := store.(interface{ ColumnBytes(string) int64 })
	for _, c := range cols {
		spec.Inputs = append(spec.Inputs, key+"."+c)
		if i := sch.ColumnIndex(c); i >= 0 {
			w := sch.Kinds[i].Width()
			if sized != nil && rows > 0 {
				if bts := sized.ColumnBytes(c); bts > 0 {
					if w = int((bts + int64(rows) - 1) / int64(rows)); w < 1 {
						w = 1
					}
				}
			}
			spec.RowBytes += w
		}
	}
	// Per-row cost approximation: a scan touches every element once; each
	// filter evaluates a predicate (≈2 ops), each compute its arithmetic
	// (≈2 ops + one per extra input), each probe hashes and chases (≈6).
	ops := 1.0
	for _, st := range stages {
		switch st.kind {
		case planFilter:
			ops += 2
		case planCompute:
			ops += 2 + float64(len(st.cols))
		case planJoin:
			ops += 6
		}
	}
	spec.OpsPerElem = ops
	spec.OutRowBytes = spec.RowBytes
	return spec
}

// fingerprint canonically serializes the plan tree — structure, lambdas,
// evaluation modes, column names, aggregate, join and top-k specs, plus each
// scanned table's schema and row count — and hashes it into a compact hex
// key. Table identity is the schema and size rather than the pointer, so an
// in-RAM copy and a colstore-backed copy of the same data share one hotness
// entry. Distinct keys may collide in principle (it is a 64-bit hash), but
// the fused code cache appends the full specialization signature, so a
// collision can never execute a loop compiled for a different plan shape.
func (p *Plan) fingerprint() string {
	h := fnv.New64a()
	p.writeFP(h)
	return fmt.Sprintf("p%016x", h.Sum64())
}

// writeFP streams the canonical serialization of the plan subtree.
func (p *Plan) writeFP(w io.Writer) {
	switch p.kind {
	case planScan:
		sch := p.table.Schema()
		fmt.Fprintf(w, "scan/%d:", p.table.Rows())
		cols := p.columns
		if len(cols) == 0 {
			cols = sch.Names
		}
		for _, c := range cols {
			k := Kind(0)
			if i := sch.ColumnIndex(c); i >= 0 {
				k = sch.Kinds[i]
			}
			fmt.Fprintf(w, "%q=%d,", c, k)
		}
	case planFilter:
		p.child.writeFP(w)
		fmt.Fprintf(w, ";F%d%q@%q", p.mode, p.lambda, p.col)
	case planCompute:
		p.child.writeFP(w)
		fmt.Fprintf(w, ";C%d%q->%q=%d/", p.mode, p.lambda, p.out, p.outKind)
		for _, c := range p.cols {
			fmt.Fprintf(w, "%q,", c)
		}
	case planAggregate:
		p.child.writeFP(w)
		io.WriteString(w, ";A")
		for _, k := range p.keys {
			fmt.Fprintf(w, "%q,", k)
		}
		io.WriteString(w, "/")
		for _, a := range p.aggs {
			fmt.Fprintf(w, "%d%q>%q,", a.Func, a.Col, a.As)
		}
	case planJoin:
		p.child.writeFP(w)
		io.WriteString(w, ";J{")
		p.buildSide.writeFP(w)
		fmt.Fprintf(w, "}%q=%q/", p.probeKey, p.buildKey)
		for _, c := range p.payload {
			fmt.Fprintf(w, "%q,", c)
		}
	case planTopK:
		p.child.writeFP(w)
		fmt.Fprintf(w, ";T%d/", p.k)
		for _, o := range p.by {
			fmt.Fprintf(w, "%q:%v,", o.Col, o.Desc)
		}
	}
}
