package advm

import (
	"repro/internal/engine"
)

// EvalMode fixes how filters and computes treat incoming selection vectors
// (§III-C selectivity specialization).
type EvalMode = engine.EvalMode

// Evaluation flavors.
const (
	// EvalAdaptive chooses per chunk from observed selectivity (default).
	EvalAdaptive = engine.EvalAdaptive
	// EvalFull computes over all rows, keeping the selection vector.
	EvalFull = engine.EvalFull
	// EvalSelective condenses the selected rows first.
	EvalSelective = engine.EvalSelective
)

// Agg describes one aggregate of an Aggregate plan node.
type Agg = engine.Aggregate

// AggFunc is an aggregation function.
type AggFunc = engine.AggFunc

// Aggregation functions.
const (
	AggSum   = engine.AggSum
	AggCount = engine.AggCount
	AggMin   = engine.AggMin
	AggMax   = engine.AggMax
	AggAvg   = engine.AggAvg
)

// planKind tags the operator a Plan node describes.
type planKind int

const (
	planScan planKind = iota
	planFilter
	planCompute
	planAggregate
	planJoin
)

// Plan is a deferred description of a relational operator pipeline. Plans
// are cheap immutable builders: each method returns a new node, and nothing
// executes until Session.Query instantiates the pipeline — so one Plan can
// back many concurrent queries, each with its own operator state. Because a
// Plan is a declarative tree rather than a baked pipeline, the session can
// instantiate it differently per query: serially, or fanned out across
// workers when parallelism is enabled.
//
// Scalar expressions and predicates are DSL lambdas; they are lowered
// through the normalizer and run on per-operator adaptive VMs, so hot
// expressions JIT-compile into fused traces exactly as compiled programs
// do (subject to the session's WithJIT/WithJITOptions settings).
type Plan struct {
	kind  planKind
	child *Plan

	// Scan.
	table   *Table
	columns []string

	// Filter / Compute.
	mode    EvalMode
	lambda  string
	col     string // filter input
	out     string // compute output
	outKind Kind
	cols    []string // compute inputs

	// Aggregate.
	keys []string
	aggs []Agg

	// Join.
	buildSide          *Plan
	probeKey, buildKey string
	payload            []string
}

// Scan starts a plan reading the named columns of a table (all columns when
// none are given).
func Scan(t *Table, columns ...string) *Plan {
	return &Plan{kind: planScan, table: t, columns: columns}
}

// Filter keeps the rows for which the DSL predicate lambda over col holds.
func (p *Plan) Filter(lambda, col string) *Plan {
	return p.FilterMode(EvalAdaptive, lambda, col)
}

// FilterMode is Filter with a fixed evaluation flavor.
func (p *Plan) FilterMode(mode EvalMode, lambda, col string) *Plan {
	return &Plan{kind: planFilter, child: p, mode: mode, lambda: lambda, col: col}
}

// Compute appends column out derived by the DSL lambda over the input
// columns; kind must be the lambda's result kind.
func (p *Plan) Compute(out, lambda string, kind Kind, cols ...string) *Plan {
	return p.ComputeMode(EvalAdaptive, out, lambda, kind, cols...)
}

// ComputeMode is Compute with a fixed evaluation flavor.
func (p *Plan) ComputeMode(mode EvalMode, out, lambda string, kind Kind, cols ...string) *Plan {
	return &Plan{kind: planCompute, child: p, mode: mode, out: out, lambda: lambda, outKind: kind, cols: cols}
}

// Aggregate groups by the key columns (nil for a single global group) and
// computes the given aggregates.
func (p *Plan) Aggregate(keys []string, aggs ...Agg) *Plan {
	return &Plan{kind: planAggregate, child: p, keys: keys, aggs: aggs}
}

// Join hash-joins the plan (probe side) against build on probeKey =
// buildKey, carrying the named build-side payload columns. The build side
// is materialized and hashed when the query opens; selective probes
// adaptively keep a Bloom filter in front of the hash table.
func (p *Plan) Join(build *Plan, probeKey, buildKey string, payload ...string) *Plan {
	return &Plan{kind: planJoin, child: p, buildSide: build, probeKey: probeKey, buildKey: buildKey, payload: payload}
}

// builder carries per-query instantiation state: the session's options and
// the granted worker count.
type builder struct {
	s         *Session
	workers   int
	exchanges int // exchanges instantiated (0 → the grant can be returned)
}

// build instantiates the subtree rooted at p. With more than one granted
// worker, the first maximal scan→filter/compute chain becomes a
// morsel-parallel exchange; everything else (aggregations, joins, any
// stages above the exchange, and further chains) is built serially on top.
// Only one exchange per query keeps the fan-out equal to the pool grant —
// for a join, that is the streaming probe side (built first), not the
// materialized-once build side.
func (p *Plan) build(b *builder) (engine.Operator, error) {
	if b.workers > 1 && b.exchanges == 0 {
		if op, ok, err := p.buildExchange(b); ok || err != nil {
			return op, err
		}
	}
	switch p.kind {
	case planScan:
		sc, err := engine.NewScan(p.table, p.columns...)
		if err != nil {
			return nil, err
		}
		if b.s.opt.chunkLen > 0 {
			sc.SetChunkLen(b.s.opt.chunkLen)
		}
		return sc, nil
	case planFilter, planCompute:
		child, err := p.child.build(b)
		if err != nil {
			return nil, err
		}
		return p.stageOn(b.s, child), nil
	case planAggregate:
		child, err := p.child.build(b)
		if err != nil {
			return nil, err
		}
		return engine.NewHashAgg(child, p.keys, p.aggs), nil
	case planJoin:
		probe, err := p.child.build(b)
		if err != nil {
			return nil, err
		}
		side, err := p.buildSide.build(b)
		if err != nil {
			return nil, err
		}
		return engine.NewHashJoin(probe, side, p.probeKey, p.buildKey, p.payload...), nil
	}
	panic("advm: unknown plan node")
}

// stageOn instantiates a filter/compute node on top of child with the
// session's JIT settings.
func (p *Plan) stageOn(s *Session, child engine.Operator) engine.Operator {
	switch p.kind {
	case planFilter:
		return engine.NewFilter(child, p.lambda, p.col).
			SetMode(p.mode).SetJIT(s.opt.jitEnabled, s.opt.cfg.JIT)
	case planCompute:
		return engine.NewCompute(child, p.out, p.lambda, p.outKind, p.cols...).
			SetMode(p.mode).SetJIT(s.opt.jitEnabled, s.opt.cfg.JIT)
	}
	panic("advm: not a pipeline stage")
}

// buildExchange recognizes a chain of filters/computes over a table scan
// rooted at p and instantiates it as a morsel-parallel exchange: every
// worker gets a private copy of the chain over a windowed scan, and the
// exchange merges the workers' chunks back in table order. A bare scan is
// not fanned out (copying rows across workers gains nothing); such subtrees
// report ok=false and build serially.
func (p *Plan) buildExchange(b *builder) (engine.Operator, bool, error) {
	var chain []*Plan // p downward, filters/computes only
	q := p
	for q.kind == planFilter || q.kind == planCompute {
		chain = append(chain, q)
		q = q.child
	}
	if q.kind != planScan || len(chain) == 0 {
		return nil, false, nil
	}
	scan := q
	ex, err := engine.NewExchange(scan.table, scan.columns, b.workers,
		func(_ int, leaf engine.Operator) (engine.Operator, error) {
			op := leaf
			for i := len(chain) - 1; i >= 0; i-- {
				op = chain[i].stageOn(b.s, op)
			}
			return op, nil
		})
	if err != nil {
		return nil, false, err
	}
	if b.s.opt.chunkLen > 0 {
		ex.SetChunkLen(b.s.opt.chunkLen)
	}
	b.exchanges++
	return ex, true, nil
}
