package advm

import (
	"repro/internal/engine"
)

// EvalMode fixes how filters and computes treat incoming selection vectors
// (§III-C selectivity specialization).
type EvalMode = engine.EvalMode

// Evaluation flavors.
const (
	// EvalAdaptive chooses per chunk from observed selectivity (default).
	EvalAdaptive = engine.EvalAdaptive
	// EvalFull computes over all rows, keeping the selection vector.
	EvalFull = engine.EvalFull
	// EvalSelective condenses the selected rows first.
	EvalSelective = engine.EvalSelective
)

// Agg describes one aggregate of an Aggregate plan node.
type Agg = engine.Aggregate

// AggFunc is an aggregation function.
type AggFunc = engine.AggFunc

// Aggregation functions.
const (
	AggSum   = engine.AggSum
	AggCount = engine.AggCount
	AggMin   = engine.AggMin
	AggMax   = engine.AggMax
	AggAvg   = engine.AggAvg
)

// Plan is a deferred description of a relational operator pipeline. Plans
// are cheap immutable builders: each method returns a new node, and nothing
// executes until Session.Query instantiates the pipeline — so one Plan can
// back many concurrent queries, each with its own operator state.
//
// Scalar expressions and predicates are DSL lambdas; they are lowered
// through the normalizer and run on per-operator adaptive VMs, so hot
// expressions JIT-compile into fused traces exactly as compiled programs
// do (subject to the session's WithJIT/WithJITOptions settings).
type Plan struct {
	build func(s *Session) (engine.Operator, error)
}

// Scan starts a plan reading the named columns of a table (all columns when
// none are given).
func Scan(t *Table, columns ...string) *Plan {
	return &Plan{build: func(s *Session) (engine.Operator, error) {
		sc, err := engine.NewScan(t, columns...)
		if err != nil {
			return nil, err
		}
		if s.opt.chunkLen > 0 {
			sc.SetChunkLen(s.opt.chunkLen)
		}
		return sc, nil
	}}
}

// Filter keeps the rows for which the DSL predicate lambda over col holds.
func (p *Plan) Filter(lambda, col string) *Plan {
	return p.FilterMode(EvalAdaptive, lambda, col)
}

// FilterMode is Filter with a fixed evaluation flavor.
func (p *Plan) FilterMode(mode EvalMode, lambda, col string) *Plan {
	return &Plan{build: func(s *Session) (engine.Operator, error) {
		child, err := p.build(s)
		if err != nil {
			return nil, err
		}
		return engine.NewFilter(child, lambda, col).
			SetMode(mode).SetJIT(s.opt.jitEnabled, s.opt.cfg.JIT), nil
	}}
}

// Compute appends column out derived by the DSL lambda over the input
// columns; kind must be the lambda's result kind.
func (p *Plan) Compute(out, lambda string, kind Kind, cols ...string) *Plan {
	return p.ComputeMode(EvalAdaptive, out, lambda, kind, cols...)
}

// ComputeMode is Compute with a fixed evaluation flavor.
func (p *Plan) ComputeMode(mode EvalMode, out, lambda string, kind Kind, cols ...string) *Plan {
	return &Plan{build: func(s *Session) (engine.Operator, error) {
		child, err := p.build(s)
		if err != nil {
			return nil, err
		}
		return engine.NewCompute(child, out, lambda, kind, cols...).
			SetMode(mode).SetJIT(s.opt.jitEnabled, s.opt.cfg.JIT), nil
	}}
}

// Aggregate groups by the key columns (nil for a single global group) and
// computes the given aggregates.
func (p *Plan) Aggregate(keys []string, aggs ...Agg) *Plan {
	return &Plan{build: func(s *Session) (engine.Operator, error) {
		child, err := p.build(s)
		if err != nil {
			return nil, err
		}
		return engine.NewHashAgg(child, keys, aggs), nil
	}}
}

// Join hash-joins the plan (probe side) against build on probeKey =
// buildKey, carrying the named build-side payload columns. The build side
// is materialized and hashed when the query opens; selective probes
// adaptively keep a Bloom filter in front of the hash table.
func (p *Plan) Join(build *Plan, probeKey, buildKey string, payload ...string) *Plan {
	return &Plan{build: func(s *Session) (engine.Operator, error) {
		probe, err := p.build(s)
		if err != nil {
			return nil, err
		}
		b, err := build.build(s)
		if err != nil {
			return nil, err
		}
		return engine.NewHashJoin(probe, b, probeKey, buildKey, payload...), nil
	}}
}
