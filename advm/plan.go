package advm

import (
	"context"
	"fmt"

	"repro/internal/colstore"
	"repro/internal/device"
	"repro/internal/engine"
)

// EvalMode fixes how filters and computes treat incoming selection vectors
// (§III-C selectivity specialization).
type EvalMode = engine.EvalMode

// Evaluation flavors.
const (
	// EvalAdaptive chooses per chunk from observed selectivity (default).
	EvalAdaptive = engine.EvalAdaptive
	// EvalFull computes over all rows, keeping the selection vector.
	EvalFull = engine.EvalFull
	// EvalSelective condenses the selected rows first.
	EvalSelective = engine.EvalSelective
)

// Agg describes one aggregate of an Aggregate plan node.
type Agg = engine.Aggregate

// AggFunc is an aggregation function.
type AggFunc = engine.AggFunc

// Aggregation functions.
const (
	AggSum   = engine.AggSum
	AggCount = engine.AggCount
	AggMin   = engine.AggMin
	AggMax   = engine.AggMax
	AggAvg   = engine.AggAvg
	// AggFirst carries the first value of the column seen for each group in
	// table order — the way to keep columns that are functionally dependent
	// on the group keys (any kind, strings included).
	AggFirst = engine.AggFirst
)

// Order names one sort column of a TopK plan node (descending when Desc).
type Order = engine.OrderSpec

// planKind tags the operator a Plan node describes.
type planKind int

const (
	planScan planKind = iota
	planFilter
	planCompute
	planAggregate
	planJoin
	planTopK
)

// Plan is a deferred description of a relational operator pipeline. Plans
// are cheap immutable builders: each method returns a new node, and nothing
// executes until Session.Query instantiates the pipeline — so one Plan can
// back many concurrent queries, each with its own operator state. Because a
// Plan is a declarative tree rather than a baked pipeline, the session can
// instantiate it differently per query: serially, or fanned out across
// workers when parallelism is enabled.
//
// Scalar expressions and predicates are DSL lambdas; they are lowered
// through the normalizer and run on per-operator adaptive VMs, so hot
// expressions JIT-compile into fused traces exactly as compiled programs
// do (subject to the session's WithJIT/WithJITOptions settings).
type Plan struct {
	kind  planKind
	child *Plan

	// Scan.
	table   TableSource
	columns []string

	// Filter / Compute.
	mode    EvalMode
	lambda  string
	col     string // filter input
	out     string // compute output
	outKind Kind
	cols    []string // compute inputs

	// Aggregate.
	keys []string
	aggs []Agg

	// Join.
	buildSide          *Plan
	probeKey, buildKey string
	payload            []string

	// TopK.
	k  int
	by []Order
}

// Scan starts a plan reading the named columns of a table source (all
// columns when none are given). The source may be an in-RAM Table or a
// disk-backed StoredTable; scans over stored tables decode lazily, chunk by
// chunk, and — when the session's scan pruning is on — skip whole segments
// that the plan's own filters prove irrelevant via the stored zone maps.
func Scan(t TableSource, columns ...string) *Plan {
	return &Plan{kind: planScan, table: t, columns: columns}
}

// Filter keeps the rows for which the DSL predicate lambda over col holds.
func (p *Plan) Filter(lambda, col string) *Plan {
	return p.FilterMode(EvalAdaptive, lambda, col)
}

// FilterMode is Filter with a fixed evaluation flavor.
func (p *Plan) FilterMode(mode EvalMode, lambda, col string) *Plan {
	return &Plan{kind: planFilter, child: p, mode: mode, lambda: lambda, col: col}
}

// Compute appends column out derived by the DSL lambda over the input
// columns; kind must be the lambda's result kind.
func (p *Plan) Compute(out, lambda string, kind Kind, cols ...string) *Plan {
	return p.ComputeMode(EvalAdaptive, out, lambda, kind, cols...)
}

// ComputeMode is Compute with a fixed evaluation flavor.
func (p *Plan) ComputeMode(mode EvalMode, out, lambda string, kind Kind, cols ...string) *Plan {
	return &Plan{kind: planCompute, child: p, mode: mode, out: out, lambda: lambda, outKind: kind, cols: cols}
}

// Aggregate groups by the key columns (nil for a single global group) and
// computes the given aggregates.
func (p *Plan) Aggregate(keys []string, aggs ...Agg) *Plan {
	return &Plan{kind: planAggregate, child: p, keys: keys, aggs: aggs}
}

// Join hash-joins the plan (probe side) against build on probeKey =
// buildKey, carrying the named build-side payload columns. The build side
// is materialized and hashed once when the query opens; selective probes
// adaptively keep a Bloom filter in front of the hash table.
//
// Under WithParallelism(n) > 1 the join parallelizes on both sides: the
// build side is materialized and hashed over morsels into a partitioned
// table (worker-local partitions, no contention), and the probe side's
// worker pipelines each probe the shared read-only table. Build rows are
// stitched back in table order, so match lists — and therefore the join's
// output rows — are byte-identical to serial execution.
func (p *Plan) Join(build *Plan, probeKey, buildKey string, payload ...string) *Plan {
	return &Plan{kind: planJoin, child: p, buildSide: build, probeKey: probeKey, buildKey: buildKey, payload: payload}
}

// TopK keeps the first k rows of the plan's result ordered by the given
// columns. The sort is stable over the input order, which keeps the result
// deterministic under ties — parallel and serial executions emit identical
// bytes.
func (p *Plan) TopK(k int, by ...Order) *Plan {
	return &Plan{kind: planTopK, child: p, k: k, by: by}
}

// builder carries per-query instantiation state: the session's options, the
// granted worker count, the shared join tables of this query, and — when the
// session's device policy is not CPU-only — the placement machinery that
// wraps worker pipelines in DeviceExec.
type builder struct {
	s         *Session
	workers   int
	exchanges int // parallel structures instantiated (0 → the grant can be returned)
	shared    map[*Plan]*engine.SharedJoinTable

	placer *device.Placer            // adaptive policy: choose per morsel
	forced device.Device             // pinned policy: every morsel on this device
	rec    *engine.PlacementRecorder // non-nil → device placement is on

	pruned map[*Plan]TableSource   // scan leaf → store it should read
	views  []*colstore.PrunedTable // pruned views created for this query
}

// segment walks from p down through streaming stages — filters, computes and
// join probe sides — to a scan leaf. ok reports whether the walk reached a
// scan without crossing a pipeline breaker; stages is ordered top-down and
// may be empty when p itself is the scan.
func (p *Plan) segment() (stages []*Plan, scan *Plan, ok bool) {
	q := p
	for {
		switch q.kind {
		case planScan:
			return stages, q, true
		case planFilter, planCompute, planJoin:
			stages = append(stages, q)
			q = q.child
		default:
			return nil, nil, false
		}
	}
}

// build instantiates the subtree rooted at p. With more than one granted
// worker, the topmost streaming segment — a scan→filter/compute/probe chain
// — fans out across morsel-driven workers: under an aggregation it becomes a
// morsel-parallel aggregation (worker-local partitioned fold), otherwise a
// morsel-parallel exchange merging chunks back in table order. Join build
// sides are materialized once per query into shared read-only tables, hashed
// in parallel when workers are granted; build phases run during Open, before
// the probe streams, so the fan-out never exceeds the pool grant.
//
// Results are byte-identical at every worker count, float aggregates
// included: exchanges merge in table order, parallel aggregation folds every
// group's rows in table order, and when a grouped aggregation folds f64 sums
// the serial fallback disables pre-aggregation so both paths accumulate in
// exactly the same order.
func (p *Plan) build(b *builder) (engine.Operator, error) {
	switch p.kind {
	case planScan:
		sc, err := engine.NewScan(b.storeFor(p), p.columns...)
		if err != nil {
			return nil, err
		}
		if b.s.opt.chunkLen > 0 {
			sc.SetChunkLen(b.s.opt.chunkLen)
		}
		return sc, nil
	case planFilter, planCompute, planJoin:
		if op, ok, err := p.buildExchange(b); ok || err != nil {
			return op, err
		}
		child, err := p.child.build(b)
		if err != nil {
			return nil, err
		}
		if p.kind == planJoin {
			shared, err := b.sharedJoin(p)
			if err != nil {
				return nil, err
			}
			return engine.NewTableProbe(child, shared, p.probeKey, p.payload...)
		}
		return p.stageOn(b.s, child), nil
	case planAggregate:
		if b.workers > 1 && b.exchanges == 0 {
			if stages, scan, ok := p.child.segment(); ok {
				mk, err := b.pipeMaker(stages)
				if err != nil {
					return nil, err
				}
				pa, err := engine.NewParallelAgg(b.storeFor(scan), scan.columns, b.workers,
					b.placedMaker(mk, scan, stages), p.keys, p.aggs)
				if err != nil {
					return nil, err
				}
				if b.s.opt.chunkLen > 0 {
					pa.SetChunkLen(b.s.opt.chunkLen)
				}
				if b.s.opt.morselLen > 0 {
					pa.SetMorselLen(b.s.opt.morselLen)
				}
				b.exchanges++
				return pa, nil
			}
		}
		child, err := p.child.build(b)
		if err != nil {
			return nil, err
		}
		agg := engine.NewHashAgg(child, p.keys, p.aggs)
		if floatOrderSensitive(child.Schema(), p.aggs) {
			// f64 sums are order-sensitive: pre-aggregation builds partial-sum
			// trees whose bytes differ from the parallel fold. Disabling it
			// keeps WithParallelism(1) byte-identical to WithParallelism(n).
			agg.SetPreAgg(engine.PreAggOff)
		}
		return agg, nil
	case planTopK:
		child, err := p.child.build(b)
		if err != nil {
			return nil, err
		}
		return engine.NewTopK(child, p.k, p.by...)
	}
	panic("advm: unknown plan node")
}

// floatOrderSensitive reports whether any aggregate folds f64 sums, whose
// result bytes depend on accumulation order. An unresolved child schema is
// treated as sensitive (the conservative choice).
func floatOrderSensitive(child []engine.ColInfo, aggs []Agg) bool {
	for _, a := range aggs {
		if a.Func != AggSum && a.Func != AggAvg {
			continue
		}
		if len(child) == 0 {
			return true
		}
		for _, ci := range child {
			if ci.Name == a.Col && ci.Kind == F64 {
				return true
			}
		}
	}
	return false
}

// stageOn instantiates a filter/compute node on top of child with the
// session's JIT settings.
func (p *Plan) stageOn(s *Session, child engine.Operator) engine.Operator {
	switch p.kind {
	case planFilter:
		return engine.NewFilter(child, p.lambda, p.col).
			SetMode(p.mode).SetJIT(s.opt.jitEnabled, s.opt.cfg.JIT)
	case planCompute:
		return engine.NewCompute(child, p.out, p.lambda, p.outKind, p.cols...).
			SetMode(p.mode).SetJIT(s.opt.jitEnabled, s.opt.cfg.JIT)
	}
	panic("advm: not a pipeline stage")
}

// pipeMaker returns a function instantiating a worker-private copy of the
// given top-down stage list over a scan leaf. Shared join tables are created
// once, up front, so every worker probes the same build.
func (b *builder) pipeMaker(stages []*Plan) (func(int, engine.Operator) (engine.Operator, error), error) {
	shared := make([]*engine.SharedJoinTable, len(stages))
	for i, st := range stages {
		if st.kind == planJoin {
			s, err := b.sharedJoin(st)
			if err != nil {
				return nil, err
			}
			shared[i] = s
		}
	}
	return func(_ int, leaf engine.Operator) (engine.Operator, error) {
		op := leaf
		for i := len(stages) - 1; i >= 0; i-- {
			st := stages[i]
			if st.kind == planJoin {
				tp, err := engine.NewTableProbe(op, shared[i], st.probeKey, st.payload...)
				if err != nil {
					return nil, err
				}
				op = tp
				continue
			}
			op = st.stageOn(b.s, op)
		}
		return op, nil
	}, nil
}

// sharedJoin returns the query's shared build-side table for a join node,
// creating it on first use. With granted workers and a streaming build side
// the table is materialized and hashed morsel-parallel at Open; otherwise it
// is collected serially. Either way the table is built exactly once per
// query and probed read-only by every worker.
func (b *builder) sharedJoin(p *Plan) (*engine.SharedJoinTable, error) {
	if s, ok := b.shared[p]; ok {
		return s, nil
	}
	var s *engine.SharedJoinTable
	if b.workers > 1 {
		if stages, scan, ok := p.buildSide.segment(); ok {
			mk, err := b.pipeMaker(stages)
			if err != nil {
				return nil, err
			}
			// One scratch pipeline resolves the build side's static schema.
			scratch, err := engine.NewPartScan(b.storeFor(scan), scan.columns...)
			if err != nil {
				return nil, err
			}
			probe, err := mk(0, scratch)
			if err != nil {
				return nil, err
			}
			store, columns := b.storeFor(scan), scan.columns
			workers, chunkLen, morselLen, key := b.workers, b.s.opt.chunkLen, b.s.opt.morselLen, p.buildKey
			s = engine.NewSharedJoinTable(probe.Schema(), func(ctx context.Context) (*engine.JoinTable, error) {
				return engine.BuildJoinTableParallel(ctx, store, columns, workers, chunkLen, morselLen, key, mk)
			})
			b.exchanges++
		}
	}
	if s == nil {
		op, err := p.buildSide.build(b)
		if err != nil {
			return nil, err
		}
		key := p.buildKey
		s = engine.NewSharedJoinTable(op.Schema(), func(ctx context.Context) (*engine.JoinTable, error) {
			rows, err := engine.Collect(ctx, op)
			if err != nil {
				return nil, err
			}
			return engine.NewJoinTable(rows, key)
		})
	}
	if b.shared == nil {
		b.shared = map[*Plan]*engine.SharedJoinTable{}
	}
	b.shared[p] = s
	return s, nil
}

// buildExchange instantiates the streaming segment rooted at p — filters,
// computes and join probes over a table scan — as a morsel-parallel
// exchange: every worker gets a private copy of the segment over a windowed
// scan, and the exchange merges the workers' chunks back in table order. A
// bare scan is not fanned out (copying rows across workers gains nothing);
// such subtrees report ok=false and build serially.
func (p *Plan) buildExchange(b *builder) (engine.Operator, bool, error) {
	if b.workers <= 1 || b.exchanges > 0 {
		return nil, false, nil
	}
	stages, scan, ok := p.segment()
	if !ok || len(stages) == 0 {
		return nil, false, nil
	}
	b.exchanges++ // claim before nested sharedJoin builds count theirs
	mk, err := b.pipeMaker(stages)
	if err != nil {
		return nil, false, err
	}
	ex, err := engine.NewExchange(b.storeFor(scan), scan.columns, b.workers, b.placedMaker(mk, scan, stages))
	if err != nil {
		return nil, false, err
	}
	if b.s.opt.chunkLen > 0 {
		ex.SetChunkLen(b.s.opt.chunkLen)
	}
	if b.s.opt.morselLen > 0 {
		ex.SetMorselLen(b.s.opt.morselLen)
	}
	return ex, true, nil
}

// placedMaker wraps a worker-pipeline maker so every worker's pipeline top
// is a DeviceExec carrying the segment's kernel spec — the hook through
// which the exchange dispatch loops place each morsel on a device. With the
// CPU-only policy (no recorder) the maker passes through untouched and the
// query runs exactly as before.
func (b *builder) placedMaker(mk func(int, engine.Operator) (engine.Operator, error),
	scan *Plan, stages []*Plan) func(int, engine.Operator) (engine.Operator, error) {
	if b.rec == nil {
		return mk
	}
	spec := kernelSpec(b.storeFor(scan), scan, stages)
	return func(w int, leaf engine.Operator) (engine.Operator, error) {
		op, err := mk(w, leaf)
		if err != nil {
			return nil, err
		}
		return engine.NewDeviceExec(op, b.placer, b.forced, spec, b.rec), nil
	}
}

// kernelSpec derives the per-morsel cost template of a streaming segment
// from the plan: input volume from the scanned columns' widths, residency
// keys from the table's identity (so repeated queries over the same table
// hit the device's residency cache), and arithmetic intensity from the
// stages stacked on the scan. The identity includes the row count, so a
// table that grew since its columns became resident re-transfers instead
// of reading stale residency (and a recycled allocation only aliases an
// old key if it also matches the old size).
//
// Stored tables refine both halves: the residency key unwraps pruned views
// to the underlying table (pruning never changes which bytes are resident),
// and the per-row transfer cost uses the real compressed segment bytes on
// disk instead of the decoded element width.
func kernelSpec(store TableSource, scan *Plan, stages []*Plan) engine.KernelSpec {
	sch := store.Schema()
	cols := scan.columns
	if len(cols) == 0 {
		cols = sch.Names
	}
	ident := any(store)
	if base, ok := store.(interface{ Base() *colstore.Table }); ok {
		ident = base.Base()
	}
	rows := store.Rows()
	key := fmt.Sprintf("tbl%p/r%d", ident, rows)
	spec := engine.KernelSpec{Name: "segment@" + key}
	sized, _ := store.(interface{ ColumnBytes(string) int64 })
	for _, c := range cols {
		spec.Inputs = append(spec.Inputs, key+"."+c)
		if i := sch.ColumnIndex(c); i >= 0 {
			w := sch.Kinds[i].Width()
			if sized != nil && rows > 0 {
				if bts := sized.ColumnBytes(c); bts > 0 {
					if w = int((bts + int64(rows) - 1) / int64(rows)); w < 1 {
						w = 1
					}
				}
			}
			spec.RowBytes += w
		}
	}
	// Per-row cost approximation: a scan touches every element once; each
	// filter evaluates a predicate (≈2 ops), each compute its arithmetic
	// (≈2 ops + one per extra input), each probe hashes and chases (≈6).
	ops := 1.0
	for _, st := range stages {
		switch st.kind {
		case planFilter:
			ops += 2
		case planCompute:
			ops += 2 + float64(len(st.cols))
		case planJoin:
			ops += 6
		}
	}
	spec.OpsPerElem = ops
	spec.OutRowBytes = spec.RowBytes
	return spec
}
