package advm

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/colstore"
	"repro/internal/engine"
	"repro/internal/fused"
	"repro/internal/qtrace"
	"repro/internal/vector"
)

// Rows is a streaming cursor over a query's result, in the spirit of
// database/sql: the pipeline produces chunks lazily as the cursor advances,
// so callers consume arbitrarily large results incrementally instead of
// materializing them.
//
//	rows, err := sess.Query(ctx, plan)
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//	        var k int64
//	        if err := rows.Scan(&k); err != nil { ... }
//	}
//	if err := rows.Err(); err != nil { ... }
//
// Rows is not safe for concurrent use.
type Rows struct {
	ctx    context.Context
	cancel context.CancelFunc // cancels the query-private context on close
	op     engine.Operator
	schema []engine.ColInfo
	sess   *Session
	rec    *engine.PlacementRecorder // non-nil when device placement is on
	views  []*colstore.PrunedTable   // pruned stored-table views of this query
	mops   []morselStatsSource       // morsel-dispatching operators of this query

	tier     string          // tier this query executed at ("" = tiering off)
	fuse     *fused.Counters // fused telemetry (non-nil when at least warm)
	fusedRun bool            // fused loops were mounted for this query
	entry    *tierEntry      // engine-wide hotness entry of the plan

	trace  *qtrace.Trace // execution trace (nil = tracing off)
	troot  *qtrace.Span  // query root span
	tviews []tracedView  // scan spans to stamp with segment skip counts

	chunk *vector.Chunk
	cols  []*vector.Vector // chunk columns resolved in schema order
	sel   vector.Sel       // current chunk's selection (nil = all rows)
	idx   int              // next row ordinal within the chunk
	row   int              // current physical row, valid after Next
	done  bool
	err   error
}

// Columns returns the result column names in schema order.
func (r *Rows) Columns() []string {
	names := make([]string, len(r.schema))
	for i, ci := range r.schema {
		names[i] = ci.Name
	}
	return names
}

// ColumnKinds returns the result column element kinds in schema order.
func (r *Rows) ColumnKinds() []Kind {
	kinds := make([]Kind, len(r.schema))
	for i, ci := range r.schema {
		kinds[i] = ci.Kind
	}
	return kinds
}

// Next advances to the next result row, fetching the next chunk from the
// pipeline when the current one is exhausted. It returns false at the end
// of the stream or on error; consult Err to distinguish.
func (r *Rows) Next() bool {
	if r.done || r.err != nil {
		return false
	}
	for {
		if r.chunk != nil {
			if r.sel != nil {
				if r.idx < len(r.sel) {
					r.row = int(r.sel[r.idx])
					r.idx++
					return true
				}
			} else if r.idx < r.chunk.Len() {
				r.row = r.idx
				r.idx++
				return true
			}
			r.chunk = nil
		}
		chunk, err := r.op.Next(r.ctx)
		if err != nil {
			r.err = classifyCtx(r.ctx, err)
			r.close()
			return false
		}
		if chunk == nil {
			r.close()
			return false
		}
		r.setChunk(chunk)
	}
}

func (r *Rows) setChunk(c *vector.Chunk) {
	r.chunk = c
	r.sel = c.Sel()
	r.idx = 0
	r.cols = r.cols[:0]
	for _, ci := range r.schema {
		r.cols = append(r.cols, c.MustColumn(ci.Name))
	}
}

// Scan copies the current row into dest, one destination per result column
// in schema order. Supported destinations: *bool, *int, *int64, *float64,
// *string, *Value, *any; nil skips a column. Integer columns of any width
// scan into *int64/*int; every kind scans into *any and *Value.
func (r *Rows) Scan(dest ...any) error {
	if r.chunk == nil {
		return errors.New("advm: Scan called without a successful Next")
	}
	if len(dest) != len(r.schema) {
		return fmt.Errorf("advm: Scan got %d destinations for %d columns", len(dest), len(r.schema))
	}
	for i, d := range dest {
		if d == nil {
			continue
		}
		v := r.cols[i].Get(r.row)
		if err := assign(d, v, r.schema[i].Name); err != nil {
			return err
		}
	}
	return nil
}

func assign(dest any, v Value, col string) error {
	switch d := dest.(type) {
	case *Value:
		*d = v
	case *any:
		switch v.Kind {
		case vector.Bool:
			*d = v.B
		case vector.F64:
			*d = v.F
		case vector.Str:
			*d = v.S
		default:
			*d = v.I
		}
	case *bool:
		if v.Kind != vector.Bool {
			return convErr(col, v, "bool")
		}
		*d = v.B
	case *int64:
		if !v.Kind.IsInteger() {
			return convErr(col, v, "int64")
		}
		*d = v.I
	case *int:
		if !v.Kind.IsInteger() {
			return convErr(col, v, "int")
		}
		if int64(int(v.I)) != v.I {
			return fmt.Errorf("advm: column %q value %d overflows int on this platform", col, v.I)
		}
		*d = int(v.I)
	case *float64:
		switch {
		case v.Kind == vector.F64:
			*d = v.F
		case v.Kind.IsInteger():
			*d = float64(v.I)
		default:
			return convErr(col, v, "float64")
		}
	case *string:
		if v.Kind != vector.Str {
			return convErr(col, v, "string")
		}
		*d = v.S
	default:
		return fmt.Errorf("advm: unsupported Scan destination %T for column %q", dest, col)
	}
	return nil
}

func convErr(col string, v Value, want string) error {
	return fmt.Errorf("advm: column %q holds %v, not scannable into *%s", col, v.Kind, want)
}

// Count drains the stream from the cursor's current position and returns
// the number of remaining result rows, counting chunk-at-a-time without
// per-row cursor work — use it instead of a Next loop when only the
// cardinality matters. The cursor is closed afterwards.
func (r *Rows) Count() (int64, error) {
	if r.done || r.err != nil {
		return 0, r.err
	}
	var n int64
	if r.chunk != nil {
		if r.sel != nil {
			n += int64(len(r.sel) - r.idx)
		} else {
			n += int64(r.chunk.Len() - r.idx)
		}
		r.chunk = nil
	}
	for {
		chunk, err := r.op.Next(r.ctx)
		if err != nil {
			r.err = classifyCtx(r.ctx, err)
			r.close()
			return n, r.err
		}
		if chunk == nil {
			r.close()
			return n, nil
		}
		n += int64(chunk.SelectedLen())
	}
}

// Err returns the error, if any, that ended iteration. A cancelled context
// surfaces here as ErrCancelled.
func (r *Rows) Err() error { return r.err }

// Placements returns this query's morsel placement counts per device
// ("cpu", "gpu") so far — live while the stream is being consumed, final
// once it is drained or closed. It returns nil when the query runs without
// device placement (CPU-only policy, or nothing fanned out).
func (r *Rows) Placements() map[string]int64 {
	if r.rec == nil {
		return nil
	}
	return r.rec.Counts()
}

// ScanStats reports the zone-map pruning outcome of this query over its
// disk-backed tables: how many distinct stored segments its scans read and
// how many they skipped without touching. Live while the stream is being
// consumed, final once it is drained or closed; both are zero when the query
// reads no prunable stored table (or pruning is off).
func (r *Rows) ScanStats() (segmentsScanned, segmentsSkipped int64) {
	for _, v := range r.views {
		sc, sk := v.Stats()
		segmentsScanned += sc
		segmentsSkipped += sk
	}
	return segmentsScanned, segmentsSkipped
}

// Steals reports how many morsels of this query were executed by a worker
// other than the one that initially owned them — the work-stealing
// scheduler's rebalancing activity. Valid once the stream is drained or
// closed; zero for serial queries, balanced loads that never needed to
// steal, or while the stream is still being consumed. Steal counts are a
// scheduling observation only: result bytes are identical whether or not
// any morsel migrated.
func (r *Rows) Steals() int64 {
	var n int64
	for _, op := range r.mops {
		n += op.MorselStats().Steals()
	}
	return n
}

// Tier reports the tier this query executed at under tiered execution —
// "cold", "warm" (segment compiled, still interpreted) or "hot" (fused loops
// mounted where the plan allows). It returns "" when tiered execution is off.
func (r *Rows) Tier() string { return r.tier }

// Fused reports whether fused loops were mounted for this query (hot tier
// with a fusable segment). The result bytes are identical either way.
func (r *Rows) Fused() bool { return r.fusedRun }

// Deopts reports how many fused loops of this query hit a guard failure and
// reverted to the interpreter mid-stream. Live while the stream is being
// consumed, final once drained or closed; always zero below the hot tier.
func (r *Rows) Deopts() int64 {
	if r.fuse == nil {
		return 0
	}
	return r.fuse.Deopts.Load()
}

// Close releases the pipeline's resources: it cancels the query's private
// context — so in-flight parallel workers abort at their next chunk boundary
// instead of draining their current morsels — then tears the pipeline down,
// returning pooled workers. It is idempotent and implied by exhausting Next.
func (r *Rows) Close() error {
	r.close()
	return nil
}

func (r *Rows) close() {
	if r.done {
		return
	}
	r.done = true
	r.chunk = nil
	if r.cancel != nil {
		// Cancel before Close: Exchange.Close waits for in-flight workers,
		// and cancellation is what makes them exit promptly mid-morsel.
		r.cancel()
	}
	r.op.Close()
	if r.rec != nil && r.sess != nil {
		r.sess.mergeMorselPlacements(r.rec)
	}
	if len(r.views) > 0 && r.sess != nil {
		// close runs at most once (guarded by r.done), so the session's
		// lifetime counters absorb each query's totals exactly once.
		sc, sk := r.ScanStats()
		r.sess.segmentsScanned.Add(sc)
		r.sess.segmentsSkipped.Add(sk)
	}
	if len(r.mops) > 0 && r.sess != nil {
		// Dispatch stats are stored by the operators when their run
		// finishes; op.Close above has already joined the workers.
		if st := r.Steals(); st > 0 {
			r.sess.morselSteals.Add(st)
		}
	}
	if r.fuse != nil && r.sess != nil {
		if d := r.fuse.Deopts.Load(); d > 0 {
			r.sess.fusedDeopts.Add(d)
			r.sess.eng.fusedDeopts.Add(d)
			if r.entry != nil {
				r.entry.deopts.Add(d)
			}
		}
		if r.fusedRun {
			r.sess.fusedQueries.Add(1)
			r.sess.eng.fusedQueries.Add(1)
			if r.entry != nil {
				r.entry.fusedRuns.Add(1)
			}
		}
	}
	if r.trace != nil {
		// All workers have joined (op.Close above), so the span counters
		// are quiescent; stamp the summary attributes and end every span.
		r.finishTrace()
	}
}
