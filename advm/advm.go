// Package advm is the public embedding API of the adaptive virtual machine:
// a session-based, context-aware surface over the paper's architecture
// (ICDE'18, "Designing an Adaptive VM That Combines Vectorized and JIT
// Execution on Heterogeneous Hardware").
//
// A Session is a reusable, concurrency-safe handle over one compiled
// program (or over ad-hoc relational queries). Underneath it, the VM starts
// out interpreting the normalized program with pre-compiled vectorized
// kernels, profiles it, greedily partitions hot dependency graphs into
// fragments, JIT-compiles them into fused traces, injects the traces into
// the running interpreter, and micro-adaptively reverts traces that lose —
// all while the embedder holds one stable handle:
//
//	sess, err := advm.Compile(src, map[string]advm.Kind{"data": advm.I64},
//	        advm.WithHotThresholds(8, 200*time.Microsecond))
//	...
//	err = sess.Run(ctx, map[string]*advm.Vector{"data": advm.FromI64(xs)})
//
// Execution honors ctx at chunk boundaries, so cancellation and deadlines
// cut a long run short within one chunk, reported as ErrCancelled.
//
// The relational layer is reached through Session.Query, which streams
// results chunk-at-a-time behind a database/sql-style cursor:
//
//	rows, err := sess.Query(ctx, advm.Scan(table, "k", "v").
//	        Filter(`(\k -> k < 10)`, "k").
//	        Compute("v2", `(\v -> v * v)`, advm.I64, "v"))
//	for rows.Next() {
//	        var k, v2 int64
//	        err = rows.Scan(&k, nil, &v2)
//	}
//	err = rows.Err()
//
// Session.Stats exposes the observability surface: the Figure-1 state
// machine transition log, the per-instruction profile, injected and
// reverted trace counts, and device placement decisions.
package advm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/device"
	"repro/internal/dsl"
	"repro/internal/engine"
	"repro/internal/gpu"
	"repro/internal/nir"
	"repro/internal/primitive"
	"repro/internal/vm"
)

// Session is a handle over one adaptive VM (when compiled from a program)
// and a factory for streaming relational queries. It is safe for concurrent
// use: every Run gets a fresh environment, every Query gets fresh
// operators, while profiling data and injected traces persist inside the
// session and keep improving later executions.
type Session struct {
	opt  options
	src  string
	prog *nir.Program
	vm   *vm.VM

	cpu    *device.CPU
	gpu    *gpu.Device
	placer *device.Placer

	runs    atomic.Int64
	queries atomic.Int64

	mu         sync.Mutex
	placements []Placement
}

// NewSession creates a query-only session (no compiled program): Run errors
// until a program is compiled, Query works immediately.
func NewSession(opts ...Option) (*Session, error) {
	o := defaultOptions()
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, tagged(ErrBind, err)
		}
	}
	o.finalize()
	return newSession(o), nil
}

func newSession(o options) *Session {
	s := &Session{opt: o, cpu: device.NewCPU()}
	if o.device != DeviceCPU {
		s.gpu = gpu.New(gpu.DefaultConfig())
		s.placer = device.NewPlacer(s.cpu, s.gpu)
	}
	return s
}

// Compile parses, checks and normalizes a DSL program and prepares an
// adaptive VM for it. externals maps every external array name used by
// read/write/gather/scatter to its element kind. Failures are classified
// under ErrCompile.
func Compile(src string, externals map[string]Kind, opts ...Option) (*Session, error) {
	o := defaultOptions()
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, tagged(ErrBind, err)
		}
	}
	o.finalize()
	ast, err := dsl.Parse(src)
	if err != nil {
		return nil, tagged(ErrCompile, err)
	}
	ir, err := nir.Normalize(ast, externals)
	if err != nil {
		return nil, tagged(ErrCompile, err)
	}
	s := newSession(o)
	s.src = src
	s.prog = ir
	s.vm = vm.New(ir, o.cfg)
	return s, nil
}

// MustCompile is Compile for tests and examples; it panics on error.
func MustCompile(src string, externals map[string]Kind, opts ...Option) *Session {
	s, err := Compile(src, externals, opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// Run executes the compiled program once against the given external arrays.
// The context is honored at chunk boundaries: a cancelled or expired ctx
// aborts the run within one chunk and Run returns an error matching
// ErrCancelled. Binding problems (missing or wrongly-typed arrays) are
// classified under ErrBind.
//
// Run may be called concurrently; profiling and compiled traces are shared
// across calls.
func (s *Session) Run(ctx context.Context, bindings map[string]*Vector) error {
	if s.vm == nil {
		return tagged(ErrBind, errors.New("session has no compiled program (use advm.Compile)"))
	}
	env, err := s.vm.NewEnv(bindings)
	if err != nil {
		return tagged(ErrBind, err)
	}
	if err := s.vm.RunContext(ctx, env); err != nil {
		return classifyCtx(ctx, err)
	}
	// Record only completed executions, keeping Stats.Placements consistent
	// with Stats.Runs.
	s.recordPlacement(bindings)
	s.runs.Add(1)
	return nil
}

// classifyCtx tags errors caused by ctx as ErrCancelled and passes the rest
// through.
func classifyCtx(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if ctxErr := ctx.Err(); ctxErr != nil && errors.Is(err, ctxErr) {
		return tagged(ErrCancelled, err)
	}
	return err
}

// Query instantiates the plan's operator pipeline and returns a streaming
// cursor over its result. The pipeline executes lazily, chunk-at-a-time, as
// the caller advances the cursor; nothing is materialized beyond what the
// plan's own pipeline breakers (joins, aggregations) require. Expression
// errors are classified under ErrCompile, wiring errors under ErrBind, and
// a cancelled ctx — checked at every chunk — surfaces as ErrCancelled from
// Rows.Err.
//
// The returned Rows must be used from a single goroutine; the Session
// itself may serve many concurrent Query calls.
func (s *Session) Query(ctx context.Context, plan *Plan) (*Rows, error) {
	if plan == nil {
		return nil, tagged(ErrBind, errors.New("nil plan"))
	}
	op, err := plan.build(s)
	if err != nil {
		return nil, tagged(ErrBind, err)
	}
	if err := op.Open(ctx); err != nil {
		op.Close()
		if errors.Is(err, engine.ErrExpr) {
			return nil, tagged(ErrCompile, err)
		}
		if c := classifyCtx(ctx, err); c != err {
			return nil, c
		}
		return nil, tagged(ErrBind, err)
	}
	s.queries.Add(1)
	return &Rows{ctx: ctx, op: op, schema: op.Schema()}, nil
}

// IR renders the normalized intermediate representation of the compiled
// program ("" when the session has none).
func (s *Session) IR() string {
	if s.prog == nil {
		return ""
	}
	return s.prog.String()
}

// Source returns the DSL source the session was compiled from.
func (s *Session) Source() string { return s.src }

// PlanReport renders the current execution plan of every program segment,
// showing which steps are interpreted and which run injected traces.
func (s *Session) PlanReport() string {
	if s.vm == nil {
		return ""
	}
	out := ""
	for _, seg := range s.vm.Interp.Segments {
		out += fmt.Sprintf("segment %d:\n", seg.ID)
		for _, step := range s.vm.Interp.Plan(seg.ID).Steps {
			out += "  " + step.Describe() + "\n"
		}
	}
	return out
}

// KernelCount reports the number of pre-compiled vectorized kernels
// available to the interpreter ("generated and compiled during startup").
func KernelCount() int { return primitive.Count() }

// recordPlacement runs the device-placement model for one program execution
// and records the decision (observable via Stats). With the default
// DeviceCPU policy this is a no-op beyond bookkeeping.
func (s *Session) recordPlacement(bindings map[string]*Vector) {
	elems, bytes := 0, 0
	names := make([]string, 0, len(bindings))
	for name, v := range bindings {
		if v == nil {
			continue
		}
		if v.Len() > elems {
			elems = v.Len()
		}
		bytes += v.Len() * v.Kind().Width()
		names = append(names, name)
	}
	ops := 1
	if s.prog != nil {
		ops = s.prog.NumInstrs
	}
	k := device.Kernel{
		Name: "session-run", Elems: elems,
		BytesIn: bytes, BytesOut: bytes,
		OpsPerElem: float64(ops), Inputs: names,
	}
	chosen := "cpu"
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.opt.device {
	case DeviceGPU:
		chosen = s.gpu.Name()
	case DeviceAuto:
		chosen = s.placer.Choose(k).Name()
	}
	s.placements = append(s.placements, Placement{
		Elems: elems, Bytes: bytes, Device: chosen,
	})
	if len(s.placements) > maxPlacements {
		s.placements = append(s.placements[:0], s.placements[len(s.placements)-maxPlacements:]...)
	}
}

// maxPlacements bounds the placement log of a long-lived session; Stats
// reports the most recent decisions.
const maxPlacements = 256
