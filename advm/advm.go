// Package advm is the public embedding API of the adaptive virtual machine:
// an engine/session surface over the paper's architecture (ICDE'18,
// "Designing an Adaptive VM That Combines Vectorized and JIT Execution on
// Heterogeneous Hardware").
//
// An Engine is the process-wide backend: it owns the worker pool for
// morsel-parallel query execution, the device placer, and the
// prepared-statement cache through which concurrent sessions share one
// adaptive VM per distinct program — and therefore share its profile,
// injected JIT traces and micro-adaptive decisions:
//
//	eng, err := advm.NewEngine(advm.WithParallelism(8))
//	defer eng.Close()
//	prep, err := eng.Prepare(src, map[string]advm.Kind{"data": advm.I64})
//	sess, err := eng.Session()
//	err = sess.RunPrepared(ctx, prep, map[string]*advm.Vector{"data": advm.FromI64(xs)})
//
// A Session is a lightweight, concurrency-safe handle: every Run gets a
// fresh environment, every Query gets fresh operators. Standalone sessions
// (Compile, NewSession) wrap a private engine, so small embedders never see
// the Engine type:
//
//	sess, err := advm.Compile(src, map[string]advm.Kind{"data": advm.I64},
//	        advm.WithHotThresholds(8, 200*time.Microsecond))
//	...
//	err = sess.Run(ctx, map[string]*advm.Vector{"data": advm.FromI64(xs)})
//
// Underneath either surface, the VM starts out interpreting the normalized
// program with pre-compiled vectorized kernels, profiles it, greedily
// partitions hot dependency graphs into fragments, JIT-compiles them into
// fused traces, injects the traces into the running interpreter, and
// micro-adaptively reverts traces that lose. Execution honors ctx at chunk
// boundaries, so cancellation and deadlines cut a long run short within one
// chunk, reported as ErrCancelled.
//
// The relational layer is reached through Session.Query, which streams
// results chunk-at-a-time behind a database/sql-style cursor:
//
//	rows, err := sess.Query(ctx, advm.Scan(table, "k", "v").
//	        Filter(`(\k -> k < 10)`, "k").
//	        Compute("v2", `(\v -> v * v)`, advm.I64, "v"))
//	for rows.Next() {
//	        var k, v2 int64
//	        err = rows.Scan(&k, nil, &v2)
//	}
//	err = rows.Err()
//
// With WithParallelism(n), whole plan trees execute across n workers over
// work-stealing morsel dispatch: scan→filter/compute chains fan out behind
// an order-preserving exchange, hash joins build partitioned shared tables
// in parallel and probe them from every worker, and grouped aggregations
// pre-aggregate per morsel and merge in morsel sequence order. Query output
// is byte-identical to serial execution at every worker count and device
// policy; only the morsel length (WithMorselLen), which pins how
// floating-point accumulation is blocked, is part of result identity.
//
// Session.Stats and Engine.Stats expose the observability surface: the
// Figure-1 state machine transition log, the per-instruction profile,
// injected and reverted trace counts, device placement decisions, and the
// prepared-statement cache and worker pool counters.
package advm

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/device"
	"repro/internal/dsl"
	"repro/internal/engine"
	"repro/internal/fused"
	"repro/internal/nir"
	"repro/internal/primitive"
	"repro/internal/vm"
)

// Session is a handle over one adaptive VM (when compiled from a program)
// and a factory for streaming relational queries. It is safe for concurrent
// use: every Run gets a fresh environment, every Query gets fresh
// operators, while profiling data and injected traces persist inside the
// session and keep improving later executions.
//
// Sessions created by Engine.Session share that engine's worker pool,
// prepared-statement cache and device placer; sessions created by Compile
// or NewSession own a private engine (closed with the session).
type Session struct {
	eng   *Engine
	owned bool // Close also closes the (private) engine
	opt   options

	src  string
	prog *nir.Program
	vm   *vm.VM

	runs            atomic.Int64
	queries         atomic.Int64
	segmentsScanned atomic.Int64
	segmentsSkipped atomic.Int64
	morselSteals    atomic.Int64
	fusedQueries    atomic.Int64
	fusedDeopts     atomic.Int64
	closed          atomic.Bool

	mu               sync.Mutex
	placements       []Placement
	morselPlacements map[string]int64
	morselTransfer   time.Duration
}

// NewSession creates a standalone query-only session (no compiled program):
// Run errors until a program is compiled, Query works immediately. The
// session wraps a private engine configured by opts.
func NewSession(opts ...Option) (*Session, error) {
	eng, err := NewEngine(opts...)
	if err != nil {
		return nil, err
	}
	eng.sessions.Add(1)
	return &Session{eng: eng, owned: true, opt: eng.opt}, nil
}

// Compile parses, checks and normalizes a DSL program and prepares an
// adaptive VM for it, owned by a standalone session. externals maps every
// external array name used by read/write/gather/scatter to its element
// kind. Failures are classified under ErrCompile.
//
// The VM is private to the session: repeated Compile calls with the same
// source get independent VMs. To share one VM (and its adaptivity) across
// sessions, use Engine.Prepare.
func Compile(src string, externals map[string]Kind, opts ...Option) (*Session, error) {
	eng, err := NewEngine(opts...)
	if err != nil {
		return nil, err
	}
	ast, err := dsl.Parse(src)
	if err != nil {
		return nil, tagged(ErrCompile, err)
	}
	ir, err := nir.Normalize(ast, externals)
	if err != nil {
		return nil, tagged(ErrCompile, err)
	}
	eng.sessions.Add(1)
	return &Session{
		eng: eng, owned: true, opt: eng.opt,
		src: src, prog: ir, vm: vm.New(ir, eng.opt.cfg),
	}, nil
}

// MustCompile is Compile for tests and examples; it panics on error.
func MustCompile(src string, externals map[string]Kind, opts ...Option) *Session {
	s, err := Compile(src, externals, opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// Engine returns the engine backing the session.
func (s *Session) Engine() *Engine { return s.eng }

// checkOpen classifies calls on closed sessions/engines under ErrClosed.
func (s *Session) checkOpen() error {
	if s.closed.Load() {
		return errClosed("session")
	}
	if s.eng.closed.Load() {
		return errClosed("engine")
	}
	return nil
}

// Close releases the session: subsequent Run, RunPrepared and Query calls
// return an error matching ErrClosed. Closing a standalone session
// (Compile, NewSession) also closes its private engine and thereby its
// worker pool; sessions handed out by Engine.Session leave the shared
// engine open. Close is idempotent and does not interrupt executions
// already in flight.
func (s *Session) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	if s.owned {
		return s.eng.Close()
	}
	return nil
}

// Prepare compiles src through the session's engine, sharing the
// engine-wide prepared-statement cache (see Engine.Prepare).
func (s *Session) Prepare(src string, externals map[string]Kind) (*Prepared, error) {
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	return s.eng.Prepare(src, externals)
}

// OpenTable opens the named disk-backed stored table: with WithTableDir the
// name resolves below that root, otherwise it is used as the colstore
// directory path directly. The table is cached engine-wide (see
// Engine.OpenTable) and is a TableSource, so it plugs straight into Scan:
//
//	sess, _ := advm.NewSession(advm.WithTableDir("testdata/tpch-sf1"))
//	lineitem, _ := sess.OpenTable("lineitem")
//	rows, _ := sess.Query(ctx, advm.Scan(lineitem, "l_shipdate", "l_quantity").
//	        Filter(`(\d -> d < 2400)`, "l_shipdate"))
func (s *Session) OpenTable(name string) (*StoredTable, error) {
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	dir := name
	if s.opt.tableDir != "" {
		dir = filepath.Join(s.opt.tableDir, name)
	}
	return s.eng.OpenTable(dir)
}

// Run executes the compiled program once against the given external arrays.
// The context is honored at chunk boundaries: a cancelled or expired ctx
// aborts the run within one chunk and Run returns an error matching
// ErrCancelled. Binding problems (missing or wrongly-typed arrays) are
// classified under ErrBind.
//
// Run may be called concurrently; profiling and compiled traces are shared
// across calls.
func (s *Session) Run(ctx context.Context, bindings map[string]*Vector) error {
	if err := s.checkOpen(); err != nil {
		return err
	}
	if s.vm == nil {
		return tagged(ErrBind, errors.New("session has no compiled program (use advm.Compile or Engine.Prepare)"))
	}
	env, err := s.vm.NewEnv(bindings)
	if err != nil {
		return tagged(ErrBind, err)
	}
	if err := s.vm.RunContext(ctx, env); err != nil {
		return classifyCtx(ctx, err)
	}
	// Record only completed executions, keeping Stats.Placements consistent
	// with Stats.Runs.
	s.recordPlacement(s.prog, bindings)
	s.runs.Add(1)
	return nil
}

// RunPrepared executes a prepared program within the session: semantics
// match Prepared.Run, plus the execution is counted in the session's Stats
// and placed by the session's device policy.
func (s *Session) RunPrepared(ctx context.Context, p *Prepared, bindings map[string]*Vector) error {
	if err := s.checkOpen(); err != nil {
		return err
	}
	if p == nil {
		return tagged(ErrBind, errors.New("nil prepared program"))
	}
	if err := p.Run(ctx, bindings); err != nil {
		return err
	}
	s.recordPlacement(p.entry.prog, bindings)
	s.runs.Add(1)
	return nil
}

// classifyCtx tags errors caused by ctx as ErrCancelled and passes the rest
// through.
func classifyCtx(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if ctxErr := ctx.Err(); ctxErr != nil && errors.Is(err, ctxErr) {
		return tagged(ErrCancelled, err)
	}
	return err
}

// Query instantiates the plan's operator pipeline and returns a streaming
// cursor over its result. The pipeline executes lazily, chunk-at-a-time, as
// the caller advances the cursor; nothing is materialized beyond what the
// plan's own pipeline breakers (joins, aggregations) require. Expression
// errors are classified under ErrCompile, wiring errors under ErrBind, and
// a cancelled ctx — checked at every chunk — surfaces as ErrCancelled from
// Rows.Err.
//
// With WithParallelism(n) > 1, the plan's streaming segments — scans with
// their filters, computes and join probes — execute across up to n workers
// drawn from the engine's pool (fewer when the pool is contended), join
// build sides hash in parallel into shared tables, and grouped aggregations
// fold worker-locally; everything merges back deterministically, so results
// are byte-identical to serial execution. The workers are released when the
// cursor is closed or exhausted.
//
// The returned Rows must be used from a single goroutine; the Session
// itself may serve many concurrent Query calls.
func (s *Session) Query(ctx context.Context, plan *Plan) (*Rows, error) {
	return s.QueryTraced(ctx, plan, s.opt.tracing)
}

// QueryTraced is Query with an explicit trace level for this one query,
// overriding the session's WithTracing default. With TraceOps and above the
// returned cursor carries an execution trace — Rows.Trace, complete once
// the cursor is drained or closed — whose span tree mirrors the plan:
// per-operator busy time, rows and loops, and at TraceMorsels one leaf span
// per dispatched morsel with worker, steal and device attribution.
func (s *Session) QueryTraced(ctx context.Context, plan *Plan, level TraceLevel) (*Rows, error) {
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	if plan == nil {
		return nil, tagged(ErrBind, errors.New("nil plan"))
	}
	workers := s.eng.pool.acquire(s.opt.parallelism)
	b := &builder{s: s, workers: workers}
	// Tracing: pre-build the plan-keyed span tree so every physical
	// instantiation below reports into the same, parallelism-independent
	// node set.
	b.initTrace(level, plan, workers)
	// Zone-map pruning: derive interval predicates from the plan's filters
	// and give prunable stored-table scans a segment-skipping view.
	b.annotatePruning(plan)
	if s.opt.tiered {
		// Tiered execution: count this execution against the plan's
		// engine-wide hotness entry. At the warm threshold the builder starts
		// compiling fusable segments (priming the code cache); at the hot
		// threshold it mounts the fused loops.
		fp := plan.fingerprint()
		ent := s.eng.tierEntryFor(fp)
		n := ent.execs.Add(1)
		if n == s.opt.tierWarm || (n == s.opt.tierHot && s.opt.tierHot != s.opt.tierWarm) {
			s.eng.tierUps.Add(1)
		}
		b.tierFP, b.tierN, b.tierEnt = fp, n, ent
		if n >= s.opt.tierWarm {
			b.fuseCtrs = &fused.Counters{}
		}
		if b.trace != nil {
			b.troot.SetAttr("tier", tierName(n, s.opt.tierWarm, s.opt.tierHot))
			b.troot.SetAttr("plan", fp)
			if b.fuseCtrs != nil {
				// Deopts surface as instant events on the query root.
				tr, root := b.trace, b.troot
				b.fuseCtrs.OnDeopt = func() { tr.Event(root, "deopt") }
			}
		}
	}
	if workers > 1 && s.opt.device != DeviceCPU {
		// Heterogeneous execution: worker pipelines get a DeviceExec top, so
		// every dispatched morsel is costed and placed (adaptively for
		// DeviceAuto, pinned for DeviceGPU) on the engine-global devices.
		placer, gpuDev := s.eng.placementBackend()
		b.rec = engine.NewPlacementRecorder()
		if s.opt.device == DeviceGPU {
			b.forced = gpuDev
		} else {
			b.placer = placer
		}
	}
	op, err := plan.build(b)
	if err != nil {
		s.eng.pool.release(workers)
		return nil, tagged(ErrBind, err)
	}
	if workers > 1 && len(b.sharedList) > 0 {
		// Overlap the query's join build sides: kick every shared table off
		// concurrently at Open instead of letting each build wait for the
		// first probe that needs it. Each table still builds exactly once
		// (sync.Once) with its internal build-order partitioning untouched,
		// so result bytes cannot move — only the builds' wall time overlaps.
		op = &prebuildOp{Operator: op, tables: b.sharedList}
	}
	if workers > 1 && b.exchanges > 0 {
		// The cursor owns the granted workers until closed.
		op = &releaseOp{Operator: op, pool: s.eng.pool, n: workers}
		s.eng.parallelQueries.Add(1)
	} else {
		// Nothing in the plan could fan out; return the permits immediately.
		s.eng.pool.release(workers)
	}
	if b.exchanges == 0 {
		// Nothing fanned out, so no DeviceExec was instantiated either.
		b.rec = nil
	}
	// The query gets a private, cancellable context: Rows.Close cancels it,
	// so abandoning a stream mid-way aborts in-flight parallel workers at
	// their next chunk boundary and returns pooled workers promptly.
	qctx, qcancel := context.WithCancel(ctx)
	if err := op.Open(qctx); err != nil {
		qcancel()
		op.Close()
		if errors.Is(err, engine.ErrExpr) {
			return nil, tagged(ErrCompile, err)
		}
		if c := classifyCtx(ctx, err); c != err {
			return nil, c
		}
		return nil, tagged(ErrBind, err)
	}
	s.queries.Add(1)
	r := &Rows{ctx: qctx, cancel: qcancel, op: op, schema: op.Schema(), sess: s, rec: b.rec, views: b.views, mops: b.morselOps}
	if b.tierEnt != nil {
		r.tier = tierName(b.tierN, s.opt.tierWarm, s.opt.tierHot)
		r.fuse, r.fusedRun, r.entry = b.fuseCtrs, b.fusedWrapped, b.tierEnt
	}
	if b.trace != nil {
		r.trace, r.troot, r.tviews = b.trace, b.troot, b.tracedViews()
	}
	return r, nil
}

// mergeMorselPlacements folds one completed query's placement counts into
// the session's lifetime totals (observable via Stats).
func (s *Session) mergeMorselPlacements(rec *engine.PlacementRecorder) {
	counts := rec.Counts()
	transfer := rec.Transfer()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.morselPlacements == nil {
		s.morselPlacements = make(map[string]int64, len(counts))
	}
	for dev, n := range counts {
		s.morselPlacements[dev] += n
	}
	s.morselTransfer += transfer
}

// prebuildOp starts every shared join-table build of a parallel query
// concurrently when the pipeline opens. Dependent builds (a build side that
// probes another shared table) simply block inside their recipe until the
// table they need finishes — sync.Once serializes per table, never across
// tables — so independent sides overlap and chains degrade to the old
// sequential order. Close waits for stragglers after closing the child: the
// query context is cancelled first (Rows.close), so an abandoned build
// aborts at its next chunk boundary rather than running to completion.
type prebuildOp struct {
	engine.Operator
	tables []*engine.SharedJoinTable
	wg     sync.WaitGroup
}

func (p *prebuildOp) Open(ctx context.Context) error {
	for _, t := range p.tables {
		p.wg.Add(1)
		go func(t *engine.SharedJoinTable) {
			defer p.wg.Done()
			t.Table(ctx) // errors surface through the probes' own Table calls
		}(t)
	}
	return p.Operator.Open(ctx)
}

func (p *prebuildOp) Close() error {
	err := p.Operator.Close()
	p.wg.Wait()
	return err
}

// releaseOp returns pooled workers when the pipeline closes.
type releaseOp struct {
	engine.Operator
	pool *workerPool
	n    int
	once sync.Once
}

func (r *releaseOp) Close() error {
	err := r.Operator.Close()
	r.once.Do(func() { r.pool.release(r.n) })
	return err
}

// IR renders the normalized intermediate representation of the compiled
// program ("" when the session has none).
func (s *Session) IR() string {
	if s.prog == nil {
		return ""
	}
	return s.prog.String()
}

// Source returns the DSL source the session was compiled from.
func (s *Session) Source() string { return s.src }

// PlanReport renders the current execution plan of every program segment,
// showing which steps are interpreted and which run injected traces.
func (s *Session) PlanReport() string { return planReport(s.vm) }

func planReport(v *vm.VM) string {
	if v == nil {
		return ""
	}
	out := ""
	for _, seg := range v.Interp.Segments {
		out += fmt.Sprintf("segment %d:\n", seg.ID)
		for _, step := range v.Interp.Plan(seg.ID).Steps {
			out += "  " + step.Describe() + "\n"
		}
	}
	return out
}

// KernelCount reports the number of pre-compiled vectorized kernels
// available to the interpreter ("generated and compiled during startup").
func KernelCount() int { return primitive.Count() }

// recordPlacement runs the device-placement model for one program execution
// and records the decision (observable via Stats). With the default
// DeviceCPU policy this is a no-op beyond bookkeeping.
func (s *Session) recordPlacement(prog *nir.Program, bindings map[string]*Vector) {
	elems, bytes := 0, 0
	names := make([]string, 0, len(bindings))
	for name, v := range bindings {
		if v == nil {
			continue
		}
		if v.Len() > elems {
			elems = v.Len()
		}
		bytes += v.Len() * v.Kind().Width()
		names = append(names, name)
	}
	ops := 1
	if prog != nil {
		ops = prog.NumInstrs
	}
	k := device.Kernel{
		Name: "session-run", Elems: elems,
		BytesIn: bytes, BytesOut: bytes,
		OpsPerElem: float64(ops), Inputs: names,
	}
	chosen := s.eng.choosePlacement(s.opt.device, k)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.placements = append(s.placements, Placement{
		Elems: elems, Bytes: bytes, Device: chosen,
	})
	if len(s.placements) > maxPlacements {
		s.placements = append(s.placements[:0], s.placements[len(s.placements)-maxPlacements:]...)
	}
}

// maxPlacements bounds the placement log of a long-lived session; Stats
// reports the most recent decisions.
const maxPlacements = 256
