package advm_test

import (
	"context"
	"math"
	"testing"

	"repro/advm"
)

// deviceTestTable builds a table big enough that morsels are large and the
// modeled GPU's throughput advantage can beat PCIe transfer.
func deviceTestTable(rows int) *advm.Table {
	st := advm.NewTable(advm.NewSchema("k", advm.I64, "v", advm.F64))
	for i := 0; i < rows; i++ {
		st.AppendRow(advm.I64Value(int64(i%1000)), advm.F64Value(float64(i%97)*1.5))
	}
	return st
}

func devicePlanAgg(st *advm.Table) *advm.Plan {
	return advm.Scan(st, "k", "v").
		Filter(`(\k -> k < 900)`, "k").
		Compute("w", `(\v -> v * 1.5 + 2.0)`, advm.F64, "v").
		Aggregate(nil, advm.Agg{Func: advm.AggSum, Col: "w", As: "sum_w"})
}

func devicePlanStream(st *advm.Table) *advm.Plan {
	return advm.Scan(st, "k", "v").
		Filter(`(\k -> k < 500)`, "k").
		Compute("w", `(\v -> v + 1.0)`, advm.F64, "v")
}

// collectAll drains a query into boxed values.
func collectAll(t *testing.T, sess *advm.Session, plan *advm.Plan) ([][]advm.Value, map[string]int64) {
	t.Helper()
	rows, err := sess.Query(context.Background(), plan)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	defer rows.Close()
	n := len(rows.Columns())
	var out [][]advm.Value
	for rows.Next() {
		row := make([]advm.Value, n)
		dests := make([]any, n)
		for i := range row {
			dests[i] = &row[i]
		}
		if err := rows.Scan(dests...); err != nil {
			t.Fatalf("Scan: %v", err)
		}
		out = append(out, row)
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	return out, rows.Placements()
}

// sameValues compares result sets bit-for-bit (floats by their bits).
func sameValues(a, b [][]advm.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for c := range a[i] {
			x, y := a[i][c], b[i][c]
			if x.Kind != y.Kind {
				return false
			}
			if x.Kind == advm.F64 {
				if math.Float64bits(x.F) != math.Float64bits(y.F) {
					return false
				}
			} else if !x.Equal(y) {
				return false
			}
		}
	}
	return true
}

// TestMorselPlacementAuto: under the adaptive policy, large morsels of a
// parallel aggregation land on the simulated GPU once columns are resident,
// results stay byte-identical to CPU-only execution, and the decisions are
// visible per query (Rows.Placements) and per session (Stats).
func TestMorselPlacementAuto(t *testing.T) {
	st := deviceTestTable(200_000)

	ref, err := advm.NewSession(advm.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want, refPlace := collectAll(t, ref, devicePlanAgg(st))
	if refPlace != nil {
		t.Fatalf("serial CPU query reported placements: %v", refPlace)
	}

	sess, err := advm.NewSession(
		advm.WithParallelism(4),
		advm.WithMorselLen(16384),
		advm.WithDevicePolicy(advm.DeviceAuto))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	var lastPlace map[string]int64
	for run := 0; run < 3; run++ {
		got, place := collectAll(t, sess, devicePlanAgg(st))
		if !sameValues(want, got) {
			t.Fatalf("run %d: adaptive-policy result differs from serial CPU", run)
		}
		lastPlace = place
	}
	if lastPlace == nil {
		t.Fatal("adaptive parallel query reported no placements")
	}
	total := int64(0)
	for _, n := range lastPlace {
		total += n
	}
	wantMorsels := int64((st.Rows() + 16384 - 1) / 16384)
	if total != wantMorsels {
		t.Fatalf("placed %d morsels, want %d (placements %v)", total, wantMorsels, lastPlace)
	}
	// By the third run the scanned columns are device-resident and morsels
	// are large, so the adaptive policy must offload at least some of them.
	if lastPlace["gpu"] == 0 {
		t.Fatalf("adaptive policy never offloaded a resident large morsel: %v", lastPlace)
	}
	stats := sess.Stats()
	if stats.MorselPlacements == nil {
		t.Fatal("Stats.MorselPlacements is nil after placed queries")
	}
	var statTotal int64
	for _, n := range stats.MorselPlacements {
		statTotal += n
	}
	if statTotal != 3*wantMorsels {
		t.Fatalf("session accumulated %d placements, want %d", statTotal, 3*wantMorsels)
	}
}

// TestMorselPlacementForcedGPU: the pinned GPU policy places every morsel on
// the device, charges modeled transfer, and still produces bytes identical
// to CPU execution (the device executes on the host).
func TestMorselPlacementForcedGPU(t *testing.T) {
	st := deviceTestTable(60_000)

	ref, err := advm.NewSession(advm.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want, _ := collectAll(t, ref, devicePlanStream(st))

	sess, err := advm.NewSession(
		advm.WithParallelism(2),
		advm.WithMorselLen(8192),
		advm.WithDevicePolicy(advm.DeviceGPU))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	got, place := collectAll(t, sess, devicePlanStream(st))
	if !sameValues(want, got) {
		t.Fatal("forced-GPU result differs from serial CPU")
	}
	wantMorsels := int64((st.Rows() + 8192 - 1) / 8192)
	if place["gpu"] != wantMorsels || place["cpu"] != 0 {
		t.Fatalf("forced GPU placed %v, want all %d morsels on gpu", place, wantMorsels)
	}
	if tr := sess.Stats().MorselTransfer; tr <= 0 {
		t.Fatalf("forced GPU accumulated no modeled transfer time (%v)", tr)
	}
}

// TestMorselPlacementCPUPolicy: the default CPU policy instantiates no
// placement machinery at all.
func TestMorselPlacementCPUPolicy(t *testing.T) {
	st := deviceTestTable(40_000)
	sess, err := advm.NewSession(advm.WithParallelism(2), advm.WithMorselLen(8192))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	_, place := collectAll(t, sess, devicePlanAgg(st))
	if place != nil {
		t.Fatalf("CPU-only query reported placements: %v", place)
	}
	if st := sess.Stats(); st.MorselPlacements != nil || st.MorselTransfer != 0 {
		t.Fatalf("CPU-only session accumulated placement state: %+v", st.MorselPlacements)
	}
}
