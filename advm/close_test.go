package advm_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/advm"
)

// closeTestTable builds a table big enough that a parallel query over it is
// still mid-stream after one row has been read.
func closeTestTable(rows int) *advm.Table {
	t := advm.NewTable(advm.NewSchema("k", advm.I64, "v", advm.I64))
	for i := 0; i < rows; i++ {
		t.AppendRow(advm.I64Value(int64(i%1000)), advm.I64Value(int64(i)))
	}
	return t
}

// TestRowsCloseReleasesPoolWorkers is the regression test for abandoning a
// streaming result mid-way: closing the cursor after one row must cancel the
// query's private context — aborting in-flight morsel workers at their next
// chunk boundary — and return every granted pool worker before Close
// returns. A leak here would starve every later parallel query on the shared
// engine.
func TestRowsCloseReleasesPoolWorkers(t *testing.T) {
	eng, err := advm.NewEngine(advm.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	sess, err := eng.Session()
	if err != nil {
		t.Fatal(err)
	}
	table := closeTestTable(1 << 20)
	plan := advm.Scan(table, "k", "v").
		Filter(`(\k -> k < 999)`, "k").
		Compute("w", `(\v -> (v * 3 + 7) * (v - 1))`, advm.I64, "v")

	for iter := 0; iter < 3; iter++ {
		rows, err := sess.Query(context.Background(), plan)
		if err != nil {
			t.Fatal(err)
		}
		if !rows.Next() {
			t.Fatalf("iter %d: no rows before close: %v", iter, rows.Err())
		}
		start := time.Now()
		if err := rows.Close(); err != nil {
			t.Fatal(err)
		}
		elapsed := time.Since(start)
		if inUse := eng.Stats().PoolInUse; inUse != 0 {
			t.Fatalf("iter %d: %d pool workers still granted after Rows.Close (elapsed %v)", iter, inUse, elapsed)
		}
	}
}

// TestRowsCloseUnderCancelledParent exercises the interaction of a parent
// cancellation with the cursor teardown: the stream errors with
// ErrCancelled, and the teardown still returns all pool workers.
func TestRowsCloseUnderCancelledParent(t *testing.T) {
	eng, err := advm.NewEngine(advm.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	sess, err := eng.Session()
	if err != nil {
		t.Fatal(err)
	}
	table := closeTestTable(1 << 19)
	plan := advm.Scan(table, "k", "v").Filter(`(\k -> k < 999)`, "k")

	ctx, cancel := context.WithCancel(context.Background())
	rows, err := sess.Query(ctx, plan)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no rows before cancel: %v", rows.Err())
	}
	cancel()
	for rows.Next() {
		// Drain until the cancellation lands at a chunk boundary.
	}
	rows.Close()
	if inUse := eng.Stats().PoolInUse; inUse != 0 {
		t.Fatalf("%d pool workers still granted after cancelled stream closed", inUse)
	}
}

// TestParallelQueryAbandonNoGoroutineLeak fences runtime.NumGoroutine around
// repeatedly abandoning parallel join queries mid-stream. The plan mounts a
// shared join table, so the query's Open also kicks off an overlapped
// background build — Close must join both the morsel workers and any
// abandoned build goroutine. Run under -race this doubles as a teardown
// synchronization check.
func TestParallelQueryAbandonNoGoroutineLeak(t *testing.T) {
	eng, err := advm.NewEngine(advm.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	sess, err := eng.Session()
	if err != nil {
		t.Fatal(err)
	}
	fact := closeTestTable(1 << 19)
	dim := advm.NewTable(advm.NewSchema("id", advm.I64, "name", advm.Str))
	for i := 0; i < 1000; i++ {
		dim.AppendRow(advm.I64Value(int64(i)), advm.StrValue(string(rune('a'+i%26))))
	}
	plan := advm.Scan(fact, "k", "v").
		Join(advm.Scan(dim, "id", "name"), "k", "id", "name").
		Compute("w", `(\v -> (v * 3 + 7) * (v - 1))`, advm.I64, "v")

	before := runtime.NumGoroutine()
	for iter := 0; iter < 10; iter++ {
		rows, err := sess.Query(context.Background(), plan)
		if err != nil {
			t.Fatal(err)
		}
		if !rows.Next() {
			t.Fatalf("iter %d: no rows before close: %v", iter, rows.Err())
		}
		if err := rows.Close(); err != nil {
			t.Fatal(err)
		}
		if inUse := eng.Stats().PoolInUse; inUse != 0 {
			t.Fatalf("iter %d: %d pool workers still granted after Rows.Close", iter, inUse)
		}
	}

	// Fence with slack: runtime background goroutines come and go, so a
	// small constant above the baseline is the tightest stable bound. Give
	// unwinding workers a settling window before declaring a leak.
	const slack = 3
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for n > before+slack && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	if n > before+slack {
		t.Fatalf("goroutines: %d before, %d after 10 abandoned parallel joins (slack %d) — leak",
			before, n, slack)
	}
}
