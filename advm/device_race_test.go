package advm_test

import (
	"context"
	"sync"
	"testing"

	"repro/advm"
)

// TestEnginePlacerConcurrentSessions: the device placer is engine-global,
// so concurrent sessions sharing one Engine feed EWMA bias and decision
// counts from many goroutines at once — morsel placements from parallel
// queries and whole-program placements from Session.Run. Run under -race in
// CI; the assertion is byte-identical results plus a consistent decision
// total.
func TestEnginePlacerConcurrentSessions(t *testing.T) {
	st := deviceTestTable(120_000)

	eng, err := advm.NewEngine(
		advm.WithParallelism(8),
		advm.WithMorselLen(8192),
		advm.WithDevicePolicy(advm.DeviceAuto))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// The reference shares the sessions' morsel length: result bytes are a
	// function of (plan, data, morsel length), never of workers or devices.
	ref, err := advm.NewSession(advm.WithParallelism(1), advm.WithMorselLen(8192))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want, _ := collectAll(t, ref, devicePlanAgg(st))

	const sessions = 6
	const queriesPerSession = 4
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for sIdx := 0; sIdx < sessions; sIdx++ {
		wg.Add(1)
		go func(sIdx int) {
			defer wg.Done()
			sess, err := eng.Session()
			if err != nil {
				errs <- err
				return
			}
			defer sess.Close()
			for q := 0; q < queriesPerSession; q++ {
				rows, err := sess.Query(context.Background(), devicePlanAgg(st))
				if err != nil {
					errs <- err
					return
				}
				var got [][]advm.Value
				n := len(rows.Columns())
				for rows.Next() {
					row := make([]advm.Value, n)
					dests := make([]any, n)
					for i := range row {
						dests[i] = &row[i]
					}
					if err := rows.Scan(dests...); err != nil {
						rows.Close()
						errs <- err
						return
					}
					got = append(got, row)
				}
				err = rows.Err()
				rows.Close()
				if err != nil {
					errs <- err
					return
				}
				if !sameValues(want, got) {
					errs <- errMismatch{sIdx, q}
					return
				}
			}
			// Program runs exercise the whole-program placement path of the
			// same engine-global placer.
			prep, err := sess.Prepare(
				`let a = map (\x -> (x * 3)) (read 0 d)`+"\nwrite out 0 a",
				map[string]advm.Kind{"d": advm.I64, "out": advm.I64})
			if err != nil {
				errs <- err
				return
			}
			data := make([]int64, 4096)
			for r := 0; r < 5; r++ {
				out := advm.NewVector(advm.I64, 0, len(data))
				if err := sess.RunPrepared(context.Background(), prep, map[string]*advm.Vector{
					"d": advm.FromI64(data), "out": out,
				}); err != nil {
					errs <- err
					return
				}
			}
		}(sIdx)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// A query that runs with granted workers dispatches ceil(rows/morselLen)
	// placed morsels. Spot-check on a fresh, uncontended session.
	wantMorsels := int64((st.Rows() + 8192 - 1) / 8192)
	var total int64
	sess, err := eng.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	_, place := collectAll(t, sess, devicePlanAgg(st))
	for _, n := range place {
		total += n
	}
	if total != wantMorsels {
		t.Fatalf("fresh session placed %d morsels, want %d (%v)", total, wantMorsels, place)
	}
}

type errMismatch struct{ session, query int }

func (e errMismatch) Error() string {
	return "session result differs from serial CPU reference"
}
