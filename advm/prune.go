package advm

import (
	"repro/internal/colstore"
	"repro/internal/dsl"
	"repro/internal/vector"
)

// Scan pruning: before a query instantiates its operators, the builder walks
// the plan, and for every scan leaf backed by a disk-backed stored table it
// tries to turn the filters stacked on that scan into conjunctive interval
// predicates on the scanned columns. When it succeeds, the scan reads a
// pruned view of the table that answers the engine's RangeSkipper contract
// from the stored per-segment zone maps (and, for dictionary- and
// run-length-encoded segments, from the encoded value domain), so whole
// segments the filters would reject are never decoded — or even touched.
//
// Pruning is strictly an elision: the filters still execute downstream over
// every surviving row, and a skipped window contains only rows those filters
// would have dropped, so pruned and unpruned queries produce byte-identical
// results. Extraction is conservative — any lambda shape it does not fully
// understand contributes no predicate.

// storeFor returns the store a scan leaf should read: the pruned view when
// the annotate pass derived one, else the plan's own table.
func (b *builder) storeFor(scan *Plan) TableSource {
	if st, ok := b.pruned[scan]; ok {
		return st
	}
	return scan.table
}

// annotatePruning walks the plan tree — through pipeline breakers and into
// join build sides — and installs pruned views for prunable scan leaves.
func (b *builder) annotatePruning(p *Plan) {
	if p == nil || !b.s.opt.pruning {
		return
	}
	if stages, scan, ok := p.segment(); ok {
		b.pruneScan(scan, stages)
		for _, st := range stages {
			if st.kind == planJoin {
				b.annotatePruning(st.buildSide)
			}
		}
		return
	}
	b.annotatePruning(p.child)
}

// pruneScan decides the store for one scan leaf. A leaf shared by several
// consumers (the same *Plan reached along two paths) is never pruned: each
// path implies different predicates, and only rows rejected by every
// consumer could be skipped safely.
func (b *builder) pruneScan(scan *Plan, stages []*Plan) {
	if b.pruned == nil {
		b.pruned = map[*Plan]TableSource{}
	}
	if _, seen := b.pruned[scan]; seen {
		b.pruned[scan] = scan.table
		return
	}
	b.pruned[scan] = scan.table
	ct, ok := scan.table.(*colstore.Table)
	if !ok || ct == nil {
		return
	}
	preds := extractPreds(scan, stages)
	if len(preds) == 0 {
		return
	}
	pv := ct.Pruned(preds)
	b.pruned[scan] = pv
	b.views = append(b.views, pv)
}

// extractPreds converts the segment's filters into interval predicates on
// scanned base columns. A filter qualifies when its input column is read
// straight off the scan — not produced by a compute or carried in as join
// payload anywhere in the segment — so the predicate constrains the stored
// values themselves.
func extractPreds(scan *Plan, stages []*Plan) []colstore.Pred {
	sch := scan.table.Schema()
	scanned := map[string]bool{}
	cols := scan.columns
	if len(cols) == 0 {
		cols = sch.Names
	}
	for _, c := range cols {
		scanned[c] = true
	}
	produced := map[string]bool{}
	for _, st := range stages {
		switch st.kind {
		case planCompute:
			produced[st.out] = true
		case planJoin:
			for _, c := range st.payload {
				produced[c] = true
			}
		}
	}
	var preds []colstore.Pred
	for _, st := range stages {
		if st.kind != planFilter || !scanned[st.col] || produced[st.col] {
			continue
		}
		ci := sch.ColumnIndex(st.col)
		if ci < 0 {
			continue
		}
		kind := sch.Kinds[ci]
		if kind != vector.I64 && kind != vector.F64 {
			continue
		}
		if p, ok := predFromLambda(st.lambda, st.col, kind == vector.F64); ok {
			preds = append(preds, p)
		}
	}
	return preds
}

// predFromLambda parses a single-parameter filter lambda and extracts the
// interval it implies on col, when the whole body is a conjunction of
// comparisons between the parameter and constants. Anything else — other
// operators, derived operands, disjunctions — yields no predicate.
func predFromLambda(lambda, col string, float bool) (colstore.Pred, bool) {
	// Reuse the engine's expression front end: wrap the lambda in the same
	// read → map → write program shape operators lower it into, and pull the
	// parsed lambda back out of the AST.
	prog, err := dsl.Parse("let c0 = read 0 x\nlet r = map " + lambda + " c0\nwrite out 0 r\n")
	if err != nil {
		return colstore.Pred{}, false
	}
	var fn *dsl.Lambda
	for _, st := range prog.Body {
		if let, ok := st.(*dsl.Let); ok && let.Name == "r" {
			if m, ok := let.Val.(*dsl.MapExpr); ok {
				fn = m.Fn
			}
		}
	}
	if fn == nil || len(fn.Params) != 1 {
		return colstore.Pred{}, false
	}
	p := colstore.Pred{Col: col, Float: float}
	if !collectInterval(fn.Body, fn.Params[0], &p) {
		return colstore.Pred{}, false
	}
	return p, p.HasLo || p.HasHi
}

// collectInterval folds one conjunct (or conjunction) of the lambda body
// into the predicate, reporting whether the expression was fully understood.
func collectInterval(e dsl.Expr, param string, p *colstore.Pred) bool {
	bin, ok := e.(*dsl.Bin)
	if !ok {
		return false
	}
	if bin.Op == dsl.OpAnd {
		// Logical conjunction — but only when both operands are themselves
		// comparisons; a bitwise & over arithmetic is rejected below.
		return collectInterval(bin.L, param, p) && collectInterval(bin.R, param, p)
	}
	op := bin.Op
	v, okV := bin.L.(*dsl.VarRef)
	c, okC := bin.R.(*dsl.Const)
	if !okV || !okC {
		// Mirrored spelling: const op param.
		if v2, ok2 := bin.R.(*dsl.VarRef); ok2 {
			if c2, ok3 := bin.L.(*dsl.Const); ok3 {
				v, c, op = v2, c2, mirror(op)
				okV, okC = true, true
			}
		}
	}
	if !okV || !okC || v.Name != param || !op.IsComparison() || op == dsl.OpNe {
		return false
	}
	var iv int64
	var fv float64
	switch {
	case c.Val.Kind == vector.F64:
		if !p.Float {
			return false // float bound on an integer column: don't round
		}
		fv = c.Val.F
	case c.Val.Kind.IsInteger():
		iv, fv = c.Val.I, float64(c.Val.I)
	default:
		return false
	}
	switch op {
	case dsl.OpLt:
		tightenHi(p, iv, fv, true)
	case dsl.OpLe:
		tightenHi(p, iv, fv, false)
	case dsl.OpGt:
		tightenLo(p, iv, fv, true)
	case dsl.OpGe:
		tightenLo(p, iv, fv, false)
	case dsl.OpEq:
		tightenLo(p, iv, fv, false)
		tightenHi(p, iv, fv, false)
	}
	return true
}

// mirror rewrites "const op param" as "param op' const".
func mirror(op dsl.BinOp) dsl.BinOp {
	switch op {
	case dsl.OpLt:
		return dsl.OpGt
	case dsl.OpLe:
		return dsl.OpGe
	case dsl.OpGt:
		return dsl.OpLt
	case dsl.OpGe:
		return dsl.OpLe
	}
	return op
}

// tightenLo raises the predicate's lower bound when the new one is tighter.
func tightenLo(p *colstore.Pred, iv int64, fv float64, open bool) {
	if p.Float {
		if !p.HasLo || fv > p.LoF || (fv == p.LoF && open && !p.LoOpen) {
			p.HasLo, p.LoF, p.LoOpen = true, fv, open
		}
		return
	}
	if !p.HasLo || iv > p.LoI || (iv == p.LoI && open && !p.LoOpen) {
		p.HasLo, p.LoI, p.LoOpen = true, iv, open
	}
}

// tightenHi lowers the predicate's upper bound when the new one is tighter.
func tightenHi(p *colstore.Pred, iv int64, fv float64, open bool) {
	if p.Float {
		if !p.HasHi || fv < p.HiF || (fv == p.HiF && open && !p.HiOpen) {
			p.HasHi, p.HiF, p.HiOpen = true, fv, open
		}
		return
	}
	if !p.HasHi || iv < p.HiI || (iv == p.HiI && open && !p.HiOpen) {
		p.HasHi, p.HiI, p.HiOpen = true, iv, open
	}
}
