package advm_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/advm"
)

// TestRunCancelsMidExecution verifies the contract that a long Run aborts
// within one chunk of its context being cancelled: cancellation fires while
// the VM is deep in a multi-thousand-chunk loop, and the run must stop long
// before it would have finished.
func TestRunCancelsMidExecution(t *testing.T) {
	sess := advm.MustCompile(chunkLoopSrc, chunkLoopKinds, advm.WithJIT(false))

	// Calibrate: a full uncancelled run over n rows.
	const n = 1 << 22 // ~4k chunks
	ext, _ := chunkLoopBindings(n)
	start := time.Now()
	if err := sess.Run(context.Background(), ext); err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(full / 10)
		cancel()
	}()
	ext2, _ := chunkLoopBindings(n)
	start = time.Now()
	err := sess.Run(ctx, ext2)
	aborted := time.Since(start)
	if !errors.Is(err, advm.ErrCancelled) {
		t.Fatalf("cancelled run returned %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error chain lost the context cause: %v", err)
	}
	if aborted > full/2+50*time.Millisecond {
		t.Fatalf("run took %v after cancellation at %v (full run %v): not aborting at chunk boundaries", aborted, full/10, full)
	}
}

// TestRunHonorsDeadline exercises the deadline path: an already-expired
// deadline aborts before the first chunk.
func TestRunHonorsDeadline(t *testing.T) {
	sess := advm.MustCompile(chunkLoopSrc, chunkLoopKinds, advm.WithJIT(false))
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	ext, _ := chunkLoopBindings(1 << 12)
	err := sess.Run(ctx, ext)
	if !errors.Is(err, advm.ErrCancelled) {
		t.Fatalf("expired deadline returned %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error chain lost DeadlineExceeded: %v", err)
	}
}

// TestQueryCancelsMidStream cancels a streaming query between cursor
// advances: the next fetch must fail with ErrCancelled and close the
// pipeline.
func TestQueryCancelsMidStream(t *testing.T) {
	sess, err := advm.NewSession(advm.WithChunkLen(64), advm.WithJIT(false))
	if err != nil {
		t.Fatal(err)
	}
	table := queryTable(100_000)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, err := sess.Query(ctx, advm.Scan(table, "k", "v").Compute("v2", `(\v -> v + 1)`, advm.I64, "v"))
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()

	seen := 0
	for rows.Next() {
		seen++
		if seen == 100 {
			cancel()
		}
	}
	if err := rows.Err(); !errors.Is(err, advm.ErrCancelled) {
		t.Fatalf("cancelled stream ended with %v after %d rows", err, seen)
	}
	// Within one chunk: the current chunk (64 rows) may drain, plus the one
	// being fetched, but no unbounded run-on.
	if seen > 100+2*64 {
		t.Fatalf("stream produced %d rows after cancellation at row 100", seen)
	}
	if rows.Next() {
		t.Fatal("Next returned true after error")
	}
}

// TestQueryCancelledBeforeOpen: a dead context fails Query itself.
func TestQueryCancelledBeforeOpen(t *testing.T) {
	sess, err := advm.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = sess.Query(ctx, advm.Scan(queryTable(10)))
	if !errors.Is(err, advm.ErrCancelled) {
		t.Fatalf("dead-context Query returned %v", err)
	}
}
