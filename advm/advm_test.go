package advm_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/advm"
)

// chunkLoopSrc processes the whole input chunk-at-a-time — the canonical
// shape of a data-parallel program on the VM.
const chunkLoopSrc = `
mut i
i := 0
loop {
  let xs = read i data
  if len(xs) == 0 then break
  let r = map (\x -> (x * 3 + 7) * (x - 1)) xs
  write out i r
  i := i + len(xs)
}
`

var chunkLoopKinds = map[string]advm.Kind{"data": advm.I64, "out": advm.I64}

func chunkLoopBindings(n int) (map[string]*advm.Vector, []int64) {
	data := make([]int64, n)
	want := make([]int64, n)
	for i := range data {
		data[i] = int64(i%1000 - 500)
		want[i] = (data[i]*3 + 7) * (data[i] - 1)
	}
	return map[string]*advm.Vector{
		"data": advm.FromI64(data),
		"out":  advm.NewVector(advm.I64, 0, n),
	}, want
}

func TestSessionRunCompilesHotLoop(t *testing.T) {
	sess := advm.MustCompile(chunkLoopSrc, chunkLoopKinds,
		advm.WithSyncOptimizer(true),
		// Micro-adaptive revert off: on a loaded host the heuristic can
		// deoptimize the traces this test asserts are injected.
		advm.WithMicroAdaptive(false),
		advm.WithHotThresholds(2, time.Hour),
		advm.WithJITOptions(advm.JITOptions{CompileLatency: advm.NoCompileLatency}),
	)
	for run := 0; run < 3; run++ {
		ext, want := chunkLoopBindings(1 << 15)
		if err := sess.Run(t.Context(), ext); err != nil {
			t.Fatal(err)
		}
		got := ext["out"].I64()
		if len(got) != len(want) {
			t.Fatalf("run %d: out len=%d want %d", run, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("run %d: out[%d]=%d want %d", run, i, got[i], want[i])
			}
		}
	}
	st := sess.Stats()
	if st.Runs != 3 {
		t.Fatalf("Runs=%d want 3", st.Runs)
	}
	if len(st.CompiledSegments) == 0 {
		t.Fatalf("hot loop was not compiled; transitions: %+v", st.Transitions)
	}
	if st.InjectedTraces == 0 {
		t.Fatal("stats report no injected traces")
	}
	if st.Kernels == 0 {
		t.Fatal("no pre-compiled kernels reported")
	}
	var calls int64
	for _, in := range st.Instructions {
		calls += in.Calls
	}
	if calls == 0 {
		t.Fatal("per-instruction profile is empty")
	}
	// The Figure-1 cycle must appear in order in the transition log.
	want := []string{"Optimize", "GenerateCode", "InjectFunctions", "Interpret"}
	j := 0
	for _, tr := range st.Transitions {
		if j < len(want) && tr.To == want[j] {
			j++
		}
	}
	if j != len(want) {
		t.Fatalf("transition log misses the Figure-1 cycle: %+v", st.Transitions)
	}
	if !strings.Contains(sess.PlanReport(), "trace") {
		t.Fatalf("plan report shows no injected trace:\n%s", sess.PlanReport())
	}
}

func TestSessionRunConcurrent(t *testing.T) {
	sess := advm.MustCompile(chunkLoopSrc, chunkLoopKinds,
		advm.WithHotThresholds(4, 0),
		advm.WithJITOptions(advm.JITOptions{CompileLatency: advm.NoCompileLatency}),
	)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for run := 0; run < 4; run++ {
				ext, want := chunkLoopBindings(1 << 13)
				if err := sess.Run(context.Background(), ext); err != nil {
					errs <- err
					return
				}
				got := ext["out"].I64()
				for i := range want {
					if got[i] != want[i] {
						errs <- errors.New("concurrent run corrupted output")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := sess.Stats().Runs; got != 32 {
		t.Fatalf("Runs=%d want 32", got)
	}
}

func TestErrorTaxonomy(t *testing.T) {
	if _, err := advm.Compile("map (\\x ->", nil); !errors.Is(err, advm.ErrCompile) {
		t.Fatalf("parse failure not ErrCompile: %v", err)
	}

	sess := advm.MustCompile(chunkLoopSrc, chunkLoopKinds)
	err := sess.Run(context.Background(), map[string]*advm.Vector{"data": advm.FromI64([]int64{1})})
	if !errors.Is(err, advm.ErrBind) {
		t.Fatalf("missing binding not ErrBind: %v", err)
	}
	err = sess.Run(context.Background(), map[string]*advm.Vector{
		"data": advm.FromF64([]float64{1}), "out": advm.NewVector(advm.I64, 0, 0),
	})
	if !errors.Is(err, advm.ErrBind) {
		t.Fatalf("wrongly-typed binding not ErrBind: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ext, _ := chunkLoopBindings(1 << 12)
	err = sess.Run(ctx, ext)
	if !errors.Is(err, advm.ErrCancelled) {
		t.Fatalf("cancelled run not ErrCancelled: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run does not wrap context.Canceled: %v", err)
	}

	// Query classification: unknown column is a bind error, a broken lambda
	// a compile error.
	q, err := advm.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	table := advm.NewTable(advm.NewSchema("k", advm.I64))
	table.AppendRow(advm.I64Value(1))
	if _, err := q.Query(context.Background(), advm.Scan(table, "nope")); !errors.Is(err, advm.ErrBind) {
		t.Fatalf("unknown scan column not ErrBind: %v", err)
	}
	if _, err := q.Query(context.Background(), advm.Scan(table).Filter(`(\k ->`, "k")); !errors.Is(err, advm.ErrCompile) {
		t.Fatalf("broken lambda not ErrCompile: %v", err)
	}
	if err := q.Run(context.Background(), nil); !errors.Is(err, advm.ErrBind) {
		t.Fatalf("Run without a program not ErrBind: %v", err)
	}
}

func TestOptionValidation(t *testing.T) {
	if _, err := advm.NewSession(advm.WithChunkLen(0)); err == nil {
		t.Fatal("chunk length 0 accepted")
	}
	if _, err := advm.NewSession(advm.WithOptimizeInterval(-time.Second)); err == nil {
		t.Fatal("negative optimize interval accepted")
	}
	if _, err := advm.NewSession(advm.WithDevice(advm.DeviceKind(99))); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func queryTable(n int) *advm.Table {
	table := advm.NewTable(advm.NewSchema("k", advm.I64, "v", advm.I64))
	for i := 0; i < n; i++ {
		table.AppendRow(advm.I64Value(int64(i%100)), advm.I64Value(int64(i)))
	}
	return table
}

func TestQueryStreamsIncrementally(t *testing.T) {
	sess, err := advm.NewSession(advm.WithChunkLen(256))
	if err != nil {
		t.Fatal(err)
	}
	table := queryTable(10_000)
	plan := advm.Scan(table, "k", "v").
		Filter(`(\k -> k < 10)`, "k").
		Compute("v2", `(\v -> v * v)`, advm.I64, "v")
	rows, err := sess.Query(t.Context(), plan)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cols := rows.Columns()
	if len(cols) != 3 || cols[0] != "k" || cols[1] != "v" || cols[2] != "v2" {
		t.Fatalf("columns = %v", cols)
	}
	count := 0
	for rows.Next() {
		var k, v, v2 int64
		if err := rows.Scan(&k, &v, &v2); err != nil {
			t.Fatal(err)
		}
		if k >= 10 {
			t.Fatalf("row with k=%d passed the filter", k)
		}
		if v2 != v*v {
			t.Fatalf("v2=%d for v=%d", v2, v)
		}
		count++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if count != 1000 {
		t.Fatalf("streamed %d rows, want 1000", count)
	}
	if got := sess.Stats().Queries; got != 1 {
		t.Fatalf("Queries=%d want 1", got)
	}
}

func TestQueryAggregateAndJoin(t *testing.T) {
	sess, err := advm.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	fact := queryTable(5000)
	dim := advm.NewTable(advm.NewSchema("id", advm.I64, "name", advm.Str))
	for i := 0; i < 10; i++ {
		dim.AppendRow(advm.I64Value(int64(i)), advm.StrValue(string(rune('a'+i))))
	}
	plan := advm.Scan(fact, "k", "v").
		Join(advm.Scan(dim, "id", "name"), "k", "id", "name").
		Aggregate([]string{"name"}, advm.Agg{Func: advm.AggCount, As: "n"}, advm.Agg{Func: advm.AggSum, Col: "v", As: "sv"})
	rows, err := sess.Query(t.Context(), plan)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	groups := 0
	var total int64
	for rows.Next() {
		var name string
		var n, sv int64
		if err := rows.Scan(&name, &n, &sv); err != nil {
			t.Fatal(err)
		}
		if n != 50 { // 5000 rows, k = i%100, 10 dim keys → 50 rows per key
			t.Fatalf("group %q count %d want 50", name, n)
		}
		groups++
		total += sv
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if groups != 10 {
		t.Fatalf("groups=%d want 10", groups)
	}
	var want int64
	for i := 0; i < 5000; i++ {
		if i%100 < 10 {
			want += int64(i)
		}
	}
	if total != want {
		t.Fatalf("sum=%d want %d", total, want)
	}
}

func TestQueryScanDestinations(t *testing.T) {
	sess, err := advm.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	table := advm.NewTable(advm.NewSchema("i", advm.I64, "f", advm.F64, "s", advm.Str, "b", advm.Bool))
	table.AppendRow(advm.I64Value(7), advm.F64Value(2.5), advm.StrValue("x"), advm.BoolValue(true))
	rows, err := sess.Query(t.Context(), advm.Scan(table))
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatal(rows.Err())
	}
	var i int64
	var f float64
	var s string
	var b bool
	if err := rows.Scan(&i, &f, &s, &b); err != nil {
		t.Fatal(err)
	}
	if i != 7 || f != 2.5 || s != "x" || !b {
		t.Fatalf("scanned %v %v %v %v", i, f, s, b)
	}
	var anyI, anyS any
	var asF float64
	if err := rows.Scan(&anyI, &asF, &anyS, nil); err != nil {
		t.Fatal(err)
	}
	if anyI.(int64) != 7 || asF != 2.5 || anyS.(string) != "x" {
		t.Fatalf("generic scan got %v %v %v", anyI, asF, anyS)
	}
	if err := rows.Scan(&s, &f, &s, &b); err == nil {
		t.Fatal("kind mismatch not reported")
	}
	if err := rows.Scan(&i); err == nil {
		t.Fatal("arity mismatch not reported")
	}
}

func TestWithDevicePlacement(t *testing.T) {
	for _, policy := range []advm.DeviceKind{advm.DeviceCPU, advm.DeviceGPU, advm.DeviceAuto} {
		sess := advm.MustCompile(chunkLoopSrc, chunkLoopKinds, advm.WithDevice(policy))
		ext, _ := chunkLoopBindings(1 << 12)
		if err := sess.Run(context.Background(), ext); err != nil {
			t.Fatal(err)
		}
		pl := sess.Stats().Placements
		if len(pl) != 1 {
			t.Fatalf("%v: placements=%v", policy, pl)
		}
		switch policy {
		case advm.DeviceCPU:
			if pl[0].Device != "cpu" {
				t.Fatalf("cpu policy placed on %q", pl[0].Device)
			}
		case advm.DeviceGPU:
			if pl[0].Device != "gpu" {
				t.Fatalf("gpu policy placed on %q", pl[0].Device)
			}
		default:
			if pl[0].Device != "cpu" && pl[0].Device != "gpu" {
				t.Fatalf("auto policy placed on %q", pl[0].Device)
			}
		}
		if pl[0].Elems != 1<<12 {
			t.Fatalf("placement elems=%d", pl[0].Elems)
		}
	}
}

func TestWithJITFalseOrderIndependent(t *testing.T) {
	// WithJIT(false) must win regardless of where it appears relative to
	// WithHotThresholds.
	for _, opts := range [][]advm.Option{
		{advm.WithJIT(false), advm.WithHotThresholds(1, time.Nanosecond)},
		{advm.WithHotThresholds(1, time.Nanosecond), advm.WithJIT(false)},
	} {
		sess := advm.MustCompile(chunkLoopSrc, chunkLoopKinds,
			append(opts, advm.WithSyncOptimizer(true))...)
		for run := 0; run < 3; run++ {
			ext, _ := chunkLoopBindings(1 << 14)
			if err := sess.Run(context.Background(), ext); err != nil {
				t.Fatal(err)
			}
		}
		if st := sess.Stats(); len(st.CompiledSegments) != 0 || st.InjectedTraces != 0 {
			t.Fatalf("JIT-disabled session compiled anyway: %+v", st)
		}
	}
}

func TestDeviceKindString(t *testing.T) {
	for want, d := range map[string]advm.DeviceKind{
		"cpu": advm.DeviceCPU, "gpu": advm.DeviceGPU, "auto": advm.DeviceAuto,
		"DeviceKind(-1)": advm.DeviceKind(-1), "DeviceKind(99)": advm.DeviceKind(99),
	} {
		if got := d.String(); got != want {
			t.Errorf("String(%d) = %q want %q", int(d), got, want)
		}
	}
}

func TestRowsCount(t *testing.T) {
	sess, err := advm.NewSession(advm.WithChunkLen(128))
	if err != nil {
		t.Fatal(err)
	}
	table := queryTable(10_000)
	plan := advm.Scan(table, "k", "v").Filter(`(\k -> k < 10)`, "k")

	// Fresh cursor: Count is the total cardinality.
	rows, err := sess.Query(t.Context(), plan)
	if err != nil {
		t.Fatal(err)
	}
	n, err := rows.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1000 {
		t.Fatalf("Count=%d want 1000", n)
	}
	if rows.Next() {
		t.Fatal("Next after Count should be false")
	}

	// Partially consumed cursor: Count returns the remainder.
	rows2, err := sess.Query(t.Context(), plan)
	if err != nil {
		t.Fatal(err)
	}
	consumed := int64(0)
	for i := 0; i < 7 && rows2.Next(); i++ {
		consumed++
	}
	rest, err := rows2.Count()
	if err != nil {
		t.Fatal(err)
	}
	if consumed+rest != 1000 {
		t.Fatalf("consumed %d + rest %d != 1000", consumed, rest)
	}
}
