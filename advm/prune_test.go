package advm

import (
	"testing"

	"repro/internal/colstore"
)

// predCase drives predFromLambda over the lambda shapes the TPC-H plans and
// typical embedders emit.
func TestPredFromLambda(t *testing.T) {
	cases := []struct {
		name   string
		lambda string
		float  bool
		ok     bool
		check  func(t *testing.T, p colstore.Pred)
	}{
		{
			name: "upper-closed", lambda: `(\d -> d <= 2436)`, ok: true,
			check: func(t *testing.T, p colstore.Pred) {
				if p.HasLo || !p.HasHi || p.HiI != 2436 || p.HiOpen {
					t.Fatalf("pred = %+v", p)
				}
			},
		},
		{
			name: "range", lambda: `(\d -> (d >= 2000) && (d < 2100))`, ok: true,
			check: func(t *testing.T, p colstore.Pred) {
				if !p.HasLo || p.LoI != 2000 || p.LoOpen || !p.HasHi || p.HiI != 2100 || !p.HiOpen {
					t.Fatalf("pred = %+v", p)
				}
			},
		},
		{
			name: "equality", lambda: `(\s -> s == 3)`, ok: true,
			check: func(t *testing.T, p colstore.Pred) {
				if !p.HasLo || !p.HasHi || p.LoI != 3 || p.HiI != 3 || p.LoOpen || p.HiOpen {
					t.Fatalf("pred = %+v", p)
				}
			},
		},
		{
			name: "mirrored-const", lambda: `(\d -> 10 < d)`, ok: true,
			check: func(t *testing.T, p colstore.Pred) {
				if !p.HasLo || p.LoI != 10 || !p.LoOpen || p.HasHi {
					t.Fatalf("pred = %+v", p)
				}
			},
		},
		{
			name: "tightening", lambda: `(\d -> (d > 5) && (d > 9) && (d <= 100) && (d < 80))`, ok: true,
			check: func(t *testing.T, p colstore.Pred) {
				if p.LoI != 9 || !p.LoOpen || p.HiI != 80 || !p.HiOpen {
					t.Fatalf("pred = %+v", p)
				}
			},
		},
		{
			name: "float-range", lambda: `(\x -> (x >= 0.05) && (x <= 0.07))`, float: true, ok: true,
			check: func(t *testing.T, p colstore.Pred) {
				if !p.Float || p.LoF != 0.05 || p.HiF != 0.07 || p.LoOpen || p.HiOpen {
					t.Fatalf("pred = %+v", p)
				}
			},
		},
		// Shapes extraction must refuse.
		{name: "disjunction", lambda: `(\d -> (d < 3) || (d > 9))`},
		{name: "not-equal", lambda: `(\d -> d != 7)`},
		{name: "arithmetic", lambda: `(\d -> d + 1 < 10)`},
		{name: "two-vars", lambda: `(\d -> d < d)`},
		{name: "float-on-int", lambda: `(\d -> d < 2.5)`},
		{name: "no-comparison", lambda: `(\d -> d * 2)`},
		{name: "bitwise-and", lambda: `(\d -> d & 3)`},
		{name: "parse-error", lambda: `(\d -> d <`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, ok := predFromLambda(tc.lambda, "c", tc.float)
			if ok != tc.ok {
				t.Fatalf("ok = %v, want %v (pred %+v)", ok, tc.ok, p)
			}
			if tc.check != nil {
				tc.check(t, p)
			}
		})
	}
}

// writeColstore persists an in-RAM table as a small-segment colstore
// directory so a few thousand rows span many prunable segments.
func writeColstore(t *testing.T, dir string, tb *Table) error {
	t.Helper()
	return colstore.Write(dir, tb, colstore.WriteOptions{SegmentRows: 512})
}

// A scan leaf reached along two plan paths must never be pruned: the two
// consumers imply different predicates.
func TestSharedScanLeafNotPruned(t *testing.T) {
	dir := t.TempDir()
	tb := NewTable(NewSchema("k", I64, "v", I64))
	for i := 0; i < 4096; i++ {
		tb.AppendRow(I64Value(int64(i)), I64Value(int64(i%7)))
	}
	if err := writeColstore(t, dir, tb); err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	st, err := sess.OpenTable(dir)
	if err != nil {
		t.Fatal(err)
	}
	scan := Scan(st, "k", "v")
	probe := scan.Filter(`(\k -> k < 100)`, "k")
	build := scan.Filter(`(\k -> k >= 4000)`, "k")
	plan := probe.Join(build, "v", "v")
	b := &builder{s: sess, workers: 1}
	b.annotatePruning(plan)
	if got := b.storeFor(scan); got != TableSource(st) {
		t.Fatalf("shared scan leaf got pruned store %T", got)
	}
}
