package advm_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/advm"
	"repro/internal/tpch"
)

// hotEngine returns an engine whose prepared programs compile quickly and
// deterministically.
func hotEngine(t *testing.T, opts ...advm.Option) *advm.Engine {
	t.Helper()
	eng, err := advm.NewEngine(append([]advm.Option{
		advm.WithSyncOptimizer(true),
		advm.WithHotThresholds(2, 200*time.Microsecond),
		advm.WithJITOptions(advm.JITOptions{CompileLatency: advm.NoCompileLatency}),
	}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestPrepareCacheSharesVM: preparing the same program twice — even under a
// different spelling — must resolve to one shared VM, observable through the
// cache counters and through run counts aggregating across handles.
func TestPrepareCacheSharesVM(t *testing.T) {
	eng := hotEngine(t)
	defer eng.Close()

	p1, err := eng.Prepare(chunkLoopSrc, chunkLoopKinds)
	if err != nil {
		t.Fatal(err)
	}
	respelled := `
mut pos
pos := 0
loop {
  let batch = read pos data
  if len(batch) == 0 then break
  let mapped = map (\y -> (y * 3 + 7) * (y - 1)) batch
  write out pos mapped
  pos := pos + len(batch)
}
`
	p2, err := eng.Prepare(respelled, chunkLoopKinds)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Fingerprint() != p2.Fingerprint() {
		t.Fatalf("fingerprints differ:\n%s\n%s", p1.Fingerprint(), p2.Fingerprint())
	}
	st := eng.Stats()
	if st.Prepares != 2 || st.CacheHits != 1 || st.PreparedPrograms != 1 {
		t.Fatalf("cache stats = %+v, want 2 prepares, 1 hit, 1 program", st)
	}

	// Runs through either handle land on the same shared VM.
	bind, _ := chunkLoopBindings(1 << 12)
	if err := p1.Run(context.Background(), bind); err != nil {
		t.Fatal(err)
	}
	bind2, _ := chunkLoopBindings(1 << 12)
	if err := p2.Run(context.Background(), bind2); err != nil {
		t.Fatal(err)
	}
	if got := p1.Stats().Runs; got != 2 {
		t.Fatalf("shared run count = %d, want 2 (both handles drive one VM)", got)
	}
}

// TestConcurrentSharedPreparedStress is the acceptance stress test: N
// goroutines across two sessions hammer one prepared plan under -race. The
// shared VM must compile exactly one set of traces (no per-session
// re-learning), and every result must match the serial baseline.
func TestConcurrentSharedPreparedStress(t *testing.T) {
	eng := hotEngine(t)
	defer eng.Close()

	prep, err := eng.Prepare(chunkLoopSrc, chunkLoopKinds)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := eng.Session()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := eng.Session()
	if err != nil {
		t.Fatal(err)
	}

	const n = 1 << 12
	_, want := chunkLoopBindings(n)

	const goroutines = 8
	const runsEach = 20
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		sess := s1
		if g%2 == 1 {
			sess = s2
		}
		wg.Add(1)
		go func(sess *advm.Session) {
			defer wg.Done()
			for r := 0; r < runsEach; r++ {
				bind, _ := chunkLoopBindings(n)
				if err := sess.RunPrepared(context.Background(), prep, bind); err != nil {
					errs <- err
					return
				}
				got := bind["out"].I64()
				if len(got) != n {
					errs <- fmt.Errorf("out length %d, want %d", len(got), n)
					return
				}
				for i := range want {
					if got[i] != want[i] {
						errs <- fmt.Errorf("out[%d] = %d, want %d", i, got[i], want[i])
						return
					}
				}
			}
		}(sess)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := prep.Stats()
	if st.Runs != goroutines*runsEach {
		t.Fatalf("shared Runs = %d, want %d", st.Runs, goroutines*runsEach)
	}
	if st.InjectedTraces == 0 {
		t.Fatal("shared VM never compiled — adaptivity was not exercised")
	}
	// One shared VM ⇒ one set of traces for the single hot segment, not one
	// per session or per goroutine. (A micro-adaptive revert+respecialize
	// could legitimately add a second injection; per-user re-learning would
	// show ≥ goroutines of them.)
	if st.InjectedTraces >= goroutines {
		t.Fatalf("InjectedTraces = %d — looks like per-user re-learning, want shared traces", st.InjectedTraces)
	}
	if s1.Stats().Runs+s2.Stats().Runs != goroutines*runsEach {
		t.Fatalf("session run accounting: %d + %d", s1.Stats().Runs, s2.Stats().Runs)
	}
}

// TestSessionAndEngineClose: the ErrClosed taxonomy.
func TestSessionAndEngineClose(t *testing.T) {
	eng := hotEngine(t)
	sess, err := eng.Session()
	if err != nil {
		t.Fatal(err)
	}
	prep, err := eng.Prepare(chunkLoopSrc, chunkLoopKinds)
	if err != nil {
		t.Fatal(err)
	}

	// Closing a shared session leaves the engine usable.
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	bind, _ := chunkLoopBindings(64)
	if err := sess.RunPrepared(context.Background(), prep, bind); !errors.Is(err, advm.ErrClosed) {
		t.Fatalf("RunPrepared on closed session = %v, want ErrClosed", err)
	}
	if _, err := sess.Query(context.Background(), advm.Scan(advm.NewTable(advm.NewSchema("k", advm.I64)), "k")); !errors.Is(err, advm.ErrClosed) {
		t.Fatalf("Query on closed session = %v, want ErrClosed", err)
	}
	if _, err := sess.Prepare(chunkLoopSrc, chunkLoopKinds); !errors.Is(err, advm.ErrClosed) {
		t.Fatalf("Prepare on closed session = %v, want ErrClosed", err)
	}
	if err := prep.Run(context.Background(), bind); err != nil {
		t.Fatalf("prepared program must outlive a shared session: %v", err)
	}

	// Closing the engine shuts everything down.
	s2, err := eng.Session()
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Run(context.Background(), bind); !errors.Is(err, advm.ErrClosed) {
		t.Fatalf("Run on session of closed engine = %v, want ErrClosed", err)
	}
	if err := prep.Run(context.Background(), bind); !errors.Is(err, advm.ErrClosed) {
		t.Fatalf("Run on prepared of closed engine = %v, want ErrClosed", err)
	}
	if _, err := eng.Session(); !errors.Is(err, advm.ErrClosed) {
		t.Fatalf("Session on closed engine = %v, want ErrClosed", err)
	}
	if _, err := eng.Prepare(chunkLoopSrc, chunkLoopKinds); !errors.Is(err, advm.ErrClosed) {
		t.Fatalf("Prepare on closed engine = %v, want ErrClosed", err)
	}
}

// TestStandaloneSessionCloseReleasesEngine: Compile/NewSession sessions own
// a private engine; closing the session closes it.
func TestStandaloneSessionCloseReleasesEngine(t *testing.T) {
	sess := advm.MustCompile(chunkLoopSrc, chunkLoopKinds, advm.WithSyncOptimizer(true))
	bind, _ := chunkLoopBindings(64)
	if err := sess.Run(context.Background(), bind); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Run(context.Background(), bind); !errors.Is(err, advm.ErrClosed) {
		t.Fatalf("Run after Close = %v, want ErrClosed", err)
	}
	if _, err := sess.Engine().Session(); !errors.Is(err, advm.ErrClosed) {
		t.Fatalf("private engine must close with its session, got %v", err)
	}
}

// q1Plan / q6Plan are the shared reference plans over the public builder.
func q1Plan(st *advm.Table) *advm.Plan { return tpch.PlanQ1(st) }

func q6Plan(st *advm.Table) *advm.Plan { return tpch.PlanQ6(st, tpch.DefaultQ6Params()) }

// collectRows materializes a query result as scanned values.
func collectRows(t *testing.T, sess *advm.Session, plan *advm.Plan) [][]advm.Value {
	t.Helper()
	rows, err := sess.Query(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var out [][]advm.Value
	n := len(rows.Columns())
	for rows.Next() {
		row := make([]advm.Value, n)
		dests := make([]any, n)
		for i := range row {
			dests[i] = &row[i]
		}
		if err := rows.Scan(dests...); err != nil {
			t.Fatal(err)
		}
		out = append(out, row)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestParallelQueryByteIdentical is the acceptance criterion: Q1 and Q6
// under WithParallelism(4) must produce byte-identical results to serial
// execution — float aggregates included, because the exchange preserves
// table order.
func TestParallelQueryByteIdentical(t *testing.T) {
	st := tpch.GenLineitem(0.01, 42)
	// Engine-level parallelism sizes the worker pool, so the fan-out is
	// granted even on a single-core host.
	eng := hotEngine(t, advm.WithParallelism(4))
	defer eng.Close()
	serial, err := eng.Session(advm.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := eng.Session(advm.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}

	for name, plan := range map[string]*advm.Plan{"q1": q1Plan(st), "q6": q6Plan(st)} {
		want := collectRows(t, serial, plan)
		got := collectRows(t, parallel, plan)
		if len(got) != len(want) || len(want) == 0 {
			t.Fatalf("%s: %d rows parallel vs %d serial", name, len(got), len(want))
		}
		for i := range want {
			for c := range want[i] {
				w, g := want[i][c], got[i][c]
				if w.Kind == advm.F64 {
					if math.Float64bits(w.F) != math.Float64bits(g.F) {
						t.Fatalf("%s row %d col %d: %v vs %v (must be bit-identical)", name, i, c, g.F, w.F)
					}
				} else if !g.Equal(w) {
					t.Fatalf("%s row %d col %d: %v vs %v", name, i, c, g, w)
				}
			}
		}
	}
	if ps := eng.Stats().ParallelQueries; ps != 2 {
		t.Fatalf("ParallelQueries = %d, want 2", ps)
	}
	if use := eng.Stats().PoolInUse; use != 0 {
		t.Fatalf("workers leaked: PoolInUse = %d after queries closed", use)
	}
}

// TestParallelQueryConcurrentSessions: many sessions running parallel
// queries against one engine pool must all succeed (degrading to fewer
// workers under contention) and return the pool to empty.
func TestParallelQueryConcurrentSessions(t *testing.T) {
	st := tpch.GenLineitem(0.005, 7)
	eng := hotEngine(t, advm.WithParallelism(4))
	defer eng.Close()
	serial, err := eng.Session(advm.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	want := collectRows(t, serial, q6Plan(st))

	const clients = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess, err := eng.Session()
			if err != nil {
				errs <- err
				return
			}
			rows, err := sess.Query(context.Background(), q6Plan(st))
			if err != nil {
				errs <- err
				return
			}
			defer rows.Close()
			if !rows.Next() {
				errs <- fmt.Errorf("no result row: %v", rows.Err())
				return
			}
			var rev float64
			if err := rows.Scan(&rev); err != nil {
				errs <- err
				return
			}
			if math.Float64bits(rev) != math.Float64bits(want[0][0].F) {
				errs <- fmt.Errorf("revenue %v, want %v", rev, want[0][0].F)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if use := eng.Stats().PoolInUse; use != 0 {
		t.Fatalf("workers leaked: PoolInUse = %d", use)
	}
}

// TestParallelQueryCancellation: cancelling mid-stream surfaces
// ErrCancelled and releases pooled workers.
func TestParallelQueryCancellation(t *testing.T) {
	st := tpch.GenLineitem(0.02, 9)
	eng := hotEngine(t, advm.WithParallelism(4))
	defer eng.Close()
	sess, err := eng.Session(advm.WithChunkLen(256))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := sess.Query(ctx, advm.Scan(st, "l_quantity").
		Compute("q2", `(\q -> q * q)`, advm.I64, "l_quantity"))
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("first row: %v", rows.Err())
	}
	cancel()
	for rows.Next() {
	}
	if err := rows.Err(); !errors.Is(err, advm.ErrCancelled) {
		t.Fatalf("Err after cancel = %v, want ErrCancelled", err)
	}
	rows.Close()
	if use := eng.Stats().PoolInUse; use != 0 {
		t.Fatalf("workers leaked after cancellation: PoolInUse = %d", use)
	}
}

// TestPrepareCacheBounded: a workload of endlessly distinct programs must
// recycle cache slots (LRU) instead of growing without bound, and evicted
// handles must stay usable.
func TestPrepareCacheBounded(t *testing.T) {
	eng, err := advm.NewEngine(advm.WithJIT(false))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	kinds := map[string]advm.Kind{"data": advm.I64, "out": advm.I64}
	first, err := eng.Prepare(`write out 0 (map (\x -> x + 0) (read 0 data 4))`, kinds)
	if err != nil {
		t.Fatal(err)
	}
	const distinct = 300
	for i := 1; i < distinct; i++ {
		src := fmt.Sprintf(`write out 0 (map (\x -> x + %d) (read 0 data 4))`, i)
		if _, err := eng.Prepare(src, kinds); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats()
	if st.PreparedPrograms >= distinct {
		t.Fatalf("cache grew unbounded: %d programs", st.PreparedPrograms)
	}
	if st.CacheEvictions == 0 || st.PreparedPrograms+int(st.CacheEvictions) != distinct {
		t.Fatalf("eviction accounting: programs=%d evictions=%d", st.PreparedPrograms, st.CacheEvictions)
	}
	// The evicted handle keeps working; only cache unification is lost.
	out := advm.NewVector(advm.I64, 0, 4)
	if err := first.Run(context.Background(), map[string]*advm.Vector{
		"data": advm.FromI64([]int64{1, 2, 3, 4}), "out": out,
	}); err != nil {
		t.Fatal(err)
	}
	if got := out.I64(); len(got) != 4 || got[0] != 1 {
		t.Fatalf("evicted prepared produced %v", got)
	}
}

// TestWithParallelismValidation: the knob rejects nonsense.
func TestWithParallelismValidation(t *testing.T) {
	if _, err := advm.NewEngine(advm.WithParallelism(0)); !errors.Is(err, advm.ErrBind) {
		t.Fatalf("WithParallelism(0) = %v, want ErrBind", err)
	}
}
