package advm

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/colstore"
	"repro/internal/engine"
	"repro/internal/qtrace"
	"repro/internal/vector"
)

// TraceLevel selects how much execution tracing a query records; see
// WithTracing.
type TraceLevel = qtrace.Level

// Trace levels.
const (
	// TraceOff records nothing (default); the tracing hooks reduce to nil
	// checks on the execution hot path.
	TraceOff = qtrace.LevelOff
	// TraceOps records the query/operator span tree: per-operator busy
	// time, rows, loops, tier, and one-off events (fused compile, deopt).
	TraceOps = qtrace.LevelOps
	// TraceMorsels additionally records one leaf span per dispatched
	// morsel with worker, steal, and device attribution — the level
	// ExplainAnalyze and the Chrome trace export use.
	TraceMorsels = qtrace.LevelMorsels
)

// WithTracing sets the default trace level of the session's queries
// (default TraceOff). Per-query overrides go through Session.QueryTraced.
// Disabled tracing costs a nil check per operator call; TraceOps adds two
// monotonic clock reads per operator Next; TraceMorsels adds one span
// allocation per dispatched morsel.
func WithTracing(level TraceLevel) Option {
	return func(o *options) error {
		switch level {
		case TraceOff, TraceOps, TraceMorsels:
			o.tracing = level
			return nil
		}
		return fmt.Errorf("unknown trace level %v", level)
	}
}

// initTrace creates the query's span tree skeleton: one root span plus one
// operator span per plan node, keyed by the node so every physical
// instantiation — serial chain, exchange workers, fused loop — reports
// into the same tree. The node set is therefore a function of the plan
// alone, identical at every parallelism.
func (b *builder) initTrace(level TraceLevel, plan *Plan, workers int) {
	b.trace = qtrace.New(level)
	if b.trace == nil {
		return
	}
	b.troot = b.trace.Root("query")
	b.troot.SetAttr("workers", workers)
	b.spans = map[*Plan]*qtrace.Span{}
	b.buildSpans = map[*Plan]*qtrace.Span{}
	b.addSpans(b.troot, plan)
}

func (b *builder) addSpans(parent *qtrace.Span, p *Plan) {
	if p == nil {
		return
	}
	var sp *qtrace.Span
	switch p.kind {
	case planScan:
		sp = parent.Child(qtrace.KindOp, "scan")
		sp.SetAttr("table_rows", p.table.Rows())
	case planFilter:
		sp = parent.Child(qtrace.KindOp, "filter")
		sp.SetAttr("col", p.col)
	case planCompute:
		sp = parent.Child(qtrace.KindOp, "compute")
		sp.SetAttr("out", p.out)
	case planAggregate:
		sp = parent.Child(qtrace.KindOp, "aggregate")
		if len(p.keys) > 0 {
			sp.SetAttr("keys", strings.Join(p.keys, ","))
		}
	case planJoin:
		sp = parent.Child(qtrace.KindOp, "join-probe")
		sp.SetAttr("on", p.probeKey+"="+p.buildKey)
	case planTopK:
		sp = parent.Child(qtrace.KindOp, "topk")
		sp.SetAttr("k", p.k)
	}
	b.spans[p] = sp
	if p.kind == planJoin {
		// The build side nests under a synthetic join-build span so its
		// materialization cost is separable from the probe stream.
		jb := sp.Child(qtrace.KindOp, "join-build")
		b.buildSpans[p] = jb
		b.addSpans(jb, p.buildSide)
	}
	b.addSpans(sp, p.child)
}

// traced wraps op so its Open/Next time, loops, and rows accumulate on the
// plan node's span. A no-op (returning op unchanged) when tracing is off.
func (b *builder) traced(p *Plan, op engine.Operator) engine.Operator {
	sp := b.spans[p]
	if sp == nil {
		return op
	}
	return &tracedOp{inner: op, sp: sp}
}

// traceMorsels reports whether per-morsel leaf spans are recorded.
func (b *builder) traceMorsels() bool { return b.trace.Morsels() }

// traceEvent records a zero-duration marker at the query root.
func (b *builder) traceEvent(name string) {
	if b.trace != nil {
		b.trace.Event(b.troot, name)
	}
}

// tracedOp times one operator into its plan-node span. Worker pipelines
// instantiate one tracedOp per worker over a shared span; the counters are
// atomics, so the sharing is contention-light and race-free.
type tracedOp struct {
	inner engine.Operator
	sp    *qtrace.Span
}

func (t *tracedOp) Schema() []engine.ColInfo { return t.inner.Schema() }

func (t *tracedOp) Open(ctx context.Context) error {
	start := time.Now()
	err := t.inner.Open(ctx)
	t.sp.AddTime(time.Since(start))
	return err
}

func (t *tracedOp) Next(ctx context.Context) (*vector.Chunk, error) {
	start := time.Now()
	c, err := t.inner.Next(ctx)
	t.sp.AddTime(time.Since(start))
	t.sp.AddLoop()
	if c != nil {
		t.sp.AddRows(int64(c.SelectedLen()))
	}
	return c, err
}

func (t *tracedOp) Close() error {
	err := t.inner.Close()
	t.sp.End()
	return err
}

// timedJoinBuild wraps a shared join-table build recipe so its wall time
// and output rows land on the join-build span.
func timedJoinBuild(sp *qtrace.Span, build func(context.Context) (*engine.JoinTable, error)) func(context.Context) (*engine.JoinTable, error) {
	if sp == nil {
		return build
	}
	return func(ctx context.Context) (*engine.JoinTable, error) {
		start := time.Now()
		tbl, err := build(ctx)
		sp.AddTime(time.Since(start))
		sp.AddLoop()
		if tbl != nil {
			sp.AddRows(int64(tbl.Rows().Rows()))
		}
		sp.End()
		return tbl, err
	}
}

// tracedView pairs a pruned stored-table view with its scan span so the
// per-scan segment scan/skip counts can be attached when the query ends.
type tracedView struct {
	sp   *qtrace.Span
	view *colstore.PrunedTable
}

// tracedViews collects the scan spans whose leaves read pruned views.
func (b *builder) tracedViews() []tracedView {
	if b.trace == nil {
		return nil
	}
	var out []tracedView
	for p, sp := range b.spans {
		if p.kind != planScan || sp == nil {
			continue
		}
		if v, ok := b.pruned[p].(*colstore.PrunedTable); ok {
			out = append(out, tracedView{sp: sp, view: v})
		}
	}
	return out
}

// Trace returns the query's execution trace, nil when the query ran with
// tracing off. The trace is complete (all spans ended, summary attributes
// attached) once the cursor is drained or closed.
func (r *Rows) Trace() *qtrace.Trace { return r.trace }

// finishTrace attaches the end-of-query summary attributes and closes
// every span. Called exactly once from Rows.close.
func (r *Rows) finishTrace() {
	if len(r.mops) > 0 {
		r.troot.SetAttr("steals", r.Steals())
	}
	if len(r.views) > 0 {
		sc, sk := r.ScanStats()
		r.troot.SetAttr("segments_scanned", sc)
		r.troot.SetAttr("segments_skipped", sk)
	}
	if r.fuse != nil {
		if d := r.fuse.Deopts.Load(); d > 0 {
			r.troot.SetAttr("deopts", d)
		}
	}
	for _, tv := range r.tviews {
		sc, sk := tv.view.Stats()
		tv.sp.SetAttr("segments_scanned", sc)
		tv.sp.SetAttr("segments_skipped", sk)
	}
	r.trace.Finish()
}

// ExplainAnalyze executes the plan to completion with full tracing
// (TraceMorsels) and renders the PostgreSQL-style EXPLAIN ANALYZE tree:
// per-operator actual time, self time, rows and loops, per-worker morsel
// counts, steals, devices, tier, and colstore segment skip counts.
func (s *Session) ExplainAnalyze(ctx context.Context, plan *Plan) (string, error) {
	rows, err := s.QueryTraced(ctx, plan, TraceMorsels)
	if err != nil {
		return "", err
	}
	defer rows.Close()
	if _, err := rows.Count(); err != nil {
		return "", err
	}
	return rows.Trace().ExplainAnalyze(), nil
}
