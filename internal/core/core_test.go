package core

import (
	"strings"
	"testing"

	"repro/internal/dsl"
	"repro/internal/jit"
	"repro/internal/vector"
)

func TestCompileAndRunFigure2(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sync = true
	cfg.HotCalls = 2
	cfg.JIT.CompileLatency = jit.NoCompileLatency
	p := MustCompile(dsl.Figure2Source, map[string]vector.Kind{
		"some_data": vector.I64, "v": vector.I64, "w": vector.I64,
	}, cfg)

	data := make([]int64, 4096)
	for i := range data {
		data[i] = int64(i%5 - 2)
	}
	v := vector.New(vector.I64, 0, 4096)
	w := vector.New(vector.I64, 0, 4096)
	if err := p.Run(map[string]*vector.Vector{
		"some_data": vector.FromI64(data), "v": v, "w": w,
	}); err != nil {
		t.Fatal(err)
	}
	if v.Len() != 4096 {
		t.Fatalf("v len = %d", v.Len())
	}
	if p.Profile().TotalNanos() == 0 {
		t.Fatal("no profiling data")
	}
	// Run again: the Sync epilogue compiled hot segments; report must show
	// traces.
	v2 := vector.New(vector.I64, 0, 4096)
	w2 := vector.New(vector.I64, 0, 4096)
	if err := p.Run(map[string]*vector.Vector{
		"some_data": vector.FromI64(data), "v": v2, "w": w2,
	}); err != nil {
		t.Fatal(err)
	}
	if len(p.CompiledSegments()) == 0 {
		t.Fatalf("Figure-2 loop not compiled; transitions: %v", p.Transitions())
	}
	if !strings.Contains(p.PlanReport(), "trace[") {
		t.Fatalf("plan report shows no traces:\n%s", p.PlanReport())
	}
	if !v.Equal(v2) || !w.Equal(w2) {
		t.Fatal("compiled run disagrees with interpreted run")
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile("let a = ", nil, DefaultConfig()); err == nil {
		t.Fatal("parse error must surface")
	}
	if _, err := Compile("let a = read 0 missing", nil, DefaultConfig()); err == nil {
		t.Fatal("unbound external must surface")
	}
}

func TestKernelCount(t *testing.T) {
	if n := KernelCount(); n < 500 {
		t.Fatalf("kernel inventory suspiciously small: %d", n)
	}
}
