// Package core is the public face of the adaptive VM framework: it wires
// the DSL front-end (parse → check → normalize) to the adaptive virtual
// machine (vectorized interpretation + profiling + greedy partitioning +
// trace JIT + micro-adaptive fallback) behind a small API that examples and
// host applications use.
//
// The three layers correspond to the paper's architecture:
//
//	dsl (§II)   — the data-parallel skeleton language of Table I/Figure 2
//	nir (§III-A) — normalized single-operation IR served by pre-compiled
//	              vectorized kernels (package primitive)
//	vm  (§III)  — the Figure-1 state machine over interpretation and
//	              partial compilation (packages interp, depgraph, jit)
package core

import (
	"fmt"

	"repro/internal/dsl"
	"repro/internal/interp"
	"repro/internal/nir"
	"repro/internal/primitive"
	"repro/internal/profile"
	"repro/internal/vector"
	"repro/internal/vm"
)

// Program is a compiled DSL program bound to an adaptive VM. It is reusable:
// every Run executes against fresh external bindings while profiling data
// and injected traces persist and keep improving later runs.
type Program struct {
	Source string
	AST    *dsl.Program
	IR     *nir.Program
	VM     *vm.VM
}

// Config re-exports the VM configuration.
type Config = vm.Config

// DefaultConfig returns the production-shaped VM configuration (background
// optimizer, micro-adaptive revert, modeled compile latency).
func DefaultConfig() Config { return vm.DefaultConfig() }

// Compile parses, checks and normalizes src, and prepares an adaptive VM.
// externals maps every external array name used by read/write/gather/scatter
// to its element kind.
func Compile(src string, externals map[string]vector.Kind, cfg Config) (*Program, error) {
	ast, err := dsl.Parse(src)
	if err != nil {
		return nil, err
	}
	ir, err := nir.Normalize(ast, externals)
	if err != nil {
		return nil, err
	}
	return &Program{Source: src, AST: ast, IR: ir, VM: vm.New(ir, cfg)}, nil
}

// MustCompile is Compile for tests and examples; it panics on error.
func MustCompile(src string, externals map[string]vector.Kind, cfg Config) *Program {
	p, err := Compile(src, externals, cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Run executes the program once against the given external arrays.
func (p *Program) Run(ext map[string]*vector.Vector) error {
	env, err := p.VM.NewEnv(ext)
	if err != nil {
		return err
	}
	return p.VM.Run(env)
}

// Profile returns the VM's live profiling counters.
func (p *Program) Profile() *profile.Profile { return p.VM.Interp.Prof }

// Transitions returns the VM's Figure-1 state-machine log.
func (p *Program) Transitions() []vm.Transition { return p.VM.Transitions() }

// CompiledSegments returns the segments currently running compiled plans.
func (p *Program) CompiledSegments() []int { return p.VM.CompiledSegments() }

// PlanReport renders the current execution plan of every segment, showing
// which steps are interpreted and which run compiled traces.
func (p *Program) PlanReport() string {
	out := ""
	for _, seg := range p.VM.Interp.Segments {
		out += fmt.Sprintf("segment %d:\n", seg.ID)
		for _, step := range p.VM.Interp.Plan(seg.ID).Steps {
			out += "  " + step.Describe() + "\n"
		}
	}
	return out
}

// KernelCount reports the number of pre-compiled vectorized kernels
// available to the interpreter ("generated and compiled during startup").
func KernelCount() int { return primitive.Count() }

// NewEnv exposes environment construction for callers that manage
// environments directly (e.g. to reuse buffers across runs).
func (p *Program) NewEnv(ext map[string]*vector.Vector) (*interp.Env, error) {
	return p.VM.NewEnv(ext)
}
