// Package core was the original facade of the adaptive VM framework.
//
// Deprecated: embed through the public package repro/advm instead. advm
// provides sessions configured via functional options (no raw vm.Config),
// context-aware execution with typed errors, a streaming query API and an
// observability surface. This shim remains only so existing internal
// callers keep compiling; it adds nothing over advm and will be removed.
package core

import (
	"context"
	"fmt"

	"repro/internal/dsl"
	"repro/internal/interp"
	"repro/internal/nir"
	"repro/internal/primitive"
	"repro/internal/profile"
	"repro/internal/vector"
	"repro/internal/vm"
)

// Program is a compiled DSL program bound to an adaptive VM.
//
// Deprecated: use advm.Session.
type Program struct {
	Source string
	AST    *dsl.Program
	IR     *nir.Program
	VM     *vm.VM
}

// Config re-exports the VM configuration.
//
// Deprecated: configure an advm.Session with functional options
// (advm.WithHotThresholds, advm.WithSyncOptimizer, …) instead of raw
// configuration structs.
type Config = vm.Config

// DefaultConfig returns the production-shaped VM configuration.
//
// Deprecated: advm sessions default to this configuration already.
func DefaultConfig() Config { return vm.DefaultConfig() }

// Compile parses, checks and normalizes src, and prepares an adaptive VM.
//
// Deprecated: use advm.Compile.
func Compile(src string, externals map[string]vector.Kind, cfg Config) (*Program, error) {
	ast, err := dsl.Parse(src)
	if err != nil {
		return nil, err
	}
	ir, err := nir.Normalize(ast, externals)
	if err != nil {
		return nil, err
	}
	return &Program{Source: src, AST: ast, IR: ir, VM: vm.New(ir, cfg)}, nil
}

// MustCompile is Compile for tests and examples; it panics on error.
//
// Deprecated: use advm.MustCompile.
func MustCompile(src string, externals map[string]vector.Kind, cfg Config) *Program {
	p, err := Compile(src, externals, cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Run executes the program once against the given external arrays.
//
// Deprecated: use advm.Session.Run, which also takes a context.
func (p *Program) Run(ext map[string]*vector.Vector) error {
	return p.RunContext(context.Background(), ext)
}

// RunContext executes the program once, honoring ctx at chunk boundaries.
//
// Deprecated: use advm.Session.Run.
func (p *Program) RunContext(ctx context.Context, ext map[string]*vector.Vector) error {
	env, err := p.VM.NewEnv(ext)
	if err != nil {
		return err
	}
	return p.VM.RunContext(ctx, env)
}

// Profile returns the VM's live profiling counters.
//
// Deprecated: use advm.Session.Stats.
func (p *Program) Profile() *profile.Profile { return p.VM.Interp.Prof }

// Transitions returns the VM's Figure-1 state-machine log.
//
// Deprecated: use advm.Session.Stats.
func (p *Program) Transitions() []vm.Transition { return p.VM.Transitions() }

// CompiledSegments returns the segments currently running compiled plans.
//
// Deprecated: use advm.Session.Stats.
func (p *Program) CompiledSegments() []int { return p.VM.CompiledSegments() }

// PlanReport renders the current execution plan of every segment.
//
// Deprecated: use advm.Session.PlanReport.
func (p *Program) PlanReport() string {
	out := ""
	for _, seg := range p.VM.Interp.Segments {
		out += fmt.Sprintf("segment %d:\n", seg.ID)
		for _, step := range p.VM.Interp.Plan(seg.ID).Steps {
			out += "  " + step.Describe() + "\n"
		}
	}
	return out
}

// KernelCount reports the number of pre-compiled vectorized kernels.
//
// Deprecated: use advm.KernelCount.
func KernelCount() int { return primitive.Count() }

// NewEnv exposes environment construction for callers that manage
// environments directly.
//
// Deprecated: use advm.Session.
func (p *Program) NewEnv(ext map[string]*vector.Vector) (*interp.Env, error) {
	return p.VM.NewEnv(ext)
}
