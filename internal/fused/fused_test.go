package fused_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/fused"
	"repro/internal/vector"
)

func ci(name string, k vector.Kind) engine.ColInfo { return engine.ColInfo{Name: name, Kind: k} }

// testTable builds a two-column (k i64, x f64) table of n rows.
func testTable(n int) *vector.DSMStore {
	st := vector.NewDSMStore(vector.NewSchema("k", vector.I64, "x", vector.F64))
	for i := 0; i < n; i++ {
		st.AppendRow(vector.I64Value(int64(i%97)), vector.F64Value(float64(i)/8))
	}
	return st
}

// buildTable hashes a small (bk i64, pay i64) build side.
func buildTable(n, dup int) *engine.SharedJoinTable {
	rows := vector.NewDSMStore(vector.NewSchema("bk", vector.I64, "pay", vector.I64))
	for i := 0; i < n; i++ {
		for d := 0; d < dup; d++ {
			rows.AppendRow(vector.I64Value(int64(i)), vector.I64Value(int64(i*100+d)))
		}
	}
	return engine.NewSharedJoinTable(
		[]engine.ColInfo{ci("bk", vector.I64), ci("pay", vector.I64)},
		func(context.Context) (*engine.JoinTable, error) {
			return engine.NewJoinTable(rows, "bk")
		})
}

// TestCompileShapes exercises every monomorphized snippet and the main
// decline paths: compilation is best-effort, so an unrecognized shape must
// return ok=false rather than a wrong program.
func TestCompileShapes(t *testing.T) {
	scan := []engine.ColInfo{ci("k", vector.I64), ci("x", vector.F64)}
	cases := []struct {
		name   string
		stages []fused.Stage
		ok     bool
		ops    int
	}{
		{"filter-lt-i64", []fused.Stage{{Kind: fused.StageFilter, Lambda: `(\k -> k < 10)`, Col: "k"}}, true, 1},
		{"filter-conj", []fused.Stage{{Kind: fused.StageFilter, Lambda: `(\k -> (k >= 3) && (k <= 90))`, Col: "k"}}, true, 2},
		{"filter-mod-eq", []fused.Stage{{Kind: fused.StageFilter, Lambda: `(\k -> (k % 7) == 2)`, Col: "k"}}, true, 1},
		{"filter-f64", []fused.Stage{{Kind: fused.StageFilter, Lambda: `(\x -> x != 2.5)`, Col: "x"}}, true, 1},
		{"filter-neg-const", []fused.Stage{{Kind: fused.StageFilter, Lambda: `(\x -> x > -1.5)`, Col: "x"}}, true, 1},
		{"compute-affine-i64", []fused.Stage{{Kind: fused.StageCompute, Lambda: `(\k -> k * 3 + 7)`, Out: "y", OutKind: vector.I64, Cols: []string{"k"}}}, true, 1},
		{"compute-scale", []fused.Stage{{Kind: fused.StageCompute, Lambda: `(\k -> k * 5)`, Out: "y", OutKind: vector.I64, Cols: []string{"k"}}}, true, 1},
		{"compute-square", []fused.Stage{{Kind: fused.StageCompute, Lambda: `(\x -> x * x)`, Out: "y", OutKind: vector.F64, Cols: []string{"x"}}}, true, 1},
		{"compute-modmul", []fused.Stage{{Kind: fused.StageCompute, Lambda: `(\k -> (k % 10) * 3)`, Out: "y", OutKind: vector.I64, Cols: []string{"k"}}}, true, 1},
		{"compute-muladd", []fused.Stage{{Kind: fused.StageCompute, Lambda: `(\k j -> k + j * 2)`, Out: "y", OutKind: vector.I64, Cols: []string{"k", "k"}}}, true, 1},
		{"compute-mul-f64", []fused.Stage{{Kind: fused.StageCompute, Lambda: `(\x y -> x * y)`, Out: "z", OutKind: vector.F64, Cols: []string{"x", "x"}}}, true, 1},
		{"compute-mul-const-sub", []fused.Stage{{Kind: fused.StageCompute, Lambda: `(\x y -> x * (1.0 - y))`, Out: "z", OutKind: vector.F64, Cols: []string{"x", "x"}}}, true, 1},
		{"compute-mul-const-add", []fused.Stage{{Kind: fused.StageCompute, Lambda: `(\x y -> x * (1.0 + y))`, Out: "z", OutKind: vector.F64, Cols: []string{"x", "x"}}}, true, 1},
		{"probe", []fused.Stage{{Kind: fused.StageProbe, ProbeKey: "k", Payload: []string{"pay"},
			BuildNames: []string{"bk", "pay"}, BuildKinds: []vector.Kind{vector.I64, vector.I64}}}, true, 1},
		// Declines.
		{"kind-mismatch-const", []fused.Stage{{Kind: fused.StageFilter, Lambda: `(\k -> k < 10.5)`, Col: "k"}}, false, 0},
		{"unknown-col", []fused.Stage{{Kind: fused.StageFilter, Lambda: `(\v -> v < 10)`, Col: "nope"}}, false, 0},
		{"unparsable", []fused.Stage{{Kind: fused.StageFilter, Lambda: `(\k -> `, Col: "k"}}, false, 0},
		{"const-on-left", []fused.Stage{{Kind: fused.StageFilter, Lambda: `(\k -> 10 > k)`, Col: "k"}}, false, 0},
		{"mod-zero", []fused.Stage{{Kind: fused.StageFilter, Lambda: `(\k -> (k % 0) == 1)`, Col: "k"}}, false, 0},
		{"compute-shadow", []fused.Stage{{Kind: fused.StageCompute, Lambda: `(\k -> k * 2)`, Out: "x", OutKind: vector.I64, Cols: []string{"k"}}}, false, 0},
		{"compute-unknown-shape", []fused.Stage{{Kind: fused.StageCompute, Lambda: `(\k -> k + k)`, Out: "y", OutKind: vector.I64, Cols: []string{"k"}}}, false, 0},
		{"compute-wrong-out-kind", []fused.Stage{{Kind: fused.StageCompute, Lambda: `(\k -> k * 3 + 7)`, Out: "y", OutKind: vector.F64, Cols: []string{"k"}}}, false, 0},
		{"probe-f64-key", []fused.Stage{{Kind: fused.StageProbe, ProbeKey: "x", Payload: nil,
			BuildNames: []string{"bk"}, BuildKinds: []vector.Kind{vector.I64}}}, false, 0},
		{"probe-missing-payload", []fused.Stage{{Kind: fused.StageProbe, ProbeKey: "k", Payload: []string{"zz"},
			BuildNames: []string{"bk"}, BuildKinds: []vector.Kind{vector.I64}}}, false, 0},
		{"probe-shadow-payload", []fused.Stage{{Kind: fused.StageProbe, ProbeKey: "k", Payload: []string{"x"},
			BuildNames: []string{"bk", "x"}, BuildKinds: []vector.Kind{vector.I64, vector.F64}}}, false, 0},
		{"probe-dup-payload", []fused.Stage{{Kind: fused.StageProbe, ProbeKey: "k", Payload: []string{"pay", "pay"},
			BuildNames: []string{"bk", "pay"}, BuildKinds: []vector.Kind{vector.I64, vector.I64}}}, false, 0},
	}
	for _, tc := range cases {
		prog, ok := fused.Compile(scan, tc.stages)
		if ok != tc.ok {
			t.Errorf("%s: ok = %v, want %v", tc.name, ok, tc.ok)
			continue
		}
		if ok && prog.Ops() != tc.ops {
			t.Errorf("%s: %d ops, want %d", tc.name, prog.Ops(), tc.ops)
		}
	}
	if _, ok := fused.Compile([]engine.ColInfo{ci("k", vector.I64), ci("k", vector.I64)}, nil); ok {
		t.Error("duplicate scan columns must decline fusion")
	}
}

// runFused mounts prog over a fresh scan of st and collects its output.
func runFused(t *testing.T, prog *fused.Program, st *vector.DSMStore, cols []string,
	tables []*engine.SharedJoinTable, ctrs *fused.Counters,
	fallback func(engine.Operator) (engine.Operator, error)) (*vector.DSMStore, *fused.Exec) {
	t.Helper()
	leaf, err := engine.NewScan(st, cols...)
	if err != nil {
		t.Fatal(err)
	}
	leaf.SetChunkLen(256)
	ex := fused.NewExec(prog, leaf, tables, ctrs, fallback)
	out, err := engine.Collect(context.Background(), ex)
	if err != nil {
		t.Fatal(err)
	}
	return out, ex
}

// runInterp stacks interpreted operators over a fresh scan and collects.
func runInterp(t *testing.T, st *vector.DSMStore, cols []string, chain func(engine.Operator) engine.Operator) *vector.DSMStore {
	t.Helper()
	leaf, err := engine.NewScan(st, cols...)
	if err != nil {
		t.Fatal(err)
	}
	leaf.SetChunkLen(256)
	out, err := engine.Collect(context.Background(), chain(leaf))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func storesEqual(t *testing.T, got, want *vector.DSMStore) {
	t.Helper()
	if got.Rows() != want.Rows() {
		t.Fatalf("rows = %d, want %d", got.Rows(), want.Rows())
	}
	gs, ws := got.Schema(), want.Schema()
	if fmt.Sprint(gs) != fmt.Sprint(ws) {
		t.Fatalf("schema = %v, want %v", gs, ws)
	}
	for c := range gs.Names {
		for r := 0; r < got.Rows(); r++ {
			g, w := got.Col(c).Get(r), want.Col(c).Get(r)
			if g != w {
				t.Fatalf("col %s row %d: %v, want %v", gs.Names[c], r, g, w)
			}
		}
	}
}

// TestExecMatchesInterpreter: a filter→compute segment must produce exactly
// the interpreted chain's rows and values.
func TestExecMatchesInterpreter(t *testing.T) {
	st := testTable(5000)
	scan := []engine.ColInfo{ci("k", vector.I64), ci("x", vector.F64)}
	stages := []fused.Stage{
		{Kind: fused.StageFilter, Lambda: `(\k -> (k >= 10) && (k < 80))`, Col: "k"},
		{Kind: fused.StageCompute, Lambda: `(\k -> k * 3 + 7)`, Out: "y", OutKind: vector.I64, Cols: []string{"k"}},
		{Kind: fused.StageCompute, Lambda: `(\x y -> x * y)`, Out: "z", OutKind: vector.F64, Cols: []string{"x", "x"}},
	}
	prog, ok := fused.Compile(scan, stages)
	if !ok {
		t.Fatal("segment must compile")
	}
	if prog.Tables() != 0 {
		t.Fatalf("Tables = %d, want 0", prog.Tables())
	}
	ctrs := &fused.Counters{}
	got, ex := runFused(t, prog, st, []string{"k", "x"}, nil, ctrs, nil)
	if ex.Deopted() {
		t.Fatal("steady-selectivity segment must not deopt")
	}
	want := runInterp(t, st, []string{"k", "x"}, func(op engine.Operator) engine.Operator {
		f := engine.NewFilter(op, `(\k -> (k >= 10) && (k < 80))`, "k")
		c1 := engine.NewCompute(f, "y", `(\k -> k * 3 + 7)`, vector.I64, "k")
		return engine.NewCompute(c1, "z", `(\x y -> x * y)`, vector.F64, "x", "x")
	})
	storesEqual(t, got, want)
	if ctrs.Chunks.Load() == 0 || ctrs.Rows.Load() != int64(got.Rows()) {
		t.Fatalf("counters = %d chunks / %d rows, want >0 / %d", ctrs.Chunks.Load(), ctrs.Rows.Load(), got.Rows())
	}
}

// TestExecProbeMatchesInterpreter: a probe stage must emit the exact
// probe-major, build-order pairs of the interpreted TableProbe.
func TestExecProbeMatchesInterpreter(t *testing.T) {
	st := testTable(4000)
	sh := buildTable(50, 2) // keys 0..49, two matches each; keys 50..96 miss
	scan := []engine.ColInfo{ci("k", vector.I64), ci("x", vector.F64)}
	stages := []fused.Stage{
		{Kind: fused.StageFilter, Lambda: `(\k -> k < 70)`, Col: "k"},
		{Kind: fused.StageProbe, ProbeKey: "k", Payload: []string{"pay"},
			BuildNames: []string{"bk", "pay"}, BuildKinds: []vector.Kind{vector.I64, vector.I64}, Table: 0},
		{Kind: fused.StageCompute, Lambda: `(\p q -> p + q * 1)`, Out: "s", OutKind: vector.I64, Cols: []string{"k", "pay"}},
	}
	prog, ok := fused.Compile(scan, stages)
	if !ok {
		t.Fatal("probe segment must compile")
	}
	if prog.Tables() != 1 {
		t.Fatalf("Tables = %d, want 1", prog.Tables())
	}
	got, _ := runFused(t, prog, st, []string{"k", "x"}, []*engine.SharedJoinTable{sh}, nil, nil)
	want := runInterp(t, st, []string{"k", "x"}, func(op engine.Operator) engine.Operator {
		f := engine.NewFilter(op, `(\k -> k < 70)`, "k")
		tp, err := engine.NewTableProbe(f, sh, "k", "pay")
		if err != nil {
			t.Fatal(err)
		}
		return engine.NewCompute(tp, "s", `(\p q -> p + q * 1)`, vector.I64, "k", "pay")
	})
	storesEqual(t, got, want)
}

// shiftTable: a long near-empty region then a dense one, so a fused filter
// warms its guard on ~0 selectivity and the dense region trips it.
func shiftTable() *vector.DSMStore {
	st := vector.NewDSMStore(vector.NewSchema("k", vector.I64, "x", vector.F64))
	for i := 0; i < 2048; i++ {
		st.AppendRow(vector.I64Value(int64(1000+i)), vector.F64Value(float64(i)))
	}
	for i := 0; i < 1024; i++ {
		st.AppendRow(vector.I64Value(int64(i%10)), vector.F64Value(float64(i)))
	}
	return st
}

// TestExecDeoptOnSelectivityShift: the guard must trip on the dense region,
// the Exec must revert to the fallback chain, and the output must equal the
// interpreted chain's — including the chunk that tripped.
func TestExecDeoptOnSelectivityShift(t *testing.T) {
	st := shiftTable()
	scan := []engine.ColInfo{ci("k", vector.I64), ci("x", vector.F64)}
	stages := []fused.Stage{{Kind: fused.StageFilter, Lambda: `(\k -> k < 100)`, Col: "k"}}
	prog, ok := fused.Compile(scan, stages)
	if !ok {
		t.Fatal("must compile")
	}
	ctrs := &fused.Counters{}
	fb := func(leaf engine.Operator) (engine.Operator, error) {
		return engine.NewFilter(leaf, `(\k -> k < 100)`, "k"), nil
	}
	got, ex := runFused(t, prog, st, []string{"k", "x"}, nil, ctrs, fb)
	if !ex.Deopted() {
		t.Fatal("selectivity shift must deopt")
	}
	if ctrs.Deopts.Load() != 1 {
		t.Fatalf("Deopts = %d, want 1", ctrs.Deopts.Load())
	}
	want := runInterp(t, st, []string{"k", "x"}, func(op engine.Operator) engine.Operator {
		return engine.NewFilter(op, `(\k -> k < 100)`, "k")
	})
	storesEqual(t, got, want)
}

// TestExecProbeCapacityGuard: a build side with pathological fan-out must
// trip the capacity guard and fall back, with identical output.
func TestExecProbeCapacityGuard(t *testing.T) {
	st := testTable(2000)
	sh := buildTable(5, 2000) // 5 keys × 2000 duplicate build rows
	scan := []engine.ColInfo{ci("k", vector.I64), ci("x", vector.F64)}
	stages := []fused.Stage{{Kind: fused.StageProbe, ProbeKey: "k", Payload: []string{"pay"},
		BuildNames: []string{"bk", "pay"}, BuildKinds: []vector.Kind{vector.I64, vector.I64}, Table: 0}}
	prog, ok := fused.Compile(scan, stages)
	if !ok {
		t.Fatal("must compile")
	}
	fb := func(leaf engine.Operator) (engine.Operator, error) {
		return engine.NewTableProbe(leaf, sh, "k", "pay")
	}
	got, ex := runFused(t, prog, st, []string{"k", "x"}, []*engine.SharedJoinTable{sh}, nil, fb)
	if !ex.Deopted() {
		t.Fatal("pathological fan-out must deopt")
	}
	want := runInterp(t, st, []string{"k", "x"}, func(op engine.Operator) engine.Operator {
		tp, err := engine.NewTableProbe(op, sh, "k", "pay")
		if err != nil {
			t.Fatal(err)
		}
		return tp
	})
	storesEqual(t, got, want)
}

// TestExecAllSnippets runs one segment through every remaining monomorphized
// snippet — the F64 comparison family, equality filters, mod filters and the
// rest of the compute ops — against the interpreted chain.
func TestExecAllSnippets(t *testing.T) {
	st := testTable(3000)
	scan := []engine.ColInfo{ci("k", vector.I64), ci("x", vector.F64)}
	type spec struct {
		name   string
		stages []fused.Stage
		chain  func(engine.Operator) engine.Operator
	}
	filt := func(lambda, col string) spec {
		return spec{
			name:   lambda,
			stages: []fused.Stage{{Kind: fused.StageFilter, Lambda: lambda, Col: col}},
			chain: func(op engine.Operator) engine.Operator {
				return engine.NewFilter(op, lambda, col)
			},
		}
	}
	comp := func(lambda string, kind vector.Kind, cols ...string) spec {
		return spec{
			name:   lambda,
			stages: []fused.Stage{{Kind: fused.StageCompute, Lambda: lambda, Out: "o", OutKind: kind, Cols: cols}},
			chain: func(op engine.Operator) engine.Operator {
				return engine.NewCompute(op, "o", lambda, kind, cols...)
			},
		}
	}
	specs := []spec{
		filt(`(\k -> k <= 40)`, "k"),
		filt(`(\k -> k > 40)`, "k"),
		filt(`(\k -> k == 40)`, "k"),
		filt(`(\k -> k != 40)`, "k"),
		filt(`(\k -> (k % 5) == 2)`, "k"),
		filt(`(\x -> x < 100.5)`, "x"),
		filt(`(\x -> x <= 100.5)`, "x"),
		filt(`(\x -> x > 100.5)`, "x"),
		filt(`(\x -> x >= 100.5)`, "x"),
		filt(`(\x -> x == 4.5)`, "x"),
		filt(`(\x -> x != 4.5)`, "x"),
		comp(`(\k -> k * k)`, vector.I64, "k"),
		comp(`(\k -> (k % 9) * 4)`, vector.I64, "k"),
		comp(`(\x -> x * 2.5 + 1.25)`, vector.F64, "x"),
		comp(`(\x -> x * 0.5)`, vector.F64, "x"),
		comp(`(\k j -> k + j * 3)`, vector.I64, "k", "k"),
		comp(`(\x y -> x * (2.0 - y))`, vector.F64, "x", "x"),
		comp(`(\x y -> x * (2.0 + y))`, vector.F64, "x", "x"),
	}
	for _, sp := range specs {
		prog, ok := fused.Compile(scan, sp.stages)
		if !ok {
			t.Fatalf("%s: must compile", sp.name)
		}
		got, _ := runFused(t, prog, st, []string{"k", "x"}, nil, nil, nil)
		want := runInterp(t, st, []string{"k", "x"}, sp.chain)
		storesEqual(t, got, want)
	}
}

// TestCache: positive and negative entries, hit/miss counters, LRU eviction.
func TestCache(t *testing.T) {
	c := fused.NewCache(2)
	prog, ok := fused.Compile([]engine.ColInfo{ci("k", vector.I64)},
		[]fused.Stage{{Kind: fused.StageFilter, Lambda: `(\k -> k < 5)`, Col: "k"}})
	if !ok {
		t.Fatal("must compile")
	}
	if _, present := c.Lookup("a"); present {
		t.Fatal("empty cache must miss")
	}
	c.Store("a", prog)
	c.Store("b", nil) // negative entry
	if p, present := c.Lookup("b"); !present || p != nil {
		t.Fatal("negative entry must be present with nil program")
	}
	if p, present := c.Lookup("a"); !present || p != prog {
		t.Fatal("positive entry lost")
	}
	c.Store("c", prog) // evicts the LRU entry ("a" was touched after "b" → "b" goes)
	if _, present := c.Lookup("b"); present {
		t.Fatal("LRU entry must be evicted")
	}
	if _, present := c.Lookup("a"); !present {
		t.Fatal("recently used entry must survive eviction")
	}
	entries, hits, misses := c.Stats()
	if entries != 2 || hits == 0 || misses == 0 {
		t.Fatalf("stats = %d entries, %d hits, %d misses", entries, hits, misses)
	}
	// Store over an existing key updates in place.
	c.Store("a", nil)
	if p, present := c.Lookup("a"); !present || p != nil {
		t.Fatal("in-place update lost")
	}
	if fused.NewCache(0) == nil {
		t.Fatal("default-size cache")
	}
}

// TestSignatureInjective: every structural difference must change the
// signature, and identical inputs must reproduce it byte-for-byte.
func TestSignatureInjective(t *testing.T) {
	scan := []engine.ColInfo{ci("k", vector.I64), ci("x", vector.F64)}
	base := []fused.Stage{
		{Kind: fused.StageFilter, Lambda: `(\k -> k < 10)`, Col: "k"},
		{Kind: fused.StageCompute, Lambda: `(\k -> k * 2)`, Out: "y", OutKind: vector.I64, Cols: []string{"k"}},
		{Kind: fused.StageProbe, ProbeKey: "k", Payload: []string{"pay"},
			BuildNames: []string{"bk", "pay"}, BuildKinds: []vector.Kind{vector.I64, vector.I64}, Table: 0},
	}
	sigs := map[string]string{}
	add := func(name string, scan []engine.ColInfo, stages []fused.Stage) {
		s := fused.Signature(scan, stages)
		if prev, dup := sigs[s]; dup {
			t.Fatalf("signature collision between %s and %s: %q", prev, name, s)
		}
		sigs[s] = name
	}
	clone := func(mut func([]fused.Stage)) []fused.Stage {
		cp := append([]fused.Stage(nil), base...)
		mut(cp)
		return cp
	}
	add("base", scan, base)
	add("scan-kind", []engine.ColInfo{ci("k", vector.I64), ci("x", vector.I64)}, base)
	add("scan-name", []engine.ColInfo{ci("k2", vector.I64), ci("x", vector.F64)}, base)
	add("lambda", scan, clone(func(s []fused.Stage) { s[0].Lambda = `(\k -> k < 11)` }))
	add("filter-col", scan, clone(func(s []fused.Stage) { s[0].Col = "x" }))
	add("out-kind", scan, clone(func(s []fused.Stage) { s[1].OutKind = vector.F64 }))
	add("out-name", scan, clone(func(s []fused.Stage) { s[1].Out = "z" }))
	add("probe-payload", scan, clone(func(s []fused.Stage) { s[2].Payload = nil }))
	add("probe-table", scan, clone(func(s []fused.Stage) { s[2].Table = 1 }))
	add("probe-build-kind", scan, clone(func(s []fused.Stage) {
		s[2].BuildKinds = []vector.Kind{vector.I64, vector.F64}
	}))
	add("fewer-stages", scan, base[:2])
	if got, want := fused.Signature(scan, base), fused.Signature(scan, base); got != want {
		t.Fatal("signature must be deterministic")
	}
}
