package fused

import (
	"context"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/vector"
)

// Counters is the per-query tier telemetry, shared by every worker's Exec
// (atomics — workers never synchronize beyond them). The advm layer merges a
// query's counters into session and engine totals when its cursor closes.
type Counters struct {
	// Chunks counts chunks processed by fused loops; Rows counts the rows
	// those chunks emitted.
	Chunks, Rows atomic.Int64
	// Deopts counts guard failures that reverted an Exec to the interpreter.
	Deopts atomic.Int64
	// OnDeopt, when non-nil, is invoked once per deopt in addition to the
	// Deopts increment (the tracing layer emits a deopt event through it).
	// Set it before the query starts; it may be called from any worker, so
	// it must be safe for concurrent use.
	OnDeopt func()
}

// Guard tuning. The selectivity guard learns a mean output/input row ratio
// over the first chunks of each Exec and trips when one chunk exceeds
// guardFactor× that mean plus guardSlack — a mid-stream distribution shift
// the loop was not specialized for (mirroring the VM's micro-adaptive
// revert). The slack keeps naturally clustered data — date-sorted TPC-H
// scans where in-range regions follow empty ones — from tripping it: only a
// shift past an absolute half of the chunk deopts a loop that warmed up on
// highly selective data. The capacity guard bounds probe fan-out per chunk.
const (
	guardWarmChunks = 4
	guardFactor     = 8.0
	guardSlack      = 0.5
	probeFanoutCap  = 4
)

// Exec drives one compiled Program over a scan leaf as a regular
// engine.Operator: serial queries mount it directly on the scan, parallel
// queries mount one per worker over that worker's windowed leaf. All state —
// guards, scratch buffers, resolved join tables, the deopt fallback — is
// private to the Exec, so the Program itself stays immutable and shared.
type Exec struct {
	prog     *Program
	leaf     engine.Operator
	tables   []*engine.SharedJoinTable
	ctrs     *Counters
	fallback func(engine.Operator) (engine.Operator, error)

	resolved []*engine.JoinTable

	// Reusable scratch (allocation-free across chunks after warm-up).
	idx      []int32
	probeIdx []int32
	buildIdx []int32
	slots    []*vector.Vector

	// Selectivity guard state.
	warm    int
	rateSum float64
	bound   float64

	// Deopt state: once a guard trips, the offending chunk and every later
	// leaf chunk replay through the interpreted fallback chain, fed one
	// chunk at a time.
	deopted bool
	feed    *feedLeaf
	fb      engine.Operator
}

// NewExec mounts prog over a scan leaf. tables supplies the query's shared
// join-table handles in program order (prog.Tables() of them); fallback
// builds the interpreted stage chain over a leaf — it is only invoked if a
// guard trips. ctrs may be nil.
func NewExec(prog *Program, leaf engine.Operator, tables []*engine.SharedJoinTable,
	ctrs *Counters, fallback func(engine.Operator) (engine.Operator, error)) *Exec {
	return &Exec{prog: prog, leaf: leaf, tables: tables, ctrs: ctrs, fallback: fallback}
}

// Schema implements engine.Operator.
func (e *Exec) Schema() []engine.ColInfo { return e.prog.Schema() }

// Open implements engine.Operator: it opens the leaf and resolves the shared
// join tables (building each at most once per query, exactly as the
// interpreted TableProbe would).
func (e *Exec) Open(ctx context.Context) error {
	if err := e.leaf.Open(ctx); err != nil {
		return err
	}
	e.resolved = e.resolved[:0]
	for _, sh := range e.tables {
		t, err := sh.Table(ctx)
		if err != nil {
			return err
		}
		e.resolved = append(e.resolved, t)
	}
	return nil
}

// Next implements engine.Operator.
func (e *Exec) Next(ctx context.Context) (*vector.Chunk, error) {
	for {
		if e.deopted {
			out, err := e.fb.Next(ctx)
			if err != nil || out != nil {
				return out, err
			}
			in, err := e.leaf.Next(ctx)
			if err != nil || in == nil {
				return nil, err
			}
			e.feed.ch = in
			continue
		}
		in, err := e.leaf.Next(ctx)
		if err != nil || in == nil {
			return nil, err
		}
		out, ok := e.runChunk(in)
		if !ok {
			if err := e.deopt(ctx, in); err != nil {
				return nil, err
			}
			continue
		}
		if out == nil {
			continue // fully filtered chunk
		}
		if e.ctrs != nil {
			e.ctrs.Chunks.Add(1)
			e.ctrs.Rows.Add(int64(out.SelectedLen()))
		}
		return out, nil
	}
}

// Close implements engine.Operator.
func (e *Exec) Close() error {
	if e.fb != nil {
		e.fb.Close()
	}
	return e.leaf.Close()
}

// Deopted reports whether a guard reverted this Exec to the interpreter.
func (e *Exec) Deopted() bool { return e.deopted }

// deopt reverts to the interpreted stage chain mid-query: the chunk whose
// guard tripped has produced no output yet, so it simply replays — along
// with every later leaf chunk — through a fallback pipeline fed one chunk at
// a time. Output bytes are identical either way; only the execution strategy
// changes, at a chunk boundary, exactly like the VM's trace revert.
func (e *Exec) deopt(ctx context.Context, in *vector.Chunk) error {
	e.feed = &feedLeaf{schema: e.leaf.Schema()}
	fb, err := e.fallback(e.feed)
	if err != nil {
		return err
	}
	if err := fb.Open(ctx); err != nil {
		return err
	}
	e.fb = fb
	e.feed.ch = in
	e.deopted = true
	if e.ctrs != nil {
		e.ctrs.Deopts.Add(1)
		if e.ctrs.OnDeopt != nil {
			e.ctrs.OnDeopt()
		}
	}
	return nil
}

// feedLeaf is the single-chunk source under a deopt fallback chain: each
// fed chunk is served once, then the chain sees end-of-stream until the next
// feed. The interpreted stages are stateless across chunks, so driving them
// chunk-at-a-time this way is indistinguishable from a real scan.
type feedLeaf struct {
	schema []engine.ColInfo
	ch     *vector.Chunk
}

func (f *feedLeaf) Schema() []engine.ColInfo   { return f.schema }
func (f *feedLeaf) Open(context.Context) error { return nil }
func (f *feedLeaf) Close() error               { return nil }
func (f *feedLeaf) Next(context.Context) (*vector.Chunk, error) {
	ch := f.ch
	f.ch = nil
	return ch, nil
}
