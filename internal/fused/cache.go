package fused

import "sync"

// Cache is the engine-wide fused-code cache: compiled programs keyed by
// plan fingerprint + specialization signature. Negative entries are cached
// too — a segment the compiler declined once is declined from the cache
// from then on, so unfusable hot plans pay the pattern-match exactly once.
//
// The cache is bounded: a workload cycling through endlessly distinct plans
// recycles the least-recently-used slot instead of growing without bound
// (programs already mounted on running queries stay valid — eviction only
// forgets the cache entry).
type Cache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	clock   int64
	limit   int

	hits, misses int64
}

type cacheEntry struct {
	prog *Program // nil = negative entry (segment not fusable)
	use  int64
}

// DefaultCacheSize bounds the number of cached programs per engine.
const DefaultCacheSize = 256

// NewCache creates a cache holding up to limit programs (DefaultCacheSize
// when limit is not positive).
func NewCache(limit int) *Cache {
	if limit <= 0 {
		limit = DefaultCacheSize
	}
	return &Cache{entries: make(map[string]*cacheEntry), limit: limit}
}

// Lookup returns the cached program for key. present reports whether the
// key was cached at all; a present key with a nil program is a negative
// entry (the segment is known not to fuse).
func (c *Cache) Lookup(key string) (prog *Program, present bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.clock++
	e.use = c.clock
	return e.prog, true
}

// Store caches a compilation outcome for key (prog nil = negative entry).
func (c *Cache) Store(key string, prog *Program) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.clock++
		e.prog, e.use = prog, c.clock
		return
	}
	if len(c.entries) >= c.limit {
		var victimKey string
		var victim *cacheEntry
		for k, e := range c.entries {
			if victim == nil || e.use < victim.use {
				victimKey, victim = k, e
			}
		}
		delete(c.entries, victimKey)
	}
	c.clock++
	c.entries[key] = &cacheEntry{prog: prog, use: c.clock}
}

// Stats reports cache entry count and hit/miss totals.
func (c *Cache) Stats() (entries int, hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries), c.hits, c.misses
}
