// Package fused is the relational JIT tier of the adaptive VM: it compiles a
// hot streaming plan segment — scan→filter→compute→probe — into one
// specialized, defunctionalized opcode loop, replacing the chain of
// vectorized operators (and their per-chunk expression-VM dispatch) with
// monomorphized snippets selected per (column type, predicate shape,
// compute op).
//
// The tier boundary mirrors the paper's micro-adaptive machinery on the
// query side: cold plans run the existing vectorized interpreter; once a
// plan fingerprint crosses the warm threshold its segment is compiled and
// cached (keyed by fingerprint + specialization signature, see Signature);
// at the hot threshold queries execute the cached fused loop. Fused
// execution carries guards — a selectivity upper bound learned over the
// first chunks, and a probe fan-out capacity bound — and deoptimizes back
// to the interpreted operator chain at a chunk boundary when a guard trips,
// so results are byte-identical to interpreted execution in every case.
//
// Compilation is best-effort by construction: a lambda whose shape has no
// monomorphized snippet (or whose constant kind does not match the column)
// simply declines fusion, and the plan keeps running interpreted. The
// compiler therefore never needs to be complete, only correct.
//
// Concurrency contract: a compiled Program is immutable and safe to share —
// the engine-wide code cache hands one instance to every query and every
// worker. All mutable execution state lives in the per-worker Exec wrapper
// (one is mounted per worker pipeline, so fused loops run morsel-parallel
// without coordination); the only cross-worker state is the Counters
// telemetry, which is atomic. Guards and deopts are local to one Exec:
// a worker reverting to the interpreter never affects its siblings.
package fused

import (
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/vector"
)

// StageKind tags one stage of a streaming segment.
type StageKind int

// Segment stage kinds, in stream order on top of the scan.
const (
	// StageFilter keeps rows satisfying a one-parameter predicate lambda.
	StageFilter StageKind = iota
	// StageCompute appends a column derived by a lambda over input columns.
	StageCompute
	// StageProbe probes a shared hash-join build side and appends payload
	// columns, multiplying rows by their match counts.
	StageProbe
)

// Stage describes one stage of a streaming segment in a compiler- and
// signature-friendly form, bottom-up (scan first). The advm builder
// translates its plan nodes into this; the fused package never sees plans.
type Stage struct {
	Kind   StageKind
	Lambda string // DSL lambda source (filter predicate / compute expression)

	Col string // filter input column

	Out     string      // compute output column
	OutKind vector.Kind // compute output kind
	Cols    []string    // compute input columns, in parameter order

	ProbeKey   string        // probe key column (i64)
	Payload    []string      // build-side payload columns to append
	BuildNames []string      // build-side schema column names
	BuildKinds []vector.Kind // build-side schema column kinds
	Table      int           // index into the per-query shared-table list
}

// Signature is the specialization key of a segment: an injective encoding of
// the scanned columns (names and kinds) and every stage's full shape. Two
// segments share a signature exactly when the compiler would emit the same
// program for them, so the code cache — keyed by plan fingerprint plus this
// signature — can never serve a loop specialized for different types,
// predicates or join shapes.
func Signature(scan []engine.ColInfo, stages []Stage) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scan/%d:", len(scan))
	for _, c := range scan {
		fmt.Fprintf(&b, "%q=%d,", c.Name, c.Kind)
	}
	for _, st := range stages {
		switch st.Kind {
		case StageFilter:
			fmt.Fprintf(&b, ";F%q@%q", st.Lambda, st.Col)
		case StageCompute:
			fmt.Fprintf(&b, ";C%q->%q=%d/%d:", st.Lambda, st.Out, st.OutKind, len(st.Cols))
			for _, c := range st.Cols {
				fmt.Fprintf(&b, "%q,", c)
			}
		case StageProbe:
			fmt.Fprintf(&b, ";J%q#%d/%d:", st.ProbeKey, st.Table, len(st.Payload))
			for _, p := range st.Payload {
				fmt.Fprintf(&b, "%q,", p)
			}
			fmt.Fprintf(&b, "|%d:", len(st.BuildNames))
			for i, n := range st.BuildNames {
				k := vector.Invalid
				if i < len(st.BuildKinds) {
					k = st.BuildKinds[i]
				}
				fmt.Fprintf(&b, "%q=%d,", n, k)
			}
		default:
			fmt.Fprintf(&b, ";?%d", st.Kind)
		}
	}
	return b.String()
}
