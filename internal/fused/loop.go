package fused

import (
	"repro/internal/vector"
)

// runChunk executes the fused loop over one leaf chunk. It returns the
// output chunk (nil when every row filtered out) and ok=false when a guard
// tripped — in which case nothing was emitted and the caller reverts the
// Exec to the interpreter, replaying this same chunk.
//
// The emitted chunk follows the interpreted aliasing contract: untouched
// scan columns are shared with the input (exactly like the interpreter's
// shallow chunks), computed columns and selection vectors are fresh, and
// probe output is fully condensed fresh storage.
func (e *Exec) runChunk(in *vector.Chunk) (*vector.Chunk, bool) {
	n := in.Len()
	if n == 0 {
		return nil, true
	}
	e.slots = e.slots[:0]
	for i := 0; i < in.Width(); i++ {
		e.slots = append(e.slots, in.Col(i))
	}
	e.idx = e.idx[:0]
	if s := in.Sel(); s != nil {
		e.idx = append(e.idx, s...)
	} else {
		for i := 0; i < n; i++ {
			e.idx = append(e.idx, int32(i))
		}
	}
	curLen := n

	for oi := range e.prog.ops {
		o := &e.prog.ops[oi]
		idx := e.idx
		k := 0
		switch o.code {

		case opFilterLtI64:
			src, c := e.slots[o.a].I64(), o.ci
			for _, r := range idx {
				if src[r] < c {
					idx[k] = r
					k++
				}
			}
			e.idx = idx[:k]
		case opFilterLeI64:
			src, c := e.slots[o.a].I64(), o.ci
			for _, r := range idx {
				if src[r] <= c {
					idx[k] = r
					k++
				}
			}
			e.idx = idx[:k]
		case opFilterGtI64:
			src, c := e.slots[o.a].I64(), o.ci
			for _, r := range idx {
				if src[r] > c {
					idx[k] = r
					k++
				}
			}
			e.idx = idx[:k]
		case opFilterGeI64:
			src, c := e.slots[o.a].I64(), o.ci
			for _, r := range idx {
				if src[r] >= c {
					idx[k] = r
					k++
				}
			}
			e.idx = idx[:k]
		case opFilterEqI64:
			src, c := e.slots[o.a].I64(), o.ci
			for _, r := range idx {
				if src[r] == c {
					idx[k] = r
					k++
				}
			}
			e.idx = idx[:k]
		case opFilterNeI64:
			src, c := e.slots[o.a].I64(), o.ci
			for _, r := range idx {
				if src[r] != c {
					idx[k] = r
					k++
				}
			}
			e.idx = idx[:k]
		case opFilterModEqI64:
			src, m, c := e.slots[o.a].I64(), o.ci, o.cj
			for _, r := range idx {
				if src[r]%m == c {
					idx[k] = r
					k++
				}
			}
			e.idx = idx[:k]

		case opFilterLtF64:
			src, c := e.slots[o.a].F64(), o.cf
			for _, r := range idx {
				if src[r] < c {
					idx[k] = r
					k++
				}
			}
			e.idx = idx[:k]
		case opFilterLeF64:
			src, c := e.slots[o.a].F64(), o.cf
			for _, r := range idx {
				if src[r] <= c {
					idx[k] = r
					k++
				}
			}
			e.idx = idx[:k]
		case opFilterGtF64:
			src, c := e.slots[o.a].F64(), o.cf
			for _, r := range idx {
				if src[r] > c {
					idx[k] = r
					k++
				}
			}
			e.idx = idx[:k]
		case opFilterGeF64:
			src, c := e.slots[o.a].F64(), o.cf
			for _, r := range idx {
				if src[r] >= c {
					idx[k] = r
					k++
				}
			}
			e.idx = idx[:k]
		case opFilterEqF64:
			src, c := e.slots[o.a].F64(), o.cf
			for _, r := range idx {
				if src[r] == c {
					idx[k] = r
					k++
				}
			}
			e.idx = idx[:k]
		case opFilterNeF64:
			src, c := e.slots[o.a].F64(), o.cf
			for _, r := range idx {
				if src[r] != c {
					idx[k] = r
					k++
				}
			}
			e.idx = idx[:k]

		case opAffineI64:
			src := e.slots[o.a].I64()
			out := vector.New(vector.I64, curLen, curLen)
			dst := out.I64()
			c, d := o.ci, o.cj
			for _, r := range idx {
				dst[r] = src[r]*c + d
			}
			e.slots = append(e.slots, out)
		case opModMulI64:
			src := e.slots[o.a].I64()
			out := vector.New(vector.I64, curLen, curLen)
			dst := out.I64()
			m, c := o.ci, o.cj
			for _, r := range idx {
				dst[r] = (src[r] % m) * c
			}
			e.slots = append(e.slots, out)
		case opMulAddI64:
			sa, sb := e.slots[o.a].I64(), e.slots[o.b].I64()
			out := vector.New(vector.I64, curLen, curLen)
			dst := out.I64()
			c := o.ci
			for _, r := range idx {
				dst[r] = sa[r] + sb[r]*c
			}
			e.slots = append(e.slots, out)
		case opSquareI64:
			src := e.slots[o.a].I64()
			out := vector.New(vector.I64, curLen, curLen)
			dst := out.I64()
			for _, r := range idx {
				dst[r] = src[r] * src[r]
			}
			e.slots = append(e.slots, out)
		case opAffineF64:
			src := e.slots[o.a].F64()
			out := vector.New(vector.F64, curLen, curLen)
			dst := out.F64()
			c, d := o.cf, o.cg
			for _, r := range idx {
				dst[r] = src[r]*c + d
			}
			e.slots = append(e.slots, out)
		case opSquareF64:
			src := e.slots[o.a].F64()
			out := vector.New(vector.F64, curLen, curLen)
			dst := out.F64()
			for _, r := range idx {
				dst[r] = src[r] * src[r]
			}
			e.slots = append(e.slots, out)
		case opMulF64:
			sa, sb := e.slots[o.a].F64(), e.slots[o.b].F64()
			out := vector.New(vector.F64, curLen, curLen)
			dst := out.F64()
			for _, r := range idx {
				dst[r] = sa[r] * sb[r]
			}
			e.slots = append(e.slots, out)
		case opMulConstSubF64:
			sa, sb := e.slots[o.a].F64(), e.slots[o.b].F64()
			out := vector.New(vector.F64, curLen, curLen)
			dst := out.F64()
			c := o.cf
			for _, r := range idx {
				dst[r] = sa[r] * (c - sb[r])
			}
			e.slots = append(e.slots, out)
		case opMulConstAddF64:
			sa, sb := e.slots[o.a].F64(), e.slots[o.b].F64()
			out := vector.New(vector.F64, curLen, curLen)
			dst := out.F64()
			c := o.cf
			for _, r := range idx {
				dst[r] = sa[r] * (c + sb[r])
			}
			e.slots = append(e.slots, out)

		case opProbe:
			matched, ok := e.runProbe(o, n)
			if !ok {
				return nil, false // capacity guard: fan-out beyond the bound
			}
			curLen = matched
		}
	}

	outRows := len(e.idx)
	rate := float64(outRows) / float64(n)
	if e.warm < guardWarmChunks {
		e.warm++
		e.rateSum += rate
		if e.warm == guardWarmChunks {
			e.bound = guardFactor*(e.rateSum/guardWarmChunks) + guardSlack
		}
	} else if rate > e.bound {
		return nil, false // selectivity guard: distribution shifted mid-stream
	}
	if outRows == 0 {
		return nil, true
	}

	out := vector.NewChunk()
	for i, v := range e.slots {
		out.Add(e.prog.slots[i].Name, v)
	}
	if outRows < curLen {
		sel := make(vector.Sel, outRows)
		copy(sel, e.idx)
		out.SetSel(sel)
	}
	return out, true
}

// runProbe matches the selected rows' keys against a join table and
// condenses the stream to the match pairs: every current slot is gathered by
// the matching probe rows, payload columns by the matching build rows —
// probe-major, match lists in build order, exactly the serial nested-emit
// order of the interpreted probe. Afterwards the selection is the identity
// over the matches. ok=false when the fan-out exceeds the capacity guard.
func (e *Exec) runProbe(o *op, n int) (matched int, ok bool) {
	t := e.resolved[o.table]
	keys := e.slots[o.a].I64()
	limit := probeFanoutCap * n
	if limit < 64 {
		limit = 64
	}
	e.probeIdx = e.probeIdx[:0]
	e.buildIdx = e.buildIdx[:0]
	for _, r := range e.idx {
		for _, m := range t.Lookup(keys[r]) {
			if len(e.probeIdx) >= limit {
				return 0, false
			}
			e.probeIdx = append(e.probeIdx, r)
			e.buildIdx = append(e.buildIdx, m)
		}
	}
	matched = len(e.probeIdx)
	for i, v := range e.slots {
		e.slots[i] = vector.Condense(v, vector.Sel(e.probeIdx))
	}
	rows := t.Rows()
	for _, pi := range o.payIdx {
		e.slots = append(e.slots, vector.Condense(rows.Col(pi), vector.Sel(e.buildIdx)))
	}
	e.idx = e.idx[:0]
	for i := 0; i < matched; i++ {
		e.idx = append(e.idx, int32(i))
	}
	return matched, true
}
