package fused

import (
	"repro/internal/dsl"
	"repro/internal/engine"
	"repro/internal/vector"
)

// opCode selects one monomorphized snippet of the defunctionalized loop.
// Every (column type, predicate shape, compute op) combination the compiler
// recognizes gets its own opcode, so the execution loop dispatches once per
// op per chunk and the inner row loops carry no interface calls, closures or
// per-element branches beyond the operation itself.
type opCode uint8

const (
	opInvalid opCode = iota

	// Filters narrow the selection in place: slot a compared to a constant.
	opFilterLtI64
	opFilterLeI64
	opFilterGtI64
	opFilterGeI64
	opFilterEqI64
	opFilterNeI64
	opFilterLtF64
	opFilterLeF64
	opFilterGtF64
	opFilterGeF64
	opFilterEqF64
	opFilterNeF64
	// opFilterModEqI64 keeps rows with a%ci == cj (Go truncated %, matching
	// the expression VM).
	opFilterModEqI64

	// Computes append a fresh output vector.
	opAffineI64      // out = a*ci + cj
	opModMulI64      // out = (a%ci) * cj
	opMulAddI64      // out = a + b*ci
	opSquareI64      // out = a*a
	opAffineF64      // out = a*cf + cg
	opSquareF64      // out = a*a
	opMulF64         // out = a*b
	opMulConstSubF64 // out = a*(cf-b)
	opMulConstAddF64 // out = a*(cf+b)

	// opProbe matches slot a against a shared join table and condenses the
	// stream to (probe row, build row) pairs, appending payload columns.
	opProbe
)

// op is one defunctionalized instruction of a fused program.
type op struct {
	code   opCode
	a, b   int     // input slots
	out    int     // output slot (computes)
	ci, cj int64   // integer immediates
	cf, cg float64 // float immediates
	table  int     // probe: index into the per-query shared-table list
	payIdx []int   // probe: payload column indexes in the build rows
}

// Program is an immutable compiled segment: the opcode list plus the slot
// layout (scan columns first, then each compute/probe output bottom-up —
// exactly the schema the interpreted operator chain would produce). One
// Program is shared by every query and worker that hits its cache entry;
// all per-query state (join-table handles, guards, scratch buffers) lives
// in Exec.
type Program struct {
	ops    []op
	slots  []engine.ColInfo
	tables int // shared join tables the program references
}

// Schema returns the fused segment's output schema.
func (p *Program) Schema() []engine.ColInfo {
	return append([]engine.ColInfo(nil), p.slots...)
}

// Ops reports the instruction count (observability/tests).
func (p *Program) Ops() int { return len(p.ops) }

// Tables reports how many shared join-table handles an Exec must supply.
func (p *Program) Tables() int { return p.tables }

// Compile lowers a streaming segment into a fused program. ok is false when
// any stage has no monomorphized snippet — an unrecognized lambda shape, a
// constant whose kind does not match its column, an unknown column — in
// which case the segment stays on the vectorized interpreter.
func Compile(scan []engine.ColInfo, stages []Stage) (*Program, bool) {
	p := &Program{slots: append([]engine.ColInfo(nil), scan...)}
	slot := make(map[string]int, len(scan))
	for i, c := range scan {
		if _, dup := slot[c.Name]; dup {
			return nil, false
		}
		slot[c.Name] = i
	}
	for _, st := range stages {
		var ok bool
		switch st.Kind {
		case StageFilter:
			ok = p.compileFilter(st, slot)
		case StageCompute:
			ok = p.compileCompute(st, slot)
		case StageProbe:
			ok = p.compileProbe(st, slot)
		}
		if !ok {
			return nil, false
		}
	}
	return p, true
}

// parseLambda parses a standalone lambda expression by wrapping it in a let
// statement (the DSL grammar has no bare-expression production).
func parseLambda(src string) (*dsl.Lambda, bool) {
	prog, err := dsl.Parse("let r = " + src)
	if err != nil || len(prog.Body) != 1 {
		return nil, false
	}
	let, ok := prog.Body[0].(*dsl.Let)
	if !ok {
		return nil, false
	}
	lam, ok := let.Val.(*dsl.Lambda)
	return lam, ok
}

// constOf extracts a literal constant, looking through a folded unary minus.
func constOf(e dsl.Expr) (vector.Value, bool) {
	switch c := e.(type) {
	case *dsl.Const:
		return c.Val, true
	case *dsl.Un:
		if c.Op != dsl.UnNeg {
			return vector.Value{}, false
		}
		v, ok := constOf(c.E)
		if !ok {
			return vector.Value{}, false
		}
		switch v.Kind {
		case vector.I64:
			v.I = -v.I
			return v, true
		case vector.F64:
			v.F = -v.F
			return v, true
		}
	}
	return vector.Value{}, false
}

// varIs reports whether e is a reference to the named parameter.
func varIs(e dsl.Expr, name string) bool {
	v, ok := e.(*dsl.VarRef)
	return ok && v.Name == name
}

func (p *Program) compileFilter(st Stage, slot map[string]int) bool {
	lam, ok := parseLambda(st.Lambda)
	if !ok || len(lam.Params) != 1 {
		return false
	}
	a, ok := slot[st.Col]
	if !ok {
		return false
	}
	return p.compilePred(lam.Body, lam.Params[0], a)
}

// compilePred lowers a predicate body over one column slot. Conjunctions
// become sequential filter ops (each narrows the selection further, which is
// exactly short-circuit && over set semantics).
func (p *Program) compilePred(e dsl.Expr, param string, a int) bool {
	bin, ok := e.(*dsl.Bin)
	if !ok {
		return false
	}
	kind := p.slots[a].Kind
	if bin.Op == dsl.OpAnd {
		return p.compilePred(bin.L, param, a) && p.compilePred(bin.R, param, a)
	}
	// (v % m) == r
	if bin.Op == dsl.OpEq && kind == vector.I64 {
		if inner, ok := bin.L.(*dsl.Bin); ok && inner.Op == dsl.OpMod && varIs(inner.L, param) {
			m, okM := constOf(inner.R)
			r, okR := constOf(bin.R)
			if okM && okR && m.Kind == vector.I64 && r.Kind == vector.I64 && m.I != 0 {
				p.ops = append(p.ops, op{code: opFilterModEqI64, a: a, ci: m.I, cj: r.I})
				return true
			}
		}
	}
	if !bin.Op.IsComparison() || !varIs(bin.L, param) {
		return false
	}
	c, ok := constOf(bin.R)
	if !ok || c.Kind != kind {
		return false
	}
	var code opCode
	switch kind {
	case vector.I64:
		code = map[dsl.BinOp]opCode{
			dsl.OpLt: opFilterLtI64, dsl.OpLe: opFilterLeI64,
			dsl.OpGt: opFilterGtI64, dsl.OpGe: opFilterGeI64,
			dsl.OpEq: opFilterEqI64, dsl.OpNe: opFilterNeI64,
		}[bin.Op]
	case vector.F64:
		code = map[dsl.BinOp]opCode{
			dsl.OpLt: opFilterLtF64, dsl.OpLe: opFilterLeF64,
			dsl.OpGt: opFilterGtF64, dsl.OpGe: opFilterGeF64,
			dsl.OpEq: opFilterEqF64, dsl.OpNe: opFilterNeF64,
		}[bin.Op]
	}
	if code == opInvalid {
		return false
	}
	p.ops = append(p.ops, op{code: code, a: a, ci: c.I, cf: c.F})
	return true
}

func (p *Program) compileCompute(st Stage, slot map[string]int) bool {
	lam, ok := parseLambda(st.Lambda)
	if !ok || len(lam.Params) != len(st.Cols) {
		return false
	}
	if _, shadow := slot[st.Out]; shadow {
		return false
	}
	in := make([]int, len(st.Cols))
	for i, c := range st.Cols {
		s, ok := slot[c]
		if !ok {
			return false
		}
		in[i] = s
	}
	o, ok := p.matchCompute(lam, in, st.OutKind)
	if !ok {
		return false
	}
	o.out = len(p.slots)
	p.ops = append(p.ops, o)
	slot[st.Out] = len(p.slots)
	p.slots = append(p.slots, engine.ColInfo{Name: st.Out, Kind: st.OutKind})
	return true
}

// matchCompute recognizes the monomorphized compute shapes. Operand order is
// preserved exactly (IEEE float arithmetic is not associative or
// commutative-with-rounding, and byte-identity to the interpreter is the
// contract), so each pattern matches one fixed operand arrangement.
func (p *Program) matchCompute(lam *dsl.Lambda, in []int, outKind vector.Kind) (op, bool) {
	bin, ok := lam.Body.(*dsl.Bin)
	if !ok {
		return op{}, false
	}
	kindOf := func(s int) vector.Kind { return p.slots[s].Kind }
	switch len(in) {
	case 1:
		a, u := in[0], lam.Params[0]
		switch {
		// u*c + d
		case bin.Op == dsl.OpAdd:
			mul, ok := bin.L.(*dsl.Bin)
			if !ok || mul.Op != dsl.OpMul || !varIs(mul.L, u) {
				return op{}, false
			}
			c, okC := constOf(mul.R)
			d, okD := constOf(bin.R)
			if !okC || !okD || c.Kind != d.Kind || c.Kind != kindOf(a) || outKind != c.Kind {
				return op{}, false
			}
			if c.Kind == vector.I64 {
				return op{code: opAffineI64, a: a, ci: c.I, cj: d.I}, true
			}
			if c.Kind == vector.F64 {
				return op{code: opAffineF64, a: a, cf: c.F, cg: d.F}, true
			}
		case bin.Op == dsl.OpMul:
			// u*u
			if varIs(bin.L, u) && varIs(bin.R, u) && kindOf(a) == outKind {
				if outKind == vector.I64 {
					return op{code: opSquareI64, a: a}, true
				}
				if outKind == vector.F64 {
					return op{code: opSquareF64, a: a}, true
				}
				return op{}, false
			}
			// u*c
			if varIs(bin.L, u) {
				if c, ok := constOf(bin.R); ok && c.Kind == kindOf(a) && outKind == c.Kind {
					if c.Kind == vector.I64 {
						return op{code: opAffineI64, a: a, ci: c.I, cj: 0}, true
					}
					if c.Kind == vector.F64 {
						return op{code: opAffineF64, a: a, cf: c.F, cg: 0}, true
					}
				}
				return op{}, false
			}
			// (u%m) * c
			mod, ok := bin.L.(*dsl.Bin)
			if !ok || mod.Op != dsl.OpMod || !varIs(mod.L, u) {
				return op{}, false
			}
			m, okM := constOf(mod.R)
			c, okC := constOf(bin.R)
			if okM && okC && m.Kind == vector.I64 && c.Kind == vector.I64 &&
				kindOf(a) == vector.I64 && outKind == vector.I64 && m.I != 0 {
				return op{code: opModMulI64, a: a, ci: m.I, cj: c.I}, true
			}
		}
	case 2:
		a, b := in[0], in[1]
		u, v := lam.Params[0], lam.Params[1]
		switch bin.Op {
		case dsl.OpAdd:
			// u + v*c
			mul, ok := bin.R.(*dsl.Bin)
			if !ok || mul.Op != dsl.OpMul || !varIs(bin.L, u) || !varIs(mul.L, v) {
				return op{}, false
			}
			c, okC := constOf(mul.R)
			if okC && c.Kind == vector.I64 && kindOf(a) == vector.I64 &&
				kindOf(b) == vector.I64 && outKind == vector.I64 {
				return op{code: opMulAddI64, a: a, b: b, ci: c.I}, true
			}
		case dsl.OpMul:
			if !varIs(bin.L, u) {
				return op{}, false
			}
			if kindOf(a) != vector.F64 || kindOf(b) != vector.F64 || outKind != vector.F64 {
				return op{}, false
			}
			// u * v
			if varIs(bin.R, v) {
				return op{code: opMulF64, a: a, b: b}, true
			}
			// u * (c-v)  /  u * (c+v)
			inner, ok := bin.R.(*dsl.Bin)
			if !ok || !varIs(inner.R, v) {
				return op{}, false
			}
			c, okC := constOf(inner.L)
			if !okC || c.Kind != vector.F64 {
				return op{}, false
			}
			if inner.Op == dsl.OpSub {
				return op{code: opMulConstSubF64, a: a, b: b, cf: c.F}, true
			}
			if inner.Op == dsl.OpAdd {
				return op{code: opMulConstAddF64, a: a, b: b, cf: c.F}, true
			}
		}
	}
	return op{}, false
}

func (p *Program) compileProbe(st Stage, slot map[string]int) bool {
	a, ok := slot[st.ProbeKey]
	if !ok || p.slots[a].Kind != vector.I64 {
		return false
	}
	if len(st.BuildNames) != len(st.BuildKinds) {
		return false
	}
	o := op{code: opProbe, a: a, table: st.Table}
	for _, pay := range st.Payload {
		if _, shadow := slot[pay]; shadow {
			return false
		}
		idx := -1
		for i, n := range st.BuildNames {
			if n == pay {
				idx = i
				break
			}
		}
		if idx < 0 {
			return false
		}
		o.payIdx = append(o.payIdx, idx)
		slot[pay] = len(p.slots)
		p.slots = append(p.slots, engine.ColInfo{Name: pay, Kind: st.BuildKinds[idx]})
	}
	p.ops = append(p.ops, o)
	if st.Table+1 > p.tables {
		p.tables = st.Table + 1
	}
	return true
}
