package fused_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/fused"
	"repro/internal/vector"
)

// sigSeen maps signature → canonical dump of the inputs that produced it, so
// the fuzzer detects any two structurally different segments colliding on
// one signature (which would let the code cache serve a wrongly specialized
// loop). sync.Map because go test may fuzz in parallel workers.
var sigSeen sync.Map

// FuzzSignature drives Signature with adversarial column names, lambdas and
// kinds. Properties: (1) determinism — the same inputs always produce the
// same signature; (2) injectivity — two different inputs never share one;
// (3) cache round-trip — a program stored under a signature is returned for
// exactly that signature.
func FuzzSignature(f *testing.F) {
	f.Add("k", "x", `(\k -> k < 10)`, "y", uint8(5), uint8(6), 1)
	f.Add(`a"b`, "a\x00b", `(\v -> (v % 3) == 1)`, "out", uint8(6), uint8(5), 0)
	f.Add("c,", ";F", `(\k -> k * 2)`, `"`, uint8(1), uint8(7), 2)
	f.Fuzz(func(t *testing.T, col1, col2, lambda, out string, k1, k2 uint8, kind int) {
		scan := []engine.ColInfo{
			{Name: col1, Kind: vector.Kind(k1 % 8)},
			{Name: col2, Kind: vector.Kind(k2 % 8)},
		}
		var st fused.Stage
		switch kind % 3 {
		case 0:
			st = fused.Stage{Kind: fused.StageFilter, Lambda: lambda, Col: col1}
		case 1:
			st = fused.Stage{Kind: fused.StageCompute, Lambda: lambda, Out: out,
				OutKind: vector.Kind(k2 % 8), Cols: []string{col1, col2}}
		default:
			st = fused.Stage{Kind: fused.StageProbe, ProbeKey: col1, Payload: []string{out},
				BuildNames: []string{col2, out}, BuildKinds: []vector.Kind{vector.Kind(k1 % 8), vector.Kind(k2 % 8)},
				Table: int(k1) % 4}
		}
		stages := []fused.Stage{st}
		canon := fmt.Sprintf("%#v|%#v", scan, stages)

		sig := fused.Signature(scan, stages)
		if again := fused.Signature(scan, stages); again != sig {
			t.Fatalf("signature not deterministic: %q vs %q", sig, again)
		}
		if prev, loaded := sigSeen.LoadOrStore(sig, canon); loaded && prev.(string) != canon {
			t.Fatalf("signature collision:\n%s\n%s\n→ %q", prev, canon, sig)
		}

		// Identical plans must hit the code cache under their signature.
		c := fused.NewCache(8)
		if prog, ok := fused.Compile(scan, stages); ok {
			c.Store(sig, prog)
			got, present := c.Lookup(sig)
			if !present || got != prog {
				t.Fatalf("cache round-trip failed for %q", sig)
			}
		}
	})
}
