// Package vm implements the paper's adaptive virtual machine (§III): the
// Figure-1 state machine that starts out interpreting a normalized program,
// collects profiling information to identify hot paths, greedily partitions
// their dependency graphs into compilable fragments, JIT-compiles the
// fragments into fused traces, injects them into the interpreter, and keeps
// interpreting the partially optimized program.
//
// The VM is micro-adaptive in the sense of [24] generalized by the paper:
// after injecting a trace it keeps comparing the trace's measured cost
// against the interpreter's historical cost for the same instructions, and
// reverts (deoptimizes) when compilation turned out to be a loss. Traces can
// carry situation guards; guard failures execute the interpreted fallback
// and are counted, and persistent guard failure triggers re-specialization.
package vm

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/depgraph"
	"repro/internal/interp"
	"repro/internal/jit"
	"repro/internal/nir"
	"repro/internal/vector"
)

// State is a Figure-1 state of the VM.
type State int32

// The four states of Figure 1.
const (
	StateInterpret State = iota
	StateOptimize
	StateGenerateCode
	StateInjectFunctions
)

var stateNames = [...]string{"Interpret", "Optimize", "GenerateCode", "InjectFunctions"}

func (s State) String() string { return stateNames[s] }

// Transition is one recorded state-machine transition.
type Transition struct {
	From, To State
	At       time.Duration // since VM creation
	Segment  int           // affected segment, -1 when not applicable
	Note     string
}

func (t Transition) String() string {
	return fmt.Sprintf("%-12v → %-16v seg=%-3d %s", t.From, t.To, t.Segment, t.Note)
}

// Config tunes the VM's adaptive behaviour.
type Config struct {
	// HotCalls is the number of observed executions after which a segment
	// is considered for optimization.
	HotCalls int64
	// HotNanos is the cumulative time after which a segment is considered
	// hot regardless of call count.
	HotNanos int64
	// OptimizeInterval is how often the optimizer re-examines the profile.
	OptimizeInterval time.Duration
	// JIT configures trace compilation (tile size, compile-latency model).
	JIT jit.Options
	// Constraints configure the dependency-graph partitioner.
	Constraints depgraph.Constraints
	// Sync makes optimization synchronous: the VM checks for hot segments
	// between program runs instead of using a background optimizer. Useful
	// for deterministic tests and for benchmarks that charge compile time
	// to the measured total.
	Sync bool
	// MicroAdaptive keeps comparing injected traces against the
	// interpreter's historical cost and reverts losing traces.
	MicroAdaptive bool
	// RevertFactor: a trace is reverted when its per-call cost exceeds the
	// interpreter's historical per-call cost for the same instructions by
	// this factor (default 1.1).
	RevertFactor float64
}

// DefaultConfig returns a production-shaped configuration.
func DefaultConfig() Config {
	return Config{
		HotCalls:         8,
		HotNanos:         int64(200 * time.Microsecond),
		OptimizeInterval: time.Millisecond,
		Constraints:      depgraph.DefaultConstraints(),
		MicroAdaptive:    true,
		RevertFactor:     1.1,
	}
}

// segState tracks per-segment optimization status.
type segState struct {
	compiled     bool
	reverted     bool // compilation tried and lost; do not recompile
	traces       []*jit.Trace
	interpNanos  float64 // historical interpreter cost per run of the segment
	interpCalls  int64
	fragmentIDs  [][]int
	guardFactory func(segID int) func(*interp.Env) bool
}

// VM is the adaptive virtual machine for one normalized program. It may be
// shared across many executions (Run calls); profiling and compiled traces
// persist and keep improving subsequent runs.
type VM struct {
	Prog   *nir.Program
	Interp *interp.Interpreter
	cfg    Config

	state        atomic.Int32
	start        time.Time
	mu           sync.Mutex
	transitions  []Transition
	segs         []segState
	activeRuns   int                            // concurrent RunContext calls (under mu)
	optimizer    *optimizerHandle               // live background optimizer (under mu)
	guards       map[int]func(*interp.Env) bool // segment → situation guard
	optimizing   atomic.Bool
	pollCount    atomic.Int64
	lastOptimize atomic.Int64 // time of the last optimizer pass, ns since start
}

// optimizerHandle is the lifecycle of one background optimizer goroutine.
// Each goroutine owns a distinct handle, so overlapping run generations
// (last run of one burst still shutting the optimizer down while the first
// run of the next burst starts a new one) never share channels.
type optimizerHandle struct {
	stop chan struct{}
	done chan struct{}
}

// New creates a VM for prog.
func New(prog *nir.Program, cfg Config) *VM {
	if cfg.RevertFactor == 0 {
		cfg.RevertFactor = 1.1
	}
	if cfg.OptimizeInterval == 0 {
		cfg.OptimizeInterval = time.Millisecond
	}
	it := interp.New(prog)
	it.Profiling = true
	vm := &VM{
		Prog:   prog,
		Interp: it,
		cfg:    cfg,
		start:  time.Now(),
		segs:   make([]segState, len(it.Segments)),
		guards: map[int]func(*interp.Env) bool{},
	}
	vm.state.Store(int32(StateInterpret))
	return vm
}

// NewEnv binds external arrays for a program execution.
func (vm *VM) NewEnv(ext map[string]*vector.Vector) (*interp.Env, error) {
	return interp.NewEnv(vm.Prog, ext)
}

// State returns the current Figure-1 state.
func (vm *VM) State() State { return State(vm.state.Load()) }

// Transitions returns a copy of the recorded state-machine log.
func (vm *VM) Transitions() []Transition {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	return append([]Transition(nil), vm.transitions...)
}

func (vm *VM) transition(to State, seg int, note string) {
	from := State(vm.state.Swap(int32(to)))
	vm.mu.Lock()
	vm.transitions = append(vm.transitions, Transition{
		From: from, To: to, At: time.Since(vm.start), Segment: seg, Note: note,
	})
	vm.mu.Unlock()
}

// SetGuard installs a situation guard for every trace subsequently compiled
// for the segment containing instruction instrID. Guard failure executes the
// interpreted fallback (deoptimization).
func (vm *VM) SetGuard(segID int, g func(*interp.Env) bool) {
	vm.mu.Lock()
	vm.guards[segID] = g
	vm.mu.Unlock()
}

// Run executes the program once. With Sync=false a background optimizer
// accompanies the execution; with Sync=true optimization happens between
// runs (call MaybeOptimize explicitly or rely on Run's epilogue).
func (vm *VM) Run(env *interp.Env) error {
	return vm.RunContext(context.Background(), env)
}

// RunContext executes the program once, honoring ctx: cancellation and
// deadlines are checked between chunks (segment boundaries), so a long run
// aborts within one chunk of the cancellation and the returned error wraps
// ctx.Err().
//
// With Sync=false the asynchronous Optimize→GenerateCode→InjectFunctions
// cycle accompanies the run twice over: a background goroutine ticks every
// OptimizeInterval, and the interpreter additionally polls the optimizer
// cooperatively at segment boundaries when the background goroutine is
// starved (e.g. GOMAXPROCS=1), so mid-run compilation does not depend on
// scheduler luck.
func (vm *VM) RunContext(ctx context.Context, env *interp.Env) error {
	if vm.cfg.Sync {
		err := vm.Interp.RunContext(ctx, env)
		if err == nil {
			// No optimization epilogue for a failed or cancelled run: the
			// modeled compile latency would delay the error's return and
			// spend JIT work on an execution that was aborted.
			vm.MaybeOptimize()
		}
		return err
	}
	vm.startOptimizer()
	env.SetPoll(vm.cooperativePoll)
	// Deferred so a panic out of the interpreter (propagated to an embedder
	// that recovers) still shuts the optimizer down and keeps the
	// activeRuns accounting correct.
	defer func() {
		env.SetPoll(nil)
		vm.stopOptimizer()
	}()
	return vm.Interp.RunContext(ctx, env)
}

// startOptimizer accounts one active run and launches the background
// optimizer when it is the first.
func (vm *VM) startOptimizer() {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	vm.activeRuns++
	if vm.activeRuns == 1 {
		h := &optimizerHandle{stop: make(chan struct{}), done: make(chan struct{})}
		vm.optimizer = h
		go vm.optimizerLoop(h)
	}
}

// stopOptimizer retires one active run and, when it was the last, shuts the
// background optimizer down and waits for it to exit.
func (vm *VM) stopOptimizer() {
	vm.mu.Lock()
	var h *optimizerHandle
	vm.activeRuns--
	if vm.activeRuns == 0 {
		h, vm.optimizer = vm.optimizer, nil
	}
	vm.mu.Unlock()
	if h != nil {
		close(h.stop)
		<-h.done
	}
}

// cooperativePoll runs at segment boundaries of an asynchronous run. It
// invokes the optimizer inline when no optimization pass has happened for
// several OptimizeIntervals — the background ticker goroutine never gets
// scheduled on a fully loaded single-core machine, and adaptivity must not
// depend on it.
func (vm *VM) cooperativePoll() {
	if vm.pollCount.Add(1)%pollStride != 0 {
		return
	}
	last := time.Duration(vm.lastOptimize.Load())
	if time.Since(vm.start)-last < 4*vm.cfg.OptimizeInterval {
		return
	}
	vm.MaybeOptimize()
}

// pollStride amortizes the time.Since call in cooperativePoll across segment
// executions.
const pollStride = 16

// optimizerLoop is the background incarnation of the Optimize→GenerateCode→
// InjectFunctions cycle.
func (vm *VM) optimizerLoop(h *optimizerHandle) {
	defer close(h.done)
	ticker := time.NewTicker(vm.cfg.OptimizeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-ticker.C:
			vm.MaybeOptimize()
		}
	}
}

// MaybeOptimize examines the profile, compiles hot segments that are not yet
// compiled, and reverts regressing traces. It is safe to call concurrently
// with Run and with itself (concurrent callers coalesce into one pass).
func (vm *VM) MaybeOptimize() {
	if !vm.optimizing.CompareAndSwap(false, true) {
		return // another caller is already optimizing
	}
	defer vm.optimizing.Store(false)
	vm.lastOptimize.Store(int64(time.Since(vm.start)))
	for segID := range vm.Interp.Segments {
		vm.maybeOptimizeSegment(segID)
		if vm.cfg.MicroAdaptive {
			vm.maybeRevertSegment(segID)
		}
	}
}

// segmentStats sums profile counters across a segment's instructions.
func (vm *VM) segmentStats(segID int) (calls, nanos int64) {
	seg := vm.Interp.Segments[segID]
	prof := vm.Interp.Prof
	for _, in := range seg.Instrs {
		c := prof.Calls(in.ID)
		if c > calls {
			calls = c
		}
		nanos += prof.Nanos(in.ID)
	}
	return calls, nanos
}

func (vm *VM) maybeOptimizeSegment(segID int) {
	vm.mu.Lock()
	st := &vm.segs[segID]
	if st.compiled || st.reverted {
		vm.mu.Unlock()
		return
	}
	vm.mu.Unlock()

	calls, nanos := vm.segmentStats(segID)
	if calls < vm.cfg.HotCalls && nanos < vm.cfg.HotNanos {
		return
	}

	// Optimize: partition the dependency graph using observed costs.
	vm.transition(StateOptimize, segID, fmt.Sprintf("hot: calls=%d nanos=%d", calls, nanos))
	seg := vm.Interp.Segments[segID]
	g := depgraph.Build(seg.Instrs, vm.Interp.Prof)
	frags := depgraph.Partition(g, vm.cfg.Constraints)
	if len(frags) == 0 {
		vm.transition(StateInterpret, segID, "nothing to compile")
		vm.mu.Lock()
		vm.segs[segID].reverted = true // don't re-examine
		vm.mu.Unlock()
		return
	}
	units, err := depgraph.Schedule(g, frags)
	if err != nil {
		vm.transition(StateInterpret, segID, "schedule failed: "+err.Error())
		vm.mu.Lock()
		vm.segs[segID].reverted = true
		vm.mu.Unlock()
		return
	}

	// GenerateCode: compile each fragment (charges simulated latency).
	vm.transition(StateGenerateCode, segID, fmt.Sprintf("%d fragments", len(frags)))
	opts := vm.cfg.JIT
	vm.mu.Lock()
	if gd, ok := vm.guards[segID]; ok {
		opts.Guard = gd
	}
	vm.mu.Unlock()
	var steps []interp.Step
	var traces []*jit.Trace
	var fragIDs [][]int
	for _, u := range units {
		if u.Fragment == nil {
			steps = append(steps, &interp.InstrStep{In: seg.Instrs[u.Node]})
			continue
		}
		tr, err := jit.Compile(vm.Prog, g, u.Fragment, opts)
		if err != nil {
			vm.transition(StateInterpret, segID, "compile failed: "+err.Error())
			vm.mu.Lock()
			vm.segs[segID].reverted = true
			vm.mu.Unlock()
			return
		}
		steps = append(steps, tr)
		traces = append(traces, tr)
		fragIDs = append(fragIDs, u.Fragment.InstrIDs(g))
	}

	// InjectFunctions: install the partially compiled plan.
	vm.transition(StateInjectFunctions, segID, describeSteps(steps))
	// Record the interpreter's historical cost for the micro-adaptive
	// comparison before the trace starts skewing the profile.
	_, nanosBefore := vm.segmentStats(segID)
	callsBefore, _ := vm.segmentStats(segID)
	if err := vm.Interp.InstallPlan(segID, &interp.Plan{Steps: steps}); err != nil {
		vm.transition(StateInterpret, segID, "inject failed: "+err.Error())
		vm.mu.Lock()
		vm.segs[segID].reverted = true
		vm.mu.Unlock()
		return
	}
	vm.mu.Lock()
	st = &vm.segs[segID]
	st.compiled = true
	st.traces = traces
	st.fragmentIDs = fragIDs
	if callsBefore > 0 {
		st.interpNanos = float64(nanosBefore) / float64(callsBefore)
	}
	st.interpCalls = callsBefore
	vm.mu.Unlock()
	vm.transition(StateInterpret, segID, "resume with partially optimized program")
}

// maybeRevertSegment reverts a compiled segment whose traces measure slower
// than the interpreter did (micro-adaptivity), or whose guards keep failing.
func (vm *VM) maybeRevertSegment(segID int) {
	vm.mu.Lock()
	st := &vm.segs[segID]
	if !st.compiled {
		vm.mu.Unlock()
		return
	}
	traces := st.traces
	interpNanos := st.interpNanos
	vm.mu.Unlock()

	var traceNanos float64
	var enough bool
	var guardFailures int64
	for _, tr := range traces {
		if tr.Calls() >= 4 {
			enough = true
		}
		traceNanos += tr.NanosPerCall() * float64(len(traces)) / float64(len(traces))
		guardFailures += tr.Deopts()
	}
	if !enough || interpNanos == 0 {
		// Persistent guard failure with no successful calls: the situation
		// changed for good; drop the stale specialization so the segment
		// can be re-specialized later.
		if guardFailures >= 16 {
			vm.revert(segID, "persistent guard failure")
		}
		return
	}
	if traceNanos > interpNanos*vm.cfg.RevertFactor {
		vm.revert(segID, fmt.Sprintf("trace %.0fns/call vs interp %.0fns/call", traceNanos, interpNanos))
	}
}

func (vm *VM) revert(segID int, why string) {
	vm.transition(StateInjectFunctions, segID, "revert: "+why)
	seg := vm.Interp.Segments[segID]
	if err := vm.Interp.InstallPlan(segID, seg.DefaultPlan()); err == nil {
		vm.mu.Lock()
		vm.segs[segID].compiled = false
		vm.segs[segID].reverted = true
		vm.segs[segID].traces = nil
		vm.mu.Unlock()
	}
	vm.transition(StateInterpret, segID, "deoptimized")
}

// Recompile clears the reverted flag of every segment so the optimizer may
// specialize again (used after a known workload shift, together with a
// profile reset).
func (vm *VM) Recompile() {
	vm.mu.Lock()
	for i := range vm.segs {
		vm.segs[i].reverted = false
	}
	vm.mu.Unlock()
}

// CompiledSegments returns the IDs of segments currently running compiled
// plans.
func (vm *VM) CompiledSegments() []int {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	var out []int
	for i := range vm.segs {
		if vm.segs[i].compiled {
			out = append(out, i)
		}
	}
	return out
}

// Traces returns the traces installed for a segment (nil when interpreted).
func (vm *VM) Traces(segID int) []*jit.Trace {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	return vm.segs[segID].traces
}

func describeSteps(steps []interp.Step) string {
	compiled := 0
	for _, s := range steps {
		if _, ok := s.(*jit.Trace); ok {
			compiled++
		}
	}
	return fmt.Sprintf("inject %d traces into %d-step plan", compiled, len(steps))
}
