package vm

import (
	"testing"
	"time"

	"repro/internal/dsl"
	"repro/internal/interp"
	"repro/internal/jit"
	"repro/internal/nir"
	"repro/internal/vector"
)

// bigLoopSrc processes the whole input in chunks; it runs long enough for
// the VM to go hot during a single execution.
const bigLoopSrc = `
mut i
i := 0
loop {
  let xs = read i data
  if len(xs) == 0 then break
  let r = map (\x -> (x * 3 + 7) * (x - 1)) xs
  write out i r
  i := i + len(xs)
}
`

func normalizeSrc(t *testing.T, src string, kinds map[string]vector.Kind) *nir.Program {
	t.Helper()
	prog, err := dsl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	np, err := nir.Normalize(prog, kinds)
	if err != nil {
		t.Fatal(err)
	}
	return np
}

func mkData(n int) map[string]*vector.Vector {
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(i%1000 - 500)
	}
	return map[string]*vector.Vector{
		"data": vector.FromI64(data),
		"out":  vector.New(vector.I64, 0, n),
	}
}

func wantOut(ext map[string]*vector.Vector) []int64 {
	data := ext["data"].I64()
	out := make([]int64, len(data))
	for i, x := range data {
		out[i] = (x*3 + 7) * (x - 1)
	}
	return out
}

// TestFigure1StateMachine drives the VM through the full Interpret →
// Optimize → GenerateCode → InjectFunctions → Interpret cycle and checks
// both the recorded transition sequence and result correctness.
func TestFigure1StateMachine(t *testing.T) {
	np := normalizeSrc(t, bigLoopSrc, map[string]vector.Kind{"data": vector.I64, "out": vector.I64})
	cfg := DefaultConfig()
	cfg.Sync = true
	cfg.HotCalls = 2
	cfg.HotNanos = 1 << 62
	cfg.JIT.CompileLatency = jit.NoCompileLatency
	// This test observes the compile cycle; micro-adaptive revert under a
	// loaded machine could legitimately deoptimize the trace between runs
	// and empty CompiledSegments (revert has its own test).
	cfg.MicroAdaptive = false
	v := New(np, cfg)

	ext := mkData(1 << 16)
	env, err := v.NewEnv(ext)
	if err != nil {
		t.Fatal(err)
	}
	// First run interprets and (in the Sync epilogue) compiles.
	if err := v.Run(env); err != nil {
		t.Fatal(err)
	}
	if len(v.CompiledSegments()) == 0 {
		t.Fatalf("hot loop body was not compiled; transitions: %v", v.Transitions())
	}

	// Transition log must contain the Figure-1 cycle in order.
	var seq []State
	for _, tr := range v.Transitions() {
		seq = append(seq, tr.To)
	}
	wantCycle := []State{StateOptimize, StateGenerateCode, StateInjectFunctions, StateInterpret}
	if !containsSubsequence(seq, wantCycle) {
		t.Fatalf("transition log misses the Figure-1 cycle: %v", v.Transitions())
	}

	// Second run executes through the injected traces and must agree.
	ext2 := mkData(1 << 16)
	env2, err := v.NewEnv(ext2)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Run(env2); err != nil {
		t.Fatal(err)
	}
	want := wantOut(ext2)
	got := ext2["out"].I64()
	if len(got) != len(want) {
		t.Fatalf("out len=%d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("out[%d]=%d want %d", i, got[i], want[i])
		}
	}
	executed := false
	for _, segID := range v.CompiledSegments() {
		for _, tr := range v.Traces(segID) {
			if tr.Calls() > 0 {
				executed = true
			}
		}
	}
	if !executed {
		t.Fatal("no trace executed on the second run")
	}
}

func containsSubsequence(seq, sub []State) bool {
	j := 0
	for _, s := range seq {
		if j < len(sub) && s == sub[j] {
			j++
		}
	}
	return j == len(sub)
}

// TestBackgroundOptimizerCompilesMidRun uses the async optimizer on a
// long-running loop: compilation must happen while Run is still executing.
func TestBackgroundOptimizerCompilesMidRun(t *testing.T) {
	np := normalizeSrc(t, bigLoopSrc, map[string]vector.Kind{"data": vector.I64, "out": vector.I64})
	cfg := DefaultConfig()
	cfg.HotCalls = 2
	cfg.OptimizeInterval = 200 * time.Microsecond
	cfg.JIT.CompileLatency = jit.NoCompileLatency
	v := New(np, cfg)

	ext := mkData(1 << 21) // ~2M rows: thousands of chunks
	env, err := v.NewEnv(ext)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Run(env); err != nil {
		t.Fatal(err)
	}
	if len(v.CompiledSegments()) == 0 {
		t.Fatal("background optimizer never compiled the hot loop")
	}
	trExecuted := int64(0)
	for _, segID := range v.CompiledSegments() {
		for _, tr := range v.Traces(segID) {
			trExecuted += tr.Calls()
		}
	}
	if trExecuted == 0 {
		t.Fatal("compiled traces never ran during the same execution")
	}
	want := wantOut(ext)
	got := ext["out"].I64()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("out[%d]=%d want %d (mid-run injection corrupted results)", i, got[i], want[i])
		}
	}
}

// TestMicroAdaptiveRevert: when the compiled trace is slower (simulated by a
// pathological tile size making it do no fusion but more bookkeeping, plus a
// forced cost), the VM must revert to interpretation.
func TestMicroAdaptiveRevert(t *testing.T) {
	np := normalizeSrc(t, bigLoopSrc, map[string]vector.Kind{"data": vector.I64, "out": vector.I64})
	// Exercise the revert decision logic directly.
	cfg2 := DefaultConfig()
	cfg2.Sync = true
	cfg2.HotCalls = 2
	cfg2.HotNanos = 1 << 62
	cfg2.JIT.CompileLatency = jit.NoCompileLatency
	v2 := New(np, cfg2)
	ext := mkData(1 << 16)
	env, _ := v2.NewEnv(ext)
	if err := v2.Run(env); err != nil {
		t.Fatal(err)
	}
	if len(v2.CompiledSegments()) == 0 {
		t.Fatal("not compiled")
	}
	segID := v2.CompiledSegments()[0]
	// Pretend the interpreter was much faster than the measured traces. Only
	// this segment is doctored; other segments' traces may legitimately stay
	// compiled, so every check below targets segID.
	v2.mu.Lock()
	v2.segs[segID].interpNanos = 0.0001
	v2.mu.Unlock()
	// Run again so traces accumulate ≥4 calls, then let the optimizer see
	// the regression.
	for i := 0; i < 4; i++ {
		env2, _ := v2.NewEnv(mkData(1 << 16))
		if err := v2.Run(env2); err != nil {
			t.Fatal(err)
		}
	}
	if containsInt(v2.CompiledSegments(), segID) {
		t.Fatalf("regressing trace was not reverted; transitions: %v", v2.Transitions())
	}
	// Reverted segments must not be recompiled...
	env3, _ := v2.NewEnv(mkData(1 << 16))
	if err := v2.Run(env3); err != nil {
		t.Fatal(err)
	}
	if containsInt(v2.CompiledSegments(), segID) {
		t.Fatal("reverted segment was recompiled without Recompile()")
	}
	// ...until Recompile clears the block.
	v2.Recompile()
	env4, _ := v2.NewEnv(mkData(1 << 16))
	if err := v2.Run(env4); err != nil {
		t.Fatal(err)
	}
	if !containsInt(v2.CompiledSegments(), segID) {
		t.Fatal("Recompile did not re-enable optimization")
	}
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// TestGuardedTraceFallsBackOnSituationChange installs a guard keyed on an
// external "situation" and verifies execution stays correct through guard
// failures.
func TestGuardedTraceFallsBackOnSituationChange(t *testing.T) {
	np := normalizeSrc(t, bigLoopSrc, map[string]vector.Kind{"data": vector.I64, "out": vector.I64})
	cfg := DefaultConfig()
	cfg.Sync = true
	cfg.HotCalls = 2
	cfg.HotNanos = 1 << 62
	cfg.JIT.CompileLatency = jit.NoCompileLatency
	v := New(np, cfg)

	situationOK := true
	for segID := range v.Interp.Segments {
		v.SetGuard(segID, func(*interp.Env) bool { return situationOK })
	}

	ext := mkData(1 << 15)
	env, _ := v.NewEnv(ext)
	if err := v.Run(env); err != nil {
		t.Fatal(err)
	}
	if len(v.CompiledSegments()) == 0 {
		t.Fatal("not compiled")
	}

	var traces []*jit.Trace
	for _, segID := range v.CompiledSegments() {
		traces = append(traces, v.Traces(segID)...)
	}

	// Situation changes: guards fail, VM must still produce correct output
	// through the deopt path.
	situationOK = false
	ext2 := mkData(1 << 15)
	env2, _ := v.NewEnv(ext2)
	if err := v.Run(env2); err != nil {
		t.Fatal(err)
	}
	want := wantOut(ext2)
	got := ext2["out"].I64()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("deopt path wrong at %d", i)
		}
	}
	deopts := int64(0)
	for _, tr := range traces {
		deopts += tr.Deopts()
	}
	if deopts == 0 {
		t.Fatal("guards never fired")
	}
	// Persistent guard failure must eventually drop the stale
	// specialization so the VM can re-specialize for the new situation.
	if len(v.CompiledSegments()) != 0 {
		t.Fatal("stale specialization kept despite persistent guard failure")
	}
}

func TestTransitionLogRendering(t *testing.T) {
	tr := Transition{From: StateInterpret, To: StateOptimize, Segment: 3, Note: "hot"}
	if s := tr.String(); s == "" {
		t.Fatal("empty transition string")
	}
	if StateGenerateCode.String() != "GenerateCode" {
		t.Fatal("state name wrong")
	}
}
