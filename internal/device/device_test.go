package device

import (
	"testing"
	"time"
)

func TestCPUEstimateComputeVsMemoryBound(t *testing.T) {
	cpu := NewCPU()
	// Compute-bound: many ops per element.
	kc := Kernel{Elems: 1000, BytesIn: 8000, BytesOut: 8000, OpsPerElem: 100}
	// Memory-bound: one op per element, lots of bytes.
	km := Kernel{Elems: 1000, BytesIn: 8 << 20, BytesOut: 0, OpsPerElem: 1}
	if cpu.Estimate(kc).Modeled <= 0 || cpu.Estimate(km).Modeled <= 0 {
		t.Fatal("estimates must be positive")
	}
	if cpu.Estimate(km).Modeled <= cpu.Estimate(kc).Modeled {
		t.Fatal("8MB memory-bound kernel should cost more than 1000-elem compute")
	}
}

func TestCPURunMeasures(t *testing.T) {
	cpu := NewCPU()
	cost := cpu.Run(Kernel{}, func() { time.Sleep(time.Millisecond) })
	if cost.Modeled < time.Millisecond {
		t.Fatalf("measured %v", cost.Modeled)
	}
}

// fakeDevice has a fixed estimate, for placer tests.
type fakeDevice struct {
	name string
	est  time.Duration
	runs int
}

func (f *fakeDevice) Name() string             { return f.name }
func (f *fakeDevice) Estimate(Kernel) Cost     { return Cost{Modeled: f.est} }
func (f *fakeDevice) MakeResident(string, int) {}
func (f *fakeDevice) Resident(string) bool     { return true }
func (f *fakeDevice) Run(k Kernel, work func()) Cost {
	f.runs++
	work()
	return Cost{Modeled: f.est}
}

func TestPlacerPicksCheapest(t *testing.T) {
	slow := &fakeDevice{name: "slow", est: time.Millisecond}
	fast := &fakeDevice{name: "fast", est: time.Microsecond}
	p := NewPlacer(slow, fast)
	if d := p.Choose(Kernel{}); d.Name() != "fast" {
		t.Fatalf("chose %s", d.Name())
	}
	ran := false
	d, cost := p.Execute(Kernel{}, func() { ran = true })
	if !ran || d.Name() != "fast" || cost.Modeled != time.Microsecond {
		t.Fatal("execute misbehaved")
	}
	if fast.runs != 1 || slow.runs != 0 {
		t.Fatal("work ran on the wrong device")
	}
	if p.Decisions["fast"] != 2 {
		t.Fatalf("decisions = %v", p.Decisions)
	}
}

func TestPlacerBiasCorrection(t *testing.T) {
	// A device whose estimates are 10× optimistic: after feedback the
	// placer must learn to distrust it.
	liar := &fakeDevice{name: "liar", est: time.Microsecond}
	honest := &fakeDevice{name: "honest", est: 5 * time.Microsecond}
	p := NewPlacer(liar, honest)
	// Simulate executions where the liar's observed cost is 10× its
	// estimate by feeding the bias directly through Execute on a device
	// that reports a different run cost.
	liarActual := &fakeDevice{name: "liar", est: time.Microsecond}
	_ = liarActual
	// Execute runs Estimate then Run; our fake returns est for both, so
	// emulate mis-estimation by swapping the est between calls.
	for i := 0; i < 10; i++ {
		liar.est = time.Microsecond // estimate phase
		d := p.Choose(Kernel{})
		if d.Name() != "liar" && i == 0 {
			t.Fatal("liar should win initially")
		}
		// Feed observed = 20µs against estimate = 1µs.
		liar.est = time.Microsecond
		est := liar.Estimate(Kernel{}).Modeled
		liar.est = 20 * time.Microsecond
		cost := liar.Run(Kernel{}, func() {})
		liar.est = time.Microsecond
		_ = est
		p.ObserveForTest("liar", float64(cost.Modeled)/float64(time.Microsecond))
	}
	if d := p.Choose(Kernel{}); d.Name() != "honest" {
		t.Fatalf("placer failed to learn the bias; chose %s", d.Name())
	}
}
