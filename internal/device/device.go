// Package device abstracts execution targets for the VM's third research
// target (§IV): running (parts of) a program "on multiple hardware
// platforms, making adaptive decisions which strategy to use ... but also on
// which hardware".
//
// A Device combines a cost model with (host-side) execution. The CPU device
// reports measured wall time; the simulated GPU (package gpu) executes the
// same computation on the host for result correctness but reports modeled
// time derived from a launch-overhead + transfer + throughput model. The
// Placer chooses a device per kernel using the models, corrected by
// observed/modeled feedback (EWMA), which reproduces the canonical
// CPU-vs-GPU crossover: small or non-resident inputs favour the CPU; large,
// device-resident inputs favour the GPU.
package device

import (
	"sync"
	"time"

	"repro/internal/profile"
)

// Kernel describes one data-parallel work item for costing purposes.
type Kernel struct {
	// Name identifies the kernel for residency and feedback tracking.
	Name string
	// Elems is the number of elements processed.
	Elems int
	// BytesIn / BytesOut are the data volumes the kernel touches.
	BytesIn, BytesOut int
	// OpsPerElem approximates arithmetic intensity.
	OpsPerElem float64
	// Inputs names the arrays consumed (for residency decisions).
	Inputs []string
}

// Cost is the device-reported cost of an execution.
type Cost struct {
	// Modeled is the cost the device charges (measured wall time for the
	// CPU, modeled time for simulated hardware).
	Modeled time.Duration
	// Transfer is the portion spent moving data (simulated devices only).
	Transfer time.Duration
}

// Device is an execution target.
type Device interface {
	// Name returns the device name ("cpu", "gpu").
	Name() string
	// Estimate predicts the cost of k before running it.
	Estimate(k Kernel) Cost
	// Run executes work (host-side) and returns the device-accounted cost.
	Run(k Kernel, work func()) Cost
	// MakeResident pins an input array in device memory so subsequent
	// kernels skip its transfer. No-op for the CPU.
	MakeResident(name string, bytes int)
	// Resident reports whether the named array is in device memory.
	Resident(name string) bool
}

// CPU is the host device: zero launch overhead, no transfers, throughput
// modeled from calibrated per-element cost; Run reports measured time.
type CPU struct {
	// NsPerElemOp calibrates Estimate (default 1.0 ns per element-op).
	NsPerElemOp float64
	// BytesPerNs is the memory bandwidth (default 16 B/ns ≈ 16 GB/s).
	BytesPerNs float64
}

// NewCPU returns a CPU device with default calibration.
func NewCPU() *CPU { return &CPU{NsPerElemOp: 1.0, BytesPerNs: 16} }

// Name implements Device.
func (c *CPU) Name() string { return "cpu" }

// Estimate implements Device.
func (c *CPU) Estimate(k Kernel) Cost {
	compute := float64(k.Elems) * maxf(k.OpsPerElem, 1) * c.NsPerElemOp
	mem := float64(k.BytesIn+k.BytesOut) / c.BytesPerNs
	return Cost{Modeled: time.Duration(maxf(compute, mem))}
}

// Run implements Device: executes work and reports measured wall time.
func (c *CPU) Run(k Kernel, work func()) Cost {
	start := time.Now()
	work()
	return Cost{Modeled: time.Since(start)}
}

// MakeResident implements Device (no-op: host memory is always resident).
func (c *CPU) MakeResident(string, int) {}

// Resident implements Device (host memory is always resident).
func (c *CPU) Resident(string) bool { return true }

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Placer picks a device per kernel: model-based with EWMA feedback from the
// costs devices actually report, so a mis-calibrated model self-corrects —
// the cross-hardware generalization of micro-adaptivity.
//
// A Placer is safe for concurrent use: morsel-parallel query execution
// places kernels from many workers at once, and an engine-global placer is
// shared by every session, so Choose, Execute and DecisionCounts
// synchronize internally. Reading the Devices slice or the Decisions map
// directly is only safe while no placements are in flight.
type Placer struct {
	Devices []Device

	mu sync.Mutex
	// bias[deviceName] multiplies the device's estimates (learned).
	bias map[string]*profile.EWMA
	// Decisions counts placements per device for reports (guarded by mu;
	// use DecisionCounts for a concurrent-safe snapshot).
	Decisions map[string]int
}

// NewPlacer creates a placer over the given devices.
func NewPlacer(devices ...Device) *Placer {
	p := &Placer{Devices: devices, bias: map[string]*profile.EWMA{}, Decisions: map[string]int{}}
	for _, d := range devices {
		p.bias[d.Name()] = profile.NewEWMA(0.2)
	}
	return p
}

// Choose returns the device with the lowest bias-corrected estimate.
func (p *Placer) Choose(k Kernel) Device {
	var best Device
	var bestCost float64
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, d := range p.Devices {
		est := float64(d.Estimate(k).Modeled)
		est *= p.bias[d.Name()].Value(1)
		if best == nil || est < bestCost {
			best, bestCost = d, est
		}
	}
	p.Decisions[best.Name()]++
	return best
}

// Execute places and runs the kernel, feeding the observed/modeled cost
// back into the bias for that device. The work itself runs outside the
// placer's lock, so concurrent workers execute their kernels in parallel
// and only the decision and the feedback serialize.
func (p *Placer) Execute(k Kernel, work func()) (Device, Cost) {
	d := p.Choose(k)
	est := d.Estimate(k).Modeled
	cost := d.Run(k, work)
	if est > 0 && cost.Modeled > 0 {
		p.observe(d.Name(), float64(cost.Modeled)/float64(est))
	}
	return d, cost
}

// observe feeds one observed/estimated cost ratio into a device's bias.
func (p *Placer) observe(deviceName string, ratio float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.bias[deviceName]; ok {
		e.Observe(ratio)
	}
}

// Bias returns the current learned bias multiplier for a device (1 when the
// device is unknown or has no feedback yet).
func (p *Placer) Bias(deviceName string) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.bias[deviceName]; ok {
		return e.Value(1)
	}
	return 1
}

// DecisionCounts returns a snapshot of placements per device.
func (p *Placer) DecisionCounts() map[string]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int, len(p.Decisions))
	for name, n := range p.Decisions {
		out[name] = n
	}
	return out
}

// ObserveForTest feeds a raw observed/estimated cost ratio into a device's
// bias, for tests that simulate mis-calibrated models.
func (p *Placer) ObserveForTest(deviceName string, ratio float64) {
	p.observe(deviceName, ratio)
}
