package device_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/device"
	"repro/internal/gpu"
)

// TestPlacerConcurrent hammers one Placer from many goroutines — the shape
// of an engine-global placer under morsel-parallel queries from concurrent
// sessions. Run under -race in CI: the decision counts, the EWMA feedback
// and the GPU's residency cache all synchronize internally.
func TestPlacerConcurrent(t *testing.T) {
	g := gpu.New(gpu.DefaultConfig())
	p := device.NewPlacer(device.NewCPU(), g)

	const workers = 8
	const kernelsPerWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < kernelsPerWorker; i++ {
				k := device.Kernel{
					Name:  fmt.Sprintf("k%d", i%7),
					Elems: 1 << (8 + uint(i%12)),
					// Shared residency keys across workers: concurrent
					// MakeResident/Resident on the same names.
					Inputs:     []string{fmt.Sprintf("col%d", i%5)},
					OpsPerElem: float64(1 + i%4),
				}
				k.BytesIn = k.Elems * 8
				k.BytesOut = k.Elems * 8
				switch i % 3 {
				case 0:
					p.Choose(k)
				case 1:
					p.Execute(k, func() {})
				default:
					p.ObserveForTest("gpu", 1.1)
					p.ObserveForTest("cpu", 0.9)
				}
			}
		}(w)
	}
	wg.Wait()

	counts := p.DecisionCounts()
	var total int
	for _, n := range counts {
		total += n
	}
	// Iterations with i%3 ∈ {0, 1} place a kernel (Choose or Execute).
	perWorker := (kernelsPerWorker + 2) / 3 // i%3 == 0
	perWorker += (kernelsPerWorker + 1) / 3 // i%3 == 1
	want := workers * perWorker
	if total != want {
		t.Fatalf("placed %d kernels, want %d (%v)", total, want, counts)
	}
	if b := p.Bias("cpu"); b <= 0 {
		t.Fatalf("cpu bias not positive: %v", b)
	}
	if g.TransferTotal() < 0 {
		t.Fatal("negative transfer total")
	}
}
