// Package qtrace is a low-overhead query-execution tracing layer. A Trace
// owns a flat, append-only list of spans forming a tree: one root query
// span, one span per plan-node operator, and (at LevelMorsels) one leaf
// span per morsel executed by a dispatch loop, plus zero-duration event
// spans for one-off occurrences (fused compile, deopt, ...).
//
// The package is designed so that disabled tracing costs a single nil
// check: every method on *Trace and *Span is safe to call on a nil
// receiver and returns immediately. Hot-path counters (busy time, rows,
// loops) are atomics so concurrently executing workers can share one
// operator span without locking.
package qtrace

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Level selects how much execution tracing a query records.
type Level int

const (
	// LevelOff records nothing; tracing calls reduce to nil checks.
	LevelOff Level = iota
	// LevelOps records the query/operator span tree and event spans.
	LevelOps
	// LevelMorsels additionally records one leaf span per morsel
	// executed by parallel dispatch loops (worker, steal, and device
	// attribution).
	LevelMorsels
)

func (l Level) String() string {
	switch l {
	case LevelOff:
		return "off"
	case LevelOps:
		return "ops"
	case LevelMorsels:
		return "morsels"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// ParseLevel converts a string flag value into a Level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "off", "":
		return LevelOff, nil
	case "ops":
		return LevelOps, nil
	case "morsels":
		return LevelMorsels, nil
	default:
		return LevelOff, fmt.Errorf("qtrace: unknown trace level %q (want off, ops, or morsels)", s)
	}
}

// Kind classifies a span.
type Kind uint8

const (
	// KindQuery is the root span covering the whole query.
	KindQuery Kind = iota
	// KindOp is a plan-node operator span.
	KindOp
	// KindMorsel is a per-morsel leaf span under a dispatching operator.
	KindMorsel
	// KindEvent is a zero-duration marker (compile, deopt, ...).
	KindEvent
)

func (k Kind) String() string {
	switch k {
	case KindQuery:
		return "query"
	case KindOp:
		return "op"
	case KindMorsel:
		return "morsel"
	case KindEvent:
		return "event"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Attr is one key/value span attribute.
type Attr struct {
	Key   string
	Value any
}

// Span is one node in the trace tree. Timing counters are atomics so
// multiple workers may share a span; attrs are mutex-guarded.
type Span struct {
	tr     *Trace
	id     int32
	parent int32 // -1 for a root span

	kind  Kind
	name  string
	start int64 // ns since trace epoch

	busy   atomic.Int64 // accumulated operator time across workers, ns
	rows   atomic.Int64
	loops  atomic.Int64
	worker atomic.Int32 // executing worker, -1 if unattributed

	mu    sync.Mutex
	end   int64 // ns since trace epoch; 0 = still open
	attrs []Attr
}

// Trace collects the spans of one query execution.
type Trace struct {
	level Level
	epoch time.Time

	mu    sync.Mutex
	spans []*Span
}

// New returns a trace recording at the given level, or nil for LevelOff.
func New(level Level) *Trace {
	if level <= LevelOff {
		return nil
	}
	return &Trace{level: level, epoch: time.Now()}
}

// Enabled reports whether the trace records anything.
func (t *Trace) Enabled() bool { return t != nil }

// Level returns the recording level (LevelOff for a nil trace).
func (t *Trace) Level() Level {
	if t == nil {
		return LevelOff
	}
	return t.level
}

// Morsels reports whether per-morsel leaf spans are recorded.
func (t *Trace) Morsels() bool { return t != nil && t.level >= LevelMorsels }

// Now returns nanoseconds since the trace epoch (0 for a nil trace).
func (t *Trace) Now() int64 {
	if t == nil {
		return 0
	}
	return int64(time.Since(t.epoch))
}

func (t *Trace) newSpan(parent int32, kind Kind, name string) *Span {
	s := &Span{tr: t, parent: parent, kind: kind, name: name, start: t.Now()}
	s.worker.Store(-1)
	t.mu.Lock()
	s.id = int32(len(t.spans))
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Root starts a new top-level span (typically the single query span).
func (t *Trace) Root(name string) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(-1, KindQuery, name)
}

// Child starts a child span under s.
func (s *Span) Child(kind Kind, name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(s.id, kind, name)
}

// Event records a zero-duration marker span under parent (or at the root
// when parent is nil).
func (t *Trace) Event(parent *Span, name string, attrs ...Attr) {
	if t == nil {
		return
	}
	pid := int32(-1)
	if parent != nil {
		pid = parent.id
	}
	s := t.newSpan(pid, KindEvent, name)
	s.mu.Lock()
	s.end = s.start
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// Spans returns a snapshot of all spans recorded so far, in creation order.
func (t *Trace) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]*Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	return out
}

// Finish closes every span that is still open (root last-write-wins).
// Call once when the query completes; rendering open spans is undefined.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	now := t.Now()
	for _, s := range t.Spans() {
		s.mu.Lock()
		if s.end == 0 {
			s.end = now
		}
		s.mu.Unlock()
	}
}

// End closes the span. Concurrent or repeated calls keep the latest end
// time, so a span shared by several worker pipelines ends when the last
// one closes.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.tr.Now()
	s.mu.Lock()
	if now > s.end {
		s.end = now
	}
	s.mu.Unlock()
}

// AddTime accumulates operator busy time.
func (s *Span) AddTime(d time.Duration) {
	if s == nil {
		return
	}
	s.busy.Add(int64(d))
}

// AddRows accumulates rows produced.
func (s *Span) AddRows(n int64) {
	if s == nil {
		return
	}
	s.rows.Add(n)
}

// AddLoop counts one Next (or morsel) invocation.
func (s *Span) AddLoop() {
	if s == nil {
		return
	}
	s.loops.Add(1)
}

// SetWorker attributes the span to a worker index.
func (s *Span) SetWorker(w int) {
	if s == nil {
		return
	}
	s.worker.Store(int32(w))
}

// SetAttr sets (or replaces) an attribute.
func (s *Span) SetAttr(key string, v any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = v
			s.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: v})
	s.mu.Unlock()
}

// Accessors (all safe on nil, returning zero values).

// ID returns the span's index in the trace.
func (s *Span) ID() int32 {
	if s == nil {
		return -1
	}
	return s.id
}

// Parent returns the parent span's ID, or -1 for a root span.
func (s *Span) Parent() int32 {
	if s == nil {
		return -1
	}
	return s.parent
}

// Kind returns the span kind.
func (s *Span) Kind() Kind {
	if s == nil {
		return KindEvent
	}
	return s.kind
}

// Name returns the span name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// StartNs returns the start offset from the trace epoch in nanoseconds.
func (s *Span) StartNs() int64 {
	if s == nil {
		return 0
	}
	return s.start
}

// EndNs returns the end offset from the trace epoch (0 if still open).
func (s *Span) EndNs() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.end
}

// DurNs returns end-start (0 if still open).
func (s *Span) DurNs() int64 {
	if s == nil {
		return 0
	}
	if e := s.EndNs(); e > s.start {
		return e - s.start
	}
	return 0
}

// BusyNs returns accumulated operator time across workers.
func (s *Span) BusyNs() int64 {
	if s == nil {
		return 0
	}
	return s.busy.Load()
}

// Rows returns accumulated rows produced.
func (s *Span) Rows() int64 {
	if s == nil {
		return 0
	}
	return s.rows.Load()
}

// Loops returns the number of Next/morsel invocations.
func (s *Span) Loops() int64 {
	if s == nil {
		return 0
	}
	return s.loops.Load()
}

// Worker returns the attributed worker index, or -1.
func (s *Span) Worker() int {
	if s == nil {
		return -1
	}
	return int(s.worker.Load())
}

// Attrs returns a copy of the span's attributes in insertion order.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Attr, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Attr returns the value for key, or nil.
func (s *Span) Attr(key string) any {
	for _, a := range s.Attrs() {
		if a.Key == key {
			return a.Value
		}
	}
	return nil
}

// node assembles the span tree for rendering/export.
type node struct {
	s        *Span
	children []*node
}

// tree returns the root nodes of the span forest in creation order.
// Children are ordered by creation; KindMorsel children are additionally
// sorted by their "seq" attribute so parallel runs render deterministically.
func (t *Trace) tree() []*node {
	spans := t.Spans()
	nodes := make([]*node, len(spans))
	for i, s := range spans {
		nodes[i] = &node{s: s}
	}
	var roots []*node
	for i, s := range spans {
		if p := s.Parent(); p >= 0 && int(p) < len(nodes) {
			nodes[p].children = append(nodes[p].children, nodes[i])
		} else {
			roots = append(roots, nodes[i])
		}
	}
	for _, n := range nodes {
		sortMorselChildren(n.children)
	}
	return roots
}

// sortMorselChildren reorders runs of morsel-leaf siblings by morsel
// sequence number; append order under parallel execution is racy.
func sortMorselChildren(children []*node) {
	sort.SliceStable(children, func(i, j int) bool {
		a, b := children[i], children[j]
		if a.s.Kind() != KindMorsel || b.s.Kind() != KindMorsel {
			return false // keep creation order for non-morsel siblings
		}
		return morselSeq(a.s) < morselSeq(b.s)
	})
}

func morselSeq(s *Span) int64 {
	if v, ok := s.Attr("seq").(int); ok {
		return int64(v)
	}
	if v, ok := s.Attr("seq").(int64); ok {
		return v
	}
	return -1
}

// selfNs returns the span's busy time minus the busy time of its direct
// KindOp children, clamped at zero. Morsel leaves and events don't carry
// busy time of their own accounting stream, so they're excluded.
func (n *node) selfNs() int64 {
	self := n.s.BusyNs()
	for _, c := range n.children {
		if c.s.Kind() == KindOp {
			self -= c.s.BusyNs()
		}
	}
	if self < 0 {
		self = 0
	}
	return self
}

// OpSelfTimes returns per-operator-name self time (busy minus direct
// operator children's busy, clamped ≥ 0) in nanoseconds, summed over all
// KindOp spans. Used to feed per-operator latency histograms.
func (t *Trace) OpSelfTimes() map[string]int64 {
	if t == nil {
		return nil
	}
	out := make(map[string]int64)
	var walk func(n *node)
	walk = func(n *node) {
		if n.s.Kind() == KindOp {
			out[n.s.Name()] += n.selfNs()
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	for _, r := range t.tree() {
		walk(r)
	}
	return out
}
