package qtrace

import (
	"encoding/json"
	"io"
)

// Chrome trace-event JSON export (the format consumed by chrome://tracing
// and Perfetto). Operator spans land on tid 0 ("operators"); morsel leaves
// land on tid worker+1 so each worker gets its own timeline row; events
// become instant markers.

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // µs since trace epoch
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeJSON writes the trace in Chrome trace-event JSON format.
func (t *Trace) WriteChromeJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`+"\n")
		return err
	}
	spans := t.Spans()
	out := chromeTrace{DisplayTimeUnit: "ms"}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]any{"name": "advm query"},
	})
	threads := map[int]bool{}
	for _, s := range spans {
		tid := 0
		if s.Kind() == KindMorsel {
			tid = s.Worker() + 1
		}
		if !threads[tid] {
			threads[tid] = true
			name := "operators"
			if tid > 0 {
				name = workerThreadName(tid - 1)
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
				Args: map[string]any{"name": name},
			})
		}
		args := map[string]any{}
		for _, a := range s.Attrs() {
			args[a.Key] = a.Value
		}
		if r := s.Rows(); r > 0 {
			args["rows"] = r
		}
		if l := s.Loops(); l > 0 {
			args["loops"] = l
		}
		if b := s.BusyNs(); b > 0 && s.Kind() == KindOp {
			args["busy_ns"] = b
		}
		if len(args) == 0 {
			args = nil
		}
		ev := chromeEvent{
			Name: s.Name(), Cat: s.Kind().String(),
			Ts: float64(s.StartNs()) / 1e3, Pid: 1, Tid: tid, Args: args,
		}
		if s.Kind() == KindEvent {
			ev.Ph, ev.S = "i", "p"
		} else {
			ev.Ph = "X"
			ev.Dur = float64(s.DurNs()) / 1e3
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

func workerThreadName(w int) string {
	return "worker " + itoa(w)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
