package qtrace

import (
	"sync/atomic"
	"time"
)

// DurationBounds are the upper bounds (seconds) of the latency histogram
// buckets used for query duration, admission wait, and operator self-time.
// Exponential-ish 100µs .. 10s; observations above the last bound land in
// the implicit +Inf bucket.
var DurationBounds = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram with atomic counters,
// safe for concurrent Observe and Snapshot. The zero value is NOT ready;
// use NewHistogram. All methods are nil-safe.
type Histogram struct {
	counts []atomic.Int64 // len(DurationBounds)+1, last is +Inf
	sumNs  atomic.Int64
	n      atomic.Int64
}

// NewHistogram returns an empty histogram over DurationBounds.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]atomic.Int64, len(DurationBounds)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	secs := d.Seconds()
	i := 0
	for i < len(DurationBounds) && secs > DurationBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNs.Add(int64(d))
	h.n.Add(1)
}

// HistSnapshot is a point-in-time copy of a histogram. Counts are
// per-bucket (not cumulative) and aligned with Bounds; Counts has one
// extra trailing element for +Inf.
type HistSnapshot struct {
	Bounds []float64
	Counts []int64
	Sum    float64 // seconds
	Count  int64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	snap := HistSnapshot{Bounds: DurationBounds}
	if h == nil {
		snap.Counts = make([]int64, len(DurationBounds)+1)
		return snap
	}
	snap.Counts = make([]int64, len(h.counts))
	for i := range h.counts {
		snap.Counts[i] = h.counts[i].Load()
	}
	snap.Sum = float64(h.sumNs.Load()) / 1e9
	snap.Count = h.n.Load()
	return snap
}
