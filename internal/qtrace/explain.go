package qtrace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// ExplainAnalyze renders the span tree as a PostgreSQL-style plan with
// actual timings: one line per operator with inclusive time, self time,
// rows, and loops, followed by its attributes, with per-morsel leaves
// summarized (per-worker morsel counts, steals, devices) rather than
// listed. Event spans render as bracketed markers.
func (t *Trace) ExplainAnalyze() string {
	if t == nil {
		return "tracing disabled\n"
	}
	var b strings.Builder
	for _, root := range t.tree() {
		writeExplainNode(&b, root, 0)
	}
	return b.String()
}

func writeExplainNode(b *strings.Builder, n *node, depth int) {
	switch n.s.Kind() {
	case KindMorsel:
		return // summarized on the parent
	case KindEvent:
		fmt.Fprintf(b, "%s[event: %s%s]\n", indent(depth), n.s.Name(), attrSuffix(n.s))
		return
	case KindQuery:
		fmt.Fprintf(b, "%s (wall=%s%s)\n", n.s.Name(), fmtNs(n.s.DurNs()), attrSuffix(n.s))
	default: // KindOp
		fmt.Fprintf(b, "%s->  %s (actual=%s self=%s rows=%d loops=%d%s)\n",
			indent(depth), n.s.Name(), fmtNs(n.s.BusyNs()), fmtNs(n.selfNs()),
			n.s.Rows(), n.s.Loops(), attrSuffix(n.s))
	}
	if line := summarizeMorsels(n); line != "" {
		fmt.Fprintf(b, "%s%s\n", indent(depth+1), line)
	}
	for _, c := range n.children {
		d := depth + 1
		if n.s.Kind() == KindQuery {
			d = depth
		}
		writeExplainNode(b, c, d)
	}
}

func indent(depth int) string { return strings.Repeat("    ", depth) }

func attrSuffix(s *Span) string {
	attrs := s.Attrs()
	if len(attrs) == 0 {
		return ""
	}
	var b strings.Builder
	for _, a := range attrs {
		fmt.Fprintf(&b, ", %s=%v", a.Key, a.Value)
	}
	return b.String()
}

// summarizeMorsels condenses a node's morsel-leaf children into one line:
// total morsels, per-worker counts, steal count, and device mix.
func summarizeMorsels(n *node) string {
	perWorker := map[int]int{}
	devices := map[string]int{}
	total, stolen := 0, 0
	for _, c := range n.children {
		if c.s.Kind() != KindMorsel {
			continue
		}
		total++
		if w := c.s.Worker(); w >= 0 {
			perWorker[w]++
		}
		if v, ok := c.s.Attr("stolen").(bool); ok && v {
			stolen++
		}
		if d, ok := c.s.Attr("device").(string); ok {
			devices[d]++
		}
	}
	if total == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "morsels: %d", total)
	workers := make([]int, 0, len(perWorker))
	for w := range perWorker {
		workers = append(workers, w)
	}
	sort.Ints(workers)
	for _, w := range workers {
		fmt.Fprintf(&b, " w%d=%d", w, perWorker[w])
	}
	fmt.Fprintf(&b, " stolen=%d", stolen)
	if len(devices) > 0 {
		devs := make([]string, 0, len(devices))
		for d := range devices {
			devs = append(devs, d)
		}
		sort.Strings(devs)
		for _, d := range devs {
			fmt.Fprintf(&b, " %s=%d", d, devices[d])
		}
	}
	return b.String()
}

// fmtNs renders nanoseconds in a compact human unit (ms with two
// decimals above 1ms, µs below).
func fmtNs(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
