package qtrace

// SpanJSON is the JSON-friendly span-tree form returned by the server's
// "trace": true query option and the slow-query log.
type SpanJSON struct {
	Name     string         `json:"name"`
	Kind     string         `json:"kind"`
	StartNs  int64          `json:"start_ns"`
	DurNs    int64          `json:"dur_ns"`
	BusyNs   int64          `json:"busy_ns,omitempty"`
	SelfNs   int64          `json:"self_ns,omitempty"`
	Rows     int64          `json:"rows,omitempty"`
	Loops    int64          `json:"loops,omitempty"`
	Worker   *int           `json:"worker,omitempty"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []*SpanJSON    `json:"children,omitempty"`
}

// Tree converts the trace to its JSON form. It returns nil for a nil
// trace or an empty one; when several roots exist the first is returned
// (queries record exactly one root).
func (t *Trace) Tree() *SpanJSON {
	if t == nil {
		return nil
	}
	roots := t.tree()
	if len(roots) == 0 {
		return nil
	}
	return jsonNode(roots[0])
}

func jsonNode(n *node) *SpanJSON {
	out := &SpanJSON{
		Name:    n.s.Name(),
		Kind:    n.s.Kind().String(),
		StartNs: n.s.StartNs(),
		DurNs:   n.s.DurNs(),
		BusyNs:  n.s.BusyNs(),
		Rows:    n.s.Rows(),
		Loops:   n.s.Loops(),
	}
	if n.s.Kind() == KindOp {
		out.SelfNs = n.selfNs()
	}
	if w := n.s.Worker(); w >= 0 {
		out.Worker = &w
	}
	if attrs := n.s.Attrs(); len(attrs) > 0 {
		out.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range n.children {
		out.Children = append(out.Children, jsonNode(c))
	}
	return out
}
