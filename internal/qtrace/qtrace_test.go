package qtrace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestParseLevel(t *testing.T) {
	cases := []struct {
		in   string
		want Level
		ok   bool
	}{
		{"", LevelOff, true},
		{"off", LevelOff, true},
		{"ops", LevelOps, true},
		{"morsels", LevelMorsels, true},
		{"bogus", LevelOff, false},
	}
	for _, c := range cases {
		got, err := ParseLevel(c.in)
		if c.ok && err != nil {
			t.Errorf("ParseLevel(%q): unexpected error %v", c.in, err)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseLevel(%q): want error", c.in)
		}
		if c.ok && got != c.want {
			t.Errorf("ParseLevel(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestLevelAndKindStrings(t *testing.T) {
	if LevelOff.String() != "off" || LevelOps.String() != "ops" || LevelMorsels.String() != "morsels" {
		t.Errorf("level strings: %q %q %q", LevelOff, LevelOps, LevelMorsels)
	}
	if KindQuery.String() != "query" || KindOp.String() != "op" ||
		KindMorsel.String() != "morsel" || KindEvent.String() != "event" {
		t.Errorf("kind strings: %q %q %q %q", KindQuery, KindOp, KindMorsel, KindEvent)
	}
}

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	if tr != New(LevelOff) {
		t.Fatal("New(LevelOff) must return nil")
	}
	if tr.Enabled() || tr.Morsels() {
		t.Fatal("nil trace must report disabled")
	}
	root := tr.Root("q")
	if root != nil {
		t.Fatal("nil trace must produce nil spans")
	}
	// Every span method must be a no-op on nil.
	sp := root.Child(KindOp, "x")
	sp.AddTime(time.Second)
	sp.AddRows(1)
	sp.AddLoop()
	sp.SetWorker(3)
	sp.SetAttr("k", 1)
	sp.End()
	if sp.DurNs() != 0 || sp.BusyNs() != 0 || sp.Rows() != 0 || sp.Loops() != 0 ||
		sp.Worker() != -1 || sp.Attrs() != nil || sp.Attr("k") != nil {
		t.Fatal("nil span accessors must return zero values")
	}
	tr.Event(root, "e")
	tr.Finish()
	if got := tr.ExplainAnalyze(); !strings.Contains(got, "disabled") {
		t.Fatalf("nil ExplainAnalyze = %q", got)
	}
	if tr.Spans() != nil || tr.Tree() != nil {
		t.Fatal("nil trace must have no spans")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatalf("nil WriteChromeJSON: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil chrome JSON invalid: %v", err)
	}
}

// buildSample constructs a small two-level trace with morsel leaves and an
// event, exercising the accumulation API the engine hooks use.
func buildSample(level Level) *Trace {
	tr := New(level)
	root := tr.Root("query")
	root.SetAttr("workers", 2)
	op := root.Child(KindOp, "filter")
	op.SetAttr("col", "a")
	op.AddTime(3 * time.Millisecond)
	op.AddRows(100)
	op.AddLoop()
	child := op.Child(KindOp, "scan")
	child.AddTime(1 * time.Millisecond)
	child.AddRows(200)
	child.AddLoop()
	child.End()
	for seq := 1; seq >= 0; seq-- { // out of order: rendering must sort by seq
		m := op.Child(KindMorsel, "morsel")
		m.SetWorker(seq)
		m.SetAttr("seq", seq)
		m.SetAttr("rows_in", 50)
		if seq == 1 {
			m.SetAttr("stolen", true)
			m.SetAttr("device", "gpu0")
		}
		m.AddRows(25)
		m.End()
	}
	tr.Event(root, "deopt")
	op.End()
	root.End()
	tr.Finish()
	return tr
}

func TestSpanTreeAndSelfTimes(t *testing.T) {
	tr := buildSample(LevelMorsels)
	if !tr.Enabled() || !tr.Morsels() || tr.Level() != LevelMorsels {
		t.Fatal("trace must be enabled at morsels level")
	}
	spans := tr.Spans()
	if len(spans) != 6 { // root, filter, scan, 2 morsels, event
		t.Fatalf("got %d spans, want 6", len(spans))
	}
	self := tr.OpSelfTimes()
	// filter self = 3ms − 1ms (scan child busy); morsels don't subtract.
	if got := self["filter"]; got != int64(2*time.Millisecond) {
		t.Errorf("filter self = %d, want 2ms", got)
	}
	if got := self["scan"]; got != int64(1*time.Millisecond) {
		t.Errorf("scan self = %d, want 1ms", got)
	}
}

func TestSelfTimeClampsNegative(t *testing.T) {
	tr := New(LevelOps)
	root := tr.Root("query")
	op := root.Child(KindOp, "agg")
	op.AddTime(1 * time.Millisecond)
	// Parallel children can accumulate more busy time than the parent.
	c := op.Child(KindOp, "stage")
	c.AddTime(5 * time.Millisecond)
	tr.Finish()
	if got := tr.OpSelfTimes()["agg"]; got != 0 {
		t.Errorf("agg self = %d, want clamp to 0", got)
	}
}

func TestSetAttrReplaces(t *testing.T) {
	tr := New(LevelOps)
	sp := tr.Root("q")
	sp.SetAttr("k", 1)
	sp.SetAttr("k", 2)
	if len(sp.Attrs()) != 1 || sp.Attr("k") != 2 {
		t.Fatalf("attrs = %v", sp.Attrs())
	}
}

func TestExplainAnalyzeRendering(t *testing.T) {
	out := buildSample(LevelMorsels).ExplainAnalyze()
	for _, want := range []string{
		"query (wall=",
		"workers=2",
		"->  filter (actual=3.00ms self=2.00ms rows=100 loops=1, col=a)",
		"morsels: 2 w0=1 w1=1 stolen=1 gpu0=1",
		"->  scan (actual=1.00ms self=1.00ms rows=200 loops=1)",
		"[event: deopt]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN ANALYZE missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\"morsel\"") || strings.Count(out, "morsel\n") > 0 {
		t.Errorf("morsel leaves must be summarized, not listed:\n%s", out)
	}
}

func TestFmtNs(t *testing.T) {
	cases := map[int64]string{
		500:         "500ns",
		1500:        "1.5µs",
		2_500_000:   "2.50ms",
		1_000_0000:  "10.00ms",
		3_000000000: "3000.00ms",
	}
	for ns, want := range cases {
		if got := fmtNs(ns); got != want {
			t.Errorf("fmtNs(%d) = %q, want %q", ns, got, want)
		}
	}
}

func TestChromeJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := buildSample(LevelMorsels).WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid chrome JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	var complete, instant, meta int
	threads := map[float64]bool{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		switch ph {
		case "X":
			complete++
			if _, ok := ev["dur"]; !ok {
				t.Errorf("complete event missing dur: %v", ev)
			}
			tid, _ := ev["tid"].(float64)
			threads[tid] = true
		case "i":
			instant++
			if ev["s"] != "p" {
				t.Errorf("instant event missing process scope: %v", ev)
			}
		case "M":
			meta++
		default:
			t.Errorf("unexpected phase %q", ph)
		}
		if _, ok := ev["name"].(string); !ok {
			t.Errorf("event missing name: %v", ev)
		}
		if ts, ok := ev["ts"].(float64); ok && ts < 0 {
			t.Errorf("negative ts: %v", ev)
		}
	}
	if complete != 5 { // root, filter, scan, 2 morsels
		t.Errorf("complete events = %d, want 5", complete)
	}
	if instant != 1 {
		t.Errorf("instant events = %d, want 1", instant)
	}
	if meta == 0 {
		t.Error("no metadata events (process/thread names)")
	}
	// Morsel spans land on per-worker threads (tid = worker+1), operator
	// spans on tid 0.
	if !threads[0] || !threads[1] || !threads[2] {
		t.Errorf("thread ids = %v, want {0,1,2}", threads)
	}
}

func TestTreeJSON(t *testing.T) {
	tree := buildSample(LevelMorsels).Tree()
	if tree == nil || tree.Name != "query" || tree.Kind != "query" {
		t.Fatalf("tree root = %+v", tree)
	}
	if len(tree.Children) != 2 { // filter + event
		t.Fatalf("root children = %d, want 2", len(tree.Children))
	}
	var filter *SpanJSON
	for _, c := range tree.Children {
		if c.Name == "filter" {
			filter = c
		}
	}
	if filter == nil {
		t.Fatal("no filter child")
	}
	if filter.SelfNs != int64(2*time.Millisecond) {
		t.Errorf("filter self = %d", filter.SelfNs)
	}
	var morsels int
	for _, c := range filter.Children {
		if c.Kind == "morsel" {
			morsels++
			if c.Worker == nil {
				t.Error("morsel leaf missing worker")
			}
		}
	}
	if morsels != 2 {
		t.Errorf("morsel leaves = %d, want 2", morsels)
	}
	raw, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"self_ns"`)) || !bytes.Contains(raw, []byte(`"busy_ns"`)) {
		t.Errorf("tree JSON missing expected fields: %s", raw)
	}
}

func TestFinishEndsOpenSpans(t *testing.T) {
	tr := New(LevelOps)
	root := tr.Root("q")
	op := root.Child(KindOp, "x")
	tr.Finish()
	if op.EndNs() < op.StartNs() || root.EndNs() < root.StartNs() {
		t.Fatal("Finish must end open spans")
	}
}

func TestOpsLevelRecordsNoMorsels(t *testing.T) {
	tr := New(LevelOps)
	if tr.Morsels() {
		t.Fatal("ops level must not record morsels")
	}
}

func TestHistogram(t *testing.T) {
	var nilH *Histogram
	nilH.Observe(time.Second) // must not panic
	snap := nilH.Snapshot()
	if snap.Count != 0 || len(snap.Counts) != len(DurationBounds)+1 {
		t.Fatalf("nil snapshot = %+v", snap)
	}

	h := NewHistogram()
	h.Observe(50 * time.Microsecond)  // ≤ 0.0001
	h.Observe(300 * time.Microsecond) // ≤ 0.0005
	h.Observe(2 * time.Second)        // ≤ 2.5
	h.Observe(time.Hour)              // +Inf
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Counts[0] != 1 {
		t.Errorf("bucket 0 = %d, want 1", s.Counts[0])
	}
	if s.Counts[2] != 1 {
		t.Errorf("bucket ≤0.0005 = %d, want 1", s.Counts[2])
	}
	if s.Counts[len(s.Counts)-1] != 1 {
		t.Errorf("+Inf bucket = %d, want 1", s.Counts[len(s.Counts)-1])
	}
	wantSum := (50*time.Microsecond + 300*time.Microsecond + 2*time.Second + time.Hour).Seconds()
	if diff := s.Sum - wantSum; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("sum = %v, want %v", s.Sum, wantSum)
	}
	var cum int64
	for _, c := range s.Counts {
		cum += c
	}
	if cum != s.Count {
		t.Errorf("bucket counts %v don't sum to %d", s.Counts, s.Count)
	}
}
