//go:build linux

package colstore

import (
	"os"
	"syscall"
)

// mapFile memory-maps path read-only. The returned release function unmaps;
// empty files return a nil slice and a no-op release. Columns are decoded
// straight out of the mapping, so cold scans fault pages in on demand
// instead of reading whole files upfront.
func mapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := int(st.Size())
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
