// Package colstore is a persistent compressed columnar table format: the
// disk-backed storage layer the paper's cost-based placement story needs in
// order to reason about bytes actually moved rather than synthetic in-RAM
// slices. A table is a directory holding one file per column plus a JSON
// manifest. Each column file is a sequence of independently encoded segments
// (fixed row count, defaulting to 64k rows) whose compression scheme is
// chosen per segment by internal/compress's analyzer, followed by a footer
// of per-segment zone maps (min/max, null count, distinct estimate) that
// scan pruning reads without touching the data.
//
// Layout of <column>.col:
//
//	"ADVMCOL1"                       8-byte magic
//	segment 0 payload                encoding depends on column kind
//	segment 1 payload
//	...
//	footer:
//	  u32 segment count
//	  per segment: u32 rows, u64 offset, u64 length, u8 scheme,
//	               i64 min, i64 max, u32 nulls, u32 distinct
//	u64 footer offset
//	"ADVMCOL1"                       trailing magic
//
// Segment payloads: int64 columns store one self-delimiting compress.Block;
// float64 columns store the same over math.Float64bits images (bit-exact
// round-trip); string columns store a local dictionary (u32 count, then
// uvarint-length-prefixed bytes per entry) followed by a compress.Block of
// dictionary codes. Readers memory-map the files on Linux (falling back to
// a buffered read elsewhere) and decode lazily, one segment at a time, so
// scans integrate with the engine's chunk-at-a-time operators without ever
// materializing a full column.
package colstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/vector"
)

// ErrCorrupt is wrapped by every failure caused by malformed on-disk state
// (truncated files, bad magic, inconsistent footers). I/O errors pass
// through unwrapped, so callers can distinguish "regenerate" from "retry".
var ErrCorrupt = errors.New("colstore: corrupt table")

const (
	magic = "ADVMCOL1"
	// DefaultSegmentRows is the default rows per segment: large enough that
	// zone maps stay cheap (a few dozen entries per SF-1 column), small
	// enough that skipping one prunes real work. It is a multiple of the
	// morsel length, so segment boundaries align with dispatch boundaries.
	DefaultSegmentRows = 65536
	manifestName       = "manifest.json"
	// segMetaBytes is the fixed encoded size of one footer entry.
	segMetaBytes = 4 + 8 + 8 + 1 + 8 + 8 + 4 + 4
)

// segMeta is one segment's footer entry: location plus zone map.
type segMeta struct {
	rows     int
	off, len uint64
	scheme   uint8
	min, max int64 // float columns store math.Float64bits images
	nulls    uint32
	distinct uint32
}

// manifest is the table-level metadata file.
type manifest struct {
	Version     int           `json:"version"`
	Rows        int           `json:"rows"`
	SegmentRows int           `json:"segment_rows"`
	Columns     []manifestCol `json:"columns"`
}

type manifestCol struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// kindNames maps the supported column kinds onto manifest strings.
var kindNames = map[vector.Kind]string{
	vector.I64: "i64",
	vector.F64: "f64",
	vector.Str: "str",
}

func kindFromName(s string) (vector.Kind, error) {
	for k, n := range kindNames {
		if n == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("%w: unsupported column kind %q", ErrCorrupt, s)
}

// columnFile returns the file name for a column. Column names in this
// codebase are identifier-like; anything path-hostile is rejected by the
// writer.
func columnFile(dir, name string) string {
	return filepath.Join(dir, name+".col")
}

func validColumnName(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		ok := r == '_' || (r >= '0' && r <= '9') || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !ok {
			return false
		}
	}
	return true
}

// writeFileAtomic writes data to path via a temp file + rename, so readers
// never observe a half-written column or manifest.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// readManifest loads and validates the manifest of a table directory.
func readManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%w: manifest: %v", ErrCorrupt, err)
	}
	if m.Version != 1 {
		return nil, fmt.Errorf("%w: manifest version %d", ErrCorrupt, m.Version)
	}
	if m.Rows < 0 || m.SegmentRows <= 0 || len(m.Columns) == 0 {
		return nil, fmt.Errorf("%w: manifest rows=%d segment_rows=%d columns=%d",
			ErrCorrupt, m.Rows, m.SegmentRows, len(m.Columns))
	}
	return &m, nil
}
