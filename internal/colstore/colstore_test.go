package colstore

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/vector"
)

// genStore builds an in-RAM table with one column of every supported kind.
func genStore(rng *rand.Rand, rows int) *vector.DSMStore {
	st := vector.NewDSMStore(vector.NewSchema(
		"id", vector.I64,
		"val", vector.F64,
		"tag", vector.Str,
	))
	tags := []string{"alpha", "beta", "gamma", "", "δelta"}
	for i := 0; i < rows; i++ {
		st.AppendRow(
			vector.I64Value(int64(i)*3-rng.Int63n(7)),
			vector.F64Value(rng.NormFloat64()*1e6),
			vector.StrValue(tags[rng.Intn(len(tags))]),
		)
	}
	return st
}

// assertSame compares every cell of two stores.
func assertSame(t *testing.T, want, got vector.Store) {
	t.Helper()
	if got.Rows() != want.Rows() {
		t.Fatalf("rows %d vs %d", got.Rows(), want.Rows())
	}
	sch := want.Schema()
	n := want.Rows()
	cols := make([]int, len(sch.Names))
	wbufs := make([]*vector.Vector, len(cols))
	gbufs := make([]*vector.Vector, len(cols))
	for i := range cols {
		cols[i] = i
		wbufs[i] = vector.NewLen(sch.Kinds[i], n)
		gbufs[i] = vector.NewLen(sch.Kinds[i], n)
	}
	want.Scan(0, n, cols, wbufs)
	got.Scan(0, n, cols, gbufs)
	for c := range cols {
		for r := 0; r < n; r++ {
			wv, gv := wbufs[c].Get(r), gbufs[c].Get(r)
			if !wv.Equal(gv) {
				t.Fatalf("col %s row %d: %v vs %v", sch.Names[c], r, gv, wv)
			}
		}
	}
}

func TestWriteOpenRoundTrip(t *testing.T) {
	for _, rows := range []int{0, 1, 100, 5000} {
		rng := rand.New(rand.NewSource(int64(rows)))
		want := genStore(rng, rows)
		dir := t.TempDir()
		if err := Write(dir, want, WriteOptions{SegmentRows: 512}); err != nil {
			t.Fatal(err)
		}
		got, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		assertSame(t, want, got)
		if rows > 0 {
			if got.Segments() != (rows+511)/512 {
				t.Fatalf("segments = %d", got.Segments())
			}
			if got.ColumnBytes("id") <= 0 || got.ColumnBytes("nope") != 0 {
				t.Fatalf("column bytes: id=%d nope=%d", got.ColumnBytes("id"), got.ColumnBytes("nope"))
			}
		}
		if got.SegmentRows() != 512 {
			t.Fatalf("segment rows = %d", got.SegmentRows())
		}
		if err := got.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestChunkedScanMatchesBulk: arbitrary chunked windows (the engine's access
// pattern, including windows crossing segment boundaries) must equal a bulk
// scan byte for byte.
func TestChunkedScanMatchesBulk(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	want := genStore(rng, 3000)
	dir := t.TempDir()
	if err := Write(dir, want, WriteOptions{SegmentRows: 700}); err != nil {
		t.Fatal(err)
	}
	tb, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	sch := want.Schema()
	for trial := 0; trial < 200; trial++ {
		lo := rng.Intn(3000)
		n := 1 + rng.Intn(1200)
		cols := []int{rng.Intn(3)}
		kind := sch.Kinds[cols[0]]
		gbuf := []*vector.Vector{vector.NewLen(kind, n)}
		wbuf := []*vector.Vector{vector.NewLen(kind, n)}
		gn := tb.Scan(lo, n, cols, gbuf)
		wn := want.Scan(lo, n, cols, wbuf)
		if gn != wn {
			t.Fatalf("scan(%d,%d) = %d rows, want %d", lo, n, gn, wn)
		}
		for r := 0; r < gn; r++ {
			if !gbuf[0].Get(r).Equal(wbuf[0].Get(r)) {
				t.Fatalf("scan(%d,%d) col %d row %d differs", lo, n, cols[0], r)
			}
		}
	}
}

func TestWriteRejectsUnsupported(t *testing.T) {
	bad := vector.NewDSMStore(vector.NewSchema("flags", vector.Bool))
	if err := Write(t.TempDir(), bad, WriteOptions{}); err == nil {
		t.Fatal("bool column accepted")
	}
	weird := vector.NewDSMStore(vector.NewSchema("a/b", vector.I64))
	if err := Write(t.TempDir(), weird, WriteOptions{}); err == nil {
		t.Fatal("path-hostile column name accepted")
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	want := genStore(rng, 400)
	dir := t.TempDir()
	if err := Write(dir, want, WriteOptions{SegmentRows: 128}); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(t.TempDir()); err == nil {
		t.Fatal("empty dir accepted")
	}
	check := func(name string, mutate func(path string) error) {
		t.Helper()
		tmp := t.TempDir()
		for _, f := range []string{"manifest.json", "id.col", "val.col", "tag.col"} {
			data, err := os.ReadFile(filepath.Join(dir, f))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(tmp, f), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if err := mutate(tmp); err != nil {
			t.Fatal(err)
		}
		tb, err := Open(tmp)
		if err == nil {
			tb.Close()
			t.Fatalf("%s: corruption accepted", name)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
	check("garbage manifest", func(d string) error {
		return os.WriteFile(filepath.Join(d, "manifest.json"), []byte("{"), 0o644)
	})
	check("bad magic", func(d string) error {
		p := filepath.Join(d, "id.col")
		data, _ := os.ReadFile(p)
		copy(data, "XXXXXXXX")
		return os.WriteFile(p, data, 0o644)
	})
	check("truncated footer", func(d string) error {
		p := filepath.Join(d, "id.col")
		data, _ := os.ReadFile(p)
		return os.WriteFile(p, data[:len(data)-20], 0o644)
	})
	check("footer offset out of range", func(d string) error {
		p := filepath.Join(d, "id.col")
		data, _ := os.ReadFile(p)
		for i := len(data) - 16; i < len(data)-8; i++ {
			data[i] = 0xff
		}
		return os.WriteFile(p, data, 0o644)
	})
	check("manifest row mismatch", func(d string) error {
		return writeFileAtomic(filepath.Join(d, "manifest.json"),
			[]byte(`{"version":1,"rows":401,"segment_rows":128,"columns":[{"name":"id","kind":"i64"},{"name":"val","kind":"f64"},{"name":"tag","kind":"str"}]}`))
	})
}

// TestPrunedZoneSkipping: a range predicate over a sorted column must skip
// exactly the segments whose zones miss the interval, while the surviving
// rows stay byte-identical to an unpruned scan.
func TestPrunedZoneSkipping(t *testing.T) {
	st := vector.NewDSMStore(vector.NewSchema("d", vector.I64, "x", vector.F64))
	const rows, segRows = 4096, 256
	for i := 0; i < rows; i++ {
		st.AppendRow(vector.I64Value(int64(i)), vector.F64Value(float64(i)/10))
	}
	dir := t.TempDir()
	if err := Write(dir, st, WriteOptions{SegmentRows: segRows}); err != nil {
		t.Fatal(err)
	}
	tb, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	// d ∈ [1000, 1500): segments 0..2 end below 1000, segment 1000/256=3
	// straddles, 1500/256=5 straddles, 6+ start above.
	pv := tb.Pruned([]Pred{{Col: "d", HasLo: true, LoI: 1000, HasHi: true, HiI: 1500, HiOpen: true}})
	wantSkip := 0
	for si := 0; si < tb.Segments(); si++ {
		zlo, zhi := int64(si*segRows), int64((si+1)*segRows-1)
		excluded := zhi < 1000 || zlo >= 1500
		if excluded {
			wantSkip++
		}
		if pv.skip[si] != excluded {
			t.Fatalf("segment %d: skip=%v, want %v", si, pv.skip[si], excluded)
		}
	}
	if wantSkip == 0 {
		t.Fatal("test geometry produced no skippable segments")
	}

	// Drive SkipRange the way a chunked scan does and re-read the survivors.
	var kept []int64
	buf := []*vector.Vector{vector.NewLen(vector.I64, 128)}
	for lo := 0; lo < rows; lo += 128 {
		if pv.SkipRange(lo, lo+128) {
			continue
		}
		n := pv.Scan(lo, 128, []int{0}, buf)
		kept = append(kept, buf[0].I64()[:n]...)
	}
	// Every value in [1000,1500) must survive pruning.
	seen := map[int64]bool{}
	for _, v := range kept {
		seen[v] = true
	}
	for v := int64(1000); v < 1500; v++ {
		if !seen[v] {
			t.Fatalf("pruning lost value %d", v)
		}
	}
	scanned, skipped := pv.Stats()
	if int(skipped) != wantSkip || int(scanned) != tb.Segments()-wantSkip {
		t.Fatalf("stats scanned=%d skipped=%d, want %d/%d",
			scanned, skipped, tb.Segments()-wantSkip, wantSkip)
	}

	// Float predicate on x ∈ [380.0, ∞): same skipping logic over F64 zones.
	pf := tb.Pruned([]Pred{{Col: "x", Float: true, HasLo: true, LoF: 380.0}})
	if pf.skip[0] != true || pf.skip[tb.Segments()-1] != false {
		t.Fatalf("float pruning: first=%v last=%v", pf.skip[0], pf.skip[tb.Segments()-1])
	}
	// Predicates on unknown or string columns are ignored, never skip.
	pn := tb.Pruned([]Pred{{Col: "nope", HasLo: true, LoI: 1}})
	for si, s := range pn.skip {
		if s {
			t.Fatalf("unknown-column predicate skipped segment %d", si)
		}
	}
}

// TestPrunedEncodedDomainSkipping: a dictionary/RLE segment whose zone
// overlaps the interval but whose actual value domain misses it entirely is
// still skipped — the predicate is evaluated on the encoded domain.
func TestPrunedEncodedDomainSkipping(t *testing.T) {
	st := vector.NewDSMStore(vector.NewSchema("k", vector.I64))
	// Long runs of 0 and 100: zone [0,100] overlaps [40,60], but no actual
	// value falls inside. The run structure makes RLE win, exposing the
	// run-value domain to the encoded-domain check.
	for i := 0; i < 1024; i++ {
		st.AppendRow(vector.I64Value(int64(i / 128 % 2 * 100)))
	}
	dir := t.TempDir()
	if err := Write(dir, st, WriteOptions{SegmentRows: 256}); err != nil {
		t.Fatal(err)
	}
	tb, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	pv := tb.Pruned([]Pred{{Col: "k", HasLo: true, LoI: 40, HasHi: true, HiI: 60}})
	for si := 0; si < tb.Segments(); si++ {
		if !pv.skip[si] {
			t.Fatalf("segment %d not skipped by encoded-domain check", si)
		}
	}
	// A satisfiable interval keeps every segment.
	pk := tb.Pruned([]Pred{{Col: "k", HasLo: true, LoI: 90, HasHi: true, HiI: 110}})
	for si := 0; si < tb.Segments(); si++ {
		if pk.skip[si] {
			t.Fatalf("segment %d wrongly skipped", si)
		}
	}
}

func TestPredIntervalSemantics(t *testing.T) {
	p := Pred{HasLo: true, LoI: 10, LoOpen: true, HasHi: true, HiI: 20}
	for v, want := range map[int64]bool{9: false, 10: false, 11: true, 20: true, 21: false} {
		if p.acceptsI(v) != want {
			t.Fatalf("acceptsI(%d) = %v", v, !want)
		}
	}
	f := Pred{Float: true, HasHi: true, HiF: 1.5, HiOpen: true}
	if f.acceptsF(1.5) || !f.acceptsF(1.4999) || f.acceptsF(math.NaN()) {
		t.Fatal("acceptsF boundary handling")
	}
}
