package colstore

import (
	"math"
	"sync/atomic"

	"repro/internal/compress"
	"repro/internal/vector"
)

// Pred is a conjunctive interval constraint on one column, implied by a
// pushed-down filter: every row that filter passes has the column's value
// inside the interval. Pruning may therefore drop any segment whose value
// domain misses the interval entirely — the still-executed filter would have
// dropped every one of its rows anyway, which is what keeps pruned and
// unpruned scans byte-identical.
type Pred struct {
	Col   string
	Float bool // bounds are float64 (F64 column); else int64

	HasLo, HasHi   bool
	LoOpen, HiOpen bool // strict (<, >) rather than inclusive bound
	LoI, HiI       int64
	LoF, HiF       float64
}

// acceptsI reports whether an int64 value lies inside the interval.
func (p Pred) acceptsI(v int64) bool {
	if p.HasLo && (v < p.LoI || (p.LoOpen && v == p.LoI)) {
		return false
	}
	if p.HasHi && (v > p.HiI || (p.HiOpen && v == p.HiI)) {
		return false
	}
	return true
}

// acceptsF reports whether a float64 value lies inside the interval.
func (p Pred) acceptsF(v float64) bool {
	if v != v {
		return false // NaN satisfies no comparison the DSL can express
	}
	if p.HasLo && (v < p.LoF || (p.LoOpen && v == p.LoF)) {
		return false
	}
	if p.HasHi && (v > p.HiF || (p.HiOpen && v == p.HiF)) {
		return false
	}
	return true
}

// zoneExcludes reports whether a segment's [min,max] zone lies entirely
// outside the interval, so no contained value can satisfy it.
func (p Pred) zoneExcludes(kind vector.Kind, min, max int64) bool {
	if p.Float {
		if kind != vector.F64 {
			return false
		}
		mn, mx := math.Float64frombits(uint64(min)), math.Float64frombits(uint64(max))
		if mn != mn || mx != mx {
			return false
		}
		if p.HasLo && (mx < p.LoF || (p.LoOpen && mx == p.LoF)) {
			return true
		}
		if p.HasHi && (mn > p.HiF || (p.HiOpen && mn == p.HiF)) {
			return true
		}
		return false
	}
	if kind != vector.I64 {
		return false
	}
	if p.HasLo && (max < p.LoI || (p.LoOpen && max == p.LoI)) {
		return true
	}
	if p.HasHi && (min > p.HiI || (p.HiOpen && min == p.HiI)) {
		return true
	}
	return false
}

// PrunedTable is a read view of a Table with a fixed set of skippable
// segments, computed once from predicates. It implements vector.Store plus
// the engine's RangeSkipper contract (SkipRange), and counts the segments a
// query actually skipped versus scanned.
type PrunedTable struct {
	t    *Table
	skip []bool

	skippedMark []atomic.Bool
	scannedMark []atomic.Bool
	skipped     atomic.Int64
	scanned     atomic.Int64
}

// Pruned builds a pruned view from predicate intervals. Skippability per
// segment is decided in two tiers: first the footer zone maps (no data
// touched), then — for surviving segments whose encoding exposes its value
// domain (dictionary or run-length) — the predicate is evaluated directly on
// the encoded domain, and the segment is skipped when no domain value
// satisfies it. Everything else falls back to decode-then-filter at scan
// time. Unknown columns and kinds a predicate cannot apply to are ignored.
func (t *Table) Pruned(preds []Pred) *PrunedTable {
	v := &PrunedTable{
		t:           t,
		skip:        make([]bool, t.Segments()),
		skippedMark: make([]atomic.Bool, t.Segments()),
		scannedMark: make([]atomic.Bool, t.Segments()),
	}
	for _, p := range preds {
		ci := t.schema.ColumnIndex(p.Col)
		if ci < 0 {
			continue
		}
		kind := t.schema.Kinds[ci]
		if kind == vector.Str {
			continue
		}
		col := t.cols[ci]
		for si, s := range col.segs {
			if v.skip[si] {
				continue
			}
			if p.zoneExcludes(kind, s.min, s.max) {
				v.skip[si] = true
				continue
			}
			if domain := v.segmentDomain(col, si); domain != nil {
				any := false
				for _, dv := range domain {
					if p.Float {
						any = p.acceptsF(math.Float64frombits(uint64(dv)))
					} else {
						any = p.acceptsI(dv)
					}
					if any {
						break
					}
				}
				if !any {
					v.skip[si] = true
				}
			}
		}
	}
	return v
}

// segmentDomain returns the encoded value domain of a Dict or RLE segment
// (nil for other encodings or on parse failure — pruning never fails a
// query, it just declines to skip).
func (v *PrunedTable) segmentDomain(col *column, si int) []int64 {
	switch compress.Scheme(col.segs[si].scheme) {
	case compress.Dict, compress.RLE: // the encodings with cheap domains
	default:
		return nil
	}
	h, err := col.segment(si)
	if err != nil {
		return nil
	}
	if d := h.block.DictValues(); d != nil {
		return d
	}
	return h.block.RunValues()
}

// Schema implements vector.Store.
func (v *PrunedTable) Schema() vector.Schema { return v.t.Schema() }

// Rows implements vector.Store.
func (v *PrunedTable) Rows() int { return v.t.Rows() }

// Scan implements vector.Store by delegating to the base table; pruning only
// ever answers SkipRange, so a caller that ignores SkipRange reads exactly
// the unpruned bytes.
func (v *PrunedTable) Scan(lo, n int, cols []int, dst []*vector.Vector) int {
	return v.t.Scan(lo, n, cols, dst)
}

// Base returns the underlying table (for identity and costing).
func (v *PrunedTable) Base() *Table { return v.t }

// ColumnBytes delegates placement costing to the base table.
func (v *PrunedTable) ColumnBytes(name string) int64 { return v.t.ColumnBytes(name) }

// DistinctEstimate delegates to the base table's zone maps.
func (v *PrunedTable) DistinctEstimate(col string) int { return v.t.DistinctEstimate(col) }

// SkipRange reports whether rows [lo, hi) fall entirely inside skippable
// segments, counting each segment the first time it is skipped or scanned.
func (v *PrunedTable) SkipRange(lo, hi int) bool {
	if lo >= hi {
		return false
	}
	first, last := lo/v.t.segRows, (hi-1)/v.t.segRows
	if last >= len(v.skip) {
		last = len(v.skip) - 1
	}
	for si := first; si <= last; si++ {
		if !v.skip[si] {
			for sj := first; sj <= last; sj++ {
				if !v.scannedMark[sj].Swap(true) {
					v.scanned.Add(1)
				}
			}
			return false
		}
	}
	for si := first; si <= last; si++ {
		if !v.skippedMark[si].Swap(true) {
			v.skipped.Add(1)
		}
	}
	return true
}

// Stats returns how many distinct segments this view skipped and scanned.
func (v *PrunedTable) Stats() (scanned, skipped int64) {
	return v.scanned.Load(), v.skipped.Load()
}
