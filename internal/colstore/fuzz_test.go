package colstore

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/vector"
)

// FuzzTableRoundTrip drives the full write → map → decode cycle from raw
// bytes: the input seeds the table contents and one corrupting mutation.
// Properties: (1) a freshly written table reads back byte-identical;
// (2) after flipping an arbitrary byte of an arbitrary column file, open +
// scan either succeed or fail with ErrCorrupt — never a panic.
func FuzzTableRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint16(64), uint32(12), byte(0xff))
	f.Add([]byte("run run run run run run run run"), uint16(3), uint32(0), byte(0))
	f.Add(make([]byte, 512), uint16(16), uint32(99), byte(7))
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef}, uint16(1), uint32(8), byte(1))

	f.Fuzz(func(t *testing.T, raw []byte, segRows uint16, mutPos uint32, mutXor byte) {
		if len(raw) == 0 || len(raw) > 1<<16 {
			return
		}
		// Interpret the raw bytes as rows of a three-kind table.
		st := vector.NewDSMStore(vector.NewSchema(
			"i", vector.I64, "f", vector.F64, "s", vector.Str,
		))
		tags := []string{"x", "yy", "", "zzz"}
		for pos := 0; pos < len(raw); pos += 8 {
			var word [8]byte
			copy(word[:], raw[pos:])
			v := int64(binary.LittleEndian.Uint64(word[:]))
			st.AppendRow(
				vector.I64Value(v),
				vector.F64Value(float64(v)/3),
				vector.StrValue(tags[int(uint8(word[0]))%len(tags)]),
			)
		}
		dir := t.TempDir()
		if err := Write(dir, st, WriteOptions{SegmentRows: int(segRows%512) + 1}); err != nil {
			t.Fatal(err)
		}
		tb, err := Open(dir)
		if err != nil {
			t.Fatalf("open freshly written table: %v", err)
		}
		sch := st.Schema()
		n := st.Rows()
		cols := []int{0, 1, 2}
		mk := func() []*vector.Vector {
			out := make([]*vector.Vector, len(cols))
			for i, ci := range cols {
				out[i] = vector.NewLen(sch.Kinds[ci], n)
			}
			return out
		}
		want, got := mk(), mk()
		st.Scan(0, n, cols, want)
		if gn, err := tb.ScanChecked(0, n, cols, got); err != nil || gn != n {
			t.Fatalf("scan fresh table: %d rows, %v", gn, err)
		}
		for c := range cols {
			for r := 0; r < n; r++ {
				if !want[c].Get(r).Equal(got[c].Get(r)) {
					t.Fatalf("col %d row %d: %v vs %v", c, r, got[c].Get(r), want[c].Get(r))
				}
			}
		}
		tb.Close()

		// Corrupt one byte of one column file; any outcome but a panic or a
		// non-typed decode error is acceptable.
		files := []string{"i.col", "f.col", "s.col"}
		path := filepath.Join(dir, files[int(mutPos)%len(files)])
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 || mutXor == 0 {
			return
		}
		data[int(mutPos)%len(data)] ^= mutXor
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		tb, err = Open(dir)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("open corrupted: %v (not ErrCorrupt)", err)
			}
			return
		}
		defer tb.Close()
		if _, err := tb.ScanChecked(0, n, cols, got); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("scan corrupted: %v (not ErrCorrupt)", err)
		}
	})
}
