//go:build !linux

package colstore

import "os"

// mapFile reads the whole file on platforms without the mmap fast path; the
// reader's lazy per-segment decode works identically either way.
func mapFile(path string) ([]byte, func() error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
