package colstore

import (
	"encoding/binary"
	"fmt"
	"math"
	"path/filepath"
	"sync/atomic"

	"repro/internal/compress"
	"repro/internal/vector"
)

// Table is an opened colstore table. It implements vector.Store, decoding
// lazily one segment at a time: the first touch of a segment parses its
// compress.Block (and, for strings, its local dictionary) out of the mapped
// file and caches the parsed form — roughly the compressed footprint, never
// the decoded column — so chunked scans pay one parse per segment and then
// cheap range decodes per chunk.
type Table struct {
	dir     string
	schema  vector.Schema
	rows    int
	segRows int
	cols    []*column
}

// column is one opened column file.
type column struct {
	kind  vector.Kind
	data  []byte // whole file, mapped or read
	unmap func() error
	segs  []segMeta
	// cache[i] holds segment i's parsed form once first touched.
	cache []atomic.Pointer[segHandle]
}

// segHandle is the parsed (still compressed) form of one segment.
type segHandle struct {
	block *compress.Block
	dict  []string // string columns: local dictionary the block's codes index
}

// Open opens a colstore table directory for reading.
func Open(dir string) (*Table, error) {
	m, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	t := &Table{dir: dir, rows: m.Rows, segRows: m.SegmentRows}
	for _, mc := range m.Columns {
		kind, err := kindFromName(mc.Kind)
		if err != nil {
			t.Close()
			return nil, err
		}
		col, err := openColumn(columnFile(dir, mc.Name), kind, m)
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("column %q: %w", mc.Name, err)
		}
		t.schema.Names = append(t.schema.Names, mc.Name)
		t.schema.Kinds = append(t.schema.Kinds, kind)
		t.cols = append(t.cols, col)
	}
	return t, nil
}

// openColumn maps one column file and parses its footer against the
// manifest's row geometry.
func openColumn(path string, kind vector.Kind, m *manifest) (*column, error) {
	data, unmap, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	col := &column{kind: kind, data: data, unmap: unmap}
	fail := func(format string, args ...any) (*column, error) {
		col.close()
		return nil, fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
	}
	if len(data) < 2*len(magic)+8+4 {
		return fail("file too short (%d bytes)", len(data))
	}
	if string(data[:len(magic)]) != magic || string(data[len(data)-len(magic):]) != magic {
		return fail("bad magic")
	}
	footerOff := binary.LittleEndian.Uint64(data[len(data)-len(magic)-8:])
	footerEnd := uint64(len(data) - len(magic) - 8)
	if footerOff < uint64(len(magic)) || footerOff > footerEnd-4 {
		return fail("footer offset %d out of range", footerOff)
	}
	nsegs := binary.LittleEndian.Uint32(data[footerOff:])
	if uint64(nsegs)*segMetaBytes != footerEnd-footerOff-4 {
		return fail("footer holds %d segments in %d bytes", nsegs, footerEnd-footerOff-4)
	}
	pos := footerOff + 4
	rows := 0
	for i := uint32(0); i < nsegs; i++ {
		var s segMeta
		s.rows = int(binary.LittleEndian.Uint32(data[pos:]))
		s.off = binary.LittleEndian.Uint64(data[pos+4:])
		s.len = binary.LittleEndian.Uint64(data[pos+12:])
		s.scheme = data[pos+20]
		s.min = int64(binary.LittleEndian.Uint64(data[pos+21:]))
		s.max = int64(binary.LittleEndian.Uint64(data[pos+29:]))
		s.nulls = binary.LittleEndian.Uint32(data[pos+37:])
		s.distinct = binary.LittleEndian.Uint32(data[pos+41:])
		pos += segMetaBytes
		if s.off < uint64(len(magic)) || s.len > footerOff || s.off > footerOff-s.len {
			return fail("segment %d spans [%d,+%d) outside data region", i, s.off, s.len)
		}
		if s.rows <= 0 || s.rows > m.SegmentRows {
			return fail("segment %d has %d rows (segment_rows %d)", i, s.rows, m.SegmentRows)
		}
		if i+1 < nsegs && s.rows != m.SegmentRows {
			return fail("non-final segment %d has %d rows", i, s.rows)
		}
		rows += s.rows
		col.segs = append(col.segs, s)
	}
	if rows != m.Rows {
		return fail("segments hold %d rows, manifest says %d", rows, m.Rows)
	}
	col.cache = make([]atomic.Pointer[segHandle], len(col.segs))
	return col, nil
}

func (c *column) close() {
	if c.unmap != nil {
		c.unmap()
		c.unmap = nil
	}
	c.data = nil
}

// DiskBytes returns the encoded size of the column file, footer included.
func (c *column) diskBytes() int64 { return int64(len(c.data)) }

// segment returns segment i's parsed handle, decoding it on first touch.
// Concurrent first touches may both parse; the duplicate is discarded.
func (c *column) segment(i int) (*segHandle, error) {
	if h := c.cache[i].Load(); h != nil {
		return h, nil
	}
	s := c.segs[i]
	payload := c.data[s.off : s.off+s.len]
	h := &segHandle{}
	if c.kind == vector.Str {
		if len(payload) < 4 {
			return nil, fmt.Errorf("%w: segment %d dictionary truncated", ErrCorrupt, i)
		}
		nd := int(binary.LittleEndian.Uint32(payload))
		if nd > len(payload) {
			return nil, fmt.Errorf("%w: segment %d dictionary count %d", ErrCorrupt, i, nd)
		}
		pos := 4
		for j := 0; j < nd; j++ {
			l, n := binary.Uvarint(payload[pos:])
			if n <= 0 || uint64(pos+n)+l > uint64(len(payload)) {
				return nil, fmt.Errorf("%w: segment %d dictionary truncated", ErrCorrupt, i)
			}
			pos += n
			h.dict = append(h.dict, string(payload[pos:pos+int(l)]))
			pos += int(l)
		}
		payload = payload[pos:]
	}
	b, used, err := compress.DecodeBlock(payload)
	if err != nil {
		return nil, fmt.Errorf("%w: segment %d: %v", ErrCorrupt, i, err)
	}
	if used != len(payload) || b.Len() != s.rows {
		return nil, fmt.Errorf("%w: segment %d decodes %d rows in %d of %d bytes",
			ErrCorrupt, i, b.Len(), used, len(payload))
	}
	if c.kind == vector.Str {
		for _, v := range b.RunValues() {
			if v < 0 || v >= int64(len(h.dict)) {
				return nil, fmt.Errorf("%w: segment %d code %d outside dictionary", ErrCorrupt, i, v)
			}
		}
	}
	h.block = b
	c.cache[i].Store(h)
	return h, nil
}

// Schema implements vector.Store.
func (t *Table) Schema() vector.Schema { return t.schema }

// Rows implements vector.Store.
func (t *Table) Rows() int { return t.rows }

// SegmentRows returns the table's segment height.
func (t *Table) SegmentRows() int { return t.segRows }

// Segments returns the number of segments per column.
func (t *Table) Segments() int {
	if t.rows == 0 {
		return 0
	}
	return (t.rows + t.segRows - 1) / t.segRows
}

// ColumnBytes returns the on-disk encoded size of the named column, or 0 if
// absent. Placement costing uses this to see real bytes-moved per column.
func (t *Table) ColumnBytes(name string) int64 {
	i := t.schema.ColumnIndex(name)
	if i < 0 {
		return 0
	}
	return t.cols[i].diskBytes()
}

// DistinctEstimate returns the largest per-segment distinct-value estimate
// recorded in the named column's zone maps, or 0 when the column is absent
// or carries no estimates. It deliberately reports the per-segment maximum,
// not a table-wide union: consumers (the engine's parallel aggregation)
// size per-morsel structures, and a morsel never spans more than a segment's
// worth of distinct values per column.
func (t *Table) DistinctEstimate(col string) int {
	i := t.schema.ColumnIndex(col)
	if i < 0 {
		return 0
	}
	est := 0
	for _, s := range t.cols[i].segs {
		if d := int(s.distinct); d > est {
			est = d
		}
	}
	return est
}

// Dir returns the directory the table was opened from.
func (t *Table) Dir() string { return filepath.Clean(t.dir) }

// Close releases the table's mappings. The table must not be scanned after.
func (t *Table) Close() error {
	for _, c := range t.cols {
		c.close()
	}
	return nil
}

// Scan implements vector.Store by decoding the requested row window out of
// each touched segment. A scan error (corrupt segment discovered lazily)
// panics, matching how in-RAM stores treat impossible states; Open validates
// geometry upfront so this only triggers on data-region corruption. Callers
// that cannot trust the data region (fuzzing, recovery) use ScanChecked.
func (t *Table) Scan(lo, n int, cols []int, dst []*vector.Vector) int {
	got, err := t.ScanChecked(lo, n, cols, dst)
	if err != nil {
		panic(fmt.Sprintf("colstore: %v", err))
	}
	return got
}

// ScanChecked is Scan with lazily discovered corruption surfaced as an
// ErrCorrupt-wrapped error instead of a panic.
func (t *Table) ScanChecked(lo, n int, cols []int, dst []*vector.Vector) (int, error) {
	if lo >= t.rows {
		return 0, nil
	}
	if lo+n > t.rows {
		n = t.rows - lo
	}
	for k, ci := range cols {
		dst[k].SetLen(n)
		if err := t.scanColumn(ci, lo, n, dst[k]); err != nil {
			return 0, err
		}
	}
	return n, nil
}

// scanColumn fills dst with rows [lo, lo+n) of column ci.
func (t *Table) scanColumn(ci, lo, n int, dst *vector.Vector) error {
	c := t.cols[ci]
	filled := 0
	for filled < n {
		row := lo + filled
		si := row / t.segRows
		from := row - si*t.segRows
		take := t.segRows - from
		if take > n-filled {
			take = n - filled
		}
		h, err := c.segment(si)
		if err != nil {
			return err
		}
		switch c.kind {
		case vector.I64:
			if got := h.block.DecompressRange(dst.I64()[filled:filled+take], from, take); got != take {
				return fmt.Errorf("%w: segment %d range decode %d/%d", ErrCorrupt, si, got, take)
			}
		case vector.F64:
			out := dst.F64()[filled : filled+take]
			tmp := make([]int64, take)
			if got := h.block.DecompressRange(tmp, from, take); got != take {
				return fmt.Errorf("%w: segment %d range decode %d/%d", ErrCorrupt, si, got, take)
			}
			for i, v := range tmp {
				out[i] = math.Float64frombits(uint64(v))
			}
		case vector.Str:
			out := dst.Str()[filled : filled+take]
			tmp := make([]int64, take)
			if got := h.block.DecompressRange(tmp, from, take); got != take {
				return fmt.Errorf("%w: segment %d range decode %d/%d", ErrCorrupt, si, got, take)
			}
			for i, code := range tmp {
				if code < 0 || code >= int64(len(h.dict)) {
					return fmt.Errorf("%w: segment %d code %d outside dictionary", ErrCorrupt, si, code)
				}
				out[i] = h.dict[code]
			}
		}
		filled += take
	}
	return nil
}
