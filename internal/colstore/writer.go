package colstore

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/compress"
	"repro/internal/vector"
)

// WriteOptions configure table layout.
type WriteOptions struct {
	// SegmentRows is the fixed row count per segment (last segment may be
	// short). Zero selects DefaultSegmentRows.
	SegmentRows int
}

// Write persists a table into dir (created if needed), one file per column
// plus a manifest written last, all via atomic renames. Columns are encoded
// in parallel — each worker runs the adaptive scheme chooser on its own
// segments, which is exactly the concurrent use the chooser must survive.
func Write(dir string, st vector.Store, opts WriteOptions) error {
	segRows := opts.SegmentRows
	if segRows <= 0 {
		segRows = DefaultSegmentRows
	}
	sch := st.Schema()
	for i, name := range sch.Names {
		if !validColumnName(name) {
			return fmt.Errorf("colstore: column name %q not writable", name)
		}
		if _, ok := kindNames[sch.Kinds[i]]; !ok {
			return fmt.Errorf("colstore: column %q has unsupported kind %v", name, sch.Kinds[i])
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	var wg sync.WaitGroup
	errs := make([]error, len(sch.Names))
	for ci := range sch.Names {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			errs[ci] = writeColumn(dir, st, ci, segRows)
		}(ci)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	m := manifest{Version: 1, Rows: st.Rows(), SegmentRows: segRows}
	for i, name := range sch.Names {
		m.Columns = append(m.Columns, manifestCol{Name: name, Kind: kindNames[sch.Kinds[i]]})
	}
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(dir, manifestName), data)
}

// writeColumn encodes one column into its segment file.
func writeColumn(dir string, st vector.Store, ci, segRows int) error {
	sch := st.Schema()
	kind := sch.Kinds[ci]
	rows := st.Rows()

	buf := []byte(magic)
	var metas []segMeta
	vals := make([]int64, segRows)
	vec := vector.NewLen(kind, segRows)
	for lo := 0; lo < rows; lo += segRows {
		n := segRows
		if lo+n > rows {
			n = rows - lo
		}
		vec.SetLen(n)
		if got := st.Scan(lo, n, []int{ci}, []*vector.Vector{vec}); got != n {
			return fmt.Errorf("colstore: scan of %q returned %d rows, want %d", sch.Names[ci], got, n)
		}
		meta := segMeta{rows: n, off: uint64(len(buf))}
		var err error
		switch kind {
		case vector.I64:
			buf, meta, err = appendI64Segment(buf, meta, vec.I64()[:n], vals)
		case vector.F64:
			iv := vals[:n]
			for i, f := range vec.F64()[:n] {
				iv[i] = int64(math.Float64bits(f))
			}
			buf, meta, err = appendF64Segment(buf, meta, iv, vec.F64()[:n])
		case vector.Str:
			buf, meta, err = appendStrSegment(buf, meta, vec.Str()[:n], vals)
		}
		if err != nil {
			return fmt.Errorf("colstore: column %q: %w", sch.Names[ci], err)
		}
		meta.len = uint64(len(buf)) - meta.off
		metas = append(metas, meta)
	}

	// Footer + trailer.
	footerOff := uint64(len(buf))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(metas)))
	for _, m := range metas {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(m.rows))
		buf = binary.LittleEndian.AppendUint64(buf, m.off)
		buf = binary.LittleEndian.AppendUint64(buf, m.len)
		buf = append(buf, m.scheme)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(m.min))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(m.max))
		buf = binary.LittleEndian.AppendUint32(buf, m.nulls)
		buf = binary.LittleEndian.AppendUint32(buf, m.distinct)
	}
	buf = binary.LittleEndian.AppendUint64(buf, footerOff)
	buf = append(buf, magic...)
	return writeFileAtomic(columnFile(dir, sch.Names[ci]), buf)
}

// appendI64Segment encodes one int64 segment: analyze → compress → append,
// recording the zone map off the encoded block.
func appendI64Segment(buf []byte, meta segMeta, data, _ []int64) ([]byte, segMeta, error) {
	b, err := compress.Compress(data, compress.Analyze(data))
	if err != nil {
		return nil, meta, err
	}
	buf = compress.AppendBlock(buf, b)
	meta.scheme = uint8(b.Scheme())
	if lo, hi, ok := b.MinMax(); ok {
		meta.min, meta.max = lo, hi
	}
	meta.distinct = distinctEstimate(b)
	return buf, meta, nil
}

// appendF64Segment encodes a float64 segment as the compress.Block of its
// bit images; the zone map stores the bit images of the true float min/max.
func appendF64Segment(buf []byte, meta segMeta, bits []int64, floats []float64) ([]byte, segMeta, error) {
	b, err := compress.Compress(bits, compress.Analyze(bits))
	if err != nil {
		return nil, meta, err
	}
	buf = compress.AppendBlock(buf, b)
	meta.scheme = uint8(b.Scheme())
	if len(floats) > 0 {
		mn, mx := floats[0], floats[0]
		for _, f := range floats[1:] {
			if f < mn {
				mn = f
			}
			if f > mx {
				mx = f
			}
		}
		meta.min = int64(math.Float64bits(mn))
		meta.max = int64(math.Float64bits(mx))
	}
	meta.distinct = distinctEstimate(b)
	return buf, meta, nil
}

// appendStrSegment dictionary-encodes a string segment locally: the segment
// dictionary in first-occurrence order, then the codes as a compressed
// int64 block. The zone map's distinct count is exact.
func appendStrSegment(buf []byte, meta segMeta, data []string, codes []int64) ([]byte, segMeta, error) {
	index := map[string]int64{}
	var dict []string
	for i, s := range data {
		code, ok := index[s]
		if !ok {
			code = int64(len(dict))
			index[s] = code
			dict = append(dict, s)
		}
		codes[i] = code
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(dict)))
	for _, s := range dict {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	b, err := compress.Compress(codes[:len(data)], compress.Analyze(codes[:len(data)]))
	if err != nil {
		return nil, meta, err
	}
	buf = compress.AppendBlock(buf, b)
	meta.scheme = uint8(b.Scheme())
	meta.distinct = uint32(len(dict))
	return buf, meta, nil
}

// distinctEstimate reads a cheap distinct bound off the encoded block,
// capped for the u32 footer field.
func distinctEstimate(b *compress.Block) uint32 {
	d := b.DistinctUpperBound()
	if d > math.MaxUint32 {
		d = math.MaxUint32
	}
	return uint32(d)
}
