// Package profile collects the runtime statistics the VM's optimizer feeds
// on (§III of the paper: "the VM collects profiling information (time spent
// in each operation, number of calls) to identify hot paths and potential
// targets for further optimization", plus observed selectivities and tuple
// counts used by the workload-specific optimizations of §III-C).
package profile

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Profile holds per-instruction counters, indexed by the normalizer-assigned
// instruction ID. All counters are updated with atomic operations so a
// background optimizer may read them while the interpreter runs.
type Profile struct {
	n      int
	calls  []atomic.Int64
	tuples []atomic.Int64
	nanos  []atomic.Int64
	selIn  []atomic.Int64
	selOut []atomic.Int64
}

// New creates a profile for a program with n instructions.
func New(n int) *Profile {
	return &Profile{
		n:      n,
		calls:  make([]atomic.Int64, n),
		tuples: make([]atomic.Int64, n),
		nanos:  make([]atomic.Int64, n),
		selIn:  make([]atomic.Int64, n),
		selOut: make([]atomic.Int64, n),
	}
}

// Len returns the number of instruction slots.
func (p *Profile) Len() int { return p.n }

// Record notes one execution of instruction id over tuples rows taking ns
// nanoseconds.
func (p *Profile) Record(id, tuples int, ns int64) {
	p.calls[id].Add(1)
	p.tuples[id].Add(int64(tuples))
	p.nanos[id].Add(ns)
}

// RecordSel notes a selection event: in rows entered, out rows survived.
func (p *Profile) RecordSel(id, in, out int) {
	p.selIn[id].Add(int64(in))
	p.selOut[id].Add(int64(out))
}

// Calls returns the number of executions of instruction id.
func (p *Profile) Calls(id int) int64 { return p.calls[id].Load() }

// Tuples returns the total rows processed by instruction id.
func (p *Profile) Tuples(id int) int64 { return p.tuples[id].Load() }

// Nanos returns the total time spent in instruction id.
func (p *Profile) Nanos(id int) int64 { return p.nanos[id].Load() }

// Selectivity returns the observed pass rate of a selection instruction in
// [0,1], or def when nothing was observed yet.
func (p *Profile) Selectivity(id int, def float64) float64 {
	in := p.selIn[id].Load()
	if in == 0 {
		return def
	}
	return float64(p.selOut[id].Load()) / float64(in)
}

// NanosPerTuple returns the average cost of instruction id per input row, or
// 0 when unobserved.
func (p *Profile) NanosPerTuple(id int) float64 {
	t := p.tuples[id].Load()
	if t == 0 {
		return 0
	}
	return float64(p.nanos[id].Load()) / float64(t)
}

// TotalNanos sums time across all instructions.
func (p *Profile) TotalNanos() int64 {
	var total int64
	for i := range p.nanos {
		total += p.nanos[i].Load()
	}
	return total
}

// HotRank returns instruction IDs sorted by total time, hottest first.
// Instructions that never ran are excluded.
func (p *Profile) HotRank() []int {
	ids := make([]int, 0, p.n)
	for i := 0; i < p.n; i++ {
		if p.nanos[i].Load() > 0 {
			ids = append(ids, i)
		}
	}
	sort.Slice(ids, func(a, b int) bool {
		return p.nanos[ids[a]].Load() > p.nanos[ids[b]].Load()
	})
	return ids
}

// Reset zeroes all counters (used when the workload shifts and history
// should stop dominating decisions).
func (p *Profile) Reset() {
	for i := 0; i < p.n; i++ {
		p.calls[i].Store(0)
		p.tuples[i].Store(0)
		p.nanos[i].Store(0)
		p.selIn[i].Store(0)
		p.selOut[i].Store(0)
	}
}

// String renders a compact per-instruction report.
func (p *Profile) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "profile (%d instrs, total %.3fms)\n", p.n, float64(p.TotalNanos())/1e6)
	for _, id := range p.HotRank() {
		fmt.Fprintf(&sb, "  instr %3d: calls=%-8d tuples=%-10d ns/tuple=%-8.2f",
			id, p.Calls(id), p.Tuples(id), p.NanosPerTuple(id))
		if in := p.selIn[id].Load(); in > 0 {
			fmt.Fprintf(&sb, " sel=%.4f", p.Selectivity(id, 1))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// EWMA is an exponentially weighted moving average used for drift-sensitive
// signals (observed selectivities, device costs). The zero value is unseeded.
type EWMA struct {
	v      float64
	alpha  float64
	seeded bool
}

// NewEWMA creates an EWMA with the given smoothing factor (0 < alpha ≤ 1;
// larger = more reactive).
func NewEWMA(alpha float64) *EWMA { return &EWMA{alpha: alpha} }

// Observe folds a new observation into the average.
func (e *EWMA) Observe(x float64) {
	if !e.seeded {
		e.v = x
		e.seeded = true
		return
	}
	e.v = e.alpha*x + (1-e.alpha)*e.v
}

// Value returns the current average, or def if nothing was observed.
func (e *EWMA) Value(def float64) float64 {
	if !e.seeded {
		return def
	}
	return e.v
}

// Seeded reports whether any observation has been made.
func (e *EWMA) Seeded() bool { return e.seeded }
