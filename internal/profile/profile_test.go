package profile

import (
	"strings"
	"sync"
	"testing"
)

func TestRecordAndQuery(t *testing.T) {
	p := New(3)
	p.Record(0, 1024, 5000)
	p.Record(0, 1024, 7000)
	p.Record(2, 512, 100000)
	if p.Calls(0) != 2 || p.Tuples(0) != 2048 || p.Nanos(0) != 12000 {
		t.Fatalf("counters wrong: %d %d %d", p.Calls(0), p.Tuples(0), p.Nanos(0))
	}
	if got := p.NanosPerTuple(0); got != 12000.0/2048 {
		t.Fatalf("ns/tuple = %v", got)
	}
	if p.NanosPerTuple(1) != 0 {
		t.Fatal("unobserved instruction must report 0")
	}
	if p.TotalNanos() != 112000 {
		t.Fatalf("total = %d", p.TotalNanos())
	}
	if p.Len() != 3 {
		t.Fatal("len")
	}
}

func TestHotRankOrdersByTime(t *testing.T) {
	p := New(4)
	p.Record(0, 1, 10)
	p.Record(1, 1, 1000)
	p.Record(3, 1, 100)
	hot := p.HotRank()
	if len(hot) != 3 || hot[0] != 1 || hot[1] != 3 || hot[2] != 0 {
		t.Fatalf("hot rank = %v", hot)
	}
}

func TestSelectivity(t *testing.T) {
	p := New(1)
	if p.Selectivity(0, 0.42) != 0.42 {
		t.Fatal("default before observation")
	}
	p.RecordSel(0, 1000, 10)
	if got := p.Selectivity(0, 1); got != 0.01 {
		t.Fatalf("selectivity = %v", got)
	}
}

func TestReset(t *testing.T) {
	p := New(2)
	p.Record(0, 10, 10)
	p.RecordSel(1, 10, 5)
	p.Reset()
	if p.Calls(0) != 0 || p.Selectivity(1, -1) != -1 {
		t.Fatal("reset incomplete")
	}
}

func TestStringRendering(t *testing.T) {
	p := New(2)
	p.Record(0, 100, 12345)
	p.RecordSel(0, 100, 50)
	s := p.String()
	if !strings.Contains(s, "instr") || !strings.Contains(s, "sel=") {
		t.Fatalf("render missing fields:\n%s", s)
	}
}

func TestConcurrentRecording(t *testing.T) {
	p := New(1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.Record(0, 1, 1)
			}
		}()
	}
	wg.Wait()
	if p.Calls(0) != 8000 || p.Nanos(0) != 8000 {
		t.Fatalf("lost updates: calls=%d nanos=%d", p.Calls(0), p.Nanos(0))
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Seeded() || e.Value(3.14) != 3.14 {
		t.Fatal("unseeded default")
	}
	e.Observe(10)
	if e.Value(0) != 10 {
		t.Fatal("first observation seeds")
	}
	e.Observe(0)
	if e.Value(0) != 5 {
		t.Fatalf("ewma = %v, want 5", e.Value(0))
	}
	// Converges toward a steady signal.
	for i := 0; i < 20; i++ {
		e.Observe(1)
	}
	if v := e.Value(0); v < 0.99 || v > 1.01 {
		t.Fatalf("ewma did not converge: %v", v)
	}
}
