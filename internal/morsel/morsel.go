// Package morsel implements morsel-driven parallelism ([15], listed by the
// paper as a transformation the DSL must support through dynamic loop
// boundaries): the input index space is split into small morsels claimed by
// workers on demand, so fast workers absorb the skew of slow morsels instead
// of waiting at a static partition barrier.
//
// Dispatch is work-stealing. The morsel index space is split once into W
// contiguous per-worker ranges; each worker owns a lock-free range deque (one
// packed atomic word) and pops its own morsels front-to-back, preserving
// locality and ascending order within the range. A worker whose deque runs
// dry steals the back half of a victim's remaining range and continues, so a
// region of expensive morsels (a skewed filter, an unpruned colstore stretch)
// is drained by every idle worker rather than serializing on its owner.
// Successful steals are counted per thief and surface through
// Stats.StealsPerWorker.
//
// Concurrency contract: Run's fn is called concurrently from Workers
// goroutines; the worker argument identifies the calling goroutine for
// worker-private state (0..Workers-1). Each morsel index is claimed exactly
// once — claims move between deques only through CAS transitions, so coverage
// is exact no matter how steals interleave. Nothing about *which* worker runs
// a morsel is deterministic; callers that need deterministic results must key
// their state by morsel sequence number (lo/MorselLen), never by worker — see
// the engine's Exchange and ParallelAgg for the pattern.
package morsel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultMorselLen balances dispatch overhead against skew absorption.
const DefaultMorselLen = 16384

// Options configure a parallel run.
type Options struct {
	// Workers is the worker count (0 = GOMAXPROCS).
	Workers int
	// MorselLen is the morsel size in rows (0 = DefaultMorselLen).
	MorselLen int
}

func (o Options) normalize() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MorselLen <= 0 {
		o.MorselLen = DefaultMorselLen
	}
	return o
}

// deque is one worker's remaining range of morsel indices, packed hi<<32|lo
// into a single atomic word so both pops and steals are one CAS. The range
// is half-open [lo, hi) and empty when lo >= hi. Morsel counts are bounded
// by the row count / 1, far below 2^32.
type deque struct {
	r atomic.Uint64
	_ [7]uint64 // pad to a cache line: deques sit in one slice
}

func pack(lo, hi int) uint64 { return uint64(hi)<<32 | uint64(uint32(lo)) }
func unpack(r uint64) (lo, hi int) {
	return int(uint32(r)), int(r >> 32)
}

// Run processes [0, n) with fn(worker, lo, hi) over work-stealing morsel
// dispatch. fn is called concurrently from Workers goroutines; worker
// identifies the calling worker for thread-local state. Every call receives
// at most MorselLen rows and lo is always a multiple of MorselLen, so
// lo/MorselLen is a dense morsel sequence number — the engine's exchange and
// aggregation operators key on it to keep results in table order.
func Run(n int, opt Options, fn func(worker, lo, hi int)) {
	runStealing(n, opt, fn, nil)
}

// runStealing is Run plus an optional per-thief steal counter slice sized
// Workers (nil when the caller does not track steals).
func runStealing(n int, opt Options, fn func(worker, lo, hi int), steals []int64) {
	opt = opt.normalize()
	if n <= 0 {
		return
	}
	morsels := (n + opt.MorselLen - 1) / opt.MorselLen
	if opt.Workers > morsels {
		// Clamp the fan-out to the work available: with more workers than
		// morsels the surplus workers would spend the whole run in the steal
		// loop with nothing claimable (a single-morsel range is unstealable),
		// burning CPU on Gosched spins that directly slow the workers that do
		// have work — the dominant parallel tax of tiny inputs. Worker IDs
		// stay dense in [0, morsels), and which goroutines run is invisible
		// to callers keyed by morsel sequence number.
		opt.Workers = morsels
	}
	if opt.Workers == 1 {
		// Sequential path. This used to hand the whole index space to fn as
		// one giant morsel, which silently broke the per-call contract above:
		// callers that bound work (cancellation checks, skew statistics,
		// sequence numbering) per morsel saw a single unbounded call.
		for lo := 0; lo < n; lo += opt.MorselLen {
			hi := lo + opt.MorselLen
			if hi > n {
				hi = n
			}
			fn(0, lo, hi)
		}
		return
	}

	W := opt.Workers
	deques := make([]deque, W)
	for w := 0; w < W; w++ {
		// Contiguous initial split: worker w owns [w*M/W, (w+1)*M/W).
		deques[w].r.Store(pack(w*morsels/W, (w+1)*morsels/W))
	}

	runMorsel := func(worker, m int) {
		lo := m * opt.MorselLen
		hi := lo + opt.MorselLen
		if hi > n {
			hi = n
		}
		fn(worker, lo, hi)
	}

	var wg sync.WaitGroup
	for w := 0; w < W; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			own := &deques[self]
			for {
				// Drain the own deque front-to-back.
				for {
					r := own.r.Load()
					lo, hi := unpack(r)
					if lo >= hi {
						break
					}
					if own.r.CompareAndSwap(r, pack(lo+1, hi)) {
						runMorsel(self, lo)
					}
				}
				// Own deque dry: scan victims round-robin for the back half
				// of a range with at least 2 morsels (a victim always keeps
				// its front morsel, so a steal never empties a deque — that
				// is what makes the all-empty exit scan sound).
				stole, busy := false, false
				for i := 1; i < W && !stole; i++ {
					v := &deques[(self+i)%W]
					r := v.r.Load()
					lo, hi := unpack(r)
					if hi-lo <= 0 {
						continue
					}
					busy = true
					if hi-lo < 2 {
						continue // unstealable single morsel; its owner has it
					}
					mid := lo + (hi-lo+1)/2
					if v.r.CompareAndSwap(r, pack(lo, mid)) {
						// The stolen range becomes the own deque (empty right
						// now, and thieves never CAS an empty deque, so a
						// plain store cannot lose a concurrent claim).
						own.r.Store(pack(mid, hi))
						if steals != nil {
							atomic.AddInt64(&steals[self], 1)
						}
						stole = true
					} else {
						busy = true // contended victim: someone else is active
					}
				}
				if stole {
					continue
				}
				if !busy {
					// Every deque observed empty. Remaining in-flight morsels
					// are already claimed by their owners (a worker never
					// exits with a nonempty own deque), so retiring early
					// costs tail parallelism only, never coverage.
					return
				}
				runtime.Gosched()
			}
		}(w)
	}
	wg.Wait()
}

// InitialOwner returns the worker that owned morsel seq in the initial
// contiguous split runStealing makes before any stealing: worker w owns
// [w*morsels/W, (w+1)*morsels/W) with W clamped to the morsel count, the
// same clamp the dispatcher applies. Tracing uses it for steal
// attribution: a morsel executed by a worker other than its initial owner
// was stolen.
func InitialOwner(seq, morsels, workers int) int {
	if workers <= 1 || morsels <= 0 || seq < 0 {
		return 0
	}
	if workers > morsels {
		workers = morsels
	}
	w := seq * workers / morsels
	for w > 0 && seq < w*morsels/workers {
		w--
	}
	for w+1 < workers && seq >= (w+1)*morsels/workers {
		w++
	}
	return w
}

// Fold computes a parallel reduction: each worker folds its morsels into a
// private accumulator created by mk, and combine merges the per-worker
// accumulators in worker order. Because work-stealing assigns morsels to
// workers nondeterministically, combine must be commutative+associative (or
// the caller must not care about fold order) — order-sensitive reductions
// should accumulate per morsel sequence number instead.
func Fold[T any](n int, opt Options, mk func() T, fold func(acc T, lo, hi int) T, combine func(a, b T) T) T {
	opt = opt.normalize()
	accs := make([]T, opt.Workers)
	for i := range accs {
		accs[i] = mk()
	}
	Run(n, opt, func(worker, lo, hi int) {
		accs[worker] = fold(accs[worker], lo, hi)
	})
	out := accs[0]
	for _, a := range accs[1:] {
		out = combine(out, a)
	}
	return out
}

// Stats instruments a run for skew analysis.
type Stats struct {
	MorselsPerWorker []int64
	RowsPerWorker    []int64
	// StealsPerWorker counts successful steals per thief: how often each
	// worker ran out of its own range and took the back half of a victim's.
	StealsPerWorker []int64
}

// Morsels returns the total number of dispatched morsels.
func (s Stats) Morsels() int64 {
	var n int64
	for _, m := range s.MorselsPerWorker {
		n += m
	}
	return n
}

// Rows returns the total number of dispatched rows.
func (s Stats) Rows() int64 {
	var n int64
	for _, r := range s.RowsPerWorker {
		n += r
	}
	return n
}

// Steals returns the total number of successful steals across all workers.
func (s Stats) Steals() int64 {
	var n int64
	for _, st := range s.StealsPerWorker {
		n += st
	}
	return n
}

// RunInstrumented is Run plus per-worker dispatch statistics.
func RunInstrumented(n int, opt Options, fn func(worker, lo, hi int)) Stats {
	opt = opt.normalize()
	st := Stats{
		MorselsPerWorker: make([]int64, opt.Workers),
		RowsPerWorker:    make([]int64, opt.Workers),
		StealsPerWorker:  make([]int64, opt.Workers),
	}
	runStealing(n, opt, func(worker, lo, hi int) {
		atomic.AddInt64(&st.MorselsPerWorker[worker], 1)
		atomic.AddInt64(&st.RowsPerWorker[worker], int64(hi-lo))
		fn(worker, lo, hi)
	}, st.StealsPerWorker)
	return st
}
