// Package morsel implements morsel-driven parallelism ([15], listed by the
// paper as a transformation the DSL must support through dynamic loop
// boundaries): the input index space is split into small morsels handed to
// workers on demand, so fast workers absorb the skew of slow morsels instead
// of waiting at a static partition barrier.
package morsel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultMorselLen balances dispatch overhead against skew absorption.
const DefaultMorselLen = 16384

// Options configure a parallel run.
type Options struct {
	// Workers is the worker count (0 = GOMAXPROCS).
	Workers int
	// MorselLen is the morsel size in rows (0 = DefaultMorselLen).
	MorselLen int
}

func (o Options) normalize() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MorselLen <= 0 {
		o.MorselLen = DefaultMorselLen
	}
	return o
}

// Run processes [0, n) with fn(worker, lo, hi) over dynamically dispatched
// morsels. fn is called concurrently from Workers goroutines; worker
// identifies the calling worker for thread-local state. Every call receives
// at most MorselLen rows and lo is always a multiple of MorselLen, so
// lo/MorselLen is a dense morsel sequence number — the engine's exchange
// operator relies on it to re-emit results in table order.
func Run(n int, opt Options, fn func(worker, lo, hi int)) {
	opt = opt.normalize()
	if n <= 0 {
		return
	}
	if opt.Workers == 1 {
		// Sequential path. This used to hand the whole index space to fn as
		// one giant morsel, which silently broke the per-call contract above:
		// callers that bound work (cancellation checks, skew statistics,
		// sequence numbering) per morsel saw a single unbounded call.
		for lo := 0; lo < n; lo += opt.MorselLen {
			hi := lo + opt.MorselLen
			if hi > n {
				hi = n
			}
			fn(0, lo, hi)
		}
		return
	}
	if n <= opt.MorselLen {
		fn(0, 0, n)
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				lo := int(cursor.Add(int64(opt.MorselLen))) - opt.MorselLen
				if lo >= n {
					return
				}
				hi := lo + opt.MorselLen
				if hi > n {
					hi = n
				}
				fn(worker, lo, hi)
			}
		}(w)
	}
	wg.Wait()
}

// Fold computes a parallel reduction: each worker folds its morsels into a
// private accumulator created by mk, and combine merges the per-worker
// accumulators in worker order.
func Fold[T any](n int, opt Options, mk func() T, fold func(acc T, lo, hi int) T, combine func(a, b T) T) T {
	opt = opt.normalize()
	accs := make([]T, opt.Workers)
	for i := range accs {
		accs[i] = mk()
	}
	Run(n, opt, func(worker, lo, hi int) {
		accs[worker] = fold(accs[worker], lo, hi)
	})
	out := accs[0]
	for _, a := range accs[1:] {
		out = combine(out, a)
	}
	return out
}

// Stats instruments a run for skew analysis.
type Stats struct {
	MorselsPerWorker []int64
	RowsPerWorker    []int64
}

// Morsels returns the total number of dispatched morsels.
func (s Stats) Morsels() int64 {
	var n int64
	for _, m := range s.MorselsPerWorker {
		n += m
	}
	return n
}

// Rows returns the total number of dispatched rows.
func (s Stats) Rows() int64 {
	var n int64
	for _, r := range s.RowsPerWorker {
		n += r
	}
	return n
}

// RunInstrumented is Run plus per-worker dispatch statistics.
func RunInstrumented(n int, opt Options, fn func(worker, lo, hi int)) Stats {
	opt = opt.normalize()
	st := Stats{
		MorselsPerWorker: make([]int64, opt.Workers),
		RowsPerWorker:    make([]int64, opt.Workers),
	}
	Run(n, opt, func(worker, lo, hi int) {
		atomic.AddInt64(&st.MorselsPerWorker[worker], 1)
		atomic.AddInt64(&st.RowsPerWorker[worker], int64(hi-lo))
		fn(worker, lo, hi)
	})
	return st
}
