package morsel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestRunCoversEveryRowExactlyOnce(t *testing.T) {
	n := 1_000_003 // prime-ish, not a multiple of the morsel size
	seen := make([]int32, n)
	Run(n, Options{Workers: 8, MorselLen: 1024}, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("row %d covered %d times", i, c)
		}
	}
}

func TestRunSmallInputSingleCall(t *testing.T) {
	calls := 0
	Run(100, Options{Workers: 8, MorselLen: 1024}, func(w, lo, hi int) {
		calls++
		if w != 0 || lo != 0 || hi != 100 {
			t.Fatalf("small input should be one morsel on worker 0: %d %d %d", w, lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("calls = %d", calls)
	}
	Run(0, Options{}, func(_, _, _ int) { t.Fatal("n=0 must not call fn") })
}

// TestRunSingleWorkerKeepsMorselGranularity: Workers=1 used to receive the
// whole index space as one giant morsel, breaking the per-call contract
// (bounded ranges, aligned lo, dense sequence numbers) that the engine's
// exchange path depends on.
func TestRunSingleWorkerKeepsMorselGranularity(t *testing.T) {
	n := 10*1024 + 37
	var calls, rows int
	Run(n, Options{Workers: 1, MorselLen: 1024}, func(w, lo, hi int) {
		if w != 0 {
			t.Fatalf("worker = %d", w)
		}
		if lo%1024 != 0 || hi-lo > 1024 {
			t.Fatalf("morsel [%d,%d) violates alignment/bounds", lo, hi)
		}
		if lo != calls*1024 {
			t.Fatalf("morsel %d starts at %d, want sequential dispatch", calls, lo)
		}
		calls++
		rows += hi - lo
	})
	if calls != 11 || rows != n {
		t.Fatalf("calls=%d rows=%d, want 11 morsels covering %d rows", calls, rows, n)
	}
	st := RunInstrumented(n, Options{Workers: 1, MorselLen: 1024}, func(_, _, _ int) {})
	if st.Morsels() != 11 || st.Rows() != int64(n) {
		t.Fatalf("instrumented: morsels=%d rows=%d", st.Morsels(), st.Rows())
	}
}

func TestFoldSum(t *testing.T) {
	n := 500_000
	data := make([]int64, n)
	var want int64
	for i := range data {
		data[i] = int64(i % 97)
		want += data[i]
	}
	got := Fold(n, Options{Workers: 6, MorselLen: 4096},
		func() int64 { return 0 },
		func(acc int64, lo, hi int) int64 {
			for i := lo; i < hi; i++ {
				acc += data[i]
			}
			return acc
		},
		func(a, b int64) int64 { return a + b },
	)
	if got != want {
		t.Fatalf("Fold = %d, want %d", got, want)
	}
}

// TestSkewAbsorption: with one pathologically slow morsel, dynamic
// boundaries must let other workers take the remaining morsels instead of
// stalling behind a static partition.
func TestSkewAbsorption(t *testing.T) {
	n := 64 * 1024
	slowMorsel := int64(0)
	st := RunInstrumented(n, Options{Workers: 4, MorselLen: 1024}, func(w, lo, hi int) {
		if atomic.CompareAndSwapInt64(&slowMorsel, 0, 1) {
			time.Sleep(30 * time.Millisecond) // one slow morsel
		}
	})
	// The slow worker must have handled far fewer morsels than the rest
	// combined: 64 morsels total, slow one takes ~1.
	var minM, maxM int64 = 1 << 62, 0
	for _, m := range st.MorselsPerWorker {
		if m < minM {
			minM = m
		}
		if m > maxM {
			maxM = m
		}
	}
	if minM > 4 {
		t.Fatalf("slow worker handled %d morsels; dynamic dispatch failed (%v)", minM, st.MorselsPerWorker)
	}
	var rows int64
	for _, r := range st.RowsPerWorker {
		rows += r
	}
	if rows != int64(n) {
		t.Fatalf("rows covered = %d, want %d", rows, n)
	}
}

// TestStealCountsUnderSkew: when one worker's whole initial range is slow,
// the other workers must steal from it (and from each other) instead of
// idling — observable through the new StealsPerWorker counters — while
// still covering every row exactly once.
func TestStealCountsUnderSkew(t *testing.T) {
	const morselLen = 1024
	const workers = 4
	n := 64 * morselLen
	seen := make([]int32, n)
	st := RunInstrumented(n, Options{Workers: workers, MorselLen: morselLen}, func(w, lo, hi int) {
		// Worker 0's initial contiguous range is the first quarter of the
		// index space; make every morsel there slow so its owner cannot
		// drain it alone.
		if lo < n/workers {
			time.Sleep(2 * time.Millisecond)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("row %d covered %d times", i, c)
		}
	}
	if st.Steals() == 0 {
		t.Fatalf("no steals recorded under a skewed region (%v)", st.StealsPerWorker)
	}
	if len(st.StealsPerWorker) != workers {
		t.Fatalf("StealsPerWorker sized %d, want %d", len(st.StealsPerWorker), workers)
	}
}

// TestStealSplitNeverLosesMorsels hammers the steal CAS paths with tiny
// morsels and more workers than morsels-per-range, where every worker
// spends most of its time thieving.
func TestStealSplitNeverLosesMorsels(t *testing.T) {
	for _, workers := range []int{2, 3, 8, 16} {
		for _, n := range []int{7, 64, 1000, 4097} {
			var rows atomic.Int64
			st := RunInstrumented(n, Options{Workers: workers, MorselLen: 3}, func(_, lo, hi int) {
				rows.Add(int64(hi - lo))
			})
			if rows.Load() != int64(n) || st.Rows() != int64(n) {
				t.Fatalf("workers=%d n=%d: covered %d rows (stats %d)", workers, n, rows.Load(), st.Rows())
			}
		}
	}
}

func TestParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	n := 1 << 22
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(i)
	}
	work := func(workers int) time.Duration {
		start := time.Now()
		Fold(n, Options{Workers: workers, MorselLen: 8192},
			func() float64 { return 0 },
			func(acc float64, lo, hi int) float64 {
				for i := lo; i < hi; i++ {
					acc += data[i] * 1.0001
				}
				return acc
			},
			func(a, b float64) float64 { return a + b },
		)
		return time.Since(start)
	}
	seq := work(1)
	par := work(4)
	if par >= seq {
		t.Logf("warning: no speedup (seq=%v par=%v); machine may be loaded", seq, par)
	}
}

// Property: Fold(sum) equals sequential sum for random sizes and options.
func TestFoldProperty(t *testing.T) {
	f := func(raw []int32, workers uint8, morsel uint16) bool {
		n := len(raw)
		var want int64
		for _, x := range raw {
			want += int64(x)
		}
		got := Fold(n, Options{Workers: int(workers%8) + 1, MorselLen: int(morsel%512) + 1},
			func() int64 { return 0 },
			func(acc int64, lo, hi int) int64 {
				for i := lo; i < hi; i++ {
					acc += int64(raw[i])
				}
				return acc
			},
			func(a, b int64) int64 { return a + b },
		)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
