package dsl

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/vector"
)

// Fprint writes p in canonical surface syntax to w. The output re-parses to
// an equivalent program (round-trip property tested in parser_test.go).
func Fprint(w io.Writer, p *Program) {
	pr := &printer{w: w, funcs: map[string]bool{}}
	for name := range p.Funcs {
		pr.funcs[name] = true
	}
	names := make([]string, 0, len(p.Funcs))
	for name := range p.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := p.Funcs[name]
		pr.printf("fn %s(%s) = ", f.Name, strings.Join(f.Params, ", "))
		pr.expr(f.Body)
		pr.nl()
	}
	pr.stmts(p.Body)
}

type printer struct {
	w      io.Writer
	indent int
	// funcs are the program's fn names: a call prints as an atom only for
	// declared functions, since that is the only call form the parser
	// accepts in atom (juxtaposition) position.
	funcs map[string]bool
}

func (pr *printer) printf(format string, args ...any) {
	fmt.Fprintf(pr.w, format, args...)
}

func (pr *printer) nl() {
	fmt.Fprintln(pr.w)
	for i := 0; i < pr.indent; i++ {
		fmt.Fprint(pr.w, "  ")
	}
}

func (pr *printer) stmts(stmts []Stmt) {
	for _, s := range stmts {
		pr.stmt(s)
		pr.nl()
	}
}

func (pr *printer) block(stmts []Stmt) {
	pr.printf("{")
	pr.indent++
	for _, s := range stmts {
		pr.nl()
		pr.stmt(s)
	}
	pr.indent--
	pr.nl()
	pr.printf("}")
}

func (pr *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *MutDecl:
		pr.printf("mut %s", s.Name)
	case *Assign:
		pr.printf("%s := ", s.Name)
		pr.expr(s.Val)
	case *Let:
		pr.printf("let %s = ", s.Name)
		pr.expr(s.Val)
		pr.printf(" in")
	case *Loop:
		pr.printf("loop ")
		pr.block(s.Body)
	case *Break:
		pr.printf("break")
	case *If:
		pr.printf("if ")
		pr.expr(s.Cond)
		pr.printf(" then ")
		pr.block(s.Then)
		if len(s.Else) > 0 {
			pr.printf(" else ")
			pr.block(s.Else)
		}
	case *WriteStmt:
		pr.printf("write %s ", s.Dst)
		pr.atom(s.At)
		pr.printf(" ")
		pr.atom(s.Val)
	case *ScatterStmt:
		pr.printf("scatter %s ", s.Dst)
		pr.atom(s.Idx)
		pr.printf(" ")
		pr.atom(s.Val)
		if s.Conflict != "" && s.Conflict != "last" {
			pr.printf(" %s", s.Conflict)
		}
	case *ExprStmt:
		pr.expr(s.E)
	default:
		pr.printf("/* unknown stmt %T */", s)
	}
}

// atom prints an expression, parenthesizing anything that is not already an
// atom, so it can appear as a skeleton argument.
func (pr *printer) atom(e Expr) {
	switch e := e.(type) {
	case *CallExpr:
		// Only declared functions call by juxtaposition in atom position.
		if pr.funcs[e.Name] {
			pr.expr(e)
			return
		}
	case *Const, *VarRef, *LenExpr, *CastExpr, *Lambda:
		pr.expr(e)
		return
	}
	pr.printf("(")
	pr.expr(e)
	pr.printf(")")
}

func (pr *printer) expr(e Expr) {
	switch e := e.(type) {
	case *Const:
		s := e.Val.String()
		if e.Val.Kind == vector.F64 && !strings.ContainsAny(s, ".eE") {
			// Keep float constants lexically float: "-0" or "100" would
			// re-parse as integers.
			s += ".0"
		}
		pr.printf("%s", s)
	case *VarRef:
		pr.printf("%s", e.Name)
	case *Bin:
		if e.Op == OpMin || e.Op == OpMax {
			pr.printf("%s(", e.Op)
			pr.expr(e.L)
			pr.printf(", ")
			pr.expr(e.R)
			pr.printf(")")
			return
		}
		pr.printf("(")
		pr.expr(e.L)
		pr.printf(" %s ", e.Op)
		pr.expr(e.R)
		pr.printf(")")
	case *Un:
		switch e.Op {
		case UnAbs, UnSqrt:
			pr.printf("%s(", e.Op)
			pr.expr(e.E)
			pr.printf(")")
		default:
			pr.printf("%s", e.Op)
			pr.atom(e.E)
		}
	case *Lambda:
		if call, ok := e.Body.(*CallExpr); ok && e.Params == nil && len(call.Args) == 0 {
			pr.printf("%s", call.Name) // named function reference
			return
		}
		pr.printf("(\\%s -> ", strings.Join(e.Params, " "))
		pr.expr(e.Body)
		pr.printf(")")
	case *CallExpr:
		pr.printf("%s(", e.Name)
		for i, a := range e.Args {
			if i > 0 {
				pr.printf(", ")
			}
			pr.expr(a)
		}
		pr.printf(")")
	case *LenExpr:
		pr.printf("len(")
		pr.expr(e.E)
		pr.printf(")")
	case *CastExpr:
		pr.printf("cast<%s>(", e.To)
		pr.expr(e.E)
		pr.printf(")")
	case *ReadExpr:
		pr.printf("read ")
		pr.atom(e.At)
		pr.printf(" %s", e.Data)
		if e.Count != nil {
			pr.printf(" ")
			pr.atom(e.Count)
		}
	case *MapExpr:
		pr.printf("map ")
		pr.expr(e.Fn)
		for _, a := range e.Args {
			pr.printf(" ")
			pr.atom(a)
		}
	case *FilterExpr:
		pr.printf("filter ")
		pr.expr(e.Pred)
		pr.printf(" ")
		pr.atom(e.Arg)
	case *FoldExpr:
		pr.printf("fold ")
		pr.expr(e.Fn)
		pr.printf(" ")
		pr.atom(e.Init)
		pr.printf(" ")
		pr.atom(e.Arg)
	case *GatherExpr:
		pr.printf("gather %s ", e.Data)
		pr.atom(e.Idx)
	case *GenExpr:
		pr.printf("gen ")
		pr.expr(e.Fn)
		pr.printf(" ")
		pr.atom(e.Count)
	case *CondenseExpr:
		pr.printf("condense ")
		pr.atom(e.E)
	case *MergeExpr:
		pr.printf("merge %s ", e.Kind)
		pr.atom(e.L)
		pr.printf(" ")
		pr.atom(e.R)
	default:
		pr.printf("/* unknown expr %T */", e)
	}
}
