package dsl

import (
	"strings"
	"testing"

	"repro/internal/vector"
)

func TestParseFigure2(t *testing.T) {
	p, err := Parse(Figure2Source)
	if err != nil {
		t.Fatalf("Parse(Figure2) failed: %v", err)
	}
	if len(p.Body) != 5 {
		t.Fatalf("top-level statements = %d, want 5 (mut,mut,:=,:=,loop)", len(p.Body))
	}
	loop, ok := p.Body[4].(*Loop)
	if !ok {
		t.Fatalf("5th statement is %T, want *Loop", p.Body[4])
	}
	if len(loop.Body) != 9 {
		t.Fatalf("loop body statements = %d, want 9", len(loop.Body))
	}
	ext := p.Externals()
	want := []string{"some_data", "v", "w"}
	if len(ext) != len(want) {
		t.Fatalf("externals = %v, want %v", ext, want)
	}
	for i := range want {
		if ext[i] != want[i] {
			t.Fatalf("externals = %v, want %v", ext, want)
		}
	}
}

func TestParseSkeletons(t *testing.T) {
	cases := []struct {
		src  string
		want string // type name of the expression
	}{
		{`read 0 d`, "*dsl.ReadExpr"},
		{`read 0 d 16`, "*dsl.ReadExpr"},
		{`map (\x -> x+1) a`, "*dsl.MapExpr"},
		{`map (\x y -> x+y) a b`, "*dsl.MapExpr"},
		{`filter (\x -> x > 3) a`, "*dsl.FilterExpr"},
		{`fold (\acc x -> acc + x) 0 a`, "*dsl.FoldExpr"},
		{`gather d idx`, "*dsl.GatherExpr"},
		{`gen (\i -> i*i) 10`, "*dsl.GenExpr"},
		{`condense a`, "*dsl.CondenseExpr"},
		{`merge join a b`, "*dsl.MergeExpr"},
		{`merge union a b`, "*dsl.MergeExpr"},
		{`merge diff a b`, "*dsl.MergeExpr"},
		{`merge intersect a b`, "*dsl.MergeExpr"},
		{`len(a)`, "*dsl.LenExpr"},
		{`cast<i32>(a)`, "*dsl.CastExpr"},
		{`min(a, b)`, "*dsl.Bin"},
		{`sqrt(a)`, "*dsl.Un"},
	}
	for _, c := range cases {
		p, err := Parse("let z = " + c.src)
		if err != nil {
			t.Errorf("Parse(%q) failed: %v", c.src, err)
			continue
		}
		let := p.Body[0].(*Let)
		got := typeName(let.Val)
		if got != c.want {
			t.Errorf("Parse(%q) = %s, want %s", c.src, got, c.want)
		}
	}
}

func typeName(e Expr) string {
	switch e.(type) {
	case *ReadExpr:
		return "*dsl.ReadExpr"
	case *MapExpr:
		return "*dsl.MapExpr"
	case *FilterExpr:
		return "*dsl.FilterExpr"
	case *FoldExpr:
		return "*dsl.FoldExpr"
	case *GatherExpr:
		return "*dsl.GatherExpr"
	case *GenExpr:
		return "*dsl.GenExpr"
	case *CondenseExpr:
		return "*dsl.CondenseExpr"
	case *MergeExpr:
		return "*dsl.MergeExpr"
	case *LenExpr:
		return "*dsl.LenExpr"
	case *CastExpr:
		return "*dsl.CastExpr"
	case *Bin:
		return "*dsl.Bin"
	case *Un:
		return "*dsl.Un"
	case *Const:
		return "*dsl.Const"
	case *VarRef:
		return "*dsl.VarRef"
	case *Lambda:
		return "*dsl.Lambda"
	case *CallExpr:
		return "*dsl.CallExpr"
	}
	return "?"
}

func TestParsePrecedence(t *testing.T) {
	p := MustParse(`let z = 1 + 2 * 3`)
	bin := p.Body[0].(*Let).Val.(*Bin)
	if bin.Op != OpAdd {
		t.Fatalf("top op = %v, want +", bin.Op)
	}
	r := bin.R.(*Bin)
	if r.Op != OpMul {
		t.Fatalf("right op = %v, want *", r.Op)
	}

	p = MustParse(`let z = 1 + 2 >= 3 - 4`)
	bin = p.Body[0].(*Let).Val.(*Bin)
	if bin.Op != OpGe {
		t.Fatalf("comparison should bind loosest, got %v", bin.Op)
	}
}

func TestParseLiterals(t *testing.T) {
	p := MustParse(`let a = 42
let b = 3.5
let c = "hi"
let d = true
let e = -7
let f = 1_000_000
let g = 2e3`)
	vals := []vector.Value{
		vector.I64Value(42),
		vector.F64Value(3.5),
		vector.StrValue("hi"),
		vector.BoolValue(true),
		vector.I64Value(-7),
		vector.I64Value(1000000),
		vector.F64Value(2000),
	}
	for i, want := range vals {
		got := p.Body[i].(*Let).Val.(*Const).Val
		if !got.Equal(want) {
			t.Errorf("literal %d = %v, want %v", i, got, want)
		}
	}
}

func TestParseFuncDefAndCall(t *testing.T) {
	p := MustParse(`
fn double(x) = 2*x
fn hyp(a, b) = sqrt(a*a + b*b)
let y = double(3)
let z = map double xs
`)
	if len(p.Funcs) != 2 {
		t.Fatalf("funcs = %d, want 2", len(p.Funcs))
	}
	if got := len(p.Funcs["hyp"].Params); got != 2 {
		t.Fatalf("hyp params = %d", got)
	}
	m := p.Body[1].(*Let).Val.(*MapExpr)
	if call, ok := m.Fn.Body.(*CallExpr); !ok || call.Name != "double" {
		t.Fatalf("map fn should be named reference to double")
	}
}

func TestParseIfElseAndScatter(t *testing.T) {
	p := MustParse(`
mut x
x := 0
if x > 1 then { x := 2 } else { x := 3 }
scatter d idx vals sum
`)
	ifs := p.Body[2].(*If)
	if len(ifs.Then) != 1 || len(ifs.Else) != 1 {
		t.Fatal("if/else blocks wrong")
	}
	sc := p.Body[3].(*ScatterStmt)
	if sc.Conflict != "sum" || sc.Dst != "d" {
		t.Fatalf("scatter parsed wrong: %+v", sc)
	}
}

func TestParseComments(t *testing.T) {
	p := MustParse(`
# hash comment
-- dash comment, as in the paper's listings
let a = 1 # trailing
`)
	if len(p.Body) != 1 {
		t.Fatalf("body = %d statements", len(p.Body))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`let = 3`,
		`loop`,
		`if x then`,
		`map a`,
		`fold (\a -> a) 0 xs + `,
		`let a = (\x -> `,
		`merge banana a b`,
		`cast<banana>(x)`,
		`let s = "unterminated`,
		`let a = 3 @`,
		`fn f(x) = x fn f(y) = y`,
		`write`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

// Round trip: print then re-parse then re-print must be a fixed point.
// TestParseMultilineParens: inside parentheses, expressions span lines
// freely (leading operators included) — the line-contiguity rule only
// guards unparenthesized statement boundaries.
func TestParseMultilineParens(t *testing.T) {
	for _, src := range []string{
		"let a = (1\n+ 2)",
		"let a = map (\\x ->\n(x\n* 2)) (read 0 d)",
		"fn f(x) = (x + 1)\nlet a = f(\n2\n)",
		"let a = min(1,\n2)",
	} {
		if _, err := Parse(src); err != nil {
			t.Errorf("multi-line parenthesized expression rejected: %v\n%s", err, src)
		}
	}
	// Without parens the next statement must not be absorbed: "a" and "-2"
	// stay separate statements instead of merging into "(a - 2)".
	p, err := Parse("let a = 1 in a\n-2")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Body) != 3 {
		t.Fatalf("statement absorbed across lines: %d stmts\n%s", len(p.Body), p.String())
	}
}

func TestPrintRoundTrip(t *testing.T) {
	srcs := []string{
		Figure2Source,
		`fn double(x) = (2 * x)
let a = map double (read 0 d)
let s = fold (\acc x -> (acc + x)) 0 a
write out 0 (condense (filter (\x -> (x > 5)) a))`,
		`mut n
n := 0
loop {
  n := (n + 1)
  if (n >= 10) then { break }
}`,
		`let g = gen (\i -> (i % 7)) 100
let m = merge union g g
scatter d (gen (\i -> i) 10) m sum`,
	}
	for _, src := range srcs {
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse: %v\n%s", err, src)
		}
		out1 := p1.String()
		p2, err := Parse(out1)
		if err != nil {
			t.Fatalf("re-parse of printed output failed: %v\n---\n%s", err, out1)
		}
		out2 := p2.String()
		if out1 != out2 {
			t.Errorf("print not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
		}
	}
}

func TestCheckCatchesErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string // expected error substring
	}{
		{`x := 1`, "undeclared"},
		{`let a = 1
a := 2`, "immutable"},
		{`break`, "break outside loop"},
		{`let a = b`, "undefined variable"},
		{`let a = read 0 nope`, "not a bound external"},
		{`write nope 0 0`, "not a bound external"},
		{`let a = f(1)`, "undefined function"},
		{`fn f(x) = x
let a = f(1, 2)`, "takes 1 arguments"},
		{`let a = filter (\x y -> x) q`, "1-ary"},
		{`mut a
mut a`, "redeclaration"},
		{`mut a
a := 1
let a = 2`, "shadows a mutable"},
		{`scatter d i v frobnicate`, "conflict"},
	}
	for _, c := range cases {
		p, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q) failed: %v", c.src, err)
			continue
		}
		errs := Check(p, []string{"d", "q", "i", "v"})
		if len(errs) == 0 {
			t.Errorf("Check(%q) found no errors, want %q", c.src, c.frag)
			continue
		}
		found := false
		for _, e := range errs {
			if strings.Contains(e.Error(), c.frag) {
				found = true
			}
		}
		if !found {
			t.Errorf("Check(%q) = %v, want substring %q", c.src, errs, c.frag)
		}
	}
}

func TestCheckAcceptsFigure2(t *testing.T) {
	p := MustParse(Figure2Source)
	if errs := Check(p, []string{"some_data", "v", "w"}); len(errs) != 0 {
		t.Fatalf("Figure 2 should check cleanly, got %v", errs)
	}
}
