package dsl

import (
	"fmt"
	"strconv"

	"repro/internal/vector"
)

// Parse parses DSL source text into a Program. The accepted grammar is the
// Figure-2 surface syntax with explicit braces for blocks:
//
//	program  := { funcdef | stmt }
//	funcdef  := "fn" IDENT "(" [IDENT {"," IDENT}] ")" "=" expr
//	stmt     := "mut" IDENT
//	          | "let" IDENT "=" expr ["in"]
//	          | IDENT ":=" expr
//	          | "loop" block
//	          | "break"
//	          | "if" expr "then" (block | stmt) ["else" (block | stmt)]
//	          | "write" IDENT atom atom
//	          | "scatter" IDENT atom atom [IDENT]
//	          | expr
//	block    := "{" { stmt } "}"
//
// Expressions use conventional precedence; skeletons are keyword-led
// applications whose arguments are atoms (parenthesize anything complex):
//
//	read i data [n]      map f a [b]      filter p a      fold f init a
//	gather data idx      gen f n          condense a      merge join a b
//	len(a)               cast<i32>(a)     min(a,b) max(a,b) abs(a) sqrt(a)
//
// Lambdas are written in the paper's notation: (\x -> 2*x).
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, funcs: map[string]bool{}, depth: parenDepths(toks)}
	prog := &Program{Funcs: map[string]*FuncDef{}}
	for !p.at(tokEOF, "") {
		if p.at(tokKeyword, "fn") {
			fd, err := p.parseFuncDef()
			if err != nil {
				return nil, err
			}
			if _, dup := prog.Funcs[fd.Name]; dup {
				return nil, p.errAt(fd.P, "duplicate function %q", fd.Name)
			}
			prog.Funcs[fd.Name] = fd
			p.funcs[fd.Name] = true
			continue
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		prog.Body = append(prog.Body, s)
	}
	return prog, nil
}

// MustParse parses src and panics on error. For tests and examples.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	toks []token
	pos  int
	// depth[i] is the number of unclosed "(" before token i (see
	// parenDepths); contiguous() consults it.
	depth []int
	// funcs tracks fn names defined so far: an identifier followed by "("
	// is a call only for known functions, resolving the juxtaposition
	// ambiguity in skeleton argument lists (e.g. "write o i (map ...)").
	funcs map[string]bool
}

// parenDepths computes, for each token, how many "(" are unclosed before
// it. Inside an open paren no statement can begin, so the line-contiguity
// rule (which only exists to keep expressions from absorbing the next
// statement) is suspended there and parenthesized expressions may span
// lines freely.
func parenDepths(toks []token) []int {
	depth := make([]int, len(toks))
	d := 0
	for i, t := range toks {
		if t.kind == tokOp && t.text == ")" && d > 0 {
			d--
		}
		depth[i] = d
		if t.kind == tokOp && t.text == "(" {
			d++
		}
	}
	return depth
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

// contiguous reports whether the current token may continue the construct
// the previous token belongs to. Juxtaposition continuations — a call's
// "(", variable-arity skeleton arguments, read's optional count, scatter's
// optional conflict, an infix operator — are only taken when contiguous,
// so such constructs never swallow the opening tokens of the next
// statement (the statement list itself has no separator tokens). A token
// is contiguous when it starts on the same source line as the previous
// token, or when it sits inside an unclosed "(" — no statement can begin
// there, so parenthesized expressions still span lines freely.
func (p *parser) contiguous() bool {
	if p.pos == 0 || p.depth[p.pos] > 0 {
		return true
	}
	return p.cur().pos.Line == p.toks[p.pos-1].pos.Line
}

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) eat(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	t := p.cur()
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = map[tokKind]string{tokIdent: "identifier", tokInt: "integer", tokOp: "operator"}[kind]
		}
		return t, p.errAt(t.pos, "expected %s, found %s", want, t)
	}
	p.pos++
	return t, nil
}

func (p *parser) errAt(pos Position, format string, args ...any) error {
	return fmt.Errorf("dsl: %s: %s", pos, fmt.Sprintf(format, args...))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// Declarations and statements

func (p *parser) parseFuncDef() (*FuncDef, error) {
	start := p.cur().pos
	p.pos++ // fn
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokOp, "("); err != nil {
		return nil, err
	}
	var params []string
	for !p.at(tokOp, ")") {
		id, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		params = append(params, id.text)
		if !p.eat(tokOp, ",") {
			break
		}
	}
	if _, err := p.expect(tokOp, ")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokOp, "="); err != nil {
		return nil, err
	}
	body, err := p.parseExpr(0)
	if err != nil {
		return nil, err
	}
	return &FuncDef{base: base{start}, Name: name.text, Params: params, Body: body}, nil
}

func (p *parser) parseBlock() ([]Stmt, error) {
	if _, err := p.expect(tokOp, "{"); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for !p.at(tokOp, "}") {
		if p.at(tokEOF, "") {
			return nil, p.errAt(p.cur().pos, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.pos++ // }
	return stmts, nil
}

func (p *parser) parseBlockOrStmt() ([]Stmt, error) {
	if p.at(tokOp, "{") {
		return p.parseBlock()
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return []Stmt{s}, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.at(tokKeyword, "mut"):
		p.pos++
		id, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		return &MutDecl{base: base{t.pos}, Name: id.text}, nil

	case p.at(tokKeyword, "let"):
		p.pos++
		id, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, "="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		p.eat(tokKeyword, "in") // optional, as in Figure 2
		return &Let{base: base{t.pos}, Name: id.text, Val: val}, nil

	case p.at(tokKeyword, "loop"):
		p.pos++
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &Loop{base: base{t.pos}, Body: body}, nil

	case p.at(tokKeyword, "break"):
		p.pos++
		return &Break{base: base{t.pos}}, nil

	case p.at(tokKeyword, "if"):
		p.pos++
		cond, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "then"); err != nil {
			return nil, err
		}
		then, err := p.parseBlockOrStmt()
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.eat(tokKeyword, "else") {
			els, err = p.parseBlockOrStmt()
			if err != nil {
				return nil, err
			}
		}
		return &If{base: base{t.pos}, Cond: cond, Then: then, Else: els}, nil

	case p.at(tokKeyword, "write"):
		p.pos++
		dst, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		pos, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		val, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		return &WriteStmt{base: base{t.pos}, Dst: dst.text, At: pos, Val: val}, nil

	case p.at(tokKeyword, "scatter"):
		p.pos++
		dst, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		idx, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		val, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		conflict := "last"
		if (p.at(tokIdent, "") || p.at(tokKeyword, "min") || p.at(tokKeyword, "max")) && p.contiguous() {
			conflict = p.cur().text
			p.pos++
		}
		return &ScatterStmt{base: base{t.pos}, Dst: dst.text, Idx: idx, Val: val, Conflict: conflict}, nil

	case t.kind == tokIdent && p.peek().kind == tokOp && p.peek().text == ":=":
		p.pos += 2
		val, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		return &Assign{base: base{t.pos}, Name: t.text, Val: val}, nil
	}

	e, err := p.parseExpr(0)
	if err != nil {
		return nil, err
	}
	return &ExprStmt{base: base{t.pos}, E: e}, nil
}

// ---------------------------------------------------------------------------
// Expressions: Pratt parser

var binPrec = map[string]int{
	"||": 1, "&&": 2,
	"|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

var binOpFromText = map[string]BinOp{
	"+": OpAdd, "-": OpSub, "*": OpMul, "/": OpDiv, "%": OpMod,
	"&": OpAnd, "|": OpOr, "^": OpXor, "<<": OpShl, ">>": OpShr,
	"==": OpEq, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
	"&&": OpAnd, "||": OpOr,
}

func (p *parser) parseExpr(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokOp {
			break
		}
		prec, ok := binPrec[t.text]
		if !ok || prec < minPrec {
			break
		}
		// An infix operator must start on the line its left operand ended
		// on (its right operand may continue on the next line), so an
		// expression statement never absorbs the next statement.
		if !p.contiguous() {
			break
		}
		p.pos++
		rhs, err := p.parseExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Bin{base: base{t.pos}, Op: binOpFromText[t.text], L: lhs, R: rhs}
	}
	return lhs, nil
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.kind == tokOp && (t.text == "-" || t.text == "!") {
		p.pos++
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		op := UnNeg
		if t.text == "!" {
			op = UnNot
		}
		// Fold -literal into a constant for readability of normalized IR.
		if c, ok := e.(*Const); ok && op == UnNeg && c.Val.Kind != vector.Bool {
			v := c.Val
			if v.Kind == vector.F64 {
				v.F = -v.F
			} else {
				v.I = -v.I
			}
			return &Const{base: base{t.pos}, Val: v}, nil
		}
		return &Un{base: base{t.pos}, Op: op, E: e}, nil
	}
	return p.parseSkeletonOrAtom()
}

// parseSkeletonOrAtom parses keyword-led skeleton applications and plain
// atoms.
func (p *parser) parseSkeletonOrAtom() (Expr, error) {
	t := p.cur()
	if t.kind == tokKeyword {
		switch t.text {
		case "read":
			p.pos++
			pos, err := p.parseAtom()
			if err != nil {
				return nil, err
			}
			data, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			var count Expr
			if p.atAtomStart() && p.contiguous() {
				count, err = p.parseAtom()
				if err != nil {
					return nil, err
				}
			}
			return &ReadExpr{base: base{t.pos}, At: pos, Data: data.text, Count: count}, nil

		case "map":
			p.pos++
			fn, err := p.parseLambdaAtom()
			if err != nil {
				return nil, err
			}
			var args []Expr
			for p.atAtomStart() && p.contiguous() {
				a, err := p.parseAtom()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
			}
			if len(args) == 0 {
				return nil, p.errAt(t.pos, "map needs at least one argument")
			}
			return &MapExpr{base: base{t.pos}, Fn: fn, Args: args}, nil

		case "filter":
			p.pos++
			fn, err := p.parseLambdaAtom()
			if err != nil {
				return nil, err
			}
			arg, err := p.parseAtom()
			if err != nil {
				return nil, err
			}
			return &FilterExpr{base: base{t.pos}, Pred: fn, Arg: arg}, nil

		case "fold":
			p.pos++
			fn, err := p.parseLambdaAtom()
			if err != nil {
				return nil, err
			}
			init, err := p.parseAtom()
			if err != nil {
				return nil, err
			}
			arg, err := p.parseAtom()
			if err != nil {
				return nil, err
			}
			return &FoldExpr{base: base{t.pos}, Fn: fn, Init: init, Arg: arg}, nil

		case "gather":
			p.pos++
			data, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			idx, err := p.parseAtom()
			if err != nil {
				return nil, err
			}
			return &GatherExpr{base: base{t.pos}, Data: data.text, Idx: idx}, nil

		case "gen":
			p.pos++
			fn, err := p.parseLambdaAtom()
			if err != nil {
				return nil, err
			}
			count, err := p.parseAtom()
			if err != nil {
				return nil, err
			}
			return &GenExpr{base: base{t.pos}, Fn: fn, Count: count}, nil

		case "condense":
			p.pos++
			arg, err := p.parseAtom()
			if err != nil {
				return nil, err
			}
			return &CondenseExpr{base: base{t.pos}, E: arg}, nil

		case "merge":
			p.pos++
			kindTok, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			var mk MergeKind
			switch kindTok.text {
			case "join":
				mk = MergeJoin
			case "union":
				mk = MergeUnion
			case "diff":
				mk = MergeDiff
			case "intersect":
				mk = MergeIntersect
			default:
				return nil, p.errAt(kindTok.pos, "unknown merge kind %q (want join/union/diff/intersect)", kindTok.text)
			}
			l, err := p.parseAtom()
			if err != nil {
				return nil, err
			}
			r, err := p.parseAtom()
			if err != nil {
				return nil, err
			}
			return &MergeExpr{base: base{t.pos}, Kind: mk, L: l, R: r}, nil

		case "len":
			p.pos++
			if _, err := p.expect(tokOp, "("); err != nil {
				return nil, err
			}
			e, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			return &LenExpr{base: base{t.pos}, E: e}, nil

		case "cast":
			p.pos++
			if _, err := p.expect(tokOp, "<"); err != nil {
				return nil, err
			}
			kindTok, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			kind, err := vector.ParseKind(kindTok.text)
			if err != nil {
				return nil, p.errAt(kindTok.pos, "%v", err)
			}
			if _, err := p.expect(tokOp, ">"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokOp, "("); err != nil {
				return nil, err
			}
			e, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			return &CastExpr{base: base{t.pos}, To: kind, E: e}, nil

		case "min", "max":
			p.pos++
			if _, err := p.expect(tokOp, "("); err != nil {
				return nil, err
			}
			l, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokOp, ","); err != nil {
				return nil, err
			}
			r, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			op := OpMin
			if t.text == "max" {
				op = OpMax
			}
			return &Bin{base: base{t.pos}, Op: op, L: l, R: r}, nil

		case "abs", "sqrt":
			p.pos++
			if _, err := p.expect(tokOp, "("); err != nil {
				return nil, err
			}
			e, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			op := UnAbs
			if t.text == "sqrt" {
				op = UnSqrt
			}
			return &Un{base: base{t.pos}, Op: op, E: e}, nil

		case "true", "false":
			p.pos++
			return &Const{base: base{t.pos}, Val: vector.BoolValue(t.text == "true")}, nil
		}
		return nil, p.errAt(t.pos, "unexpected keyword %q in expression", t.text)
	}
	return p.parseAtomOpts(true)
}

// atAtomStart reports whether the current token can begin an atom, used for
// the variable-arity skeleton argument lists.
func (p *parser) atAtomStart() bool {
	t := p.cur()
	switch t.kind {
	case tokIdent, tokInt, tokFloat, tokString:
		return true
	case tokOp:
		return t.text == "(" || t.text == "\\"
	case tokKeyword:
		return t.text == "true" || t.text == "false"
	}
	return false
}

// parseLambdaAtom parses a lambda, possibly parenthesized, or a function
// name reference (which resolves against fn definitions at check time).
func (p *parser) parseLambdaAtom() (*Lambda, error) {
	t := p.cur()
	if t.kind == tokIdent {
		// Named function used as skeleton argument: map double xs.
		p.pos++
		return &Lambda{base: base{t.pos}, Params: nil, Body: &CallExpr{base: base{t.pos}, Name: t.text}}, nil
	}
	paren := false
	if p.at(tokOp, "(") {
		paren = true
		p.pos++
	}
	lam, err := p.parseLambda()
	if err != nil {
		return nil, err
	}
	if paren {
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
	}
	return lam, nil
}

func (p *parser) parseLambda() (*Lambda, error) {
	start := p.cur().pos
	if _, err := p.expect(tokOp, "\\"); err != nil {
		return nil, err
	}
	var params []string
	for p.at(tokIdent, "") {
		params = append(params, p.cur().text)
		p.pos++
	}
	if len(params) == 0 {
		return nil, p.errAt(start, "lambda needs at least one parameter")
	}
	if _, err := p.expect(tokOp, "->"); err != nil {
		return nil, err
	}
	body, err := p.parseExpr(0)
	if err != nil {
		return nil, err
	}
	return &Lambda{base: base{start}, Params: params, Body: body}, nil
}

// parseAtom parses an argument-position atom: identifiers followed by "("
// are calls only for known fn names (resolving the juxtaposition ambiguity
// in skeleton argument lists such as "write o i (map ...)").
func (p *parser) parseAtom() (Expr, error) { return p.parseAtomOpts(false) }

func (p *parser) parseAtomOpts(callJuxt bool) (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokOp && t.text == "-" &&
		(p.peek().kind == tokInt || p.peek().kind == tokFloat):
		// Negative numeric literal in atom position (e.g. fold init -1).
		p.pos++
		e, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		c := e.(*Const)
		v := c.Val
		if v.Kind == vector.F64 {
			v.F = -v.F
		} else {
			v.I = -v.I
		}
		return &Const{base: base{t.pos}, Val: v}, nil

	case t.kind == tokInt:
		p.pos++
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errAt(t.pos, "bad integer literal: %v", err)
		}
		return &Const{base: base{t.pos}, Val: vector.I64Value(i)}, nil

	case t.kind == tokFloat:
		p.pos++
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errAt(t.pos, "bad float literal: %v", err)
		}
		return &Const{base: base{t.pos}, Val: vector.F64Value(f)}, nil

	case t.kind == tokString:
		p.pos++
		return &Const{base: base{t.pos}, Val: vector.StrValue(t.text)}, nil

	case t.kind == tokKeyword && (t.text == "true" || t.text == "false"):
		p.pos++
		return &Const{base: base{t.pos}, Val: vector.BoolValue(t.text == "true")}, nil

	case t.kind == tokIdent:
		p.pos++
		if p.at(tokOp, "(") && p.contiguous() && (callJuxt || p.funcs[t.text]) {
			// user function call f(a, b)
			p.pos++
			var args []Expr
			for !p.at(tokOp, ")") {
				a, err := p.parseExpr(0)
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.eat(tokOp, ",") {
					break
				}
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			return &CallExpr{base: base{t.pos}, Name: t.text, Args: args}, nil
		}
		return &VarRef{base: base{t.pos}, Name: t.text}, nil

	case t.kind == tokOp && t.text == "(":
		p.pos++
		if p.at(tokOp, "\\") {
			lam, err := p.parseLambda()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			return lam, nil
		}
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return e, nil

	case t.kind == tokOp && t.text == "\\":
		return p.parseLambda()

	case t.kind == tokKeyword:
		// Skeletons in atom position (e.g. nested: condense (filter ...)).
		return p.parseSkeletonOrAtom()
	}
	return nil, p.errAt(t.pos, "unexpected token %s", t)
}
