package dsl

import (
	"fmt"
)

// Check validates name resolution and structural rules of a parsed program:
//
//   - variables must be declared (mut/let/param/external) before use;
//     externals is the set of array names the host will bind at run time
//   - := targets must be mutable variables
//   - let must not shadow a mutable variable (the paper separates immutable
//     bindings from mutable state)
//   - break must appear inside a loop
//   - user function calls must resolve and match arity
//   - lambdas passed to skeletons must have the arity the skeleton requires
//
// Check returns all errors found, not just the first.
func Check(p *Program, externals []string) []error {
	c := &checker{prog: p, ext: map[string]bool{}}
	for _, e := range externals {
		c.ext[e] = true
	}
	for _, f := range p.Funcs {
		scope := newScope(nil)
		for _, param := range f.Params {
			scope.declare(param, declLet)
		}
		c.expr(f.Body, scope)
	}
	c.stmts(p.Body, newScope(nil), 0)
	return c.errs
}

type declKind uint8

const (
	declLet declKind = iota
	declMut
)

type scope struct {
	parent *scope
	vars   map[string]declKind
}

func newScope(parent *scope) *scope {
	return &scope{parent: parent, vars: map[string]declKind{}}
}

func (s *scope) declare(name string, k declKind) { s.vars[name] = k }

func (s *scope) lookup(name string) (declKind, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if k, ok := sc.vars[name]; ok {
			return k, true
		}
	}
	return 0, false
}

type checker struct {
	prog *Program
	ext  map[string]bool
	errs []error
}

func (c *checker) errorf(pos Position, format string, args ...any) {
	c.errs = append(c.errs, fmt.Errorf("dsl: %s: %s", pos, fmt.Sprintf(format, args...)))
}

func (c *checker) stmts(stmts []Stmt, sc *scope, loopDepth int) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *MutDecl:
			if _, exists := sc.vars[s.Name]; exists {
				c.errorf(s.P, "redeclaration of %q in the same block", s.Name)
			}
			sc.declare(s.Name, declMut)
		case *Assign:
			k, ok := sc.lookup(s.Name)
			if !ok {
				c.errorf(s.P, "assignment to undeclared variable %q (missing mut?)", s.Name)
			} else if k != declMut {
				c.errorf(s.P, "cannot assign to immutable binding %q", s.Name)
			}
			c.expr(s.Val, sc)
		case *Let:
			c.expr(s.Val, sc)
			if k, ok := sc.lookup(s.Name); ok && k == declMut {
				c.errorf(s.P, "let %q shadows a mutable variable", s.Name)
			}
			sc.declare(s.Name, declLet)
		case *Loop:
			c.stmts(s.Body, newScope(sc), loopDepth+1)
		case *Break:
			if loopDepth == 0 {
				c.errorf(s.P, "break outside loop")
			}
		case *If:
			c.expr(s.Cond, sc)
			c.stmts(s.Then, newScope(sc), loopDepth)
			c.stmts(s.Else, newScope(sc), loopDepth)
		case *WriteStmt:
			if !c.ext[s.Dst] {
				c.errorf(s.P, "write target %q is not a bound external array", s.Dst)
			}
			c.expr(s.At, sc)
			c.expr(s.Val, sc)
		case *ScatterStmt:
			if !c.ext[s.Dst] {
				c.errorf(s.P, "scatter target %q is not a bound external array", s.Dst)
			}
			switch s.Conflict {
			case "", "last", "first", "sum", "min", "max":
			default:
				c.errorf(s.P, "unknown scatter conflict function %q", s.Conflict)
			}
			c.expr(s.Idx, sc)
			c.expr(s.Val, sc)
		case *ExprStmt:
			c.expr(s.E, sc)
		}
	}
}

func (c *checker) lambda(l *Lambda, wantArity int, sc *scope, what string) {
	// Named function reference: resolve and check arity instead.
	if call, ok := l.Body.(*CallExpr); ok && l.Params == nil && len(call.Args) == 0 {
		f, ok := c.prog.Funcs[call.Name]
		if !ok {
			c.errorf(l.P, "%s references undefined function %q", what, call.Name)
			return
		}
		if wantArity > 0 && len(f.Params) != wantArity {
			c.errorf(l.P, "%s requires a %d-ary function, %q has %d parameters", what, wantArity, call.Name, len(f.Params))
		}
		return
	}
	if wantArity > 0 && len(l.Params) != wantArity {
		c.errorf(l.P, "%s requires a %d-ary lambda, got %d parameters", what, wantArity, len(l.Params))
	}
	inner := newScope(sc)
	for _, p := range l.Params {
		inner.declare(p, declLet)
	}
	c.expr(l.Body, inner)
}

func (c *checker) expr(e Expr, sc *scope) {
	switch e := e.(type) {
	case *Const:
	case *VarRef:
		if _, ok := sc.lookup(e.Name); ok {
			return
		}
		if c.ext[e.Name] {
			return
		}
		c.errorf(e.P, "undefined variable %q", e.Name)
	case *Bin:
		c.expr(e.L, sc)
		c.expr(e.R, sc)
	case *Un:
		c.expr(e.E, sc)
	case *Lambda:
		c.lambda(e, -1, sc, "lambda")
	case *CallExpr:
		f, ok := c.prog.Funcs[e.Name]
		if !ok {
			c.errorf(e.P, "call to undefined function %q", e.Name)
		} else if len(e.Args) != len(f.Params) {
			c.errorf(e.P, "function %q takes %d arguments, got %d", e.Name, len(f.Params), len(e.Args))
		}
		for _, a := range e.Args {
			c.expr(a, sc)
		}
	case *LenExpr:
		c.expr(e.E, sc)
	case *CastExpr:
		c.expr(e.E, sc)
	case *ReadExpr:
		c.expr(e.At, sc)
		if !c.ext[e.Data] {
			c.errorf(e.P, "read source %q is not a bound external array", e.Data)
		}
		if e.Count != nil {
			c.expr(e.Count, sc)
		}
	case *MapExpr:
		c.lambda(e.Fn, len(e.Args), sc, "map")
		for _, a := range e.Args {
			c.expr(a, sc)
		}
	case *FilterExpr:
		c.lambda(e.Pred, 1, sc, "filter")
		c.expr(e.Arg, sc)
	case *FoldExpr:
		c.lambda(e.Fn, 2, sc, "fold")
		c.expr(e.Init, sc)
		c.expr(e.Arg, sc)
	case *GatherExpr:
		if !c.ext[e.Data] {
			c.errorf(e.P, "gather source %q is not a bound external array", e.Data)
		}
		c.expr(e.Idx, sc)
	case *GenExpr:
		c.lambda(e.Fn, 1, sc, "gen")
		c.expr(e.Count, sc)
	case *CondenseExpr:
		c.expr(e.E, sc)
	case *MergeExpr:
		c.expr(e.L, sc)
		c.expr(e.R, sc)
	}
}
