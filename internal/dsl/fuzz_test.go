package dsl

import (
	"testing"
)

// FuzzParse fuzzes the DSL front end with two invariants:
//
//  1. Parse never panics — arbitrary bytes either produce a Program or an
//     error.
//  2. Accepted programs survive print → reparse: the canonical surface
//     rendering is itself parseable, and printing again is a fixed point
//     (so the printer and the parser agree on the grammar).
//
// Run with `go test -fuzz=FuzzParse -fuzztime=10s ./internal/dsl`; the
// checked-in seed corpus under testdata/fuzz/FuzzParse (plus the f.Add
// seeds below) runs as part of the regular test suite.
func FuzzParse(f *testing.F) {
	seeds := []string{
		Figure2Source,
		"",
		"let a = map (\\x -> (x + 1)) (read 0 d)\nwrite out 0 a",
		"fn double(x) = (2 * x)\nlet a = map double (read 0 d)\nwrite out 0 (condense (filter (\\x -> (x > 5)) a))",
		"mut n\nn := 0\nloop {\n  n := (n + 1)\n  if (n >= 10) then { break }\n}",
		"let g = gen (\\i -> (i % 7)) 100\nlet m = merge union g g\nscatter d (gen (\\i -> i) 10) m sum",
		"let s = fold (\\acc x -> (acc + x)) 0 (read 0 d 16)",
		"let a = gather d (gen (\\i -> (i * 2)) 8)\nwrite out 0 (map (\\x -> cast<f64>(x)) a)",
		"let x = map (\\a b -> min(a, b)) (read 0 u) (read 0 v)\nwrite out 0 x",
		"if (1 < 2) then { write out 0 3 } else { write out 0 4 }",
		"let a = map (\\x -> abs(-x)) (read 0 d)\nlet b = map (\\x -> sqrt(x)) a\nwrite out 0 b",
		"# comment\nlet a = read 1 d (2 + 3)\nwrite out 0 a",
		"let a = map (\\x -> ((x * 3) % 5)) (read 0 d)\nlet s = fold (\\p q -> max(p, q)) -9 a\nwrite res 0 s",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p1, err := Parse(src)
		if err != nil {
			return // rejected input: only the no-panic property applies
		}
		out1 := p1.String()
		p2, err := Parse(out1)
		if err != nil {
			t.Fatalf("printed program does not reparse: %v\n--- input ---\n%q\n--- printed ---\n%s", err, src, out1)
		}
		if out2 := p2.String(); out1 != out2 {
			t.Fatalf("print is not a fixed point\n--- input ---\n%q\n--- first ---\n%s\n--- second ---\n%s", src, out1, out2)
		}
	})
}
