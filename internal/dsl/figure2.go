package dsl

// Figure2Source is the paper's Figure 2 example program, written in the
// surface syntax this package parses (braces delimit the blocks the figure
// expresses through indentation). It reads some_data (an array of integers)
// and outputs (a) twice the value of each integer into v and (b) those
// doubled values that are bigger than zero, written consecutively into w.
const Figure2Source = `
mut i
mut k
i := 0
k := 0
loop {
  let input = read i some_data in
  let a = map (\x -> 2*x) input in
  let t = filter (\x -> x > 0) a in
  let b = condense t
  write v i a
  write w k b
  i := i + len(a)
  k := k + len(b)
  if i >= 4096 then break
}
`
