// Package dsl implements the paper's domain-specific language (§II): a
// language of data-parallel skeletons (Table I) extended with control flow,
// mutable variables, let bindings and function definitions, exactly the
// feature set the paper motivates for representing relational queries and
// UDFs.
//
// The package provides the AST, a lexer+parser for the Figure-2 surface
// syntax, a scope/arity checker, a pretty printer, and the normalizer that
// lowers programs to the normalized IR (package nir) executed by the VM.
package dsl

import (
	"fmt"
	"strings"

	"repro/internal/vector"
)

// Node is implemented by every AST node.
type Node interface {
	// Pos returns the source position of the node.
	Pos() Position
	node()
}

// Position is a line/column source location.
type Position struct {
	Line, Col int
}

func (p Position) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Expr is implemented by expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Stmt is implemented by statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

type base struct{ P Position }

func (b base) Pos() Position { return b.P }
func (base) node()           {}

// ---------------------------------------------------------------------------
// Expressions

// Const is a literal scalar constant.
type Const struct {
	base
	Val vector.Value
}

// VarRef references a let-bound, mutable, parameter or external variable.
type VarRef struct {
	base
	Name string
}

// BinOp enumerates binary operators usable in expressions and lambdas.
type BinOp uint8

// Binary operators.
const (
	OpInvalid BinOp = iota
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd // bitwise / logical and
	OpOr
	OpXor
	OpShl
	OpShr
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpMin
	OpMax
)

var binOpNames = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpAnd: "&", OpOr: "|", OpXor: "^", OpShl: "<<", OpShr: ">>",
	OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpMin: "min", OpMax: "max",
}

func (op BinOp) String() string {
	if s, ok := binOpNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// IsComparison reports whether the operator yields a boolean.
func (op BinOp) IsComparison() bool {
	switch op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

// Bin is a binary expression. Applied to arrays it is element-wise; applied
// to scalars it is scalar.
type Bin struct {
	base
	Op   BinOp
	L, R Expr
}

// UnOp enumerates unary operators.
type UnOp uint8

// Unary operators.
const (
	UnNeg UnOp = iota + 1
	UnNot
	UnAbs
	UnSqrt
)

func (op UnOp) String() string {
	switch op {
	case UnNeg:
		return "-"
	case UnNot:
		return "!"
	case UnAbs:
		return "abs"
	case UnSqrt:
		return "sqrt"
	}
	return "un?"
}

// Un is a unary expression.
type Un struct {
	base
	Op UnOp
	E  Expr
}

// Lambda is an anonymous function used as a skeleton argument, e.g.
// (\x -> 2*x).
type Lambda struct {
	base
	Params []string
	Body   Expr
}

// CallExpr applies a user-defined function or named builtin to arguments.
type CallExpr struct {
	base
	Name string
	Args []Expr
}

// LenExpr is len(a): the number of (selected) elements in a flow.
type LenExpr struct {
	base
	E Expr
}

// CastExpr converts an array or scalar to another element kind, written
// cast<i32>(e). Inserted by the compact-data-types refinement and available
// in the surface syntax.
type CastExpr struct {
	base
	To vector.Kind
	E  Expr
}

// ---------------------------------------------------------------------------
// Skeleton expressions (Table I)

// ReadExpr reads up to Count consecutive elements from position Pos of the
// external array Data. Count nil means "one chunk" (vector.DefaultChunkLen).
type ReadExpr struct {
	base
	At    Expr
	Data  string
	Count Expr // optional
}

// MapExpr applies Fn element-wise to the argument flows.
type MapExpr struct {
	base
	Fn   *Lambda
	Args []Expr
}

// FilterExpr computes a selection vector over Arg using predicate Pred. The
// result is the same flow with a (narrowed) selection vector; the data is not
// physically modified (Table I note).
type FilterExpr struct {
	base
	Pred *Lambda
	Arg  Expr
}

// FoldExpr reduces Arg using reduction function Fn and initial value Init.
type FoldExpr struct {
	base
	Fn   *Lambda
	Init Expr
	Arg  Expr
}

// GatherExpr reads Data at the positions given by Idx.
type GatherExpr struct {
	base
	Data string
	Idx  Expr
}

// GenExpr fills an array of length Count using Fn applied to 0..Count-1.
type GenExpr struct {
	base
	Fn    *Lambda
	Count Expr
}

// CondenseExpr eliminates the selection vector from Arg, materializing the
// selected elements contiguously.
type CondenseExpr struct {
	base
	E Expr
}

// MergeKind selects the merge flavor of the abstract merge skeleton.
type MergeKind uint8

// Merge flavors.
const (
	MergeJoin MergeKind = iota + 1
	MergeUnion
	MergeDiff
	MergeIntersect
)

func (k MergeKind) String() string {
	switch k {
	case MergeJoin:
		return "join"
	case MergeUnion:
		return "union"
	case MergeDiff:
		return "diff"
	case MergeIntersect:
		return "intersect"
	}
	return "merge?"
}

// MergeExpr is the abstract merge skeleton over two sorted flows. MergeJoin
// yields matching L positions paired with R positions (two index arrays are
// produced when bound with let pairs; in expression position it yields the
// matched L values).
type MergeExpr struct {
	base
	Kind MergeKind
	L, R Expr
}

func (*Const) exprNode()        {}
func (*VarRef) exprNode()       {}
func (*Bin) exprNode()          {}
func (*Un) exprNode()           {}
func (*Lambda) exprNode()       {}
func (*CallExpr) exprNode()     {}
func (*LenExpr) exprNode()      {}
func (*CastExpr) exprNode()     {}
func (*ReadExpr) exprNode()     {}
func (*MapExpr) exprNode()      {}
func (*FilterExpr) exprNode()   {}
func (*FoldExpr) exprNode()     {}
func (*GatherExpr) exprNode()   {}
func (*GenExpr) exprNode()      {}
func (*CondenseExpr) exprNode() {}
func (*MergeExpr) exprNode()    {}

// ---------------------------------------------------------------------------
// Statements

// MutDecl declares a mutable variable: mut i.
type MutDecl struct {
	base
	Name string
}

// Assign updates a mutable variable: i := expr.
type Assign struct {
	base
	Name string
	Val  Expr
}

// Let introduces an immutable binding scoped to the remainder of the
// enclosing block: let a = expr [in].
type Let struct {
	base
	Name string
	Val  Expr
}

// Loop executes its body forever until a break.
type Loop struct {
	base
	Body []Stmt
}

// Break terminates the innermost loop.
type Break struct {
	base
}

// If executes Then when Cond is true (scalar boolean), else Else.
type If struct {
	base
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// WriteStmt writes flow Val consecutively into external array Dst at
// position Pos (Table I write skeleton, used in statement position).
type WriteStmt struct {
	base
	Dst string
	At  Expr
	Val Expr
}

// ScatterStmt writes Val to positions Idx of Dst. Conflict selects the
// conflict-handling function by name ("last", "sum", "min", "max").
type ScatterStmt struct {
	base
	Dst      string
	Idx      Expr
	Val      Expr
	Conflict string
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	base
	E Expr
}

func (*MutDecl) stmtNode()     {}
func (*Assign) stmtNode()      {}
func (*Let) stmtNode()         {}
func (*Loop) stmtNode()        {}
func (*Break) stmtNode()       {}
func (*If) stmtNode()          {}
func (*WriteStmt) stmtNode()   {}
func (*ScatterStmt) stmtNode() {}
func (*ExprStmt) stmtNode()    {}

// FuncDef is a named function definition.
type FuncDef struct {
	base
	Name   string
	Params []string
	Body   Expr
}

// Program is a parsed DSL program: function definitions plus a top-level
// statement list.
type Program struct {
	Funcs map[string]*FuncDef
	Body  []Stmt
}

// Externals returns the names of external arrays referenced by read, write,
// gather and scatter skeletons, in first-use order.
func (p *Program) Externals() []string {
	seen := map[string]bool{}
	var out []string
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	var walkExpr func(Expr)
	var walkStmts func([]Stmt)
	walkExpr = func(e Expr) {
		switch e := e.(type) {
		case *ReadExpr:
			walkExpr(e.At)
			add(e.Data)
			if e.Count != nil {
				walkExpr(e.Count)
			}
		case *GatherExpr:
			add(e.Data)
			walkExpr(e.Idx)
		case *Bin:
			walkExpr(e.L)
			walkExpr(e.R)
		case *Un:
			walkExpr(e.E)
		case *CallExpr:
			for _, a := range e.Args {
				walkExpr(a)
			}
		case *LenExpr:
			walkExpr(e.E)
		case *CastExpr:
			walkExpr(e.E)
		case *MapExpr:
			for _, a := range e.Args {
				walkExpr(a)
			}
		case *FilterExpr:
			walkExpr(e.Arg)
		case *FoldExpr:
			walkExpr(e.Init)
			walkExpr(e.Arg)
		case *GenExpr:
			walkExpr(e.Count)
		case *CondenseExpr:
			walkExpr(e.E)
		case *MergeExpr:
			walkExpr(e.L)
			walkExpr(e.R)
		}
	}
	walkStmts = func(stmts []Stmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *Assign:
				walkExpr(s.Val)
			case *Let:
				walkExpr(s.Val)
			case *Loop:
				walkStmts(s.Body)
			case *If:
				walkExpr(s.Cond)
				walkStmts(s.Then)
				walkStmts(s.Else)
			case *WriteStmt:
				add(s.Dst)
				walkExpr(s.At)
				walkExpr(s.Val)
			case *ScatterStmt:
				add(s.Dst)
				walkExpr(s.Idx)
				walkExpr(s.Val)
			case *ExprStmt:
				walkExpr(s.E)
			}
		}
	}
	walkStmts(p.Body)
	for _, f := range p.Funcs {
		walkExpr(f.Body)
	}
	return out
}

// String renders the program in surface syntax (see print.go for the
// formatter implementation).
func (p *Program) String() string {
	var sb strings.Builder
	Fprint(&sb, p)
	return sb.String()
}
