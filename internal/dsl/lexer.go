package dsl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind identifies the lexical class of a token.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokFloat
	tokString
	tokOp      // operators and punctuation
	tokKeyword // reserved words
)

var keywords = map[string]bool{
	"mut": true, "let": true, "in": true, "loop": true, "break": true,
	"if": true, "then": true, "else": true, "fn": true,
	"read": true, "write": true, "map": true, "filter": true, "fold": true,
	"gather": true, "scatter": true, "gen": true, "condense": true,
	"merge": true, "len": true, "cast": true, "true": true, "false": true,
	"min": true, "max": true, "abs": true, "sqrt": true,
}

// token is one lexical token with its source position.
type token struct {
	kind tokKind
	text string
	pos  Position
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer turns DSL source text into tokens.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (lx *lexer) errorf(pos Position, format string, args ...any) error {
	return fmt.Errorf("dsl: %s: %s", pos, fmt.Sprintf(format, args...))
}

func (lx *lexer) peekByte() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) skipSpaceAndComments() {
	for lx.off < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '#':
			for lx.off < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case c == '-' && lx.off+1 < len(lx.src) && lx.src[lx.off+1] == '-':
			// Haskell-style comment, to match the paper's lambda notation.
			for lx.off < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		default:
			return
		}
	}
}

// multi-character operators, longest first.
var multiOps = []string{"==", "!=", "<=", ">=", "<<", ">>", ":=", "->", "&&", "||"}

// next returns the next token.
func (lx *lexer) next() (token, error) {
	lx.skipSpaceAndComments()
	pos := Position{lx.line, lx.col}
	if lx.off >= len(lx.src) {
		return token{kind: tokEOF, pos: pos}, nil
	}
	c := lx.peekByte()

	// identifiers and keywords
	if unicode.IsLetter(rune(c)) || c == '_' {
		start := lx.off
		for lx.off < len(lx.src) {
			c := lx.peekByte()
			if unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == '_' {
				lx.advance()
				continue
			}
			break
		}
		text := lx.src[start:lx.off]
		if keywords[text] {
			return token{kind: tokKeyword, text: text, pos: pos}, nil
		}
		return token{kind: tokIdent, text: text, pos: pos}, nil
	}

	// numbers
	if unicode.IsDigit(rune(c)) {
		start := lx.off
		isFloat := false
		for lx.off < len(lx.src) {
			c := lx.peekByte()
			if unicode.IsDigit(rune(c)) || c == '_' {
				lx.advance()
				continue
			}
			if c == '.' && !isFloat && lx.off+1 < len(lx.src) && unicode.IsDigit(rune(lx.src[lx.off+1])) {
				isFloat = true
				lx.advance()
				continue
			}
			if (c == 'e' || c == 'E') && lx.off+1 < len(lx.src) {
				nxt := lx.src[lx.off+1]
				if unicode.IsDigit(rune(nxt)) || nxt == '+' || nxt == '-' {
					isFloat = true
					lx.advance() // e
					lx.advance() // sign or digit
					continue
				}
			}
			break
		}
		text := strings.ReplaceAll(lx.src[start:lx.off], "_", "")
		if isFloat {
			return token{kind: tokFloat, text: text, pos: pos}, nil
		}
		return token{kind: tokInt, text: text, pos: pos}, nil
	}

	// strings
	if c == '"' {
		// Scan the raw literal (backslash escapes the next byte) and decode
		// it with Go's string syntax, so everything the canonical printer
		// emits via strconv.Quote — \xNN, \uNNNN, … — round-trips.
		start := lx.off
		lx.advance()
		for {
			if lx.off >= len(lx.src) {
				return token{}, lx.errorf(pos, "unterminated string literal")
			}
			ch := lx.advance()
			if ch == '"' {
				break
			}
			if ch == '\n' {
				return token{}, lx.errorf(pos, "newline in string literal")
			}
			if ch == '\\' {
				if lx.off >= len(lx.src) {
					return token{}, lx.errorf(pos, "unterminated escape")
				}
				lx.advance()
			}
		}
		text, err := strconv.Unquote(lx.src[start:lx.off])
		if err != nil {
			return token{}, lx.errorf(pos, "bad string literal: %v", err)
		}
		return token{kind: tokString, text: text, pos: pos}, nil
	}

	// multi-char operators
	for _, op := range multiOps {
		if strings.HasPrefix(lx.src[lx.off:], op) {
			for range op {
				lx.advance()
			}
			return token{kind: tokOp, text: op, pos: pos}, nil
		}
	}

	// single-char operators / punctuation
	switch c {
	case '+', '-', '*', '/', '%', '&', '|', '^', '<', '>', '=', '(', ')', '{', '}', ',', '\\', '!', '[', ']':
		lx.advance()
		return token{kind: tokOp, text: string(c), pos: pos}, nil
	}
	return token{}, lx.errorf(pos, "unexpected character %q", c)
}

// lexAll tokenizes the whole input (used by the parser, which buffers).
func lexAll(src string) ([]token, error) {
	lx := newLexer(src)
	var toks []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
