package depgraph

import (
	"strings"
	"testing"

	"repro/internal/dsl"
	"repro/internal/interp"
	"repro/internal/nir"
	"repro/internal/profile"
	"repro/internal/vector"
)

// figure2Segment returns the loop-body segment of the normalized Figure 2
// program (the graph Figure 3 depicts).
func figure2Segment(t *testing.T) ([]*nir.Instr, *nir.Program) {
	t.Helper()
	prog := dsl.MustParse(dsl.Figure2Source)
	np, err := nir.Normalize(prog, map[string]vector.Kind{
		"some_data": vector.I64, "v": vector.I64, "w": vector.I64,
	})
	if err != nil {
		t.Fatal(err)
	}
	it := interp.New(np)
	// The loop body's first (large) segment holds read..write..len glue.
	var best *interp.Segment
	for _, seg := range it.Segments {
		if best == nil || len(seg.Instrs) > len(best.Instrs) {
			best = seg
		}
	}
	return best.Instrs, np
}

func TestBuildFigure2Graph(t *testing.T) {
	seg, _ := figure2Segment(t)
	g := Build(seg, nil)
	if len(g.Nodes) != len(seg) {
		t.Fatalf("nodes = %d, want %d", len(g.Nodes), len(seg))
	}
	// Locate the characteristic ops.
	find := func(op nir.OpCode) *Node {
		for _, n := range g.Nodes {
			if n.Instr.Op == op {
				return n
			}
		}
		return nil
	}
	read := find(nir.OpRead)
	mapMul := find(nir.OpMapBin)
	sel := find(nir.OpSelectCmp)
	cond := find(nir.OpCondense)
	if read == nil || mapMul == nil || sel == nil || cond == nil {
		t.Fatalf("missing expected ops in graph:\n%s", Dot(g, nil))
	}
	// map depends on read; select on map; condense on select.
	depends := func(n *Node, on *Node) bool {
		for _, d := range n.Deps {
			if d == on.Index {
				return true
			}
		}
		return false
	}
	if !depends(mapMul, read) {
		t.Error("map *2 must depend on read")
	}
	if !depends(sel, mapMul) {
		t.Error("filter must depend on map")
	}
	if !depends(cond, sel) {
		t.Error("condense must depend on filter")
	}
}

// TestPartitionReproducesFigure3: the greedy partitioner with the paper's
// heuristic constraints must split the Figure-2 loop body into two compiled
// functions — one covering read→map(×2)→write v, the other condense→write w —
// with the filter excluded from both (interpreted between them), exactly the
// shape of Figure 3.
func TestPartitionReproducesFigure3(t *testing.T) {
	seg, _ := figure2Segment(t)
	g := Build(seg, nil)
	frags := Partition(g, DefaultConstraints())
	if len(frags) != 2 {
		t.Fatalf("fragments = %d, want 2 (Figure 3)\n%s", len(frags), Dot(g, frags))
	}
	opsOf := func(f *Fragment) map[nir.OpCode]int {
		m := map[nir.OpCode]int{}
		for _, n := range f.Nodes {
			m[g.Nodes[n].Instr.Op]++
		}
		return m
	}
	// Identify which fragment holds the read+map and which the condense.
	var fMap, fCond *Fragment
	for _, f := range frags {
		ops := opsOf(f)
		if ops[nir.OpMapBin] > 0 {
			fMap = f
		}
		if ops[nir.OpCondense] > 0 {
			fCond = f
		}
	}
	if fMap == nil || fCond == nil || fMap == fCond {
		t.Fatalf("expected one map-side and one condense-side fragment:\n%s", Dot(g, frags))
	}
	mapOps := opsOf(fMap)
	if mapOps[nir.OpRead] != 1 || mapOps[nir.OpMapBin] != 1 || mapOps[nir.OpWrite] != 1 {
		t.Errorf("map-side fragment should be read+map+write, got %v", mapOps)
	}
	condOps := opsOf(fCond)
	if condOps[nir.OpCondense] != 1 || condOps[nir.OpWrite] != 1 {
		t.Errorf("condense-side fragment should be condense+write, got %v", condOps)
	}
	// The filter must be in neither (heuristic: no filters inside functions).
	for _, f := range frags {
		if opsOf(f)[nir.OpSelectCmp] > 0 || opsOf(f)[nir.OpSelect] > 0 {
			t.Error("filter must not be fused into a compiled function")
		}
	}
}

func TestPartitionRespectsMaxInputs(t *testing.T) {
	// A wide expression with many independent reads: a+b+c+...+h. With
	// MaxInputs=3 no fragment may touch more than 3 inputs+externals.
	src := `
let a = read 0 d1 8
let b = read 0 d2 8
let c = read 0 d3 8
let d = read 0 d4 8
let s = map (\x y -> x + y) a b
let t = map (\x y -> x + y) c d
let u = map (\x y -> x + y) s t
write out 0 u
`
	prog := dsl.MustParse(src)
	kinds := map[string]vector.Kind{}
	for _, e := range []string{"d1", "d2", "d3", "d4", "out"} {
		kinds[e] = vector.I64
	}
	np, err := nir.Normalize(prog, kinds)
	if err != nil {
		t.Fatal(err)
	}
	it := interp.New(np)
	seg := it.Segments[0].Instrs
	g := Build(seg, nil)

	c := DefaultConstraints()
	c.MaxInputs = 3
	frags := Partition(g, c)
	if len(frags) < 2 {
		t.Fatalf("tight input budget must split the graph, got %d fragments", len(frags))
	}
	for _, f := range frags {
		if got := len(f.Inputs) + len(f.Externals); got > 3 {
			t.Errorf("fragment exceeds input budget: %d > 3 (%s)", got, f)
		}
	}

	// With a generous budget the whole (fusable part of the) graph fuses.
	c.MaxInputs = 16
	c.MaxNodes = 32
	frags = Partition(g, c)
	if len(frags) != 1 {
		t.Errorf("generous budget should yield one fragment, got %d", len(frags))
	}
}

func TestPartitionConvexity(t *testing.T) {
	// map → filter (unfusable) → map: the two maps must not end up in the
	// same fragment because the filter lies on the path between them.
	src := `
let a = read 0 d 8
let b = map (\x -> x + 1) a
let f = filter (\x -> x > 2) b
let c = map (\x -> x * 3) f
write out 0 (condense c)
`
	prog := dsl.MustParse(src)
	np, err := nir.Normalize(prog, map[string]vector.Kind{"d": vector.I64, "out": vector.I64})
	if err != nil {
		t.Fatal(err)
	}
	it := interp.New(np)
	g := Build(it.Segments[0].Instrs, nil)
	frags := Partition(g, DefaultConstraints())
	for _, f := range frags {
		hasAdd, hasMul := false, false
		for _, n := range f.Nodes {
			in := g.Nodes[n].Instr
			if in.Op == nir.OpMapBin && in.Arith == nir.AAdd {
				hasAdd = true
			}
			if in.Op == nir.OpMapBin && in.Arith == nir.AMul {
				hasMul = true
			}
		}
		if hasAdd && hasMul {
			t.Fatalf("non-convex fragment fuses across the filter:\n%s", Dot(g, frags))
		}
	}
}

func TestScheduleContiguousAndComplete(t *testing.T) {
	seg, _ := figure2Segment(t)
	g := Build(seg, nil)
	frags := Partition(g, DefaultConstraints())
	units, err := Schedule(g, frags)
	if err != nil {
		t.Fatal(err)
	}
	// Every node appears exactly once, and dependencies are respected.
	pos := make([]int, len(g.Nodes))
	for i := range pos {
		pos[i] = -1
	}
	cursor := 0
	for _, u := range units {
		if u.Fragment != nil {
			for _, n := range u.Fragment.Nodes {
				if pos[n] != -1 {
					t.Fatalf("node %d scheduled twice", n)
				}
				pos[n] = cursor
				cursor++
			}
		} else {
			if pos[u.Node] != -1 {
				t.Fatalf("node %d scheduled twice", u.Node)
			}
			pos[u.Node] = cursor
			cursor++
		}
	}
	for i, p := range pos {
		if p == -1 {
			t.Fatalf("node %d not scheduled", i)
		}
		for _, d := range g.Nodes[i].Deps {
			if pos[d] > p {
				t.Fatalf("dependency violated: node %d (pos %d) before its dep %d (pos %d)", i, p, d, pos[d])
			}
		}
	}
}

func TestProfileDrivenCosts(t *testing.T) {
	seg, np := figure2Segment(t)
	_ = np
	// Fake a profile where the condense op dominates.
	prof := profileWith(t, seg)
	g := Build(seg, prof)
	var condIdx int
	for i, n := range g.Nodes {
		if n.Instr.Op == nir.OpCondense {
			condIdx = i
		}
	}
	for i, n := range g.Nodes {
		if i != condIdx && n.Cost >= g.Nodes[condIdx].Cost {
			t.Fatalf("condense should be the most expensive node under this profile")
		}
	}
}

func profileWith(t *testing.T, seg []*nir.Instr) *profile.Profile {
	t.Helper()
	maxID := 0
	for _, in := range seg {
		if in.ID > maxID {
			maxID = in.ID
		}
	}
	p := profile.New(maxID + 1)
	for _, in := range seg {
		ns := int64(100)
		if in.Op == nir.OpCondense {
			ns = 100000
		}
		p.Record(in.ID, 1024, ns)
	}
	return p
}

func TestDotOutput(t *testing.T) {
	seg, _ := figure2Segment(t)
	g := Build(seg, nil)
	frags := Partition(g, DefaultConstraints())
	dot := Dot(g, frags)
	if !strings.Contains(dot, "cluster_0") || !strings.Contains(dot, "->") {
		t.Errorf("dot output incomplete:\n%s", dot)
	}
}
