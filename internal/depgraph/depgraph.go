// Package depgraph builds the dependency graph of a straight-line segment
// and partitions it into compilable fragments using the paper's greedy
// algorithm (§III-B):
//
//	"we propose to greedily partition the dependency graph. Starting with an
//	initially empty set of functions R, we go over the graph and select the
//	most expensive node (operation). From this node we greedily add neighbor
//	nodes until one of our heuristic constraints is violated. [...]
//	Afterwards, we go to the next expensive (unvisited) node and do the same."
//
// The heuristic constraints are the paper's:
//
//   - at most MaxInputs inputs/intermediates per function, a budget derived
//     from the TLB size ("This prevents TLB thrashing in the generated
//     functions");
//   - some operations are never included, "such as filters" (they restrict
//     branch mispredictions and keep selection-vector computation in the
//     interpreter) and complex string operations.
//
// Fragments are additionally kept convex so each can run as one contiguous
// unit in a dependency-respecting schedule.
package depgraph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/nir"
	"repro/internal/profile"
)

// Node is one operation in the dependency graph.
type Node struct {
	Instr *nir.Instr
	Index int   // position within the segment
	Deps  []int // indexes of nodes this node reads from
	Users []int // indexes of nodes reading this node's output
	Cost  float64
}

// Graph is the dependency graph of one straight-line segment (Figure 3 shows
// the graph of the Figure-2 loop body).
type Graph struct {
	Nodes []*Node
}

// staticCost estimates per-tuple cost when no profile data exists yet. The
// numbers are relative weights, not nanoseconds.
func staticCost(in *nir.Instr) float64 {
	switch in.Op {
	case nir.OpMapBin, nir.OpMapCmp:
		return 1.0
	case nir.OpMapUn:
		if in.Unary == nir.USqrt {
			return 3.0
		}
		return 0.8
	case nir.OpCast:
		return 0.6
	case nir.OpSelect, nir.OpSelectCmp:
		return 1.2
	case nir.OpRead:
		return 0.4
	case nir.OpWrite:
		return 0.5
	case nir.OpGather, nir.OpScatter:
		return 2.5
	case nir.OpCondense:
		return 0.8
	case nir.OpFold:
		return 1.0
	case nir.OpMerge:
		return 4.0
	case nir.OpIota:
		return 0.3
	default: // scalar glue
		return 0.01
	}
}

// Build constructs the dependency graph of a segment. When prof is non-nil,
// node costs come from observed per-instruction time; otherwise static
// estimates are used. Register dataflow creates edges; accesses to the same
// external array are serialized writer→reader and writer→writer to preserve
// memory order.
func Build(segment []*nir.Instr, prof *profile.Profile) *Graph {
	g := &Graph{}
	lastDef := map[nir.Reg]int{}     // reg → node index that defined it
	lastExtWrite := map[string]int{} // external → last writer
	extReaders := map[string][]int{} // external → readers since last write

	addDep := func(n *Node, dep int) {
		for _, d := range n.Deps {
			if d == dep {
				return
			}
		}
		n.Deps = append(n.Deps, dep)
		g.Nodes[dep].Users = append(g.Nodes[dep].Users, n.Index)
	}

	for idx, in := range segment {
		n := &Node{Instr: in, Index: idx, Cost: staticCost(in)}
		if prof != nil && prof.Nanos(in.ID) > 0 {
			n.Cost = float64(prof.Nanos(in.ID))
		}
		g.Nodes = append(g.Nodes, n)
		for _, r := range in.Uses() {
			if d, ok := lastDef[r]; ok {
				addDep(n, d)
			}
		}
		if in.Data != "" {
			switch in.Op {
			case nir.OpRead, nir.OpGather:
				if w, ok := lastExtWrite[in.Data]; ok {
					addDep(n, w)
				}
				extReaders[in.Data] = append(extReaders[in.Data], idx)
			case nir.OpWrite, nir.OpScatter:
				if w, ok := lastExtWrite[in.Data]; ok {
					addDep(n, w)
				}
				for _, r := range extReaders[in.Data] {
					addDep(n, r)
				}
				extReaders[in.Data] = nil
				lastExtWrite[in.Data] = idx
			}
		}
		if in.Dst != nir.NoReg {
			lastDef[in.Dst] = idx
		}
	}
	return g
}

// Constraints are the partitioner's heuristic limits.
type Constraints struct {
	// MaxInputs bounds distinct inputs+intermediates a fragment may touch
	// (the TLB-derived budget). Counted as: external arrays accessed plus
	// registers flowing in from outside the fragment.
	MaxInputs int
	// MaxNodes bounds fragment size (0 = unlimited). Compilation effort
	// grows with code size; this is the "threshold" at which partitioning
	// stops growing a function.
	MaxNodes int
	// Fusable decides whether an operation may live inside a compiled
	// fragment at all. Nil means DefaultFusable.
	Fusable func(*nir.Instr) bool
	// MinSeedCost: nodes cheaper than this never seed a fragment (scalar
	// glue is interpreted).
	MinSeedCost float64
}

// DefaultConstraints returns the paper-faithful configuration: an 8-entry
// input budget (a handful of 4 KiB pages under a typical 64-entry L1 TLB
// leaves room for the chunk intermediates), no filters or merges inside
// fragments.
func DefaultConstraints() Constraints {
	return Constraints{MaxInputs: 8, MaxNodes: 16, Fusable: DefaultFusable, MinSeedCost: 0.05}
}

// DefaultFusable excludes the operations the paper keeps out of generated
// functions: filters (selection-vector computation), the complex merge
// skeleton, scatters (conflict handling), and scalar control glue.
func DefaultFusable(in *nir.Instr) bool {
	switch in.Op {
	case nir.OpSelect, nir.OpSelectCmp, nir.OpMerge, nir.OpScatter:
		return false
	case nir.OpConst, nir.OpBinS, nir.OpUnS, nir.OpLen, nir.OpMove:
		return false // scalar glue stays interpreted
	case nir.OpMapBin, nir.OpMapCmp, nir.OpMapUn, nir.OpCast,
		nir.OpRead, nir.OpWrite, nir.OpGather, nir.OpIota,
		nir.OpCondense, nir.OpFold:
		return true
	}
	return false
}

// Fragment is one compilable function found by the partitioner: a convex,
// connected set of fusable nodes.
type Fragment struct {
	// Nodes lists member node indexes in dependency (topological) order.
	Nodes []int
	// Inputs are registers read by the fragment but defined outside it.
	Inputs []nir.Reg
	// Outputs are registers defined inside and visible outside (used by
	// later instructions or live at segment end).
	Outputs []nir.Reg
	// Externals are the external arrays the fragment touches.
	Externals []string
	// Cost is the summed node cost.
	Cost float64
}

// InstrIDs returns the nir instruction IDs of the fragment members.
func (f *Fragment) InstrIDs(g *Graph) []int {
	ids := make([]int, len(f.Nodes))
	for i, n := range f.Nodes {
		ids[i] = g.Nodes[n].Instr.ID
	}
	return ids
}

// String renders the fragment for reports.
func (f *Fragment) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fragment(cost=%.1f, nodes=%v, inputs=%d, ext=%v)", f.Cost, f.Nodes, len(f.Inputs), f.Externals)
	return sb.String()
}

// Partition runs the greedy algorithm and returns the fragments, most
// expensive first. Nodes not covered by any fragment remain interpreted.
func Partition(g *Graph, c Constraints) []*Fragment {
	if c.Fusable == nil {
		c.Fusable = DefaultFusable
	}
	visited := make([]bool, len(g.Nodes))
	var frags []*Fragment

	for {
		seed := -1
		var seedCost float64
		for i, n := range g.Nodes {
			if visited[i] || !c.Fusable(n.Instr) || n.Cost < c.MinSeedCost {
				continue
			}
			if seed < 0 || n.Cost > seedCost {
				seed = i
				seedCost = n.Cost
			}
		}
		if seed < 0 {
			break
		}

		members := map[int]bool{seed: true}
		visited[seed] = true
		for {
			// Candidate neighbors: fusable, unvisited, adjacent to the
			// fragment, ordered by cost.
			var cands []int
			for m := range members {
				for _, nb := range append(append([]int{}, g.Nodes[m].Deps...), g.Nodes[m].Users...) {
					if !visited[nb] && c.Fusable(g.Nodes[nb].Instr) && !members[nb] {
						cands = append(cands, nb)
					}
				}
			}
			if len(cands) == 0 {
				break
			}
			sort.Slice(cands, func(a, b int) bool { return g.Nodes[cands[a]].Cost > g.Nodes[cands[b]].Cost })
			added := false
			for _, cand := range cands {
				if members[cand] {
					continue
				}
				members[cand] = true
				if fragmentOK(g, members, c) {
					visited[cand] = true
					added = true
					break
				}
				delete(members, cand)
			}
			if !added {
				break
			}
		}
		frags = append(frags, makeFragment(g, members))
	}
	sort.Slice(frags, func(a, b int) bool { return frags[a].Cost > frags[b].Cost })
	return frags
}

// fragmentOK checks the heuristic constraints and convexity.
func fragmentOK(g *Graph, members map[int]bool, c Constraints) bool {
	if c.MaxNodes > 0 && len(members) > c.MaxNodes {
		return false
	}
	inputs, _, exts := fragmentIO(g, members)
	if c.MaxInputs > 0 && len(inputs)+len(exts) > c.MaxInputs {
		return false
	}
	return isConvex(g, members)
}

// isConvex reports whether no dependency path leaves the fragment and
// re-enters it (required to schedule the fragment as one unit).
func isConvex(g *Graph, members map[int]bool) bool {
	// From every non-member reachable from a member, check whether a member
	// is reachable again.
	reachesMember := make([]int8, len(g.Nodes)) // 0 unknown, 1 yes, -1 no
	var canReachMember func(i int) bool
	canReachMember = func(i int) bool {
		if members[i] {
			return true
		}
		switch reachesMember[i] {
		case 1:
			return true
		case -1:
			return false
		}
		reachesMember[i] = -1 // guard against cycles (none exist in a DAG)
		for _, u := range g.Nodes[i].Users {
			if canReachMember(u) {
				reachesMember[i] = 1
				return true
			}
		}
		return false
	}
	for m := range members {
		for _, u := range g.Nodes[m].Users {
			if !members[u] && canReachMember(u) {
				return false
			}
		}
	}
	return true
}

func fragmentIO(g *Graph, members map[int]bool) (inputs, outputs []nir.Reg, exts []string) {
	inSet := map[nir.Reg]bool{}
	outSet := map[nir.Reg]bool{}
	extSet := map[string]bool{}
	defined := map[nir.Reg]bool{}
	for m := range members {
		if d := g.Nodes[m].Instr.Dst; d != nir.NoReg {
			defined[d] = true
		}
		if g.Nodes[m].Instr.Data != "" {
			extSet[g.Nodes[m].Instr.Data] = true
		}
	}
	for m := range members {
		for _, r := range g.Nodes[m].Instr.Uses() {
			if !defined[r] {
				inSet[r] = true
			}
		}
		// Outputs: defined in fragment, used by a non-member or by nobody
		// (live-out conservatively).
		d := g.Nodes[m].Instr.Dst
		if d == nir.NoReg {
			continue
		}
		escapes := len(g.Nodes[m].Users) == 0
		for _, u := range g.Nodes[m].Users {
			if !members[u] {
				escapes = true
			}
		}
		if escapes {
			outSet[d] = true
		}
	}
	for r := range inSet {
		inputs = append(inputs, r)
	}
	for r := range outSet {
		outputs = append(outputs, r)
	}
	for e := range extSet {
		exts = append(exts, e)
	}
	sort.Slice(inputs, func(a, b int) bool { return inputs[a] < inputs[b] })
	sort.Slice(outputs, func(a, b int) bool { return outputs[a] < outputs[b] })
	sort.Strings(exts)
	return inputs, outputs, exts
}

func makeFragment(g *Graph, members map[int]bool) *Fragment {
	f := &Fragment{}
	for i := range g.Nodes {
		if members[i] {
			f.Nodes = append(f.Nodes, i)
			f.Cost += g.Nodes[i].Cost
		}
	}
	// Order members topologically (segment order is already topological).
	sort.Ints(f.Nodes)
	f.Inputs, f.Outputs, f.Externals = fragmentIO(g, members)
	return f
}

// Schedule produces an execution order for the segment in which every
// fragment is contiguous and all dependencies are respected. The result is a
// list of units; each unit is either a single node index (fragment == nil)
// or a whole fragment.
type Unit struct {
	Fragment *Fragment
	Node     int // valid when Fragment == nil
}

// Schedule contracts fragments to super-nodes and topologically sorts.
func Schedule(g *Graph, frags []*Fragment) ([]Unit, error) {
	fragOf := make([]int, len(g.Nodes))
	for i := range fragOf {
		fragOf[i] = -1
	}
	for fi, f := range frags {
		for _, n := range f.Nodes {
			fragOf[n] = fi
		}
	}
	// Super-node ids: fragments get 0..len(frags)-1; singleton node i gets
	// len(frags)+i.
	super := func(n int) int {
		if fragOf[n] >= 0 {
			return fragOf[n]
		}
		return len(frags) + n
	}
	total := len(frags) + len(g.Nodes)
	adj := make(map[int]map[int]bool, total)
	indeg := make(map[int]int, total)
	nodesOf := map[int][]int{}
	for i := range g.Nodes {
		s := super(i)
		nodesOf[s] = append(nodesOf[s], i)
		if _, ok := adj[s]; !ok {
			adj[s] = map[int]bool{}
			indeg[s] += 0
		}
	}
	for i, n := range g.Nodes {
		si := super(i)
		for _, d := range n.Deps {
			sd := super(d)
			if sd == si || adj[sd][si] {
				continue
			}
			adj[sd][si] = true
			indeg[si]++
		}
	}
	// Kahn's algorithm with deterministic order (smallest first-node).
	var ready []int
	for s := range adj {
		if indeg[s] == 0 {
			ready = append(ready, s)
		}
	}
	var order []Unit
	for len(ready) > 0 {
		sort.Slice(ready, func(a, b int) bool { return minNode(nodesOf[ready[a]]) < minNode(nodesOf[ready[b]]) })
		s := ready[0]
		ready = ready[1:]
		if s < len(frags) {
			order = append(order, Unit{Fragment: frags[s]})
		} else {
			order = append(order, Unit{Fragment: nil, Node: s - len(frags)})
		}
		for t := range adj[s] {
			indeg[t]--
			if indeg[t] == 0 {
				ready = append(ready, t)
			}
		}
		delete(adj, s)
	}
	scheduled := 0
	for _, u := range order {
		if u.Fragment != nil {
			scheduled += len(u.Fragment.Nodes)
		} else {
			scheduled++
		}
	}
	if scheduled != len(g.Nodes) {
		return nil, fmt.Errorf("depgraph: schedule covered %d of %d nodes (cycle through a fragment?)", scheduled, len(g.Nodes))
	}
	return order, nil
}

func minNode(ns []int) int {
	m := ns[0]
	for _, n := range ns {
		if n < m {
			m = n
		}
	}
	return m
}

// Dot renders the graph in Graphviz format with fragments as clusters, used
// by the Figure-3 report in advm-bench.
func Dot(g *Graph, frags []*Fragment) string {
	var sb strings.Builder
	sb.WriteString("digraph depgraph {\n  rankdir=BT;\n")
	fragOf := make([]int, len(g.Nodes))
	for i := range fragOf {
		fragOf[i] = -1
	}
	for fi, f := range frags {
		for _, n := range f.Nodes {
			fragOf[n] = fi
		}
	}
	for fi, f := range frags {
		fmt.Fprintf(&sb, "  subgraph cluster_%d {\n    label=\"function %d\";\n", fi, fi+1)
		for _, n := range f.Nodes {
			fmt.Fprintf(&sb, "    n%d [label=%q];\n", n, g.Nodes[n].Instr.String())
		}
		sb.WriteString("  }\n")
	}
	for i, n := range g.Nodes {
		if fragOf[i] < 0 {
			fmt.Fprintf(&sb, "  n%d [label=%q, style=dashed];\n", i, n.Instr.String())
		}
	}
	for i, n := range g.Nodes {
		for _, d := range n.Deps {
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", d, i)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
