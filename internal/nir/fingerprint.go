package nir

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"

	"repro/internal/vector"
)

// Fingerprint is a canonical content hash of a normalized program. Two
// programs receive the same fingerprint exactly when they execute the same
// instruction stream over the same externals: register and variable *names*
// do not participate (they are debug metadata), so differently-spelled
// sources that normalize to the same IR — the common case for generated
// queries — collapse onto one fingerprint. The engine's prepared-statement
// cache keys shared VMs by it, which is what lets concurrent sessions pool
// their profiling data and JIT traces.
type Fingerprint [sha256.Size]byte

// String renders the full fingerprint as hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Short renders an abbreviated fingerprint for logs and reports.
func (f Fingerprint) Short() string { return hex.EncodeToString(f[:6]) }

// Fingerprint computes the program's canonical fingerprint. The encoding is
// injective over the hashed fields: every variable-length component is
// length-prefixed and every node carries a tag, so structurally different
// programs cannot collide by concatenation.
func (p *Program) Fingerprint() Fingerprint {
	w := fpWriter{h: sha256.New()}
	w.uint(uint64(len(p.Regs)))
	for _, ri := range p.Regs {
		w.uint(uint64(ri.Kind))
		w.bool(ri.Scalar)
		// ri.Name is intentionally excluded: source-level spelling must not
		// split the cache.
	}
	w.uint(uint64(len(p.Externals)))
	for _, e := range p.Externals {
		// External names are semantic — they are the binding contract with
		// the host — so they do participate. Normalize sorts them, keeping
		// the order canonical.
		w.str(e.Name)
		w.uint(uint64(e.Kind))
	}
	w.nodes(p.Body)
	var f Fingerprint
	w.h.Sum(f[:0])
	return f
}

// fpWriter streams canonically encoded fields into the hash.
type fpWriter struct {
	h   hash.Hash
	buf [8]byte
}

func (w *fpWriter) uint(x uint64) {
	binary.LittleEndian.PutUint64(w.buf[:], x)
	w.h.Write(w.buf[:])
}

func (w *fpWriter) int(x int64) { w.uint(uint64(x)) }

func (w *fpWriter) bool(b bool) {
	if b {
		w.uint(1)
	} else {
		w.uint(0)
	}
}

func (w *fpWriter) str(s string) {
	w.uint(uint64(len(s)))
	w.h.Write([]byte(s))
}

func (w *fpWriter) value(v vector.Value) {
	w.uint(uint64(v.Kind))
	w.bool(v.B)
	w.int(v.I)
	w.uint(math.Float64bits(v.F))
	w.str(v.S)
}

// Node tags of the canonical encoding.
const (
	fpInstr = iota + 1
	fpLoop
	fpIf
	fpBreak
	fpEnd // closes a node list
)

func (w *fpWriter) nodes(nodes []Node) {
	for _, n := range nodes {
		switch n := n.(type) {
		case *InstrNode:
			w.uint(fpInstr)
			w.instr(n.Instr)
		case *LoopNode:
			w.uint(fpLoop)
			w.nodes(n.Body)
		case *IfNode:
			w.uint(fpIf)
			w.int(int64(n.Cond))
			w.nodes(n.Then)
			w.nodes(n.Else)
		case *BreakNode:
			w.uint(fpBreak)
		}
	}
	w.uint(fpEnd)
}

func (w *fpWriter) instr(in *Instr) {
	w.uint(uint64(in.Op))
	w.int(int64(in.Dst))
	w.int(int64(in.A))
	w.int(int64(in.B))
	w.int(int64(in.C))
	w.uint(uint64(in.Arith))
	w.uint(uint64(in.Cmp))
	w.uint(uint64(in.Unary))
	w.uint(uint64(in.Kind))
	w.value(in.Imm)
	w.str(in.Data)
	w.uint(uint64(in.Merge))
	w.uint(uint64(in.Conf))
	// in.ID is excluded: it is a dense renumbering of this same syntactic
	// order, so it adds nothing and would only be another thing to keep
	// canonical.
}
