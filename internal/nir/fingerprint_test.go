package nir

import (
	"testing"

	"repro/internal/dsl"
	"repro/internal/vector"
)

func mustFingerprint(t *testing.T, src string, ext map[string]vector.Kind) Fingerprint {
	t.Helper()
	ast, err := dsl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Normalize(ast, ext)
	if err != nil {
		t.Fatal(err)
	}
	return p.Fingerprint()
}

const fpLoopSrc = `
mut i
i := 0
loop {
  let xs = read i data
  if len(xs) == 0 then break
  write out i (map (\x -> x * 2 + 1) xs)
  i := i + len(xs)
}
`

var fpKinds = map[string]vector.Kind{"data": vector.I64, "out": vector.I64}

func TestFingerprintDeterministic(t *testing.T) {
	a := mustFingerprint(t, fpLoopSrc, fpKinds)
	b := mustFingerprint(t, fpLoopSrc, fpKinds)
	if a != b {
		t.Fatalf("same source hashed twice: %s vs %s", a, b)
	}
	if a == (Fingerprint{}) {
		t.Fatal("zero fingerprint")
	}
	if len(a.String()) != 64 || len(a.Short()) != 12 {
		t.Fatalf("rendering: %q / %q", a.String(), a.Short())
	}
}

// TestFingerprintIgnoresSpelling: variable names and formatting are debug
// metadata; programs that normalize to the same instruction stream must
// share a fingerprint so the prepared-statement cache unifies them.
func TestFingerprintIgnoresSpelling(t *testing.T) {
	respelled := `
mut cursor
cursor := 0
loop {
  let chunk = read cursor data
  if len(chunk) == 0 then break
  write out cursor (map (\element -> element * 2 + 1) chunk)
  cursor := cursor + len(chunk)
}
`
	a := mustFingerprint(t, fpLoopSrc, fpKinds)
	b := mustFingerprint(t, respelled, fpKinds)
	if a != b {
		t.Fatalf("respelled program fingerprints differ: %s vs %s", a.Short(), b.Short())
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := mustFingerprint(t, fpLoopSrc, fpKinds)
	cases := []struct {
		name  string
		src   string
		kinds map[string]vector.Kind
	}{
		{"different constant", `
mut i
i := 0
loop {
  let xs = read i data
  if len(xs) == 0 then break
  write out i (map (\x -> x * 2 + 2) xs)
  i := i + len(xs)
}
`, fpKinds},
		{"different operator", `
mut i
i := 0
loop {
  let xs = read i data
  if len(xs) == 0 then break
  write out i (map (\x -> x * 2 - 1) xs)
  i := i + len(xs)
}
`, fpKinds},
		{"different external name", fpLoopSrc, nil}, // kinds filled below
		{"different external kind", fpLoopSrc, map[string]vector.Kind{"data": vector.I32, "out": vector.I64}},
	}
	cases[2].src = `
mut i
i := 0
loop {
  let xs = read i input
  if len(xs) == 0 then break
  write out i (map (\x -> x * 2 + 1) xs)
  i := i + len(xs)
}
`
	cases[2].kinds = map[string]vector.Kind{"input": vector.I64, "out": vector.I64}
	for _, c := range cases {
		if got := mustFingerprint(t, c.src, c.kinds); got == base {
			t.Errorf("%s: fingerprint collided with base", c.name)
		}
	}
}

// TestFingerprintExternalOrderCanonical: the iteration order of the
// externals map must not leak into the fingerprint (Normalize sorts them).
func TestFingerprintExternalOrderCanonical(t *testing.T) {
	src := `
let a = read 0 x 16
let b = read 0 y 16
write o 0 (map (\p q -> p + q) a b)
`
	kinds := map[string]vector.Kind{"x": vector.I64, "y": vector.I64, "o": vector.I64}
	want := mustFingerprint(t, src, kinds)
	for i := 0; i < 16; i++ {
		// Fresh maps exercise different iteration orders.
		k := map[string]vector.Kind{"o": vector.I64, "y": vector.I64, "x": vector.I64}
		if got := mustFingerprint(t, src, k); got != want {
			t.Fatalf("fingerprint depends on externals map order")
		}
	}
}
