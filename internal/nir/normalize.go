package nir

import (
	"fmt"

	"repro/internal/dsl"
	"repro/internal/vector"
)

// maxInlineDepth bounds user-function inlining to reject recursion.
const maxInlineDepth = 32

// Normalize lowers a checked DSL program into normalized IR. externals maps
// every external array name to its element kind; read/gather/write/scatter
// type against it.
//
// Normalization performs the decomposition the paper describes in §III-A:
// complex lambda bodies are broken into chains of single-operation
// instructions for which pre-compiled vectorized kernels exist. It also
// applies two local rewrites:
//
//   - comparison-against-scalar predicates inside filter fuse into the
//     dedicated OpSelectCmp selection primitive;
//   - integer constants narrow to the kind of the vector they combine with
//     when the value fits, avoiding spurious widening casts (the seed of the
//     compact-data-types refinement of [12]).
func Normalize(prog *dsl.Program, externals map[string]vector.Kind) (*Program, error) {
	if errs := dsl.Check(prog, keys(externals)); len(errs) > 0 {
		return nil, fmt.Errorf("nir: program does not check: %v", errs[0])
	}
	n := &normalizer{
		prog: prog,
		out:  &Program{},
		ext:  externals,
		vars: map[string]Reg{},
		mut:  map[string]bool{},
	}
	for name, kind := range externals {
		n.out.Externals = append(n.out.Externals, External{Name: name, Kind: kind})
	}
	sortExternals(n.out.Externals)
	body, err := n.stmts(prog.Body)
	if err != nil {
		return nil, err
	}
	n.out.Body = body
	n.out.NumInstrs = n.nextID
	return n.out, nil
}

func keys(m map[string]vector.Kind) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func sortExternals(ext []External) {
	for i := 1; i < len(ext); i++ {
		for j := i; j > 0 && ext[j].Name < ext[j-1].Name; j-- {
			ext[j], ext[j-1] = ext[j-1], ext[j]
		}
	}
}

type normalizer struct {
	prog   *dsl.Program
	out    *Program
	ext    map[string]vector.Kind
	vars   map[string]Reg  // name → register (lexical; saved/restored per block)
	mut    map[string]bool // name → is mutable
	consts map[Reg]vector.Value
	nextID int
	depth  int // function inline depth
}

func (n *normalizer) errf(pos dsl.Position, format string, args ...any) error {
	return fmt.Errorf("nir: %s: %s", pos, fmt.Sprintf(format, args...))
}

func (n *normalizer) newReg(kind vector.Kind, scalar bool, name string) Reg {
	n.out.Regs = append(n.out.Regs, RegInfo{Kind: kind, Scalar: scalar, Name: name})
	return Reg(len(n.out.Regs) - 1)
}

func (n *normalizer) emit(list *[]Node, in *Instr) *Instr {
	in.ID = n.nextID
	n.nextID++
	if in.A == 0 && in.Op == OpConst {
		in.A = NoReg
	}
	*list = append(*list, &InstrNode{Instr: in})
	return in
}

// constReg emits OpConst and remembers the value for constant narrowing.
func (n *normalizer) constReg(list *[]Node, v vector.Value) Reg {
	r := n.newReg(v.Kind, true, "")
	if n.consts == nil {
		n.consts = map[Reg]vector.Value{}
	}
	n.consts[r] = v
	n.emit(list, &Instr{Op: OpConst, Dst: r, A: NoReg, B: NoReg, C: NoReg, Kind: v.Kind, Imm: v})
	return r
}

// ---------------------------------------------------------------------------
// Statements

func (n *normalizer) stmts(stmts []dsl.Stmt) ([]Node, error) {
	var out []Node
	saved := n.snapshotScope()
	defer n.restoreScope(saved)
	for _, s := range stmts {
		if err := n.stmt(&out, s); err != nil {
			return nil, err
		}
	}
	return out, nil
}

type scopeSnapshot struct {
	vars map[string]Reg
	mut  map[string]bool
}

func (n *normalizer) snapshotScope() scopeSnapshot {
	v := make(map[string]Reg, len(n.vars))
	for k, r := range n.vars {
		v[k] = r
	}
	m := make(map[string]bool, len(n.mut))
	for k, b := range n.mut {
		m[k] = b
	}
	return scopeSnapshot{v, m}
}

func (n *normalizer) restoreScope(s scopeSnapshot) {
	n.vars = s.vars
	n.mut = s.mut
}

func (n *normalizer) stmt(out *[]Node, s dsl.Stmt) error {
	switch s := s.(type) {
	case *dsl.MutDecl:
		n.mut[s.Name] = true
		n.vars[s.Name] = NoReg // allocated on first assignment
		return nil

	case *dsl.Assign:
		v, err := n.expr(out, s.Val)
		if err != nil {
			return err
		}
		cur, declared := n.vars[s.Name]
		if !declared || !n.mut[s.Name] {
			return n.errf(s.P, "assignment to non-mutable %q", s.Name)
		}
		vi := n.out.Regs[v]
		if cur == NoReg {
			// First assignment: try to redirect the defining instruction
			// into a fresh register named after the variable.
			dst := n.newReg(vi.Kind, vi.Scalar, s.Name)
			n.vars[s.Name] = dst
			n.emitMoveOrRedirect(out, dst, v)
			return nil
		}
		ci := n.out.Regs[cur]
		if ci.Kind != vi.Kind || ci.Scalar != vi.Scalar {
			return n.errf(s.P, "assignment changes type of %q from %s to %s", s.Name, ci, vi)
		}
		n.emitMoveOrRedirect(out, cur, v)
		return nil

	case *dsl.Let:
		v, err := n.expr(out, s.Val)
		if err != nil {
			return err
		}
		if n.out.Regs[v].Name == "" {
			n.out.Regs[v].Name = s.Name
		}
		n.vars[s.Name] = v
		n.mut[s.Name] = false
		return nil

	case *dsl.Loop:
		body, err := n.stmts(s.Body)
		if err != nil {
			return err
		}
		*out = append(*out, &LoopNode{Body: body})
		return nil

	case *dsl.Break:
		*out = append(*out, &BreakNode{})
		return nil

	case *dsl.If:
		cond, err := n.expr(out, s.Cond)
		if err != nil {
			return err
		}
		ci := n.out.Regs[cond]
		if !ci.Scalar || ci.Kind != vector.Bool {
			return n.errf(s.P, "if condition must be a scalar boolean, got %s", ci)
		}
		then, err := n.stmts(s.Then)
		if err != nil {
			return err
		}
		els, err := n.stmts(s.Else)
		if err != nil {
			return err
		}
		*out = append(*out, &IfNode{Cond: cond, Then: then, Else: els})
		return nil

	case *dsl.WriteStmt:
		kind, ok := n.ext[s.Dst]
		if !ok {
			return n.errf(s.P, "write to unbound external %q", s.Dst)
		}
		pos, err := n.scalarExpr(out, s.At)
		if err != nil {
			return err
		}
		val, err := n.expr(out, s.Val)
		if err != nil {
			return err
		}
		val, err = n.coerceVec(out, s.P, val, kind)
		if err != nil {
			return err
		}
		n.emit(out, &Instr{Op: OpWrite, Dst: NoReg, A: pos, B: val, C: NoReg, Kind: kind, Data: s.Dst})
		return nil

	case *dsl.ScatterStmt:
		kind, ok := n.ext[s.Dst]
		if !ok {
			return n.errf(s.P, "scatter to unbound external %q", s.Dst)
		}
		idx, err := n.expr(out, s.Idx)
		if err != nil {
			return err
		}
		val, err := n.expr(out, s.Val)
		if err != nil {
			return err
		}
		val, err = n.coerceVec(out, s.P, val, kind)
		if err != nil {
			return err
		}
		var conf Conflict
		switch s.Conflict {
		case "", "last":
			conf = ConfLast
		case "first":
			conf = ConfFirst
		case "sum":
			conf = ConfSum
		case "min":
			conf = ConfMin
		case "max":
			conf = ConfMax
		default:
			return n.errf(s.P, "unknown conflict function %q", s.Conflict)
		}
		n.emit(out, &Instr{Op: OpScatter, Dst: NoReg, A: idx, B: val, C: NoReg, Kind: kind, Data: s.Dst, Conf: conf})
		return nil

	case *dsl.ExprStmt:
		_, err := n.expr(out, s.E)
		return err
	}
	return fmt.Errorf("nir: unknown statement %T", s)
}

// emitMoveOrRedirect writes register v into dst, retargeting the defining
// instruction when it is the last one emitted (cheap SSA-avoidance for the
// common `x := <expr>` case).
func (n *normalizer) emitMoveOrRedirect(out *[]Node, dst, v Reg) {
	if len(*out) > 0 {
		if last, ok := (*out)[len(*out)-1].(*InstrNode); ok && last.Instr.Dst == v && !n.isConstReg(v) {
			last.Instr.Dst = dst
			return
		}
	}
	ri := n.out.Regs[v]
	n.emit(out, &Instr{Op: OpMove, Dst: dst, A: v, B: NoReg, C: NoReg, Kind: ri.Kind})
}

func (n *normalizer) isConstReg(r Reg) bool {
	_, ok := n.consts[r]
	return ok
}

// ---------------------------------------------------------------------------
// Expressions

// scalarExpr normalizes e and requires a scalar result.
func (n *normalizer) scalarExpr(out *[]Node, e dsl.Expr) (Reg, error) {
	r, err := n.expr(out, e)
	if err != nil {
		return NoReg, err
	}
	if !n.out.Regs[r].Scalar {
		return NoReg, n.errf(e.Pos(), "expected a scalar expression")
	}
	return r, nil
}

// coerceVec inserts a cast so r has element kind want.
func (n *normalizer) coerceVec(out *[]Node, pos dsl.Position, r Reg, want vector.Kind) (Reg, error) {
	ri := n.out.Regs[r]
	if ri.Kind == want {
		return r, nil
	}
	if !ri.Kind.IsNumeric() || !want.IsNumeric() {
		return NoReg, n.errf(pos, "cannot convert %s to %s", ri.Kind, want)
	}
	dst := n.newReg(want, ri.Scalar, "")
	n.emit(out, &Instr{Op: OpCast, Dst: dst, A: r, B: NoReg, C: NoReg, Kind: want})
	return dst, nil
}

// unifyNumeric returns the common kind for a binary numeric operation,
// preferring to narrow constant operands rather than widen vectors.
func unifyNumeric(a, b vector.Kind) vector.Kind {
	if a == b {
		return a
	}
	if a == vector.F64 || b == vector.F64 {
		return vector.F64
	}
	// widest integer wins
	order := map[vector.Kind]int{vector.I8: 1, vector.I16: 2, vector.I32: 3, vector.I64: 4}
	if order[a] >= order[b] {
		return a
	}
	return b
}

// narrowConst retypes a constant scalar register to kind k when the value
// fits, avoiding a widening cast on the vector side.
func (n *normalizer) narrowConst(r Reg, k vector.Kind) bool {
	v, ok := n.consts[r]
	if !ok || !v.Kind.IsInteger() || !k.IsInteger() {
		return false
	}
	lo, hi := vector.IntRange(k)
	if v.I < lo || v.I > hi {
		return false
	}
	n.out.Regs[r].Kind = k
	v.Kind = k
	n.consts[r] = v
	// Retype the defining OpConst instruction as well.
	return true
}

func (n *normalizer) retypeConstInstr(out []Node, r Reg, k vector.Kind) {
	for _, node := range out {
		if in, ok := node.(*InstrNode); ok && in.Instr.Op == OpConst && in.Instr.Dst == r {
			in.Instr.Kind = k
			v := in.Instr.Imm
			v.Kind = k
			in.Instr.Imm = v
		}
	}
}

func (n *normalizer) expr(out *[]Node, e dsl.Expr) (Reg, error) {
	switch e := e.(type) {
	case *dsl.Const:
		return n.constReg(out, e.Val), nil

	case *dsl.VarRef:
		if r, ok := n.vars[e.Name]; ok {
			if r == NoReg {
				return NoReg, n.errf(e.P, "mutable %q used before assignment", e.Name)
			}
			return r, nil
		}
		return NoReg, n.errf(e.P, "undefined variable %q (externals are only accessible through read/gather)", e.Name)

	case *dsl.Bin:
		return n.binExpr(out, e)

	case *dsl.Un:
		a, err := n.expr(out, e.E)
		if err != nil {
			return NoReg, err
		}
		ai := n.out.Regs[a]
		var uop UnaryOp
		kind := ai.Kind
		switch e.Op {
		case dsl.UnNeg:
			uop = UNeg
		case dsl.UnNot:
			uop = UNot
			if kind != vector.Bool {
				return NoReg, n.errf(e.P, "! requires a boolean operand")
			}
		case dsl.UnAbs:
			uop = UAbs
		case dsl.UnSqrt:
			uop = USqrt
			if kind != vector.F64 {
				var err error
				a, err = n.coerceVec(out, e.P, a, vector.F64)
				if err != nil {
					return NoReg, err
				}
				kind = vector.F64
			}
		}
		dst := n.newReg(kind, ai.Scalar, "")
		op := OpMapUn
		if ai.Scalar {
			op = OpUnS
		}
		n.emit(out, &Instr{Op: op, Dst: dst, A: a, B: NoReg, C: NoReg, Unary: uop, Kind: kind})
		return dst, nil

	case *dsl.CallExpr:
		return n.inlineCall(out, e)

	case *dsl.Lambda:
		return NoReg, n.errf(e.P, "lambda outside skeleton position")

	case *dsl.LenExpr:
		a, err := n.expr(out, e.E)
		if err != nil {
			return NoReg, err
		}
		if n.out.Regs[a].Scalar {
			return NoReg, n.errf(e.P, "len of a scalar")
		}
		dst := n.newReg(vector.I64, true, "")
		n.emit(out, &Instr{Op: OpLen, Dst: dst, A: a, B: NoReg, C: NoReg, Kind: vector.I64})
		return dst, nil

	case *dsl.CastExpr:
		a, err := n.expr(out, e.E)
		if err != nil {
			return NoReg, err
		}
		return n.coerceVec(out, e.P, a, e.To)

	case *dsl.ReadExpr:
		kind, ok := n.ext[e.Data]
		if !ok {
			return NoReg, n.errf(e.P, "read from unbound external %q", e.Data)
		}
		pos, err := n.scalarExpr(out, e.At)
		if err != nil {
			return NoReg, err
		}
		count := NoReg
		if e.Count != nil {
			count, err = n.scalarExpr(out, e.Count)
			if err != nil {
				return NoReg, err
			}
		}
		dst := n.newReg(kind, false, "")
		n.emit(out, &Instr{
			Op: OpRead, Dst: dst, A: pos, B: NoReg, C: count,
			Kind: kind, Data: e.Data,
			Imm: vector.I64Value(int64(vector.DefaultChunkLen)),
		})
		return dst, nil

	case *dsl.MapExpr:
		args := make([]Reg, len(e.Args))
		for i, a := range e.Args {
			r, err := n.expr(out, a)
			if err != nil {
				return NoReg, err
			}
			args[i] = r
		}
		return n.applyLambda(out, e.Fn, args)

	case *dsl.FilterExpr:
		return n.filterExpr(out, e)

	case *dsl.FoldExpr:
		return n.foldExpr(out, e)

	case *dsl.GatherExpr:
		kind, ok := n.ext[e.Data]
		if !ok {
			return NoReg, n.errf(e.P, "gather from unbound external %q", e.Data)
		}
		idx, err := n.expr(out, e.Idx)
		if err != nil {
			return NoReg, err
		}
		if n.out.Regs[idx].Scalar || !n.out.Regs[idx].Kind.IsInteger() {
			return NoReg, n.errf(e.P, "gather index must be an integer flow")
		}
		dst := n.newReg(kind, false, "")
		n.emit(out, &Instr{Op: OpGather, Dst: dst, A: idx, B: NoReg, C: NoReg, Kind: kind, Data: e.Data})
		return dst, nil

	case *dsl.GenExpr:
		count, err := n.scalarExpr(out, e.Count)
		if err != nil {
			return NoReg, err
		}
		iota := n.newReg(vector.I64, false, "")
		n.emit(out, &Instr{Op: OpIota, Dst: iota, A: count, B: NoReg, C: NoReg, Kind: vector.I64})
		return n.applyLambda(out, e.Fn, []Reg{iota})

	case *dsl.CondenseExpr:
		a, err := n.expr(out, e.E)
		if err != nil {
			return NoReg, err
		}
		ai := n.out.Regs[a]
		if ai.Scalar {
			return NoReg, n.errf(e.P, "condense of a scalar")
		}
		dst := n.newReg(ai.Kind, false, "")
		n.emit(out, &Instr{Op: OpCondense, Dst: dst, A: a, B: NoReg, C: NoReg, Kind: ai.Kind})
		return dst, nil

	case *dsl.MergeExpr:
		l, err := n.expr(out, e.L)
		if err != nil {
			return NoReg, err
		}
		r, err := n.expr(out, e.R)
		if err != nil {
			return NoReg, err
		}
		li, ri := n.out.Regs[l], n.out.Regs[r]
		if li.Scalar || ri.Scalar {
			return NoReg, n.errf(e.P, "merge requires flow operands")
		}
		if li.Kind != ri.Kind {
			return NoReg, n.errf(e.P, "merge operand kinds differ: %s vs %s", li.Kind, ri.Kind)
		}
		var mf MergeFlavor
		switch e.Kind {
		case dsl.MergeJoin:
			mf = MJoin
		case dsl.MergeUnion:
			mf = MUnion
		case dsl.MergeDiff:
			mf = MDiff
		case dsl.MergeIntersect:
			mf = MIntersect
		}
		dst := n.newReg(li.Kind, false, "")
		n.emit(out, &Instr{Op: OpMerge, Dst: dst, A: l, B: r, C: NoReg, Kind: li.Kind, Merge: mf})
		return dst, nil
	}
	return NoReg, fmt.Errorf("nir: unknown expression %T", e)
}

var arithFromDSL = map[dsl.BinOp]ArithOp{
	dsl.OpAdd: AAdd, dsl.OpSub: ASub, dsl.OpMul: AMul, dsl.OpDiv: ADiv, dsl.OpMod: AMod,
	dsl.OpAnd: AAnd, dsl.OpOr: AOr, dsl.OpXor: AXor, dsl.OpShl: AShl, dsl.OpShr: AShr,
	dsl.OpMin: AMin, dsl.OpMax: AMax,
}

var cmpFromDSL = map[dsl.BinOp]CmpOp{
	dsl.OpEq: CEq, dsl.OpNe: CNe, dsl.OpLt: CLt, dsl.OpLe: CLe, dsl.OpGt: CGt, dsl.OpGe: CGe,
}

func (n *normalizer) binExpr(out *[]Node, e *dsl.Bin) (Reg, error) {
	a, err := n.expr(out, e.L)
	if err != nil {
		return NoReg, err
	}
	b, err := n.expr(out, e.R)
	if err != nil {
		return NoReg, err
	}
	return n.emitBin(out, e.P, e.Op, a, b)
}

func (n *normalizer) emitBin(out *[]Node, pos dsl.Position, op dsl.BinOp, a, b Reg) (Reg, error) {
	ai, bi := n.out.Regs[a], n.out.Regs[b]

	// Boolean connectives.
	if ai.Kind == vector.Bool || bi.Kind == vector.Bool {
		if ai.Kind != vector.Bool || bi.Kind != vector.Bool {
			return NoReg, n.errf(pos, "boolean operator on mixed operands")
		}
		aop, ok := arithFromDSL[op]
		if !ok || (aop != AAnd && aop != AOr && aop != AXor) {
			if cop, ok := cmpFromDSL[op]; ok && (cop == CEq || cop == CNe) {
				return n.emitCmp(out, cop, a, b, vector.Bool)
			}
			return NoReg, n.errf(pos, "operator %s not defined on booleans", op)
		}
		return n.emitArith(out, aop, a, b, vector.Bool)
	}

	if !ai.Kind.IsNumeric() || !bi.Kind.IsNumeric() {
		return NoReg, n.errf(pos, "operator %s requires numeric operands, got %s and %s", op, ai.Kind, bi.Kind)
	}

	// Kind unification with constant narrowing.
	kind := unifyNumeric(ai.Kind, bi.Kind)
	if kind != ai.Kind && n.narrowConst(b, ai.Kind) {
		kind = ai.Kind
		n.retypeConstInstr(*out, b, kind)
		bi = n.out.Regs[b]
	} else if kind != bi.Kind && n.narrowConst(a, bi.Kind) {
		kind = bi.Kind
		n.retypeConstInstr(*out, a, kind)
		ai = n.out.Regs[a]
	}
	if ai.Kind != kind {
		a, err := n.coerceVec(out, pos, a, kind)
		if err != nil {
			return NoReg, err
		}
		return n.emitBinUnified(out, pos, op, a, b, kind)
	}
	if bi.Kind != kind {
		b, err := n.coerceVec(out, pos, b, kind)
		if err != nil {
			return NoReg, err
		}
		return n.emitBinUnified(out, pos, op, a, b, kind)
	}
	return n.emitBinUnified(out, pos, op, a, b, kind)
}

func (n *normalizer) emitBinUnified(out *[]Node, pos dsl.Position, op dsl.BinOp, a, b Reg, kind vector.Kind) (Reg, error) {
	if cop, ok := cmpFromDSL[op]; ok {
		return n.emitCmp(out, cop, a, b, kind)
	}
	aop, ok := arithFromDSL[op]
	if !ok {
		return NoReg, n.errf(pos, "unsupported operator %s", op)
	}
	if kind == vector.F64 {
		switch aop {
		case AAnd, AOr, AXor, AShl, AShr, AMod:
			return NoReg, n.errf(pos, "operator %s not defined on f64", op)
		}
	}
	return n.emitArith(out, aop, a, b, kind)
}

func (n *normalizer) emitArith(out *[]Node, op ArithOp, a, b Reg, kind vector.Kind) (Reg, error) {
	ai, bi := n.out.Regs[a], n.out.Regs[b]
	scalar := ai.Scalar && bi.Scalar
	dst := n.newReg(kind, scalar, "")
	code := OpMapBin
	if scalar {
		code = OpBinS
	}
	n.emit(out, &Instr{Op: code, Dst: dst, A: a, B: b, C: NoReg, Arith: op, Kind: kind})
	return dst, nil
}

func (n *normalizer) emitCmp(out *[]Node, op CmpOp, a, b Reg, operandKind vector.Kind) (Reg, error) {
	ai, bi := n.out.Regs[a], n.out.Regs[b]
	scalar := ai.Scalar && bi.Scalar
	dst := n.newReg(vector.Bool, scalar, "")
	if scalar {
		n.emit(out, &Instr{Op: OpBinS, Dst: dst, A: a, B: b, C: NoReg, Cmp: op, Kind: operandKind})
	} else {
		n.emit(out, &Instr{Op: OpMapCmp, Dst: dst, A: a, B: b, C: NoReg, Cmp: op, Kind: operandKind})
	}
	return dst, nil
}

// ---------------------------------------------------------------------------
// Lambdas, calls, filter, fold

// resolveLambda turns a named-function reference into its definition.
func (n *normalizer) resolveLambda(l *dsl.Lambda) (*dsl.Lambda, error) {
	call, ok := l.Body.(*dsl.CallExpr)
	if !ok || l.Params != nil || len(call.Args) != 0 {
		return l, nil
	}
	f, ok := n.prog.Funcs[call.Name]
	if !ok {
		return nil, n.errf(l.Pos(), "undefined function %q", call.Name)
	}
	return &dsl.Lambda{Params: f.Params, Body: f.Body}, nil
}

// applyLambda normalizes a lambda body with parameters bound to arg regs.
// This is where deforestation happens structurally: the body becomes a chain
// of single-op instructions over the argument flows, with no intermediate
// trees.
func (n *normalizer) applyLambda(out *[]Node, l *dsl.Lambda, args []Reg) (Reg, error) {
	l, err := n.resolveLambda(l)
	if err != nil {
		return NoReg, err
	}
	if len(l.Params) != len(args) {
		return NoReg, n.errf(l.Pos(), "lambda arity %d does not match %d arguments", len(l.Params), len(args))
	}
	if n.depth >= maxInlineDepth {
		return NoReg, n.errf(l.Pos(), "function inlining too deep (recursion?)")
	}
	saved := n.snapshotScope()
	defer n.restoreScope(saved)
	n.depth++
	defer func() { n.depth-- }()
	for i, p := range l.Params {
		n.vars[p] = args[i]
		n.mut[p] = false
	}
	return n.expr(out, l.Body)
}

func (n *normalizer) inlineCall(out *[]Node, e *dsl.CallExpr) (Reg, error) {
	f, ok := n.prog.Funcs[e.Name]
	if !ok {
		return NoReg, n.errf(e.P, "call to undefined function %q", e.Name)
	}
	args := make([]Reg, len(e.Args))
	for i, a := range e.Args {
		r, err := n.expr(out, a)
		if err != nil {
			return NoReg, err
		}
		args[i] = r
	}
	return n.applyLambda(out, &dsl.Lambda{Params: f.Params, Body: f.Body}, args)
}

// filterExpr normalizes filter p a. The fast path recognizes predicates of
// the form (\x -> x <cmp> scalar) and emits the fused OpSelectCmp selection
// primitive; everything else goes through a bool map plus OpSelect.
func (n *normalizer) filterExpr(out *[]Node, e *dsl.FilterExpr) (Reg, error) {
	arg, err := n.expr(out, e.Arg)
	if err != nil {
		return NoReg, err
	}
	ai := n.out.Regs[arg]
	if ai.Scalar {
		return NoReg, n.errf(e.P, "filter requires a flow argument")
	}
	pred, err := n.resolveLambda(e.Pred)
	if err != nil {
		return NoReg, err
	}
	if len(pred.Params) != 1 {
		return NoReg, n.errf(e.P, "filter predicate must be unary")
	}

	// Fused path: x <cmp> const  or  const <cmp> x.
	if bin, ok := pred.Body.(*dsl.Bin); ok {
		if cop, isCmp := cmpFromDSL[bin.Op]; isCmp {
			if vr, ok := bin.L.(*dsl.VarRef); ok && vr.Name == pred.Params[0] {
				if c, ok := bin.R.(*dsl.Const); ok {
					return n.emitSelectCmp(out, arg, cop, c.Val)
				}
			}
			if vr, ok := bin.R.(*dsl.VarRef); ok && vr.Name == pred.Params[0] {
				if c, ok := bin.L.(*dsl.Const); ok {
					// const <cmp> x  ≡  x <swapped-cmp> const
					return n.emitSelectCmp(out, arg, swapCmp(cop), c.Val)
				}
			}
		}
	}

	// General path: evaluate predicate into a bool vector, then select.
	boolReg, err := n.applyLambda(out, pred, []Reg{arg})
	if err != nil {
		return NoReg, err
	}
	bi := n.out.Regs[boolReg]
	if bi.Scalar || bi.Kind != vector.Bool {
		return NoReg, n.errf(e.P, "filter predicate must produce a boolean flow, got %s", bi)
	}
	dst := n.newReg(ai.Kind, false, "")
	n.emit(out, &Instr{Op: OpSelect, Dst: dst, A: arg, B: boolReg, C: NoReg, Kind: ai.Kind})
	return dst, nil
}

// swapCmp mirrors a comparison when its operands are exchanged.
func swapCmp(op CmpOp) CmpOp {
	switch op {
	case CLt:
		return CGt
	case CLe:
		return CGe
	case CGt:
		return CLt
	case CGe:
		return CLe
	}
	return op // eq, ne symmetric
}

func (n *normalizer) emitSelectCmp(out *[]Node, arg Reg, op CmpOp, c vector.Value) (Reg, error) {
	ai := n.out.Regs[arg]
	if c.Kind.IsInteger() && ai.Kind.IsInteger() && c.Kind != ai.Kind {
		lo, hi := vector.IntRange(ai.Kind)
		if c.I >= lo && c.I <= hi {
			c.Kind = ai.Kind
		}
	}
	if c.Kind != ai.Kind {
		if !(c.Kind.IsNumeric() && ai.Kind.IsNumeric()) {
			return NoReg, fmt.Errorf("nir: filter constant kind %s incompatible with flow kind %s", c.Kind, ai.Kind)
		}
		// Convert constant to the flow kind.
		if ai.Kind == vector.F64 {
			if c.Kind != vector.F64 {
				c = vector.F64Value(float64(c.I))
			}
		} else if c.Kind == vector.F64 {
			c = vector.IntValue(ai.Kind, int64(c.F))
		} else {
			c = vector.IntValue(ai.Kind, c.I)
		}
	}
	cr := n.constReg(out, c)
	dst := n.newReg(ai.Kind, false, "")
	n.emit(out, &Instr{Op: OpSelectCmp, Dst: dst, A: arg, B: cr, C: NoReg, Cmp: op, Kind: ai.Kind})
	return dst, nil
}

// foldExpr normalizes fold f init a. The reduction function must decompose
// as (\acc x -> acc ⊕ g(x)) — acc occurring exactly once as an operand of the
// top-level operator — matching the paper's normalization example: g(x) maps
// first, then a single-operator fold reduces.
func (n *normalizer) foldExpr(out *[]Node, e *dsl.FoldExpr) (Reg, error) {
	fn, err := n.resolveLambda(e.Fn)
	if err != nil {
		return NoReg, err
	}
	if len(fn.Params) != 2 {
		return NoReg, n.errf(e.P, "fold function must be binary (\\acc x -> ...)")
	}
	accName, xName := fn.Params[0], fn.Params[1]

	bin, ok := fn.Body.(*dsl.Bin)
	if !ok {
		return NoReg, n.errf(e.P, "fold function must be (\\acc x -> acc <op> g(x))")
	}
	aop, ok := arithFromDSL[bin.Op]
	if !ok {
		return NoReg, n.errf(e.P, "fold operator %s is not a reduction operator", bin.Op)
	}
	var gExpr dsl.Expr
	if vr, ok := bin.L.(*dsl.VarRef); ok && vr.Name == accName && !mentions(bin.R, accName) {
		gExpr = bin.R
	} else if vr, ok := bin.R.(*dsl.VarRef); ok && vr.Name == accName && !mentions(bin.L, accName) {
		if !isCommutative(aop) {
			return NoReg, n.errf(e.P, "accumulator must be the left operand of non-commutative %s", bin.Op)
		}
		gExpr = bin.L
	} else {
		return NoReg, n.errf(e.P, "fold function must use the accumulator exactly once at the top level")
	}

	arg, err := n.expr(out, e.Arg)
	if err != nil {
		return NoReg, err
	}
	if n.out.Regs[arg].Scalar {
		return NoReg, n.errf(e.P, "fold requires a flow argument")
	}
	mapped, err := n.applyLambda(out, &dsl.Lambda{Params: []string{xName}, Body: gExpr}, []Reg{arg})
	if err != nil {
		return NoReg, err
	}
	mi := n.out.Regs[mapped]
	if mi.Scalar {
		return NoReg, n.errf(e.P, "fold body must depend on the element parameter")
	}

	init, err := n.scalarExpr(out, e.Init)
	if err != nil {
		return NoReg, err
	}
	init, err = n.coerceVec(out, e.P, init, mi.Kind)
	if err != nil {
		return NoReg, err
	}
	dst := n.newReg(mi.Kind, true, "")
	n.emit(out, &Instr{Op: OpFold, Dst: dst, A: init, B: mapped, C: NoReg, Arith: aop, Kind: mi.Kind})
	return dst, nil
}

func isCommutative(op ArithOp) bool {
	switch op {
	case AAdd, AMul, AAnd, AOr, AXor, AMin, AMax:
		return true
	}
	return false
}

// mentions reports whether expression e references name.
func mentions(e dsl.Expr, name string) bool {
	found := false
	var walk func(dsl.Expr)
	walk = func(e dsl.Expr) {
		if found || e == nil {
			return
		}
		switch e := e.(type) {
		case *dsl.VarRef:
			if e.Name == name {
				found = true
			}
		case *dsl.Bin:
			walk(e.L)
			walk(e.R)
		case *dsl.Un:
			walk(e.E)
		case *dsl.CallExpr:
			for _, a := range e.Args {
				walk(a)
			}
		case *dsl.LenExpr:
			walk(e.E)
		case *dsl.CastExpr:
			walk(e.E)
		case *dsl.MapExpr:
			for _, a := range e.Args {
				walk(a)
			}
		case *dsl.FilterExpr:
			walk(e.Arg)
		case *dsl.FoldExpr:
			walk(e.Init)
			walk(e.Arg)
		case *dsl.GenExpr:
			walk(e.Count)
		case *dsl.CondenseExpr:
			walk(e.E)
		case *dsl.MergeExpr:
			walk(e.L)
			walk(e.R)
		case *dsl.GatherExpr:
			walk(e.Idx)
		case *dsl.ReadExpr:
			walk(e.At)
			if e.Count != nil {
				walk(e.Count)
			}
		}
	}
	walk(e)
	return found
}
