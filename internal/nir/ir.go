// Package nir defines the normalized intermediate representation of DSL
// programs and the normalizer that produces it (§III-A of the paper:
// "These functions have to be normalized, which means, breaking them into
// simpler operations").
//
// A normalized program is a structured control-flow tree (loops, ifs, breaks)
// over straight-line sequences of primitive instructions. Every instruction
// applies exactly one primitive operation — an arithmetic map, a comparison
// producing a selection vector, a fold with a fixed reduction operator, a
// memory skeleton (read/write/gather/scatter), etc. — so that each one can be
// served by a pre-compiled vectorized kernel (package primitive), profiled
// individually (package profile), partitioned into compilable fragments
// (package depgraph) and fused into traces (package jit).
package nir

import (
	"fmt"
	"strings"

	"repro/internal/vector"
)

// Reg is a virtual register index. Registers hold either a scalar or a flow
// (vector + selection vector); see RegInfo.Scalar.
type Reg int32

// NoReg marks an unused operand slot.
const NoReg Reg = -1

// RegInfo describes the static type of a register.
type RegInfo struct {
	Kind   vector.Kind
	Scalar bool
	Name   string // source-level name, for debugging and reports
}

func (ri RegInfo) String() string {
	shape := "vec"
	if ri.Scalar {
		shape = "scalar"
	}
	if ri.Name != "" {
		return fmt.Sprintf("%s %s(%s)", ri.Name, shape, ri.Kind)
	}
	return fmt.Sprintf("%s(%s)", shape, ri.Kind)
}

// ArithOp enumerates arithmetic/bitwise operators on vectors and scalars.
type ArithOp uint8

// Arithmetic operators.
const (
	AInvalid ArithOp = iota
	AAdd
	ASub
	AMul
	ADiv
	AMod
	AAnd
	AOr
	AXor
	AShl
	AShr
	AMin
	AMax
)

var arithNames = [...]string{
	AInvalid: "?", AAdd: "add", ASub: "sub", AMul: "mul", ADiv: "div", AMod: "mod",
	AAnd: "and", AOr: "or", AXor: "xor", AShl: "shl", AShr: "shr", AMin: "min", AMax: "max",
}

func (op ArithOp) String() string { return arithNames[op] }

// CmpOp enumerates comparison operators.
type CmpOp uint8

// Comparison operators.
const (
	CInvalid CmpOp = iota
	CEq
	CNe
	CLt
	CLe
	CGt
	CGe
)

var cmpNames = [...]string{CInvalid: "?", CEq: "eq", CNe: "ne", CLt: "lt", CLe: "le", CGt: "gt", CGe: "ge"}

func (op CmpOp) String() string { return cmpNames[op] }

// Negate returns the complement comparison (for De Morgan rewrites).
func (op CmpOp) Negate() CmpOp {
	switch op {
	case CEq:
		return CNe
	case CNe:
		return CEq
	case CLt:
		return CGe
	case CLe:
		return CGt
	case CGt:
		return CLe
	case CGe:
		return CLt
	}
	return CInvalid
}

// UnaryOp enumerates unary operators.
type UnaryOp uint8

// Unary operators.
const (
	UInvalid UnaryOp = iota
	UNeg
	UNot
	UAbs
	USqrt
)

var unaryNames = [...]string{UInvalid: "?", UNeg: "neg", UNot: "not", UAbs: "abs", USqrt: "sqrt"}

func (op UnaryOp) String() string { return unaryNames[op] }

// OpCode identifies the primitive operation an Instr performs.
type OpCode uint8

// Instruction opcodes. The comments give the operational semantics; s(x)
// denotes "under the selection vector of x".
const (
	OpInvalid OpCode = iota

	// Scalar operations.
	OpConst // Dst := Imm
	OpMove  // Dst := A (register copy; flows copy by reference)
	OpBinS  // Dst := A <Arith/Cmp> B (scalars)
	OpUnS   // Dst := <Unary> A (scalar)
	OpLen   // Dst := selected length of flow A (i64 scalar)

	// Element-wise maps. Scalar operands broadcast.
	OpMapBin // Dst[i] := A[i] <Arith> B[i]  for i in s(A)
	OpMapCmp // Dst[i] := A[i] <Cmp> B[i]    for i in s(A)  (bool vector)
	OpMapUn  // Dst[i] := <Unary> A[i]       for i in s(A)
	OpCast   // Dst[i] := Kind(A[i])         for i in s(A)

	// Selection.
	OpSelect    // Dst := flow A with sel narrowed to rows where bool vector B is true
	OpSelectCmp // Dst := flow A with sel narrowed to rows where A[i] <Cmp> B (B scalar); fused filter primitive

	// Memory skeletons.
	OpRead     // Dst := up to C (scalar, or Imm if C==NoReg) elements of external Data starting at A (scalar)
	OpWrite    // external Data[A..] := selected elements of flow B (statement, Dst==NoReg)
	OpGather   // Dst[i] := Data[A[i]] for i in s(A)
	OpScatter  // Data[A[i]] := B[i] with Conflict resolution (statement)
	OpIota     // Dst := [0, 1, ..., A-1] (A scalar count) as Kind
	OpCondense // Dst := materialize selected elements of flow A contiguously

	// Reductions.
	OpFold // Dst := fold of flow B with operator Arith and initial scalar A

	// Sorted-set operations (the abstract merge skeleton).
	OpMerge // Dst := merge<MergeKind>(A, B) over sorted flows
)

var opNames = [...]string{
	OpInvalid: "invalid", OpConst: "const", OpMove: "move", OpBinS: "bin.s", OpUnS: "un.s", OpLen: "len",
	OpMapBin: "map.bin", OpMapCmp: "map.cmp", OpMapUn: "map.un", OpCast: "cast",
	OpSelect: "select", OpSelectCmp: "select.cmp",
	OpRead: "read", OpWrite: "write", OpGather: "gather", OpScatter: "scatter",
	OpIota: "iota", OpCondense: "condense", OpFold: "fold", OpMerge: "merge",
}

func (op OpCode) String() string { return opNames[op] }

// MergeFlavor selects the merge variant.
type MergeFlavor uint8

// Merge variants.
const (
	MJoin MergeFlavor = iota + 1
	MUnion
	MDiff
	MIntersect
)

var mergeNames = [...]string{0: "?", MJoin: "join", MUnion: "union", MDiff: "diff", MIntersect: "intersect"}

func (m MergeFlavor) String() string { return mergeNames[m] }

// Conflict selects scatter conflict handling.
type Conflict uint8

// Scatter conflict functions ("using function f to handle conflicts",
// Table I).
const (
	ConfLast Conflict = iota
	ConfFirst
	ConfSum
	ConfMin
	ConfMax
)

var conflictNames = [...]string{ConfLast: "last", ConfFirst: "first", ConfSum: "sum", ConfMin: "min", ConfMax: "max"}

func (c Conflict) String() string { return conflictNames[c] }

// Instr is one normalized instruction.
type Instr struct {
	Op      OpCode
	Dst     Reg
	A, B, C Reg
	Arith   ArithOp
	Cmp     CmpOp
	Unary   UnaryOp
	Kind    vector.Kind  // element kind the op computes in
	Imm     vector.Value // immediate (OpConst, OpRead default count)
	Data    string       // external array name
	Merge   MergeFlavor
	Conf    Conflict
	// ID is a stable instruction identifier assigned by the normalizer,
	// used by the profiler and the dependency graph.
	ID int
}

// Uses returns the registers read by the instruction.
func (in *Instr) Uses() []Reg {
	var out []Reg
	for _, r := range [...]Reg{in.A, in.B, in.C} {
		if r != NoReg {
			out = append(out, r)
		}
	}
	return out
}

func (in *Instr) String() string {
	var sb strings.Builder
	if in.Dst != NoReg {
		fmt.Fprintf(&sb, "r%d = ", in.Dst)
	}
	sb.WriteString(in.Op.String())
	switch in.Op {
	case OpBinS:
		if in.Cmp != CInvalid {
			fmt.Fprintf(&sb, ".%s", in.Cmp)
		} else {
			fmt.Fprintf(&sb, ".%s", in.Arith)
		}
	case OpMapBin, OpFold:
		fmt.Fprintf(&sb, ".%s", in.Arith)
	case OpMapCmp, OpSelectCmp:
		fmt.Fprintf(&sb, ".%s", in.Cmp)
	case OpMapUn, OpUnS:
		fmt.Fprintf(&sb, ".%s", in.Unary)
	case OpMerge:
		fmt.Fprintf(&sb, ".%s", in.Merge)
	case OpScatter:
		fmt.Fprintf(&sb, ".%s", in.Conf)
	}
	if in.Kind != vector.Invalid {
		fmt.Fprintf(&sb, "<%s>", in.Kind)
	}
	if in.Data != "" {
		fmt.Fprintf(&sb, " @%s", in.Data)
	}
	for _, r := range in.Uses() {
		fmt.Fprintf(&sb, " r%d", r)
	}
	if in.Op == OpConst {
		fmt.Fprintf(&sb, " %s", in.Imm)
	}
	return sb.String()
}

// Node is one element of the structured control-flow tree.
type Node interface{ nodeTag() }

// InstrNode wraps a straight-line instruction.
type InstrNode struct{ Instr *Instr }

// LoopNode is an infinite loop over Body.
type LoopNode struct{ Body []Node }

// IfNode branches on the scalar boolean register Cond.
type IfNode struct {
	Cond Reg
	Then []Node
	Else []Node
}

// BreakNode terminates the innermost loop.
type BreakNode struct{}

func (*InstrNode) nodeTag() {}
func (*LoopNode) nodeTag()  {}
func (*IfNode) nodeTag()    {}
func (*BreakNode) nodeTag() {}

// External declares an external array binding the host must provide.
type External struct {
	Name string
	Kind vector.Kind
}

// Program is a normalized DSL program.
type Program struct {
	Regs      []RegInfo
	Body      []Node
	Externals []External
	// NumInstrs is the total number of instructions (IDs are 0..NumInstrs-1).
	NumInstrs int
}

// Reg returns the info for register r.
func (p *Program) Reg(r Reg) RegInfo { return p.Regs[r] }

// ExternalKind returns the declared kind of an external array, or Invalid.
func (p *Program) ExternalKind(name string) vector.Kind {
	for _, e := range p.Externals {
		if e.Name == name {
			return e.Kind
		}
	}
	return vector.Invalid
}

// String renders the program as indented instruction listing.
func (p *Program) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program (%d regs, %d instrs)\n", len(p.Regs), p.NumInstrs)
	for _, e := range p.Externals {
		fmt.Fprintf(&sb, "external %s: %s\n", e.Name, e.Kind)
	}
	printNodes(&sb, p.Body, 0)
	return sb.String()
}

func printNodes(sb *strings.Builder, nodes []Node, depth int) {
	indent := strings.Repeat("  ", depth)
	for _, n := range nodes {
		switch n := n.(type) {
		case *InstrNode:
			fmt.Fprintf(sb, "%s%s\n", indent, n.Instr)
		case *LoopNode:
			fmt.Fprintf(sb, "%sloop {\n", indent)
			printNodes(sb, n.Body, depth+1)
			fmt.Fprintf(sb, "%s}\n", indent)
		case *IfNode:
			fmt.Fprintf(sb, "%sif r%d {\n", indent, n.Cond)
			printNodes(sb, n.Then, depth+1)
			if len(n.Else) > 0 {
				fmt.Fprintf(sb, "%s} else {\n", indent)
				printNodes(sb, n.Else, depth+1)
			}
			fmt.Fprintf(sb, "%s}\n", indent)
		case *BreakNode:
			fmt.Fprintf(sb, "%sbreak\n", indent)
		}
	}
}

// Walk calls fn for every instruction in the program in syntactic order.
func (p *Program) Walk(fn func(*Instr)) {
	walkNodes(p.Body, fn)
}

func walkNodes(nodes []Node, fn func(*Instr)) {
	for _, n := range nodes {
		switch n := n.(type) {
		case *InstrNode:
			fn(n.Instr)
		case *LoopNode:
			walkNodes(n.Body, fn)
		case *IfNode:
			walkNodes(n.Then, fn)
			walkNodes(n.Else, fn)
		}
	}
}
