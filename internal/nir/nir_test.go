package nir

import (
	"strings"
	"testing"

	"repro/internal/dsl"
	"repro/internal/vector"
)

func normalize(t *testing.T, src string, kinds map[string]vector.Kind) *Program {
	t.Helper()
	prog, err := dsl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	np, err := Normalize(prog, kinds)
	if err != nil {
		t.Fatal(err)
	}
	return np
}

func i64Kinds(names ...string) map[string]vector.Kind {
	m := map[string]vector.Kind{}
	for _, n := range names {
		m[n] = vector.I64
	}
	return m
}

func countOps(p *Program, op OpCode) int {
	n := 0
	p.Walk(func(in *Instr) {
		if in.Op == op {
			n++
		}
	})
	return n
}

func TestConstantNarrowingAvoidsCasts(t *testing.T) {
	// i32 column compared/added with a literal that fits i32: the constant
	// must narrow instead of the vector widening.
	np := normalize(t, `
let xs = read 0 d 16
let a = map (\x -> x + 1000) xs
write o 0 a
`, map[string]vector.Kind{"d": vector.I32, "o": vector.I32})
	if got := countOps(np, OpCast); got != 0 {
		t.Fatalf("narrowable constant still introduced %d casts:\n%s", got, np)
	}
	var mapKind vector.Kind
	np.Walk(func(in *Instr) {
		if in.Op == OpMapBin {
			mapKind = in.Kind
		}
	})
	if mapKind != vector.I32 {
		t.Fatalf("map runs in %v, want i32", mapKind)
	}
}

func TestWideningCastInsertedWhenConstantTooBig(t *testing.T) {
	np := normalize(t, `
let xs = read 0 d 16
let a = map (\x -> x + 3000000000) xs
write o 0 a
`, map[string]vector.Kind{"d": vector.I32, "o": vector.I64})
	if got := countOps(np, OpCast); got == 0 {
		t.Fatalf("3e9 does not fit i32; a widening cast is required:\n%s", np)
	}
}

func TestMixedIntFloatPromotesToF64(t *testing.T) {
	np := normalize(t, `
let xs = read 0 d 16
let a = map (\x -> x * 1.5) xs
write o 0 a
`, map[string]vector.Kind{"d": vector.I64, "o": vector.F64})
	var kinds []vector.Kind
	np.Walk(func(in *Instr) {
		if in.Op == OpMapBin {
			kinds = append(kinds, in.Kind)
		}
	})
	if len(kinds) != 1 || kinds[0] != vector.F64 {
		t.Fatalf("int*float should compute in f64: %v\n%s", kinds, np)
	}
}

func TestAssignRedirectsDefiningInstruction(t *testing.T) {
	// `i := i + 1` must retarget the add into i's register, not emit a move.
	np := normalize(t, `
mut i
i := 0
loop {
  i := i + 1
  if i >= 3 then break
}
`, nil)
	// Constant initializers keep their move (the const register may be
	// shared/retyped); the expression assignment must redirect.
	moves := countOps(np, OpMove)
	if moves != 1 {
		t.Fatalf("want exactly the const-init move, got %d:\n%s", moves, np)
	}
	// The add must write i's named register directly.
	redirected := false
	np.Walk(func(in *Instr) {
		if in.Op == OpBinS && in.Arith == AAdd && np.Reg(in.Dst).Name == "i" {
			redirected = true
		}
	})
	if !redirected {
		t.Fatalf("i := i + 1 should retarget the add into i's register:\n%s", np)
	}
}

func TestMoveEmittedForAliasAssign(t *testing.T) {
	np := normalize(t, `
mut a
mut b
a := 1
b := 2
b := a
`, nil)
	if countOps(np, OpMove) == 0 {
		t.Fatalf("x := y needs a move:\n%s", np)
	}
}

func TestExternalsSortedAndTyped(t *testing.T) {
	np := normalize(t, `
let x = read 0 zeta 4
let y = read 0 alpha 4
write mid 0 (map (\a b -> a+b) x y)
`, map[string]vector.Kind{"zeta": vector.I64, "alpha": vector.I32, "mid": vector.I64})
	names := []string{}
	for _, e := range np.Externals {
		names = append(names, e.Name)
	}
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("externals = %v, want %v", names, want)
		}
	}
	if np.ExternalKind("alpha") != vector.I32 {
		t.Fatal("ExternalKind")
	}
	if np.ExternalKind("nope") != vector.Invalid {
		t.Fatal("missing external should be Invalid")
	}
}

func TestInstructionIDsAreDense(t *testing.T) {
	np := normalize(t, dsl.Figure2Source, i64Kinds("some_data", "v", "w"))
	seen := map[int]bool{}
	np.Walk(func(in *Instr) {
		if seen[in.ID] {
			t.Fatalf("duplicate instruction ID %d", in.ID)
		}
		seen[in.ID] = true
		if in.ID < 0 || in.ID >= np.NumInstrs {
			t.Fatalf("ID %d out of range [0,%d)", in.ID, np.NumInstrs)
		}
	})
	if len(seen) != np.NumInstrs {
		t.Fatalf("IDs %d, NumInstrs %d", len(seen), np.NumInstrs)
	}
}

func TestProgramStringRendering(t *testing.T) {
	np := normalize(t, dsl.Figure2Source, i64Kinds("some_data", "v", "w"))
	s := np.String()
	for _, frag := range []string{"loop {", "break", "select.cmp", "condense", "external some_data"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("program rendering misses %q:\n%s", frag, s)
		}
	}
}

func TestGeneralPredicateUsesSelectOverMask(t *testing.T) {
	np := normalize(t, `
let xs = read 0 d 16
let f = filter (\x -> x % 2 == 0) xs
write o 0 (condense f)
`, i64Kinds("d", "o"))
	if countOps(np, OpSelectCmp) != 0 {
		t.Fatalf("complex predicate must not use the fused select:\n%s", np)
	}
	if countOps(np, OpSelect) != 1 {
		t.Fatalf("want one general select:\n%s", np)
	}
}

func TestConstCmpFlippedIntoFusedSelect(t *testing.T) {
	np := normalize(t, `
let xs = read 0 d 16
let f = filter (\x -> 10 > x) xs
write o 0 (condense f)
`, i64Kinds("d", "o"))
	found := false
	np.Walk(func(in *Instr) {
		if in.Op == OpSelectCmp {
			found = true
			if in.Cmp != CLt {
				t.Fatalf("10 > x must become x < 10, got %v", in.Cmp)
			}
		}
	})
	if !found {
		t.Fatalf("const-on-left comparison should fuse:\n%s", np)
	}
}

func TestCmpNegate(t *testing.T) {
	pairs := map[CmpOp]CmpOp{CEq: CNe, CNe: CEq, CLt: CGe, CLe: CGt, CGt: CLe, CGe: CLt}
	for op, want := range pairs {
		if got := op.Negate(); got != want {
			t.Errorf("%v.Negate() = %v, want %v", op, got, want)
		}
	}
}

func TestInstrUsesAndString(t *testing.T) {
	in := &Instr{Op: OpMapBin, Dst: 3, A: 1, B: 2, C: NoReg, Arith: AAdd, Kind: vector.I64}
	uses := in.Uses()
	if len(uses) != 2 || uses[0] != 1 || uses[1] != 2 {
		t.Fatalf("uses = %v", uses)
	}
	if s := in.String(); !strings.Contains(s, "map.bin.add<i64>") {
		t.Fatalf("render = %q", s)
	}
	sc := &Instr{Op: OpBinS, Dst: 0, A: 1, B: 2, C: NoReg, Cmp: CGe, Kind: vector.I64}
	if s := sc.String(); !strings.Contains(s, "bin.s.ge") {
		t.Fatalf("scalar cmp render = %q", s)
	}
}

func TestFoldRequiresFlowArgument(t *testing.T) {
	prog, err := dsl.Parse(`
mut s
s := 1
let r = fold (\acc x -> acc + x) 0 s
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Normalize(prog, nil); err == nil || !strings.Contains(err.Error(), "flow") {
		t.Fatalf("fold over a scalar must fail, got %v", err)
	}
}

func TestNormalizeRejectsUncheckedProgram(t *testing.T) {
	prog, err := dsl.Parse(`x := 1`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Normalize(prog, nil); err == nil {
		t.Fatal("unchecked program must be rejected")
	}
}
