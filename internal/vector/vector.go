// Package vector provides the columnar data substrate used by every layer of
// the adaptive VM: typed vectors, selection vectors, chunks (cache-resident
// batches in the MonetDB/X100 style) and row/column storage layouts.
//
// Vectors are fixed-capacity, variable-length typed arrays. Filters never
// physically modify a vector; instead they compute a selection vector
// (see Sel) that downstream operations honour, exactly as the paper's
// Table I prescribes for the filter/condense skeletons.
package vector

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// DefaultChunkLen is the default number of tuples per chunk. 1024 keeps a
// handful of vectors resident in L1/L2, the regime vectorized interpretation
// is designed for.
const DefaultChunkLen = 1024

// Kind identifies the element type of a Vector.
type Kind uint8

// Element kinds supported by the substrate. The integer widths exist to
// support the paper's "compact data types" refinement ([12]): the normalizer
// may narrow i64 computations to i32/i16/i8 when value ranges permit.
const (
	Invalid Kind = iota
	Bool
	I8
	I16
	I32
	I64
	F64
	Str
)

var kindNames = [...]string{
	Invalid: "invalid",
	Bool:    "bool",
	I8:      "i8",
	I16:     "i16",
	I32:     "i32",
	I64:     "i64",
	F64:     "f64",
	Str:     "str",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Width returns the in-memory width of one element in bytes. Strings report
// the size of a string header; Bool reports 1.
func (k Kind) Width() int {
	switch k {
	case Bool, I8:
		return 1
	case I16:
		return 2
	case I32:
		return 4
	case I64, F64:
		return 8
	case Str:
		return 16
	default:
		return 0
	}
}

// IsInteger reports whether k is one of the integer kinds.
func (k Kind) IsInteger() bool {
	switch k {
	case I8, I16, I32, I64:
		return true
	}
	return false
}

// IsNumeric reports whether k supports arithmetic.
func (k Kind) IsNumeric() bool {
	return k.IsInteger() || k == F64
}

// ParseKind converts a type name as written in the DSL ("i64", "f64", ...)
// into a Kind.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if name == s && Kind(k) != Invalid {
			return Kind(k), nil
		}
	}
	return Invalid, fmt.Errorf("vector: unknown type %q", s)
}

// Vector is a typed, variable-length column of values. The zero Vector is
// invalid; use New or one of the From constructors.
//
// Exactly one of the storage slices is non-nil, matching kind. Accessors
// (I64, F64, ...) panic on kind mismatch: a mismatch is a programming error
// in the engine, not a user-facing condition.
type Vector struct {
	kind Kind
	n    int
	b    []bool
	i8   []int8
	i16  []int16
	i32  []int32
	i64  []int64
	f64  []float64
	str  []string
}

// New returns a zero-filled vector of the given kind and length with capacity
// at least cap.
func New(kind Kind, n, capacity int) *Vector {
	if capacity < n {
		capacity = n
	}
	v := &Vector{kind: kind, n: n}
	switch kind {
	case Bool:
		v.b = make([]bool, n, capacity)
	case I8:
		v.i8 = make([]int8, n, capacity)
	case I16:
		v.i16 = make([]int16, n, capacity)
	case I32:
		v.i32 = make([]int32, n, capacity)
	case I64:
		v.i64 = make([]int64, n, capacity)
	case F64:
		v.f64 = make([]float64, n, capacity)
	case Str:
		v.str = make([]string, n, capacity)
	default:
		panic(fmt.Sprintf("vector.New: invalid kind %v", kind))
	}
	return v
}

// NewLen returns a zero-filled vector of the given kind and length.
func NewLen(kind Kind, n int) *Vector { return New(kind, n, n) }

// FromBool wraps a bool slice (no copy).
func FromBool(data []bool) *Vector { return &Vector{kind: Bool, n: len(data), b: data} }

// FromI8 wraps an int8 slice (no copy).
func FromI8(data []int8) *Vector { return &Vector{kind: I8, n: len(data), i8: data} }

// FromI16 wraps an int16 slice (no copy).
func FromI16(data []int16) *Vector { return &Vector{kind: I16, n: len(data), i16: data} }

// FromI32 wraps an int32 slice (no copy).
func FromI32(data []int32) *Vector { return &Vector{kind: I32, n: len(data), i32: data} }

// FromI64 wraps an int64 slice (no copy).
func FromI64(data []int64) *Vector { return &Vector{kind: I64, n: len(data), i64: data} }

// FromF64 wraps a float64 slice (no copy).
func FromF64(data []float64) *Vector { return &Vector{kind: F64, n: len(data), f64: data} }

// FromStr wraps a string slice (no copy).
func FromStr(data []string) *Vector { return &Vector{kind: Str, n: len(data), str: data} }

// Kind returns the element kind.
func (v *Vector) Kind() Kind { return v.kind }

// Len returns the logical length.
func (v *Vector) Len() int { return v.n }

// Cap returns the storage capacity.
func (v *Vector) Cap() int {
	switch v.kind {
	case Bool:
		return cap(v.b)
	case I8:
		return cap(v.i8)
	case I16:
		return cap(v.i16)
	case I32:
		return cap(v.i32)
	case I64:
		return cap(v.i64)
	case F64:
		return cap(v.f64)
	case Str:
		return cap(v.str)
	}
	return 0
}

// SetLen changes the logical length. Growing beyond capacity reallocates.
func (v *Vector) SetLen(n int) {
	if n < 0 {
		panic("vector.SetLen: negative length")
	}
	if n > v.Cap() {
		v.grow(n)
	}
	switch v.kind {
	case Bool:
		v.b = v.b[:n]
	case I8:
		v.i8 = v.i8[:n]
	case I16:
		v.i16 = v.i16[:n]
	case I32:
		v.i32 = v.i32[:n]
	case I64:
		v.i64 = v.i64[:n]
	case F64:
		v.f64 = v.f64[:n]
	case Str:
		v.str = v.str[:n]
	}
	v.n = n
}

func (v *Vector) grow(n int) {
	c := v.Cap()*2 + 1
	if c < n {
		c = n
	}
	switch v.kind {
	case Bool:
		s := make([]bool, len(v.b), c)
		copy(s, v.b)
		v.b = s
	case I8:
		s := make([]int8, len(v.i8), c)
		copy(s, v.i8)
		v.i8 = s
	case I16:
		s := make([]int16, len(v.i16), c)
		copy(s, v.i16)
		v.i16 = s
	case I32:
		s := make([]int32, len(v.i32), c)
		copy(s, v.i32)
		v.i32 = s
	case I64:
		s := make([]int64, len(v.i64), c)
		copy(s, v.i64)
		v.i64 = s
	case F64:
		s := make([]float64, len(v.f64), c)
		copy(s, v.f64)
		v.f64 = s
	case Str:
		s := make([]string, len(v.str), c)
		copy(s, v.str)
		v.str = s
	}
}

func (v *Vector) kindCheck(k Kind) {
	if v.kind != k {
		panic(fmt.Sprintf("vector: accessed %v vector as %v", v.kind, k))
	}
}

// Bool returns the backing bool slice. Panics if the kind differs.
func (v *Vector) Bool() []bool { v.kindCheck(Bool); return v.b }

// I8 returns the backing int8 slice. Panics if the kind differs.
func (v *Vector) I8() []int8 { v.kindCheck(I8); return v.i8 }

// I16 returns the backing int16 slice. Panics if the kind differs.
func (v *Vector) I16() []int16 { v.kindCheck(I16); return v.i16 }

// I32 returns the backing int32 slice. Panics if the kind differs.
func (v *Vector) I32() []int32 { v.kindCheck(I32); return v.i32 }

// I64 returns the backing int64 slice. Panics if the kind differs.
func (v *Vector) I64() []int64 { v.kindCheck(I64); return v.i64 }

// F64 returns the backing float64 slice. Panics if the kind differs.
func (v *Vector) F64() []float64 { v.kindCheck(F64); return v.f64 }

// Str returns the backing string slice. Panics if the kind differs.
func (v *Vector) Str() []string { v.kindCheck(Str); return v.str }

// Clone returns a deep copy of v.
func (v *Vector) Clone() *Vector {
	out := New(v.kind, v.n, v.n)
	switch v.kind {
	case Bool:
		copy(out.b, v.b)
	case I8:
		copy(out.i8, v.i8)
	case I16:
		copy(out.i16, v.i16)
	case I32:
		copy(out.i32, v.i32)
	case I64:
		copy(out.i64, v.i64)
	case F64:
		copy(out.f64, v.f64)
	case Str:
		copy(out.str, v.str)
	}
	return out
}

// Slice returns a view of v[lo:hi] sharing storage with v.
func (v *Vector) Slice(lo, hi int) *Vector {
	if lo < 0 || hi > v.n || lo > hi {
		panic(fmt.Sprintf("vector.Slice: range [%d:%d] out of bounds (len %d)", lo, hi, v.n))
	}
	out := &Vector{kind: v.kind, n: hi - lo}
	switch v.kind {
	case Bool:
		out.b = v.b[lo:hi]
	case I8:
		out.i8 = v.i8[lo:hi]
	case I16:
		out.i16 = v.i16[lo:hi]
	case I32:
		out.i32 = v.i32[lo:hi]
	case I64:
		out.i64 = v.i64[lo:hi]
	case F64:
		out.f64 = v.f64[lo:hi]
	case Str:
		out.str = v.str[lo:hi]
	}
	return out
}

// CopyFrom copies src[srcLo:srcLo+n] into v[dstLo:dstLo+n]. Kinds must match.
func (v *Vector) CopyFrom(dstLo int, src *Vector, srcLo, n int) {
	if src.kind != v.kind {
		panic(fmt.Sprintf("vector.CopyFrom: kind mismatch %v vs %v", v.kind, src.kind))
	}
	switch v.kind {
	case Bool:
		copy(v.b[dstLo:dstLo+n], src.b[srcLo:srcLo+n])
	case I8:
		copy(v.i8[dstLo:dstLo+n], src.i8[srcLo:srcLo+n])
	case I16:
		copy(v.i16[dstLo:dstLo+n], src.i16[srcLo:srcLo+n])
	case I32:
		copy(v.i32[dstLo:dstLo+n], src.i32[srcLo:srcLo+n])
	case I64:
		copy(v.i64[dstLo:dstLo+n], src.i64[srcLo:srcLo+n])
	case F64:
		copy(v.f64[dstLo:dstLo+n], src.f64[srcLo:srcLo+n])
	case Str:
		copy(v.str[dstLo:dstLo+n], src.str[srcLo:srcLo+n])
	}
}

// AppendVector appends all elements of src to v. Kinds must match.
func (v *Vector) AppendVector(src *Vector) {
	old := v.n
	v.SetLen(old + src.n)
	v.CopyFrom(old, src, 0, src.n)
}

// Value is a dynamically typed scalar extracted from or written into a
// vector. It avoids interface{} boxing for the numeric fast paths.
type Value struct {
	Kind Kind
	B    bool
	I    int64 // used by all integer kinds
	F    float64
	S    string
}

// BoolValue wraps a bool as a Value.
func BoolValue(b bool) Value { return Value{Kind: Bool, B: b} }

// IntValue wraps an int64 as a Value of the given integer kind.
func IntValue(k Kind, i int64) Value { return Value{Kind: k, I: i} }

// I64Value wraps an int64 as an I64 Value.
func I64Value(i int64) Value { return Value{Kind: I64, I: i} }

// F64Value wraps a float64 as a Value.
func F64Value(f float64) Value { return Value{Kind: F64, F: f} }

// StrValue wraps a string as a Value.
func StrValue(s string) Value { return Value{Kind: Str, S: s} }

// String renders the value for debugging and test output.
func (x Value) String() string {
	switch x.Kind {
	case Bool:
		return strconv.FormatBool(x.B)
	case I8, I16, I32, I64:
		return strconv.FormatInt(x.I, 10)
	case F64:
		return strconv.FormatFloat(x.F, 'g', -1, 64)
	case Str:
		return strconv.Quote(x.S)
	}
	return "<invalid>"
}

// Equal reports deep equality of two values, with exact float comparison.
func (x Value) Equal(y Value) bool {
	if x.Kind != y.Kind {
		return false
	}
	switch x.Kind {
	case Bool:
		return x.B == y.B
	case I8, I16, I32, I64:
		return x.I == y.I
	case F64:
		return x.F == y.F || (math.IsNaN(x.F) && math.IsNaN(y.F))
	case Str:
		return x.S == y.S
	}
	return true
}

// Get returns element i as a Value.
func (v *Vector) Get(i int) Value {
	switch v.kind {
	case Bool:
		return Value{Kind: Bool, B: v.b[i]}
	case I8:
		return Value{Kind: I8, I: int64(v.i8[i])}
	case I16:
		return Value{Kind: I16, I: int64(v.i16[i])}
	case I32:
		return Value{Kind: I32, I: int64(v.i32[i])}
	case I64:
		return Value{Kind: I64, I: v.i64[i]}
	case F64:
		return Value{Kind: F64, F: v.f64[i]}
	case Str:
		return Value{Kind: Str, S: v.str[i]}
	}
	panic("vector.Get: invalid vector")
}

// Set writes Value x into element i, converting between integer widths.
func (v *Vector) Set(i int, x Value) {
	switch v.kind {
	case Bool:
		v.b[i] = x.B
	case I8:
		v.i8[i] = int8(x.I)
	case I16:
		v.i16[i] = int16(x.I)
	case I32:
		v.i32[i] = int32(x.I)
	case I64:
		v.i64[i] = x.I
	case F64:
		if x.Kind == F64 {
			v.f64[i] = x.F
		} else {
			v.f64[i] = float64(x.I)
		}
	case Str:
		v.str[i] = x.S
	default:
		panic("vector.Set: invalid vector")
	}
}

// AppendValue appends a scalar to the end of the vector.
func (v *Vector) AppendValue(x Value) {
	v.SetLen(v.n + 1)
	v.Set(v.n-1, x)
}

// Fill sets every element of v to x.
func (v *Vector) Fill(x Value) {
	for i := 0; i < v.n; i++ {
		v.Set(i, x)
	}
}

// Equal reports whether v and w have the same kind, length and elements.
func (v *Vector) Equal(w *Vector) bool {
	if v.kind != w.kind || v.n != w.n {
		return false
	}
	for i := 0; i < v.n; i++ {
		if !v.Get(i).Equal(w.Get(i)) {
			return false
		}
	}
	return true
}

// String renders a short, human-readable preview of the vector.
func (v *Vector) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%v[%d]{", v.kind, v.n)
	limit := v.n
	if limit > 8 {
		limit = 8
	}
	for i := 0; i < limit; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v.Get(i).String())
	}
	if v.n > limit {
		sb.WriteString(", …")
	}
	sb.WriteString("}")
	return sb.String()
}

// Convert returns a copy of v converted to kind dst. Integer→integer
// conversions truncate like Go conversions; integer↔float convert by value.
// Converting Str or Bool to a numeric kind (or vice versa) is an error.
func (v *Vector) Convert(dst Kind) (*Vector, error) {
	if dst == v.kind {
		return v.Clone(), nil
	}
	if !v.kind.IsNumeric() || !dst.IsNumeric() {
		return nil, fmt.Errorf("vector: cannot convert %v to %v", v.kind, dst)
	}
	out := NewLen(dst, v.n)
	for i := 0; i < v.n; i++ {
		x := v.Get(i)
		if dst == F64 {
			if v.kind == F64 {
				out.f64[i] = x.F
			} else {
				out.f64[i] = float64(x.I)
			}
			continue
		}
		var iv int64
		if v.kind == F64 {
			iv = int64(x.F)
		} else {
			iv = x.I
		}
		out.Set(i, Value{Kind: dst, I: iv})
	}
	return out, nil
}

// FitsIn reports whether every element of the integer vector v fits in the
// integer kind dst without truncation. Used by the compact-data-types
// refinement.
func (v *Vector) FitsIn(dst Kind) bool {
	if !v.kind.IsInteger() || !dst.IsInteger() {
		return false
	}
	lo, hi := IntRange(dst)
	for i := 0; i < v.n; i++ {
		x := v.Get(i).I
		if x < lo || x > hi {
			return false
		}
	}
	return true
}

// IntRange returns the representable range of an integer kind.
func IntRange(k Kind) (lo, hi int64) {
	switch k {
	case I8:
		return math.MinInt8, math.MaxInt8
	case I16:
		return math.MinInt16, math.MaxInt16
	case I32:
		return math.MinInt32, math.MaxInt32
	case I64:
		return math.MinInt64, math.MaxInt64
	}
	return 0, -1
}

// MinIntKind returns the narrowest integer kind that can represent all values
// in [lo, hi].
func MinIntKind(lo, hi int64) Kind {
	for _, k := range []Kind{I8, I16, I32} {
		klo, khi := IntRange(k)
		if lo >= klo && hi <= khi {
			return k
		}
	}
	return I64
}

// Bytes returns the payload size of the vector in bytes (logical length times
// element width). Used by the device cost models.
func (v *Vector) Bytes() int { return v.n * v.kind.Width() }
