package vector

import (
	"testing"
	"testing/quick"
)

func TestAllSel(t *testing.T) {
	s := AllSel(4)
	if len(s) != 4 || s[0] != 0 || s[3] != 3 {
		t.Errorf("AllSel(4) = %v", s)
	}
	if err := s.Validate(4); err != nil {
		t.Error(err)
	}
}

func TestSelCount(t *testing.T) {
	if Sel(nil).Count(7) != 7 {
		t.Error("nil sel counts all")
	}
	if (Sel{1, 3}).Count(7) != 2 {
		t.Error("explicit sel counts len")
	}
}

func TestSelValidate(t *testing.T) {
	if err := (Sel{0, 2, 5}).Validate(6); err != nil {
		t.Error(err)
	}
	if err := (Sel{2, 1}).Validate(6); err == nil {
		t.Error("unsorted must fail")
	}
	if err := (Sel{0, 0}).Validate(6); err == nil {
		t.Error("duplicate must fail")
	}
	if err := (Sel{6}).Validate(6); err == nil {
		t.Error("out of range must fail")
	}
	if err := (Sel{-1}).Validate(6); err == nil {
		t.Error("negative must fail")
	}
}

func TestIntersect(t *testing.T) {
	a := Sel{0, 2, 4, 6}
	b := Sel{2, 3, 4, 7}
	got := Intersect(a, b, 8)
	want := Sel{2, 4}
	if len(got) != len(want) || got[0] != 2 || got[1] != 4 {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if Intersect(nil, nil, 5) != nil {
		t.Error("nil∩nil = nil")
	}
	if got := Intersect(nil, b, 8); len(got) != len(b) {
		t.Error("nil∩b = b")
	}
	if got := Intersect(a, nil, 8); len(got) != len(a) {
		t.Error("a∩nil = a")
	}
}

func TestUnionComplement(t *testing.T) {
	a := Sel{0, 2}
	b := Sel{1, 2, 5}
	u := Union(a, b)
	want := Sel{0, 1, 2, 5}
	if len(u) != len(want) {
		t.Fatalf("Union = %v", u)
	}
	for i := range want {
		if u[i] != want[i] {
			t.Fatalf("Union = %v, want %v", u, want)
		}
	}
	c := Complement(u, 6)
	wantC := Sel{3, 4}
	if len(c) != 2 || c[0] != 3 || c[1] != 4 {
		t.Errorf("Complement = %v, want %v", c, wantC)
	}
	if len(Complement(nil, 4)) != 0 {
		t.Error("complement of all-selected is empty")
	}
}

func TestMaskRoundTrip(t *testing.T) {
	mask := []bool{true, false, true, true, false}
	s := SelFromMask(mask)
	if len(s) != 3 || s[0] != 0 || s[1] != 2 || s[2] != 3 {
		t.Fatalf("SelFromMask = %v", s)
	}
	back := MaskFromSel(s, 5)
	for i := range mask {
		if mask[i] != back[i] {
			t.Fatalf("mask round trip: %v vs %v", mask, back)
		}
	}
	all := MaskFromSel(nil, 3)
	if !all[0] || !all[2] {
		t.Error("nil sel mask should be all true")
	}
}

func TestCondenseVector(t *testing.T) {
	v := FromI64([]int64{10, 11, 12, 13})
	out := Condense(v, Sel{1, 3})
	if out.Len() != 2 || out.I64()[0] != 11 || out.I64()[1] != 13 {
		t.Errorf("Condense = %v", out)
	}
	clone := Condense(v, nil)
	if !clone.Equal(v) {
		t.Error("Condense(nil) clones")
	}
	for _, k := range []Kind{Bool, I8, I16, I32, F64, Str} {
		w := NewLen(k, 4)
		got := Condense(w, Sel{0, 2})
		if got.Len() != 2 || got.Kind() != k {
			t.Errorf("Condense %v broken", k)
		}
	}
}

// Property: mask→sel→mask is the identity.
func TestMaskSelRoundTripProperty(t *testing.T) {
	f := func(mask []bool) bool {
		s := SelFromMask(mask)
		back := MaskFromSel(s, len(mask))
		for i := range mask {
			if mask[i] != back[i] {
				return false
			}
		}
		return s.Validate(len(mask)+1) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Intersect(s, Complement(s)) is empty and Union covers [0,n).
func TestSelAlgebraProperty(t *testing.T) {
	f := func(mask []bool) bool {
		n := len(mask)
		s := SelFromMask(mask)
		c := Complement(s, n)
		if len(Intersect(s, c, n)) != 0 {
			return false
		}
		u := Union(s, c)
		return len(u) == n && u.Validate(n) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
