package vector

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Bool: "bool", I8: "i8", I16: "i16", I32: "i32", I64: "i64", F64: "f64", Str: "str",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range []Kind{Bool, I8, I16, I32, I64, F64, Str} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("banana"); err == nil {
		t.Error("ParseKind(banana) should fail")
	}
	if _, err := ParseKind("invalid"); err == nil {
		t.Error("ParseKind(invalid) should fail: Invalid is not a usable kind")
	}
}

func TestKindWidth(t *testing.T) {
	widths := map[Kind]int{Bool: 1, I8: 1, I16: 2, I32: 4, I64: 8, F64: 8, Str: 16}
	for k, w := range widths {
		if k.Width() != w {
			t.Errorf("%v.Width() = %d, want %d", k, k.Width(), w)
		}
	}
}

func TestKindPredicates(t *testing.T) {
	for _, k := range []Kind{I8, I16, I32, I64} {
		if !k.IsInteger() || !k.IsNumeric() {
			t.Errorf("%v should be integer+numeric", k)
		}
	}
	if F64.IsInteger() {
		t.Error("f64 is not integer")
	}
	if !F64.IsNumeric() {
		t.Error("f64 is numeric")
	}
	for _, k := range []Kind{Bool, Str} {
		if k.IsNumeric() {
			t.Errorf("%v should not be numeric", k)
		}
	}
}

func TestNewAndAccessors(t *testing.T) {
	for _, k := range []Kind{Bool, I8, I16, I32, I64, F64, Str} {
		v := NewLen(k, 5)
		if v.Kind() != k || v.Len() != 5 {
			t.Fatalf("NewLen(%v,5) got kind=%v len=%d", k, v.Kind(), v.Len())
		}
	}
	v := FromI64([]int64{1, 2, 3})
	if v.I64()[1] != 2 {
		t.Error("FromI64 accessor broken")
	}
	defer func() {
		if recover() == nil {
			t.Error("wrong-kind accessor should panic")
		}
	}()
	_ = v.F64()
}

func TestSetLenGrow(t *testing.T) {
	v := New(I64, 2, 4)
	v.I64()[0], v.I64()[1] = 10, 20
	v.SetLen(8)
	if v.Len() != 8 {
		t.Fatalf("len=%d", v.Len())
	}
	if v.I64()[0] != 10 || v.I64()[1] != 20 {
		t.Error("grow lost data")
	}
	if v.I64()[7] != 0 {
		t.Error("grown area should be zeroed")
	}
	v.SetLen(1)
	if v.Len() != 1 {
		t.Error("shrink failed")
	}
}

func TestGetSetAllKinds(t *testing.T) {
	cases := []struct {
		k Kind
		x Value
	}{
		{Bool, BoolValue(true)},
		{I8, IntValue(I8, -5)},
		{I16, IntValue(I16, 300)},
		{I32, IntValue(I32, -70000)},
		{I64, I64Value(1 << 40)},
		{F64, F64Value(3.25)},
		{Str, StrValue("hello")},
	}
	for _, c := range cases {
		v := NewLen(c.k, 3)
		v.Set(1, c.x)
		got := v.Get(1)
		if !got.Equal(c.x) {
			t.Errorf("%v: Get(Set(%v)) = %v", c.k, c.x, got)
		}
	}
}

func TestValueString(t *testing.T) {
	if s := I64Value(42).String(); s != "42" {
		t.Errorf("got %q", s)
	}
	if s := StrValue("a").String(); s != `"a"` {
		t.Errorf("got %q", s)
	}
	if s := BoolValue(true).String(); s != "true" {
		t.Errorf("got %q", s)
	}
	if s := (Value{}).String(); s != "<invalid>" {
		t.Errorf("got %q", s)
	}
}

func TestValueEqualNaN(t *testing.T) {
	a, b := F64Value(math.NaN()), F64Value(math.NaN())
	if !a.Equal(b) {
		t.Error("NaN should equal NaN under Value.Equal (test semantics)")
	}
	if F64Value(1).Equal(I64Value(1)) {
		t.Error("different kinds are unequal")
	}
}

func TestCloneIndependence(t *testing.T) {
	v := FromI32([]int32{1, 2, 3})
	w := v.Clone()
	w.I32()[0] = 99
	if v.I32()[0] != 1 {
		t.Error("clone shares storage")
	}
	if !v.Equal(FromI32([]int32{1, 2, 3})) {
		t.Error("Equal broken")
	}
}

func TestSliceView(t *testing.T) {
	v := FromI64([]int64{0, 1, 2, 3, 4})
	s := v.Slice(1, 4)
	if s.Len() != 3 || s.I64()[0] != 1 {
		t.Fatalf("slice wrong: %v", s)
	}
	s.I64()[0] = 42
	if v.I64()[1] != 42 {
		t.Error("slice should share storage")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Slice should panic")
		}
	}()
	v.Slice(3, 10)
}

func TestCopyFromAppendVector(t *testing.T) {
	a := FromF64([]float64{1, 2, 3})
	b := NewLen(F64, 3)
	b.CopyFrom(0, a, 0, 3)
	if !a.Equal(b) {
		t.Error("CopyFrom mismatch")
	}
	a.AppendVector(b)
	if a.Len() != 6 || a.F64()[5] != 3 {
		t.Error("AppendVector broken")
	}
}

func TestAppendValueFill(t *testing.T) {
	v := New(Str, 0, 0)
	v.AppendValue(StrValue("x"))
	v.AppendValue(StrValue("y"))
	if v.Len() != 2 || v.Str()[1] != "y" {
		t.Error("AppendValue broken")
	}
	v.Fill(StrValue("z"))
	if v.Str()[0] != "z" || v.Str()[1] != "z" {
		t.Error("Fill broken")
	}
}

func TestConvert(t *testing.T) {
	v := FromI64([]int64{1, -2, 300})
	w, err := v.Convert(I16)
	if err != nil {
		t.Fatal(err)
	}
	if w.I16()[2] != 300 {
		t.Error("convert to i16 wrong")
	}
	f, err := v.Convert(F64)
	if err != nil || f.F64()[1] != -2 {
		t.Errorf("convert to f64 wrong: %v %v", f, err)
	}
	back, err := f.Convert(I64)
	if err != nil || back.I64()[2] != 300 {
		t.Errorf("f64→i64 wrong: %v %v", back, err)
	}
	if _, err := FromStr([]string{"a"}).Convert(I64); err == nil {
		t.Error("str→i64 must fail")
	}
	same, err := v.Convert(I64)
	if err != nil || !same.Equal(v) {
		t.Error("identity convert should clone")
	}
}

func TestFitsInAndRanges(t *testing.T) {
	v := FromI64([]int64{100, -100})
	if !v.FitsIn(I8) {
		t.Error("±100 fits i8")
	}
	v2 := FromI64([]int64{1000})
	if v2.FitsIn(I8) {
		t.Error("1000 does not fit i8")
	}
	if !v2.FitsIn(I16) {
		t.Error("1000 fits i16")
	}
	if FromF64([]float64{1}).FitsIn(I8) {
		t.Error("FitsIn only applies to integer vectors")
	}
	if MinIntKind(0, 100) != I8 {
		t.Error("MinIntKind(0,100)")
	}
	if MinIntKind(0, 40000) != I32 {
		t.Error("MinIntKind(0,40000)")
	}
	if MinIntKind(math.MinInt64, 0) != I64 {
		t.Error("MinIntKind full range")
	}
}

func TestVectorString(t *testing.T) {
	v := FromI64([]int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	s := v.String()
	if s == "" || s[0:3] != "i64" {
		t.Errorf("String() = %q", s)
	}
}

func TestBytes(t *testing.T) {
	if FromI32([]int32{1, 2, 3}).Bytes() != 12 {
		t.Error("Bytes i32")
	}
	if FromF64([]float64{1}).Bytes() != 8 {
		t.Error("Bytes f64")
	}
}

// Property: Convert to a wider integer kind and back is the identity.
func TestConvertRoundTripProperty(t *testing.T) {
	f := func(xs []int16) bool {
		v := FromI16(append([]int16(nil), xs...))
		wide, err := v.Convert(I64)
		if err != nil {
			return false
		}
		back, err := wide.Convert(I16)
		if err != nil {
			return false
		}
		return back.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Clone is always Equal, Slice(0,len) preserves contents.
func TestCloneSliceProperty(t *testing.T) {
	f := func(xs []int64) bool {
		v := FromI64(append([]int64(nil), xs...))
		if !v.Clone().Equal(v) {
			return false
		}
		return v.Slice(0, v.Len()).Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
