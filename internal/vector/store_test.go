package vector

import (
	"testing"
	"testing/quick"
)

func testSchema() Schema {
	return NewSchema("id", I64, "qty", I32, "price", F64, "flag", Str, "ok", Bool)
}

func fillStore(t *testing.T, appendRow func(...Value), n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		appendRow(
			I64Value(int64(i)),
			IntValue(I32, int64(i%50)),
			F64Value(float64(i)*1.5),
			StrValue(string(rune('A'+i%3))),
			BoolValue(i%2 == 0),
		)
	}
}

func scanAll(st Store, cols []int) []*Vector {
	sch := st.Schema()
	dst := make([]*Vector, len(cols))
	for i, c := range cols {
		dst[i] = NewLen(sch.Kinds[c], st.Rows())
	}
	st.Scan(0, st.Rows(), cols, dst)
	return dst
}

func TestDSMvsNSMEquivalence(t *testing.T) {
	dsm := NewDSMStore(testSchema())
	nsm := NewNSMStore(testSchema())
	fillStore(t, dsm.AppendRow, 137)
	fillStore(t, nsm.AppendRow, 137)
	if dsm.Rows() != 137 || nsm.Rows() != 137 {
		t.Fatalf("rows: dsm=%d nsm=%d", dsm.Rows(), nsm.Rows())
	}
	cols := []int{0, 1, 2, 3, 4}
	d := scanAll(dsm, cols)
	n := scanAll(nsm, cols)
	for i := range cols {
		if !d[i].Equal(n[i]) {
			t.Errorf("column %d differs between DSM and NSM:\n%v\n%v", i, d[i], n[i])
		}
	}
}

func TestScanPartial(t *testing.T) {
	dsm := NewDSMStore(testSchema())
	fillStore(t, dsm.AppendRow, 20)
	dst := []*Vector{NewLen(I64, 8)}
	got := dsm.Scan(15, 8, []int{0}, dst)
	if got != 5 {
		t.Fatalf("Scan past end should clamp: got %d", got)
	}
	if dst[0].Len() != 5 || dst[0].I64()[4] != 19 {
		t.Errorf("tail scan wrong: %v", dst[0])
	}
	if dsm.Scan(100, 4, []int{0}, dst) != 0 {
		t.Error("scan past end returns 0")
	}
}

func TestNSMScanSubsetOfColumns(t *testing.T) {
	nsm := NewNSMStore(testSchema())
	fillStore(t, nsm.AppendRow, 10)
	dst := []*Vector{NewLen(F64, 10), NewLen(Str, 10)}
	nsm.Scan(0, 10, []int{2, 3}, dst)
	if dst[0].F64()[2] != 3.0 {
		t.Errorf("price[2] = %v", dst[0].F64()[2])
	}
	if dst[1].Str()[4] != "B" {
		t.Errorf("flag[4] = %q", dst[1].Str()[4])
	}
}

func TestAppendChunk(t *testing.T) {
	sch := NewSchema("a", I64, "b", F64)
	c := ChunkOf("a", FromI64([]int64{1, 2, 3}), "b", FromF64([]float64{10, 20, 30}))
	c.SetSel(Sel{0, 2})

	dsm := NewDSMStore(sch)
	dsm.AppendChunk(c)
	if dsm.Rows() != 2 {
		t.Fatalf("selected append should keep 2 rows, got %d", dsm.Rows())
	}
	if dsm.Col(0).I64()[1] != 3 {
		t.Error("selection not honoured in DSM append")
	}

	nsm := NewNSMStore(sch)
	nsm.AppendChunk(c)
	dst := []*Vector{NewLen(I64, 2), NewLen(F64, 2)}
	nsm.Scan(0, 2, []int{0, 1}, dst)
	if dst[0].I64()[1] != 3 || dst[1].F64()[1] != 30 {
		t.Error("selection not honoured in NSM append")
	}
}

func TestSchemaColumnIndex(t *testing.T) {
	s := testSchema()
	if s.ColumnIndex("price") != 2 {
		t.Error("ColumnIndex(price)")
	}
	if s.ColumnIndex("nope") != -1 {
		t.Error("ColumnIndex missing should be -1")
	}
}

func TestChunkBasics(t *testing.T) {
	c := ChunkOf("x", FromI64([]int64{5, 6}))
	if c.Len() != 2 || c.Width() != 1 || c.Name(0) != "x" {
		t.Error("chunk basics broken")
	}
	if c.Column("x") == nil || c.Column("y") != nil {
		t.Error("Column lookup broken")
	}
	c.SetSel(Sel{1})
	if c.SelectedLen() != 1 {
		t.Error("SelectedLen")
	}
	cc := c.Condense()
	if cc.Len() != 1 || cc.MustColumn("x").I64()[0] != 6 {
		t.Error("chunk condense broken")
	}
	cl := c.Clone()
	cl.Col(0).I64()[0] = 99
	if c.Col(0).I64()[0] == 99 {
		t.Error("clone shares storage")
	}
	if c.String() == "" {
		t.Error("String empty")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustColumn should panic on missing column")
		}
	}()
	c.MustColumn("nope")
}

func TestChunkAddLengthMismatchPanics(t *testing.T) {
	c := ChunkOf("x", FromI64([]int64{1, 2}))
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	c.Add("y", FromI64([]int64{1}))
}

// Property: any row stored through NSM reads back identically via Scan.
func TestNSMRoundTripProperty(t *testing.T) {
	sch := NewSchema("a", I64, "b", I16, "c", F64)
	f := func(a int64, b int16, cf float64) bool {
		st := NewNSMStore(sch)
		st.AppendRow(I64Value(a), IntValue(I16, int64(b)), F64Value(cf))
		dst := []*Vector{NewLen(I64, 1), NewLen(I16, 1), NewLen(F64, 1)}
		st.Scan(0, 1, []int{0, 1, 2}, dst)
		return dst[0].I64()[0] == a && dst[1].I16()[0] == b &&
			(dst[2].F64()[0] == cf || cf != cf)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
