package vector

import "fmt"

// Sel is a selection vector: a sorted list of indexes into a chunk that are
// logically "alive". A nil Sel means all rows are selected. Filters produce
// selection vectors instead of physically compacting the data; the condense
// skeleton materializes the selection (Table I of the paper).
type Sel []int32

// AllSel returns an explicit identity selection of length n. Most code should
// use nil instead; AllSel exists for algorithms that need a mutable base.
func AllSel(n int) Sel {
	s := make(Sel, n)
	for i := range s {
		s[i] = int32(i)
	}
	return s
}

// Count returns the number of selected rows given a base row count n.
func (s Sel) Count(n int) int {
	if s == nil {
		return n
	}
	return len(s)
}

// Validate checks that s is sorted, unique and within [0, n).
func (s Sel) Validate(n int) error {
	prev := int32(-1)
	for i, x := range s {
		if x < 0 || int(x) >= n {
			return fmt.Errorf("sel[%d]=%d out of range [0,%d)", i, x, n)
		}
		if x <= prev {
			return fmt.Errorf("sel not strictly increasing at %d: %d after %d", i, x, prev)
		}
		prev = x
	}
	return nil
}

// Intersect returns the intersection of two selection vectors over a base of
// n rows. Either may be nil (meaning all rows).
func Intersect(a, b Sel, n int) Sel {
	if a == nil {
		if b == nil {
			return nil
		}
		return b
	}
	if b == nil {
		return a
	}
	out := make(Sel, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Union returns the sorted union of two selection vectors.
func Union(a, b Sel) Sel {
	out := make(Sel, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Complement returns the rows in [0, n) that are not in s.
func Complement(s Sel, n int) Sel {
	if s == nil {
		return Sel{}
	}
	out := make(Sel, 0, n-len(s))
	j := 0
	for i := int32(0); int(i) < n; i++ {
		if j < len(s) && s[j] == i {
			j++
			continue
		}
		out = append(out, i)
	}
	return out
}

// SelFromMask converts a boolean mask into a selection vector.
func SelFromMask(mask []bool) Sel {
	out := make(Sel, 0, len(mask))
	for i, b := range mask {
		if b {
			out = append(out, int32(i))
		}
	}
	return out
}

// MaskFromSel converts a selection vector over n rows into a boolean mask.
func MaskFromSel(s Sel, n int) []bool {
	mask := make([]bool, n)
	if s == nil {
		for i := range mask {
			mask[i] = true
		}
		return mask
	}
	for _, x := range s {
		mask[x] = true
	}
	return mask
}

// Condense materializes the selection: it returns a new vector containing
// only the selected elements of v, in order. With a nil selection it clones.
func Condense(v *Vector, s Sel) *Vector {
	if s == nil {
		return v.Clone()
	}
	out := New(v.Kind(), len(s), len(s))
	switch v.Kind() {
	case Bool:
		src, dst := v.Bool(), out.Bool()
		for i, x := range s {
			dst[i] = src[x]
		}
	case I8:
		src, dst := v.I8(), out.I8()
		for i, x := range s {
			dst[i] = src[x]
		}
	case I16:
		src, dst := v.I16(), out.I16()
		for i, x := range s {
			dst[i] = src[x]
		}
	case I32:
		src, dst := v.I32(), out.I32()
		for i, x := range s {
			dst[i] = src[x]
		}
	case I64:
		src, dst := v.I64(), out.I64()
		for i, x := range s {
			dst[i] = src[x]
		}
	case F64:
		src, dst := v.F64(), out.F64()
		for i, x := range s {
			dst[i] = src[x]
		}
	case Str:
		src, dst := v.Str(), out.Str()
		for i, x := range s {
			dst[i] = src[x]
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
