package vector

import "fmt"

// This file implements the two table-storage layouts contrasted in the
// paper's §II transformation list via [33] (Zukowski et al., "DSM vs. NSM"):
//
//   - DSM (decomposed storage model): one contiguous array per column. Reads
//     that touch few columns stream only those arrays.
//   - NSM (n-ary storage model): rows laid out contiguously. Reads that touch
//     all columns of a row enjoy locality; reads that touch few columns drag
//     the whole row through the cache.
//
// Both implement Store, so experiment E10 can scan either through the same
// code path.

// Schema describes the columns of a stored table.
type Schema struct {
	Names []string
	Kinds []Kind
}

// NewSchema builds a schema from alternating name/kind pairs.
func NewSchema(pairs ...any) Schema {
	var s Schema
	for i := 0; i < len(pairs); i += 2 {
		s.Names = append(s.Names, pairs[i].(string))
		s.Kinds = append(s.Kinds, pairs[i+1].(Kind))
	}
	return s
}

// ColumnIndex returns the index of the named column, or -1.
func (s Schema) ColumnIndex(name string) int {
	for i, n := range s.Names {
		if n == name {
			return i
		}
	}
	return -1
}

// Store is a materialized table that can be scanned chunk-at-a-time.
type Store interface {
	// Schema returns the table schema.
	Schema() Schema
	// Rows returns the row count.
	Rows() int
	// Scan copies rows [lo, lo+n) of the named columns into dst vectors,
	// which must have matching kinds and length ≥ n. It returns the number
	// of rows produced.
	Scan(lo, n int, cols []int, dst []*Vector) int
}

// DSMStore stores each column as its own Vector (column-major).
type DSMStore struct {
	schema Schema
	cols   []*Vector
	rows   int
}

// NewDSMStore creates an empty DSM table with the given schema.
func NewDSMStore(schema Schema) *DSMStore {
	st := &DSMStore{schema: schema}
	for _, k := range schema.Kinds {
		st.cols = append(st.cols, New(k, 0, 0))
	}
	return st
}

// Schema returns the table schema.
func (st *DSMStore) Schema() Schema { return st.schema }

// Rows returns the row count.
func (st *DSMStore) Rows() int { return st.rows }

// Col returns the backing vector of column i. The caller must not resize it.
func (st *DSMStore) Col(i int) *Vector { return st.cols[i] }

// AppendChunk appends all (selected) rows of a chunk whose columns match the
// schema by position.
func (st *DSMStore) AppendChunk(c *Chunk) {
	if c.Width() != len(st.cols) {
		panic(fmt.Sprintf("DSMStore.AppendChunk: %d columns, want %d", c.Width(), len(st.cols)))
	}
	cc := c
	if c.Sel() != nil {
		cc = c.Condense()
	}
	for i := range st.cols {
		st.cols[i].AppendVector(cc.Col(i))
	}
	st.rows += cc.Len()
}

// AppendRow appends one row given as scalar values.
func (st *DSMStore) AppendRow(vals ...Value) {
	if len(vals) != len(st.cols) {
		panic("DSMStore.AppendRow: arity mismatch")
	}
	for i, v := range vals {
		st.cols[i].AppendValue(v)
	}
	st.rows++
}

// Scan implements Store by copying slices of the requested columns.
func (st *DSMStore) Scan(lo, n int, cols []int, dst []*Vector) int {
	if lo >= st.rows {
		return 0
	}
	if lo+n > st.rows {
		n = st.rows - lo
	}
	for k, ci := range cols {
		dst[k].SetLen(n)
		dst[k].CopyFrom(0, st.cols[ci], lo, n)
	}
	return n
}

// NSMStore stores fixed-width rows contiguously (row-major). String columns
// are kept in a side array since they are not fixed width; the row holds an
// index into it. This mirrors how real NSM pages store out-of-line data.
type NSMStore struct {
	schema  Schema
	rowSize int
	offsets []int
	data    []byte
	strings []string
	rows    int
}

// NewNSMStore creates an empty NSM table with the given schema.
func NewNSMStore(schema Schema) *NSMStore {
	st := &NSMStore{schema: schema}
	for _, k := range schema.Kinds {
		st.offsets = append(st.offsets, st.rowSize)
		switch k {
		case Bool, I8:
			st.rowSize++
		case I16:
			st.rowSize += 2
		case I32:
			st.rowSize += 4
		case I64, F64, Str:
			st.rowSize += 8 // Str stores an 8-byte index into st.strings
		default:
			panic(fmt.Sprintf("NSMStore: unsupported kind %v", k))
		}
	}
	return st
}

// Schema returns the table schema.
func (st *NSMStore) Schema() Schema { return st.schema }

// Rows returns the row count.
func (st *NSMStore) Rows() int { return st.rows }

// RowSize returns the fixed byte width of one row.
func (st *NSMStore) RowSize() int { return st.rowSize }

func putU64(b []byte, x uint64) {
	b[0] = byte(x)
	b[1] = byte(x >> 8)
	b[2] = byte(x >> 16)
	b[3] = byte(x >> 24)
	b[4] = byte(x >> 32)
	b[5] = byte(x >> 40)
	b[6] = byte(x >> 48)
	b[7] = byte(x >> 56)
}

func getU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// AppendRow appends one row given as scalar values.
func (st *NSMStore) AppendRow(vals ...Value) {
	if len(vals) != len(st.schema.Kinds) {
		panic("NSMStore.AppendRow: arity mismatch")
	}
	base := len(st.data)
	st.data = append(st.data, make([]byte, st.rowSize)...)
	row := st.data[base:]
	for i, v := range vals {
		off := st.offsets[i]
		switch st.schema.Kinds[i] {
		case Bool:
			if v.B {
				row[off] = 1
			}
		case I8:
			row[off] = byte(int8(v.I))
		case I16:
			x := uint16(int16(v.I))
			row[off] = byte(x)
			row[off+1] = byte(x >> 8)
		case I32:
			x := uint32(int32(v.I))
			row[off] = byte(x)
			row[off+1] = byte(x >> 8)
			row[off+2] = byte(x >> 16)
			row[off+3] = byte(x >> 24)
		case I64:
			putU64(row[off:], uint64(v.I))
		case F64:
			putU64(row[off:], mathFloat64bits(v.F))
		case Str:
			putU64(row[off:], uint64(len(st.strings)))
			st.strings = append(st.strings, v.S)
		}
	}
	st.rows++
}

// AppendChunk appends all (selected) rows of a chunk matching the schema.
func (st *NSMStore) AppendChunk(c *Chunk) {
	cc := c
	if c.Sel() != nil {
		cc = c.Condense()
	}
	vals := make([]Value, cc.Width())
	for r := 0; r < cc.Len(); r++ {
		for i := 0; i < cc.Width(); i++ {
			vals[i] = cc.Col(i).Get(r)
		}
		st.AppendRow(vals...)
	}
}

// Scan implements Store by gathering the requested fields out of each row.
func (st *NSMStore) Scan(lo, n int, cols []int, dst []*Vector) int {
	if lo >= st.rows {
		return 0
	}
	if lo+n > st.rows {
		n = st.rows - lo
	}
	for k := range cols {
		dst[k].SetLen(n)
	}
	for r := 0; r < n; r++ {
		row := st.data[(lo+r)*st.rowSize:]
		for k, ci := range cols {
			off := st.offsets[ci]
			switch st.schema.Kinds[ci] {
			case Bool:
				dst[k].Bool()[r] = row[off] != 0
			case I8:
				dst[k].I8()[r] = int8(row[off])
			case I16:
				dst[k].I16()[r] = int16(uint16(row[off]) | uint16(row[off+1])<<8)
			case I32:
				dst[k].I32()[r] = int32(uint32(row[off]) | uint32(row[off+1])<<8 |
					uint32(row[off+2])<<16 | uint32(row[off+3])<<24)
			case I64:
				dst[k].I64()[r] = int64(getU64(row[off:]))
			case F64:
				dst[k].F64()[r] = mathFloat64frombits(getU64(row[off:]))
			case Str:
				dst[k].Str()[r] = st.strings[getU64(row[off:])]
			}
		}
	}
	return n
}
