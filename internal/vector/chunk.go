package vector

import (
	"fmt"
	"strings"
)

// Chunk is a cache-resident batch of rows represented as a set of named,
// equally long vectors plus an optional selection vector. It is the unit of
// work for the vectorized interpreter and for fused traces.
type Chunk struct {
	names []string
	cols  []*Vector
	n     int
	sel   Sel
}

// NewChunk creates an empty chunk with row count 0.
func NewChunk() *Chunk { return &Chunk{} }

// ChunkOf builds a chunk from alternating name/vector pairs; all vectors must
// have the same length.
func ChunkOf(pairs ...any) *Chunk {
	if len(pairs)%2 != 0 {
		panic("vector.ChunkOf: need name/vector pairs")
	}
	c := NewChunk()
	for i := 0; i < len(pairs); i += 2 {
		name, ok := pairs[i].(string)
		if !ok {
			panic("vector.ChunkOf: name must be a string")
		}
		v, ok := pairs[i+1].(*Vector)
		if !ok {
			panic("vector.ChunkOf: value must be a *Vector")
		}
		c.Add(name, v)
	}
	return c
}

// Add attaches a column. The first column fixes the row count; later columns
// must match it.
func (c *Chunk) Add(name string, v *Vector) {
	if len(c.cols) == 0 {
		c.n = v.Len()
	} else if v.Len() != c.n {
		panic(fmt.Sprintf("vector.Chunk.Add: column %q has %d rows, chunk has %d", name, v.Len(), c.n))
	}
	c.names = append(c.names, name)
	c.cols = append(c.cols, v)
}

// Len returns the physical row count (before selection).
func (c *Chunk) Len() int { return c.n }

// SelectedLen returns the logical row count (after selection).
func (c *Chunk) SelectedLen() int { return c.sel.Count(c.n) }

// Sel returns the current selection vector (nil = all rows).
func (c *Chunk) Sel() Sel { return c.sel }

// SetSel replaces the selection vector.
func (c *Chunk) SetSel(s Sel) { c.sel = s }

// Width returns the number of columns.
func (c *Chunk) Width() int { return len(c.cols) }

// Name returns the name of column i.
func (c *Chunk) Name(i int) string { return c.names[i] }

// Col returns column i.
func (c *Chunk) Col(i int) *Vector { return c.cols[i] }

// Column returns the column with the given name, or nil if absent.
func (c *Chunk) Column(name string) *Vector {
	for i, n := range c.names {
		if n == name {
			return c.cols[i]
		}
	}
	return nil
}

// MustColumn returns the named column or panics.
func (c *Chunk) MustColumn(name string) *Vector {
	v := c.Column(name)
	if v == nil {
		panic(fmt.Sprintf("vector.Chunk: no column %q (have %v)", name, c.names))
	}
	return v
}

// Condense materializes the selection on every column and clears it.
func (c *Chunk) Condense() *Chunk {
	out := NewChunk()
	for i, v := range c.cols {
		out.Add(c.names[i], Condense(v, c.sel))
	}
	return out
}

// Clone deep-copies the chunk, including its selection vector.
func (c *Chunk) Clone() *Chunk {
	out := NewChunk()
	for i, v := range c.cols {
		out.Add(c.names[i], v.Clone())
	}
	if c.sel != nil {
		out.sel = append(Sel(nil), c.sel...)
	}
	return out
}

// String renders a compact preview.
func (c *Chunk) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "chunk(n=%d, selected=%d)", c.n, c.SelectedLen())
	for i, v := range c.cols {
		fmt.Fprintf(&sb, "\n  %s: %s", c.names[i], v.String())
	}
	return sb.String()
}
