package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/dsl"
	"repro/internal/interp"
	"repro/internal/jit"
	"repro/internal/nir"
	"repro/internal/profile"
	"repro/internal/vector"
	"repro/internal/vm"
)

// ErrExpr marks DSL expression lowering failures (parse, check or
// normalization of a lambda), as opposed to schema or binding problems.
// Callers use errors.Is(err, ErrExpr) to classify operator Open errors.
var ErrExpr = errors.New("engine: expression error")

// exprVM wraps a per-operator adaptive VM for a DSL lambda applied to input
// columns. The generated program is the front-end lowering the paper's §II
// describes: one read per input column, the lambda body as a map, one write.
type exprVM struct {
	vm     *vm.VM
	outVec *vector.Vector
	ext    map[string]*vector.Vector
	inCols []string
	kind   vector.Kind
	env    *interp.Env
}

// vmConfigForExpr: synchronous optimization between chunks keeps the engine
// deterministic; compile latency stays modeled.
func vmConfigForExpr(enableJIT bool) vm.Config {
	cfg := vm.DefaultConfig()
	cfg.Sync = true
	cfg.HotCalls = 16
	if !enableJIT {
		cfg.HotCalls = 1 << 62
		cfg.HotNanos = 1 << 62
	}
	return cfg
}

// newExprVM lowers "map (\params -> body) cols..." into a VM.
func newExprVM(lambda string, inCols []string, inKinds []vector.Kind, outKind vector.Kind, enableJIT bool, jitOpt jit.Options) (*exprVM, error) {
	var sb strings.Builder
	for i, col := range inCols {
		fmt.Fprintf(&sb, "let c%d = read 0 %s\n", i, col)
	}
	sb.WriteString("let r = map " + lambda)
	for i := range inCols {
		fmt.Fprintf(&sb, " c%d", i)
	}
	sb.WriteString("\nwrite out 0 r\n")

	prog, err := dsl.Parse(sb.String())
	if err != nil {
		return nil, fmt.Errorf("%w: lowering %q: %v", ErrExpr, lambda, err)
	}
	kinds := map[string]vector.Kind{"out": outKind}
	for i, col := range inCols {
		kinds[col] = inKinds[i]
	}
	np, err := nir.Normalize(prog, kinds)
	if err != nil {
		return nil, fmt.Errorf("%w: normalizing %q: %v", ErrExpr, lambda, err)
	}
	cfg := vmConfigForExpr(enableJIT)
	cfg.JIT = jitOpt
	e := &exprVM{
		vm:     vm.New(np, cfg),
		outVec: vector.New(outKind, 0, vector.DefaultChunkLen),
		ext:    map[string]*vector.Vector{},
		inCols: inCols,
		kind:   outKind,
	}
	return e, nil
}

// eval applies the expression to the given input vectors (all the same
// length, no selection) and returns the result vector (valid until the next
// call). ctx flows into the expression VM, whose interpreter checks it at
// segment boundaries.
//
// The generated program reads its inputs with the VM's default chunk count,
// so one run covers at most vector.DefaultChunkLen rows. Operator chunks
// are normally within that bound, but join probes can emit wider chunks
// (every probe row fans out to its whole match list), so oversized inputs
// are evaluated in windows and stitched — element-wise maps make the
// windowing invisible, bit-for-bit.
func (e *exprVM) eval(ctx context.Context, inputs []*vector.Vector) (*vector.Vector, error) {
	n := 0
	if len(inputs) > 0 {
		n = inputs[0].Len()
	}
	if n <= vector.DefaultChunkLen {
		return e.evalWindow(ctx, inputs)
	}
	res := vector.New(e.kind, 0, n)
	wins := make([]*vector.Vector, len(inputs))
	for lo := 0; lo < n; lo += vector.DefaultChunkLen {
		hi := lo + vector.DefaultChunkLen
		if hi > n {
			hi = n
		}
		for i := range inputs {
			wins[i] = inputs[i].Slice(lo, hi)
		}
		out, err := e.evalWindow(ctx, wins)
		if err != nil {
			return nil, err
		}
		res.AppendVector(out)
	}
	return res, nil
}

// evalWindow runs the VM once over inputs of ≤ DefaultChunkLen rows.
func (e *exprVM) evalWindow(ctx context.Context, inputs []*vector.Vector) (*vector.Vector, error) {
	for i, col := range e.inCols {
		e.ext[col] = inputs[i]
	}
	e.outVec.SetLen(0)
	e.ext["out"] = e.outVec
	// The environment is created once and reused: rebinding happens through
	// the shared externals map, and register buffers amortize across chunks.
	if e.env == nil {
		env, err := e.vm.NewEnv(e.ext)
		if err != nil {
			return nil, err
		}
		e.env = env
	}
	if err := e.vm.RunContext(ctx, e.env); err != nil {
		return nil, err
	}
	return e.ext["out"], nil
}

// Profile exposes the underlying VM profile (for tests and reports).
func (e *exprVM) Profile() *profile.Profile { return e.vm.Interp.Prof }

// EvalMode selects how Compute and Filter treat incoming selection vectors
// (§III-C: "one could also specialize for different selectivities").
type EvalMode int

// Evaluation flavors.
const (
	// EvalAdaptive chooses per chunk from observed selectivity.
	EvalAdaptive EvalMode = iota
	// EvalFull computes over all rows, keeping the selection vector
	// (profitable when most rows are selected: no condense, full SIMD).
	EvalFull
	// EvalSelective condenses the selected rows first and computes only
	// those (profitable when few rows are selected).
	EvalSelective
)

var evalNames = [...]string{EvalAdaptive: "adaptive", EvalFull: "full", EvalSelective: "selective"}

func (m EvalMode) String() string { return evalNames[m] }

// fullThreshold is the selectivity above which full evaluation wins (the
// condense overhead exceeds the wasted compute).
const fullThreshold = 0.5

// Compute appends a derived column computed by a DSL lambda over input
// columns.
type Compute struct {
	child   Operator
	outName string
	lambda  string
	cols    []string
	mode    EvalMode
	evm     *exprVM
	selEW   *profile.EWMA
	outKind vector.Kind
	jitOn   bool
	jitOpt  jit.Options

	// FullEvals / SelectiveEvals count flavor decisions (for experiments).
	FullEvals, SelectiveEvals int
}

// NewCompute creates a compute operator: out := map lambda cols...
// outKind must be the lambda's result kind.
func NewCompute(child Operator, outName, lambda string, outKind vector.Kind, cols ...string) *Compute {
	return &Compute{
		child: child, outName: outName, lambda: lambda, cols: cols,
		outKind: outKind, mode: EvalAdaptive, selEW: profile.NewEWMA(0.3),
		jitOn: true,
	}
}

// SetMode fixes the evaluation flavor (default adaptive).
func (c *Compute) SetMode(m EvalMode) *Compute { c.mode = m; return c }

// SetJIT enables/disables trace compilation in the expression VM.
func (c *Compute) SetJIT(on bool, opt jit.Options) *Compute {
	c.jitOn = on
	c.jitOpt = opt
	return c
}

// Schema implements Operator.
func (c *Compute) Schema() []ColInfo {
	return append(append([]ColInfo{}, c.child.Schema()...), ColInfo{Name: c.outName, Kind: c.outKind})
}

// Open implements Operator.
func (c *Compute) Open(ctx context.Context) error {
	if err := c.child.Open(ctx); err != nil {
		return err
	}
	var kinds []vector.Kind
	for _, col := range c.cols {
		found := false
		for _, ci := range c.child.Schema() {
			if ci.Name == col {
				kinds = append(kinds, ci.Kind)
				found = true
			}
		}
		if !found {
			return fmt.Errorf("engine: compute input %q not produced by child", col)
		}
	}
	evm, err := newExprVM(c.lambda, c.cols, kinds, c.outKind, c.jitOn, c.jitOpt)
	if err != nil {
		return err
	}
	c.evm = evm
	return nil
}

// Next implements Operator.
func (c *Compute) Next(ctx context.Context) (*vector.Chunk, error) {
	chunk, err := c.child.Next(ctx)
	if err != nil || chunk == nil {
		return chunk, err
	}
	inputs := make([]*vector.Vector, len(c.cols))

	full := true
	if chunk.Sel() != nil {
		switch c.mode {
		case EvalFull:
			full = true
		case EvalSelective:
			full = false
		default:
			sel := float64(chunk.SelectedLen()) / float64(chunk.Len())
			c.selEW.Observe(sel)
			full = c.selEW.Value(1) >= fullThreshold
		}
	}

	if full {
		c.FullEvals++
		for i, col := range c.cols {
			inputs[i] = chunk.MustColumn(col)
		}
		out, err := c.evm.eval(ctx, inputs)
		if err != nil {
			return nil, err
		}
		res := vector.NewChunk()
		for i := 0; i < chunk.Width(); i++ {
			res.Add(chunk.Name(i), chunk.Col(i))
		}
		res.Add(c.outName, out.Clone())
		res.SetSel(chunk.Sel())
		return res, nil
	}

	// Selective: condense, evaluate the survivors only, re-expand is not
	// needed because the whole chunk is condensed.
	c.SelectiveEvals++
	cc := chunk.Condense()
	for i, col := range c.cols {
		inputs[i] = cc.MustColumn(col)
	}
	out, err := c.evm.eval(ctx, inputs)
	if err != nil {
		return nil, err
	}
	res := vector.NewChunk()
	for i := 0; i < cc.Width(); i++ {
		res.Add(cc.Name(i), cc.Col(i))
	}
	res.Add(c.outName, out.Clone())
	return res, nil
}

// Close implements Operator.
func (c *Compute) Close() error { return c.child.Close() }

// Filter narrows the chunk's selection vector with a DSL predicate.
type Filter struct {
	child  Operator
	lambda string
	col    string
	mode   EvalMode
	evm    *exprVM
	selEW  *profile.EWMA
	jitOn  bool
	jitOpt jit.Options

	// Observed counts rows in/out for selectivity reporting.
	RowsIn, RowsOut int64
	// MaskEvals / SelEvals count flavor decisions.
	MaskEvals, SelEvals int
}

// NewFilter creates a filter with predicate lambda over one column.
func NewFilter(child Operator, lambda, col string) *Filter {
	return &Filter{
		child: child, lambda: lambda, col: col,
		mode: EvalAdaptive, selEW: profile.NewEWMA(0.3), jitOn: true,
	}
}

// SetMode fixes the evaluation flavor.
func (f *Filter) SetMode(m EvalMode) *Filter { f.mode = m; return f }

// SetJIT enables/disables trace compilation in the predicate VM.
func (f *Filter) SetJIT(on bool, opt jit.Options) *Filter {
	f.jitOn = on
	f.jitOpt = opt
	return f
}

// Selectivity returns the observed pass rate.
func (f *Filter) Selectivity() float64 {
	if f.RowsIn == 0 {
		return 1
	}
	return float64(f.RowsOut) / float64(f.RowsIn)
}

// Schema implements Operator.
func (f *Filter) Schema() []ColInfo { return f.child.Schema() }

// Open implements Operator.
func (f *Filter) Open(ctx context.Context) error {
	if err := f.child.Open(ctx); err != nil {
		return err
	}
	var kind vector.Kind
	found := false
	for _, ci := range f.child.Schema() {
		if ci.Name == f.col {
			kind, found = ci.Kind, true
		}
	}
	if !found {
		return fmt.Errorf("engine: filter column %q not produced by child", f.col)
	}
	evm, err := newExprVM(f.lambda, []string{f.col}, []vector.Kind{kind}, vector.Bool, f.jitOn, f.jitOpt)
	if err != nil {
		return err
	}
	f.evm = evm
	return nil
}

// Next implements Operator.
func (f *Filter) Next(ctx context.Context) (*vector.Chunk, error) {
	for {
		chunk, err := f.child.Next(ctx)
		if err != nil || chunk == nil {
			return chunk, err
		}
		f.RowsIn += int64(chunk.SelectedLen())

		// Flavor choice: full (bitmap) evaluation computes the predicate
		// over every physical row and intersects masks — profitable when
		// most rows are alive; selection-vector evaluation condenses first.
		full := true
		if chunk.Sel() != nil {
			switch f.mode {
			case EvalFull:
				full = true
			case EvalSelective:
				full = false
			default:
				full = f.selEW.Value(1) >= fullThreshold
			}
		}

		var out *vector.Chunk
		if full {
			f.MaskEvals++
			mask, err := f.evm.eval(ctx, []*vector.Vector{chunk.MustColumn(f.col)})
			if err != nil {
				return nil, err
			}
			sel := vector.Intersect(chunk.Sel(), vector.SelFromMask(mask.Bool()), chunk.Len())
			out = shallowChunk(chunk)
			out.SetSel(sel)
		} else {
			f.SelEvals++
			cc := chunk.Condense()
			mask, err := f.evm.eval(ctx, []*vector.Vector{cc.MustColumn(f.col)})
			if err != nil {
				return nil, err
			}
			out = shallowChunk(cc)
			out.SetSel(vector.SelFromMask(mask.Bool()))
		}

		passed := out.SelectedLen()
		f.RowsOut += int64(passed)
		if f.RowsIn > 0 {
			f.selEW.Observe(float64(passed) / float64(maxi(1, chunk.SelectedLen())))
		}
		if passed == 0 {
			continue // fully filtered chunk: pull the next one
		}
		return out, nil
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.child.Close() }

func shallowChunk(c *vector.Chunk) *vector.Chunk {
	out := vector.NewChunk()
	for i := 0; i < c.Width(); i++ {
		out.Add(c.Name(i), c.Col(i))
	}
	return out
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
