// Morsel-parallel top-k: per-morsel candidate selection merged in morsel
// sequence order, mirroring ParallelAgg's private-table shape.

package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/morsel"
	"repro/internal/vector"
)

// ParallelTopK is a morsel-parallel top-k over a streaming pipeline: worker
// pipelines process morsels concurrently under work-stealing dispatch, each
// morsel reducing its own output — with exactly the serial operator's stable
// sort — to at most k candidate rows slotted by the morsel's dense sequence
// number. When the run completes, the candidates are concatenated in
// sequence order and the same stable sort picks the global top k.
//
// Determinism: a row of the global stable top-k is necessarily in the stable
// top-k of its own morsel — if k rows of the same morsel order before it,
// those k rows order before it globally too, and a stable sort cannot
// reorder rows of one morsel relative to each other. Candidate selection
// therefore never drops a winner. The sequence-ordered concatenation
// restores table order across morsels, so the final stable sort resolves
// ties exactly as the serial sort over the full input: in table order. There
// is no arithmetic anywhere in the fold, so — unlike aggregation — not even
// the morsel length participates: result bytes equal the serial TopK's at
// every worker count, chunk length and morsel length.
type ParallelTopK struct {
	traceHook
	store     vector.Store
	workers   int
	morselLen int
	k         int
	by        []OrderSpec

	leaves []*PartScan
	pipes  []Operator
	schema []ColInfo

	out     *vector.Chunk
	emitted bool
	stats   morsel.Stats
}

// NewParallelTopK builds a parallel top-k over store with workers pipelines;
// mk instantiates each worker's private pipeline over its scan leaf (the
// leaf itself for a top-k straight over a scan).
func NewParallelTopK(store vector.Store, columns []string, workers int,
	mk func(worker int, leaf Operator) (Operator, error),
	k int, by ...OrderSpec) (*ParallelTopK, error) {
	if workers < 1 {
		return nil, fmt.Errorf("engine: parallel top-k needs ≥ 1 worker, got %d", workers)
	}
	if k <= 0 {
		return nil, fmt.Errorf("engine: top-k needs k ≥ 1, got %d", k)
	}
	if len(by) == 0 {
		return nil, fmt.Errorf("engine: top-k needs at least one order column")
	}
	t := &ParallelTopK{store: store, workers: workers, morselLen: morsel.DefaultMorselLen, k: k, by: by}
	for w := 0; w < workers; w++ {
		leaf, err := NewPartScan(store, columns...)
		if err != nil {
			return nil, err
		}
		pipe, err := mk(w, leaf)
		if err != nil {
			return nil, err
		}
		t.leaves = append(t.leaves, leaf)
		t.pipes = append(t.pipes, pipe)
	}
	t.schema = t.pipes[0].Schema()
	for _, o := range by {
		found := false
		for _, ci := range t.schema {
			if ci.Name == o.Col {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("engine: top-k order column %q not produced by child", o.Col)
		}
	}
	return t, nil
}

// SetChunkLen overrides the chunk length of every worker's scan leaf.
func (t *ParallelTopK) SetChunkLen(n int) *ParallelTopK {
	for _, leaf := range t.leaves {
		leaf.SetChunkLen(n)
	}
	return t
}

// SetMorselLen overrides the dispatch granularity.
func (t *ParallelTopK) SetMorselLen(n int) *ParallelTopK {
	if n > 0 {
		t.morselLen = n
	}
	return t
}

// Workers returns the configured worker count.
func (t *ParallelTopK) Workers() int { return t.workers }

// Schema implements Operator.
func (t *ParallelTopK) Schema() []ColInfo { return t.schema }

// Open implements Operator.
func (t *ParallelTopK) Open(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for w, pipe := range t.pipes {
		t.leaves[w].SetRange(0, 0)
		if err := pipe.Open(ctx); err != nil {
			return err
		}
	}
	t.emitted = false
	t.out = nil
	return nil
}

// storeSchema converts the operator schema into a vector.Schema.
func storeSchema(schema []ColInfo) vector.Schema {
	sch := vector.Schema{}
	for _, ci := range schema {
		sch.Names = append(sch.Names, ci.Name)
		sch.Kinds = append(sch.Kinds, ci.Kind)
	}
	return sch
}

// Next implements Operator: the first call runs the whole parallel top-k
// synchronously and emits the single result chunk.
func (t *ParallelTopK) Next(ctx context.Context) (*vector.Chunk, error) {
	if t.emitted {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t.emitted = true

	var mu sync.Mutex
	var runErr error
	var failed atomic.Bool
	fail := func(err error) {
		mu.Lock()
		if runErr == nil {
			runErr = err
		}
		mu.Unlock()
		failed.Store(true)
	}

	sch := storeSchema(t.schema)
	rows := t.store.Rows()
	numMorsels := (rows + t.morselLen - 1) / t.morselLen
	// At most one candidate chunk (≤ k rows) per morsel, slotted by sequence
	// number: written by exactly one worker, read after the run completes.
	cands := make([]*vector.Chunk, numMorsels)
	t.stats = morsel.RunInstrumented(rows,
		morsel.Options{Workers: t.workers, MorselLen: t.morselLen},
		func(worker, lo, hi int) {
			if failed.Load() {
				return
			}
			msp := t.startMorsel()
			t.leaves[worker].SetRange(lo, hi)
			chunks, err := drainMorsel(ctx, t.pipes[worker], lo, hi)
			if err != nil {
				msp.End()
				fail(err)
				return
			}
			local := vector.NewDSMStore(sch)
			for _, c := range chunks {
				cc := c
				if c.Sel() != nil {
					cc = c.Condense()
				}
				if cc.Len() > 0 {
					local.AppendChunk(projectTo(cc, sch.Names))
				}
			}
			finishMorsel(msp, t.pipes[worker], worker, lo, hi, t.morselLen, rows, t.workers, int64(local.Rows()))
			if local.Rows() == 0 {
				return
			}
			cands[lo/t.morselLen] = topKSelect(local, t.schema, t.k, t.by)
		})
	attachMorselStats(t.tsp, t.stats)
	if runErr != nil {
		return nil, runErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Concatenate the candidates in morsel sequence order — restoring table
	// order across morsels — and reduce with the same stable sort.
	all := vector.NewDSMStore(sch)
	for _, c := range cands {
		if c != nil {
			all.AppendChunk(c)
		}
	}
	t.out = topKSelect(all, t.schema, t.k, t.by)
	return t.out, nil
}

// Close implements Operator.
func (t *ParallelTopK) Close() error {
	for _, pipe := range t.pipes {
		pipe.Close()
	}
	return nil
}

// MorselStats returns the dispatch statistics of the completed run.
func (t *ParallelTopK) MorselStats() morsel.Stats { return t.stats }
