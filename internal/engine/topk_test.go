package engine

import (
	"context"
	"testing"

	"repro/internal/vector"
)

func topkInput() *vector.DSMStore {
	st := vector.NewDSMStore(vector.NewSchema("k", vector.I64, "rev", vector.F64, "date", vector.I64))
	rows := []struct {
		k    int64
		rev  float64
		date int64
	}{
		{1, 10.5, 100},
		{2, 99.0, 300},
		{3, 99.0, 200}, // ties with row 2 on rev; date breaks it
		{4, 1.0, 50},
		{5, 42.0, 400},
	}
	for _, r := range rows {
		st.AppendRow(vector.I64Value(r.k), vector.F64Value(r.rev), vector.I64Value(r.date))
	}
	return st
}

func TestTopKOrderAndTruncation(t *testing.T) {
	scan, err := NewScan(topkInput())
	if err != nil {
		t.Fatal(err)
	}
	tk, err := NewTopK(scan, 3, OrderSpec{Col: "rev", Desc: true}, OrderSpec{Col: "date"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect(context.Background(), tk)
	if err != nil {
		t.Fatal(err)
	}
	wantKeys := []int64{3, 2, 5} // rev desc, date asc on the tie
	if out.Rows() != len(wantKeys) {
		t.Fatalf("rows = %d, want %d", out.Rows(), len(wantKeys))
	}
	for i, want := range wantKeys {
		if got := out.Col(0).I64()[i]; got != want {
			t.Fatalf("row %d key = %d, want %d", i, got, want)
		}
	}
}

func TestTopKLargerThanInput(t *testing.T) {
	scan, err := NewScan(topkInput())
	if err != nil {
		t.Fatal(err)
	}
	tk, err := NewTopK(scan, 100, OrderSpec{Col: "k"})
	if err != nil {
		t.Fatal(err)
	}
	n, err := CountRows(context.Background(), tk)
	if err != nil || n != 5 {
		t.Fatalf("CountRows = %d, %v; want 5", n, err)
	}
}

func TestTopKValidation(t *testing.T) {
	scan, err := NewScan(topkInput())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTopK(scan, 0, OrderSpec{Col: "k"}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewTopK(scan, 3); err == nil {
		t.Fatal("no order columns accepted")
	}
	if _, err := NewTopK(scan, 3, OrderSpec{Col: "nope"}); err == nil {
		t.Fatal("unknown order column accepted")
	}
}

// TestAggFirstSerial: AggFirst carries the first value per group in input
// order, for numeric and string columns, with and without pre-aggregation.
func TestAggFirstSerial(t *testing.T) {
	st := vector.NewDSMStore(vector.NewSchema("g", vector.I64, "s", vector.Str, "v", vector.I64))
	st.AppendRow(vector.I64Value(1), vector.StrValue("a"), vector.I64Value(10))
	st.AppendRow(vector.I64Value(2), vector.StrValue("b"), vector.I64Value(20))
	st.AppendRow(vector.I64Value(1), vector.StrValue("c"), vector.I64Value(30))
	st.AppendRow(vector.I64Value(2), vector.StrValue("d"), vector.I64Value(40))
	for _, pre := range []PreAggMode{PreAggOn, PreAggOff, PreAggAdaptive} {
		scan, err := NewScan(st)
		if err != nil {
			t.Fatal(err)
		}
		agg := NewHashAgg(scan, []string{"g"}, []Aggregate{
			{Func: AggFirst, Col: "s", As: "first_s"},
			{Func: AggFirst, Col: "v", As: "first_v"},
			{Func: AggSum, Col: "v", As: "sum_v"},
		}).SetPreAgg(pre)
		out, err := Collect(context.Background(), agg)
		if err != nil {
			t.Fatal(err)
		}
		if out.Rows() != 2 {
			t.Fatalf("pre=%v: groups = %d, want 2", pre, out.Rows())
		}
		sch := out.Schema()
		firstS := out.Col(sch.ColumnIndex("first_s")).Str()
		firstV := out.Col(sch.ColumnIndex("first_v")).I64()
		if firstS[0] != "a" || firstS[1] != "b" || firstV[0] != 10 || firstV[1] != 20 {
			t.Fatalf("pre=%v: firsts = %v %v", pre, firstS, firstV)
		}
	}
}
