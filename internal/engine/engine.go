// Package engine is the relational layer on top of the adaptive VM: a
// chunk-at-a-time operator pipeline (scan, compute, filter, hash join, hash
// aggregation) in which scalar expressions and predicates are written in the
// DSL, lowered through the normalizer and executed by the VM — so hot
// expressions JIT-compile into fused traces exactly as §III prescribes,
// while the operators themselves host the workload-specific optimizations
// of §III-C: full-vs-selective predicate evaluation, Bloom filters in
// selective hash joins, adaptive pre-aggregation, and on-the-fly reordering
// of selective operators.
//
// Concurrency contract: a single Operator instance is single-goroutine —
// Open, Next and Close are never called concurrently. Parallelism enters
// through the dispatching operators (Exchange, ParallelAgg,
// BuildJoinTableParallel), which instantiate one private pipeline per worker
// over a windowed scan and run them under work-stealing morsel dispatch
// (package morsel); worker pipelines share nothing mutable except
// read-only inputs — the table store, SharedJoinTable builds and cached
// fused programs. Determinism is structural, not scheduled: exchanges emit
// chunks in morsel sequence order and parallel aggregation folds per-morsel
// pre-aggregation tables in morsel sequence order, so result bytes depend
// on the morsel length (which pins how f64 accumulation is blocked) but
// never on worker count, steal pattern, device placement or chunk length.
package engine

import (
	"context"
	"fmt"

	"repro/internal/vector"
)

// ColInfo describes one output column of an operator.
type ColInfo struct {
	Name string
	Kind vector.Kind
}

// Operator is a chunk-at-a-time relational operator (Volcano-style but
// vectorized: Next returns a chunk, not a tuple). Open and Next carry a
// context so long-running pipelines honor cancellation and deadlines at
// chunk granularity: leaf operators check ctx on every chunk they produce,
// and pipeline breakers (joins, aggregations) check it while materializing.
type Operator interface {
	// Schema returns the operator's output columns.
	Schema() []ColInfo
	// Open prepares execution (builds hash tables etc.).
	Open(ctx context.Context) error
	// Next returns the next chunk, or nil at end of stream.
	Next(ctx context.Context) (*vector.Chunk, error)
	// Close releases resources.
	Close() error
}

// RangeSkipper is implemented by stores that can prove whole row windows
// irrelevant to the running query (zone-map pruning over pushed-down filter
// intervals). SkipRange(lo, hi) == true licenses the scan to drop rows
// [lo, hi) without reading them: every one of them would have been dropped
// by a filter that still executes downstream. Scans advance their position
// over skipped windows exactly as over produced ones, so chunk boundaries —
// and therefore every order-sensitive result — match the unskipped run.
type RangeSkipper interface {
	SkipRange(lo, hi int) bool
}

// Scan reads a stored table chunk-at-a-time.
type Scan struct {
	store    vector.Store
	skipper  RangeSkipper
	cols     []int
	schema   []ColInfo
	chunkLen int
	pos      int
	bufs     []*vector.Vector
}

// NewScan creates a scan over the named columns of store.
func NewScan(store vector.Store, columns ...string) (*Scan, error) {
	cols, schema, err := resolveColumns(store, columns)
	if err != nil {
		return nil, err
	}
	s := &Scan{store: store, chunkLen: vector.DefaultChunkLen, cols: cols, schema: schema}
	s.skipper, _ = store.(RangeSkipper)
	return s, nil
}

// resolveColumns maps column names (all columns when none are given) onto
// store indexes and the corresponding output schema.
func resolveColumns(store vector.Store, columns []string) ([]int, []ColInfo, error) {
	sch := store.Schema()
	if len(columns) == 0 {
		columns = sch.Names
	}
	cols := make([]int, 0, len(columns))
	schema := make([]ColInfo, 0, len(columns))
	for _, name := range columns {
		idx := sch.ColumnIndex(name)
		if idx < 0 {
			return nil, nil, fmt.Errorf("engine: scan column %q not in schema %v", name, sch.Names)
		}
		cols = append(cols, idx)
		schema = append(schema, ColInfo{Name: name, Kind: sch.Kinds[idx]})
	}
	return cols, schema, nil
}

// SetChunkLen overrides the scan's chunk length (default
// vector.DefaultChunkLen). Effective on the next Open.
func (s *Scan) SetChunkLen(n int) *Scan {
	if n > 0 {
		s.chunkLen = n
	}
	return s
}

// Schema implements Operator.
func (s *Scan) Schema() []ColInfo { return s.schema }

// Open implements Operator.
func (s *Scan) Open(ctx context.Context) error {
	s.pos = 0
	s.bufs = make([]*vector.Vector, len(s.cols))
	for i, ci := range s.cols {
		s.bufs[i] = vector.NewLen(s.store.Schema().Kinds[ci], s.chunkLen)
	}
	return ctx.Err()
}

// Next implements Operator. As the pipeline's leaf it checks ctx once per
// chunk, which bounds how far past a cancellation any downstream operator
// can run.
func (s *Scan) Next(ctx context.Context) (*vector.Chunk, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.skipper != nil {
		for rows := s.store.Rows(); s.pos < rows; {
			hi := s.pos + s.chunkLen
			if hi > rows {
				hi = rows
			}
			if !s.skipper.SkipRange(s.pos, hi) {
				break
			}
			s.pos = hi
		}
	}
	n := s.store.Scan(s.pos, s.chunkLen, s.cols, s.bufs)
	if n == 0 {
		return nil, nil
	}
	s.pos += n
	c := vector.NewChunk()
	for i, info := range s.schema {
		c.Add(info.Name, s.bufs[i].Slice(0, n))
	}
	return c, nil
}

// Close implements Operator.
func (s *Scan) Close() error { return nil }

// Drain pulls every chunk of op through fn.
func Drain(ctx context.Context, op Operator, fn func(*vector.Chunk) error) error {
	if err := op.Open(ctx); err != nil {
		return err
	}
	defer op.Close()
	for {
		c, err := op.Next(ctx)
		if err != nil {
			return err
		}
		if c == nil {
			return nil
		}
		if err := fn(c); err != nil {
			return err
		}
	}
}

// Collect materializes an operator's full output into a DSM store. The
// schema is read after Open, since pipeline breakers (joins, aggregations)
// resolve their output schema there.
func Collect(ctx context.Context, op Operator) (*vector.DSMStore, error) {
	if err := op.Open(ctx); err != nil {
		return nil, err
	}
	defer op.Close()
	return collectOpen(ctx, op)
}

// collectOpen materializes the remaining output of an already-open operator.
func collectOpen(ctx context.Context, op Operator) (*vector.DSMStore, error) {
	sch := vector.Schema{}
	for _, ci := range op.Schema() {
		sch.Names = append(sch.Names, ci.Name)
		sch.Kinds = append(sch.Kinds, ci.Kind)
	}
	out := vector.NewDSMStore(sch)
	for {
		c, err := op.Next(ctx)
		if err != nil {
			return nil, err
		}
		if c == nil {
			return out, nil
		}
		out.AppendChunk(projectTo(c, sch.Names))
	}
}

func projectTo(c *vector.Chunk, names []string) *vector.Chunk {
	out := vector.NewChunk()
	for _, name := range names {
		out.Add(name, c.MustColumn(name))
	}
	out.SetSel(c.Sel())
	return out
}

// CountRows counts the (selected) rows an operator produces.
func CountRows(ctx context.Context, op Operator) (int64, error) {
	var n int64
	err := Drain(ctx, op, func(c *vector.Chunk) error {
		n += int64(c.SelectedLen())
		return nil
	})
	return n, err
}
