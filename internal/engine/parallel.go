// Morsel-parallel query execution: the exchange operator of the paper's
// intra-query parallelism story ([15], morsel-driven parallelism). A table's
// row space is split into morsels dispatched dynamically to worker copies of
// a scan→filter/compute pipeline; the exchange re-emits the workers' chunks
// in table order, so everything downstream — including floating-point
// aggregation — observes exactly the row order of serial execution and
// produces bit-identical results.

package engine

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/morsel"
	"repro/internal/vector"
)

// PartScan is a table scan restricted to a settable row window [lo, hi).
// The exchange resets the window once per dispatched morsel, so one PartScan
// serves a whole worker pipeline for the lifetime of a query. Unlike Scan it
// allocates fresh column buffers for every chunk: its chunks cross goroutine
// boundaries and must not be overwritten while a consumer still reads them.
type PartScan struct {
	store    vector.Store
	cols     []int
	schema   []ColInfo
	chunkLen int
	pos, hi  int
}

// NewPartScan creates a windowed scan over the named columns of store (all
// columns when none are given). The window starts empty; SetRange arms it.
func NewPartScan(store vector.Store, columns ...string) (*PartScan, error) {
	cols, schema, err := resolveColumns(store, columns)
	if err != nil {
		return nil, err
	}
	return &PartScan{store: store, chunkLen: vector.DefaultChunkLen, cols: cols, schema: schema}, nil
}

// SetChunkLen overrides the scan's chunk length (default
// vector.DefaultChunkLen).
func (s *PartScan) SetChunkLen(n int) *PartScan {
	if n > 0 {
		s.chunkLen = n
	}
	return s
}

// SetRange arms the scan to produce rows [lo, hi).
func (s *PartScan) SetRange(lo, hi int) {
	s.pos, s.hi = lo, hi
}

// Schema implements Operator.
func (s *PartScan) Schema() []ColInfo { return s.schema }

// Open implements Operator. It does not reset the window: ranges are owned
// by SetRange callers.
func (s *PartScan) Open(ctx context.Context) error { return ctx.Err() }

// Next implements Operator.
func (s *PartScan) Next(ctx context.Context) (*vector.Chunk, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := s.hi - s.pos
	if n <= 0 {
		return nil, nil
	}
	if n > s.chunkLen {
		n = s.chunkLen
	}
	bufs := make([]*vector.Vector, len(s.cols))
	for i, ci := range s.cols {
		bufs[i] = vector.NewLen(s.store.Schema().Kinds[ci], n)
	}
	got := s.store.Scan(s.pos, n, s.cols, bufs)
	if got == 0 {
		return nil, nil
	}
	s.pos += got
	c := vector.NewChunk()
	for i, info := range s.schema {
		c.Add(info.Name, bufs[i])
	}
	return c, nil
}

// Close implements Operator.
func (s *PartScan) Close() error { return nil }

// exMorsel is one morsel's worth of finished chunks, tagged with the
// morsel's dense sequence number for order-preserving re-emission.
type exMorsel struct {
	seq    int
	chunks []*vector.Chunk
}

// Exchange fans a scan→filter/compute pipeline out over worker copies fed by
// dynamically dispatched morsels, and merges their output back into one
// ordered chunk stream. It is an Operator, so anything that consumes chunks
// — aggregations, joins, the public cursor — parallelizes transparently.
//
// Chunks are re-emitted in table order (morsel sequence order), which makes
// the merged stream byte-identical to a serial scan of the same pipeline:
// order-sensitive consumers such as floating-point SUM see the same addition
// order. Workers still absorb skew dynamically; only the emission is
// sequenced.
type Exchange struct {
	store     vector.Store
	workers   int
	morselLen int

	schema []ColInfo
	leaves []*PartScan
	pipes  []Operator

	out      chan exMorsel
	quit     chan struct{}
	quitOnce *sync.Once
	done     chan struct{}
	opened   bool

	mu     sync.Mutex
	runErr error
	stats  morsel.Stats

	pending map[int][]*vector.Chunk
	queue   []*vector.Chunk
	nextSeq int
}

// NewExchange builds an exchange over store with workers parallel pipelines.
// build is called once per worker with that worker's scan leaf and must
// return the pipeline to run on top of it (the leaf itself for a bare
// parallel scan). Each worker gets private operator instances — and thus
// private expression VMs — so no cross-worker synchronization happens on the
// hot path.
func NewExchange(store vector.Store, columns []string, workers int,
	build func(worker int, leaf Operator) (Operator, error)) (*Exchange, error) {
	if workers < 1 {
		return nil, fmt.Errorf("engine: exchange needs ≥ 1 worker, got %d", workers)
	}
	e := &Exchange{store: store, workers: workers, morselLen: morsel.DefaultMorselLen}
	for w := 0; w < workers; w++ {
		leaf, err := NewPartScan(store, columns...)
		if err != nil {
			return nil, err
		}
		pipe, err := build(w, leaf)
		if err != nil {
			return nil, err
		}
		e.leaves = append(e.leaves, leaf)
		e.pipes = append(e.pipes, pipe)
	}
	e.schema = e.pipes[0].Schema()
	return e, nil
}

// SetChunkLen overrides the chunk length of every worker's scan leaf.
func (e *Exchange) SetChunkLen(n int) *Exchange {
	for _, leaf := range e.leaves {
		leaf.SetChunkLen(n)
	}
	return e
}

// SetMorselLen overrides the dispatch granularity (default
// morsel.DefaultMorselLen).
func (e *Exchange) SetMorselLen(n int) *Exchange {
	if n > 0 {
		e.morselLen = n
	}
	return e
}

// Workers returns the configured worker count.
func (e *Exchange) Workers() int { return e.workers }

// Schema implements Operator.
func (e *Exchange) Schema() []ColInfo { return e.schema }

// Open implements Operator: it opens every worker pipeline and starts the
// morsel dispatcher.
func (e *Exchange) Open(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for w, pipe := range e.pipes {
		e.leaves[w].SetRange(0, 0)
		if err := pipe.Open(ctx); err != nil {
			return err
		}
	}
	rows := e.store.Rows()
	e.nextSeq = 0
	e.pending = make(map[int][]*vector.Chunk)
	e.queue = nil
	e.runErr = nil
	e.out = make(chan exMorsel, e.workers)
	e.quit = make(chan struct{})
	e.quitOnce = new(sync.Once)
	e.done = make(chan struct{})
	e.opened = true
	go e.produce(ctx, rows)
	return nil
}

// produce drives morsel.Run over the worker pipelines and feeds the ordered
// merge. It owns the out channel: closing it signals end of production.
func (e *Exchange) produce(ctx context.Context, rows int) {
	defer close(e.done)
	st := morsel.RunInstrumented(rows, morsel.Options{Workers: e.workers, MorselLen: e.morselLen},
		func(worker, lo, hi int) {
			select {
			case <-e.quit:
				return // drain the remaining dispatch cheaply after a failure
			default:
			}
			e.leaves[worker].SetRange(lo, hi)
			var chunks []*vector.Chunk
			for {
				c, err := e.pipes[worker].Next(ctx)
				if err != nil {
					e.fail(err)
					return
				}
				if c == nil {
					break
				}
				chunks = append(chunks, c)
			}
			select {
			case e.out <- exMorsel{seq: lo / e.morselLen, chunks: chunks}:
			case <-e.quit:
			}
		})
	e.mu.Lock()
	e.stats = st
	e.mu.Unlock()
	close(e.out)
}

// fail records the first worker error and unblocks everyone.
func (e *Exchange) fail(err error) {
	e.mu.Lock()
	if e.runErr == nil {
		e.runErr = err
	}
	e.mu.Unlock()
	e.quitOnce.Do(func() { close(e.quit) })
}

// Err returns the first worker error, if any.
func (e *Exchange) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.runErr
}

// Next implements Operator: it returns the workers' chunks in morsel
// sequence order, buffering out-of-order completions. A worker error or a
// cancelled ctx surfaces here.
func (e *Exchange) Next(ctx context.Context) (*vector.Chunk, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for {
		if len(e.queue) > 0 {
			c := e.queue[0]
			e.queue = e.queue[1:]
			return c, nil
		}
		res, ok := <-e.out
		if !ok {
			return nil, e.Err()
		}
		e.pending[res.seq] = res.chunks
		for {
			chunks, ready := e.pending[e.nextSeq]
			if !ready {
				break
			}
			delete(e.pending, e.nextSeq)
			e.nextSeq++
			e.queue = append(e.queue, chunks...)
		}
	}
}

// Close implements Operator: it stops the dispatcher (draining workers that
// are mid-push), waits for them to exit, and closes the worker pipelines.
// Safe to call without draining Next first, and idempotent.
func (e *Exchange) Close() error {
	if e.opened {
		e.opened = false
		e.quitOnce.Do(func() { close(e.quit) })
		for range e.out {
			// Discard: unblocks workers stuck pushing finished morsels.
		}
		<-e.done
	}
	for _, pipe := range e.pipes {
		pipe.Close()
	}
	return nil
}

// MorselStats returns the dispatch statistics of the completed run (valid
// after the stream is drained or closed).
func (e *Exchange) MorselStats() morsel.Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}
