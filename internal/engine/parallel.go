// Morsel-parallel query execution: the exchange operator of the paper's
// intra-query parallelism story ([15], morsel-driven parallelism). A table's
// row space is split into morsels dispatched dynamically to worker copies of
// a scan→filter/compute pipeline; the exchange re-emits the workers' chunks
// in table order, so everything downstream — including floating-point
// aggregation — observes exactly the row order of serial execution and
// produces bit-identical results.

package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/morsel"
	"repro/internal/qtrace"
	"repro/internal/vector"
)

// PartScan is a table scan restricted to a settable row window [lo, hi).
// The exchange resets the window once per dispatched morsel, so one PartScan
// serves a whole worker pipeline for the lifetime of a query. Unlike Scan it
// allocates fresh column buffers for every chunk: its chunks cross goroutine
// boundaries and must not be overwritten while a consumer still reads them.
type PartScan struct {
	store    vector.Store
	skipper  RangeSkipper
	cols     []int
	schema   []ColInfo
	chunkLen int
	pos, hi  int
}

// NewPartScan creates a windowed scan over the named columns of store (all
// columns when none are given). The window starts empty; SetRange arms it.
func NewPartScan(store vector.Store, columns ...string) (*PartScan, error) {
	cols, schema, err := resolveColumns(store, columns)
	if err != nil {
		return nil, err
	}
	s := &PartScan{store: store, chunkLen: vector.DefaultChunkLen, cols: cols, schema: schema}
	s.skipper, _ = store.(RangeSkipper)
	return s, nil
}

// SetChunkLen overrides the scan's chunk length (default
// vector.DefaultChunkLen).
func (s *PartScan) SetChunkLen(n int) *PartScan {
	if n > 0 {
		s.chunkLen = n
	}
	return s
}

// SetRange arms the scan to produce rows [lo, hi).
func (s *PartScan) SetRange(lo, hi int) {
	s.pos, s.hi = lo, hi
}

// Schema implements Operator.
func (s *PartScan) Schema() []ColInfo { return s.schema }

// Open implements Operator. It does not reset the window: ranges are owned
// by SetRange callers.
func (s *PartScan) Open(ctx context.Context) error { return ctx.Err() }

// Next implements Operator.
func (s *PartScan) Next(ctx context.Context) (*vector.Chunk, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.skipper != nil {
		for s.pos < s.hi {
			hi := s.pos + s.chunkLen
			if hi > s.hi {
				hi = s.hi
			}
			if !s.skipper.SkipRange(s.pos, hi) {
				break
			}
			s.pos = hi
		}
	}
	n := s.hi - s.pos
	if n <= 0 {
		return nil, nil
	}
	if n > s.chunkLen {
		n = s.chunkLen
	}
	bufs := make([]*vector.Vector, len(s.cols))
	for i, ci := range s.cols {
		bufs[i] = vector.NewLen(s.store.Schema().Kinds[ci], n)
	}
	got := s.store.Scan(s.pos, n, s.cols, bufs)
	if got == 0 {
		return nil, nil
	}
	s.pos += got
	c := vector.NewChunk()
	for i, info := range s.schema {
		c.Add(info.Name, bufs[i])
	}
	return c, nil
}

// Close implements Operator.
func (s *PartScan) Close() error { return nil }

// exMorsel is one morsel's worth of finished chunks, tagged with the
// morsel's dense sequence number for order-preserving re-emission.
type exMorsel struct {
	seq    int
	chunks []*vector.Chunk
}

// exBatchMorsels is how many finished morsels a worker accumulates before
// one channel handoff to the merge. Batching amortizes the per-morsel
// send/receive (and the wakeups it causes) without changing the output: the
// merge orders by sequence number, not by arrival.
const exBatchMorsels = 4

// Exchange fans a scan→filter/compute pipeline out over worker copies fed by
// work-stealing morsel dispatch, and merges their output back into one
// ordered chunk stream. It is an Operator, so anything that consumes chunks
// — aggregations, joins, the public cursor — parallelizes transparently.
//
// Chunks are re-emitted in table order (morsel sequence order), which makes
// the merged stream byte-identical to a serial scan of the same pipeline:
// order-sensitive consumers such as floating-point SUM see the same addition
// order. Workers still absorb skew dynamically — stealing morsels from
// slower workers' ranges — and hand off finished morsels to the merge in
// batches; only the emission is sequenced.
type Exchange struct {
	traceHook
	store     vector.Store
	workers   int
	morselLen int

	schema []ColInfo
	leaves []*PartScan
	pipes  []Operator

	out      chan []exMorsel
	quit     chan struct{}
	quitOnce *sync.Once
	done     chan struct{}
	cancel   context.CancelFunc
	opened   bool

	mu     sync.Mutex
	runErr error
	stats  morsel.Stats

	pending map[int][]*vector.Chunk
	queue   []*vector.Chunk
	nextSeq int
}

// NewExchange builds an exchange over store with workers parallel pipelines.
// build is called once per worker with that worker's scan leaf and must
// return the pipeline to run on top of it (the leaf itself for a bare
// parallel scan). Each worker gets private operator instances — and thus
// private expression VMs — so no cross-worker synchronization happens on the
// hot path.
func NewExchange(store vector.Store, columns []string, workers int,
	build func(worker int, leaf Operator) (Operator, error)) (*Exchange, error) {
	if workers < 1 {
		return nil, fmt.Errorf("engine: exchange needs ≥ 1 worker, got %d", workers)
	}
	e := &Exchange{store: store, workers: workers, morselLen: morsel.DefaultMorselLen}
	for w := 0; w < workers; w++ {
		leaf, err := NewPartScan(store, columns...)
		if err != nil {
			return nil, err
		}
		pipe, err := build(w, leaf)
		if err != nil {
			return nil, err
		}
		e.leaves = append(e.leaves, leaf)
		e.pipes = append(e.pipes, pipe)
	}
	e.schema = e.pipes[0].Schema()
	return e, nil
}

// SetChunkLen overrides the chunk length of every worker's scan leaf.
func (e *Exchange) SetChunkLen(n int) *Exchange {
	for _, leaf := range e.leaves {
		leaf.SetChunkLen(n)
	}
	return e
}

// SetMorselLen overrides the dispatch granularity (default
// morsel.DefaultMorselLen).
func (e *Exchange) SetMorselLen(n int) *Exchange {
	if n > 0 {
		e.morselLen = n
	}
	return e
}

// Workers returns the configured worker count.
func (e *Exchange) Workers() int { return e.workers }

// Schema implements Operator.
func (e *Exchange) Schema() []ColInfo { return e.schema }

// Open implements Operator: it opens every worker pipeline and starts the
// morsel dispatcher.
func (e *Exchange) Open(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for w, pipe := range e.pipes {
		e.leaves[w].SetRange(0, 0)
		if err := pipe.Open(ctx); err != nil {
			return err
		}
	}
	rows := e.store.Rows()
	e.nextSeq = 0
	e.pending = make(map[int][]*vector.Chunk)
	e.queue = nil
	e.runErr = nil
	e.out = make(chan []exMorsel, e.workers)
	e.quit = make(chan struct{})
	e.quitOnce = new(sync.Once)
	e.done = make(chan struct{})
	e.opened = true
	// The workers run under a private, cancellable context so Close can
	// abort them mid-morsel instead of waiting for their current drains.
	wctx, cancel := context.WithCancel(ctx)
	e.cancel = cancel
	go e.produce(wctx, rows)
	return nil
}

// produce drives morsel.Run over the worker pipelines and feeds the ordered
// merge. It owns the out channel: closing it signals end of production.
func (e *Exchange) produce(ctx context.Context, rows int) {
	defer close(e.done)
	defer e.cancel() // release the private context once production ends
	// Per-worker handoff buffers: each worker batches up to exBatchMorsels
	// finished morsels per channel send. A buffer is owned by its worker
	// goroutine for the whole run, then flushed below after the run's
	// WaitGroup establishes happens-before.
	batches := make([][]exMorsel, e.workers)
	send := func(batch []exMorsel) {
		select {
		case e.out <- batch:
		case <-e.quit:
		}
	}
	st := morsel.RunInstrumented(rows, morsel.Options{Workers: e.workers, MorselLen: e.morselLen},
		func(worker, lo, hi int) {
			select {
			case <-e.quit:
				return // drain the remaining dispatch cheaply after a failure
			default:
			}
			msp := e.startMorsel()
			e.leaves[worker].SetRange(lo, hi)
			chunks, err := drainMorsel(ctx, e.pipes[worker], lo, hi)
			if err != nil {
				msp.End()
				e.fail(err)
				return
			}
			finishMorsel(msp, e.pipes[worker], worker, lo, hi, e.morselLen, rows, e.workers, chunkRows(chunks))
			batches[worker] = append(batches[worker], exMorsel{seq: lo / e.morselLen, chunks: chunks})
			if len(batches[worker]) >= exBatchMorsels {
				send(batches[worker])
				batches[worker] = nil
			}
		})
	for _, batch := range batches {
		if len(batch) > 0 {
			send(batch)
		}
	}
	e.mu.Lock()
	e.stats = st
	e.mu.Unlock()
	attachMorselStats(e.tsp, st)
	close(e.out)
}

// drainMorsel pulls every chunk the armed morsel [lo, hi) produces from a
// worker pipeline. A MorselRunner top (DeviceExec) executes the drain as one
// placed unit; anything else is drained inline on the calling worker.
func drainMorsel(ctx context.Context, pipe Operator, lo, hi int) ([]*vector.Chunk, error) {
	if mr, ok := pipe.(MorselRunner); ok {
		return mr.RunMorsel(ctx, lo, hi)
	}
	var chunks []*vector.Chunk
	for {
		c, err := pipe.Next(ctx)
		if err != nil {
			return nil, err
		}
		if c == nil {
			return chunks, nil
		}
		chunks = append(chunks, c)
	}
}

// fail records the first worker error and unblocks everyone.
func (e *Exchange) fail(err error) {
	e.mu.Lock()
	if e.runErr == nil {
		e.runErr = err
	}
	e.mu.Unlock()
	e.quitOnce.Do(func() { close(e.quit) })
}

// Err returns the first worker error, if any.
func (e *Exchange) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.runErr
}

// Next implements Operator: it returns the workers' chunks in morsel
// sequence order, buffering out-of-order completions. A worker error or a
// cancelled ctx surfaces here.
func (e *Exchange) Next(ctx context.Context) (*vector.Chunk, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for {
		if len(e.queue) > 0 {
			c := e.queue[0]
			e.queue = e.queue[1:]
			return c, nil
		}
		batch, ok := <-e.out
		if !ok {
			return nil, e.Err()
		}
		for _, res := range batch {
			e.pending[res.seq] = res.chunks
		}
		for {
			chunks, ready := e.pending[e.nextSeq]
			if !ready {
				break
			}
			delete(e.pending, e.nextSeq)
			e.nextSeq++
			e.queue = append(e.queue, chunks...)
		}
	}
}

// Close implements Operator: it cancels the workers' private context (so
// drains in flight abort at their next chunk boundary rather than running
// their morsels to completion), stops the dispatcher (draining workers that
// are mid-push), waits for them to exit, and closes the worker pipelines.
// Safe to call without draining Next first, and idempotent.
func (e *Exchange) Close() error {
	if e.opened {
		e.opened = false
		e.cancel()
		e.quitOnce.Do(func() { close(e.quit) })
		for range e.out {
			// Discard: unblocks workers stuck pushing finished morsels.
		}
		<-e.done
	}
	for _, pipe := range e.pipes {
		pipe.Close()
	}
	return nil
}

// MorselStats returns the dispatch statistics of the completed run (valid
// after the stream is drained or closed).
func (e *Exchange) MorselStats() morsel.Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// ---------------------------------------------------------------------------
// Parallel hash join: morsel-parallel partitioned build + shared read-only
// table probed by worker-private TableProbe operators inside the existing
// PartScan pipelines.

// SharedJoinTable is the once-per-query handle onto a join's build side: a
// recipe that materializes and hashes the build rows the first time any
// worker's probe opens, then serves the immutable JoinTable to every worker.
// The build-side output schema is known statically so probes stacked on top
// can resolve their own schemas before anything executes.
type SharedJoinTable struct {
	schema []ColInfo
	build  func(ctx context.Context) (*JoinTable, error)

	once sync.Once
	tbl  *JoinTable
	err  error
}

// NewSharedJoinTable wraps a build recipe. schema must be the build
// pipeline's output schema.
func NewSharedJoinTable(schema []ColInfo, build func(ctx context.Context) (*JoinTable, error)) *SharedJoinTable {
	return &SharedJoinTable{schema: schema, build: build}
}

// Schema returns the build side's output schema.
func (s *SharedJoinTable) Schema() []ColInfo { return s.schema }

// Table builds the join table on first call and returns it thereafter. A
// failed build (including a cancelled ctx) is cached: shared tables are
// per-query, so the query is aborted either way.
func (s *SharedJoinTable) Table(ctx context.Context) (*JoinTable, error) {
	s.once.Do(func() { s.tbl, s.err = s.build(ctx) })
	return s.tbl, s.err
}

// BuildJoinTableParallel materializes a build-side pipeline over dynamically
// dispatched morsels of its table and hashes the result into a partitioned
// JoinTable: every worker runs a private copy of the pipeline (built by mk
// over a windowed scan leaf), the per-morsel outputs are stitched back in
// morsel order — so the build rows, and therefore every multi-match list,
// are byte-identical to a serial materialization — and the partitions are
// then hashed concurrently, one partition per worker, without contention.
func BuildJoinTableParallel(ctx context.Context, store vector.Store, columns []string,
	workers, chunkLen, morselLen int, buildKey string,
	mk func(worker int, leaf Operator) (Operator, error)) (*JoinTable, error) {
	return BuildJoinTableParallelTraced(ctx, store, columns, workers, chunkLen, morselLen, buildKey, mk, nil, false)
}

// BuildJoinTableParallelTraced is BuildJoinTableParallel with tracing: when
// tsp is non-nil the run attaches its morsel statistics to it, and with
// traceMorsels additionally records one leaf span per build morsel.
func BuildJoinTableParallelTraced(ctx context.Context, store vector.Store, columns []string,
	workers, chunkLen, morselLen int, buildKey string,
	mk func(worker int, leaf Operator) (Operator, error),
	tsp *qtrace.Span, traceMorsels bool) (*JoinTable, error) {
	if workers < 1 {
		return nil, fmt.Errorf("engine: parallel build needs ≥ 1 worker, got %d", workers)
	}
	if morselLen <= 0 {
		morselLen = morsel.DefaultMorselLen
	}
	// Cap the fan-out at the build side's morsel count: a tiny build table
	// gains nothing from surplus workers, and each one costs a full pipeline
	// (expression VMs included) plus an idle spin in the dispatcher. The cap
	// is result-invisible — stitching is keyed by morsel sequence, and the
	// partition count of the hashed table affects scheduling only.
	if nm := (store.Rows() + morselLen - 1) / morselLen; nm > 0 && workers > nm {
		workers = nm
	}
	leaves := make([]*PartScan, workers)
	pipes := make([]Operator, workers)
	for w := 0; w < workers; w++ {
		leaf, err := NewPartScan(store, columns...)
		if err != nil {
			return nil, err
		}
		if chunkLen > 0 {
			leaf.SetChunkLen(chunkLen)
		}
		pipe, err := mk(w, leaf)
		if err != nil {
			return nil, err
		}
		leaves[w] = leaf
		pipes[w] = pipe
	}
	defer func() {
		for _, p := range pipes {
			p.Close()
		}
	}()
	for w, pipe := range pipes {
		leaves[w].SetRange(0, 0)
		if err := pipe.Open(ctx); err != nil {
			return nil, err
		}
	}

	hook := traceHook{tsp: tsp, tmorsels: traceMorsels}
	rows := store.Rows()
	numMorsels := (rows + morselLen - 1) / morselLen
	results := make([][]*vector.Chunk, numMorsels)
	var mu sync.Mutex
	var runErr error
	var failed atomic.Bool
	st := morsel.RunInstrumented(rows, morsel.Options{Workers: workers, MorselLen: morselLen},
		func(worker, lo, hi int) {
			if failed.Load() {
				return
			}
			msp := hook.startMorsel()
			leaves[worker].SetRange(lo, hi)
			var chunks []*vector.Chunk
			for {
				c, err := pipes[worker].Next(ctx)
				if err != nil {
					mu.Lock()
					if runErr == nil {
						runErr = err
					}
					mu.Unlock()
					failed.Store(true)
					msp.End()
					return
				}
				if c == nil {
					break
				}
				cc := c
				if c.Sel() != nil {
					cc = c.Condense()
				}
				chunks = append(chunks, cc)
			}
			// Distinct morsels write distinct slice elements: no lock needed.
			results[lo/morselLen] = chunks
			finishMorsel(msp, pipes[worker], worker, lo, hi, morselLen, rows, workers, chunkRows(chunks))
		})
	attachMorselStats(tsp, st)
	if runErr != nil {
		return nil, runErr
	}

	// Stitch the morsel outputs back in table order.
	sch := vector.Schema{}
	for _, ci := range pipes[0].Schema() {
		sch.Names = append(sch.Names, ci.Name)
		sch.Kinds = append(sch.Kinds, ci.Kind)
	}
	out := vector.NewDSMStore(sch)
	for _, chunks := range results {
		for _, c := range chunks {
			out.AppendChunk(projectTo(c, sch.Names))
		}
	}
	return newPartitionedJoinTable(out, buildKey, workers)
}

// newPartitionedJoinTable hashes rows into a power-of-two number of
// partitions ≥ workers in two parallel passes: each worker scatters a
// contiguous key range into per-(worker, partition) row lists — hashing
// every key exactly once — and each partition then concatenates its lists
// in worker order (contiguous ranges, so concatenation preserves build
// order) while inserting into its private map. The partition count affects
// scheduling only, never results.
func newPartitionedJoinTable(rows *vector.DSMStore, buildKey string, workers int) (*JoinTable, error) {
	t, err := newJoinTableHeader(rows, buildKey)
	if err != nil {
		return nil, err
	}
	nparts := 1
	for nparts < workers {
		nparts *= 2
	}
	t.mask = uint64(nparts - 1)
	t.parts = make([]map[int64][]int32, nparts)
	t.blooms = make([]*BloomFilter, nparts)
	keys := rows.Col(t.keyIdx).I64()

	// Pass 1: scatter. Worker w owns rows [w·n/W, (w+1)·n/W).
	scattered := make([][][]int32, workers) // [worker][partition][]row
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo, hi := len(keys)*w/workers, len(keys)*(w+1)/workers
			lists := make([][]int32, nparts)
			for i := lo; i < hi; i++ {
				p := t.part(keys[i])
				lists[p] = append(lists[p], int32(i))
			}
			scattered[w] = lists
		}(w)
	}
	wg.Wait()

	// Pass 2: per-partition map build over the worker lists in worker order.
	for p := 0; p < nparts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			n := 0
			for w := 0; w < workers; w++ {
				n += len(scattered[w][p])
			}
			m := make(map[int64][]int32, n)
			bl := NewBloomFilter(maxi(n, 64))
			for w := 0; w < workers; w++ {
				for _, i := range scattered[w][p] {
					k := keys[i]
					m[k] = append(m[k], i)
					bl.Add(k)
				}
			}
			t.parts[p] = m
			t.blooms[p] = bl
		}(p)
	}
	wg.Wait()
	return t, nil
}

// TableProbe streams probe chunks against a shared read-only JoinTable: the
// worker-side half of the parallel hash join. Many TableProbe instances (one
// per exchange worker) share one SharedJoinTable; each keeps a private
// adaptive-Bloom state so nothing synchronizes per chunk. Output rows match
// the serial HashJoin byte for byte: probe rows in probe order, match lists
// in build order.
type TableProbe struct {
	child    Operator
	shared   *SharedJoinTable
	probeKey string
	payload  []string
	probeCore

	tbl     *JoinTable
	schema  []ColInfo
	payIdx  []int
	keyIdxP int
}

// NewTableProbe builds a probe over child against shared. The schema — child
// columns then payload columns — resolves eagerly, so probes compose under
// exchanges and further probes before anything opens.
func NewTableProbe(child Operator, shared *SharedJoinTable, probeKey string, payload ...string) (*TableProbe, error) {
	p := &TableProbe{
		child: child, shared: shared, probeKey: probeKey, payload: payload,
		probeCore: newProbeCore(),
	}
	p.schema = append(p.schema, child.Schema()...)
	for _, pay := range payload {
		kind := vector.Invalid
		for _, ci := range shared.Schema() {
			if ci.Name == pay {
				kind = ci.Kind
				break
			}
		}
		if kind == vector.Invalid {
			return nil, fmt.Errorf("engine: payload column %q missing from build side", pay)
		}
		p.schema = append(p.schema, ColInfo{Name: pay, Kind: kind})
	}
	var err error
	if p.keyIdxP, err = resolveProbeKey(child.Schema(), probeKey); err != nil {
		return nil, err
	}
	return p, nil
}

// SetBloom fixes the Bloom flavor (default adaptive).
func (p *TableProbe) SetBloom(m BloomMode) *TableProbe { p.mode = m; return p }

// Schema implements Operator.
func (p *TableProbe) Schema() []ColInfo { return p.schema }

// Open implements Operator: the first probe to open triggers the shared
// build; the rest attach to the finished table.
func (p *TableProbe) Open(ctx context.Context) error {
	if err := p.child.Open(ctx); err != nil {
		return err
	}
	tbl, err := p.shared.Table(ctx)
	if err != nil {
		return err
	}
	p.tbl = tbl
	if p.payIdx, err = resolvePayload(tbl.Rows().Schema(), p.payload); err != nil {
		return err
	}
	return nil
}

// Next implements Operator.
func (p *TableProbe) Next(ctx context.Context) (*vector.Chunk, error) {
	for {
		chunk, err := p.child.Next(ctx)
		if err != nil || chunk == nil {
			return chunk, err
		}
		cc := chunk
		if chunk.Sel() != nil {
			cc = chunk.Condense()
		}
		probeIdx, buildIdx := p.probeKeys(p.tbl, cc.Col(p.keyIdxP).I64())
		if len(probeIdx) == 0 {
			continue
		}
		return joinEmit(cc, p.tbl.Rows(), p.payload, p.payIdx, probeIdx, buildIdx), nil
	}
}

// Close implements Operator (the shared table is owned by the query, not the
// probe).
func (p *TableProbe) Close() error { return p.child.Close() }

// ---------------------------------------------------------------------------
// Parallel grouped aggregation: per-morsel pre-aggregation tables merged in
// morsel sequence order.

// ParallelAgg is a morsel-parallel grouped aggregation: worker pipelines
// (scan→filter/compute/probe chains over windowed scans) process morsels
// concurrently under work-stealing dispatch, each morsel folding its rows —
// in row order — into a private pre-aggregation table slotted by the
// morsel's dense sequence number. When the run completes, the tables merge
// pairwise in a sequence-ordered tree, so every group's accumulation order is
// fully determined by the data and the morsel length: which worker ran a
// morsel, how many workers there were, and how steals interleaved all
// cancel out.
//
// The result is therefore byte-identical at every worker count (including
// 1), device policy and execution tier — floating-point sums included. The
// one knob that participates in result identity is the morsel length: a
// group spanning several morsels accumulates blockwise, and f64 addition is
// not associative, so different morsel lengths may legitimately differ in
// low-order float bits. A table no longer than one morsel degenerates to
// the strict row-order fold.
type ParallelAgg struct {
	traceHook
	store     vector.Store
	workers   int
	morselLen int
	keys      []string
	aggs      []Aggregate

	leaves []*PartScan
	pipes  []Operator
	schema []ColInfo

	out     *vector.Chunk
	emitted bool
	stats   morsel.Stats
}

// NewParallelAgg builds a parallel aggregation over store with workers
// pipelines; mk instantiates each worker's private pipeline over its scan
// leaf (the leaf itself for aggregation straight over a scan).
func NewParallelAgg(store vector.Store, columns []string, workers int,
	mk func(worker int, leaf Operator) (Operator, error),
	keys []string, aggs []Aggregate) (*ParallelAgg, error) {
	if workers < 1 {
		return nil, fmt.Errorf("engine: parallel aggregation needs ≥ 1 worker, got %d", workers)
	}
	a := &ParallelAgg{store: store, workers: workers, morselLen: morsel.DefaultMorselLen, keys: keys, aggs: aggs}
	for w := 0; w < workers; w++ {
		leaf, err := NewPartScan(store, columns...)
		if err != nil {
			return nil, err
		}
		pipe, err := mk(w, leaf)
		if err != nil {
			return nil, err
		}
		a.leaves = append(a.leaves, leaf)
		a.pipes = append(a.pipes, pipe)
	}
	sch, err := AggOutputSchema(a.pipes[0].Schema(), keys, aggs)
	if err != nil {
		return nil, err
	}
	a.schema = sch
	return a, nil
}

// SetChunkLen overrides the chunk length of every worker's scan leaf.
func (a *ParallelAgg) SetChunkLen(n int) *ParallelAgg {
	for _, leaf := range a.leaves {
		leaf.SetChunkLen(n)
	}
	return a
}

// SetMorselLen overrides the dispatch granularity.
func (a *ParallelAgg) SetMorselLen(n int) *ParallelAgg {
	if n > 0 {
		a.morselLen = n
	}
	return a
}

// Workers returns the configured worker count.
func (a *ParallelAgg) Workers() int { return a.workers }

// Schema implements Operator.
func (a *ParallelAgg) Schema() []ColInfo { return a.schema }

// Open implements Operator.
func (a *ParallelAgg) Open(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for w, pipe := range a.pipes {
		a.leaves[w].SetRange(0, 0)
		if err := pipe.Open(ctx); err != nil {
			return err
		}
	}
	a.emitted = false
	a.out = nil
	return nil
}

// Next implements Operator: the first call runs the whole parallel
// aggregation synchronously and emits the single result chunk.
func (a *ParallelAgg) Next(ctx context.Context) (*vector.Chunk, error) {
	if a.emitted {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	a.emitted = true

	var mu sync.Mutex
	var runErr error
	var failed atomic.Bool
	fail := func(err error) {
		mu.Lock()
		if runErr == nil {
			runErr = err
		}
		mu.Unlock()
		failed.Store(true)
	}

	rows := a.store.Rows()
	numMorsels := (rows + a.morselLen - 1) / a.morselLen
	// One pre-aggregation table per morsel, slotted by sequence number. A
	// morsel's slot is written by exactly one worker (the dispatcher claims
	// each morsel exactly once) and read only after the run completes, so the
	// slice needs no locking.
	tables := make([]*aggTable, numMorsels)
	hint := a.tableHint()
	a.stats = morsel.RunInstrumented(rows,
		morsel.Options{Workers: a.workers, MorselLen: a.morselLen},
		func(worker, lo, hi int) {
			if failed.Load() {
				return
			}
			msp := a.startMorsel()
			a.leaves[worker].SetRange(lo, hi)
			tbl := newAggTableSized(a.keys, a.aggs, hint)
			var absorbed int64
			absorb := func(c *vector.Chunk) {
				cc := c
				if c.Sel() != nil {
					cc = c.Condense()
				}
				if cc.Len() > 0 {
					tbl.absorb(cc)
					absorbed += int64(cc.Len())
				}
			}
			if mr, ok := a.pipes[worker].(MorselRunner); ok {
				// Device-placed pipeline: the whole morsel drain executes as
				// one placed unit, then folds.
				chunks, err := mr.RunMorsel(ctx, lo, hi)
				if err != nil {
					msp.End()
					fail(err)
					return
				}
				for _, c := range chunks {
					absorb(c)
				}
			} else {
				// Plain pipeline: fold chunk-by-chunk while draining, so a
				// morsel's output (join fan-out included) never buffers.
				for {
					c, err := a.pipes[worker].Next(ctx)
					if err != nil {
						msp.End()
						fail(err)
						return
					}
					if c == nil {
						break
					}
					absorb(c)
				}
			}
			tables[lo/a.morselLen] = tbl
			finishMorsel(msp, a.pipes[worker], worker, lo, hi, a.morselLen, rows, a.workers, absorbed)
		})
	attachMorselStats(a.tsp, a.stats)
	if runErr != nil {
		return nil, runErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Merge the per-morsel tables in a sequence-ordered pairwise tree — each
	// merge's right operand holds strictly later rows than its left — and
	// emit in key order.
	final := mergeAggTables(tables, a.workers, a.keys, a.aggs)
	a.out = emitAggChunk(a.schema, a.keys, a.aggs, final)
	final.release()
	return a.out, nil
}

// DistinctEstimator is implemented by stores whose metadata carries
// per-column distinct-value estimates (the colstore's zone maps).
// ParallelAgg uses them to pre-size per-morsel group tables; an estimate of
// 0 means "unknown".
type DistinctEstimator interface {
	DistinctEstimate(col string) int
}

// tableHint estimates the group count of one morsel's pre-aggregation table:
// the largest zone-map distinct estimate across the group-key columns,
// capped at the morsel length (a morsel cannot hold more groups than rows).
// 0 when the store has no estimates or a key is not a stored column (e.g.
// computed downstream of the scan).
func (a *ParallelAgg) tableHint() int {
	de, ok := a.store.(DistinctEstimator)
	if !ok {
		return 0
	}
	hint := 0
	for _, k := range a.keys {
		d := de.DistinctEstimate(k)
		if d <= 0 {
			return 0
		}
		if d > hint {
			hint = d
		}
	}
	if hint > a.morselLen {
		hint = a.morselLen
	}
	return hint
}

// mergeAggTables folds the per-morsel tables into one with a pairwise,
// sequence-ordered reduction tree: every round merges table 2i+1 into table
// 2i (an odd tail carries over), so each merge's right operand still holds
// strictly later rows than its left and the combined first-seen order — and
// therefore the floating-point accumulation order per group — is identical
// to the serial left-to-right fold's group order. The tree's shape depends
// only on the morsel count, never on workers, keeping result bytes a
// function of (plan, data, morsel length); rounds with several pairs run
// them concurrently since pairs touch disjoint tables. Merged-away tables
// are released to the pool; the caller owns (and releases) the survivor.
func mergeAggTables(tables []*aggTable, workers int, keys []string, aggs []Aggregate) *aggTable {
	live := make([]*aggTable, 0, len(tables))
	for _, t := range tables {
		if t != nil {
			live = append(live, t)
		}
	}
	if len(live) == 0 {
		return newAggTable(keys, aggs)
	}
	for len(live) > 1 {
		pairs := len(live) / 2
		mergePair := func(i int) {
			live[2*i].merge(live[2*i+1])
			live[2*i+1].release()
		}
		if workers > 1 && pairs > 1 {
			var wg sync.WaitGroup
			for i := 0; i < pairs; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					mergePair(i)
				}(i)
			}
			wg.Wait()
		} else {
			for i := 0; i < pairs; i++ {
				mergePair(i)
			}
		}
		next := make([]*aggTable, 0, (len(live)+1)/2)
		for i := 0; i < len(live); i += 2 {
			next = append(next, live[i])
		}
		live = next
	}
	return live[0]
}

// Close implements Operator.
func (a *ParallelAgg) Close() error {
	for _, pipe := range a.pipes {
		pipe.Close()
	}
	return nil
}

// MorselStats returns the dispatch statistics of the completed run.
func (a *ParallelAgg) MorselStats() morsel.Stats { return a.stats }
