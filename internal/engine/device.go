// Heterogeneous morsel dispatch: the relational half of the paper's third
// research target (§IV, adaptive decisions about *which hardware* runs each
// part of a query). Eligible streaming segments — scan→filter/compute
// pipelines and join probes — are costed per morsel as device kernels and
// dispatched to the CPU workers or the simulated GPU by the device.Placer's
// model + EWMA feedback. Every device executes on the host (the GPU is
// modeled), so placement is purely a cost/scheduling concern: the chunk
// stream, and therefore the query result, is byte-identical under any
// policy.

package engine

import (
	"context"
	"sync"
	"time"

	"repro/internal/device"
	"repro/internal/vector"
)

// KernelSpec is the per-query cost template of one streaming segment,
// derived from the plan: instantiated per morsel into a device.Kernel by
// scaling the per-row volumes to the morsel's row count. Inputs name the
// scanned columns with stable residency keys, so the simulated GPU's
// residency cache makes repeated queries over the same table progressively
// cheaper to offload.
type KernelSpec struct {
	// Name identifies the segment for placement feedback.
	Name string
	// Inputs are residency keys, one per scanned column.
	Inputs []string
	// RowBytes is the summed per-row width of the scanned columns.
	RowBytes int
	// OutRowBytes estimates the per-row output volume.
	OutRowBytes int
	// OpsPerElem approximates the segment's arithmetic intensity per row
	// (filters, computes and probes stacked on the scan).
	OpsPerElem float64
}

// Kernel instantiates the spec for the morsel [lo, hi).
func (s KernelSpec) Kernel(lo, hi int) device.Kernel {
	n := hi - lo
	return device.Kernel{
		Name:       s.Name,
		Elems:      n,
		BytesIn:    n * s.RowBytes,
		BytesOut:   n * s.OutRowBytes,
		OpsPerElem: s.OpsPerElem,
		Inputs:     s.Inputs,
	}
}

// PlacementRecorder accumulates one query's morsel placement decisions.
// It is shared by every worker's DeviceExec, so it synchronizes internally;
// contention is negligible (one update per morsel, not per chunk).
type PlacementRecorder struct {
	mu       sync.Mutex
	counts   map[string]int64
	transfer time.Duration
}

// NewPlacementRecorder creates an empty recorder.
func NewPlacementRecorder() *PlacementRecorder {
	return &PlacementRecorder{counts: map[string]int64{}}
}

// record counts one morsel placed on the named device.
func (r *PlacementRecorder) record(deviceName string, cost device.Cost) {
	r.mu.Lock()
	r.counts[deviceName]++
	r.transfer += cost.Transfer
	r.mu.Unlock()
}

// Counts returns a snapshot of morsels dispatched per device.
func (r *PlacementRecorder) Counts() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counts))
	for name, n := range r.counts {
		out[name] = n
	}
	return out
}

// Transfer returns the accumulated modeled transfer time of placed morsels
// (zero unless some ran on the simulated GPU).
func (r *PlacementRecorder) Transfer() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.transfer
}

// MorselRunner is implemented by pipeline tops that execute one dispatched
// morsel as a unit. The Exchange and ParallelAgg dispatch loops detect it
// and hand over the whole morsel drain — the hook through which DeviceExec
// interposes device placement without the dispatchers knowing about
// devices.
type MorselRunner interface {
	Operator
	// RunMorsel drains the pipeline for the armed morsel [lo, hi) and
	// returns its chunks in stream order.
	RunMorsel(ctx context.Context, lo, hi int) ([]*vector.Chunk, error)
}

// DeviceExec wraps one worker's streaming pipeline with per-morsel device
// placement: each dispatched morsel is costed through the KernelSpec and
// executed under the chosen device — the placer's pick under the adaptive
// policy, or a fixed device when the policy forces one. The CPU device
// reports measured wall time and the GPU modeled time, both feeding the
// placer's EWMA bias, so placement self-corrects with the observed cost of
// real query pipelines.
//
// As a plain Operator it is transparent (Next delegates to the child); the
// placement path is RunMorsel, reached through the MorselRunner detection
// in the exchange dispatch loops.
type DeviceExec struct {
	child  Operator
	placer *device.Placer
	forced device.Device // non-nil pins every morsel (DeviceCPU/DeviceGPU policies)
	spec   KernelSpec
	rec    *PlacementRecorder

	// lastDev names the device that ran the most recent morsel. It is
	// written and read only on the worker goroutine that owns this
	// pipeline (the dispatch closure reads it right after RunMorsel
	// returns), so it needs no synchronization.
	lastDev string
}

// LastDevice returns the device that executed the most recent morsel
// ("" before the first one).
func (d *DeviceExec) LastDevice() string { return d.lastDev }

// NewDeviceExec wraps child. Exactly one of placer (adaptive) or forced
// (pinned) should be set; rec may be nil when no one observes placements.
func NewDeviceExec(child Operator, placer *device.Placer, forced device.Device,
	spec KernelSpec, rec *PlacementRecorder) *DeviceExec {
	return &DeviceExec{child: child, placer: placer, forced: forced, spec: spec, rec: rec}
}

// Schema implements Operator.
func (d *DeviceExec) Schema() []ColInfo { return d.child.Schema() }

// Open implements Operator.
func (d *DeviceExec) Open(ctx context.Context) error { return d.child.Open(ctx) }

// Next implements Operator (pass-through for serial use).
func (d *DeviceExec) Next(ctx context.Context) (*vector.Chunk, error) { return d.child.Next(ctx) }

// Close implements Operator.
func (d *DeviceExec) Close() error { return d.child.Close() }

// RunMorsel implements MorselRunner: it drains the child for the morsel the
// caller armed (the exchange set the scan leaf's range to [lo, hi)) under
// one placed device, records the decision, and returns the chunks.
func (d *DeviceExec) RunMorsel(ctx context.Context, lo, hi int) ([]*vector.Chunk, error) {
	var chunks []*vector.Chunk
	var runErr error
	work := func() {
		for {
			c, err := d.child.Next(ctx)
			if err != nil {
				runErr = err
				return
			}
			if c == nil {
				return
			}
			chunks = append(chunks, c)
		}
	}
	k := d.spec.Kernel(lo, hi)
	var dev device.Device
	var cost device.Cost
	if d.forced != nil {
		dev, cost = d.forced, d.forced.Run(k, work)
	} else {
		dev, cost = d.placer.Execute(k, work)
	}
	if runErr != nil {
		return nil, runErr
	}
	d.lastDev = dev.Name()
	if d.rec != nil {
		d.rec.record(dev.Name(), cost)
	}
	return chunks, nil
}
