package engine

import (
	"context"
	"runtime"
	"testing"
	"time"
)

// settleGoroutines waits for the goroutine count to drop back to at most
// limit, giving cancelled workers a moment to observe their quit signals and
// unwind. Returns the last observed count.
func settleGoroutines(limit int) int {
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for n > limit && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// TestExchangeCancelNoGoroutineLeak fences runtime.NumGoroutine around many
// abandoned parallel runs: exchanges cancelled mid-stream and exchanges
// closed without draining. Every worker goroutine must exit — a leak of even
// one per query compounds across a session's lifetime. Run under -race this
// also shakes out unsynchronized teardown.
func TestExchangeCancelNoGoroutineLeak(t *testing.T) {
	st := genTable(t, 200_000, 11)
	before := runtime.NumGoroutine()

	for i := 0; i < 20; i++ {
		ex, err := NewExchange(st, nil, 4, func(_ int, leaf Operator) (Operator, error) {
			return pipelineOn(leaf), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		ex.SetMorselLen(1024)
		ctx, cancel := context.WithCancel(context.Background())
		if err := ex.Open(ctx); err != nil {
			t.Fatal(err)
		}
		if _, err := ex.Next(ctx); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			// Cancel mid-stream, then close: workers must notice the context
			// even while blocked sending into the output channel.
			cancel()
		}
		if err := ex.Close(); err != nil {
			t.Fatal(err)
		}
		cancel()
	}

	// Allow scheduling slack: the runtime's own background goroutines come
	// and go, so fence against a small constant, not exact equality.
	const slack = 3
	if n := settleGoroutines(before + slack); n > before+slack {
		t.Fatalf("goroutines: %d before, %d after %d abandoned exchanges (slack %d) — worker leak",
			before, n, 20, slack)
	}
}

// TestParallelAggCancelNoGoroutineLeak does the same for the ParallelAgg
// path: a run cancelled before Next completes must still join every worker
// before Next returns, and Close must be clean afterwards.
func TestParallelAggCancelNoGoroutineLeak(t *testing.T) {
	st := genTable(t, 200_000, 12)
	before := runtime.NumGoroutine()

	for i := 0; i < 20; i++ {
		pa, err := NewParallelAgg(st, nil, 4, func(_ int, leaf Operator) (Operator, error) {
			return pipelineOn(leaf), nil
		}, []string{"k"}, []Aggregate{{Func: AggSum, Col: "v2", As: "s"}})
		if err != nil {
			t.Fatal(err)
		}
		pa.SetMorselLen(1024)
		ctx, cancel := context.WithCancel(context.Background())
		if err := pa.Open(ctx); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			cancel()
		}
		// ParallelAgg runs the whole fold inside Next: on the cancelled
		// iterations it must return an error with every worker joined.
		if _, err := pa.Next(ctx); err != nil && i%2 != 0 {
			t.Fatal(err)
		}
		if err := pa.Close(); err != nil {
			t.Fatal(err)
		}
		cancel()
	}

	const slack = 3
	if n := settleGoroutines(before + slack); n > before+slack {
		t.Fatalf("goroutines: %d before, %d after cancelled parallel aggs (slack %d) — worker leak",
			before, n, slack)
	}
}
