package engine

import (
	"context"
	"sort"

	"repro/internal/profile"
	"repro/internal/vector"
)

// Selector is one selective operation over a chunk: it narrows a selection
// vector. Hash-join semijoin probes and predicate filters both fit; the
// §III-C reordering scenario ("Consider a chain of two HashJoin operators A
// and B... During runtime the order of these operations could change
// dynamically based on the observed selectivity") is a chain of Selectors.
type Selector interface {
	// Name identifies the selector in reports.
	Name() string
	// Apply returns the subset of sel whose rows pass.
	Apply(c *vector.Chunk, sel vector.Sel) vector.Sel
}

// SetMembership is a semijoin-style selector: row passes when col's value is
// in the build-side key set (the filtering half of a hash join).
type SetMembership struct {
	Label string
	Col   string
	Set   map[int64]struct{}
}

// Name implements Selector.
func (s *SetMembership) Name() string { return s.Label }

// Apply implements Selector.
func (s *SetMembership) Apply(c *vector.Chunk, sel vector.Sel) vector.Sel {
	col := c.MustColumn(s.Col).I64()
	out := make(vector.Sel, 0, sel.Count(len(col)))
	if sel == nil {
		for i := range col {
			if _, ok := s.Set[col[i]]; ok {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		if _, ok := s.Set[col[i]]; ok {
			out = append(out, i)
		}
	}
	return out
}

// CmpSelector selects rows where col <cmp> threshold (cheap predicate stage).
type CmpSelector struct {
	Label     string
	Col       string
	Threshold int64
	Greater   bool
}

// Name implements Selector.
func (s *CmpSelector) Name() string { return s.Label }

// Apply implements Selector.
func (s *CmpSelector) Apply(c *vector.Chunk, sel vector.Sel) vector.Sel {
	col := c.MustColumn(s.Col).I64()
	out := make(vector.Sel, 0, sel.Count(len(col)))
	test := func(v int64) bool {
		if s.Greater {
			return v > s.Threshold
		}
		return v < s.Threshold
	}
	if sel == nil {
		for i := range col {
			if test(col[i]) {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		if test(col[i]) {
			out = append(out, i)
		}
	}
	return out
}

// AdaptiveChain applies a set of selectors to every chunk, dynamically
// ordering them most-selective-first based on observed pass rates (EWMA).
// With Adaptive=false the construction order is kept (the static baseline).
type AdaptiveChain struct {
	child    Operator
	stages   []Selector
	passEW   []*profile.EWMA
	Adaptive bool

	// Applications counts selector applications × rows, the work measure
	// the reordering minimizes.
	Applications int64
	// Reorders counts order changes.
	Reorders  int64
	lastOrder []int
}

// NewAdaptiveChain builds a chain over the given selectors.
func NewAdaptiveChain(child Operator, adaptive bool, stages ...Selector) *AdaptiveChain {
	ac := &AdaptiveChain{child: child, stages: stages, Adaptive: adaptive}
	for range stages {
		ac.passEW = append(ac.passEW, profile.NewEWMA(0.3))
	}
	return ac
}

// Order returns the current stage order (indexes into the constructor
// order).
func (ac *AdaptiveChain) Order() []int {
	order := make([]int, len(ac.stages))
	for i := range order {
		order[i] = i
	}
	if !ac.Adaptive {
		return order
	}
	sort.SliceStable(order, func(a, b int) bool {
		return ac.passEW[order[a]].Value(1) < ac.passEW[order[b]].Value(1)
	})
	return order
}

// Schema implements Operator.
func (ac *AdaptiveChain) Schema() []ColInfo { return ac.child.Schema() }

// Open implements Operator.
func (ac *AdaptiveChain) Open(ctx context.Context) error { return ac.child.Open(ctx) }

// Next implements Operator.
func (ac *AdaptiveChain) Next(ctx context.Context) (*vector.Chunk, error) {
	for {
		chunk, err := ac.child.Next(ctx)
		if err != nil || chunk == nil {
			return chunk, err
		}
		order := ac.Order()
		if ac.lastOrder != nil && !equalOrder(order, ac.lastOrder) {
			ac.Reorders++
		}
		ac.lastOrder = order

		sel := chunk.Sel()
		alive := chunk.SelectedLen()
		for _, si := range order {
			if alive == 0 {
				break
			}
			ac.Applications += int64(alive)
			out := ac.stages[si].Apply(chunk, sel)
			ac.passEW[si].Observe(float64(len(out)) / float64(alive))
			sel = out
			alive = len(out)
		}
		if alive == 0 {
			continue
		}
		res := shallowChunk(chunk)
		res.SetSel(sel)
		return res, nil
	}
}

// Close implements Operator.
func (ac *AdaptiveChain) Close() error { return ac.child.Close() }

func equalOrder(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
