package engine

import (
	"testing"

	"repro/internal/vector"
)

// skipStore wraps a DSM store and skips any chunk window that lies entirely
// inside a banned row band, mimicking a zone-map-pruned table.
type skipStore struct {
	*vector.DSMStore
	banLo, banHi int
	calls        int
}

func (s *skipStore) SkipRange(lo, hi int) bool {
	s.calls++
	return lo >= s.banLo && hi <= s.banHi
}

func buildSkipStore(rows, banLo, banHi int) *skipStore {
	st := vector.NewDSMStore(vector.NewSchema("k", vector.I64))
	for i := 0; i < rows; i++ {
		st.AppendRow(vector.I64Value(int64(i)))
	}
	return &skipStore{DSMStore: st, banLo: banLo, banHi: banHi}
}

// expectRows asserts the scan produced exactly the unbanned rows in order.
func expectRows(t *testing.T, got []int64, rows, banLo, banHi int) {
	t.Helper()
	var want []int64
	for i := 0; i < rows; i++ {
		// A window is only skipped when fully inside the band; with the
		// chunk length dividing the band bounds the skipped rows are exactly
		// the band.
		if i >= banLo && i < banHi {
			continue
		}
		want = append(want, int64(i))
	}
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestScanHonorsRangeSkipper(t *testing.T) {
	const rows, chunk = 4096, 128
	st := buildSkipStore(rows, 1024, 2048)
	sc, err := NewScan(st, "k")
	if err != nil {
		t.Fatal(err)
	}
	sc.SetChunkLen(chunk)
	var got []int64
	if err := Drain(t.Context(), sc, func(c *vector.Chunk) error {
		got = append(got, c.Col(0).I64()...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	expectRows(t, got, rows, 1024, 2048)
	if st.calls == 0 {
		t.Fatal("skipper never consulted")
	}
}

func TestPartScanHonorsRangeSkipper(t *testing.T) {
	const rows, chunk = 4096, 128
	st := buildSkipStore(rows, 1024, 2048)
	ps, err := NewPartScan(st, "k")
	if err != nil {
		t.Fatal(err)
	}
	ps.SetChunkLen(chunk)
	var got []int64
	// Walk morsel-style windows, including ones fully inside the band.
	for lo := 0; lo < rows; lo += 512 {
		ps.SetRange(lo, lo+512)
		for {
			c, err := ps.Next(t.Context())
			if err != nil {
				t.Fatal(err)
			}
			if c == nil {
				break
			}
			got = append(got, c.Col(0).I64()...)
		}
	}
	expectRows(t, got, rows, 1024, 2048)
}

// TestSkipperPreservesChunkBoundaries: skipping must advance the position in
// the same chunk steps as scanning, so downstream chunk shapes are unchanged
// for the surviving rows.
func TestSkipperPreservesChunkBoundaries(t *testing.T) {
	const rows, chunk = 1000, 64
	plain := buildSkipStore(rows, 0, 0) // band empty: nothing skipped
	banned := buildSkipStore(rows, 128, 256)
	shapes := func(st *skipStore) [][2]int64 {
		sc, err := NewScan(st, "k")
		if err != nil {
			t.Fatal(err)
		}
		sc.SetChunkLen(chunk)
		var out [][2]int64
		if err := Drain(t.Context(), sc, func(c *vector.Chunk) error {
			ks := c.Col(0).I64()
			out = append(out, [2]int64{ks[0], int64(len(ks))})
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	ps, bs := shapes(plain), shapes(banned)
	// The banned run must present the same chunks minus the banned ones.
	j := 0
	for _, p := range ps {
		if p[0] >= 128 && p[0] < 256 {
			continue
		}
		if j >= len(bs) || bs[j] != p {
			t.Fatalf("chunk %v missing or reshaped (got %v)", p, bs[j])
		}
		j++
	}
	if j != len(bs) {
		t.Fatalf("banned scan produced %d extra chunks", len(bs)-j)
	}
}
