package engine

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/gpu"
)

// TestKernelSpecKernel: the spec scales per-row volumes to the morsel.
func TestKernelSpecKernel(t *testing.T) {
	spec := KernelSpec{
		Name: "seg", Inputs: []string{"t.a", "t.b"},
		RowBytes: 16, OutRowBytes: 8, OpsPerElem: 3,
	}
	k := spec.Kernel(16384, 16384+1000)
	if k.Elems != 1000 || k.BytesIn != 16000 || k.BytesOut != 8000 {
		t.Fatalf("kernel volumes wrong: %+v", k)
	}
	if k.OpsPerElem != 3 || len(k.Inputs) != 2 || k.Name != "seg" {
		t.Fatalf("kernel metadata wrong: %+v", k)
	}
}

// TestDeviceExecExchange: an exchange over DeviceExec-wrapped pipelines
// produces exactly the serial rows while recording one placement per
// morsel; forcing the GPU device pins every morsel and charges transfer.
func TestDeviceExecExchange(t *testing.T) {
	st := genTable(t, 50_000, 7)
	serialScan, err := NewScan(st)
	if err != nil {
		t.Fatal(err)
	}
	want := materialize(t, pipelineOn(serialScan))

	spec := KernelSpec{
		Name:     "seg@test",
		Inputs:   []string{"t.k", "t.v", "t.f"},
		RowBytes: 24, OutRowBytes: 24, OpsPerElem: 5,
	}
	const morselLen = 4096
	wantMorsels := int64((st.Rows() + morselLen - 1) / morselLen)

	cases := []struct {
		name   string
		placer *device.Placer
		forced device.Device
	}{
		{"adaptive", device.NewPlacer(device.NewCPU(), gpu.New(gpu.DefaultConfig())), nil},
		{"forced-gpu", nil, gpu.New(gpu.DefaultConfig())},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := NewPlacementRecorder()
			ex, err := NewExchange(st, nil, 4, func(_ int, leaf Operator) (Operator, error) {
				return NewDeviceExec(pipelineOn(leaf), tc.placer, tc.forced, spec, rec), nil
			})
			if err != nil {
				t.Fatal(err)
			}
			ex.SetMorselLen(morselLen)
			got := materialize(t, ex)
			if len(got) != len(want) {
				t.Fatalf("%d rows, want %d", len(got), len(want))
			}
			for i := range want {
				for c := range want[i] {
					if !got[i][c].Equal(want[i][c]) {
						t.Fatalf("row %d col %d: got %v want %v", i, c, got[i][c], want[i][c])
					}
				}
			}
			counts := rec.Counts()
			var total int64
			for _, n := range counts {
				total += n
			}
			if total != wantMorsels {
				t.Fatalf("recorded %d placements, want %d (%v)", total, wantMorsels, counts)
			}
			if tc.forced != nil {
				if counts["gpu"] != wantMorsels {
					t.Fatalf("forced gpu placed %v, want all on gpu", counts)
				}
				if rec.Transfer() <= 0 {
					t.Fatal("forced gpu recorded no transfer time")
				}
			}
		})
	}
}

// TestDeviceExecParallelAgg: grouped aggregation over placed pipelines is
// byte-identical to the unplaced aggregation at the same morsel length —
// placement is a scheduling concern only and must never reach result bytes.
func TestDeviceExecParallelAgg(t *testing.T) {
	st := genTable(t, 60_000, 9)
	keys := []string{"k"}
	aggs := []Aggregate{
		{Func: AggSum, Col: "f", As: "sum_f"},
		{Func: AggCount, As: "n"},
	}
	ref, err := NewParallelAgg(st, nil, 1, func(_ int, leaf Operator) (Operator, error) {
		return pipelineOn(leaf), nil
	}, keys, aggs)
	if err != nil {
		t.Fatal(err)
	}
	want := materialize(t, ref.SetMorselLen(4096))

	rec := NewPlacementRecorder()
	placer := device.NewPlacer(device.NewCPU(), gpu.New(gpu.DefaultConfig()))
	spec := KernelSpec{Name: "agg@test", Inputs: []string{"t.k", "t.v", "t.f"}, RowBytes: 24, OutRowBytes: 24, OpsPerElem: 5}
	pa, err := NewParallelAgg(st, nil, 4, func(_ int, leaf Operator) (Operator, error) {
		return NewDeviceExec(pipelineOn(leaf), placer, nil, spec, rec), nil
	}, keys, aggs)
	if err != nil {
		t.Fatal(err)
	}
	pa.SetMorselLen(4096)
	got := materialize(t, pa)
	if len(got) != len(want) {
		t.Fatalf("%d groups, want %d", len(got), len(want))
	}
	for i := range want {
		for c := range want[i] {
			if !got[i][c].Equal(want[i][c]) {
				t.Fatalf("group %d col %d: got %v want %v", i, c, got[i][c], want[i][c])
			}
		}
	}
	var total int64
	for _, n := range rec.Counts() {
		total += n
	}
	if wantMorsels := int64((st.Rows() + 4095) / 4096); total != wantMorsels {
		t.Fatalf("recorded %d placements, want %d", total, wantMorsels)
	}
}

// TestDeviceExecOperatorPassthrough: as a plain Operator the wrapper is
// transparent — serial drains bypass placement entirely.
func TestDeviceExecOperatorPassthrough(t *testing.T) {
	st := genTable(t, 5_000, 3)
	sc, err := NewScan(st)
	if err != nil {
		t.Fatal(err)
	}
	want := materialize(t, pipelineOn(sc))

	sc2, err := NewScan(st)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewPlacementRecorder()
	de := NewDeviceExec(pipelineOn(sc2), device.NewPlacer(device.NewCPU()), nil, KernelSpec{}, rec)
	if fmt.Sprint(de.Schema()) != fmt.Sprint(pipelineOn(sc).Schema()) {
		t.Fatal("schema not delegated")
	}
	got := materialize(t, de)
	if len(got) != len(want) {
		t.Fatalf("%d rows, want %d", len(got), len(want))
	}
	if len(rec.Counts()) != 0 {
		t.Fatalf("serial passthrough recorded placements: %v", rec.Counts())
	}
}

// TestDeviceExecPropagatesError: a failing pipeline surfaces its error
// through RunMorsel instead of losing it inside the placed work.
func TestDeviceExecPropagatesError(t *testing.T) {
	st := genTable(t, 10_000, 5)
	ex, err := NewExchange(st, nil, 2, func(_ int, leaf Operator) (Operator, error) {
		f := NewFilter(leaf, `(\k -> k <`, "k") // malformed predicate: Open fails later
		return NewDeviceExec(f, device.NewPlacer(device.NewCPU()), nil, KernelSpec{}, nil), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Open(context.Background()); err == nil {
		ex.Close()
		t.Fatal("expected open error from malformed predicate")
	}
}

// TestPlacementRecorderConcurrent: many goroutines recording placements at
// once keep consistent totals (run under -race in CI).
func TestPlacementRecorderConcurrent(t *testing.T) {
	rec := NewPlacementRecorder()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			name := "cpu"
			if g%2 == 1 {
				name = "gpu"
			}
			for i := 0; i < 1000; i++ {
				rec.record(name, device.Cost{Transfer: time.Nanosecond})
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	counts := rec.Counts()
	if counts["cpu"] != 4000 || counts["gpu"] != 4000 {
		t.Fatalf("lost updates: %v", counts)
	}
	if rec.Transfer() != 8000*time.Nanosecond {
		t.Fatalf("transfer total %v, want 8µs", rec.Transfer())
	}
}
