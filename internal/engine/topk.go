package engine

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/vector"
)

// OrderSpec names one sort column of a TopK operator.
type OrderSpec struct {
	Col  string
	Desc bool
}

// TopK is a pipeline breaker that materializes its child, stable-sorts the
// rows by the given order columns and emits the first k rows as one chunk.
// The stable sort over a deterministic input order makes the result
// deterministic even when the order columns contain ties — which is what
// keeps a top-k over a parallel aggregation byte-identical to serial.
type TopK struct {
	child Operator
	k     int
	by    []OrderSpec

	schema  []ColInfo
	out     *vector.Chunk
	emitted bool
}

// NewTopK creates a top-k operator. The order columns are validated against
// the child's schema (at construction when the child resolves its schema
// eagerly, otherwise at Open).
func NewTopK(child Operator, k int, by ...OrderSpec) (*TopK, error) {
	if k <= 0 {
		return nil, fmt.Errorf("engine: top-k needs k ≥ 1, got %d", k)
	}
	if len(by) == 0 {
		return nil, fmt.Errorf("engine: top-k needs at least one order column")
	}
	t := &TopK{child: child, k: k, by: by, schema: child.Schema()}
	if t.schema != nil {
		if err := t.validate(); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func (t *TopK) validate() error {
	for _, o := range t.by {
		found := false
		for _, ci := range t.schema {
			if ci.Name == o.Col {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("engine: top-k order column %q not produced by child", o.Col)
		}
	}
	return nil
}

// Schema implements Operator.
func (t *TopK) Schema() []ColInfo { return t.schema }

// Open implements Operator.
func (t *TopK) Open(ctx context.Context) error {
	if err := t.child.Open(ctx); err != nil {
		return err
	}
	t.schema = t.child.Schema()
	t.emitted = false
	t.out = nil
	return t.validate()
}

// valueLess orders two Values of the same kind.
func valueLess(a, b vector.Value) bool {
	switch a.Kind {
	case vector.Str:
		return a.S < b.S
	case vector.F64:
		return a.F < b.F
	case vector.Bool:
		return !a.B && b.B
	default:
		return a.I < b.I
	}
}

// Next implements Operator: the first call drains the child, sorts and
// truncates; the single result chunk is emitted once.
func (t *TopK) Next(ctx context.Context) (*vector.Chunk, error) {
	if t.emitted {
		return nil, nil
	}
	rows, err := collectOpen(ctx, t.child)
	if err != nil {
		return nil, err
	}
	t.emitted = true
	t.out = topKSelect(rows, t.schema, t.k, t.by)
	return t.out, nil
}

// topKSelect stable-sorts the materialized rows by the order columns and
// returns the first k (all of them when fewer) as one condensed chunk in
// schema column order. The stable sort keeps tied rows in store order.
// Shared by the serial TopK and the morsel-parallel ParallelTopK — using one
// comparator and one materialization path is what makes the parallel fold
// byte-identical to the serial sort.
func topKSelect(rows *vector.DSMStore, schema []ColInfo, k int, by []OrderSpec) *vector.Chunk {
	orderCols := make([]*vector.Vector, len(by))
	for i, o := range by {
		orderCols[i] = rows.Col(rows.Schema().ColumnIndex(o.Col))
	}
	idx := make([]int, rows.Rows())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool {
		a, b := idx[x], idx[y]
		for i, o := range by {
			va, vb := orderCols[i].Get(a), orderCols[i].Get(b)
			if va.Equal(vb) {
				continue
			}
			if o.Desc {
				return valueLess(vb, va)
			}
			return valueLess(va, vb)
		}
		return false
	})
	n := k
	if n > len(idx) {
		n = len(idx)
	}
	sel := make(vector.Sel, n)
	for i := 0; i < n; i++ {
		sel[i] = int32(idx[i])
	}
	out := vector.NewChunk()
	for i, ci := range schema {
		out.Add(ci.Name, vector.Condense(rows.Col(i), sel))
	}
	return out
}

// Close implements Operator.
func (t *TopK) Close() error { return t.child.Close() }
