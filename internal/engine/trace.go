// Tracing hooks for the dispatching operators (Exchange, ParallelAgg,
// ParallelTopK, parallel join build). A dispatcher is handed the span of
// the plan node it implements via SetTrace; at the morsels level its
// dispatch closure records one leaf span per executed morsel with worker,
// steal, and device attribution, and the completed run attaches the
// morsel.Stats summary to the operator span. With no span set every hook
// is a nil check.

package engine

import (
	"fmt"
	"strings"

	"repro/internal/morsel"
	"repro/internal/qtrace"
	"repro/internal/vector"
)

// traceHook is the embeddable trace state of a dispatching operator.
type traceHook struct {
	tsp      *qtrace.Span
	tmorsels bool
}

// SetTrace attaches the operator's plan-node span; morsels additionally
// enables per-morsel leaf spans. Must be called before Open.
func (h *traceHook) SetTrace(sp *qtrace.Span, morsels bool) {
	h.tsp = sp
	h.tmorsels = morsels
}

// startMorsel opens a leaf span for one dispatched morsel (nil when the
// trace level doesn't record morsels).
func (h *traceHook) startMorsel() *qtrace.Span {
	if h.tsp == nil || !h.tmorsels {
		return nil
	}
	return h.tsp.Child(qtrace.KindMorsel, "morsel")
}

// finishMorsel closes a morsel leaf span with its attribution: sequence
// number, executing worker, input/output rows, whether the morsel was
// stolen from its initial owner's range, and the device that ran it when
// the pipeline top is device-placed.
func finishMorsel(sp *qtrace.Span, pipe Operator, worker, lo, hi, morselLen, totalRows, workers int, outRows int64) {
	if sp == nil {
		return
	}
	seq := lo / morselLen
	sp.SetWorker(worker)
	sp.SetAttr("seq", seq)
	sp.SetAttr("rows_in", hi-lo)
	sp.AddRows(outRows)
	sp.AddLoop()
	numMorsels := (totalRows + morselLen - 1) / morselLen
	if workers > 1 && morsel.InitialOwner(seq, numMorsels, workers) != worker {
		sp.SetAttr("stolen", true)
	}
	if de, ok := pipe.(*DeviceExec); ok {
		if dev := de.LastDevice(); dev != "" {
			sp.SetAttr("device", dev)
		}
	}
	sp.End()
}

// attachMorselStats summarizes a completed run on the operator span.
func attachMorselStats(sp *qtrace.Span, st morsel.Stats) {
	if sp == nil {
		return
	}
	sp.SetAttr("morsels", st.Morsels())
	sp.SetAttr("steals", st.Steals())
	if len(st.MorselsPerWorker) > 1 {
		var b strings.Builder
		for w, n := range st.MorselsPerWorker {
			if w > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "w%d=%d", w, n)
		}
		sp.SetAttr("morsels_per_worker", b.String())
	}
}

// chunkRows sums the selected rows across a morsel's output chunks.
func chunkRows(chunks []*vector.Chunk) int64 {
	var n int64
	for _, c := range chunks {
		n += int64(c.SelectedLen())
	}
	return n
}
