package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/profile"
	"repro/internal/vector"
)

// AggFunc enumerates aggregate functions.
type AggFunc uint8

// Aggregate functions.
const (
	AggSum AggFunc = iota + 1
	AggCount
	AggMin
	AggMax
	AggAvg
	// AggFirst carries the first value of the column seen for each group (in
	// input order). It accepts any column kind, including strings, and is the
	// canonical way to carry columns that are functionally dependent on the
	// group keys (e.g. o_orderdate per l_orderkey in TPC-H Q3).
	AggFirst
)

var aggNames = [...]string{0: "?", AggSum: "sum", AggCount: "count", AggMin: "min", AggMax: "max", AggAvg: "avg", AggFirst: "first"}

func (a AggFunc) String() string { return aggNames[a] }

// Aggregate describes one aggregate column.
type Aggregate struct {
	Func AggFunc
	Col  string // input column ("" for count)
	As   string // output name
}

// PreAggMode controls the adaptively triggered pre-aggregation of [12]: a
// small cache-resident table absorbs per-chunk group locality before rows
// reach the global table.
type PreAggMode int

// Pre-aggregation flavors.
const (
	PreAggAdaptive PreAggMode = iota
	PreAggOn
	PreAggOff
)

// preAggSlots is the size of the cache-resident pre-aggregation table.
const preAggSlots = 512

// preAggThreshold is the pre-agg hit rate below which the flavor is
// disabled (high-cardinality uniform keys make it pure overhead).
const preAggThreshold = 0.5

type aggState struct {
	key    groupKey
	counts []int64
	sumsI  []int64
	sumsF  []float64
	minsI  []int64
	maxsI  []int64
	minsF  []float64
	maxsF  []float64
	firsts []vector.Value
	seen   []bool
}

type groupKey struct {
	i1, i2 int64
	s1, s2 string
}

// AggOutputSchema resolves the output schema of a grouped aggregation over a
// child schema: the key columns first, then one column per aggregate. It is
// shared by the serial HashAgg and the morsel-parallel aggregation, so both
// validate (and err) identically.
func AggOutputSchema(child []ColInfo, keys []string, aggs []Aggregate) ([]ColInfo, error) {
	if len(keys) > 2 {
		return nil, fmt.Errorf("engine: at most 2 group keys supported, got %d", len(keys))
	}
	colKind := func(name string) (vector.Kind, error) {
		for _, ci := range child {
			if ci.Name == name {
				return ci.Kind, nil
			}
		}
		return vector.Invalid, fmt.Errorf("engine: aggregate column %q not produced by child", name)
	}
	var schema []ColInfo
	for _, k := range keys {
		kind, err := colKind(k)
		if err != nil {
			return nil, err
		}
		if kind != vector.I64 && kind != vector.Str {
			return nil, fmt.Errorf("engine: group key %q must be i64 or str, got %v", k, kind)
		}
		schema = append(schema, ColInfo{Name: k, Kind: kind})
	}
	for _, a := range aggs {
		switch a.Func {
		case AggCount:
			schema = append(schema, ColInfo{Name: a.As, Kind: vector.I64})
		case AggAvg:
			schema = append(schema, ColInfo{Name: a.As, Kind: vector.F64})
		case AggFirst:
			kind, err := colKind(a.Col)
			if err != nil {
				return nil, err
			}
			schema = append(schema, ColInfo{Name: a.As, Kind: kind})
		default:
			kind, err := colKind(a.Col)
			if err != nil {
				return nil, err
			}
			if !kind.IsNumeric() {
				return nil, fmt.Errorf("engine: aggregate input %q must be numeric", a.Col)
			}
			schema = append(schema, ColInfo{Name: a.As, Kind: kind})
		}
	}
	return schema, nil
}

// slabStates is the stateSlab block size: one slab refill carves backing
// arrays for this many group states at once.
const slabStates = 64

// stateSlab block-allocates aggState objects. A naive per-group allocation
// costs ten small allocations (the state plus nine accumulator slices); for
// high-cardinality aggregations that allocator traffic dominates the absorb
// loop. The slab allocates one block of states and three backing arrays per
// refill and carves fixed-capacity sub-slices out of them, so the amortized
// cost per group is ~10/slabStates allocations. Handed-out states are never
// reclaimed by the slab — they stay valid after the owning table is released
// to the pool (merge adopts state pointers across tables).
type stateSlab struct {
	naggs  int
	states []aggState
	ints   []int64
	floats []float64
	firsts []vector.Value
	seen   []bool
}

func (s *stateSlab) alloc(naggs int, key groupKey) *aggState {
	if len(s.states) == 0 || s.naggs != naggs {
		s.naggs = naggs
		n := slabStates * naggs
		s.states = make([]aggState, slabStates)
		s.ints = make([]int64, 4*n)
		s.floats = make([]float64, 3*n)
		s.firsts = make([]vector.Value, n)
		s.seen = make([]bool, n)
	}
	st := &s.states[0]
	s.states = s.states[1:]
	st.key = key
	carveI := func() []int64 {
		c := s.ints[:naggs:naggs]
		s.ints = s.ints[naggs:]
		return c
	}
	carveF := func() []float64 {
		c := s.floats[:naggs:naggs]
		s.floats = s.floats[naggs:]
		return c
	}
	st.counts, st.sumsI, st.minsI, st.maxsI = carveI(), carveI(), carveI(), carveI()
	st.sumsF, st.minsF, st.maxsF = carveF(), carveF(), carveF()
	st.firsts = s.firsts[:naggs:naggs]
	s.firsts = s.firsts[naggs:]
	st.seen = s.seen[:naggs:naggs]
	s.seen = s.seen[naggs:]
	return st
}

// aggTable is a grouped-aggregation accumulator: a hash table of per-group
// states plus the first-seen group order. It is the building block shared by
// the serial HashAgg (one global table) and the morsel-parallel aggregation
// (one table per morsel).
type aggTable struct {
	keys   []string
	aggs   []Aggregate
	groups map[groupKey]*aggState
	order  []groupKey
	slab   stateSlab
}

// aggTablePool recycles aggTable containers — the groups map's buckets, the
// order slice and the slab tail — across morsels and queries. Only the
// containers are pooled: group states are slab-allocated and adopted by
// whichever table they are merged into, so a released table never aliases
// live accumulator memory.
var aggTablePool = sync.Pool{New: func() any { return new(aggTable) }}

func newAggTable(keys []string, aggs []Aggregate) *aggTable {
	return newAggTableSized(keys, aggs, 0)
}

// newAggTableSized is newAggTable with a group-count hint (0 = unknown): the
// morsel-parallel aggregation sizes per-morsel tables from the scan's
// zone-map distinct estimates so high-cardinality runs skip the incremental
// map growth. A pooled table keeps whatever bucket capacity it grew to, which
// usually exceeds the hint.
func newAggTableSized(keys []string, aggs []Aggregate, hint int) *aggTable {
	t := aggTablePool.Get().(*aggTable)
	t.keys, t.aggs = keys, aggs
	if t.groups == nil {
		t.groups = make(map[groupKey]*aggState, hint)
	}
	if cap(t.order) < hint {
		t.order = make([]groupKey, 0, hint)
	}
	return t
}

// release returns the table's containers to the pool. Callers must be done
// with the table itself but may keep using its states: emitted chunks copy
// values out, and merge adopts state pointers into the surviving table, so
// clearing the map here only drops references.
func (t *aggTable) release() {
	clear(t.groups)
	t.order = t.order[:0]
	t.keys, t.aggs = nil, nil
	aggTablePool.Put(t)
}

func (t *aggTable) newState(key groupKey) *aggState {
	return t.slab.alloc(len(t.aggs), key)
}

// global returns the state for key, creating it on first sight.
func (t *aggTable) global(key groupKey) *aggState {
	st, ok := t.groups[key]
	if !ok {
		st = t.newState(key)
		t.groups[key] = st
		t.order = append(t.order, key)
	}
	return st
}

// absorb folds every row of a condensed chunk (no selection vector) into the
// table. Per-group accumulation order is exactly the chunk's row order, which
// is what keeps parallel float aggregation byte-identical to serial: a group's
// arithmetic only depends on the order of its own rows.
func (t *aggTable) absorb(cc *vector.Chunk) {
	keyCols := make([]*vector.Vector, len(t.keys))
	valCols := make([]*vector.Vector, len(t.aggs))
	for i, k := range t.keys {
		keyCols[i] = cc.MustColumn(k)
	}
	for i, a := range t.aggs {
		if a.Func != AggCount {
			valCols[i] = cc.MustColumn(a.Col)
		}
	}
	upds := makeUpdaters(t.aggs, valCols)
	keyAt := makeKeyReader(t.keys, keyCols)
	for r := 0; r < cc.Len(); r++ {
		st := t.global(keyAt(r))
		for _, u := range upds {
			u(st, r)
		}
	}
}

// merge folds src into t in src's first-seen order. src must hold strictly
// later table rows than everything already in t — ParallelAgg merges the
// per-morsel tables in morsel sequence order — so overlapping groups combine
// under aggState.merge's "other holds later rows" contract (sums add, First
// keeps t's value) and new groups append in first-seen order. The result is
// exactly the fold a single table absorbing the morsels back-to-back would
// produce, independent of which worker ran which morsel.
func (t *aggTable) merge(src *aggTable) {
	for _, key := range src.order {
		st := src.groups[key]
		if dst, ok := t.groups[key]; ok {
			dst.merge(t.aggs, st)
		} else {
			t.groups[key] = st
			t.order = append(t.order, key)
		}
	}
}

// HashAgg groups by up to two key columns (i64 or str) and computes
// aggregates. It is a pipeline breaker: Next drains the child on first call
// and then streams the result groups.
type HashAgg struct {
	child  Operator
	keys   []string
	aggs   []Aggregate
	mode   PreAggMode
	schema []ColInfo

	tbl     *aggTable
	out     *vector.Chunk
	emitted bool

	hitEW  *profile.EWMA
	useNow bool
	// PreAggHits / PreAggMisses / PreAggFlushes instrument the flavor.
	PreAggHits, PreAggMisses, PreAggFlushes int64
}

// NewHashAgg creates a grouped aggregation.
func NewHashAgg(child Operator, keys []string, aggs []Aggregate) *HashAgg {
	h := &HashAgg{
		child: child, keys: keys, aggs: aggs,
		mode: PreAggAdaptive, hitEW: profile.NewEWMA(0.25), useNow: true,
	}
	// Resolve the schema eagerly when the child's is known statically, so
	// operators stacked on an aggregation (TopK, probes) can validate before
	// Open; Open re-resolves authoritatively.
	if cs := child.Schema(); cs != nil {
		if sch, err := AggOutputSchema(cs, keys, aggs); err == nil {
			h.schema = sch
		}
	}
	return h
}

// SetPreAgg fixes the pre-aggregation flavor (default adaptive).
func (h *HashAgg) SetPreAgg(m PreAggMode) *HashAgg { h.mode = m; return h }

// PreAggEnabled reports the current flavor decision.
func (h *HashAgg) PreAggEnabled() bool {
	switch h.mode {
	case PreAggOn:
		return true
	case PreAggOff:
		return false
	}
	return h.useNow
}

// Schema implements Operator.
func (h *HashAgg) Schema() []ColInfo { return h.schema }

// Open implements Operator.
func (h *HashAgg) Open(ctx context.Context) error {
	if err := h.child.Open(ctx); err != nil {
		return err
	}
	sch, err := AggOutputSchema(h.child.Schema(), h.keys, h.aggs)
	if err != nil {
		return err
	}
	h.schema = sch
	h.tbl = newAggTable(h.keys, h.aggs)
	h.emitted = false
	return nil
}

func (st *aggState) update(aggs []Aggregate, vals []vector.Value) {
	for ai, a := range aggs {
		switch a.Func {
		case AggCount:
			st.counts[ai]++
			continue
		case AggFirst:
			if !st.seen[ai] {
				st.firsts[ai] = vals[ai]
				st.seen[ai] = true
			}
			continue
		}
		v := vals[ai]
		st.counts[ai]++
		if v.Kind == vector.F64 {
			st.sumsF[ai] += v.F
			if !st.seen[ai] || v.F < st.minsF[ai] {
				st.minsF[ai] = v.F
			}
			if !st.seen[ai] || v.F > st.maxsF[ai] {
				st.maxsF[ai] = v.F
			}
		} else {
			st.sumsI[ai] += v.I
			if !st.seen[ai] || v.I < st.minsI[ai] {
				st.minsI[ai] = v.I
			}
			if !st.seen[ai] || v.I > st.maxsI[ai] {
				st.maxsI[ai] = v.I
			}
		}
		st.seen[ai] = true
	}
}

// merge folds a pre-aggregation state into the global state. other holds
// later rows than st, so First keeps st's value when st has seen any.
func (st *aggState) merge(aggs []Aggregate, other *aggState) {
	for ai := range aggs {
		if aggs[ai].Func == AggFirst {
			if !st.seen[ai] && other.seen[ai] {
				st.firsts[ai] = other.firsts[ai]
				st.seen[ai] = true
			}
			continue
		}
		st.counts[ai] += other.counts[ai]
		st.sumsI[ai] += other.sumsI[ai]
		st.sumsF[ai] += other.sumsF[ai]
		if other.seen[ai] {
			if !st.seen[ai] || other.minsI[ai] < st.minsI[ai] {
				st.minsI[ai] = other.minsI[ai]
			}
			if !st.seen[ai] || other.maxsI[ai] > st.maxsI[ai] {
				st.maxsI[ai] = other.maxsI[ai]
			}
			if !st.seen[ai] || other.minsF[ai] < st.minsF[ai] {
				st.minsF[ai] = other.minsF[ai]
			}
			if !st.seen[ai] || other.maxsF[ai] > st.maxsF[ai] {
				st.maxsF[ai] = other.maxsF[ai]
			}
			st.seen[ai] = true
		}
	}
}

// Next implements Operator. The aggregation is a pipeline breaker: the
// first call drains the child (checking ctx chunk-by-chunk through the
// child's own Next) and emits the grouped result.
func (h *HashAgg) Next(ctx context.Context) (*vector.Chunk, error) {
	if h.emitted {
		return nil, nil
	}
	keyCols := make([]*vector.Vector, len(h.keys))
	valCols := make([]*vector.Vector, len(h.aggs))

	// Pre-aggregation table: direct-mapped, cache resident.
	var pre []*aggState
	if h.PreAggEnabled() {
		pre = make([]*aggState, preAggSlots)
	}
	flushPre := func() {
		for i, st := range pre {
			if st != nil {
				h.tbl.global(st.key).merge(h.aggs, st)
				pre[i] = nil
				h.PreAggFlushes++
			}
		}
	}

	for {
		chunk, err := h.child.Next(ctx)
		if err != nil {
			return nil, err
		}
		if chunk == nil {
			break
		}
		cc := chunk
		if chunk.Sel() != nil {
			cc = chunk.Condense()
		}
		for i, k := range h.keys {
			keyCols[i] = cc.MustColumn(k)
		}
		for i, a := range h.aggs {
			if a.Func != AggCount {
				valCols[i] = cc.MustColumn(a.Col)
			}
		}
		// Compile-time-resolved updaters: one monomorphic closure per
		// aggregate per chunk, avoiding per-row Value boxing and the
		// generic update switch.
		upds := makeUpdaters(h.aggs, valCols)
		keyAt := makeKeyReader(h.keys, keyCols)

		// Re-evaluate the flavor per chunk (adaptive trigger).
		wantPre := h.PreAggEnabled()
		if wantPre && pre == nil {
			pre = make([]*aggState, preAggSlots)
		}
		if !wantPre && pre != nil {
			flushPre()
			pre = nil
		}

		hits, misses := 0, 0
		apply := func(st *aggState, r int) {
			for _, u := range upds {
				u(st, r)
			}
		}
		for r := 0; r < cc.Len(); r++ {
			key := keyAt(r)
			if pre != nil {
				slot := int((uint64(key.i1)*0x9e3779b97f4a7c15 ^ uint64(len(key.s1))<<32 ^ uint64(key.i2) ^ hashStr(key.s1) ^ hashStr(key.s2)) % preAggSlots)
				st := pre[slot]
				if st != nil && st.key == key {
					hits++
					apply(st, r)
					continue
				}
				misses++
				if st != nil {
					h.tbl.global(st.key).merge(h.aggs, st)
					h.PreAggFlushes++
				}
				st = h.tbl.newState(key)
				apply(st, r)
				pre[slot] = st
				continue
			}
			apply(h.tbl.global(key), r)
		}
		h.PreAggHits += int64(hits)
		h.PreAggMisses += int64(misses)
		if pre != nil && hits+misses > 0 {
			h.hitEW.Observe(float64(hits) / float64(hits+misses))
			if h.mode == PreAggAdaptive {
				h.useNow = h.hitEW.Value(1) >= preAggThreshold
			}
		}
	}
	if pre != nil {
		flushPre()
	}

	// Emit groups in first-seen order (stable for tests).
	return h.emit()
}

// Close implements Operator.
func (h *HashAgg) Close() error { return h.child.Close() }

// makeUpdaters resolves one monomorphic per-row updater per aggregate for
// the current chunk's column vectors.
func makeUpdaters(aggs []Aggregate, valCols []*vector.Vector) []func(st *aggState, r int) {
	upds := make([]func(st *aggState, r int), len(aggs))
	for ai, a := range aggs {
		ai := ai
		if a.Func == AggCount {
			upds[ai] = func(st *aggState, r int) { st.counts[ai]++ }
			continue
		}
		col := valCols[ai]
		if a.Func == AggFirst {
			upds[ai] = func(st *aggState, r int) {
				if !st.seen[ai] {
					st.firsts[ai] = col.Get(r)
					st.seen[ai] = true
				}
			}
			continue
		}
		switch col.Kind() {
		case vector.F64:
			d := col.F64()
			switch a.Func {
			case AggSum, AggAvg:
				upds[ai] = func(st *aggState, r int) {
					st.counts[ai]++
					st.sumsF[ai] += d[r]
				}
			case AggMin:
				upds[ai] = func(st *aggState, r int) {
					st.counts[ai]++
					if !st.seen[ai] || d[r] < st.minsF[ai] {
						st.minsF[ai] = d[r]
					}
					st.seen[ai] = true
				}
			case AggMax:
				upds[ai] = func(st *aggState, r int) {
					st.counts[ai]++
					if !st.seen[ai] || d[r] > st.maxsF[ai] {
						st.maxsF[ai] = d[r]
					}
					st.seen[ai] = true
				}
			}
		case vector.I64:
			d := col.I64()
			switch a.Func {
			case AggSum, AggAvg:
				upds[ai] = func(st *aggState, r int) {
					st.counts[ai]++
					st.sumsI[ai] += d[r]
				}
			case AggMin:
				upds[ai] = func(st *aggState, r int) {
					st.counts[ai]++
					if !st.seen[ai] || d[r] < st.minsI[ai] {
						st.minsI[ai] = d[r]
					}
					st.seen[ai] = true
				}
			case AggMax:
				upds[ai] = func(st *aggState, r int) {
					st.counts[ai]++
					if !st.seen[ai] || d[r] > st.maxsI[ai] {
						st.maxsI[ai] = d[r]
					}
					st.seen[ai] = true
				}
			}
		}
		if upds[ai] == nil {
			// Generic fallback for narrower integer kinds.
			fn := a.Func
			col := col
			upds[ai] = func(st *aggState, r int) {
				v := col.Get(r)
				st.counts[ai]++
				switch fn {
				case AggSum, AggAvg:
					st.sumsI[ai] += v.I
				case AggMin:
					if !st.seen[ai] || v.I < st.minsI[ai] {
						st.minsI[ai] = v.I
					}
					st.seen[ai] = true
				case AggMax:
					if !st.seen[ai] || v.I > st.maxsI[ai] {
						st.maxsI[ai] = v.I
					}
					st.seen[ai] = true
				}
			}
		}
	}
	return upds
}

// makeKeyReader resolves a typed group-key extractor for the current chunk.
func makeKeyReader(keys []string, keyCols []*vector.Vector) func(r int) groupKey {
	switch len(keys) {
	case 0:
		return func(int) groupKey { return groupKey{} }
	case 1:
		if keyCols[0].Kind() == vector.I64 {
			d := keyCols[0].I64()
			return func(r int) groupKey { return groupKey{i1: d[r]} }
		}
		d := keyCols[0].Str()
		return func(r int) groupKey { return groupKey{s1: d[r]} }
	default:
		get1 := keyPart(keyCols[0])
		get2 := keyPart(keyCols[1])
		return func(r int) groupKey {
			k := groupKey{}
			k.i1, k.s1 = get1(r)
			k.i2, k.s2 = get2(r)
			return k
		}
	}
}

func keyPart(col *vector.Vector) func(r int) (int64, string) {
	if col.Kind() == vector.I64 {
		d := col.I64()
		return func(r int) (int64, string) { return d[r], "" }
	}
	d := col.Str()
	return func(r int) (int64, string) { return 0, d[r] }
}

func hashStr(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func (h *HashAgg) emit() (*vector.Chunk, error) {
	h.emitted = true
	out := emitAggChunk(h.schema, h.keys, h.aggs, h.tbl)
	h.tbl.release()
	h.tbl = nil
	return out, nil
}

// emitAggChunk materializes an aggregation table into one result chunk,
// sorted by the key columns for a deterministic output order. Shared by
// HashAgg and the morsel-parallel aggregation, so both emit identical bytes
// for identical states.
func emitAggChunk(schema []ColInfo, keys []string, aggs []Aggregate, tbl *aggTable) *vector.Chunk {
	n := len(tbl.order)
	out := vector.NewChunk()
	for ki, ci := range schema[:len(keys)] {
		col := vector.New(ci.Kind, 0, n)
		for _, key := range tbl.order {
			switch {
			case ci.Kind == vector.I64 && ki == 0:
				col.AppendValue(vector.I64Value(key.i1))
			case ci.Kind == vector.I64:
				col.AppendValue(vector.I64Value(key.i2))
			case ki == 0:
				col.AppendValue(vector.StrValue(key.s1))
			default:
				col.AppendValue(vector.StrValue(key.s2))
			}
		}
		out.Add(ci.Name, col)
	}
	for ai, a := range aggs {
		ci := schema[len(keys)+ai]
		col := vector.New(ci.Kind, 0, n)
		for _, key := range tbl.order {
			st := tbl.groups[key]
			switch a.Func {
			case AggCount:
				col.AppendValue(vector.I64Value(st.counts[ai]))
			case AggSum:
				if ci.Kind == vector.F64 {
					col.AppendValue(vector.F64Value(st.sumsF[ai]))
				} else {
					col.AppendValue(vector.IntValue(ci.Kind, st.sumsI[ai]))
				}
			case AggAvg:
				sum := st.sumsF[ai] + float64(st.sumsI[ai])
				col.AppendValue(vector.F64Value(sum / float64(maxi64(st.counts[ai], 1))))
			case AggMin:
				if ci.Kind == vector.F64 {
					col.AppendValue(vector.F64Value(st.minsF[ai]))
				} else {
					col.AppendValue(vector.IntValue(ci.Kind, st.minsI[ai]))
				}
			case AggMax:
				if ci.Kind == vector.F64 {
					col.AppendValue(vector.F64Value(st.maxsF[ai]))
				} else {
					col.AppendValue(vector.IntValue(ci.Kind, st.maxsI[ai]))
				}
			case AggFirst:
				col.AppendValue(st.firsts[ai])
			}
		}
		out.Add(a.As, col)
	}
	// Deterministic output order: sort rows by key columns.
	sortChunkByKeys(out, len(keys))
	return out
}

// sortChunkByKeys reorders all columns of a materialized chunk by its first
// k columns ascending.
func sortChunkByKeys(c *vector.Chunk, k int) {
	n := c.Len()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	less := func(a, b int) bool {
		for ki := 0; ki < k; ki++ {
			va, vb := c.Col(ki).Get(a), c.Col(ki).Get(b)
			if va.Equal(vb) {
				continue
			}
			switch va.Kind {
			case vector.Str:
				return va.S < vb.S
			case vector.F64:
				return va.F < vb.F
			default:
				return va.I < vb.I
			}
		}
		return false
	}
	sort.SliceStable(idx, func(a, b int) bool { return less(idx[a], idx[b]) })
	sel := make(vector.Sel, n)
	for i, x := range idx {
		sel[i] = int32(x)
	}
	for i := 0; i < c.Width(); i++ {
		reordered := vector.Condense(c.Col(i), sel)
		c.Col(i).CopyFrom(0, reordered, 0, n)
	}
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
