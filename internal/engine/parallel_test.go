package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/jit"
	"repro/internal/vector"
)

func genTable(t testing.TB, n int, seed int64) *vector.DSMStore {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	st := vector.NewDSMStore(vector.NewSchema("k", vector.I64, "v", vector.I64, "f", vector.F64))
	for i := 0; i < n; i++ {
		st.AppendRow(
			vector.I64Value(rng.Int63n(1000)),
			vector.I64Value(rng.Int63n(1000)),
			vector.F64Value(rng.Float64()*100),
		)
	}
	return st
}

// pipelineOn builds the test pipeline filter(k<700) → compute(v2 = v*3+1) →
// compute(g = f*1.5) on an arbitrary leaf.
func pipelineOn(leaf Operator) Operator {
	f := NewFilter(leaf, `(\k -> k < 700)`, "k").SetJIT(true, jit.Options{CompileLatency: jit.NoCompileLatency})
	c1 := NewCompute(f, "v2", `(\v -> v * 3 + 1)`, vector.I64, "v").SetJIT(true, jit.Options{CompileLatency: jit.NoCompileLatency})
	return NewCompute(c1, "g", `(\x -> x * 1.5)`, vector.F64, "f").SetJIT(true, jit.Options{CompileLatency: jit.NoCompileLatency})
}

// materialize collects every selected row of op into flat slices.
func materialize(t *testing.T, op Operator) [][]vector.Value {
	t.Helper()
	var rows [][]vector.Value
	if err := Drain(context.Background(), op, func(c *vector.Chunk) error {
		cc := c
		if c.Sel() != nil {
			cc = c.Condense()
		}
		for r := 0; r < cc.Len(); r++ {
			var row []vector.Value
			for i := 0; i < cc.Width(); i++ {
				row = append(row, cc.Col(i).Get(r))
			}
			rows = append(rows, row)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestExchangeMatchesSerialOrder: the exchange must produce exactly the
// serial pipeline's rows, in the serial row order, for any worker count and
// morsel size.
func TestExchangeMatchesSerialOrder(t *testing.T) {
	st := genTable(t, 100_003, 1) // deliberately not a multiple of any chunk/morsel size
	serialScan, err := NewScan(st)
	if err != nil {
		t.Fatal(err)
	}
	want := materialize(t, pipelineOn(serialScan))
	if len(want) == 0 {
		t.Fatal("empty baseline")
	}
	for _, workers := range []int{1, 2, 4, 7} {
		for _, morselLen := range []int{4096, 16384, 1 << 20} {
			t.Run(fmt.Sprintf("workers=%d/morsel=%d", workers, morselLen), func(t *testing.T) {
				ex, err := NewExchange(st, nil, workers, func(_ int, leaf Operator) (Operator, error) {
					return pipelineOn(leaf), nil
				})
				if err != nil {
					t.Fatal(err)
				}
				ex.SetMorselLen(morselLen)
				got := materialize(t, ex)
				if len(got) != len(want) {
					t.Fatalf("rows = %d, want %d", len(got), len(want))
				}
				for i := range want {
					for c := range want[i] {
						if !got[i][c].Equal(want[i][c]) {
							t.Fatalf("row %d col %d = %v, want %v", i, c, got[i][c], want[i][c])
						}
					}
				}
				if m := ex.MorselStats().Rows(); m != int64(st.Rows()) {
					t.Fatalf("morsel stats cover %d rows, want %d", m, st.Rows())
				}
			})
		}
	}
}

// TestExchangeAggregation: a hash aggregation over the exchange must agree
// with the serial plan bit-for-bit, including float sums (order-sensitive).
func TestExchangeAggregation(t *testing.T) {
	st := genTable(t, 60_000, 2)
	aggs := []Aggregate{
		{Func: AggSum, Col: "g", As: "sum_g"},
		{Func: AggSum, Col: "v2", As: "sum_v2"},
		{Func: AggCount, As: "n"},
	}
	serialScan, err := NewScan(st)
	if err != nil {
		t.Fatal(err)
	}
	want := materialize(t, NewHashAgg(pipelineOn(serialScan), []string{"k"}, aggs))

	ex, err := NewExchange(st, nil, 4, func(_ int, leaf Operator) (Operator, error) {
		return pipelineOn(leaf), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := materialize(t, NewHashAgg(ex, []string{"k"}, aggs))
	if len(got) != len(want) {
		t.Fatalf("groups = %d, want %d", len(got), len(want))
	}
	for i := range want {
		for c := range want[i] {
			if !got[i][c].Equal(want[i][c]) {
				t.Fatalf("group %d col %d = %v, want %v (float sums must be bit-identical)", i, c, got[i][c], want[i][c])
			}
		}
	}
}

// TestExchangeCancellation: cancelling the context mid-stream must surface
// the context error from Next and leave Close deadlock-free.
func TestExchangeCancellation(t *testing.T) {
	st := genTable(t, 200_000, 3)
	ex, err := NewExchange(st, nil, 4, func(_ int, leaf Operator) (Operator, error) {
		return pipelineOn(leaf), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ex.SetMorselLen(4096)
	ctx, cancel := context.WithCancel(context.Background())
	if err := ex.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Next(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	var got error
	for i := 0; i < 1000; i++ {
		c, err := ex.Next(ctx)
		if err != nil {
			got = err
			break
		}
		if c == nil {
			break
		}
	}
	if !errors.Is(got, context.Canceled) {
		t.Fatalf("Next after cancel = %v, want context.Canceled", got)
	}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestExchangeEarlyClose: closing without draining must not leak or block
// the worker goroutines.
func TestExchangeEarlyClose(t *testing.T) {
	st := genTable(t, 500_000, 4)
	ex, err := NewExchange(st, nil, 4, func(_ int, leaf Operator) (Operator, error) {
		return pipelineOn(leaf), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ex.SetMorselLen(4096)
	ctx := context.Background()
	if err := ex.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Next(ctx); err != nil {
		t.Fatal(err)
	}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ex.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestExchangeEmptyTable: zero rows means an immediately exhausted stream.
func TestExchangeEmptyTable(t *testing.T) {
	st := vector.NewDSMStore(vector.NewSchema("k", vector.I64, "v", vector.I64, "f", vector.F64))
	ex, err := NewExchange(st, nil, 4, func(_ int, leaf Operator) (Operator, error) {
		return pipelineOn(leaf), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := CountRows(context.Background(), ex)
	if err != nil || n != 0 {
		t.Fatalf("CountRows = %d, %v", n, err)
	}
}

// TestPartScanWindow: the windowed scan honors [lo, hi) and chunking.
func TestPartScanWindow(t *testing.T) {
	st := genTable(t, 10_000, 5)
	ps, err := NewPartScan(st, "v")
	if err != nil {
		t.Fatal(err)
	}
	ps.SetChunkLen(128)
	ps.SetRange(1000, 1500)
	ctx := context.Background()
	if err := ps.Open(ctx); err != nil {
		t.Fatal(err)
	}
	total, chunks := 0, 0
	for {
		c, err := ps.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if c == nil {
			break
		}
		total += c.Len()
		chunks++
		want := st.Col(1).I64()[1000+total-c.Len()]
		if got := c.MustColumn("v").I64()[0]; got != want {
			t.Fatalf("first row of chunk = %d, want %d", got, want)
		}
	}
	if total != 500 || chunks != 4 {
		t.Fatalf("scanned %d rows in %d chunks, want 500 in 4", total, chunks)
	}
}
