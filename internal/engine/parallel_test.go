package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/jit"
	"repro/internal/vector"
)

func genTable(t testing.TB, n int, seed int64) *vector.DSMStore {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	st := vector.NewDSMStore(vector.NewSchema("k", vector.I64, "v", vector.I64, "f", vector.F64))
	for i := 0; i < n; i++ {
		st.AppendRow(
			vector.I64Value(rng.Int63n(1000)),
			vector.I64Value(rng.Int63n(1000)),
			vector.F64Value(rng.Float64()*100),
		)
	}
	return st
}

// pipelineOn builds the test pipeline filter(k<700) → compute(v2 = v*3+1) →
// compute(g = f*1.5) on an arbitrary leaf.
func pipelineOn(leaf Operator) Operator {
	f := NewFilter(leaf, `(\k -> k < 700)`, "k").SetJIT(true, jit.Options{CompileLatency: jit.NoCompileLatency})
	c1 := NewCompute(f, "v2", `(\v -> v * 3 + 1)`, vector.I64, "v").SetJIT(true, jit.Options{CompileLatency: jit.NoCompileLatency})
	return NewCompute(c1, "g", `(\x -> x * 1.5)`, vector.F64, "f").SetJIT(true, jit.Options{CompileLatency: jit.NoCompileLatency})
}

// materialize collects every selected row of op into flat slices.
func materialize(t *testing.T, op Operator) [][]vector.Value {
	t.Helper()
	var rows [][]vector.Value
	if err := Drain(context.Background(), op, func(c *vector.Chunk) error {
		cc := c
		if c.Sel() != nil {
			cc = c.Condense()
		}
		for r := 0; r < cc.Len(); r++ {
			var row []vector.Value
			for i := 0; i < cc.Width(); i++ {
				row = append(row, cc.Col(i).Get(r))
			}
			rows = append(rows, row)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestExchangeMatchesSerialOrder: the exchange must produce exactly the
// serial pipeline's rows, in the serial row order, for any worker count and
// morsel size.
func TestExchangeMatchesSerialOrder(t *testing.T) {
	st := genTable(t, 100_003, 1) // deliberately not a multiple of any chunk/morsel size
	serialScan, err := NewScan(st)
	if err != nil {
		t.Fatal(err)
	}
	want := materialize(t, pipelineOn(serialScan))
	if len(want) == 0 {
		t.Fatal("empty baseline")
	}
	for _, workers := range []int{1, 2, 4, 7} {
		for _, morselLen := range []int{4096, 16384, 1 << 20} {
			t.Run(fmt.Sprintf("workers=%d/morsel=%d", workers, morselLen), func(t *testing.T) {
				ex, err := NewExchange(st, nil, workers, func(_ int, leaf Operator) (Operator, error) {
					return pipelineOn(leaf), nil
				})
				if err != nil {
					t.Fatal(err)
				}
				ex.SetMorselLen(morselLen)
				got := materialize(t, ex)
				if len(got) != len(want) {
					t.Fatalf("rows = %d, want %d", len(got), len(want))
				}
				for i := range want {
					for c := range want[i] {
						if !got[i][c].Equal(want[i][c]) {
							t.Fatalf("row %d col %d = %v, want %v", i, c, got[i][c], want[i][c])
						}
					}
				}
				if m := ex.MorselStats().Rows(); m != int64(st.Rows()) {
					t.Fatalf("morsel stats cover %d rows, want %d", m, st.Rows())
				}
			})
		}
	}
}

// TestExchangeAggregation: a hash aggregation over the exchange must agree
// with the serial plan bit-for-bit, including float sums (order-sensitive).
func TestExchangeAggregation(t *testing.T) {
	st := genTable(t, 60_000, 2)
	aggs := []Aggregate{
		{Func: AggSum, Col: "g", As: "sum_g"},
		{Func: AggSum, Col: "v2", As: "sum_v2"},
		{Func: AggCount, As: "n"},
	}
	serialScan, err := NewScan(st)
	if err != nil {
		t.Fatal(err)
	}
	want := materialize(t, NewHashAgg(pipelineOn(serialScan), []string{"k"}, aggs))

	ex, err := NewExchange(st, nil, 4, func(_ int, leaf Operator) (Operator, error) {
		return pipelineOn(leaf), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := materialize(t, NewHashAgg(ex, []string{"k"}, aggs))
	if len(got) != len(want) {
		t.Fatalf("groups = %d, want %d", len(got), len(want))
	}
	for i := range want {
		for c := range want[i] {
			if !got[i][c].Equal(want[i][c]) {
				t.Fatalf("group %d col %d = %v, want %v (float sums must be bit-identical)", i, c, got[i][c], want[i][c])
			}
		}
	}
}

// TestExchangeCancellation: cancelling the context mid-stream must surface
// the context error from Next and leave Close deadlock-free.
func TestExchangeCancellation(t *testing.T) {
	st := genTable(t, 200_000, 3)
	ex, err := NewExchange(st, nil, 4, func(_ int, leaf Operator) (Operator, error) {
		return pipelineOn(leaf), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ex.SetMorselLen(4096)
	ctx, cancel := context.WithCancel(context.Background())
	if err := ex.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Next(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	var got error
	for i := 0; i < 1000; i++ {
		c, err := ex.Next(ctx)
		if err != nil {
			got = err
			break
		}
		if c == nil {
			break
		}
	}
	if !errors.Is(got, context.Canceled) {
		t.Fatalf("Next after cancel = %v, want context.Canceled", got)
	}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestExchangeEarlyClose: closing without draining must not leak or block
// the worker goroutines.
func TestExchangeEarlyClose(t *testing.T) {
	st := genTable(t, 500_000, 4)
	ex, err := NewExchange(st, nil, 4, func(_ int, leaf Operator) (Operator, error) {
		return pipelineOn(leaf), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ex.SetMorselLen(4096)
	ctx := context.Background()
	if err := ex.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Next(ctx); err != nil {
		t.Fatal(err)
	}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ex.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestExchangeEmptyTable: zero rows means an immediately exhausted stream.
func TestExchangeEmptyTable(t *testing.T) {
	st := vector.NewDSMStore(vector.NewSchema("k", vector.I64, "v", vector.I64, "f", vector.F64))
	ex, err := NewExchange(st, nil, 4, func(_ int, leaf Operator) (Operator, error) {
		return pipelineOn(leaf), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := CountRows(context.Background(), ex)
	if err != nil || n != 0 {
		t.Fatalf("CountRows = %d, %v", n, err)
	}
}

// mustMaterialize collects rows or fails.
func mustEqualRows(t *testing.T, got, want [][]vector.Value, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: rows = %d, want %d", label, len(got), len(want))
	}
	for i := range want {
		for c := range want[i] {
			if !got[i][c].Equal(want[i][c]) {
				t.Fatalf("%s: row %d col %d = %v, want %v (must be bit-identical)", label, i, c, got[i][c], want[i][c])
			}
		}
	}
}

// mustEqualValues compares results allowing float tolerance: exact for
// non-floats, |got-want| ≤ tol·|want| for F64. Used to cross-check the
// blocked morsel fold against the strict row-order fold, whose float bytes
// legitimately differ in low-order bits across morsel lengths.
func mustEqualValues(t *testing.T, got, want [][]vector.Value, tol float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: rows = %d, want %d", label, len(got), len(want))
	}
	for i := range want {
		for c := range want[i] {
			g, w := got[i][c], want[i][c]
			if w.Kind == vector.F64 {
				if diff := math.Abs(g.F - w.F); diff > tol*math.Max(1, math.Abs(w.F)) {
					t.Fatalf("%s: row %d col %d = %v, want %v (tolerance %g)", label, i, c, g, w, tol)
				}
				continue
			}
			if !g.Equal(w) {
				t.Fatalf("%s: row %d col %d = %v, want %v (must be exact)", label, i, c, g, w)
			}
		}
	}
}

// TestParallelAggMatchesSerial: at a fixed morsel length, the parallel
// aggregation must be byte-identical — float sums included — at every worker
// count: per-morsel tables merged in sequence order make the accumulation
// order a function of data and morsel length only. Against the serial
// HashAgg's strict row-order fold, integer aggregates (and AggFirst/AggMin
// on any kind) must be exact and float sums must agree to tolerance — the
// blocked fold may differ in low-order float bits when a group spans
// morsels.
func TestParallelAggMatchesSerial(t *testing.T) {
	st := genTable(t, 100_003, 21)
	aggs := []Aggregate{
		{Func: AggSum, Col: "g", As: "sum_g"},
		{Func: AggSum, Col: "v2", As: "sum_v2"},
		{Func: AggMin, Col: "v2", As: "min_v2"},
		{Func: AggAvg, Col: "g", As: "avg_g"},
		{Func: AggFirst, Col: "g", As: "first_g"},
		{Func: AggCount, As: "n"},
	}
	serialScan, err := NewScan(st)
	if err != nil {
		t.Fatal(err)
	}
	rowOrder := materialize(t, NewHashAgg(pipelineOn(serialScan), []string{"k"}, aggs).SetPreAgg(PreAggOff))
	if len(rowOrder) == 0 {
		t.Fatal("empty baseline")
	}
	for _, morselLen := range []int{4096, 16384, 1 << 20} {
		mkAgg := func(workers int) *ParallelAgg {
			pa, err := NewParallelAgg(st, nil, workers, func(_ int, leaf Operator) (Operator, error) {
				return pipelineOn(leaf), nil
			}, []string{"k"}, aggs)
			if err != nil {
				t.Fatal(err)
			}
			return pa.SetMorselLen(morselLen)
		}
		// The canonical result at this morsel length: one worker, blocked
		// per-morsel accumulation.
		want := materialize(t, mkAgg(1))
		mustEqualValues(t, want, rowOrder, 1e-9, fmt.Sprintf("morsel=%d vs row-order fold", morselLen))
		if morselLen >= 1<<20 {
			// A single morsel covers the table: the blocked fold degenerates
			// to strict row order, bit for bit.
			mustEqualRows(t, want, rowOrder, "single-morsel agg")
		}
		for _, workers := range []int{2, 4, 7} {
			t.Run(fmt.Sprintf("workers=%d/morsel=%d", workers, morselLen), func(t *testing.T) {
				pa := mkAgg(workers)
				got := materialize(t, pa)
				mustEqualRows(t, got, want, "parallel agg")
				if rows := pa.MorselStats().Rows(); rows != int64(st.Rows()) {
					t.Fatalf("morsel stats cover %d rows, want %d", rows, st.Rows())
				}
			})
		}
	}
}

// TestParallelAggSingleGroup: a keyless (global) aggregation degenerates to
// one group and must be byte-identical across worker counts at the default
// morsel length, with the float sum matching the strict row-order fold to
// tolerance and the count exactly.
func TestParallelAggSingleGroup(t *testing.T) {
	st := genTable(t, 50_000, 22)
	aggs := []Aggregate{
		{Func: AggSum, Col: "g", As: "sum_g"},
		{Func: AggCount, As: "n"},
	}
	serialScan, err := NewScan(st)
	if err != nil {
		t.Fatal(err)
	}
	rowOrder := materialize(t, NewHashAgg(pipelineOn(serialScan), nil, aggs).SetPreAgg(PreAggOff))
	if len(rowOrder) != 1 {
		t.Fatalf("baseline groups = %d, want 1", len(rowOrder))
	}
	mkAgg := func(workers int) *ParallelAgg {
		pa, err := NewParallelAgg(st, nil, workers, func(_ int, leaf Operator) (Operator, error) {
			return pipelineOn(leaf), nil
		}, nil, aggs)
		if err != nil {
			t.Fatal(err)
		}
		return pa
	}
	want := materialize(t, mkAgg(1))
	mustEqualValues(t, want, rowOrder, 1e-9, "keyless agg vs row-order fold")
	mustEqualRows(t, materialize(t, mkAgg(4)), want, "keyless parallel agg")
}

// TestParallelAggAllRowsFiltered: a pipeline that selects nothing must yield
// zero groups, matching serial.
func TestParallelAggAllRowsFiltered(t *testing.T) {
	st := genTable(t, 30_000, 23)
	aggs := []Aggregate{{Func: AggSum, Col: "v", As: "s"}}
	mk := func(leaf Operator) Operator {
		return NewFilter(leaf, `(\k -> k < 0)`, "k") // keys are 0..999: empty
	}
	serialScan, err := NewScan(st)
	if err != nil {
		t.Fatal(err)
	}
	want := materialize(t, NewHashAgg(mk(serialScan), []string{"k"}, aggs).SetPreAgg(PreAggOff))
	if len(want) != 0 {
		t.Fatalf("baseline groups = %d, want 0", len(want))
	}
	pa, err := NewParallelAgg(st, nil, 4, func(_ int, leaf Operator) (Operator, error) {
		return mk(leaf), nil
	}, []string{"k"}, aggs)
	if err != nil {
		t.Fatal(err)
	}
	if got := materialize(t, pa); len(got) != 0 {
		t.Fatalf("parallel groups = %d, want 0", len(got))
	}
}

// TestParallelAggCancellation: a cancelled ctx surfaces from Next.
func TestParallelAggCancellation(t *testing.T) {
	st := genTable(t, 200_000, 24)
	pa, err := NewParallelAgg(st, nil, 4, func(_ int, leaf Operator) (Operator, error) {
		return pipelineOn(leaf), nil
	}, []string{"k"}, []Aggregate{{Func: AggCount, As: "n"}})
	if err != nil {
		t.Fatal(err)
	}
	pa.SetMorselLen(4096)
	ctx, cancel := context.WithCancel(context.Background())
	if err := pa.Open(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := pa.Next(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Next after cancel = %v, want context.Canceled", err)
	}
	if err := pa.Close(); err != nil {
		t.Fatal(err)
	}
}

// parallelJoinSetup builds a dimension table keyed 0..dimRows-1 with an i64
// payload and a probe pipeline over the fact table st.
func dimTable(dimRows int, payloadOf func(i int) int64) *vector.DSMStore {
	dim := vector.NewDSMStore(vector.NewSchema("dk", vector.I64, "pay", vector.I64))
	for i := 0; i < dimRows; i++ {
		dim.AppendRow(vector.I64Value(int64(i)), vector.I64Value(payloadOf(i)))
	}
	return dim
}

// TestParallelJoinMatchesSerial: the shared-table probe riding the exchange
// must produce exactly the serial HashJoin's rows in serial order, with the
// build side itself built in parallel.
func TestParallelJoinMatchesSerial(t *testing.T) {
	st := genTable(t, 80_007, 31)
	dim := dimTable(500, func(i int) int64 { return int64(i * 7) }) // half the key domain: selective probe
	serialScan, err := NewScan(st)
	if err != nil {
		t.Fatal(err)
	}
	serialBuild, err := NewScan(dim)
	if err != nil {
		t.Fatal(err)
	}
	want := materialize(t, NewHashJoin(pipelineOn(serialScan), serialBuild, "k", "dk", "pay"))
	if len(want) == 0 {
		t.Fatal("empty baseline")
	}

	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			shared := NewSharedJoinTable(
				[]ColInfo{{Name: "dk", Kind: vector.I64}, {Name: "pay", Kind: vector.I64}},
				func(ctx context.Context) (*JoinTable, error) {
					return BuildJoinTableParallel(ctx, dim, nil, workers, 0, 0, "dk",
						func(_ int, leaf Operator) (Operator, error) { return leaf, nil })
				})
			ex, err := NewExchange(st, nil, workers, func(_ int, leaf Operator) (Operator, error) {
				return NewTableProbe(pipelineOn(leaf), shared, "k", "pay")
			})
			if err != nil {
				t.Fatal(err)
			}
			got := materialize(t, ex)
			mustEqualRows(t, got, want, "parallel join")
		})
	}
}

// TestParallelJoinEmptyBuildSide: an empty build table must stream zero rows
// without deadlocking the exchange.
func TestParallelJoinEmptyBuildSide(t *testing.T) {
	st := genTable(t, 20_000, 32)
	dim := dimTable(0, nil)
	shared := NewSharedJoinTable(
		[]ColInfo{{Name: "dk", Kind: vector.I64}, {Name: "pay", Kind: vector.I64}},
		func(ctx context.Context) (*JoinTable, error) {
			return BuildJoinTableParallel(ctx, dim, nil, 4, 0, 0, "dk",
				func(_ int, leaf Operator) (Operator, error) { return leaf, nil })
		})
	ex, err := NewExchange(st, nil, 4, func(_ int, leaf Operator) (Operator, error) {
		return NewTableProbe(pipelineOn(leaf), shared, "k", "pay")
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := CountRows(context.Background(), ex)
	if err != nil || n != 0 {
		t.Fatalf("CountRows = %d, %v; want 0", n, err)
	}
}

// TestParallelJoinMultiMatch: duplicate build keys must emit match lists in
// build order, identically to serial, under a parallel partitioned build.
func TestParallelJoinMultiMatch(t *testing.T) {
	st := genTable(t, 30_011, 33)
	dim := vector.NewDSMStore(vector.NewSchema("dk", vector.I64, "pay", vector.I64))
	for i := 0; i < 3000; i++ {
		dim.AppendRow(vector.I64Value(int64(i%1000)), vector.I64Value(int64(i))) // 3 matches per key
	}
	serialScan, _ := NewScan(st)
	serialBuild, _ := NewScan(dim)
	want := materialize(t, NewHashJoin(pipelineOn(serialScan), serialBuild, "k", "dk", "pay"))

	shared := NewSharedJoinTable(
		[]ColInfo{{Name: "dk", Kind: vector.I64}, {Name: "pay", Kind: vector.I64}},
		func(ctx context.Context) (*JoinTable, error) {
			return BuildJoinTableParallel(ctx, dim, nil, 4, 0, 512, "dk",
				func(_ int, leaf Operator) (Operator, error) { return leaf, nil })
		})
	ex, err := NewExchange(st, nil, 4, func(_ int, leaf Operator) (Operator, error) {
		return NewTableProbe(pipelineOn(leaf), shared, "k", "pay")
	})
	if err != nil {
		t.Fatal(err)
	}
	got := materialize(t, ex)
	mustEqualRows(t, got, want, "multi-match join")
}

// TestPartScanWindow: the windowed scan honors [lo, hi) and chunking.
func TestPartScanWindow(t *testing.T) {
	st := genTable(t, 10_000, 5)
	ps, err := NewPartScan(st, "v")
	if err != nil {
		t.Fatal(err)
	}
	ps.SetChunkLen(128)
	ps.SetRange(1000, 1500)
	ctx := context.Background()
	if err := ps.Open(ctx); err != nil {
		t.Fatal(err)
	}
	total, chunks := 0, 0
	for {
		c, err := ps.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if c == nil {
			break
		}
		total += c.Len()
		chunks++
		want := st.Col(1).I64()[1000+total-c.Len()]
		if got := c.MustColumn("v").I64()[0]; got != want {
			t.Fatalf("first row of chunk = %d, want %d", got, want)
		}
	}
	if total != 500 || chunks != 4 {
		t.Fatalf("scanned %d rows in %d chunks, want 500 in 4", total, chunks)
	}
}
