package engine

import (
	"context"
	"fmt"

	"repro/internal/profile"
	"repro/internal/vector"
)

// BloomFilter is a blocked Bloom filter over int64 keys, the §IV-target-2
// "applicability of Bloom-filters in selective hash-joins" device: probes
// that miss the filter skip the hash table entirely.
type BloomFilter struct {
	bits []uint64
	mask uint64
}

// NewBloomFilter sizes the filter for n keys at ~8 bits per key.
func NewBloomFilter(n int) *BloomFilter {
	words := 1
	for words*64 < n*8 {
		words *= 2
	}
	return &BloomFilter{bits: make([]uint64, words), mask: uint64(words*64 - 1)}
}

func bloomHash1(k int64) uint64 {
	x := uint64(k)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

func bloomHash2(k int64) uint64 {
	x := uint64(k)
	x *= 0xc2b2ae3d27d4eb4f
	x ^= x >> 29
	x *= 0x165667b19e3779f9
	x ^= x >> 32
	return x
}

// Add inserts a key.
func (b *BloomFilter) Add(k int64) {
	h1, h2 := bloomHash1(k)&b.mask, bloomHash2(k)&b.mask
	b.bits[h1/64] |= 1 << (h1 % 64)
	b.bits[h2/64] |= 1 << (h2 % 64)
}

// MayContain reports whether k may be present (false = definitely absent).
func (b *BloomFilter) MayContain(k int64) bool {
	h1, h2 := bloomHash1(k)&b.mask, bloomHash2(k)&b.mask
	return b.bits[h1/64]&(1<<(h1%64)) != 0 && b.bits[h2/64]&(1<<(h2%64)) != 0
}

// BloomMode controls Bloom-filter use in HashJoin.
type BloomMode int

// Bloom flavors.
const (
	// BloomAdaptive enables the prefilter while the observed probe hit
	// rate stays low and disables it when most probes hit anyway.
	BloomAdaptive BloomMode = iota
	BloomOn
	BloomOff
)

// bloomThreshold is the probe hit rate above which the prefilter is pure
// overhead.
const bloomThreshold = 0.5

// JoinTable is an immutable materialized-and-hashed build side: the build
// rows in build order, plus one hash table (and Bloom filter) per partition.
// A single-partition table is what the serial HashJoin constructs; the
// morsel-parallel build produces one partition per worker so workers hash
// without contention. The partition count never changes lookup results —
// match lists are always in build-row order — so the partitioning is
// invisible to probes.
type JoinTable struct {
	rows   *vector.DSMStore
	keyIdx int
	mask   uint64 // partition count - 1 (0 = single partition)
	parts  []map[int64][]int32
	blooms []*BloomFilter
}

// NewJoinTable hashes a materialized build side into a single-partition
// table: match lists hold build row indexes in build order.
func NewJoinTable(rows *vector.DSMStore, buildKey string) (*JoinTable, error) {
	t, err := newJoinTableHeader(rows, buildKey)
	if err != nil {
		return nil, err
	}
	m := make(map[int64][]int32, rows.Rows())
	bl := NewBloomFilter(maxi(rows.Rows(), 64))
	for i, k := range rows.Col(t.keyIdx).I64() {
		m[k] = append(m[k], int32(i))
		bl.Add(k)
	}
	t.parts = []map[int64][]int32{m}
	t.blooms = []*BloomFilter{bl}
	return t, nil
}

// newJoinTableHeader validates the key column and prepares an empty table.
func newJoinTableHeader(rows *vector.DSMStore, buildKey string) (*JoinTable, error) {
	sch := rows.Schema()
	keyIdx := sch.ColumnIndex(buildKey)
	if keyIdx < 0 {
		return nil, fmt.Errorf("engine: build key %q missing", buildKey)
	}
	if sch.Kinds[keyIdx] != vector.I64 {
		return nil, fmt.Errorf("engine: build key %q must be i64", buildKey)
	}
	return &JoinTable{rows: rows, keyIdx: keyIdx}, nil
}

// part returns the partition index of a key.
func (t *JoinTable) part(k int64) int {
	if t.mask == 0 {
		return 0
	}
	// High hash bits: the Bloom filters consume the low bits.
	return int((bloomHash1(k) >> 32) & t.mask)
}

// lookup returns the build rows matching k, in build order.
func (t *JoinTable) lookup(k int64) []int32 { return t.parts[t.part(k)][k] }

// Lookup returns the build rows matching k, in build order — the probe
// primitive fused pipeline loops use directly (partitioning stays
// invisible: match lists are identical at any partition count).
func (t *JoinTable) Lookup(k int64) []int32 { return t.lookup(k) }

// mayContain consults the partition's Bloom filter (false = definitely
// absent).
func (t *JoinTable) mayContain(k int64) bool { return t.blooms[t.part(k)].MayContain(k) }

// Rows returns the materialized build side (build order).
func (t *JoinTable) Rows() *vector.DSMStore { return t.rows }

// Partitions returns the partition count (1 for a serial build).
func (t *JoinTable) Partitions() int { return len(t.parts) }

// probeCore is the probe-side state shared by HashJoin and TableProbe: the
// adaptive Bloom decision plus instrumentation. Each probing operator owns a
// private core, so parallel probe workers adapt independently without
// synchronizing on the hot path.
type probeCore struct {
	mode   BloomMode
	hitEW  *profile.EWMA
	useNow bool

	// Probes/BloomSkips/Hits count probe-side behaviour for experiments.
	Probes, BloomSkips, Hits int64
	// BloomChecks counts probes that consulted the filter.
	BloomChecks int64
}

func newProbeCore() probeCore {
	return probeCore{mode: BloomAdaptive, hitEW: profile.NewEWMA(0.25), useNow: true}
}

// BloomEnabled reports the current flavor decision.
func (p *probeCore) BloomEnabled() bool {
	switch p.mode {
	case BloomOn:
		return true
	case BloomOff:
		return false
	}
	return p.useNow
}

// probeKeys matches one chunk's keys against the table, returning the
// (probe row, build row) index pairs of every match in probe-major,
// build-order form — the order a serial nested emit would produce.
func (p *probeCore) probeKeys(t *JoinTable, keys []int64) (probeIdx, buildIdx []int32) {
	useBloom := p.BloomEnabled()
	hits := 0
	for i, k := range keys {
		p.Probes++
		if useBloom {
			p.BloomChecks++
			if !t.mayContain(k) {
				p.BloomSkips++
				continue
			}
		}
		matches := t.lookup(k)
		if len(matches) == 0 {
			continue
		}
		hits++
		for _, m := range matches {
			probeIdx = append(probeIdx, int32(i))
			buildIdx = append(buildIdx, m)
		}
	}
	p.Hits += int64(hits)
	if len(keys) > 0 {
		p.hitEW.Observe(float64(hits) / float64(len(keys)))
		if p.mode == BloomAdaptive {
			p.useNow = p.hitEW.Value(0) < bloomThreshold
		}
	}
	return probeIdx, buildIdx
}

// joinEmit assembles one output chunk: the probe columns condensed by the
// matching probe rows, then the payload columns gathered from the build rows.
func joinEmit(cc *vector.Chunk, rows *vector.DSMStore, payload []string, payIdx []int, probeIdx, buildIdx []int32) *vector.Chunk {
	out := vector.NewChunk()
	for i := 0; i < cc.Width(); i++ {
		out.Add(cc.Name(i), vector.Condense(cc.Col(i), probeIdx))
	}
	for pi, p := range payload {
		out.Add(p, vector.Condense(rows.Col(payIdx[pi]), buildIdx))
	}
	return out
}

// resolvePayload maps payload column names onto build-side column indexes.
func resolvePayload(sch vector.Schema, payload []string) ([]int, error) {
	var payIdx []int
	for _, p := range payload {
		idx := sch.ColumnIndex(p)
		if idx < 0 {
			return nil, fmt.Errorf("engine: payload column %q missing from build side", p)
		}
		payIdx = append(payIdx, idx)
	}
	return payIdx, nil
}

// resolveProbeKey locates the probe key in a probe schema and checks its
// kind.
func resolveProbeKey(schema []ColInfo, probeKey string) (int, error) {
	keyIdx := -1
	for i, ci := range schema {
		if ci.Name == probeKey {
			keyIdx = i
			if ci.Kind != vector.I64 {
				return -1, fmt.Errorf("engine: probe key %q must be i64", probeKey)
			}
		}
	}
	if keyIdx < 0 {
		return -1, fmt.Errorf("engine: probe key %q missing", probeKey)
	}
	return keyIdx, nil
}

// HashJoin is an inner equi-join on int64 key columns. The build side is
// materialized into a hash table at Open; Next streams probe chunks and
// emits matches (probe columns prefixed as-is, build payload columns
// appended).
type HashJoin struct {
	build, probe       Operator
	buildKey, probeKey string
	payload            []string // build-side columns to carry
	probeCore

	tbl     *JoinTable
	schema  []ColInfo
	payIdx  []int
	keyIdxP int
}

// NewHashJoin joins probe ⋈ build on probeKey = buildKey, carrying the given
// build payload columns.
func NewHashJoin(probe, build Operator, probeKey, buildKey string, payload ...string) *HashJoin {
	return &HashJoin{
		build: build, probe: probe, buildKey: buildKey, probeKey: probeKey,
		payload: payload, probeCore: newProbeCore(),
	}
}

// SetBloom fixes the Bloom flavor (default adaptive).
func (j *HashJoin) SetBloom(m BloomMode) *HashJoin { j.mode = m; return j }

// Schema implements Operator.
func (j *HashJoin) Schema() []ColInfo { return j.schema }

// Open implements Operator: materializes and hashes the build side,
// honoring ctx while draining it.
func (j *HashJoin) Open(ctx context.Context) error {
	if err := j.probe.Open(ctx); err != nil {
		return err
	}
	rows, err := Collect(ctx, j.build)
	if err != nil {
		return err
	}
	j.tbl, err = NewJoinTable(rows, j.buildKey)
	if err != nil {
		return err
	}
	sch := rows.Schema()
	if j.payIdx, err = resolvePayload(sch, j.payload); err != nil {
		return err
	}
	j.schema = nil
	j.schema = append(j.schema, j.probe.Schema()...)
	for i, p := range j.payload {
		j.schema = append(j.schema, ColInfo{Name: p, Kind: sch.Kinds[j.payIdx[i]]})
	}
	if j.keyIdxP, err = resolveProbeKey(j.probe.Schema(), j.probeKey); err != nil {
		return err
	}
	return nil
}

// Next implements Operator.
func (j *HashJoin) Next(ctx context.Context) (*vector.Chunk, error) {
	for {
		chunk, err := j.probe.Next(ctx)
		if err != nil || chunk == nil {
			return chunk, err
		}
		cc := chunk
		if chunk.Sel() != nil {
			cc = chunk.Condense()
		}
		probeIdx, buildIdx := j.probeKeys(j.tbl, cc.Col(j.keyIdxP).I64())
		if len(probeIdx) == 0 {
			continue
		}
		return joinEmit(cc, j.tbl.rows, j.payload, j.payIdx, probeIdx, buildIdx), nil
	}
}

// Close implements Operator.
func (j *HashJoin) Close() error { return j.probe.Close() }
