package engine

import (
	"context"
	"fmt"

	"repro/internal/profile"
	"repro/internal/vector"
)

// BloomFilter is a blocked Bloom filter over int64 keys, the §IV-target-2
// "applicability of Bloom-filters in selective hash-joins" device: probes
// that miss the filter skip the hash table entirely.
type BloomFilter struct {
	bits []uint64
	mask uint64
}

// NewBloomFilter sizes the filter for n keys at ~8 bits per key.
func NewBloomFilter(n int) *BloomFilter {
	words := 1
	for words*64 < n*8 {
		words *= 2
	}
	return &BloomFilter{bits: make([]uint64, words), mask: uint64(words*64 - 1)}
}

func bloomHash1(k int64) uint64 {
	x := uint64(k)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

func bloomHash2(k int64) uint64 {
	x := uint64(k)
	x *= 0xc2b2ae3d27d4eb4f
	x ^= x >> 29
	x *= 0x165667b19e3779f9
	x ^= x >> 32
	return x
}

// Add inserts a key.
func (b *BloomFilter) Add(k int64) {
	h1, h2 := bloomHash1(k)&b.mask, bloomHash2(k)&b.mask
	b.bits[h1/64] |= 1 << (h1 % 64)
	b.bits[h2/64] |= 1 << (h2 % 64)
}

// MayContain reports whether k may be present (false = definitely absent).
func (b *BloomFilter) MayContain(k int64) bool {
	h1, h2 := bloomHash1(k)&b.mask, bloomHash2(k)&b.mask
	return b.bits[h1/64]&(1<<(h1%64)) != 0 && b.bits[h2/64]&(1<<(h2%64)) != 0
}

// BloomMode controls Bloom-filter use in HashJoin.
type BloomMode int

// Bloom flavors.
const (
	// BloomAdaptive enables the prefilter while the observed probe hit
	// rate stays low and disables it when most probes hit anyway.
	BloomAdaptive BloomMode = iota
	BloomOn
	BloomOff
)

// bloomThreshold is the probe hit rate above which the prefilter is pure
// overhead.
const bloomThreshold = 0.5

// HashJoin is an inner equi-join on int64 key columns. The build side is
// materialized into a hash table at Open; Next streams probe chunks and
// emits matches (probe columns prefixed as-is, build payload columns
// appended).
type HashJoin struct {
	build, probe       Operator
	buildKey, probeKey string
	payload            []string // build-side columns to carry
	mode               BloomMode

	table   map[int64][]int32
	rows    *vector.DSMStore
	bloom   *BloomFilter
	hitEW   *profile.EWMA
	useNow  bool
	schema  []ColInfo
	payIdx  []int
	keyIdxP int

	// Probes/BloomSkips/Hits count probe-side behaviour for experiments.
	Probes, BloomSkips, Hits int64
	// BloomChecks counts probes that consulted the filter.
	BloomChecks int64
}

// NewHashJoin joins probe ⋈ build on probeKey = buildKey, carrying the given
// build payload columns.
func NewHashJoin(probe, build Operator, probeKey, buildKey string, payload ...string) *HashJoin {
	return &HashJoin{
		build: build, probe: probe, buildKey: buildKey, probeKey: probeKey,
		payload: payload, mode: BloomAdaptive, hitEW: profile.NewEWMA(0.25),
		useNow: true,
	}
}

// SetBloom fixes the Bloom flavor (default adaptive).
func (j *HashJoin) SetBloom(m BloomMode) *HashJoin { j.mode = m; return j }

// BloomEnabled reports the current flavor decision.
func (j *HashJoin) BloomEnabled() bool {
	switch j.mode {
	case BloomOn:
		return true
	case BloomOff:
		return false
	}
	return j.useNow
}

// Schema implements Operator.
func (j *HashJoin) Schema() []ColInfo { return j.schema }

// Open implements Operator: materializes and hashes the build side,
// honoring ctx while draining it.
func (j *HashJoin) Open(ctx context.Context) error {
	if err := j.probe.Open(ctx); err != nil {
		return err
	}
	rows, err := Collect(ctx, j.build)
	if err != nil {
		return err
	}
	j.rows = rows
	sch := rows.Schema()
	keyIdx := sch.ColumnIndex(j.buildKey)
	if keyIdx < 0 {
		return fmt.Errorf("engine: build key %q missing", j.buildKey)
	}
	if sch.Kinds[keyIdx] != vector.I64 {
		return fmt.Errorf("engine: build key %q must be i64", j.buildKey)
	}
	j.payIdx = nil
	for _, p := range j.payload {
		idx := sch.ColumnIndex(p)
		if idx < 0 {
			return fmt.Errorf("engine: payload column %q missing from build side", p)
		}
		j.payIdx = append(j.payIdx, idx)
	}

	j.table = make(map[int64][]int32, rows.Rows())
	j.bloom = NewBloomFilter(maxi(rows.Rows(), 64))
	keys := rows.Col(keyIdx).I64()
	for i, k := range keys {
		j.table[k] = append(j.table[k], int32(i))
		j.bloom.Add(k)
	}

	j.schema = nil
	j.schema = append(j.schema, j.probe.Schema()...)
	for i, p := range j.payload {
		j.schema = append(j.schema, ColInfo{Name: p, Kind: sch.Kinds[j.payIdx[i]]})
	}
	j.keyIdxP = -1
	for i, ci := range j.probe.Schema() {
		if ci.Name == j.probeKey {
			j.keyIdxP = i
			if ci.Kind != vector.I64 {
				return fmt.Errorf("engine: probe key %q must be i64", j.probeKey)
			}
		}
	}
	if j.keyIdxP < 0 {
		return fmt.Errorf("engine: probe key %q missing", j.probeKey)
	}
	return nil
}

// Next implements Operator.
func (j *HashJoin) Next(ctx context.Context) (*vector.Chunk, error) {
	for {
		chunk, err := j.probe.Next(ctx)
		if err != nil || chunk == nil {
			return chunk, err
		}
		cc := chunk
		if chunk.Sel() != nil {
			cc = chunk.Condense()
		}
		keys := cc.Col(j.keyIdxP).I64()

		useBloom := j.BloomEnabled()
		var probeIdx []int32 // probe row per output row
		var buildIdx []int32 // matching build row per output row
		hits := 0
		for i, k := range keys {
			j.Probes++
			if useBloom {
				j.BloomChecks++
				if !j.bloom.MayContain(k) {
					j.BloomSkips++
					continue
				}
			}
			matches, ok := j.table[k]
			if !ok {
				continue
			}
			hits++
			for _, m := range matches {
				probeIdx = append(probeIdx, int32(i))
				buildIdx = append(buildIdx, m)
			}
		}
		j.Hits += int64(hits)
		if len(keys) > 0 {
			j.hitEW.Observe(float64(hits) / float64(len(keys)))
			if j.mode == BloomAdaptive {
				j.useNow = j.hitEW.Value(0) < bloomThreshold
			}
		}
		if len(probeIdx) == 0 {
			continue
		}

		out := vector.NewChunk()
		for i := 0; i < cc.Width(); i++ {
			out.Add(cc.Name(i), vector.Condense(cc.Col(i), probeIdx))
		}
		for pi, p := range j.payload {
			col := j.rows.Col(j.payIdx[pi])
			out.Add(p, vector.Condense(col, buildIdx))
		}
		return out, nil
	}
}

// Close implements Operator.
func (j *HashJoin) Close() error { return j.probe.Close() }
