package engine

import (
	"math/rand"
	"testing"

	"repro/internal/vector"
)

// testTable builds a small table: id i64, val i64, price f64, tag str.
func testTable(n int, seed int64) *vector.DSMStore {
	rng := rand.New(rand.NewSource(seed))
	st := vector.NewDSMStore(vector.NewSchema(
		"id", vector.I64, "val", vector.I64, "price", vector.F64, "tag", vector.Str,
	))
	tags := []string{"A", "B", "C"}
	for i := 0; i < n; i++ {
		st.AppendRow(
			vector.I64Value(int64(i)),
			vector.I64Value(rng.Int63n(100)),
			vector.F64Value(float64(rng.Intn(1000))/10),
			vector.StrValue(tags[rng.Intn(len(tags))]),
		)
	}
	return st
}

func TestScanRoundTrip(t *testing.T) {
	st := testTable(2500, 1)
	scan, err := NewScan(st, "id", "val")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := CountRows(t.Context(), scan)
	if err != nil {
		t.Fatal(err)
	}
	if rows != 2500 {
		t.Fatalf("rows = %d", rows)
	}
	if _, err := NewScan(st, "nope"); err == nil {
		t.Fatal("unknown column must error")
	}
}

func TestComputeDerivedColumn(t *testing.T) {
	st := testTable(3000, 2)
	scan, _ := NewScan(st, "val", "price")
	comp := NewCompute(scan, "scaled", `(\v p -> p * 2.0 + v)`, vector.F64, "val", "price")
	out, err := Collect(t.Context(), comp)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 3000 {
		t.Fatalf("rows = %d", out.Rows())
	}
	vals := st.Col(1).I64()
	prices := st.Col(2).F64()
	scaled := out.Col(out.Schema().ColumnIndex("scaled")).F64()
	for i := range scaled {
		want := prices[i]*2 + float64(vals[i])
		if scaled[i] != want {
			t.Fatalf("scaled[%d] = %v, want %v", i, scaled[i], want)
		}
	}
}

func TestFilterSelectivityAndCorrectness(t *testing.T) {
	st := testTable(5000, 3)
	scan, _ := NewScan(st, "id", "val")
	f := NewFilter(scan, `(\v -> v < 50)`, "val")
	out, err := Collect(t.Context(), f)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, v := range st.Col(1).I64() {
		if v < 50 {
			want++
		}
	}
	if out.Rows() != want {
		t.Fatalf("filtered rows = %d, want %d", out.Rows(), want)
	}
	got := f.Selectivity()
	if got < 0.4 || got > 0.6 {
		t.Fatalf("observed selectivity %v implausible for uniform 0..99 < 50", got)
	}
	for _, v := range out.Col(1).I64() {
		if v >= 50 {
			t.Fatalf("row with val=%d passed the filter", v)
		}
	}
}

func TestFilterFlavorsAgree(t *testing.T) {
	st := testTable(4000, 4)
	for _, mode := range []EvalMode{EvalFull, EvalSelective, EvalAdaptive} {
		scan, _ := NewScan(st, "id", "val")
		f1 := NewFilter(scan, `(\v -> v < 30)`, "val").SetMode(EvalFull)
		f2 := NewFilter(f1, `(\v -> v % 2 == 0)`, "val").SetMode(mode)
		out, err := Collect(t.Context(), f2)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		want := 0
		for _, v := range st.Col(1).I64() {
			if v < 30 && v%2 == 0 {
				want++
			}
		}
		if out.Rows() != want {
			t.Fatalf("mode %v: rows = %d, want %d", mode, out.Rows(), want)
		}
		if mode == EvalSelective && f2.SelEvals == 0 {
			t.Fatalf("selective mode never used selection-vector evaluation")
		}
		if mode == EvalFull && f2.MaskEvals == 0 {
			t.Fatalf("full mode never used mask evaluation")
		}
	}
}

func TestComputeFlavorsAgree(t *testing.T) {
	st := testTable(4000, 5)
	for _, mode := range []EvalMode{EvalFull, EvalSelective, EvalAdaptive} {
		scan, _ := NewScan(st, "id", "val")
		f := NewFilter(scan, `(\v -> v < 10)`, "val") // ~10% selectivity
		c := NewCompute(f, "sq", `(\v -> v * v)`, vector.I64, "val").SetMode(mode)
		out, err := Collect(t.Context(), c)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		sq := out.Col(out.Schema().ColumnIndex("sq")).I64()
		vals := out.Col(out.Schema().ColumnIndex("val")).I64()
		for i := range sq {
			if sq[i] != vals[i]*vals[i] {
				t.Fatalf("mode %v: sq[%d]=%d val=%d", mode, i, sq[i], vals[i])
			}
		}
		if mode == EvalSelective && c.SelectiveEvals == 0 {
			t.Fatal("selective mode unused")
		}
	}
}

func TestAdaptiveComputePicksSelectiveAtLowSelectivity(t *testing.T) {
	st := testTable(40000, 6)
	scan, _ := NewScan(st, "id", "val")
	f := NewFilter(scan, `(\v -> v < 2)`, "val")                 // ~2% selectivity
	c := NewCompute(f, "sq", `(\v -> v * v)`, vector.I64, "val") // adaptive
	if _, err := Collect(t.Context(), c); err != nil {
		t.Fatal(err)
	}
	if c.SelectiveEvals == 0 {
		t.Fatalf("adaptive compute never chose selective at 2%% selectivity (full=%d sel=%d)",
			c.FullEvals, c.SelectiveEvals)
	}
}

func TestHashJoinInner(t *testing.T) {
	dim := vector.NewDSMStore(vector.NewSchema("k", vector.I64, "name", vector.Str))
	for i := 0; i < 10; i++ {
		dim.AppendRow(vector.I64Value(int64(i)), vector.StrValue(string(rune('a'+i))))
	}
	fact := vector.NewDSMStore(vector.NewSchema("fk", vector.I64, "x", vector.I64))
	// fks 0..19: half match, half miss.
	for i := 0; i < 2000; i++ {
		fact.AppendRow(vector.I64Value(int64(i%20)), vector.I64Value(int64(i)))
	}
	probe, _ := NewScan(fact, "fk", "x")
	build, _ := NewScan(dim, "k", "name")
	j := NewHashJoin(probe, build, "fk", "k", "name")
	out, err := Collect(t.Context(), j)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 1000 {
		t.Fatalf("join rows = %d, want 1000", out.Rows())
	}
	fks := out.Col(0).I64()
	names := out.Col(out.Schema().ColumnIndex("name")).Str()
	for i := range fks {
		if names[i] != string(rune('a'+fks[i])) {
			t.Fatalf("payload mismatch at %d: fk=%d name=%q", i, fks[i], names[i])
		}
	}
}

func TestHashJoinDuplicateBuildKeys(t *testing.T) {
	dim := vector.NewDSMStore(vector.NewSchema("k", vector.I64, "p", vector.I64))
	dim.AppendRow(vector.I64Value(1), vector.I64Value(10))
	dim.AppendRow(vector.I64Value(1), vector.I64Value(11))
	fact := vector.NewDSMStore(vector.NewSchema("fk", vector.I64))
	fact.AppendRow(vector.I64Value(1))
	fact.AppendRow(vector.I64Value(2))
	probe, _ := NewScan(fact, "fk")
	build, _ := NewScan(dim, "k", "p")
	j := NewHashJoin(probe, build, "fk", "k", "p")
	out, err := Collect(t.Context(), j)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 2 {
		t.Fatalf("duplicate keys should produce 2 rows, got %d", out.Rows())
	}
}

// TestComputeOverWideJoinChunks: multi-match joins emit chunks wider than
// the expression VM's default read count (every probe row fans out to its
// whole match list), so a compute stacked on the probe must window its
// evaluation instead of truncating at DefaultChunkLen. Regression test for
// a bug found by the differential harness.
func TestComputeOverWideJoinChunks(t *testing.T) {
	dim := vector.NewDSMStore(vector.NewSchema("k", vector.I64, "p", vector.I64))
	for i := 0; i < 12; i++ {
		// Every key matches 4 build rows → probe chunks quadruple on emit.
		dim.AppendRow(vector.I64Value(int64(i%3)), vector.I64Value(int64(i)))
	}
	fact := vector.NewDSMStore(vector.NewSchema("fk", vector.I64, "x", vector.I64))
	for i := 0; i < 3000; i++ {
		fact.AppendRow(vector.I64Value(int64(i%3)), vector.I64Value(int64(i)))
	}
	probe, _ := NewScan(fact, "fk", "x")
	build, _ := NewScan(dim, "k", "p")
	j := NewHashJoin(probe, build, "fk", "k", "p")
	c := NewCompute(j, "y", `(\x p -> x * 10 + p)`, vector.I64, "x", "p")
	out, err := Collect(t.Context(), c)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 12000 {
		t.Fatalf("join×compute rows = %d, want 12000", out.Rows())
	}
	xs := out.Col(out.Schema().ColumnIndex("x")).I64()
	ps := out.Col(out.Schema().ColumnIndex("p")).I64()
	ys := out.Col(out.Schema().ColumnIndex("y")).I64()
	for i := range ys {
		if ys[i] != xs[i]*10+ps[i] {
			t.Fatalf("row %d: y=%d, want %d", i, ys[i], xs[i]*10+ps[i])
		}
	}
}

func TestBloomAdaptiveToggle(t *testing.T) {
	dim := vector.NewDSMStore(vector.NewSchema("k", vector.I64))
	for i := 0; i < 100; i++ {
		dim.AppendRow(vector.I64Value(int64(i)))
	}
	// Selective probe: 1% hit rate → bloom should stay on and skip probes.
	fact := vector.NewDSMStore(vector.NewSchema("fk", vector.I64))
	for i := 0; i < 50000; i++ {
		fact.AppendRow(vector.I64Value(int64(i % 10000)))
	}
	probe, _ := NewScan(fact, "fk")
	build, _ := NewScan(dim, "k")
	j := NewHashJoin(probe, build, "fk", "k")
	if _, err := Collect(t.Context(), j); err != nil {
		t.Fatal(err)
	}
	if !j.BloomEnabled() {
		t.Fatal("selective join should keep the Bloom filter on")
	}
	if j.BloomSkips == 0 {
		t.Fatal("bloom never skipped a probe")
	}

	// Non-selective probe: ~100% hit rate → bloom must toggle off.
	fact2 := vector.NewDSMStore(vector.NewSchema("fk", vector.I64))
	for i := 0; i < 50000; i++ {
		fact2.AppendRow(vector.I64Value(int64(i % 100)))
	}
	probe2, _ := NewScan(fact2, "fk")
	build2, _ := NewScan(dim, "k")
	j2 := NewHashJoin(probe2, build2, "fk", "k")
	if _, err := Collect(t.Context(), j2); err != nil {
		t.Fatal(err)
	}
	if j2.BloomEnabled() {
		t.Fatal("non-selective join should disable the Bloom filter")
	}
}

func TestBloomFilterNoFalseNegatives(t *testing.T) {
	b := NewBloomFilter(1000)
	for i := int64(0); i < 1000; i++ {
		b.Add(i * 7)
	}
	for i := int64(0); i < 1000; i++ {
		if !b.MayContain(i * 7) {
			t.Fatalf("false negative for %d", i*7)
		}
	}
	fp := 0
	for i := int64(0); i < 10000; i++ {
		if b.MayContain(1<<40 + i) {
			fp++
		}
	}
	if fp > 2000 {
		t.Fatalf("false positive rate too high: %d/10000", fp)
	}
}

func TestHashAggSumCountMinMaxAvg(t *testing.T) {
	st := testTable(10000, 7)
	scan, _ := NewScan(st, "tag", "val", "price")
	agg := NewHashAgg(scan, []string{"tag"}, []Aggregate{
		{Func: AggSum, Col: "val", As: "sum_val"},
		{Func: AggCount, As: "cnt"},
		{Func: AggMin, Col: "val", As: "min_val"},
		{Func: AggMax, Col: "val", As: "max_val"},
		{Func: AggAvg, Col: "price", As: "avg_price"},
	})
	out, err := Collect(t.Context(), agg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 3 {
		t.Fatalf("groups = %d, want 3", out.Rows())
	}

	// Reference aggregation.
	type ref struct {
		sum, cnt, min, max int64
		priceSum           float64
	}
	refs := map[string]*ref{}
	tags := st.Col(3).Str()
	vals := st.Col(1).I64()
	prices := st.Col(2).F64()
	for i := range tags {
		r, ok := refs[tags[i]]
		if !ok {
			r = &ref{min: 1 << 62, max: -(1 << 62)}
			refs[tags[i]] = r
		}
		r.sum += vals[i]
		r.cnt++
		if vals[i] < r.min {
			r.min = vals[i]
		}
		if vals[i] > r.max {
			r.max = vals[i]
		}
		r.priceSum += prices[i]
	}
	sch := out.Schema()
	for row := 0; row < out.Rows(); row++ {
		tag := out.Col(0).Str()[row]
		r := refs[tag]
		if got := out.Col(sch.ColumnIndex("sum_val")).I64()[row]; got != r.sum {
			t.Errorf("%s sum=%d want %d", tag, got, r.sum)
		}
		if got := out.Col(sch.ColumnIndex("cnt")).I64()[row]; got != r.cnt {
			t.Errorf("%s cnt=%d want %d", tag, got, r.cnt)
		}
		if got := out.Col(sch.ColumnIndex("min_val")).I64()[row]; got != r.min {
			t.Errorf("%s min=%d want %d", tag, got, r.min)
		}
		if got := out.Col(sch.ColumnIndex("max_val")).I64()[row]; got != r.max {
			t.Errorf("%s max=%d want %d", tag, got, r.max)
		}
		wantAvg := r.priceSum / float64(r.cnt)
		if got := out.Col(sch.ColumnIndex("avg_price")).F64()[row]; abs(got-wantAvg) > 1e-9 {
			t.Errorf("%s avg=%v want %v", tag, got, wantAvg)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestHashAggPreAggFlavorsAgree(t *testing.T) {
	st := testTable(20000, 8)
	run := func(mode PreAggMode) *vector.DSMStore {
		scan, _ := NewScan(st, "tag", "val")
		agg := NewHashAgg(scan, []string{"tag"}, []Aggregate{
			{Func: AggSum, Col: "val", As: "s"},
			{Func: AggCount, As: "c"},
		}).SetPreAgg(mode)
		out, err := Collect(t.Context(), agg)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	on := run(PreAggOn)
	off := run(PreAggOff)
	ad := run(PreAggAdaptive)
	for row := 0; row < on.Rows(); row++ {
		for col := 0; col < 3; col++ {
			a, b, c := on.Col(col).Get(row), off.Col(col).Get(row), ad.Col(col).Get(row)
			if !a.Equal(b) || !b.Equal(c) {
				t.Fatalf("pre-agg flavors disagree at row %d col %d: %v %v %v", row, col, a, b, c)
			}
		}
	}
}

func TestPreAggAdaptiveDisablesOnHighCardinality(t *testing.T) {
	// Every row its own group: pre-agg can never hit; adaptive must switch
	// it off.
	st := vector.NewDSMStore(vector.NewSchema("k", vector.I64, "v", vector.I64))
	for i := 0; i < 30000; i++ {
		st.AppendRow(vector.I64Value(int64(i)), vector.I64Value(1))
	}
	scan, _ := NewScan(st, "k", "v")
	agg := NewHashAgg(scan, []string{"k"}, []Aggregate{{Func: AggSum, Col: "v", As: "s"}})
	out, err := Collect(t.Context(), agg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 30000 {
		t.Fatalf("groups = %d", out.Rows())
	}
	if agg.PreAggEnabled() {
		t.Fatal("adaptive pre-agg should disable on all-distinct keys")
	}
}

func TestAdaptiveChainReordersByObservedSelectivity(t *testing.T) {
	st := vector.NewDSMStore(vector.NewSchema("a", vector.I64, "b", vector.I64))
	rng := rand.New(rand.NewSource(9))
	n := 100000
	for i := 0; i < n; i++ {
		st.AppendRow(vector.I64Value(rng.Int63n(100)), vector.I64Value(rng.Int63n(100)))
	}
	// Stage A passes 90%, stage B passes 5%: adaptive order must put B
	// first and do less work than the static A-then-B order.
	mkStages := func() []Selector {
		return []Selector{
			&CmpSelector{Label: "A", Col: "a", Threshold: 10, Greater: true}, // ~90%
			&CmpSelector{Label: "B", Col: "b", Threshold: 5, Greater: false}, // ~5%
		}
	}
	scanS, _ := NewScan(st, "a", "b")
	static := NewAdaptiveChain(scanS, false, mkStages()...)
	staticRows, err := CountRows(t.Context(), static)
	if err != nil {
		t.Fatal(err)
	}
	scanA, _ := NewScan(st, "a", "b")
	adaptive := NewAdaptiveChain(scanA, true, mkStages()...)
	adaptiveRows, err := CountRows(t.Context(), adaptive)
	if err != nil {
		t.Fatal(err)
	}
	if staticRows != adaptiveRows {
		t.Fatalf("orders disagree: static=%d adaptive=%d", staticRows, adaptiveRows)
	}
	if adaptive.Applications >= static.Applications {
		t.Fatalf("adaptive order did not reduce work: %d vs %d",
			adaptive.Applications, static.Applications)
	}
	order := adaptive.Order()
	if order[0] != 1 {
		t.Fatalf("most selective stage (B) should run first, order=%v", order)
	}
}

func TestAdaptiveChainTracksDrift(t *testing.T) {
	// Phase 1: stage A selective; phase 2: stage B selective. The chain
	// must reorder mid-stream.
	st := vector.NewDSMStore(vector.NewSchema("a", vector.I64, "b", vector.I64))
	n := 200000
	for i := 0; i < n; i++ {
		if i < n/2 {
			st.AppendRow(vector.I64Value(int64(i%100)), vector.I64Value(int64(i%2)))
		} else {
			st.AppendRow(vector.I64Value(int64(i%2)), vector.I64Value(int64(i%100)))
		}
	}
	scan, _ := NewScan(st, "a", "b")
	chain := NewAdaptiveChain(scan, true,
		&CmpSelector{Label: "A", Col: "a", Threshold: 2, Greater: false},
		&CmpSelector{Label: "B", Col: "b", Threshold: 2, Greater: false},
	)
	if _, err := CountRows(t.Context(), chain); err != nil {
		t.Fatal(err)
	}
	if chain.Reorders == 0 {
		t.Fatal("phase shift should trigger at least one reorder")
	}
}

func TestSemijoinSelector(t *testing.T) {
	set := map[int64]struct{}{1: {}, 5: {}}
	s := &SetMembership{Label: "semi", Col: "x", Set: set}
	c := vector.ChunkOf("x", vector.FromI64([]int64{0, 1, 2, 5, 5}))
	out := s.Apply(c, nil)
	if len(out) != 3 || out[0] != 1 || out[1] != 3 || out[2] != 4 {
		t.Fatalf("semijoin sel = %v", out)
	}
	out2 := s.Apply(c, vector.Sel{0, 1, 2})
	if len(out2) != 1 || out2[0] != 1 {
		t.Fatalf("semijoin over sel = %v", out2)
	}
}
