// Package gpu simulates a discrete GPU behind the device.Device interface.
//
// No CUDA bindings exist for this environment (the paper's target-3
// experiments are hardware-gated), so the device executes kernels on the
// host — results are bit-identical — while charging *modeled* time from the
// canonical discrete-GPU cost structure:
//
//	cost = launch overhead
//	     + PCIe transfer for non-resident inputs (+ results read back)
//	     + max(compute at massive parallel throughput,
//	           device-memory traffic at HBM bandwidth)
//
// The model preserves exactly the behaviour the paper's adaptive placement
// depends on: a fixed per-kernel cost that dominates small inputs, a
// transfer term that dominates cold data, and a throughput advantage that
// dominates large resident data. Defaults approximate a mid-range PCIe 3.0
// part (5 µs launch, 12 GB/s PCIe, 500 GB/s HBM, 100 elem-ops/ns).
package gpu

import (
	"sync"
	"time"

	"repro/internal/device"
)

// Config parameterizes the simulated hardware.
type Config struct {
	LaunchOverhead time.Duration
	// PCIeBytesPerNs is host↔device bandwidth in bytes per nanosecond.
	PCIeBytesPerNs float64
	// HBMBytesPerNs is device-memory bandwidth.
	HBMBytesPerNs float64
	// ElemOpsPerNs is aggregate arithmetic throughput.
	ElemOpsPerNs float64
	// MemoryBytes is device memory capacity for residency.
	MemoryBytes int
}

// DefaultConfig models a mid-range discrete accelerator.
func DefaultConfig() Config {
	return Config{
		LaunchOverhead: 5 * time.Microsecond,
		PCIeBytesPerNs: 12,
		HBMBytesPerNs:  500,
		ElemOpsPerNs:   100,
		MemoryBytes:    4 << 30,
	}
}

// Device is the simulated GPU. It is safe for concurrent use: morsel
// workers run kernels (and update residency) from many goroutines at once,
// so the residency cache and the transfer accounting synchronize
// internally.
type Device struct {
	cfg Config

	mu       sync.Mutex
	resident map[string]int
	used     int
	order    []string // FIFO eviction order

	// TotalTransfer accumulates modeled transfer time for reports (guarded
	// by mu; use TransferTotal for a concurrent-safe read).
	TotalTransfer time.Duration
}

// New creates a simulated GPU.
func New(cfg Config) *Device {
	return &Device{cfg: cfg, resident: map[string]int{}}
}

var _ device.Device = (*Device)(nil)

// Name implements device.Device.
func (d *Device) Name() string { return "gpu" }

// transferBytes sums the sizes of non-resident inputs (caller holds mu).
func (d *Device) transferBytes(k device.Kernel) int {
	if len(k.Inputs) == 0 {
		// Unnamed inputs: charge the full input volume unless nothing is
		// resident at all (conservative).
		return k.BytesIn
	}
	bytes := 0
	per := k.BytesIn / max(len(k.Inputs), 1)
	for _, in := range k.Inputs {
		if _, ok := d.resident[in]; !ok {
			bytes += per
		}
	}
	return bytes
}

// Estimate implements device.Device.
func (d *Device) Estimate(k device.Kernel) device.Cost {
	d.mu.Lock()
	transfer := time.Duration(float64(d.transferBytes(k)+k.BytesOut) / d.cfg.PCIeBytesPerNs)
	d.mu.Unlock()
	compute := float64(k.Elems) * maxf(k.OpsPerElem, 1) / d.cfg.ElemOpsPerNs
	hbm := float64(k.BytesIn+k.BytesOut) / d.cfg.HBMBytesPerNs
	total := d.cfg.LaunchOverhead + transfer + time.Duration(maxf(compute, hbm))
	return device.Cost{Modeled: total, Transfer: transfer}
}

// Run implements device.Device: executes the host-side work for correctness
// and returns the modeled cost (not wall time — this is the documented
// simulation substitution). The work runs outside the device's lock, so
// concurrent kernels overlap like streams on real hardware.
func (d *Device) Run(k device.Kernel, work func()) device.Cost {
	work()
	cost := d.Estimate(k)
	d.mu.Lock()
	d.TotalTransfer += cost.Transfer
	// Inputs transferred for a kernel become resident (simple cache).
	per := k.BytesIn / max(len(k.Inputs), 1)
	for _, in := range k.Inputs {
		d.makeResident(in, per)
	}
	d.mu.Unlock()
	return cost
}

// TransferTotal returns the accumulated modeled transfer time.
func (d *Device) TransferTotal() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.TotalTransfer
}

// MakeResident implements device.Device with FIFO eviction.
func (d *Device) MakeResident(name string, bytes int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.makeResident(name, bytes)
}

// makeResident is MakeResident with mu held.
func (d *Device) makeResident(name string, bytes int) {
	if _, ok := d.resident[name]; ok {
		return
	}
	for d.used+bytes > d.cfg.MemoryBytes && len(d.order) > 0 {
		victim := d.order[0]
		d.order = d.order[1:]
		d.used -= d.resident[victim]
		delete(d.resident, victim)
	}
	if d.used+bytes > d.cfg.MemoryBytes {
		return // does not fit at all
	}
	d.resident[name] = bytes
	d.order = append(d.order, name)
	d.used += bytes
}

// Resident implements device.Device.
func (d *Device) Resident(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.resident[name]
	return ok
}

// Evict drops an array from device memory (for failure-injection tests).
func (d *Device) Evict(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if b, ok := d.resident[name]; ok {
		d.used -= b
		delete(d.resident, name)
		for i, n := range d.order {
			if n == name {
				d.order = append(d.order[:i], d.order[i+1:]...)
				break
			}
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
